// FAERS pipeline example: generate a synthetic quarter in the real
// FAERS ASCII layout, write it to disk, load it back the way a real
// extract would be loaded, run the full MARAS pipeline, and render
// the top signal's contextual glyph to SVG.
//
//	go run ./examples/faers-pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/glyph"
	"maras/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "maras-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate a quarter (drop-in replacement for a real extract).
	cfg := synth.DefaultConfig("2014Q1", 7)
	cfg.Reports = 12_000
	quarter, truth, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := faers.SaveQuarter(dir, quarter); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote quarter to %s (%d planted interactions)\n", dir, len(truth.Interactions))

	// 2. Load it back from the FAERS files.
	loaded, err := faers.LoadQuarter(dir, "2014Q1")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run the pipeline.
	opts := core.NewOptions()
	opts.MinSupport = 8
	opts.TopK = 10
	analysis, err := core.RunQuarter(loaded, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cleaned to %d reports; %d duplicates removed, %d spellings fixed\n\n",
		analysis.Stats.Reports, analysis.Cleaning.DuplicateReports,
		analysis.Cleaning.DrugSpellingsFixed+analysis.Cleaning.ReacSpellingsFixed)

	for _, s := range analysis.Signals {
		status := "novel"
		if s.Known != nil {
			status = "known: " + s.Known.Source
		}
		fmt.Printf("#%-2d %-40s => %-30s score=%.3f sup=%d [%s]\n",
			s.Rank, strings.Join(s.Drugs, "+"), strings.Join(s.Reactions, ";"),
			s.Score, s.Support, status)
	}

	// 4. Render the top signal's glyph.
	if len(analysis.Signals) > 0 {
		top := analysis.Signals[0]
		svg := glyph.Zoom(top.Cluster, analysis.Dict())
		out := filepath.Join(".", "top_signal_glyph.svg")
		if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nrendered %s (contextual glyph of the top signal)\n", out)
	}
}
