// Ranking comparison example: run the same synthetic quarter through
// every ranking method MARAS implements and show how each orders the
// same candidate combinations — the programmatic version of the
// paper's Table 5.2 comparison, with ground-truth hit marks.
//
//	go run ./examples/ranking-comparison
package main

import (
	"fmt"
	"log"
	"strings"

	"maras/internal/core"
	"maras/internal/eval"
	"maras/internal/knowledge"
	"maras/internal/rank"
	"maras/internal/synth"
)

func main() {
	cfg := synth.DefaultConfig("2014Q1", 21)
	cfg.Reports = 10_000
	quarter, truth, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	truthKeys := map[string]bool{}
	for _, k := range truth.Keys() {
		truthKeys[k] = true
	}

	methods := []rank.Method{
		rank.ByExclusivenessConf,
		rank.ByExclusivenessLift,
		rank.ByImprovement,
		rank.ByConfidence,
		rank.ByLift,
	}
	for _, m := range methods {
		opts := core.NewOptions()
		opts.MinSupport = 8
		opts.Method = m
		opts.TopK = 0
		analysis, err := core.RunQuarter(quarter, opts)
		if err != nil {
			log.Fatal(err)
		}
		keys := make([]string, len(analysis.Signals))
		for i, s := range analysis.Signals {
			keys[i] = knowledge.DrugKey(s.Drugs)
		}
		res := eval.Score(keys, truth.Keys())

		fmt.Printf("== %s ==\n", m)
		fmt.Printf("   MRR %.3f · recall@20 %.2f · first planted hit at rank %d\n", res.MRR, res.RecallAt[20], res.FirstHitRank)
		for _, s := range analysis.Signals[:min(5, len(analysis.Signals))] {
			mark := " "
			if truthKeys[knowledge.DrugKey(s.Drugs)] {
				mark = "*"
			}
			fmt.Printf(" %s #%d %-42s => %s\n", mark, s.Rank,
				strings.Join(s.Drugs, "+"), strings.Join(s.Reactions, ";"))
		}
		fmt.Println()
	}
	fmt.Println("* = planted ground-truth interaction")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
