// Surveillance example: quarterly signal monitoring. Four quarters
// are generated with interaction exposure ramping through the year (a
// newly co-marketed drug pair gaining use); the trend tracker mines
// each quarter and reports when each planted interaction first
// emerges and how its rank evolves — the early-detection workflow the
// paper's introduction motivates.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"strings"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/knowledge"
	"maras/internal/synth"
	"maras/internal/trend"
)

func main() {
	rates := []float64{0.004, 0.012, 0.03, 0.045}
	labels := []string{"2014Q1", "2014Q2", "2014Q3", "2014Q4"}
	var quarters []*faers.Quarter
	var truth *synth.GroundTruth
	for i, label := range labels {
		cfg := synth.DefaultConfig(label, int64(100+i))
		cfg.Reports = 10_000
		cfg.ExposureRate = rates[i]
		q, gt, err := synth.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		quarters = append(quarters, q)
		truth = gt
	}

	opts := core.NewOptions()
	opts.MinSupport = 8
	opts.TopK = 0
	analysis, err := trend.Run(quarters, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Tracked %d combinations across %s\n\n",
		len(analysis.Trajectories), strings.Join(analysis.Quarters, ", "))

	fmt.Println("Planted interactions:")
	for _, in := range truth.Interactions {
		key := knowledge.DrugKey(in.Drugs)
		tr := analysis.Find(key)
		if tr == nil {
			fmt.Printf("  %-36s never cleared the threshold\n", key)
			continue
		}
		var cells []string
		for _, p := range tr.Points {
			if p.Rank > 0 {
				cells = append(cells, fmt.Sprintf("%s:#%d", p.Quarter[4:], p.Rank))
			} else {
				cells = append(cells, p.Quarter[4:]+":-")
			}
		}
		fmt.Printf("  %-36s %s  [%s, emerged %s]\n",
			key, strings.Join(cells, " "), tr.Classify(), orNone(tr.EmergedAt()))
	}

	byClass := analysis.ByClass()
	fmt.Printf("\nAcross all combinations: %d persistent, %d emerging, %d transient.\n",
		len(byClass[trend.Persistent]), len(byClass[trend.Emerging]), len(byClass[trend.Transient]))
	fmt.Println("An evaluator watching the emerging bucket sees the planted interactions the quarter they cross the threshold.")
}

func orNone(s string) string {
	if s == "" {
		return "never"
	}
	return s
}
