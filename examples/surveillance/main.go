// Surveillance example: quarterly signal monitoring through the
// persistent store. Four quarters are generated with interaction
// exposure ramping through the year (a newly co-marketed drug pair
// gaining use); each quarter is mined ONCE and saved as a snapshot.
// A fresh registry — standing in for a serving process started weeks
// later — then replays every planted interaction's trajectory purely
// from disk: when it first emerged and how its rank evolved, with
// zero re-mining. This is the mine-once/serve-many workflow the
// paper's early-detection motivation implies at operational scale.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"maras/internal/core"
	"maras/internal/knowledge"
	"maras/internal/store"
	"maras/internal/synth"
	"maras/internal/trend"
)

func main() {
	dir, err := os.MkdirTemp("", "maras-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Phase 1 — the miner: one pipeline run per quarter, each result
	// persisted as a snapshot. In production this is a quarterly batch
	// job (maras-mine -snapshot-out).
	labels, err := synth.QuarterSequence("2014Q1", 4)
	if err != nil {
		log.Fatal(err)
	}
	rates := synth.RampRates(len(labels))
	miner, err := store.OpenRegistry(dir, store.RegistryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var truth *synth.GroundTruth
	for i, label := range labels {
		cfg := synth.DefaultConfig(label, int64(100+i))
		cfg.Reports = 10_000
		cfg.ExposureRate = rates[i]
		q, gt, err := synth.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		opts := core.NewOptions()
		opts.MinSupport = 8
		opts.TopK = 0
		a, err := core.RunQuarter(q, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := miner.Save(label, a); err != nil {
			log.Fatal(err)
		}
		truth = gt
		fmt.Printf("mined and stored %s: %d signals -> %s\n", label, len(a.Signals), miner.Path(label))
	}

	// Phase 2 — the server: a brand-new registry over the same
	// directory discovers the snapshots and answers the surveillance
	// question from disk alone. No miner runs past this line.
	reg, err := store.OpenRegistry(dir, store.RegistryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := reg.TrendAnalysis()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nReplayed %d combinations across %s from %d snapshots on disk\n\n",
		len(analysis.Trajectories), strings.Join(analysis.Quarters, ", "), len(reg.Quarters()))

	fmt.Println("Planted interactions:")
	for _, in := range truth.Interactions {
		key := knowledge.DrugKey(in.Drugs)
		_, tr, err := reg.Timeline(key)
		if err != nil {
			log.Fatal(err)
		}
		if tr == nil {
			fmt.Printf("  %-36s never cleared the threshold\n", key)
			continue
		}
		var cells []string
		for _, p := range tr.Points {
			if p.Rank > 0 {
				cells = append(cells, fmt.Sprintf("%s:#%d", p.Quarter[4:], p.Rank))
			} else {
				cells = append(cells, p.Quarter[4:]+":-")
			}
		}
		fmt.Printf("  %-36s %s  [%s, emerged %s]\n",
			key, strings.Join(cells, " "), tr.Classify(), orNone(tr.EmergedAt()))
	}

	byClass := analysis.ByClass()
	fmt.Printf("\nAcross all combinations: %d persistent, %d emerging, %d transient.\n",
		len(byClass[trend.Persistent]), len(byClass[trend.Emerging]), len(byClass[trend.Transient]))
	fmt.Println("An evaluator watching the emerging bucket sees the planted interactions the quarter they cross the threshold —")
	fmt.Println("and every query above was served from snapshots, not from re-running the miner.")
}

func orNone(s string) string {
	if s == "" {
		return "never"
	}
	return s
}
