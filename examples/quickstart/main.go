// Quickstart: detect a multi-drug adverse reaction signal from a
// small in-memory report set using the public maras API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"maras"
)

func main() {
	// A miniature spontaneous-reporting corpus: aspirin+warfarin
	// co-reports with haemorrhage, while each drug alone is mostly
	// followed by its own mundane reactions.
	var reports []maras.Report
	add := func(drugs []string, reactions ...string) {
		reports = append(reports, maras.Report{
			ID:    fmt.Sprintf("r%03d", len(reports)+1),
			Drugs: drugs, Reactions: reactions,
		})
	}
	for i := 0; i < 12; i++ {
		add([]string{"Aspirin", "Warfarin"}, "Haemorrhage")
	}
	for i := 0; i < 30; i++ {
		add([]string{"Aspirin"}, "Nausea")
		add([]string{"Warfarin"}, "Dizziness")
	}
	for i := 0; i < 15; i++ {
		add([]string{"Lisinopril"}, "Cough")
	}

	analysis, err := maras.Analyze(reports, maras.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Mined %d reports (%d drugs, %d reaction terms)\n\n",
		analysis.Reports, analysis.Drugs, analysis.Reactions)
	for _, sig := range analysis.Signals {
		fmt.Printf("#%d  %v => %v\n", sig.Rank, sig.Drugs, sig.Reactions)
		fmt.Printf("    exclusiveness %.3f · support %d · confidence %.2f · lift %.2f\n",
			sig.Score, sig.Support, sig.Confidence, sig.Lift)
		for _, ctx := range sig.Context {
			fmt.Printf("    context %v: confidence %.2f\n", ctx.Drugs, ctx.Confidence)
		}
		if sig.IsKnown() {
			fmt.Printf("    KNOWN interaction (%s): %s\n", sig.Known.Severity, sig.Known.Mechanism)
		} else {
			fmt.Println("    candidate novel interaction")
		}
		fmt.Printf("    supporting reports: %v\n\n", sig.ReportIDs[:min(5, len(sig.ReportIDs))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
