// Drug screening example: the drug-safety-evaluator workflow the
// paper's introduction motivates. Given one drug of interest
// (warfarin here), screen the report stream for combinations
// involving it, inspect each candidate's contextual rules to judge
// whether the combination — not the drug alone — drives the
// reactions, and separate known interactions from novel candidates.
//
//	go run ./examples/drug-screening
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"maras"
)

func main() {
	reports := simulateStream(4000)

	opts := maras.DefaultOptions()
	opts.MinSupport = 6
	opts.TopK = 0 // keep everything; we filter ourselves
	analysis, err := maras.Analyze(reports, opts)
	if err != nil {
		log.Fatal(err)
	}

	const focus = "WARFARIN"
	fmt.Printf("Screening %d signals for combinations involving %s\n\n", len(analysis.Signals), focus)

	shown := 0
	for _, sig := range analysis.Signals {
		if !contains(sig.Drugs, focus) {
			continue
		}
		shown++
		kind := "NOVEL candidate"
		if sig.IsKnown() {
			kind = fmt.Sprintf("KNOWN (%s) — %s", sig.Known.Severity, sig.Known.Source)
		}
		fmt.Printf("%s + %s => %s\n", focus,
			strings.Join(without(sig.Drugs, focus), "+"),
			strings.Join(sig.Reactions, "; "))
		fmt.Printf("  %s\n", kind)
		fmt.Printf("  combination: confidence %.2f over %d reports\n", sig.Confidence, sig.Support)
		for _, ctx := range sig.Context {
			fmt.Printf("  %v alone: confidence %.2f\n", ctx.Drugs, ctx.Confidence)
		}
		verdict := "combination-driven (sub-rules weak) — investigate"
		for _, ctx := range sig.Context {
			if ctx.Confidence > sig.Confidence*0.6 {
				verdict = "likely driven by " + strings.Join(ctx.Drugs, "+") + " alone — deprioritize"
			}
		}
		fmt.Printf("  verdict: %s\n\n", verdict)
		if shown >= 5 {
			break
		}
	}
	if shown == 0 {
		fmt.Println("no combinations involving the focus drug cleared the support threshold")
	}
}

// simulateStream fabricates a report stream with two warfarin
// stories: a true interaction (warfarin+aspirin -> haemorrhage) and a
// dominated pair (warfarin+omeprazole where warfarin alone already
// explains the bruising).
func simulateStream(n int) []maras.Report {
	rng := rand.New(rand.NewSource(11))
	var reports []maras.Report
	add := func(drugs []string, reactions ...string) {
		reports = append(reports, maras.Report{
			ID:    fmt.Sprintf("r%05d", len(reports)+1),
			Drugs: drugs, Reactions: reactions,
		})
	}
	background := []string{"Lisinopril", "Metformin", "Atorvastatin", "Levothyroxine", "Amlodipine"}
	bgReac := []string{"Nausea", "Dizziness", "Headache", "Fatigue"}
	for i := 0; i < n; i++ {
		switch {
		case i%40 == 0: // true interaction exposure
			add([]string{"Warfarin", "Aspirin"}, "Haemorrhage")
		case i%40 == 1: // dominated pair: omeprazole alone already causes contusion
			add([]string{"Warfarin", "Omeprazole"}, "Contusion")
		case i%40 == 2:
			add([]string{"Omeprazole"}, "Contusion")
		case i%10 == 3:
			add([]string{"Warfarin"}, bgReac[rng.Intn(len(bgReac))])
		case i%10 == 4:
			add([]string{"Aspirin"}, bgReac[rng.Intn(len(bgReac))])
		default:
			d := background[rng.Intn(len(background))]
			add([]string{d}, bgReac[rng.Intn(len(bgReac))])
		}
	}
	return reports
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func without(s []string, v string) []string {
	var out []string
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
