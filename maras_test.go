package maras

import (
	"fmt"
	"testing"
)

func corpus() []Report {
	var out []Report
	id := 0
	add := func(exp bool, drugs, reacs []string) {
		id++
		out = append(out, Report{
			ID: fmt.Sprintf("r%d", id), Case: fmt.Sprintf("c%d", id),
			Expedited: exp, Drugs: drugs, Reactions: reacs,
		})
	}
	for i := 0; i < 10; i++ {
		add(true, []string{"aspirin", "warfarin"}, []string{"haemorrhage"})
	}
	for i := 0; i < 25; i++ {
		add(true, []string{"aspirin"}, []string{"nausea"})
		add(true, []string{"warfarin"}, []string{"dizziness"})
	}
	for i := 0; i < 20; i++ {
		add(false, []string{fmt.Sprintf("bg%d", i%5)}, []string{"headache"})
	}
	return out
}

func TestAnalyzeFindsInteraction(t *testing.T) {
	a, err := Analyze(corpus(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals")
	}
	top := a.Signals[0]
	if top.Drugs[0] != "ASPIRIN" || top.Drugs[1] != "WARFARIN" {
		t.Errorf("top signal = %v", top.Drugs)
	}
	if top.Reactions[0] != "Haemorrhage" {
		t.Errorf("top reactions = %v", top.Reactions)
	}
	if top.Support != 10 {
		t.Errorf("support = %d", top.Support)
	}
	if len(top.ReportIDs) != 10 {
		t.Errorf("report links = %d", len(top.ReportIDs))
	}
	if len(top.Context) != 2 {
		t.Errorf("context rules = %d, want 2", len(top.Context))
	}
	if !top.IsKnown() || top.Known.Severity != "severe" {
		t.Errorf("aspirin+warfarin should be a known severe interaction: %+v", top.Known)
	}
}

func TestAnalyzeStats(t *testing.T) {
	a, err := Analyze(corpus(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Reports == 0 || a.Drugs == 0 || a.Reactions == 0 {
		t.Errorf("stats empty: %+v", a)
	}
}

func TestAnalyzeExpeditedOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.ExpeditedOnly = true
	a, err := Analyze(corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	all, err := Analyze(corpus(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Reports >= all.Reports {
		t.Errorf("expedited filter kept %d of %d", a.Reports, all.Reports)
	}
}

func TestAnalyzeMethods(t *testing.T) {
	for _, m := range []RankingMethod{
		RankExclusiveness, RankExclusivenessLift, RankConfidence, RankLift, RankImprovement,
	} {
		opts := DefaultOptions()
		opts.Method = m
		if _, err := Analyze(corpus(), opts); err != nil {
			t.Errorf("method %q failed: %v", m, err)
		}
	}
	opts := DefaultOptions()
	opts.Method = "bogus"
	if _, err := Analyze(corpus(), opts); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil, DefaultOptions()); err == nil {
		t.Error("empty input accepted")
	}
}

func TestAnalyzeGeneratedIDs(t *testing.T) {
	reports := []Report{
		{Drugs: []string{"A", "B"}, Reactions: []string{"r"}},
		{Drugs: []string{"A", "B"}, Reactions: []string{"r"}},
		{Drugs: []string{"A", "B"}, Reactions: []string{"r"}},
		{Drugs: []string{"A", "B"}, Reactions: []string{"r"}},
		{Drugs: []string{"A"}, Reactions: []string{"x"}},
		{Drugs: []string{"B"}, Reactions: []string{"y"}},
	}
	opts := DefaultOptions()
	opts.MinSupport = 2
	opts.DropDuplicates = false
	a, err := Analyze(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals")
	}
	if a.Signals[0].ReportIDs[0] == "" {
		t.Error("missing generated report IDs")
	}
}

func TestKnownInteractions(t *testing.T) {
	all := KnownInteractions()
	if len(all) < 10 {
		t.Fatalf("only %d curated interactions", len(all))
	}
	for _, k := range all {
		if len(k.Drugs) < 2 || k.Source == "" {
			t.Errorf("bad entry %+v", k)
		}
	}
}

func TestAnalyzeOrganClasses(t *testing.T) {
	var reports []Report
	for i := 0; i < 6; i++ {
		reports = append(reports, Report{
			ID: fmt.Sprintf("s%d", i), Case: fmt.Sprintf("cs%d", i),
			Drugs: []string{"X", "Y"}, Reactions: []string{"acute renal failure"},
		})
	}
	for i := 0; i < 10; i++ {
		reports = append(reports, Report{
			ID: fmt.Sprintf("x%d", i), Case: fmt.Sprintf("cx%d", i),
			Drugs: []string{"X"}, Reactions: []string{"nausea"},
		})
		reports = append(reports, Report{
			ID: fmt.Sprintf("y%d", i), Case: fmt.Sprintf("cy%d", i),
			Drugs: []string{"Y"}, Reactions: []string{"headache"},
		})
	}
	opts := DefaultOptions()
	opts.MinSupport = 3
	a, err := Analyze(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals")
	}
	top := a.Signals[0]
	if len(top.OrganClasses) != 1 || top.OrganClasses[0] != "Renal and urinary disorders" {
		t.Errorf("OrganClasses = %v", top.OrganClasses)
	}
}

func TestAnalyzeContextRulesComplete(t *testing.T) {
	a, err := Analyze(corpus(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Signals {
		// 2^n − 2 context rules for n drugs.
		want := (1 << uint(len(s.Drugs))) - 2
		if len(s.Context) != want {
			t.Errorf("signal %v has %d context rules, want %d", s.Drugs, len(s.Context), want)
		}
		for _, c := range s.Context {
			if len(c.Drugs) == 0 || len(c.Drugs) >= len(s.Drugs) {
				t.Errorf("context antecedent %v not a proper subset of %v", c.Drugs, s.Drugs)
			}
		}
	}
}

func TestTopKApplied(t *testing.T) {
	opts := DefaultOptions()
	opts.TopK = 1
	opts.MinSupport = 2
	a, err := Analyze(corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) > 1 {
		t.Errorf("TopK=1 returned %d", len(a.Signals))
	}
}

func TestAnalyzeCollectTrace(t *testing.T) {
	opts := DefaultOptions()
	opts.MinSupport = 2
	opts.CollectTrace = true
	a, err := Analyze(corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	names := StageNames()
	if len(a.Trace) != len(names) {
		t.Fatalf("trace has %d stages, want %d (%v)", len(a.Trace), len(names), names)
	}
	for i, st := range a.Trace {
		if st.Stage != names[i] {
			t.Errorf("trace stage %d = %q, want %q", i, st.Stage, names[i])
		}
		if st.Duration < 0 {
			t.Errorf("stage %s has negative duration", st.Stage)
		}
	}
	// The encode stage must agree with the dataset statistics.
	for _, st := range a.Trace {
		if st.Stage == "encode" && st.Counters["transactions"] != int64(a.Reports) {
			t.Errorf("encode.transactions = %d, want %d", st.Counters["transactions"], a.Reports)
		}
	}
	// Off by default.
	opts.CollectTrace = false
	a2, err := Analyze(corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Trace != nil {
		t.Errorf("trace collected without CollectTrace: %d stages", len(a2.Trace))
	}
}
