module maras

go 1.22
