# Developer / CI entry points. Everything is stdlib-only Go; no tool
# downloads happen here.

GO ?= go

.PHONY: check build fmt vet test race bench fuzz vuln clean

## check: the CI gate — formatting, vet, and the race-enabled suite.
check: fmt vet race

build:
	$(GO) build ./...

## fmt: fail if any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the paper-artifact benchmarks (one iteration each; see
## EXPERIMENTS.md for targeted -bench invocations).
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

## fuzz: mutate the snapshot decoder for FUZZTIME (default 30s). The
## corpus seeds cover valid v1/v2 snapshots, truncations, and CRC-
## breaking bit flips; any input outside the three typed errors fails.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)

## vuln: known-vulnerability scan of the module graph and stdlib
## call sites. The binary is not installed here (CI pins its version;
## locally: go install golang.org/x/vuln/cmd/govulncheck@latest).
GOVULNCHECK ?= govulncheck
vuln:
	$(GOVULNCHECK) ./...

clean:
	$(GO) clean ./...
	rm -f BENCH_trace.json BENCH_drift.json BENCH_chaos.json BENCH_slo.json \
		BENCH_watch.json BENCH_prof.json BENCH_wide.json BENCH_replica.json
