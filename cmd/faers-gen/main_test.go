package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maras/internal/synth"
)

func TestWriteGroundTruth(t *testing.T) {
	dir := t.TempDir()
	gt := &synth.GroundTruth{Interactions: []synth.Interaction{
		{Drugs: []string{"B", "A"}, Reactions: []string{"r1", "r2"}},
		{Drugs: []string{"C", "D"}, Reactions: []string{"r3"}},
	}}
	if err := writeGroundTruth(dir, "2014Q1", gt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ground_truth_2014Q1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	fields := strings.Split(lines[0], "\t")
	if len(fields) != 3 {
		t.Fatalf("fields = %v", fields)
	}
	if fields[0] != "A+B" {
		t.Errorf("key = %q, want canonical A+B", fields[0])
	}
	if fields[1] != "r1;r2" {
		t.Errorf("reactions = %q", fields[1])
	}
}
