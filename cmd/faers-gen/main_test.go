package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maras/internal/synth"
)

func TestExpandQuarters(t *testing.T) {
	got, err := expandQuarters("4", "2014Q1")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"2014Q1", "2014Q2", "2014Q3", "2014Q4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("count expansion = %v, want %v", got, want)
	}
	// A count rolls across year boundaries from -start.
	got, err = expandQuarters("3", "2014Q4")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "2014Q4,2015Q1,2015Q2" {
		t.Errorf("rolling expansion = %v", got)
	}
	// Explicit labels pass through, trimmed.
	got, err = expandQuarters(" 2014Q1 , 2016Q3 ", "2014Q1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "2014Q1,2016Q3" {
		t.Errorf("explicit labels = %v", got)
	}
	for _, bad := range []string{"0", "-2", ",", ""} {
		if _, err := expandQuarters(bad, "2014Q1"); err == nil {
			t.Errorf("expandQuarters(%q) accepted", bad)
		}
	}
}

func TestWriteGroundTruth(t *testing.T) {
	dir := t.TempDir()
	gt := &synth.GroundTruth{Interactions: []synth.Interaction{
		{Drugs: []string{"B", "A"}, Reactions: []string{"r1", "r2"}},
		{Drugs: []string{"C", "D"}, Reactions: []string{"r3"}},
	}}
	if err := writeGroundTruth(dir, "2014Q1", gt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "ground_truth_2014Q1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	fields := strings.Split(lines[0], "\t")
	if len(fields) != 3 {
		t.Fatalf("fields = %v", fields)
	}
	if fields[0] != "A+B" {
		t.Errorf("key = %q, want canonical A+B", fields[0])
	}
	if fields[1] != "r1;r2" {
		t.Errorf("reactions = %q", fields[1])
	}
}
