// Command faers-gen generates synthetic FAERS quarters in the real
// FAERS ASCII layout (DEMO/DRUG/REAC/OUTC $-delimited files), with
// planted drug-drug-interaction ground truth written alongside as
// ground_truth_<label>.txt. It stands in for downloading the public
// FAERS extracts the paper mined.
//
// Usage:
//
//	faers-gen -out data -quarters 2014Q1,2014Q2 -reports 15000 -seed 1
//	faers-gen -out data -paper-scale   # ~126k reports per quarter
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"maras/internal/faers"
	"maras/internal/knowledge"
	"maras/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faers-gen: ")

	var (
		out        = flag.String("out", "data", "output directory")
		quarters   = flag.String("quarters", "2014Q1,2014Q2,2014Q3,2014Q4", "comma-separated quarter labels")
		reports    = flag.Int("reports", 0, "reports per quarter (0 = config default)")
		seed       = flag.Int64("seed", 1, "base random seed (quarter i uses seed+i)")
		paperScale = flag.Bool("paper-scale", false, "use the paper's Table 5.1 scale (~126k reports/quarter)")
	)
	flag.Parse()

	labels := strings.Split(*quarters, ",")
	for i, label := range labels {
		label = strings.TrimSpace(label)
		cfg := synth.DefaultConfig(label, *seed+int64(i))
		if *paperScale {
			cfg = synth.PaperScaleConfig(label, *seed+int64(i))
		}
		if *reports > 0 {
			cfg.Reports = *reports
		}
		q, gt, err := synth.Generate(cfg)
		if err != nil {
			log.Fatalf("generate %s: %v", label, err)
		}
		if err := faers.SaveQuarter(*out, q); err != nil {
			log.Fatalf("save %s: %v", label, err)
		}
		if err := writeGroundTruth(*out, label, gt); err != nil {
			log.Fatalf("ground truth %s: %v", label, err)
		}
		fmt.Printf("%s: %d reports, %d drug rows, %d reaction rows -> %s\n",
			label, len(q.Demos), len(q.Drugs), len(q.Reacs), *out)
	}
}

// writeGroundTruth records the planted interactions, one per line:
// DRUG+DRUG<TAB>reaction;reaction<TAB>severity.
func writeGroundTruth(dir, label string, gt *synth.GroundTruth) error {
	path := filepath.Join(dir, fmt.Sprintf("ground_truth_%s.txt", label))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, in := range gt.Interactions {
		fmt.Fprintf(f, "%s\t%s\t%s\n",
			knowledge.DrugKey(in.Drugs),
			strings.Join(in.Reactions, ";"),
			in.Severity)
	}
	return nil
}
