// Command faers-gen generates synthetic FAERS quarters in the real
// FAERS ASCII layout (DEMO/DRUG/REAC/OUTC $-delimited files), with
// planted drug-drug-interaction ground truth written alongside as
// ground_truth_<label>.txt. It stands in for downloading the public
// FAERS extracts the paper mined.
//
// Usage:
//
//	faers-gen -out data -quarters 2014Q1,2014Q2 -reports 15000 -seed 1
//	faers-gen -out data -paper-scale   # ~126k reports per quarter
//	faers-gen -out data -quarters 4 -ramp   # a year with ramping exposure
//
// -quarters takes either explicit comma-separated labels or a plain
// count N, which expands to N consecutive quarters from -start
// (rolling Q4 into the next year). With -ramp, interaction exposure
// ramps up quarter over quarter — the surveillance fixture where a
// signal emerges and grows instead of sitting flat.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"maras/internal/faers"
	"maras/internal/knowledge"
	"maras/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faers-gen: ")

	var (
		out        = flag.String("out", "data", "output directory")
		quarters   = flag.String("quarters", "2014Q1,2014Q2,2014Q3,2014Q4", "comma-separated quarter labels, or a count N expanded from -start")
		start      = flag.String("start", "2014Q1", "first quarter label when -quarters is a count")
		ramp       = flag.Bool("ramp", false, "ramp interaction exposure up across the quarters (surveillance fixture)")
		reports    = flag.Int("reports", 0, "reports per quarter (0 = config default)")
		seed       = flag.Int64("seed", 1, "base random seed (quarter i uses seed+i)")
		paperScale = flag.Bool("paper-scale", false, "use the paper's Table 5.1 scale (~126k reports/quarter)")
	)
	flag.Parse()

	labels, err := expandQuarters(*quarters, *start)
	if err != nil {
		log.Fatal(err)
	}
	var rates []float64
	if *ramp {
		rates = synth.RampRates(len(labels))
	}
	for i, label := range labels {
		cfg := synth.DefaultConfig(label, *seed+int64(i))
		if *paperScale {
			cfg = synth.PaperScaleConfig(label, *seed+int64(i))
		}
		if *reports > 0 {
			cfg.Reports = *reports
		}
		if rates != nil {
			cfg.ExposureRate = rates[i]
		}
		q, gt, err := synth.Generate(cfg)
		if err != nil {
			log.Fatalf("generate %s: %v", label, err)
		}
		if err := faers.SaveQuarter(*out, q); err != nil {
			log.Fatalf("save %s: %v", label, err)
		}
		if err := writeGroundTruth(*out, label, gt); err != nil {
			log.Fatalf("ground truth %s: %v", label, err)
		}
		fmt.Printf("%s: %d reports, %d drug rows, %d reaction rows -> %s\n",
			label, len(q.Demos), len(q.Drugs), len(q.Reacs), *out)
	}
}

// expandQuarters resolves the -quarters flag: a bare count N becomes
// N consecutive labels from start; anything else is taken as explicit
// comma-separated labels.
func expandQuarters(spec, start string) ([]string, error) {
	if n, err := strconv.Atoi(strings.TrimSpace(spec)); err == nil {
		if n <= 0 {
			return nil, fmt.Errorf("-quarters count must be positive, got %d", n)
		}
		return synth.QuarterSequence(start, n)
	}
	var labels []string
	for _, l := range strings.Split(spec, ",") {
		if l = strings.TrimSpace(l); l != "" {
			labels = append(labels, l)
		}
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("-quarters %q names no quarters", spec)
	}
	return labels, nil
}

// writeGroundTruth records the planted interactions, one per line:
// DRUG+DRUG<TAB>reaction;reaction<TAB>severity.
func writeGroundTruth(dir, label string, gt *synth.GroundTruth) error {
	path := filepath.Join(dir, fmt.Sprintf("ground_truth_%s.txt", label))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, in := range gt.Interactions {
		fmt.Fprintf(f, "%s\t%s\t%s\n",
			knowledge.DrugKey(in.Drugs),
			strings.Join(in.Reactions, ";"),
			in.Severity)
	}
	return nil
}
