package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/rank"
	"maras/internal/store"
)

func testAnalysis(t *testing.T) *core.Analysis {
	t.Helper()
	var reports []faers.Report
	id := 0
	add := func(drugs, reacs []string) {
		id++
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", 1000+id), CaseID: fmt.Sprintf("c%d", id),
			ReportCode: "EXP", Drugs: drugs, Reactions: reacs,
		})
	}
	for i := 0; i < 10; i++ {
		add([]string{"ASPIRIN", "WARFARIN"}, []string{"Haemorrhage"})
	}
	for i := 0; i < 20; i++ {
		add([]string{"ASPIRIN"}, []string{"Nausea"})
		add([]string{"WARFARIN"}, []string{"Dizziness"})
	}
	opts := core.NewOptions()
	opts.MinSupport = 3
	a, err := core.Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestWriteSnapshot exercises the -snapshot-out path: the persisted
// file must open through the store package and carry the same ranked
// signals the miner printed.
func TestWriteSnapshot(t *testing.T) {
	a := testAnalysis(t)
	dir := filepath.Join(t.TempDir(), "snapshots") // exercises MkdirAll
	path, err := writeSnapshot(dir, "2014Q1", a)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "2014Q1"+store.Ext {
		t.Errorf("snapshot path = %q", path)
	}
	snap, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "2014Q1" || len(snap.Analysis.Signals) != len(a.Signals) {
		t.Errorf("snapshot = label %q, %d signals; want 2014Q1, %d",
			snap.Label, len(snap.Analysis.Signals), len(a.Signals))
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]rank.Method{
		"exclusiveness":      rank.ByExclusivenessConf,
		"exclusiveness-lift": rank.ByExclusivenessLift,
		"confidence":         rank.ByConfidence,
		"lift":               rank.ByLift,
		"improvement":        rank.ByImprovement,
	}
	for in, want := range cases {
		got, err := parseMethod(in)
		if err != nil || got != want {
			t.Errorf("parseMethod(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestPrintText(t *testing.T) {
	a := testAnalysis(t)
	var buf bytes.Buffer
	printText(&buf, a, a.Signals, "2014Q1")
	out := buf.String()
	for _, want := range []string{"Quarter 2014Q1", "ASPIRIN+WARFARIN", "Haemorrhage", "known (severe)"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintJSON(t *testing.T) {
	a := testAnalysis(t)
	var buf bytes.Buffer
	printJSON(&buf, a.Signals)
	var out []jsonSignal
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no signals in json")
	}
	top := out[0]
	if top.Rank != 1 || top.Support != 10 || !top.Known || top.Source == "" {
		t.Errorf("top json signal = %+v", top)
	}
	if len(top.Reports) != 10 {
		t.Errorf("report ids = %d", len(top.Reports))
	}
}

func TestPrintCSV(t *testing.T) {
	a := testAnalysis(t)
	var buf bytes.Buffer
	printCSV(&buf, a.Signals)
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("csv rows = %d", len(rows))
	}
	if rows[0][0] != "rank" || len(rows[0]) != 8 {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "1" || !strings.Contains(rows[1][2], "ASPIRIN") {
		t.Errorf("first row = %v", rows[1])
	}
}
