// Command maras-mine runs the full MARAS pipeline over a FAERS
// quarter (real or synthetic — same file layout) and prints the
// ranked multi-drug adverse-reaction signals.
//
// Usage:
//
//	maras-mine -data data -quarter 2014Q1 [-top 20] [-method exclusiveness]
//	           [-minsup 8] [-theta 0.5] [-format text|json|csv]
//	           [-drug ASPIRIN] [-novel] [-snapshot-out snapshots/]
//
// With -snapshot-out DIR the full analysis (before -drug/-novel/-top
// output filtering) is additionally persisted as DIR/QUARTER.maras —
// a binary snapshot maras-server -store can serve without re-mining.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/network"
	"maras/internal/rank"
	"maras/internal/report"
	"maras/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maras-mine: ")

	var (
		data    = flag.String("data", "data", "directory with FAERS quarter files")
		quarter = flag.String("quarter", "2014Q1", "quarter label")
		top     = flag.Int("top", 20, "signals to print")
		method  = flag.String("method", "exclusiveness", "ranking: exclusiveness|exclusiveness-lift|confidence|lift|improvement")
		minsup  = flag.Int("minsup", 8, "absolute minimum support")
		theta   = flag.Float64("theta", 0.5, "exclusiveness variation penalty θ in [0,1]")
		format  = flag.String("format", "text", "output: text|json|csv|dot (Graphviz interaction network)")
		drug    = flag.String("drug", "", "only signals mentioning this drug or reaction")
		novel   = flag.Bool("novel", false, "only signals absent from the knowledge base")
		suspect = flag.Bool("suspect-only", false, "mine only suspect drugs (role PS/SS/I)")
		snapOut = flag.String("snapshot-out", "", "also write the analysis as a snapshot into this store directory")
	)
	flag.Parse()

	q, err := faers.LoadQuarter(*data, *quarter)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.NewOptions()
	opts.MinSupport = *minsup
	opts.Theta = *theta
	opts.SuspectOnly = *suspect
	opts.TopK = 0 // filter first, cut later
	m, err := parseMethod(*method)
	if err != nil {
		log.Fatal(err)
	}
	opts.Method = m

	a, err := core.RunQuarter(q, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Ingest-quality audit: one log line (plus one per finding) so a
	// batch pipeline notices a bad quarter without scraping the server.
	qr := audit.ComputeQuality(*quarter, a)
	audit.EvaluateQuality(qr, nil, audit.DefaultThresholds())
	log.Printf("ingest quality: %s (reports %d/%d, drop %.1f%%, signals %d)",
		qr.Verdict, qr.Reports, qr.ReportsIn, 100*qr.DropRate, qr.Signals)
	for _, f := range qr.Findings {
		log.Printf("  quality %s [%s]: %s", f.Severity, f.Rule, f.Message)
	}

	if *snapOut != "" {
		path, err := writeSnapshot(*snapOut, *quarter, a)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("snapshot written: %s", path)
	}

	signals := a.Signals
	if *drug != "" {
		// FilterSignals matches case-insensitively; one query suffices.
		signals = a.FilterSignals(*drug)
	}
	if *novel {
		filtered := signals[:0:0]
		for _, s := range signals {
			if s.Known == nil {
				filtered = append(filtered, s)
			}
		}
		signals = filtered
	}
	if *top > 0 && len(signals) > *top {
		signals = signals[:*top]
	}

	switch *format {
	case "text":
		printText(os.Stdout, a, signals, *quarter)
	case "json":
		printJSON(os.Stdout, signals)
	case "csv":
		printCSV(os.Stdout, signals)
	case "dot":
		fmt.Fprint(os.Stdout, network.Build(signals).DOT())
	default:
		log.Fatalf("unknown format %q", *format)
	}
}

// writeSnapshot persists the analysis into the store directory
// (created if absent) as dir/quarter.maras and returns the path.
func writeSnapshot(dir, quarter string, a *core.Analysis) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, quarter+store.Ext)
	if err := store.WriteFile(path, quarter, a); err != nil {
		return "", err
	}
	return path, nil
}

func parseMethod(s string) (rank.Method, error) {
	switch s {
	case "exclusiveness":
		return rank.ByExclusivenessConf, nil
	case "exclusiveness-lift":
		return rank.ByExclusivenessLift, nil
	case "confidence":
		return rank.ByConfidence, nil
	case "lift":
		return rank.ByLift, nil
	case "improvement":
		return rank.ByImprovement, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func printText(w io.Writer, a *core.Analysis, signals []core.Signal, quarter string) {
	fmt.Fprintf(w, "Quarter %s: %d reports, %d drugs, %d reactions (after cleaning: %d duplicates removed, %d spellings fixed)\n\n",
		quarter, a.Stats.Reports, a.Stats.Drugs, a.Stats.Reactions,
		a.Cleaning.DuplicateReports, a.Cleaning.DrugSpellingsFixed+a.Cleaning.ReacSpellingsFixed)
	t := report.NewTable("Ranked multi-drug ADR signals",
		"Rank", "Score", "Drugs", "Reactions", "Sup", "Conf", "Lift", "Status")
	for _, s := range signals {
		status := "novel"
		if s.Known != nil {
			status = "known (" + s.Known.Severity.String() + ")"
		}
		t.AddRow(s.Rank, s.Score,
			strings.Join(s.Drugs, "+"),
			strings.Join(s.Reactions, "; "),
			s.Support, s.Confidence, s.Lift, status)
	}
	t.Render(w)
}

type jsonSignal struct {
	Rank      int      `json:"rank"`
	Score     float64  `json:"score"`
	Drugs     []string `json:"drugs"`
	Reactions []string `json:"reactions"`
	Support   int      `json:"support"`
	Conf      float64  `json:"confidence"`
	Lift      float64  `json:"lift"`
	Known     bool     `json:"known"`
	Source    string   `json:"source,omitempty"`
	Reports   []string `json:"report_ids"`
}

func printJSON(w io.Writer, signals []core.Signal) {
	out := make([]jsonSignal, len(signals))
	for i, s := range signals {
		out[i] = jsonSignal{
			Rank: s.Rank, Score: s.Score, Drugs: s.Drugs, Reactions: s.Reactions,
			Support: s.Support, Conf: s.Confidence, Lift: s.Lift,
			Known: s.Known != nil, Reports: s.ReportIDs,
		}
		if s.Known != nil {
			out[i].Source = s.Known.Source
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

func printCSV(out io.Writer, signals []core.Signal) {
	w := csv.NewWriter(out)
	defer w.Flush()
	w.Write([]string{"rank", "score", "drugs", "reactions", "support", "confidence", "lift", "known"})
	for _, s := range signals {
		w.Write([]string{
			fmt.Sprint(s.Rank),
			fmt.Sprintf("%.6f", s.Score),
			strings.Join(s.Drugs, "+"),
			strings.Join(s.Reactions, ";"),
			fmt.Sprint(s.Support),
			fmt.Sprintf("%.4f", s.Confidence),
			fmt.Sprintf("%.4f", s.Lift),
			fmt.Sprint(s.Known != nil),
		})
	}
}
