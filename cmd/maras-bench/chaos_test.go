package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"maras/internal/resilience"
)

// TestRunChaosCustomMixWritesArtifact runs the chaos experiment as the
// CI smoke does — one custom mix combining a corrupt decode with 20%
// load delays — and checks the acceptance invariant on the artifact:
// availability at least 99%, nothing failed, the corrupt snapshot
// quarantined, and the store recovered to all-fresh serving.
func TestRunChaosCustomMixWritesArtifact(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	out := filepath.Join(t.TempDir(), "BENCH_chaos.json")
	cfg := benchConfig{
		seed: 3, reports: 400, minsup: 3, chaosOut: out,
		failpoints: resilience.FPDecode + "=error*1;" + resilience.FPLoad + "=delay(2ms,0.2)",
	}
	if err := runChaos(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art chaosArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Mixes) != 1 || art.Mixes[0].Mix != "custom" {
		t.Fatalf("mixes = %+v, want one custom mix", art.Mixes)
	}
	m := art.Mixes[0]
	if m.Requests == 0 || m.Fresh+m.Stale+m.Shed+m.Failed != m.Requests {
		t.Errorf("outcome counts do not add up: %+v", m)
	}
	if m.Availability < 0.99 {
		t.Errorf("availability = %.3f, want >= 0.99", m.Availability)
	}
	if m.Failed != 0 {
		t.Errorf("%d requests failed outright under the fault mix", m.Failed)
	}
	if m.Quarantined != 1 {
		t.Errorf("quarantined = %d, want exactly the one corrupt snapshot", m.Quarantined)
	}
	if m.RecoveryMillis < 0 {
		t.Errorf("recovery latency missing: %+v", m)
	}
	if len(m.Sites) == 0 {
		t.Error("no failpoint site stats recorded")
	}
}
