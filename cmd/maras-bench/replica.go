package main

// The replica experiment measures the replicated snapshot store under
// network chaos. It spins three in-process nodes — full, partial, and
// empty — wired into a full mesh through a fault-injecting transport,
// then drives the anti-entropy loop through cold convergence, a
// partition with live client reads (failover availability), heal,
// added lag, a flapping peer, and a peer serving corrupt bytes. Gates:
// every phase converges all three merkle roots before its deadline,
// client reads sustain >=99% availability with one of three nodes
// partitioned, the set recovers to all-local serving after heal, and
// corrupt peer bytes are rejected without ever being installed. The
// numbers land in BENCH_replica.json; any gate failure exits nonzero.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/obs"
	"maras/internal/replica"
	"maras/internal/resilience"
	"maras/internal/store"
)

// chaosNet is the shared fault switchboard every node's (and the
// client's) transport consults per request.
type chaosNet struct {
	mu          sync.Mutex
	partitioned map[string]bool // host:port -> unreachable
	corrupt     map[string]bool // host:port -> snapshot bodies get a flipped byte
	lag         time.Duration
}

func newChaosNet() *chaosNet {
	return &chaosNet{partitioned: map[string]bool{}, corrupt: map[string]bool{}}
}

func (c *chaosNet) setPartitioned(host string, on bool) {
	c.mu.Lock()
	c.partitioned[host] = on
	c.mu.Unlock()
}

func (c *chaosNet) setCorrupt(host string, on bool) {
	c.mu.Lock()
	c.corrupt[host] = on
	c.mu.Unlock()
}

func (c *chaosNet) setLag(d time.Duration) {
	c.mu.Lock()
	c.lag = d
	c.mu.Unlock()
}

// chaosTransport injects the switchboard's faults into one endpoint's
// outbound requests: a partition severs the pair when either end is
// cut off, lag delays every request, and a corrupt host's snapshot
// bodies get one byte flipped in flight.
type chaosTransport struct {
	net  *chaosNet
	self string // this endpoint's host:port; "" for the client
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host
	t.net.mu.Lock()
	cut := t.net.partitioned[target] || (t.self != "" && t.net.partitioned[t.self])
	lag := t.net.lag
	corrupt := t.net.corrupt[target]
	t.net.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("chaos: partitioned (%s -> %s)", t.self, target)
	}
	if lag > 0 {
		time.Sleep(lag)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if corrupt && strings.Contains(req.URL.Path, "/sync/snapshot/") && resp.StatusCode == http.StatusOK {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			body[len(body)/2] ^= 0x55
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}

// benchNode is one in-process replica: registry, node, metrics, and
// its HTTP front door (read route + sync endpoints on one listener).
type benchNode struct {
	name string
	reg  *store.Registry
	node *replica.Node
	met  *replica.Metrics
	srv  *httptest.Server
	host string
}

func (b *benchNode) root() (string, int, error) {
	t, err := b.node.InventoryTree()
	if err != nil {
		return "", 0, err
	}
	return t.RootHex(), t.Len(), nil
}

// replicaArtifact is the BENCH_replica.json payload.
type replicaArtifact struct {
	Nodes                 int            `json:"nodes"`
	SyncIntervalMillis    int64          `json:"sync_interval_millis"`
	ConvergeMillis        int64          `json:"converge_millis"`
	PartitionReads        int            `json:"partition_reads"`
	PartitionFailed       int            `json:"partition_failed"`
	PartitionAvailability float64        `json:"partition_availability"`
	PartitionOrigins      map[string]int `json:"partition_origins"`
	HealMillis            int64          `json:"heal_millis"`
	LagConvergeMillis     int64          `json:"lag_converge_millis"`
	FlapConvergeMillis    int64          `json:"flap_converge_millis"`
	CorruptRejected       int64          `json:"corrupt_rejected"`
	CorruptConvergeMillis int64          `json:"corrupt_converge_millis"`
	SyncRounds            int64          `json:"sync_rounds"`
	FetchedSnapshots      int64          `json:"fetched_snapshots"`
}

const (
	replicaSyncInterval = 25 * time.Millisecond
	replicaDeadline     = 20 * time.Second
)

// runReplica builds the 3-node set and drives it through the chaos
// phases.
func runReplica(cfg benchConfig) error {
	q, _, err := genQuarter(cfg, quarterLabels[0], 0)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	a, err := tracedRun("replica", q, opts)
	if err != nil {
		return err
	}

	net := newChaosNet()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Three nodes with divergent starting inventories: A holds three
	// quarters, B one, C none.
	seeds := map[string][]string{
		"a": {"2014Q1", "2014Q2", "2014Q3"},
		"b": {"2014Q1"},
		"c": {},
	}
	var nodes []*benchNode
	for _, name := range []string{"a", "b", "c"} {
		dir, err := os.MkdirTemp("", "maras-replica-"+name+"-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		reg, err := store.OpenRegistry(dir, store.RegistryOptions{
			Auditor: &audit.Auditor{Log: audit.NewLog(audit.LogOptions{})},
			Resilience: &store.ResilienceOptions{
				Quarantine: true,
				Retry: resilience.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond,
					MaxDelay: 5 * time.Millisecond, Budget: time.Second},
				Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: 100 * time.Millisecond},
			},
		})
		if err != nil {
			return err
		}
		for _, label := range seeds[name] {
			if err := reg.Save(label, a); err != nil {
				return err
			}
		}
		bn := &benchNode{name: name, reg: reg}
		mux := http.NewServeMux()
		bn.srv = httptest.NewServer(mux)
		defer bn.srv.Close()
		u, err := url.Parse(bn.srv.URL)
		if err != nil {
			return err
		}
		bn.host = u.Host
		nodes = append(nodes, bn)
		// Routes land on the mux after the peer URLs are known (below);
		// ServeMux registration is safe after the server starts.
		_ = mux
	}

	// Full mesh: every node peers with the other two through its own
	// chaos transport; reads go through LoadResilient with the peer
	// tier wired, exactly like maras-server's quarter routes.
	for i, bn := range nodes {
		var peers []string
		for j, other := range nodes {
			if j != i {
				peers = append(peers, other.srv.URL)
			}
		}
		bn.met = replica.NewMetrics(obs.NewRegistry())
		bn.node = replica.NewNode(bn.reg, replica.Options{
			Name:      bn.name,
			Peers:     peers,
			Interval:  replicaSyncInterval,
			Timeout:   2 * time.Second,
			Breaker:   resilience.BreakerConfig{FailureThreshold: 2, Cooldown: 150 * time.Millisecond},
			Transport: &chaosTransport{net: net, self: bn.host},
			Metrics:   bn.met,
		})
		bn.reg.SetPeerFetch(bn.node.FetchAnalysis)
		mux := bn.srv.Config.Handler.(*http.ServeMux)
		bn.node.Mount(mux)
		mux.Handle("/q/", chaosHandler(bn.reg))
		bn.node.Start(ctx)
	}

	art := replicaArtifact{Nodes: len(nodes), SyncIntervalMillis: replicaSyncInterval.Milliseconds()}
	var gateFailures []string
	gate := func(ok bool, format string, args ...any) {
		if !ok {
			msg := fmt.Sprintf(format, args...)
			gateFailures = append(gateFailures, msg)
			fmt.Printf("  !! %s\n", msg)
		}
	}

	fmt.Printf("Replicated store: %d nodes, %s sync interval, full mesh\n\n", len(nodes), replicaSyncInterval)

	// Phase 1 — cold convergence: divergent inventories must agree.
	d, ok := waitConverged(nodes, 3, replicaDeadline)
	art.ConvergeMillis = d.Milliseconds()
	gate(ok, "cold convergence did not finish within %s", replicaDeadline)
	fmt.Printf("%-26s %6dms  (3 quarters on every node)\n", "cold convergence", art.ConvergeMillis)

	// Phase 2 — partition node a, write a new quarter to b, and read
	// from the client's point of view with failover across nodes.
	net.setPartitioned(nodes[0].host, true)
	if err := nodes[1].reg.Save("2014Q4", a); err != nil {
		return err
	}
	client := &http.Client{Transport: &chaosTransport{net: net}, Timeout: 2 * time.Second}
	labels := []string{"2014Q1", "2014Q2", "2014Q3", "2014Q4"}
	art.PartitionOrigins = map[string]int{}
	const partitionReads = 300
	for i := 0; i < partitionReads; i++ {
		label := labels[i%len(labels)]
		served := false
		for attempt := 0; attempt < len(nodes); attempt++ {
			bn := nodes[(i+attempt)%len(nodes)]
			resp, err := client.Get(bn.srv.URL + "/q/" + label)
			if err != nil {
				continue
			}
			origin := resp.Header.Get(store.OriginHeader)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				art.PartitionOrigins[origin]++
				served = true
				break
			}
		}
		art.PartitionReads++
		if !served {
			art.PartitionFailed++
		}
		time.Sleep(time.Millisecond)
	}
	art.PartitionAvailability = float64(art.PartitionReads-art.PartitionFailed) / float64(art.PartitionReads)
	gate(art.PartitionAvailability >= 0.99,
		"read availability %.4f under partition, want >= 0.99", art.PartitionAvailability)
	fmt.Printf("%-26s %6.2f%%  (%d reads, %d failed, origins %v)\n", "partition availability",
		100*art.PartitionAvailability, art.PartitionReads, art.PartitionFailed, art.PartitionOrigins)

	// Phase 3 — heal: the partitioned node catches up (4 quarters
	// everywhere) and every label on every node serves local again.
	net.setPartitioned(nodes[0].host, false)
	d, ok = waitConverged(nodes, 4, replicaDeadline)
	art.HealMillis = d.Milliseconds()
	gate(ok, "post-heal convergence did not finish within %s", replicaDeadline)
	localStart := time.Now()
	_, allLocal := pollUntil(replicaDeadline, func() bool {
		for _, bn := range nodes {
			for _, label := range labels {
				resp, err := client.Get(bn.srv.URL + "/q/" + label)
				if err != nil {
					return false
				}
				origin := resp.Header.Get(store.OriginHeader)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || origin != string(store.OriginLocal) {
					return false
				}
			}
		}
		return true
	})
	gate(allLocal, "not every read returned to origin=local within %s of heal", replicaDeadline)
	fmt.Printf("%-26s %6dms  (all reads origin=local after %s)\n", "heal + catch-up",
		art.HealMillis, time.Since(localStart).Round(time.Millisecond))

	// Phase 4 — lag on every link: a new quarter still propagates.
	net.setLag(15 * time.Millisecond)
	if err := nodes[2].reg.Save("2015Q1", a); err != nil {
		return err
	}
	d, ok = waitConverged(nodes, 5, replicaDeadline)
	art.LagConvergeMillis = d.Milliseconds()
	gate(ok, "convergence under 15ms lag did not finish within %s", replicaDeadline)
	net.setLag(0)
	fmt.Printf("%-26s %6dms  (15ms lag on every link)\n", "lag convergence", art.LagConvergeMillis)

	// Phase 5 — flapping peer: node b cycles in and out of the network
	// while a new quarter lands on a; the set still converges.
	flapDone := make(chan struct{})
	go func() {
		defer close(flapDone)
		for i := 0; i < 10; i++ {
			net.setPartitioned(nodes[1].host, i%2 == 0)
			time.Sleep(40 * time.Millisecond)
		}
		net.setPartitioned(nodes[1].host, false)
	}()
	if err := nodes[0].reg.Save("2015Q2", a); err != nil {
		return err
	}
	<-flapDone
	d, ok = waitConverged(nodes, 6, replicaDeadline)
	art.FlapConvergeMillis = d.Milliseconds()
	gate(ok, "convergence after peer flapping did not finish within %s", replicaDeadline)
	fmt.Printf("%-26s %6dms  (peer b flapped 10x at 40ms)\n", "flap convergence", art.FlapConvergeMillis)

	// Phase 6 — corrupt peer: b serves flipped snapshot bytes for a
	// new quarter. The fetchers must reject every copy (nothing
	// installed on a or c), then converge once the corruption clears.
	net.setCorrupt(nodes[1].host, true)
	if err := nodes[1].reg.Save("2015Q3", a); err != nil {
		return err
	}
	_, sawRejects := pollUntil(replicaDeadline, func() bool {
		return nodes[0].met.CorruptFetches.Value()+nodes[2].met.CorruptFetches.Value() > 0
	})
	gate(sawRejects, "no corrupt fetch was rejected while peer b served flipped bytes")
	time.Sleep(4 * replicaSyncInterval) // a few more rounds of rejected fetches
	gate(!nodes[0].reg.Has("2015Q3") && !nodes[2].reg.Has("2015Q3"),
		"corrupt peer bytes were installed into a healthy node's store")
	net.setCorrupt(nodes[1].host, false)
	d, ok = waitConverged(nodes, 7, replicaDeadline)
	art.CorruptConvergeMillis = d.Milliseconds()
	gate(ok, "convergence after corruption cleared did not finish within %s", replicaDeadline)
	art.CorruptRejected = nodes[0].met.CorruptFetches.Value() + nodes[2].met.CorruptFetches.Value()
	fmt.Printf("%-26s %6dms  (%d corrupt fetches rejected, none installed)\n",
		"corrupt-peer recovery", art.CorruptConvergeMillis, art.CorruptRejected)

	for _, bn := range nodes {
		art.SyncRounds += bn.met.SyncRounds.Value()
		art.FetchedSnapshots += bn.met.Fetches.Value()
	}
	fmt.Printf("\n%d sync rounds total, %d snapshots fetched across the set\n",
		art.SyncRounds, art.FetchedSnapshots)
	fmt.Println("\nShape check: cold divergence, a healed partition, lag, a flapping peer, and a")
	fmt.Println("corrupt peer all converge to identical merkle roots; reads ride the ladder")
	fmt.Println("(local -> stale -> peer) to stay above 99% availability with one node down; and")
	fmt.Println("corrupt bytes are rejected at the verify-before-disk gate, never installed.")

	if cfg.replicaOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.replicaOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote replica artifact to %s\n", cfg.replicaOut)
	}
	if len(gateFailures) > 0 {
		return fmt.Errorf("replica gates failed: %s", strings.Join(gateFailures, "; "))
	}
	return nil
}

// waitConverged polls until every node advertises wantLeaves quarters
// and all merkle roots agree.
func waitConverged(nodes []*benchNode, wantLeaves int, deadline time.Duration) (time.Duration, bool) {
	return pollUntil(deadline, func() bool {
		var first string
		for i, bn := range nodes {
			root, n, err := bn.root()
			if err != nil || n != wantLeaves {
				return false
			}
			if i == 0 {
				first = root
			} else if root != first {
				return false
			}
		}
		return true
	})
}

// pollUntil runs cond every few milliseconds until it holds or the
// deadline passes, returning the elapsed time and whether it held.
func pollUntil(deadline time.Duration, cond func() bool) (time.Duration, bool) {
	start := time.Now()
	for {
		if cond() {
			return time.Since(start), true
		}
		if time.Since(start) > deadline {
			return time.Since(start), false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
