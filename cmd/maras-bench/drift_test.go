package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunDriftWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_drift.json")
	cfg := benchConfig{seed: 3, reports: 400, minsup: 3, driftOut: out}
	if err := runDrift(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art driftArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Quarters) != len(quarterLabels) {
		t.Errorf("quarters = %v", art.Quarters)
	}
	if len(art.Pairs) != len(quarterLabels)-1 {
		t.Errorf("pairs = %d, want %d", len(art.Pairs), len(quarterLabels)-1)
	}
	if len(art.Quality) != len(quarterLabels) {
		t.Errorf("quality reports = %d, want %d", len(art.Quality), len(quarterLabels))
	}
	for _, p := range art.Pairs {
		if p.Verdict == "" {
			t.Errorf("pair %s->%s has no verdict", p.From, p.To)
		}
		if p.New+p.Dropped+p.Persisting == 0 {
			t.Errorf("pair %s->%s compared empty sets", p.From, p.To)
		}
	}
	for _, q := range art.Quality {
		if q.Verdict == "" || q.Reports == 0 {
			t.Errorf("quality %s incomplete: verdict %q, reports %d", q.Label, q.Verdict, q.Reports)
		}
	}
}

func TestRunDriftSkipsArtifactWhenDisabled(t *testing.T) {
	cfg := benchConfig{seed: 3, reports: 400, minsup: 3, driftOut: ""}
	if err := runDrift(cfg); err != nil {
		t.Fatal(err)
	}
}
