package main

// The prof experiment validates the continuous-profiling subsystem end
// to end and gates on its three promises. Attribution: CPU samples
// recorded while the pipeline mines must overwhelmingly carry stage=
// labels, or flame graphs cannot be cut by stage. Overhead: running
// the capture loop at a steady-state duty cycle must not slow mining
// measurably. Triggering: an SLO burn on a live server must land a
// cause-tagged profile artifact that an operator can retrieve, CRC
// intact, from /debug/profiles/{id}. Failing any gate exits nonzero;
// the numbers land in BENCH_prof.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	rpprof "runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/obs"
	"maras/internal/obs/history"
	"maras/internal/obs/prof"
	"maras/internal/resilience"
	"maras/internal/slo"
	"maras/internal/store"
)

// Gates and knobs for the three phases.
const (
	profStageFloor   = 0.70 // min fraction of CPU samples carrying stage=
	profOverheadCap  = 0.03 // max mine slowdown under steady-state capture
	profAttribWindow = 1500 * time.Millisecond
	profMinIters     = 6               // per overhead phase
	profBaseWall     = 4 * time.Second // baseline phases run at least this long
	profMinCycles    = 2               // captured phase must see this many capture cycles
	profCaptMaxWall  = 90 * time.Second
	// A capture cycle steals ~0.2s of core time on a single-core box
	// (StopCPUProfile symbolization dominates), so steady-state
	// overhead is roughly 0.2s/interval: 30s keeps the expected cost
	// near 0.7%, well inside the 3% gate even with measurement noise.
	profCaptInterval = 30 * time.Second
	profCaptWindow   = 250 * time.Millisecond
	profBurnMaxWait  = 8 * time.Second
)

// profArtifact is the BENCH_prof.json payload.
type profArtifact struct {
	Attribution struct {
		Iterations    int                `json:"iterations"`
		ProfileMillis int64              `json:"profile_millis"`
		TotalWeight   int64              `json:"total_weight"`
		StageFraction float64            `json:"stage_fraction"`
		Stages        map[string]float64 `json:"stages"` // per stage= value share
		Pass          bool               `json:"pass"`
	} `json:"attribution"`
	Overhead struct {
		Iterations     int     `json:"captured_iterations"`
		BaselineMillis float64 `json:"baseline_mean_millis"`
		CapturedMillis float64 `json:"captured_mean_millis"`
		Cycles         uint64  `json:"capture_cycles"`
		Fraction       float64 `json:"overhead_fraction"`
		Pass           bool    `json:"pass"`
	} `json:"overhead"`
	Trigger struct {
		BreachDetectMillis int64  `json:"breach_detect_millis"`
		ArtifactID         string `json:"artifact_id"`
		Cause              string `json:"cause"`
		Event              string `json:"event"`
		Bytes              int    `json:"bytes"`
		CRCOK              bool   `json:"crc_ok"`
		ParseOK            bool   `json:"parse_ok"`
		Pass               bool   `json:"pass"`
	} `json:"trigger"`
}

// runProf drives the three-phase profiling validation and writes
// BENCH_prof.json (path from -prof-out).
func runProf(cfg benchConfig) error {
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup

	var art profArtifact
	var failures []string

	// ---- Phase A: stage attribution under the profiler.
	fmt.Println("Phase A — stage attribution: profile repeated pipeline runs, parse labels back out")
	if err := profAttribution(q, opts, &art); err != nil {
		return err
	}
	fmt.Printf("  %d runs in %dms: %.1f%% of sample weight stage-labeled (floor %.0f%%)\n",
		art.Attribution.Iterations, art.Attribution.ProfileMillis,
		100*art.Attribution.StageFraction, 100*profStageFloor)
	for stage, share := range art.Attribution.Stages {
		fmt.Printf("    stage=%-12s %5.1f%%\n", stage, 100*share)
	}
	if !art.Attribution.Pass {
		failures = append(failures, fmt.Sprintf(
			"stage attribution %.1f%% below the %.0f%% floor",
			100*art.Attribution.StageFraction, 100*profStageFloor))
	}

	// ---- Phase B: steady-state capture overhead on mine wall time.
	// A smaller quarter keeps iterations short, so each phase holds
	// enough of them for a stable mean on a drifting machine.
	fmt.Println("\nPhase B — capture overhead: mine with and without the scheduled capture loop")
	cfgB := cfg
	if cfgB.reports == 0 {
		cfgB.reports = 6000
	}
	qB, _, err := genQuarter(cfgB, "2014Q1", 0)
	if err != nil {
		return err
	}
	if err := profOverhead(qB, opts, &art); err != nil {
		return err
	}
	fmt.Printf("  baseline mean %.1fms, captured mean %.1fms over %d cycles: overhead %.2f%% (cap %.0f%%)\n",
		art.Overhead.BaselineMillis, art.Overhead.CapturedMillis, art.Overhead.Cycles,
		100*art.Overhead.Fraction, 100*profOverheadCap)
	if !art.Overhead.Pass {
		failures = append(failures, fmt.Sprintf(
			"capture overhead %.2f%% exceeds the %.0f%% cap",
			100*art.Overhead.Fraction, 100*profOverheadCap))
	}

	// ---- Phase C: anomaly-triggered capture on a live burning server.
	fmt.Println("\nPhase C — triggered capture: burn the SLO on a live server, retrieve the artifact")
	if err := profTriggered(cfg, &art); err != nil {
		return err
	}
	if art.Trigger.Pass {
		fmt.Printf("  burn detected in %dms; artifact %s (%d bytes, cause %s) retrieved, CRC ok, parses\n",
			art.Trigger.BreachDetectMillis, art.Trigger.ArtifactID,
			art.Trigger.Bytes, art.Trigger.Cause)
		fmt.Printf("  linked event: %s\n", art.Trigger.Event)
	} else {
		failures = append(failures, fmt.Sprintf(
			"triggered capture failed (artifact %q, crc=%v, parse=%v)",
			art.Trigger.ArtifactID, art.Trigger.CRCOK, art.Trigger.ParseOK))
	}

	fmt.Println("\nShape check: pipeline stages run under pprof.Do, so nearly every CPU sample taken")
	fmt.Println("while mining carries a stage= label; the capture loop's duty cycle keeps its cost")
	fmt.Println("inside measurement noise; and an SLO burn fires the audit subscriber, whose capture")
	fmt.Println("lands in the on-disk ring tagged with the burning rule and survives a CRC re-check.")

	if cfg.profOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.profOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote profiling artifact to %s\n", cfg.profOut)
	}
	if len(failures) > 0 {
		return fmt.Errorf("profiling gates failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

// profAttribution profiles repeated pipeline runs and parses the
// stage-label attribution back out of the recorded profile.
func profAttribution(q *faers.Quarter, opts core.Options, art *profArtifact) error {
	// Warm-up run keeps one-time costs (page-ins, dictionary growth)
	// out of the profiled window.
	if _, err := core.RunQuarter(q, opts); err != nil {
		return err
	}

	var buf bytes.Buffer
	if err := rpprof.StartCPUProfile(&buf); err != nil {
		return fmt.Errorf("start cpu profile: %w", err)
	}
	start := time.Now()
	iters := 0
	for iters < 2 || time.Since(start) < profAttribWindow {
		if _, err := core.RunQuarter(q, opts); err != nil {
			rpprof.StopCPUProfile()
			return err
		}
		iters++
	}
	rpprof.StopCPUProfile()
	elapsed := time.Since(start)

	stats, err := prof.ParseCPULabels(buf.Bytes())
	if err != nil {
		return fmt.Errorf("parse recorded profile: %w", err)
	}
	a := &art.Attribution
	a.Iterations = iters
	a.ProfileMillis = elapsed.Milliseconds()
	a.TotalWeight = stats.TotalWeight
	a.StageFraction = stats.Fraction(prof.LabelStage)
	a.Stages = map[string]float64{}
	if stats.TotalWeight > 0 {
		for stage, w := range stats.ByKeyValue[prof.LabelStage] {
			a.Stages[stage] = float64(w) / float64(stats.TotalWeight)
		}
	}
	a.Pass = stats.TotalWeight > 0 && a.StageFraction >= profStageFloor
	return nil
}

// profOverhead measures mine wall time in three symmetric phases —
// baseline, with the scheduled capture loop running, baseline again —
// and compares per-iteration means against the two baselines'
// average. Means matter: a capture cycle lands in one iteration out
// of several, so a median would hide exactly the cost being measured.
// Averaging baselines taken before and after the captured phase
// cancels the slow drift a long-running allocation-heavy process
// shows, which a single (or best-of) baseline would misread as
// capture cost. The capture cadence mirrors the server defaults' duty
// cycle; the captured phase keeps mining until at least profMinCycles
// cycles have fired so the cost is actually in the sample.
func profOverhead(q *faers.Quarter, opts core.Options, art *profArtifact) error {
	mine := func() (float64, error) {
		it := time.Now()
		if _, err := core.RunQuarter(q, opts); err != nil {
			return 0, err
		}
		return float64(time.Since(it).Microseconds()) / 1000, nil
	}
	baselinePhase := func() (float64, error) {
		start := time.Now()
		sum, iters := 0.0, 0
		// Time-bounded, not iteration-bounded: with short iterations a
		// handful of runs would sample too few GC cycles to match the
		// much longer captured phase's steady state. No forced GC
		// between phases either — mining runs continuously through
		// baseline → captured → baseline, so every phase sees the same
		// steady-state GC regime. (A runtime.GC() at a phase boundary
		// hands the short baselines a cheap post-collection honeymoon
		// the long captured phase doesn't get, inflating the apparent
		// overhead.)
		for iters < profMinIters || time.Since(start) < profBaseWall {
			ms, err := mine()
			if err != nil {
				return 0, err
			}
			sum += ms
			iters++
		}
		return sum / float64(iters), nil
	}

	// Untimed warmup: reach allocation steady state (dictionary
	// growth, page-ins, GC pacer) before any phase is measured.
	warmStart := time.Now()
	for i := 0; i < 2 || time.Since(warmStart) < profBaseWall; i++ {
		if _, err := mine(); err != nil {
			return err
		}
	}

	base1, err := baselinePhase()
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "maras-prof-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	pstore, err := prof.OpenStore(dir, prof.StoreOptions{})
	if err != nil {
		return err
	}
	captor := prof.NewCaptor(prof.CaptorOptions{
		Store:     pstore,
		CPUWindow: profCaptWindow,
		Interval:  profCaptInterval,
	})
	ctx, cancel := context.WithCancel(context.Background())
	captor.Start(ctx)
	start := time.Now()
	sum, iters := 0.0, 0
	for iters < profMinIters || captor.Stats().Cycles < profMinCycles {
		if time.Since(start) > profCaptMaxWall {
			captor.Stop()
			cancel()
			return fmt.Errorf("capture loop fired %d/%d cycles in %s; overhead unmeasured",
				captor.Stats().Cycles, profMinCycles, profCaptMaxWall)
		}
		ms, err := mine()
		if err != nil {
			captor.Stop()
			cancel()
			return err
		}
		sum += ms
		iters++
	}
	captor.Stop()
	cancel()
	capturedMean := sum / float64(iters)
	cycles := captor.Stats().Cycles

	base2, err := baselinePhase()
	if err != nil {
		return err
	}

	baseline := (base1 + base2) / 2
	overhead := 0.0
	if baseline > 0 && capturedMean > baseline {
		overhead = capturedMean/baseline - 1
	}

	o := &art.Overhead
	o.Iterations = iters
	o.BaselineMillis = baseline
	o.CapturedMillis = capturedMean
	o.Cycles = cycles
	o.Fraction = overhead
	o.Pass = overhead < profOverheadCap
	return nil
}

// profTriggered stands up a live server with the slo experiment's
// scaled burn-rate spine plus the profiling trigger, burns the
// availability SLO with a load failpoint, and retrieves the resulting
// cause-tagged artifact over /debug/profiles like an operator would.
func profTriggered(cfg benchConfig, art *profArtifact) error {
	labels := quarterLabels[:2]
	dir, err := os.MkdirTemp("", "maras-prof-slo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for i, label := range labels {
		q, _, err := genQuarter(cfg, label, int64(i))
		if err != nil {
			return err
		}
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		a, err := tracedRun("prof", q, opts)
		if err != nil {
			return err
		}
		if err := store.WriteFile(filepath.Join(dir, label+store.Ext), label, a); err != nil {
			return err
		}
	}

	reg := obs.NewRegistry()
	sreg, err := store.OpenRegistry(dir, store.RegistryOptions{
		MaxOpen: 1,
		Metrics: obs.NewStoreMetrics(reg),
	})
	if err != nil {
		return err
	}
	alog := audit.NewLog(audit.LogOptions{Metrics: reg})
	ready := &obs.Readiness{}
	ready.SetReady()
	mw := obs.NewHTTPMetrics(reg, nil)
	hist := history.New(reg, history.Options{
		Interval:  sloScrapeEvery,
		Retention: 2 * time.Minute,
	})
	eng := slo.NewEngine(hist, slo.Config{
		Objectives: slo.DefaultObjectives(sloAvailTarget, sloP99Target, 0.5, 0.5),
		Rules:      slo.DefaultRules(sloWindowScale),
		Log:        alog,
		Ready:      ready,
		Metrics:    reg,
	})
	hist.OnScrape(eng.Tick)

	// The profiling stack, wired exactly as maras-server wires it: the
	// audit subscriber adapts events into the trigger, the trigger
	// dedups per cause and captures on its own goroutine.
	pdir, err := os.MkdirTemp("", "maras-prof-artifacts-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(pdir)
	pstore, err := prof.OpenStore(pdir, prof.StoreOptions{Metrics: reg})
	if err != nil {
		return err
	}
	captor := prof.NewCaptor(prof.CaptorOptions{
		Store:         pstore,
		TriggerWindow: 200 * time.Millisecond,
		Interval:      0, // triggered captures only
	})
	trigger := prof.NewTrigger(prof.TriggerOptions{
		Captor:   captor,
		Cooldown: 30 * time.Second,
	})
	var burned atomic.Bool
	alog.OnRecord(func(e audit.Event) {
		trigger.Observe(e.Rule, string(e.Severity), e.Scope, e.Message)
		if e.Rule == "slo_burn" && e.Severity == audit.SevFail {
			burned.Store(true)
		}
	})

	mux := http.NewServeMux()
	mw.Handle(mux, "/q/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		label := strings.TrimPrefix(r.URL.Path, "/q/")
		a, _, err := sreg.LoadResilient(r.Context(), label)
		if err != nil {
			http.Error(w, "quarter unavailable: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%s: %d signals\n", label, len(a.Signals))
	}))
	profH := prof.Handler(captor, "/debug/profiles")
	mux.Handle("/debug/profiles", profH)
	mux.Handle("/debug/profiles/", profH)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hist.Start(ctx)

	resilience.Seed(cfg.seed)
	defer resilience.DisableAll()
	client := ts.Client()
	// Round-robin across quarters: MaxOpen 1 keeps the LRU churning so
	// every request walks the disk path the failpoint arms.
	seq := 0
	hit := func() {
		label := labels[seq%len(labels)]
		seq++
		resp, err := client.Get(ts.URL + "/q/" + label)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Clean traffic establishes baselines, then the armed failpoint
	// drives 5xx far past the fast-burn budget.
	cleanStart := time.Now()
	for time.Since(cleanStart) < sloCleanFor {
		hit()
		time.Sleep(sloRequestGap)
	}
	if err := resilience.Enable(resilience.FPLoad + sloFaultSpec); err != nil {
		return err
	}
	burnStart := time.Now()
	for time.Since(burnStart) < profBurnMaxWait && !burned.Load() {
		hit()
		time.Sleep(sloRequestGap)
	}
	art.Trigger.BreachDetectMillis = time.Since(burnStart).Milliseconds()
	resilience.DisableAll()
	if !burned.Load() {
		return fmt.Errorf("fault mix never drove an slo_burn fail event in %s", profBurnMaxWait)
	}
	// The capture runs asynchronously off the audit subscriber; wait
	// for it to land before asking the server for it.
	trigger.Wait()

	// Retrieve like an operator: index first, then the artifact.
	resp, err := client.Get(ts.URL + "/debug/profiles?format=json")
	if err != nil {
		return err
	}
	var index struct {
		Artifacts []prof.Artifact `json:"artifacts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&index)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode /debug/profiles index: %w", err)
	}
	var burnArt prof.Artifact
	for _, a := range index.Artifacts {
		if a.Cause == "slo_burn" && a.Kind == "cpu" {
			burnArt = a
		}
	}
	if burnArt.ID == "" {
		return fmt.Errorf("no cpu artifact with cause slo_burn in the index (%d artifacts)", len(index.Artifacts))
	}
	resp, err = client.Get(ts.URL + "/debug/profiles/" + burnArt.ID)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch artifact %s: status %d, err %v", burnArt.ID, resp.StatusCode, err)
	}

	tr := &art.Trigger
	tr.ArtifactID = burnArt.ID
	tr.Cause = burnArt.Cause
	tr.Event = burnArt.Event
	tr.Bytes = len(body)
	tr.CRCOK = crc32.ChecksumIEEE(body) == burnArt.CRC
	_, perr := prof.ParseCPULabels(body)
	tr.ParseOK = perr == nil
	tr.Pass = tr.Bytes > 0 && tr.CRCOK && tr.ParseOK && tr.Event != ""
	return nil
}
