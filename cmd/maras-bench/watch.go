package main

// The watch experiment sizes the watchlist subsystem: build an
// inverted index over a synthetic population of watchlists (zipf-
// skewed drug interest, like every other popularity in internal/
// synth), then evaluate a mined quarter against it and measure what
// the ISSUE promises — that evaluation cost follows the changed
// signals and the lists they actually match, not the total
// population. The watch universe is deliberately larger than the
// quarter's dictionary: users subscribe to drugs that may never
// surface in a given quarter's signals, which is the entire point of
// a watchlist. Latency percentiles at a small and a full population
// (same quarter, same changed-signal count), a small-delta refresh,
// and the zero-alert re-evaluation land in BENCH_watch.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"maras/internal/core"
	"maras/internal/knowledge"
	"maras/internal/synth"
	"maras/internal/types"
	"maras/internal/watch"
)

// Universe sizes for watch-population sampling. The quarter's own
// drug/reaction vocabulary is shuffled into random ranks of a larger
// universe padded with salted variants, so watch popularity is
// independent of reporting popularity.
const (
	watchDrugUniverse = 50_000
	watchReacUniverse = 10_000
	watchZipfS        = 1.05
)

// watchEvalSample is the latency profile of one population size at a
// fixed changed-signal count (every iteration resets the quarter so
// all signals route).
type watchEvalSample struct {
	Lists          int     `json:"lists"`
	Iters          int     `json:"iters"`
	ChangedSignals int     `json:"changed_signals"`
	Candidates     int     `json:"candidates_per_eval"`
	AlertsPerEval  int     `json:"alerts_per_eval"`
	BuildMs        float64 `json:"index_build_ms"`
	P50Ms          float64 `json:"eval_p50_ms"`
	P99Ms          float64 `json:"eval_p99_ms"`
	MaxMs          float64 `json:"eval_max_ms"`
}

// watchDeltaSample is one incremental refresh: only Changed signals
// had their fingerprints perturbed.
type watchDeltaSample struct {
	Changed    int     `json:"changed_signals"`
	Candidates int     `json:"candidates"`
	Alerts     int     `json:"alerts"`
	DurationMs float64 `json:"duration_ms"`
}

// watchArtifact is the BENCH_watch.json payload.
type watchArtifact struct {
	Quarter        string  `json:"quarter"`
	Signals        int     `json:"signals"`
	Lists          int     `json:"lists"`
	Users          int     `json:"users"`
	IndexKeys      int     `json:"index_keys"`
	IndexPostings  int     `json:"index_postings"`
	IndexHeapBytes uint64  `json:"index_heap_bytes"`
	BytesPerList   float64 `json:"heap_bytes_per_list"`

	Populations []watchEvalSample `json:"populations"`
	Delta       watchDeltaSample  `json:"delta_eval"`
	// DedupRecheck re-evaluates the identical quarter without a reset:
	// every field must be zero or the fingerprint dedup is broken.
	DedupRecheck watch.Result `json:"dedup_recheck"`
	// P50RatioFullToSmall compares eval latency at the full population
	// vs the small one at the same changed-signal count.
	P50RatioFullToSmall float64 `json:"p50_ratio_full_to_small"`
}

// watchUniverse shuffles the quarter's real terms into random ranks
// of a size-n universe and pads the remaining ranks with salted
// variants (mimicking the messy verbatims real FAERS carries), so a
// zipf draw over ranks lands on a real term with probability
// len(real)/n regardless of how often that term is reported.
func watchUniverse(rng *rand.Rand, real []string, n int) []string {
	if n < len(real) {
		n = len(real)
	}
	out := make([]string, n)
	perm := rng.Perm(n)
	for i, term := range real {
		out[perm[i]] = term
	}
	next := 0
	for i := range out {
		if out[i] == "" {
			out[i] = fmt.Sprintf("%s /%05d/", real[next%len(real)], next)
			next++
		}
	}
	return out
}

// watchVocab splits a mined quarter's dictionary into drug and
// reaction terms.
func watchVocab(a *core.Analysis) (drugs, reacs []string) {
	dict := a.Dict()
	for i := 0; i < dict.Len(); i++ {
		it := types.Item(i)
		if dict.IsDrug(it) {
			drugs = append(drugs, dict.Name(it))
		} else {
			reacs = append(reacs, dict.Name(it))
		}
	}
	return drugs, reacs
}

// makeWatchlists synthesizes n watchlists: 90% watch 1-2 zipf-drawn
// drugs (a quarter of those add a reaction), 10% are reaction-only,
// thresholds and flags randomized. Deterministic under rng.
func makeWatchlists(rng *rand.Rand, n int, drugs, reacs []string) ([]*watch.Watchlist, int) {
	drugZ := synth.NewZipfSampler(len(drugs), watchZipfS)
	reacZ := synth.NewZipfSampler(len(reacs), watchZipfS)
	users := n/4 + 1
	floors := []string{"", "", "", "minor", "moderate", "severe"}

	out := make([]*watch.Watchlist, n)
	for i := range out {
		w := &watch.Watchlist{
			ID:   fmt.Sprintf("b%07d", i),
			User: fmt.Sprintf("u%06d", rng.Intn(users)),
		}
		if rng.Float64() < 0.9 {
			for j := 0; j < 1+rng.Intn(2); j++ {
				w.Drugs = append(w.Drugs, drugs[drugZ.Sample(rng)])
			}
			if rng.Float64() < 0.25 {
				w.Reactions = append(w.Reactions, reacs[reacZ.Sample(rng)])
			}
		} else {
			w.Reactions = append(w.Reactions, reacs[reacZ.Sample(rng)])
		}
		if rng.Float64() < 0.5 {
			w.MinScore = rng.Float64() * 0.5
		}
		if rng.Float64() < 0.3 {
			w.MinSupport = rng.Intn(20)
		}
		w.SeverityFloor = floors[rng.Intn(len(floors))]
		w.RareOnly = rng.Float64() < 0.1
		w.UnexpectedOnly = rng.Float64() < 0.1
		out[i] = w
	}
	return out, users
}

// buildWatchIndex adds lists into a fresh index, returning it with
// the build wall time.
func buildWatchIndex(lists []*watch.Watchlist) (*watch.Index, float64, error) {
	ix := watch.NewIndex()
	start := time.Now()
	for _, w := range lists {
		if err := ix.Add(w); err != nil {
			return nil, 0, err
		}
	}
	return ix, float64(time.Since(start).Microseconds()) / 1000, nil
}

// evalProfile runs iters full evaluations of sigs against ix (the
// quarter is reset before each pass so every signal counts as
// changed) and returns the latency profile.
func evalProfile(ix *watch.Index, sigs []watch.Signal, label string, iters int) watchEvalSample {
	ev := watch.NewEvaluator(watch.Options{
		Index:     ix,
		Feeds:     watch.NewFeeds(8),
		Knowledge: knowledge.Builtin(),
	})
	durs := make([]float64, 0, iters)
	var first watch.Result
	for i := 0; i < iters; i++ {
		ev.ResetQuarter(label)
		res := ev.EvaluateQuarter(context.Background(), label, sigs)
		if i == 0 {
			first = res
		}
		durs = append(durs, res.DurationMS)
	}
	sort.Float64s(durs)
	pct := func(p float64) float64 {
		idx := int(p * float64(len(durs)))
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		return durs[idx]
	}
	return watchEvalSample{
		Lists:          ix.Len(),
		Iters:          iters,
		ChangedSignals: first.Changed,
		Candidates:     first.Candidates,
		AlertsPerEval:  first.Alerts,
		P50Ms:          pct(0.50),
		P99Ms:          pct(0.99),
		MaxMs:          durs[len(durs)-1],
	}
}

// runWatch mines a quarter, builds the watch population, and profiles
// index build, full and small-population evaluation, a small-delta
// refresh, and the unchanged-quarter dedup guarantee. Writes the
// artifact to -watch-out.
func runWatch(cfg benchConfig) error {
	nLists := cfg.watchLists
	if nLists <= 0 {
		nLists = 1_000_000
	}
	iters := cfg.watchIters
	if iters <= 0 {
		iters = 40
	}
	smallLists := 10_000
	if smallLists > nLists {
		smallLists = nLists
	}

	// Mine the quarter the signals come from.
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	a, err := tracedRun("watch", q, opts)
	if err != nil {
		return err
	}
	sigs := watch.FromAnalysis(a)
	label := q.Label

	// Population: zipf interest over a universe larger than the
	// quarter's dictionary.
	rng := rand.New(rand.NewSource(cfg.seed))
	dictDrugs, dictReacs := watchVocab(a)
	drugU := watchUniverse(rng, dictDrugs, watchDrugUniverse)
	reacU := watchUniverse(rng, dictReacs, watchReacUniverse)
	fmt.Printf("Watch population: %d lists over %d drug / %d reaction universe terms\n",
		nLists, len(drugU), len(reacU))
	fmt.Printf("(quarter dict: %d drugs, %d reactions; %d ranked signals)\n\n",
		len(dictDrugs), len(dictReacs), len(sigs))

	lists, users := makeWatchlists(rng, nLists, drugU, reacU)

	// Cold build of the full index, with its resident heap cost.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	ix, buildMs, err := buildWatchIndex(lists)
	if err != nil {
		return err
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heap := after.HeapAlloc - before.HeapAlloc
	st := ix.Stats()
	fmt.Printf("Cold index build: %d lists in %.0fms (%d keys, %d postings, %.1f MiB, %.0f B/list)\n",
		st.Lists, buildMs, st.Keys, st.Postings,
		float64(heap)/(1<<20), float64(heap)/float64(st.Lists))

	art := watchArtifact{
		Quarter: label, Signals: len(sigs),
		Lists: st.Lists, Users: users,
		IndexKeys: st.Keys, IndexPostings: st.Postings,
		IndexHeapBytes: heap, BytesPerList: float64(heap) / float64(st.Lists),
	}

	// Latency at a small and at the full population, same quarter,
	// same changed-signal count.
	smallIx, smallBuildMs, err := buildWatchIndex(lists[:smallLists])
	if err != nil {
		return err
	}
	small := evalProfile(smallIx, sigs, label, iters)
	small.BuildMs = smallBuildMs
	full := evalProfile(ix, sigs, label, iters)
	full.BuildMs = buildMs
	art.Populations = []watchEvalSample{small, full}
	if small.P50Ms > 0 {
		art.P50RatioFullToSmall = full.P50Ms / small.P50Ms
	}

	fmt.Printf("\nEvaluation latency at fixed changed-signal count (%d changed, %d iters):\n\n", full.ChangedSignals, iters)
	fmt.Printf("%10s %12s %10s %10s %10s %10s\n", "Lists", "Candidates", "Alerts", "p50", "p99", "max")
	for _, s := range art.Populations {
		fmt.Printf("%10d %12d %10d %8.2fms %8.2fms %8.2fms\n",
			s.Lists, s.Candidates, s.AlertsPerEval, s.P50Ms, s.P99Ms, s.MaxMs)
	}
	fmt.Printf("\np50 full/small ratio: %.2fx at %dx the population\n",
		art.P50RatioFullToSmall, full.Lists/small.Lists)

	// Incremental refresh: perturb a handful of signal scores and
	// re-evaluate — only those route.
	ev := watch.NewEvaluator(watch.Options{
		Index:     ix,
		Feeds:     watch.NewFeeds(8),
		Knowledge: knowledge.Builtin(),
	})
	ev.EvaluateQuarter(context.Background(), label, sigs)
	const deltaK = 5
	perturbed := make([]watch.Signal, len(sigs))
	copy(perturbed, sigs)
	for i := 0; i < deltaK && i < len(perturbed); i++ {
		perturbed[i].Score += 0.001
	}
	res := ev.EvaluateQuarter(context.Background(), label, perturbed)
	art.Delta = watchDeltaSample{
		Changed: res.Changed, Candidates: res.Candidates,
		Alerts: res.Alerts, DurationMs: res.DurationMS,
	}
	fmt.Printf("\nDelta refresh (%d of %d signals changed): %d candidates, %d alerts, %.2fms\n",
		res.Changed, res.Signals, res.Candidates, res.Alerts, res.DurationMS)

	// Dedup guarantee: the identical quarter again, no reset — nothing
	// may route and nothing may fire.
	re := ev.EvaluateQuarter(context.Background(), label, perturbed)
	art.DedupRecheck = re
	fmt.Printf("Unchanged re-evaluation: %d changed, %d candidates, %d alerts (all must be 0)\n",
		re.Changed, re.Candidates, re.Alerts)
	if re.Changed != 0 || re.Candidates != 0 || re.Alerts != 0 {
		return fmt.Errorf("dedup violated: unchanged quarter routed %d signals, fired %d alerts",
			re.Changed, re.Alerts)
	}

	fmt.Println("\nShape check: the index routes by term, so a pass costs what the changed signals match —")
	fmt.Println("candidates, not population, set the latency. Growing the population two orders of")
	fmt.Println("magnitude moves p50 only by the extra matches the bigger population contributes, and an")
	fmt.Println("unchanged quarter re-load routes zero signals. The serving budget (50ms) holds with room.")

	if cfg.watchOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.watchOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote watch artifact (%d lists) to %s\n", art.Lists, cfg.watchOut)
	}
	return nil
}
