package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"maras/internal/core"
)

func TestGenQuarterCaches(t *testing.T) {
	cfg := benchConfig{seed: 99, reports: 300, minsup: 3}
	q1, gt1, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		t.Fatal(err)
	}
	q2, gt2, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 || gt1 != gt2 {
		t.Error("same config should return the cached quarter")
	}
	q3, _, err := genQuarter(cfg, "2014Q2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if q3 == q1 {
		t.Error("different label must not hit the same cache entry")
	}
	if len(q1.Demos) < cfg.reports {
		t.Errorf("generated %d demos, want >= %d", len(q1.Demos), cfg.reports)
	}
}

func TestPaperTable51CoversAllQuarters(t *testing.T) {
	for _, label := range quarterLabels {
		p, ok := paperTable51[label]
		if !ok {
			t.Errorf("paper numbers missing for %s", label)
			continue
		}
		if p[0] < 100_000 || p[1] < 30_000 || p[2] < 9_000 {
			t.Errorf("%s paper numbers implausible: %v", label, p)
		}
	}
}

func TestDrugKeyHelper(t *testing.T) {
	cfg := benchConfig{seed: 5, reports: 300, minsup: 3}
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := buildDB(q)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("empty db")
	}
}

func TestTracedRunCollectsAndWrites(t *testing.T) {
	saved := benchTraces
	benchTraces = nil
	defer func() { benchTraces = saved }()

	cfg := benchConfig{seed: 11, reports: 400, minsup: 3}
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	if _, err := tracedRun("test-exp", q, opts); err != nil {
		t.Fatal(err)
	}
	if len(benchTraces) != 1 {
		t.Fatalf("collected %d trace runs, want 1", len(benchTraces))
	}
	run := benchTraces[0]
	if run.Experiment != "test-exp" || run.Quarter != "2014Q1" {
		t.Errorf("trace run labels = %+v", run)
	}
	if want := core.StageOrder(); len(run.Stages) != len(want) {
		t.Errorf("trace has %d stages, want %d", len(run.Stages), len(want))
	}

	path := filepath.Join(t.TempDir(), "BENCH_trace.json")
	if err := writeTraces(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded traceArtifact
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(decoded.Runs) != 1 || decoded.Runs[0].Stages[0].Name != core.StageOrder()[0] {
		t.Errorf("artifact round trip wrong: %+v", decoded)
	}
	// The runtime snapshot must carry live process context.
	if decoded.Runtime.Goroutines <= 0 || decoded.Runtime.HeapBytes == 0 {
		t.Errorf("artifact runtime context empty: %+v", decoded.Runtime)
	}
}

func TestWriteTracesEmptyStillValidJSON(t *testing.T) {
	saved := benchTraces
	benchTraces = nil
	defer func() { benchTraces = saved }()
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := writeTraces(path); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	var decoded traceArtifact
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("empty artifact invalid: %v (%s)", err, data)
	}
	if decoded.Runs == nil || len(decoded.Runs) != 0 {
		t.Errorf("want empty runs array, got %v", decoded.Runs)
	}
}
