package main

import (
	"testing"
)

func TestGenQuarterCaches(t *testing.T) {
	cfg := benchConfig{seed: 99, reports: 300, minsup: 3}
	q1, gt1, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		t.Fatal(err)
	}
	q2, gt2, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 || gt1 != gt2 {
		t.Error("same config should return the cached quarter")
	}
	q3, _, err := genQuarter(cfg, "2014Q2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if q3 == q1 {
		t.Error("different label must not hit the same cache entry")
	}
	if len(q1.Demos) < cfg.reports {
		t.Errorf("generated %d demos, want >= %d", len(q1.Demos), cfg.reports)
	}
}

func TestPaperTable51CoversAllQuarters(t *testing.T) {
	for _, label := range quarterLabels {
		p, ok := paperTable51[label]
		if !ok {
			t.Errorf("paper numbers missing for %s", label)
			continue
		}
		if p[0] < 100_000 || p[1] < 30_000 || p[2] < 9_000 {
			t.Errorf("%s paper numbers implausible: %v", label, p)
		}
	}
}

func TestDrugKeyHelper(t *testing.T) {
	cfg := benchConfig{seed: 5, reports: 300, minsup: 3}
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := buildDB(q)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("empty db")
	}
}
