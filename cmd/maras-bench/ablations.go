package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"maras/internal/assoc"
	"maras/internal/core"
	"maras/internal/dispro"
	"maras/internal/ebgm"
	"maras/internal/eval"
	"maras/internal/faers"
	"maras/internal/fpgrowth"
	"maras/internal/glyph"
	"maras/internal/knowledge"
	"maras/internal/mcac"
	"maras/internal/rank"
	"maras/internal/report"
	"maras/internal/txdb"
)

// runAblateTheta sweeps the exclusiveness CV penalty θ (Formula 3.4/
// 3.5) and reports ranking quality against the planted ground truth.
func runAblateTheta(cfg benchConfig) error {
	q, gt, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A1 — θ (variation penalty) sweep",
		"Theta", "MRR", "Recall@10", "Recall@20", "First hit")
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		opts.Theta = theta
		opts.TopK = 0
		a, err := tracedRun(fmt.Sprintf("ablate-theta/theta=%g", theta), q, opts)
		if err != nil {
			return err
		}
		res := eval.Score(signalKeys(a.Signals), gt.Keys())
		t.AddRow(theta, res.MRR, res.RecallAt[10], res.RecallAt[20], res.FirstHitRank)
	}
	t.Render(os.Stdout)
	fmt.Println("\nDesign call: θ penalizes high-variance contexts (one strong sub-rule hiding behind a low average).")
	return nil
}

// runAblateDecay compares the level-decay functions of Formula 3.5.
func runAblateDecay(cfg benchConfig) error {
	q, gt, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	decays := []struct {
		name string
		fn   rank.Decay
	}{
		{"linear (paper)", rank.LinearDecay},
		{"none", rank.NoDecay},
		{"exponential", rank.ExpDecay},
	}
	t := report.NewTable("Ablation A2 — contextual level decay",
		"Decay", "MRR", "Recall@10", "Recall@20", "First hit")
	for _, d := range decays {
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		opts.Decay = d.fn
		opts.TopK = 0
		a, err := tracedRun("ablate-decay/"+d.name, q, opts)
		if err != nil {
			return err
		}
		res := eval.Score(signalKeys(a.Signals), gt.Keys())
		t.AddRow(d.name, res.MRR, res.RecallAt[10], res.RecallAt[20], res.FirstHitRank)
	}
	t.Render(os.Stdout)
	fmt.Println("\nDesign call: single-drug context matters most; decay choices shift 3+-drug signal ranks only mildly.")
	return nil
}

// runAblateClosed contrasts the closed rule base against the
// unfiltered frequent rule base: rule counts, the share of
// misleading (type-3, unsupported) rules, and ranking quality.
func runAblateClosed(cfg benchConfig) error {
	q, gt, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	db, err := buildDB(q)
	if err != nil {
		return err
	}
	mopts := fpgrowth.Options{MinSupport: cfg.minsup, MaxLen: 10}
	frequent := fpgrowth.Mine(db, mopts)
	closed := fpgrowth.FilterClosed(frequent)

	gen := assoc.GenOptions{MinDrugs: 2, MaxDrugs: 5}
	allRules := assoc.FromItemsets(db, frequent, gen)
	closedRules := assoc.FromItemsets(db, closed, gen)

	sampleShare := func(rules []assoc.Rule) float64 {
		if len(rules) == 0 {
			return 0
		}
		n := len(rules)
		if n > 400 {
			n = 400 // classification is quadratic in support; sample
		}
		unsupported := 0
		for i := 0; i < n; i++ {
			if assoc.Classify(db, rules[i].Complete()) == assoc.Unsupported {
				unsupported++
			}
		}
		return float64(unsupported) / float64(n)
	}

	score := func(rules []assoc.Rule) eval.Result {
		clusters := mcac.BuildAll(db, rules)
		ranked := rank.Rank(clusters, rank.ByExclusivenessConf, rank.Options{Theta: 0.5})
		keys := make([]string, len(ranked))
		for i, r := range ranked {
			keys[i] = drugKeyOf(db, r.Cluster)
		}
		return eval.Score(keys, gt.Keys())
	}

	t := report.NewTable("Ablation A3 — closed vs non-closed rule base",
		"Rule base", "Rules", "Unsupported share", "MRR", "Recall@20")
	resAll := score(allRules)
	resClosed := score(closedRules)
	t.AddRow("all frequent", len(allRules), sampleShare(allRules), resAll.MRR, resAll.RecallAt[20])
	t.AddRow("closed (paper)", len(closedRules), sampleShare(closedRules), resClosed.MRR, resClosed.RecallAt[20])
	t.Render(os.Stdout)
	fmt.Println("\nDesign call (Lemma 3.4.2): closed complete itemsets carry zero unsupported (misleading) rules and a far smaller rule base at equal or better ranking quality.")
	return nil
}

// runAblateSuspect contrasts mining over all reported drugs against
// mining restricted to suspect drugs (role codes PS/SS/I), the
// standard pharmacovigilance noise-reduction step.
func runAblateSuspect(cfg benchConfig) error {
	q, gt, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation A5 — all drugs vs suspect drugs only",
		"Drug scope", "Signals", "MRR", "Recall@10", "Recall@20", "First hit")
	for _, suspectOnly := range []bool{false, true} {
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		opts.SuspectOnly = suspectOnly
		opts.TopK = 0
		a, err := tracedRun(fmt.Sprintf("ablate-suspect/suspect=%v", suspectOnly), q, opts)
		if err != nil {
			return err
		}
		res := eval.Score(signalKeys(a.Signals), gt.Keys())
		label := "all drugs"
		if suspectOnly {
			label = "suspect only (PS/SS/I)"
		}
		t.AddRow(label, len(a.Signals), res.MRR, res.RecallAt[10], res.RecallAt[20], res.FirstHitRank)
	}
	t.Render(os.Stdout)
	fmt.Println("\nDesign call: restricting to the drugs reporters actually blame shrinks the candidate space and")
	fmt.Println("sharpens precision — concomitant medications are the main source of coincidental combinations.")
	return nil
}

// runBaselines compares signal-detection quality across ranking
// methods, including the disproportionality statistics of the
// pharmacovigilance state of the art.
func runBaselines(cfg benchConfig) error {
	q, gt, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	db, err := buildDB(q)
	if err != nil {
		return err
	}
	mopts := fpgrowth.Options{MinSupport: cfg.minsup, MaxLen: 10}
	closed := fpgrowth.MineClosed(db, mopts)
	targets := assoc.FromItemsets(db, closed, assoc.GenOptions{MinDrugs: 2, MaxDrugs: 5})
	clusters := mcac.BuildAll(db, targets)

	t := report.NewTable("Baselines A4 — ranking methods vs planted ground truth",
		"Method", "MRR", "Recall@10", "Recall@20", "First hit")

	for _, m := range []rank.Method{
		rank.ByExclusivenessConf, rank.ByExclusivenessLift,
		rank.ByImprovement, rank.ByConfidence, rank.ByLift,
	} {
		ranked := rank.Rank(clusters, m, rank.Options{Theta: 0.5})
		keys := make([]string, len(ranked))
		for i, r := range ranked {
			keys[i] = drugKeyOf(db, r.Cluster)
		}
		res := eval.Score(keys, gt.Keys())
		t.AddRow(m.String(), res.MRR, res.RecallAt[10], res.RecallAt[20], res.FirstHitRank)
	}

	// Disproportionality baselines rank the same candidate rules by
	// PRR / RRR / EB05 of (drugs, reactions).
	type scored struct {
		key string
		v   float64
	}
	rankScored := func(name string, list []scored) {
		sort.Slice(list, func(i, j int) bool {
			if list[i].v != list[j].v {
				return list[i].v > list[j].v
			}
			return list[i].key < list[j].key
		})
		keys := make([]string, len(list))
		for i, s := range list {
			keys[i] = s.key
		}
		res := eval.Score(keys, gt.Keys())
		t.AddRow(name, res.MRR, res.RecallAt[10], res.RecallAt[20], res.FirstHitRank)
	}
	for _, d := range []struct {
		name string
		fn   func(dispro.Score) float64
	}{
		{"PRR (disproportionality)", func(s dispro.Score) float64 { return s.PRR }},
		{"RRR (Harpaz-style)", func(s dispro.Score) float64 { return s.RRR }},
	} {
		var list []scored
		for i := range clusters {
			c := &clusters[i]
			s := dispro.Evaluate(db, c.Target.Antecedent, c.Target.Consequent)
			list = append(list, scored{drugKeyOf(db, c), d.fn(s)})
		}
		rankScored(d.name, list)
	}

	// EBGM (DuMouchel MGPS): fit the gamma-mixture prior on the
	// candidates' (N, E) pairs, then rank by the conservative EB05.
	obs := make([]ebgm.Observation, len(clusters))
	n := float64(db.Len())
	for i := range clusters {
		c := &clusters[i]
		e := float64(c.Target.AntSupport) * float64(c.Target.ConSupport) / n
		if e <= 0 {
			e = 1e-9
		}
		obs[i] = ebgm.Observation{N: c.Target.Support, E: e}
	}
	prior, _, err := ebgm.Fit(obs, ebgm.DefaultPrior())
	if err != nil {
		return err
	}
	ebScores, err := ebgm.Evaluate(obs, prior)
	if err != nil {
		return err
	}
	ebList := make([]scored, len(clusters))
	for i := range clusters {
		ebList[i] = scored{drugKeyOf(db, &clusters[i]), ebScores[i].EB05}
	}
	rankScored("EB05 (DuMouchel MGPS)", ebList)
	t.Render(os.Stdout)
	fmt.Println("\nShape check: each exclusiveness variant beats its raw counterpart (context sees sub-rule domination);")
	fmt.Println("raw confidence trails badly, and the lift family benefits from rare-reaction signals as the paper notes.")
	return nil
}

// runFigs4 renders the visual artifacts: a contextual glyph (Fig 4.1),
// the panoramagram (Fig 4.2), the zoom view (Fig 4.3) and the MCAC
// bar-chart (Fig 5.3) for the top-ranked signals.
func runFigs4(cfg benchConfig) error {
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	opts.TopK = 20
	a, err := tracedRun("figs4", q, opts)
	if err != nil {
		return err
	}
	if len(a.Signals) == 0 {
		return fmt.Errorf("no signals to render")
	}
	if err := os.MkdirAll(cfg.svgOut, 0o755); err != nil {
		return err
	}
	dict := a.Dict()
	write := func(name, content string) error {
		path := filepath.Join(cfg.svgOut, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	top := a.Signals[0]
	if err := write("fig4.1_contextual_glyph.svg",
		glyph.Contextual(top.Cluster, glyph.Options{Dict: dict, Size: 240})); err != nil {
		return err
	}
	var entries []glyph.PanoramaEntry
	for _, s := range a.Signals {
		entries = append(entries, glyph.PanoramaEntry{
			Cluster: s.Cluster, Score: s.Score,
			Caption: fmt.Sprintf("#%d %.3f", s.Rank, s.Score),
		})
	}
	if err := write("fig4.2_panoramagram.svg", glyph.Panorama(entries, 5, glyph.Options{Dict: dict})); err != nil {
		return err
	}
	if err := write("fig4.3_zoom.svg", glyph.Zoom(top.Cluster, dict)); err != nil {
		return err
	}
	if err := write("fig5.3_barchart.svg",
		glyph.BarChart(top.Cluster, glyph.Options{Dict: dict, Size: 420})); err != nil {
		return err
	}
	return nil
}

// --- shared helpers ---

func signalKeys(signals []core.Signal) []string {
	out := make([]string, len(signals))
	for i := range signals {
		out[i] = signals[i].Key()
	}
	return out
}

// buildDB runs cleaning + encoding the same way core.Run does, for
// experiments that need direct access to the mining layers.
func buildDB(q *faers.Quarter) (*txdb.DB, error) {
	db, _, err := core.EncodeReports(q.Reports(), core.NewOptions())
	return db, err
}

func drugKeyOf(db *txdb.DB, c *mcac.Cluster) string {
	return knowledge.DrugKey(db.Dict().SortedNames(c.Target.Antecedent))
}
