package main

import (
	"fmt"
	"os"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/knowledge"
	"maras/internal/report"
	"maras/internal/synth"
	"maras/internal/trend"
)

// runTrend is the surveillance extension experiment: generate four
// quarters in which interaction exposure ramps up through the year
// (a newly co-marketed drug pair gaining use), run the pipeline per
// quarter, and track each planted interaction's trajectory — the
// "detect early with minimum patient exposure" workflow the paper's
// introduction motivates.
func runTrend(cfg benchConfig) error {
	rates := synth.RampRates(len(quarterLabels))
	var quarters []*faers.Quarter
	var gt *synth.GroundTruth
	for i, label := range quarterLabels {
		sc := synth.DefaultConfig(label, cfg.seed+int64(i))
		if cfg.reports > 0 {
			sc.Reports = cfg.reports
		}
		sc.ExposureRate = rates[i]
		q, truth, err := synth.Generate(sc)
		if err != nil {
			return err
		}
		quarters = append(quarters, q)
		gt = truth
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	opts.TopK = 0
	a, err := trend.Run(quarters, opts)
	if err != nil {
		return err
	}

	t := report.NewTable("Surveillance extension — planted-interaction trajectories under ramping exposure",
		"Interaction", "Q1", "Q2", "Q3", "Q4", "Class", "Emerged")
	for _, in := range gt.Interactions {
		key := knowledge.DrugKey(in.Drugs)
		tr := a.Find(key)
		if tr == nil {
			t.AddRow(key, "-", "-", "-", "-", string(trend.Absent), "-")
			continue
		}
		cells := make([]any, 0, 7)
		cells = append(cells, key)
		for _, p := range tr.Points {
			if p.Rank > 0 {
				cells = append(cells, fmt.Sprintf("#%d (n=%d)", p.Rank, p.Support))
			} else {
				cells = append(cells, "-")
			}
		}
		cells = append(cells, string(tr.Classify()), tr.EmergedAt())
		t.AddRow(cells...)
	}
	t.Render(os.Stdout)

	byClass := a.ByClass()
	fmt.Printf("\nAll trajectories: %d combinations signaled at least once — %d persistent, %d emerging, %d transient.\n",
		len(a.Trajectories), len(byClass[trend.Persistent]), len(byClass[trend.Emerging]), len(byClass[trend.Transient]))
	fmt.Println("Shape check: every planted interaction emerges the quarter its exposure crosses the support threshold")
	fmt.Println("and stays signaled afterwards, while the bulk of background combinations flicker transiently —")
	fmt.Println("the early-detection behaviour surveillance needs.")
	return nil
}
