// Command maras-bench regenerates every table and figure of the
// paper's evaluation (Chapter 5) plus the ablations called out in
// DESIGN.md, on synthetic FAERS quarters with planted ground truth.
//
// Experiments (-exp):
//
//	table5.1      dataset statistics per quarter (Table 5.1)
//	fig5.1        rule-space reduction: Total vs Filtered vs MCACs (Fig 5.1)
//	table5.2      top-5 multi-drug associations under 4 rankings (Table 5.2)
//	cases         case studies: ranks of planted known interactions (Section 5.4)
//	fig5.2        simulated user study: glyph vs bar-chart accuracy (Fig 5.2)
//	figs4         render glyph/panorama/zoom/bar-chart SVGs (Figs 4.1-4.3, 5.3)
//	ablate-theta  exclusiveness θ sweep (ablation A1)
//	ablate-decay  decay-function ablation (A2)
//	ablate-closed closed vs non-closed rule base (A3)
//	baselines     exclusiveness vs improvement/lift/PRR/ROR (A4)
//	trend         cross-quarter trajectories under ramping exposure
//	drift         audit-layer drift detection: churn/rank-shift per pair + cost (BENCH_drift.json)
//	chaos         fault-injected serving: availability/shed/recovery per mix (BENCH_chaos.json)
//	slo           burn-rate alerting against a live server: client vs /api/slo agreement (BENCH_slo.json)
//	watch         watchlist alerting at scale: index build + eval latency vs population (BENCH_watch.json)
//	prof          continuous profiling: stage attribution, capture overhead, triggered snapshots (BENCH_prof.json)
//	wide          wide-event telemetry: emit cost, disabled-path allocs, query p99, diag correlation (BENCH_wide.json)
//	replica       replicated snapshot store: 3-node anti-entropy under partition/lag/flap/corrupt-peer (BENCH_replica.json)
//	all           everything above
//
// Usage:
//
//	maras-bench -exp all [-seed 1] [-reports 15000] [-minsup 8]
//	            [-paper-scale] [-svg-out figures]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/obs"
	"maras/internal/synth"
)

type benchConfig struct {
	seed       int64
	reports    int
	minsup     int
	paperScale bool
	svgOut     string
	traceOut   string
	driftOut   string
	chaosOut   string
	sloOut     string
	failpoints string
	watchLists int
	watchIters int
	watchOut   string
	profOut    string
	wideOut    string
	replicaOut string
}

// traceRun is one traced pipeline execution: which experiment ran
// it, on which quarter, and its per-stage records (wall time,
// allocation volume, stage counters). The collected runs land in the
// -trace-out JSON artifact so BENCH_*.json trajectories can
// attribute a regression to a specific pipeline stage.
type traceRun struct {
	Experiment string            `json:"experiment"`
	Quarter    string            `json:"quarter"`
	Stages     []obs.StageRecord `json:"stages"`
}

// benchTraces accumulates every traced run of the invocation; the
// bench is single-threaded, so plain appends suffice.
var benchTraces []traceRun

// tracedRun executes the pipeline on a quarter with a tracer
// attached and records the stage trace under the experiment label.
func tracedRun(experiment string, q *faers.Quarter, opts core.Options) (*core.Analysis, error) {
	tr := obs.NewTracer(nil)
	opts.Tracer = tr
	a, err := core.RunQuarter(q, opts)
	if err == nil {
		benchTraces = append(benchTraces, traceRun{
			Experiment: experiment,
			Quarter:    q.Label,
			Stages:     tr.Records(),
		})
	}
	return a, err
}

// traceArtifact is the -trace-out JSON payload: the traced runs plus
// a runtime snapshot (GC pauses, heap, goroutines, sched latency) of
// the bench process, so a slow BENCH_*.json trajectory can be told
// apart from a GC-thrashed host.
type traceArtifact struct {
	Runtime obs.RuntimeStats `json:"runtime"`
	Runs    []traceRun       `json:"runs"`
}

// writeTraces writes the per-stage trace artifact.
func writeTraces(path string) error {
	runs := benchTraces
	if runs == nil {
		runs = []traceRun{}
	}
	data, err := json.MarshalIndent(traceArtifact{
		Runtime: obs.ReadRuntimeStats(),
		Runs:    runs,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("maras-bench: ")

	var (
		exp        = flag.String("exp", "all", "experiment id (see command doc)")
		seed       = flag.Int64("seed", 1, "base random seed")
		reports    = flag.Int("reports", 0, "reports per quarter (0 = config default)")
		minsup     = flag.Int("minsup", 8, "absolute minimum support for mining")
		paperScale = flag.Bool("paper-scale", false, "use the paper's Table 5.1 scale")
		svgOut     = flag.String("svg-out", "figures", "output directory for figs4 SVGs")
		traceOut   = flag.String("trace-out", "BENCH_trace.json", "per-stage pipeline trace JSON artifact (empty = skip)")
		driftOut   = flag.String("drift-out", "BENCH_drift.json", "drift-experiment JSON artifact (empty = skip)")
		chaosOut   = flag.String("chaos-out", "BENCH_chaos.json", "chaos-experiment JSON artifact (empty = skip)")
		sloOut     = flag.String("slo-out", "BENCH_slo.json", "slo-experiment JSON artifact (empty = skip)")
		failpoints = flag.String("failpoints", "", "custom failpoint spec for -exp chaos (replaces the built-in fault mixes)")
		watchLists = flag.Int("watch-lists", 1_000_000, "watchlist population for -exp watch")
		watchIters = flag.Int("watch-iters", 40, "evaluation iterations per population for -exp watch")
		watchOut   = flag.String("watch-out", "BENCH_watch.json", "watch-experiment JSON artifact (empty = skip)")
		profOut    = flag.String("prof-out", "BENCH_prof.json", "profiling-experiment JSON artifact (empty = skip)")
		wideOut    = flag.String("wide-out", "BENCH_wide.json", "wide-event-experiment JSON artifact (empty = skip)")
		replicaOut = flag.String("replica-out", "BENCH_replica.json", "replica-experiment JSON artifact (empty = skip)")
	)
	flag.Parse()

	cfg := benchConfig{
		seed: *seed, reports: *reports, minsup: *minsup,
		paperScale: *paperScale, svgOut: *svgOut, traceOut: *traceOut,
		driftOut: *driftOut, chaosOut: *chaosOut, sloOut: *sloOut, failpoints: *failpoints,
		watchLists: *watchLists, watchIters: *watchIters, watchOut: *watchOut,
		profOut: *profOut, wideOut: *wideOut, replicaOut: *replicaOut,
	}

	runners := map[string]func(benchConfig) error{
		"table5.1":       runTable51,
		"fig5.1":         runFig51,
		"table5.2":       runTable52,
		"cases":          runCases,
		"fig5.2":         runFig52,
		"figs4":          runFigs4,
		"ablate-theta":   runAblateTheta,
		"ablate-decay":   runAblateDecay,
		"ablate-closed":  runAblateClosed,
		"ablate-suspect": runAblateSuspect,
		"baselines":      runBaselines,
		"trend":          runTrend,
		"drift":          runDrift,
		"chaos":          runChaos,
		"slo":            runSLO,
		"watch":          runWatch,
		"prof":           runProf,
		"wide":           runWide,
		"replica":        runReplica,
	}
	order := []string{
		"table5.1", "fig5.1", "table5.2", "cases", "fig5.2", "figs4",
		"ablate-theta", "ablate-decay", "ablate-closed", "ablate-suspect",
		"baselines", "trend", "drift", "chaos", "slo", "watch", "prof",
		"wide", "replica",
	}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			log.Fatalf("unknown experiment %q (have: %s, all)", id, strings.Join(order, ", "))
		}
		fmt.Printf("\n================ %s ================\n\n", id)
		if err := run(cfg); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
	}
	if cfg.traceOut != "" {
		if err := writeTraces(cfg.traceOut); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
		fmt.Printf("\nwrote per-stage trace for %d pipeline runs to %s\n", len(benchTraces), cfg.traceOut)
	}
	_ = os.Stdout.Sync()
}

// quarterCache avoids regenerating the same quarters across
// experiments in one invocation.
var quarterCache = map[string]cachedQuarter{}

type cachedQuarter struct {
	quarter *faers.Quarter
	truth   *synth.GroundTruth
}

// genQuarter returns the synthetic quarter for label under cfg,
// generating it on first use.
func genQuarter(cfg benchConfig, label string, seedOffset int64) (*faers.Quarter, *synth.GroundTruth, error) {
	key := fmt.Sprintf("%s/%d/%d/%v", label, cfg.seed+seedOffset, cfg.reports, cfg.paperScale)
	if c, ok := quarterCache[key]; ok {
		return c.quarter, c.truth, nil
	}
	sc := synth.DefaultConfig(label, cfg.seed+seedOffset)
	if cfg.paperScale {
		sc = synth.PaperScaleConfig(label, cfg.seed+seedOffset)
	}
	if cfg.reports > 0 {
		sc.Reports = cfg.reports
	}
	q, gt, err := synth.Generate(sc)
	if err != nil {
		return nil, nil, err
	}
	quarterCache[key] = cachedQuarter{q, gt}
	return q, gt, nil
}

var quarterLabels = []string{"2014Q1", "2014Q2", "2014Q3", "2014Q4"}
