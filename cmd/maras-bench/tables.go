package main

import (
	"fmt"
	"os"
	"strings"

	"maras/internal/cleaning"
	"maras/internal/core"
	"maras/internal/rank"
	"maras/internal/report"
)

// paperTable51 holds the published Table 5.1 numbers for side-by-side
// comparison.
var paperTable51 = map[string][3]int{ // label -> reports, drugs, ADRs
	"2014Q1": {126_755, 37_661, 9_079},
	"2014Q2": {138_278, 37_780, 9_324},
	"2014Q3": {121_725, 33_133, 9_418},
	"2014Q4": {121_490, 32_721, 9_234},
}

// runTable51 reproduces Table 5.1: per-quarter dataset statistics of
// the EXP reports after cleaning, next to the paper's numbers.
func runTable51(cfg benchConfig) error {
	t := report.NewTable("Table 5.1 — FAERS-shaped data per quarter (measured vs paper)",
		"Quarter", "Reports", "Drugs", "ADRs", "Paper Reports", "Paper Drugs", "Paper ADRs")
	for i, label := range quarterLabels {
		q, _, err := genQuarter(cfg, label, int64(i))
		if err != nil {
			return err
		}
		reports, _ := cleaning.Clean(q.Reports(), cleaning.Defaults())
		// Stats over EXP reports, as the paper selects.
		exp := 0
		drugs := map[string]bool{}
		adrs := map[string]bool{}
		for _, r := range reports {
			if r.ReportCode != "EXP" {
				continue
			}
			exp++
			for _, d := range r.Drugs {
				drugs[d] = true
			}
			for _, a := range r.Reactions {
				adrs[a] = true
			}
		}
		p := paperTable51[label]
		t.AddRow(label, exp, len(drugs), len(adrs), p[0], p[1], p[2])
	}
	t.Render(os.Stdout)
	fmt.Println("\nShape check: four quarters of comparable size; drug vocabulary ~4x the ADR vocabulary, as in the paper.")
	return nil
}

// runFig51 reproduces Fig 5.1: the reduction from the traditional
// rule space (Total) to drug→ADR rules (Filtered) to closed
// multi-drug clusters (MCACs), per quarter, on a log scale.
func runFig51(cfg benchConfig) error {
	lb := report.NewLogBars("Fig 5.1 — Reduction in number of rules", "Total rules", "Filtered rules", "MCACs")
	t := report.NewTable("", "Quarter", "Total", "Filtered", "MCACs", "Total/MCACs")
	for i, label := range quarterLabels {
		q, _, err := genQuarter(cfg, label, int64(i))
		if err != nil {
			return err
		}
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		opts.CountRules = true
		opts.TopK = 0
		a, err := tracedRun("fig5.1", q, opts)
		if err != nil {
			return err
		}
		c := a.Counts
		lb.AddGroup(label, float64(c.TotalRules), float64(c.FilteredRules), float64(c.MCACs))
		ratio := 0.0
		if c.MCACs > 0 {
			ratio = float64(c.TotalRules) / float64(c.MCACs)
		}
		t.AddRow(label, c.TotalRules, c.FilteredRules, c.MCACs, ratio)
	}
	lb.Render(os.Stdout)
	fmt.Println()
	t.Render(os.Stdout)
	fmt.Println("\nShape check: Total >> Filtered >> MCACs on every quarter (orders of magnitude), as in the paper.")
	return nil
}

// runTable52 reproduces Table 5.2: the top-5 multi-drug associations
// under the four ranking methods, side by side.
func runTable52(cfg benchConfig) error {
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	methods := []rank.Method{
		rank.ByConfidence, rank.ByLift, rank.ByExclusivenessConf, rank.ByExclusivenessLift,
	}
	columns := make([][]string, len(methods))
	for mi, m := range methods {
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		opts.Method = m
		opts.TopK = 5
		a, err := tracedRun("table5.2/"+m.String(), q, opts)
		if err != nil {
			return err
		}
		for _, s := range a.Signals {
			status := ""
			if s.Known != nil {
				status = " *known*"
			}
			columns[mi] = append(columns[mi], fmt.Sprintf("%s => %s%s",
				strings.Join(s.Drugs, "+"), strings.Join(s.Reactions, ";"), status))
		}
	}
	t := report.NewTable("Table 5.2 — Top 5 multi-drug associations from Q1 under 4 rankings",
		"Rank", methods[0].String(), methods[1].String(), methods[2].String(), methods[3].String())
	for r := 0; r < 5; r++ {
		row := []any{r + 1}
		for mi := range methods {
			cell := ""
			if r < len(columns[mi]) {
				cell = columns[mi][r]
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)

	// Diversity shape check: distinct drugs mentioned per column.
	fmt.Println()
	d := report.NewTable("Diversity of the top-5 lists (distinct drugs mentioned)", "Method", "Distinct drugs")
	for mi, m := range methods {
		seen := map[string]bool{}
		for _, cell := range columns[mi] {
			combo := strings.SplitN(cell, " => ", 2)[0]
			for _, drug := range strings.Split(combo, "+") {
				seen[drug] = true
			}
		}
		d.AddRow(m.String(), len(seen))
	}
	d.Render(os.Stdout)
	fmt.Println("\nShape check: the exclusiveness columns are more diverse and carry the planted (known) interactions;")
	fmt.Println("lift-flavoured rankings favour rarer reactions, as the paper observes.")
	return nil
}
