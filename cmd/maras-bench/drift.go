package main

// The drift experiment measures what the audit layer costs and what
// it sees: mine a ramped quarter sequence (exposure to the planted
// interactions grows through the year), assemble the cross-quarter
// trend, then diff every adjacent quarter pair with audit.Drift and
// time it. The per-pair reports and timings land in BENCH_drift.json
// so the detection-cost trajectory is tracked like every other bench
// number.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/synth"
	"maras/internal/trend"
)

// driftPair is one adjacent-quarter diff in the artifact.
type driftPair struct {
	From       string  `json:"from"`
	To         string  `json:"to"`
	New        int     `json:"new"`
	Dropped    int     `json:"dropped"`
	Persisting int     `json:"persisting"`
	ChurnRate  float64 `json:"churn_rate"`
	RankShift  float64 `json:"rank_shift"`
	Findings   int     `json:"findings"`
	Verdict    string  `json:"verdict"`
	// DriftMicros is the wall time of audit.Drift + EvaluateDrift for
	// this pair — the marginal cost of drift detection, excluding
	// mining and trend assembly (reported separately).
	DriftMicros int64 `json:"drift_micros"`
}

// driftArtifact is the BENCH_drift.json payload.
type driftArtifact struct {
	Quarters       []string               `json:"quarters"`
	TopK           int                    `json:"top_k"`
	AssembleMicros int64                  `json:"assemble_micros"`
	Pairs          []driftPair            `json:"pairs"`
	Quality        []*audit.QualityReport `json:"quality"`
}

// runDrift mines the ramped quarter sequence, diffs adjacent quarters
// through the audit layer, prints the churn table, and writes
// BENCH_drift.json (path from -drift-out).
func runDrift(cfg benchConfig) error {
	rates := synth.RampRates(len(quarterLabels))
	labels := make([]string, 0, len(quarterLabels))
	results := make([]*core.Analysis, 0, len(quarterLabels))
	quality := make([]*audit.QualityReport, 0, len(quarterLabels))
	th := audit.DefaultThresholds()

	for i, label := range quarterLabels {
		sc := synth.DefaultConfig(label, cfg.seed+int64(i))
		if cfg.reports > 0 {
			sc.Reports = cfg.reports
		}
		sc.ExposureRate = rates[i]
		q, _, err := synth.Generate(sc)
		if err != nil {
			return err
		}
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		opts.TopK = 0
		a, err := tracedRun("drift", q, opts)
		if err != nil {
			return err
		}
		labels = append(labels, label)
		results = append(results, a)
		qr := audit.ComputeQuality(label, a)
		audit.EvaluateQuality(qr, quality, th)
		quality = append(quality, qr)
	}

	assembleStart := time.Now()
	ta := trend.Assemble(labels, results)
	assembleMicros := time.Since(assembleStart).Microseconds()

	art := driftArtifact{
		Quarters:       labels,
		TopK:           th.TopK,
		AssembleMicros: assembleMicros,
	}
	fmt.Printf("Signal drift under ramping exposure (top-%d, assemble %dµs):\n\n", th.TopK, assembleMicros)
	fmt.Printf("%-8s %-8s %5s %8s %11s %7s %11s %8s %10s\n",
		"From", "To", "New", "Dropped", "Persisting", "Churn", "RankShift", "Verdict", "Cost")
	for i := 1; i < len(labels); i++ {
		start := time.Now()
		d, err := audit.Drift(ta, labels[i-1], labels[i], th.TopK)
		if err != nil {
			return err
		}
		audit.EvaluateDrift(d, th)
		micros := time.Since(start).Microseconds()
		art.Pairs = append(art.Pairs, driftPair{
			From: d.From, To: d.To,
			New: d.New, Dropped: d.Dropped, Persisting: d.Persisting,
			ChurnRate: d.ChurnRate, RankShift: d.RankShift,
			Findings: len(d.Findings), Verdict: string(d.Verdict),
			DriftMicros: micros,
		})
		fmt.Printf("%-8s %-8s %5d %8d %11d %6.0f%% %10.0f%% %8s %8dµs\n",
			d.From, d.To, d.New, d.Dropped, d.Persisting,
			100*d.ChurnRate, 100*d.RankShift, d.Verdict, micros)
	}
	art.Quality = quality

	fmt.Println("\nIngest quality per quarter:")
	for _, qr := range quality {
		fmt.Printf("  %s: %s (reports %d, signals %d, findings %d)\n",
			qr.Label, qr.Verdict, qr.Reports, qr.Signals, len(qr.Findings))
	}
	fmt.Println("\nShape check: the synthetic background is noise-dominated at the head of the ranking, so")
	fmt.Println("top-K churn stays high and every pair warns — exactly the alarm an unstable ranking should")
	fmt.Println("raise — while persisting signals appear mid-year as the planted interactions ramp into the")
	fmt.Println("top-K. Detection costs microseconds per pair once the trend is assembled, so drift can be")
	fmt.Println("re-evaluated on every store rescan.")

	if cfg.driftOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.driftOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote drift artifact (%d pairs) to %s\n", len(art.Pairs), cfg.driftOut)
	}
	return nil
}
