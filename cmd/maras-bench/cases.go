package main

import (
	"fmt"
	"os"
	"strings"

	"maras/internal/core"
	"maras/internal/eval"
	"maras/internal/knowledge"
	"maras/internal/report"
	"maras/internal/studysim"
)

// runCases reproduces the Section 5.4 case studies quantitatively:
// for every planted known interaction, report its rank under the
// exclusiveness ranking and its knowledge-base validation — the
// analogue of the paper validating Ibuprofen+Metamizole (rank 3),
// Methotrexate+Prograf (rank 2) and Prevacid+Nexium (rank 4).
func runCases(cfg benchConfig) error {
	q, gt, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	opts.TopK = 0
	a, err := tracedRun("cases", q, opts)
	if err != nil {
		return err
	}
	ranked := make([]string, len(a.Signals))
	for i, s := range a.Signals {
		ranked[i] = s.Key()
	}

	t := report.NewTable("Case studies — planted interactions under the exclusiveness ranking",
		"Interaction", "Reactions", "Severity", "Rank", "Validated")
	found := 0
	for _, in := range gt.Interactions {
		key := knowledge.DrugKey(in.Drugs)
		r := eval.RankOf(ranked, key)
		rankStr := "-"
		if r > 0 {
			rankStr = fmt.Sprint(r)
			found++
		}
		validated := "no"
		if knowledge.Builtin().Known(in.Drugs) {
			validated = "yes (" + knowledge.Builtin().Lookup(in.Drugs).Source + ")"
		}
		t.AddRow(key, strings.Join(in.Reactions, ";"), in.Severity.String(), rankStr, validated)
	}
	t.Render(os.Stdout)

	res := eval.Score(ranked, gt.Keys())
	fmt.Printf("\nRecovered %d/%d planted interactions in the full ranking; first hit at rank %d; MRR %.3f; recall@20 %.2f.\n",
		found, len(gt.Interactions), res.FirstHitRank, res.MRR, res.RecallAt[20])
	fmt.Println("Shape check: known interactions appear in the exclusiveness top ranks, as the paper's three case studies did (ranks 2-4).")
	return nil
}

// paperFig52 holds the published Fig 5.2 glyph accuracies.
var paperFig52 = map[int]float64{2: 0.71, 3: 0.57, 4: 0.86}

// runFig52 reproduces the user study (Fig 5.2) with the simulated
// noisy-observer model: % of participants picking the correct
// top-ranked interaction, per visual and interaction size.
func runFig52(cfg benchConfig) error {
	res := studysim.Run(studysim.DefaultConfig(cfg.seed))
	t := report.NewTable("Fig 5.2 — user study (simulated): % correct identifications",
		"Drugs", "Contextual Glyph", "Barchart", "Paper CG")
	acc := map[studysim.Condition]float64{}
	for _, r := range res {
		acc[r.Condition] = r.Accuracy()
	}
	for _, drugs := range []int{2, 3, 4} {
		g := acc[studysim.Condition{Drugs: drugs, Visual: studysim.ContextualGlyph}]
		b := acc[studysim.Condition{Drugs: drugs, Visual: studysim.BarChart}]
		t.AddRow(drugs, fmt.Sprintf("%.0f%%", g*100), fmt.Sprintf("%.0f%%", b*100),
			fmt.Sprintf("%.0f%%", paperFig52[drugs]*100))
	}
	t.Render(os.Stdout)
	fmt.Println("\nShape check: contextual glyphs beat bar-charts at every interaction size, as the paper's 50-user study found.")
	fmt.Println("(The bar-chart observer pays per-bar read noise and serial-comparison fatigue; the glyph observer reads one integrated contour.)")
	return nil
}
