package main

// The slo experiment validates the burn-rate alerting spine end to
// end against a live instrumented server: it snapshots mined quarters
// into a throwaway store, serves them through the real observability
// middleware with a fast-scraping metrics history and scaled-down
// burn-rate windows, then replays a clean / fault-armed / recovery
// load sequence over real HTTP. The client keeps its own books
// (status codes, latencies) and at the end compares them against what
// /api/slo reports — availability must agree to within a scrape
// interval's worth of traffic, the latency p99 must land in the same
// histogram bucket — and asserts the injected fault mix drove a
// fast-burn breach into the audit log that cleared after recovery.
// The numbers land in BENCH_slo.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/obs"
	"maras/internal/obs/history"
	"maras/internal/resilience"
	"maras/internal/slo"
	"maras/internal/store"
)

// sloBench compresses production burn-rate dynamics into seconds:
// windows shrink 600x (5m/1h -> 500ms/6s, 30m/6h -> 3s/36s) and the
// history scrapes every 50ms, so a breach that takes minutes to
// confirm in production confirms in about a second here.
const (
	sloWindowScale  = 1.0 / 600
	sloScrapeEvery  = 50 * time.Millisecond
	sloAvailTarget  = 0.995
	sloP99Target    = 250 * time.Millisecond
	sloFaultSpec    = "=error(0.85)" // appended to resilience.FPLoad
	sloCleanFor     = 1500 * time.Millisecond
	sloFaultMaxWait = 8 * time.Second
	sloClearMaxWait = 10 * time.Second
	sloRequestGap   = 2 * time.Millisecond
)

// sloPhase is one load phase's client-side ledger.
type sloPhase struct {
	Name     string  `json:"phase"`
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Err5xx   int     `json:"err_5xx"`
	Millis   int64   `json:"millis"`
	ErrRate  float64 `json:"err_rate"`
}

// sloArtifact is the BENCH_slo.json payload.
type sloArtifact struct {
	Quarters     []string   `json:"quarters"`
	WindowScale  float64    `json:"window_scale"`
	ScrapeMillis int64      `json:"scrape_millis"`
	Phases       []sloPhase `json:"phases"`

	ClientAvailability float64 `json:"client_availability"`
	EngineAvailability float64 `json:"engine_availability"`
	AvailabilityDelta  float64 `json:"availability_delta"`
	ClientP99Seconds   float64 `json:"client_p99_seconds"`
	EngineP99Seconds   float64 `json:"engine_p99_seconds"`
	P99BucketDistance  int     `json:"p99_bucket_distance"`

	BreachDetectMillis int64 `json:"breach_detect_millis"`
	BreachClearMillis  int64 `json:"breach_clear_millis"`
	DegradedDuring     bool  `json:"degraded_during_breach"`
	RecoveredClean     bool  `json:"recovered_clean"`

	Report slo.Report `json:"slo_report"`
}

// runSLO drives the live-server burn-rate scenario and writes
// BENCH_slo.json (path from -slo-out).
func runSLO(cfg benchConfig) error {
	labels := quarterLabels[:3]
	analyses := make([]*core.Analysis, len(labels))
	for i, label := range labels {
		q, _, err := genQuarter(cfg, label, int64(i))
		if err != nil {
			return err
		}
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		a, err := tracedRun("slo", q, opts)
		if err != nil {
			return err
		}
		analyses[i] = a
	}

	dir, err := os.MkdirTemp("", "maras-slo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	for i, label := range labels {
		if err := store.WriteFile(filepath.Join(dir, label+store.Ext), label, analyses[i]); err != nil {
			return err
		}
	}

	// No resilience layer: the point is to measure raw fault impact,
	// so injected load errors must surface as 503s instead of being
	// absorbed by retries or masked by the stale cache. MaxOpen 1
	// keeps the LRU churning so every request walks the disk path the
	// failpoint arms.
	reg := obs.NewRegistry()
	sreg, err := store.OpenRegistry(dir, store.RegistryOptions{
		MaxOpen: 1,
		Metrics: obs.NewStoreMetrics(reg),
	})
	if err != nil {
		return err
	}

	alog := audit.NewLog(audit.LogOptions{Metrics: reg})
	ready := &obs.Readiness{}
	ready.SetReady()
	mw := obs.NewHTTPMetrics(reg, nil)

	hist := history.New(reg, history.Options{
		Interval:  sloScrapeEvery,
		Retention: 2 * time.Minute,
	})
	eng := slo.NewEngine(hist, slo.Config{
		Objectives: slo.DefaultObjectives(sloAvailTarget, sloP99Target, 0.5, 0.5),
		Rules:      slo.DefaultRules(sloWindowScale),
		Log:        alog,
		Ready:      ready,
		Metrics:    reg,
	})
	hist.OnScrape(eng.Tick)

	// Only the quarter route is instrumented, exactly like
	// maras-server's application routes: http_requests_total then
	// counts precisely the traffic this client measures, making the
	// availability comparison exact. The operational endpoints mount
	// outside the middleware, as in production.
	mux := http.NewServeMux()
	mw.Handle(mux, "/q/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		label := strings.TrimPrefix(r.URL.Path, "/q/")
		a, _, err := sreg.LoadResilient(r.Context(), label)
		if err != nil {
			http.Error(w, "quarter unavailable: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%s: %d signals\n", label, len(a.Signals))
	}))
	mux.Handle("/api/slo", slo.Handler(eng))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hist.Start(ctx) // immediate first scrape: zero baselines before traffic

	resilience.Seed(cfg.seed)
	defer resilience.DisableAll()

	art := sloArtifact{
		Quarters:     labels,
		WindowScale:  sloWindowScale,
		ScrapeMillis: sloScrapeEvery.Milliseconds(),
	}
	client := ts.Client()
	var latencies []float64
	var total, bad int

	// hit issues one request against a round-robin quarter, keeping
	// the client-side ledger the engine comparison settles against.
	seq := 0
	hit := func(p *sloPhase) {
		label := labels[seq%len(labels)]
		seq++
		start := time.Now()
		resp, err := client.Get(ts.URL + "/q/" + label)
		elapsed := time.Since(start).Seconds()
		p.Requests++
		total++
		if err != nil {
			p.Err5xx++
			bad++
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		latencies = append(latencies, elapsed)
		if resp.StatusCode >= 500 {
			p.Err5xx++
			bad++
		} else {
			p.OK++
		}
	}
	finishPhase := func(p *sloPhase, started time.Time) {
		p.Millis = time.Since(started).Milliseconds()
		if p.Requests > 0 {
			p.ErrRate = float64(p.Err5xx) / float64(p.Requests)
		}
		art.Phases = append(art.Phases, *p)
	}

	fmt.Printf("Burn-rate scenario: %d quarters, windows x%.4g, scrape %s\n\n",
		len(labels), sloWindowScale, sloScrapeEvery)

	// Phase 1 — clean: establish healthy baselines.
	clean := sloPhase{Name: "clean"}
	cleanStart := time.Now()
	for time.Since(cleanStart) < sloCleanFor {
		hit(&clean)
		time.Sleep(sloRequestGap)
	}
	finishPhase(&clean, cleanStart)

	// Phase 2 — fault: arm the failpoint and drive traffic until the
	// fast-burn rule fires (both windows over 14.4x budget).
	if err := resilience.Enable(resilience.FPLoad + sloFaultSpec); err != nil {
		return err
	}
	fault := sloPhase{Name: "fault"}
	faultStart := time.Now()
	breached := false
	for time.Since(faultStart) < sloFaultMaxWait {
		hit(&fault)
		if ready.Degraded() {
			breached = true
			break
		}
		time.Sleep(sloRequestGap)
	}
	art.BreachDetectMillis = time.Since(faultStart).Milliseconds()
	art.DegradedDuring = breached
	finishPhase(&fault, faultStart)

	// Phase 3 — recovery: faults clear; keep serving clean traffic
	// until the short window drains and the cooldown clears the breach.
	resilience.DisableAll()
	recovery := sloPhase{Name: "recovery"}
	recoveryStart := time.Now()
	cleared := false
	for time.Since(recoveryStart) < sloClearMaxWait {
		hit(&recovery)
		if breached && !ready.Degraded() {
			cleared = true
			break
		}
		time.Sleep(sloRequestGap)
	}
	art.BreachClearMillis = time.Since(recoveryStart).Milliseconds()
	art.RecoveredClean = cleared
	finishPhase(&recovery, recoveryStart)
	cancel() // stop the scrape loop before the manual tail scrape

	// Tail scrape: fold the final partial interval into the history so
	// the engine has seen every request the client counted.
	hist.Scrape()

	// Fetch the engine's own accounting over /api/slo, like an
	// operator would.
	resp, err := client.Get(ts.URL + "/api/slo")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&art.Report); err != nil {
		return fmt.Errorf("decode /api/slo: %w", err)
	}

	// Settle the books: client-measured vs engine-reported.
	art.ClientAvailability = 1
	if total > 0 {
		art.ClientAvailability = 1 - float64(bad)/float64(total)
	}
	art.ClientP99Seconds = percentile(latencies, 0.99)
	for _, o := range art.Report.Objectives {
		switch o.Name {
		case "availability":
			art.EngineAvailability = o.PeriodValue
		case "latency-p99":
			art.EngineP99Seconds = o.PeriodValue
		}
	}
	art.AvailabilityDelta = math.Abs(art.ClientAvailability - art.EngineAvailability)
	art.P99BucketDistance = bucketDistance(art.ClientP99Seconds, art.EngineP99Seconds,
		obs.DefaultLatencyBuckets)

	// Audit-log assertions: the breach landed and then cleared.
	var sawBurn, sawRecovered bool
	for _, e := range alog.Recent(0) {
		if e.Rule == "slo_burn" && e.Scope == "availability" && e.Severity == audit.SevFail {
			sawBurn = true
		}
		if e.Rule == "slo_recovered" && e.Scope == "availability" {
			sawRecovered = true
		}
	}

	fmt.Printf("%-10s %9s %6s %8s %9s %9s\n", "Phase", "Requests", "OK", "5xx", "ErrRate", "Wall")
	for _, p := range art.Phases {
		fmt.Printf("%-10s %9d %6d %8d %8.1f%% %8dms\n",
			p.Name, p.Requests, p.OK, p.Err5xx, 100*p.ErrRate, p.Millis)
	}
	fmt.Printf("\navailability: client %.4f vs engine %.4f (delta %.4f)\n",
		art.ClientAvailability, art.EngineAvailability, art.AvailabilityDelta)
	fmt.Printf("latency p99:  client %.4fs vs engine %.4fs (bucket distance %d)\n",
		art.ClientP99Seconds, art.EngineP99Seconds, art.P99BucketDistance)
	fmt.Printf("fast burn:    detected in %dms, cleared %dms after faults lifted\n",
		art.BreachDetectMillis, art.BreachClearMillis)

	// The scrape interval bounds the measurement disagreement: at most
	// one interval of traffic can be in flight between the client's
	// ledger and the last scrape, and the tail scrape shrinks that to
	// rounding. 1% of budget is far more than one interval's traffic.
	if art.AvailabilityDelta > 0.01 {
		fmt.Printf("  !! availability disagreement %.4f exceeds one scrape interval's traffic\n",
			art.AvailabilityDelta)
	}
	if art.P99BucketDistance > 1 {
		fmt.Printf("  !! engine p99 %.4fs not within one histogram bucket of client p99 %.4fs\n",
			art.EngineP99Seconds, art.ClientP99Seconds)
	}
	if !breached || !sawBurn {
		fmt.Printf("  !! fault mix did not drive a fast-burn availability breach into the audit log\n")
	}
	if !cleared || !sawRecovered {
		fmt.Printf("  !! breach did not clear after recovery (degraded=%v, recovered-event=%v)\n",
			ready.Degraded(), sawRecovered)
	}

	fmt.Println("\nShape check: the clean phase holds every burn rate near zero; arming an 85% load-error")
	fmt.Println("failpoint drives the 5xx rate far past 14.4x the availability budget in both fast")
	fmt.Println("windows, landing a SevFail slo_burn event and flipping /readyz to degraded; lifting")
	fmt.Println("the faults drains the short window and the cooldown clears the breach, logging")
	fmt.Println("slo_recovered. Client- and engine-measured availability agree to a scrape interval.")

	if cfg.sloOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.sloOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote slo artifact (%d phases) to %s\n", len(art.Phases), cfg.sloOut)
	}
	return nil
}

// percentile returns the p-quantile of the sample set by
// nearest-rank on the sorted values (0 when empty).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// bucketDistance reports how many histogram buckets apart two values
// fall — 0 means the same bucket, so the engine's interpolated
// quantile cannot be told apart from the client's exact one at the
// histogram's resolution.
func bucketDistance(a, b float64, bounds []float64) int {
	d := bucketIndex(a, bounds) - bucketIndex(b, bounds)
	if d < 0 {
		return -d
	}
	return d
}

func bucketIndex(v float64, bounds []float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}
