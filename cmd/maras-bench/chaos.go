package main

// The chaos experiment measures how the serving stack degrades under
// injected faults. It snapshots mined quarters into a throwaway store,
// opens a registry with the full resilience layer on (retry, breakers,
// quarantine, stale cache) behind a load-shedding bulkhead, arms a
// failpoint mix, and hammers the quarter routes from concurrent
// workers. Per mix it reports availability (fresh + stale answers over
// admitted requests), shed rate, quarantine count, and how long the
// store takes to serve every quarter fresh again once the faults
// clear. The numbers land in BENCH_chaos.json so fault tolerance is
// tracked like every other bench trajectory.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/resilience"
	"maras/internal/store"
)

// chaosMix is one fault scenario: a failpoint spec plus the bulkhead
// and offered load it runs under.
type chaosMix struct {
	name    string
	spec    string // failpoint spec, "" = control
	workers int
	bulk    resilience.BulkheadConfig
}

// defaultChaosMixes covers the fault space the serving stack claims to
// survive: slow I/O, flaky I/O, a corrupt snapshot, the acceptance mix
// (corruption plus 20% load delays), and raw saturation of a tiny
// bulkhead. The -failpoints flag replaces these with one custom mix.
func defaultChaosMixes() []chaosMix {
	std := resilience.BulkheadConfig{MaxConcurrent: 4, MaxWaiting: 8, MaxWait: 50 * time.Millisecond}
	return []chaosMix{
		{name: "baseline", spec: "", workers: 6, bulk: std},
		{name: "load-delays", spec: resilience.FPLoad + "=delay(5ms,0.2)", workers: 6, bulk: std},
		{name: "load-errors", spec: resilience.FPLoad + "=error(0.2)", workers: 6, bulk: std},
		{name: "corrupt-one", spec: resilience.FPDecode + "=error*1", workers: 6, bulk: std},
		{name: "corrupt+delays", spec: resilience.FPDecode + "=error*1;" + resilience.FPLoad + "=delay(5ms,0.2)", workers: 6, bulk: std},
		{name: "saturate", spec: resilience.FPLoad + "=delay(10ms)", workers: 8,
			bulk: resilience.BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 1, MaxWait: 2 * time.Millisecond}},
	}
}

// chaosMixResult is one mix's row in the artifact.
type chaosMixResult struct {
	Mix        string `json:"mix"`
	Failpoints string `json:"failpoints"`
	Workers    int    `json:"workers"`
	Requests   int    `json:"requests"`
	Fresh      int    `json:"fresh"`
	Stale      int    `json:"stale"`
	Shed       int    `json:"shed"`
	Failed     int    `json:"failed"`
	// Availability is (fresh+stale)/(requests-shed): of the requests
	// admitted past the bulkhead, the fraction that got an answer.
	// Shed requests are a fast honest 503, reported via ShedRate.
	Availability   float64                    `json:"availability"`
	ShedRate       float64                    `json:"shed_rate"`
	Quarantined    int                        `json:"quarantined"`
	RecoveryMillis int64                      `json:"recovery_millis"`
	Sites          []resilience.FailpointStat `json:"sites"`
}

// chaosArtifact is the BENCH_chaos.json payload.
type chaosArtifact struct {
	Quarters          []string         `json:"quarters"`
	RequestsPerWorker int              `json:"requests_per_worker"`
	Mixes             []chaosMixResult `json:"mixes"`
}

const chaosRequestsPerWorker = 60

// chaosHandler serves /q/{label} through LoadResilient the way
// maras-server's quarter routes do: origin-labeled fresh/stale/peer
// answers, or 503 with Retry-After — never a plain error.
func chaosHandler(reg *store.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		label := strings.TrimPrefix(r.URL.Path, "/q/")
		a, origin, err := reg.LoadResilient(r.Context(), label)
		if err != nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "quarter unavailable: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set(store.OriginHeader, string(origin))
		fmt.Fprintf(w, "%s: %d signals\n", label, len(a.Signals))
	})
}

// runChaos mines the quarters once, then runs every fault mix against
// a fresh store copy and writes BENCH_chaos.json (path from
// -chaos-out). -failpoints SPEC replaces the built-in mixes with one
// custom scenario.
func runChaos(cfg benchConfig) error {
	labels := quarterLabels[:3]
	analyses := make([]*core.Analysis, len(labels))
	for i, label := range labels {
		q, _, err := genQuarter(cfg, label, int64(i))
		if err != nil {
			return err
		}
		opts := core.NewOptions()
		opts.MinSupport = cfg.minsup
		a, err := tracedRun("chaos", q, opts)
		if err != nil {
			return err
		}
		analyses[i] = a
	}

	mixes := defaultChaosMixes()
	if cfg.failpoints != "" {
		mixes = []chaosMix{{name: "custom", spec: cfg.failpoints, workers: 6,
			bulk: resilience.BulkheadConfig{MaxConcurrent: 4, MaxWaiting: 8, MaxWait: 50 * time.Millisecond}}}
	}

	art := chaosArtifact{Quarters: labels, RequestsPerWorker: chaosRequestsPerWorker}
	fmt.Printf("Serving under injected faults (%d quarters, %d requests/worker):\n\n",
		len(labels), chaosRequestsPerWorker)
	fmt.Printf("%-15s %8s %6s %6s %5s %7s %7s %6s %6s %9s\n",
		"Mix", "Requests", "Fresh", "Stale", "Shed", "Failed", "Avail", "Quar", "Shed%", "Recovery")
	for i, mix := range mixes {
		resilience.Seed(cfg.seed + int64(i))
		res, err := runChaosMix(mix, labels, analyses)
		if err != nil {
			return fmt.Errorf("mix %s: %w", mix.name, err)
		}
		art.Mixes = append(art.Mixes, res)
		fmt.Printf("%-15s %8d %6d %6d %5d %7d %6.1f%% %6d %5.1f%% %7dms\n",
			res.Mix, res.Requests, res.Fresh, res.Stale, res.Shed, res.Failed,
			100*res.Availability, res.Quarantined, 100*res.ShedRate, res.RecoveryMillis)
		if res.Availability < 0.99 {
			fmt.Printf("  !! availability below 99%% under mix %s\n", res.Mix)
		}
	}

	fmt.Println("\nShape check: every mix holds availability at (or within noise of) 100% — faults are")
	fmt.Println("absorbed by retries, degraded to stale-marked answers, or shed as fast 503s; none leak")
	fmt.Println("as failures. Corruption mixes quarantine exactly one snapshot, and recovery back to")
	fmt.Println("all-fresh serving after the faults clear is bounded by the breaker cooldown.")

	if cfg.chaosOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.chaosOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote chaos artifact (%d mixes) to %s\n", len(art.Mixes), cfg.chaosOut)
	}
	return nil
}

// runChaosMix runs one fault scenario against a fresh store copy.
func runChaosMix(mix chaosMix, labels []string, analyses []*core.Analysis) (chaosMixResult, error) {
	res := chaosMixResult{Mix: mix.name, Failpoints: mix.spec, Workers: mix.workers}
	dir, err := os.MkdirTemp("", "maras-chaos-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	for i, label := range labels {
		if err := store.WriteFile(filepath.Join(dir, label+store.Ext), label, analyses[i]); err != nil {
			return res, err
		}
	}
	// MaxOpen 1 forces constant LRU churn across the round-robin, so
	// nearly every request exercises the disk path the faults target.
	reg, err := store.OpenRegistry(dir, store.RegistryOptions{
		MaxOpen: 1,
		Auditor: &audit.Auditor{Log: audit.NewLog(audit.LogOptions{})},
		Resilience: &store.ResilienceOptions{
			Quarantine: true,
			Retry: resilience.RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond,
				MaxDelay: 5 * time.Millisecond, Budget: time.Second},
			Breaker: resilience.BreakerConfig{FailureThreshold: 3, Cooldown: 100 * time.Millisecond},
		},
	})
	if err != nil {
		return res, err
	}
	shed, err := resilience.NewBulkhead(nil, mix.bulk)
	if err != nil {
		return res, err
	}
	h := shed.Middleware(chaosHandler(reg))

	// Warm every quarter before the faults start so last-good stale
	// copies exist — the state a long-running server is always in.
	for _, label := range labels {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/q/"+label, nil))
		if rec.Code != http.StatusOK {
			return res, fmt.Errorf("warm-up of %s: status %d", label, rec.Code)
		}
	}

	if err := resilience.Enable(mix.spec); err != nil {
		return res, err
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < mix.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var fresh, stale, shedN, failed int
			for j := 0; j < chaosRequestsPerWorker; j++ {
				label := labels[(w+j)%len(labels)]
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/q/"+label, nil))
				switch {
				case rec.Code == http.StatusOK &&
					rec.Header().Get(store.OriginHeader) != string(store.OriginLocal):
					stale++
				case rec.Code == http.StatusOK:
					fresh++
				case rec.Code == http.StatusServiceUnavailable &&
					strings.HasPrefix(rec.Body.String(), "overloaded"):
					shedN++
				default:
					failed++
				}
			}
			mu.Lock()
			res.Fresh += fresh
			res.Stale += stale
			res.Shed += shedN
			res.Failed += failed
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.Requests = mix.workers * chaosRequestsPerWorker
	if admitted := res.Requests - res.Shed; admitted > 0 {
		res.Availability = float64(res.Fresh+res.Stale) / float64(admitted)
	}
	res.ShedRate = float64(res.Shed) / float64(res.Requests)
	res.Sites = resilience.Stats() // capture before DisableAll clears them

	// Faults clear; an operator restores any quarantined snapshot (the
	// bytes were fine — the corruption was injected at decode) and the
	// recovery clock runs until every quarter serves fresh again.
	resilience.DisableAll()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return res, err
	}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, store.QuarantinedExt) {
			res.Quarantined++
			restored := strings.TrimSuffix(name, store.QuarantinedExt)
			if err := os.Rename(filepath.Join(dir, name), filepath.Join(dir, restored)); err != nil {
				return res, err
			}
		}
	}
	if err := reg.Refresh(); err != nil {
		return res, err
	}
	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for {
		allFresh := true
		for _, label := range labels {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/q/"+label, nil))
			if rec.Code != http.StatusOK ||
				rec.Header().Get(store.OriginHeader) != string(store.OriginLocal) {
				allFresh = false
			}
		}
		if allFresh {
			res.RecoveryMillis = time.Since(start).Milliseconds()
			return res, nil
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("store did not recover to all-fresh within %s", time.Since(start))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
