package main

// The wide experiment gates the wide-event telemetry pipeline on its
// promises. Cost: emitting one event must stay under 2% of the median
// request latency it annotates, and the disabled/sampled-out paths
// must not allocate at all — observability that taxes the hot path
// gets turned off in production, which defeats it. Query: a group-by
// p99 over a full 100k-event ring must come back fast enough to use
// mid-incident. Correlation: a request induced against a live mux
// must be retrievable end to end at /debug/diag/{id} with its span
// tree joined, and its trace ID must surface as an OpenMetrics
// exemplar on /metrics. Failing any gate exits nonzero; the numbers
// land in BENCH_wide.json.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/obs"
	"maras/internal/obs/wide"
	"maras/internal/store"
)

// Gates and knobs.
const (
	wideOverheadCap  = 0.02 // emit cost / median request latency
	wideQueryP99Cap  = 250 * time.Millisecond
	wideRingSize     = wide.DefaultCapacity // query phase runs at full scale
	wideEmitIters    = 200_000
	wideRequestIters = 3000
	wideQueryIters   = 50
	wideBenchDiagID  = "widebench0000001"
)

// wideArtifact is the BENCH_wide.json payload.
type wideArtifact struct {
	Allocs struct {
		DisabledPerEmit   float64 `json:"disabled_per_emit"`
		SampledOutPerEmit float64 `json:"sampled_out_per_emit"`
		Pass              bool    `json:"pass"`
	} `json:"allocs"`
	Overhead struct {
		EmitNanos      float64 `json:"emit_nanos"`
		MedianReqNanos float64 `json:"median_request_nanos"`
		Fraction       float64 `json:"overhead_fraction"`
		RequestIters   int     `json:"request_iterations"`
		EmitIters      int     `json:"emit_iterations"`
		Pass           bool    `json:"pass"`
	} `json:"overhead"`
	Query struct {
		RingEvents int                `json:"ring_events"`
		Shapes     map[string]float64 `json:"shape_p99_millis"`
		WorstP99   float64            `json:"worst_p99_millis"`
		Pass       bool               `json:"pass"`
	} `json:"query"`
	Correlate struct {
		RequestID   string `json:"request_id"`
		DiagOK      bool   `json:"diag_ok"`
		TraceJoined bool   `json:"trace_joined"`
		ExemplarOK  bool   `json:"exemplar_ok"`
		QueryHit    bool   `json:"query_hit"`
		Pass        bool   `json:"pass"`
	} `json:"correlate"`
}

// runWide drives the four-phase wide-event validation and writes
// BENCH_wide.json (path from -wide-out).
func runWide(cfg benchConfig) error {
	var art wideArtifact
	var failures []string

	// ---- Phase A: the off switches are genuinely free.
	fmt.Println("Phase A — disabled-path cost: nil ring and sampled-out emits must not allocate")
	wideAllocs(&art)
	fmt.Printf("  nil-ring emit %.1f allocs/op, sampled-out emit %.1f allocs/op (gate: 0)\n",
		art.Allocs.DisabledPerEmit, art.Allocs.SampledOutPerEmit)
	if !art.Allocs.Pass {
		failures = append(failures, fmt.Sprintf(
			"disabled-path emit allocates (nil=%.1f, sampled=%.1f)",
			art.Allocs.DisabledPerEmit, art.Allocs.SampledOutPerEmit))
	}

	// ---- Phase B: emission cost relative to the requests it annotates.
	fmt.Println("\nPhase B — emission overhead: per-event emit cost vs median request latency")
	if err := wideOverhead(cfg, &art); err != nil {
		return err
	}
	fmt.Printf("  emit %.0fns vs median request %.0fns over %d requests: %.3f%% (cap %.0f%%)\n",
		art.Overhead.EmitNanos, art.Overhead.MedianReqNanos, art.Overhead.RequestIters,
		100*art.Overhead.Fraction, 100*wideOverheadCap)
	if !art.Overhead.Pass {
		failures = append(failures, fmt.Sprintf(
			"emission overhead %.3f%% exceeds the %.0f%% cap",
			100*art.Overhead.Fraction, 100*wideOverheadCap))
	}

	// ---- Phase C: query latency over a full ring.
	fmt.Println("\nPhase C — query latency: filter, group-by p99, and windowed scans over a full ring")
	wideQueryLatency(&art)
	for shape, p99 := range art.Query.Shapes {
		fmt.Printf("  %-24s p99 %.2fms\n", shape, p99)
	}
	fmt.Printf("  worst p99 %.2fms over %d events (cap %dms)\n",
		art.Query.WorstP99, art.Query.RingEvents, wideQueryP99Cap.Milliseconds())
	if !art.Query.Pass {
		failures = append(failures, fmt.Sprintf(
			"query p99 %.2fms exceeds the %dms cap",
			art.Query.WorstP99, wideQueryP99Cap.Milliseconds()))
	}

	// ---- Phase D: cross-signal correlation end to end.
	fmt.Println("\nPhase D — correlation: induced request retrievable at /debug/diag with exemplar on /metrics")
	if err := wideCorrelate(cfg, &art); err != nil {
		return err
	}
	fmt.Printf("  request %s: diag=%v trace=%v exemplar=%v query=%v\n",
		art.Correlate.RequestID, art.Correlate.DiagOK, art.Correlate.TraceJoined,
		art.Correlate.ExemplarOK, art.Correlate.QueryHit)
	if !art.Correlate.Pass {
		failures = append(failures, "end-to-end correlation failed")
	}

	fmt.Println("\nShape check: a sampled-out or disabled emit is a counter bump and an early return,")
	fmt.Println("so it neither allocates nor contends; a stored emit is one short mutex hold writing")
	fmt.Println("into preallocated columns, orders of magnitude under request latency; and queries")
	fmt.Println("scan the columnar ring without materializing events, so a full-ring group-by stays")
	fmt.Println("interactive even at capacity.")

	if cfg.wideOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.wideOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote wide-event artifact to %s\n", cfg.wideOut)
	}
	if len(failures) > 0 {
		return fmt.Errorf("wide gates failed: %s", strings.Join(failures, "; "))
	}
	return nil
}

// wideAllocs measures the two cheap paths with the allocator watched.
func wideAllocs(art *wideArtifact) {
	ev := wide.Event{Kind: wide.KindRequest, ID: "x", Route: "/q/", Status: 200,
		Duration: time.Millisecond, Quarter: "2014Q1", Trace: "x"}
	var nilRing *wide.Ring
	art.Allocs.DisabledPerEmit = testing.AllocsPerRun(1000, func() { nilRing.Emit(ev) })
	// sample=1e9: after the first stored event every emit samples out.
	sampled := wide.NewRing(16, 1_000_000_000, nil)
	sampled.Emit(ev)
	art.Allocs.SampledOutPerEmit = testing.AllocsPerRun(1000, func() { sampled.Emit(ev) })
	art.Allocs.Pass = art.Allocs.DisabledPerEmit == 0 && art.Allocs.SampledOutPerEmit == 0
}

// wideOverhead times the stored-emit path directly, then serves real
// store-backed requests through the full middleware stack (tracing on,
// ring attached) and compares emit cost against the median request.
func wideOverhead(cfg benchConfig, art *wideArtifact) error {
	// Direct emit cost: a representative fully-populated event into a
	// ring large enough that wraparound, not growth, is steady state.
	// Best of several batches — an emit is a short critical section,
	// so the minimum is the honest per-op cost and the rest is
	// scheduler/GC noise that would flake the ratio gate.
	ring := wide.NewRing(wideRingSize, 1, nil)
	ev := wide.Event{Kind: wide.KindRequest, ID: "bench", Route: "/q/", Status: 200,
		Duration: 3 * time.Millisecond, Quarter: "2014Q1", Cache: "lru_hit",
		Bytes: 4096, User: "bench", Spans: 6, Slowest: "store_load",
		SlowestDur: time.Millisecond, Trace: "bench"}
	best := 0.0
	for batch := 0; batch < 5; batch++ {
		start := time.Now()
		for i := 0; i < wideEmitIters; i++ {
			ring.Emit(ev)
		}
		ns := float64(time.Since(start).Nanoseconds()) / wideEmitIters
		if batch == 0 || ns < best {
			best = ns
		}
	}
	art.Overhead.EmitNanos = best
	art.Overhead.EmitIters = wideEmitIters

	// Median request latency through the full instrumented stack. The
	// gate is a ratio, so the denominator must be a representative
	// request: floor the quarter size, or a smoke-sized -reports makes
	// warm requests microbenchmark-cheap and the gate meaninglessly
	// strict (emit cost itself is flat regardless of workload).
	cfgB := cfg
	if cfgB.reports < 8000 {
		cfgB.reports = 8000
	}
	dir, err := os.MkdirTemp("", "maras-wide-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	q, _, err := genQuarter(cfgB, "2014Q1", 0)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	a, err := core.RunQuarter(q, opts)
	if err != nil {
		return err
	}
	if err := store.WriteFile(filepath.Join(dir, "2014Q1"+store.Ext), "2014Q1", a); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	sreg, err := store.OpenRegistry(dir, store.RegistryOptions{
		MaxOpen: 4,
		Metrics: obs.NewStoreMetrics(reg),
	})
	if err != nil {
		return err
	}
	mw := obs.NewHTTPMetrics(reg, nil)
	mw.EnableTracing(obs.NewJournal(64, time.Hour))
	events := wide.NewRing(wideRingSize, 1, reg)
	mw.OnComplete(events.EmitRequest)
	mux := http.NewServeMux()
	mw.Handle(mux, "/q/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a, _, err := sreg.LoadResilient(r.Context(), "2014Q1")
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%d signals\n", len(a.Signals))
	}))

	// Untimed warmup (cold load, page-ins, GC pacer) before measuring.
	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/q/2014Q1", nil))
	}
	lat := make([]float64, 0, wideRequestIters)
	for i := 0; i < wideRequestIters; i++ {
		rec := httptest.NewRecorder()
		it := time.Now()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/q/2014Q1", nil))
		lat = append(lat, float64(time.Since(it).Nanoseconds()))
		if rec.Code != http.StatusOK {
			return fmt.Errorf("bench request %d = %d", i, rec.Code)
		}
	}
	sort.Float64s(lat)
	art.Overhead.MedianReqNanos = lat[len(lat)/2]
	art.Overhead.RequestIters = wideRequestIters
	art.Overhead.Fraction = art.Overhead.EmitNanos / art.Overhead.MedianReqNanos
	art.Overhead.Pass = art.Overhead.Fraction < wideOverheadCap
	return nil
}

// wideQueryLatency fills a ring to capacity with varied events and
// measures p99 latency for the three query shapes an operator leans
// on mid-incident.
func wideQueryLatency(art *wideArtifact) {
	ring := wide.NewRing(wideRingSize, 1, nil)
	routes := []string{"/q/", "/api/signals", "/api/watchlists", "/debug/events"}
	quarters := []string{"2014Q1", "2014Q2", "2014Q3", "2014Q4"}
	statuses := []int{200, 200, 200, 200, 404, 500, 503}
	for i := 0; i < wideRingSize; i++ {
		ring.Emit(wide.Event{
			Kind:     wide.KindRequest,
			ID:       fmt.Sprintf("r%07d", i),
			Route:    routes[i%len(routes)],
			Status:   statuses[i%len(statuses)],
			Duration: time.Duration(1+i%50) * time.Millisecond,
			Quarter:  quarters[i%len(quarters)],
			Cache:    "lru_hit",
			Trace:    fmt.Sprintf("t%07d", i),
		})
	}
	shapes := map[string]wide.Query{
		"filter_status_class": {Where: []wide.Cond{{Field: "code", Value: "5xx"}}},
		"group_route_p99":     {Group: "route", Agg: "p99"},
		"window_group_count":  {Group: "quarter", Agg: "count", Window: time.Hour},
	}
	art.Query.RingEvents = wideRingSize
	art.Query.Shapes = map[string]float64{}
	worst := 0.0
	for name, q := range shapes {
		durs := make([]float64, 0, wideQueryIters)
		for i := 0; i < wideQueryIters; i++ {
			it := time.Now()
			res := ring.Run(q)
			durs = append(durs, float64(time.Since(it).Microseconds())/1000)
			if res.Matched == 0 {
				art.Query.Shapes[name] = -1 // sentinel: the shape matched nothing
			}
		}
		sort.Float64s(durs)
		p99 := durs[int(0.99*float64(len(durs)-1))]
		art.Query.Shapes[name] = p99
		if p99 > worst {
			worst = p99
		}
	}
	art.Query.WorstP99 = worst
	art.Query.Pass = worst < float64(wideQueryP99Cap.Milliseconds())
}

// wideCorrelate stands up a mux with the full observability spine —
// store registry, traced middleware, wide ring, audit log, diag view,
// negotiated metrics — induces one request under a known ID, and
// retrieves it back through every signal like an operator would.
func wideCorrelate(cfg benchConfig, art *wideArtifact) error {
	dir, err := os.MkdirTemp("", "maras-wide-diag-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	q, _, err := genQuarter(cfg, "2014Q1", 0)
	if err != nil {
		return err
	}
	opts := core.NewOptions()
	opts.MinSupport = cfg.minsup
	a, err := core.RunQuarter(q, opts)
	if err != nil {
		return err
	}
	if err := store.WriteFile(filepath.Join(dir, "2014Q1"+store.Ext), "2014Q1", a); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	journal := obs.NewJournal(64, time.Hour)
	mw := obs.NewHTTPMetrics(reg, nil)
	mw.EnableTracing(journal)
	events := wide.NewRing(1024, 1, reg)
	mw.OnComplete(events.EmitRequest)
	alog := audit.NewLog(audit.LogOptions{Metrics: reg})
	sreg, err := store.OpenRegistry(dir, store.RegistryOptions{
		MaxOpen: 4,
		Metrics: obs.NewStoreMetrics(reg),
		Wide:    events,
	})
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mw.Handle(mux, "/q/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a, _, err := sreg.LoadResilient(r.Context(), "2014Q1")
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "%d signals\n", len(a.Signals))
	}))
	diag := wide.Diag{
		Ring:      events,
		FindTrace: journal.Find,
		Audit: func(from, to time.Time) []wide.DiagAuditEvent {
			var out []wide.DiagAuditEvent
			for _, e := range alog.Recent(0) {
				if !e.Time.Before(from) && !e.Time.After(to) {
					out = append(out, wide.DiagAuditEvent{Time: e.Time, Rule: e.Rule,
						Severity: string(e.Severity), Scope: e.Scope, Message: e.Message})
				}
			}
			return out
		},
	}
	mux.Handle("/debug/diag/", wide.DiagHandler(diag, "/debug/diag/"))
	mux.Handle("/debug/events", wide.Handler(events))
	mux.Handle("/metrics", obs.MetricsHandler(reg))

	// The induced request: a cold store load under a pinned request ID.
	req := httptest.NewRequest(http.MethodGet, "/q/2014Q1", nil)
	req.Header.Set(obs.RequestIDHeader, wideBenchDiagID)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("induced request = %d", rec.Code)
	}
	alog.Record(audit.Event{Rule: "bench_marker", Severity: audit.SevWarn,
		Scope: "2014Q1", Message: "wide bench incident marker"})

	c := &art.Correlate
	c.RequestID = wideBenchDiagID

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/diag/"+wideBenchDiagID, nil))
	body := rec.Body.String()
	c.DiagOK = rec.Code == http.StatusOK &&
		strings.Contains(body, "id="+wideBenchDiagID) &&
		strings.Contains(body, "bench_marker")
	c.TraceJoined = strings.Contains(body, "trace "+wideBenchDiagID) &&
		strings.Contains(body, "store_load")

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	c.ExemplarOK = strings.Contains(rec.Body.String(), `trace_id="`+wideBenchDiagID+`"`) &&
		strings.Contains(rec.Body.String(), "# EOF")

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/debug/events?where=id="+wideBenchDiagID, nil))
	c.QueryHit = strings.Contains(rec.Body.String(), "cache=lru_miss")

	c.Pass = c.DiagOK && c.TraceJoined && c.ExemplarOK && c.QueryHit
	return nil
}
