// Command maras-server serves the MARAS interactive visual interface
// (Chapter 4): a panoramagram of contextual glyphs over the ranked
// signals, per-signal zoom views with the MCAC bar-chart alternative,
// drug/reaction search, and drill-down to the raw supporting reports.
//
// The server is fully instrumented (see README "Observability"):
// every route carries request logging, latency histograms, status
// counters, and panic recovery; /metrics serves Prometheus text (or
// the expvar JSON dump with ?format=json), /healthz reports
// liveness, /debug/vars is the standard expvar endpoint, and
// /debug/pprof/* exposes the runtime profiler. Shutdown on
// SIGINT/SIGTERM drains in-flight requests.
//
// Usage:
//
//	maras-server -data data -quarter 2014Q1 [-addr :8080] [-minsup 8]
//	             [-log-format text|json] [-log-level debug|info|warn|error]
//	maras-server -store snapshots/ [-addr :8080] ...
//
// With -store the server mines nothing: it serves pre-mined quarter
// snapshots (written by maras-mine -snapshot-out) from the given
// directory — the latest quarter at /, every quarter under
// /q/{label}/..., the inventory at /api/quarters, and cross-quarter
// signal trajectories at /api/timeline/{drugkey}. See store.go.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"html/template"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/glyph"
	"maras/internal/knowledge"
	"maras/internal/network"
	"maras/internal/obs"
	"maras/internal/obs/history"
	"maras/internal/obs/prof"
	"maras/internal/obs/wide"
	"maras/internal/replica"
	"maras/internal/resilience"
	"maras/internal/slo"
	"maras/internal/store"
	"maras/internal/strata"
	"maras/internal/watch"
)

// svgCacheControl marks the per-rank SVG renders as immutable: a
// rank's glyph never changes within one server process, so browsers
// paging through the panoramagram should not re-fetch.
const svgCacheControl = "public, max-age=86400, immutable"

// shutdownGrace bounds how long graceful shutdown waits for in-flight
// requests to drain.
const shutdownGrace = 15 * time.Second

type server struct {
	analysis *core.Analysis
	quarter  string
	logger   *slog.Logger
	alog     *audit.Log // event timeline behind /debug/audit; may be nil
	started  time.Time
}

// log returns the configured logger, or a discard logger so handler
// code never nil-checks (tests construct bare servers).
func (s *server) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// routes assembles the full instrumented mux: every UI/API handler
// wrapped in the observability middleware, plus the operational
// endpoints. journal may be nil (tracing disabled, /debug/traces
// 404s); ready gates /readyz; shed may be nil (no load shedding);
// slos may be nil (history/SLO endpoints 404). The bulkhead covers
// only the application routes, so health probes and metric scrapes
// stay answerable under saturation. The text-heavy operational
// endpoints negotiate gzip — exposition text and trace dumps
// compress an order of magnitude.
func (s *server) routes(reg *obs.Registry, mw *obs.HTTPMetrics, journal *obs.Journal, ready *obs.Readiness, shed *resilience.Bulkhead, slos *sloStack, ws *watchStack, captor *prof.Captor, events *wide.Ring) http.Handler {
	// Mining mode serves the one in-memory analysis, so every
	// application response carries the "local" serving origin — the
	// same header the store mode's degradation ladder populates.
	app := func(h http.HandlerFunc) http.Handler {
		return shed.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(store.OriginHeader, string(store.OriginLocal))
			h(w, r)
		}))
	}
	mux := http.NewServeMux()
	mw.Handle(mux, "/", app(s.handleIndex))
	mw.Handle(mux, "/signal/", app(s.handleSignal))
	mw.Handle(mux, "/glyph/", app(s.handleGlyph))
	mw.Handle(mux, "/barchart/", app(s.handleBarChart))
	mw.Handle(mux, "/report/", app(s.handleReport))
	mw.Handle(mux, "/api/signals", app(s.handleAPISignals))
	mw.Handle(mux, "/network.dot", app(s.handleNetworkDOT))
	mw.Handle(mux, "/network.json", app(s.handleNetworkJSON))
	ws.register(mux, mw, app)
	mountOperational(mux, reg, journal, ready, slos, s.healthDetail, s.alog, captor, events)
	return mux
}

// mountOperational registers the operational endpoints shared by the
// mining and store serving modes: metrics, health/readiness, trace
// and audit timelines, the metrics history, the SLO report, and the
// continuous-profiling surface. Build identity is registered here —
// once per process, whichever serving mode runs — and echoed on
// /healthz and /readyz next to the caller's detail.
func mountOperational(mux *http.ServeMux, reg *obs.Registry, journal *obs.Journal, ready *obs.Readiness, slos *sloStack, detail func() map[string]any, alog *audit.Log, captor *prof.Captor, events *wide.Ring) {
	bi := obs.RegisterBuildInfo(reg)
	withBuild := func() map[string]any {
		m := bi.Detail()
		if detail != nil {
			for k, v := range detail() {
				m[k] = v
			}
		}
		return m
	}
	mux.Handle("/metrics", obs.GzipHandler(obs.MetricsHandler(reg)))
	mux.Handle("/healthz", obs.HealthzHandler(withBuild))
	mux.Handle("/readyz", obs.ReadyzHandler(ready, withBuild))
	mux.Handle("/debug/traces", obs.GzipHandler(obs.TracesHandler(journal)))
	mux.Handle("/debug/audit", obs.GzipHandler(audit.Handler(alog)))
	mux.Handle("/debug/history", obs.GzipHandler(history.Handler(slos.history())))
	mux.Handle("/api/history/", obs.GzipHandler(history.APIHandler(slos.history(), "/api/history/")))
	mux.Handle("/api/slo", obs.GzipHandler(slo.Handler(slos.engine())))
	mux.Handle("/debug/vars", obs.ExpvarHandler())
	// The profile index and JSON listing negotiate gzip like the other
	// text surfaces; artifact downloads (application/octet-stream) pass
	// through uncompressed so clients keep a trustworthy Content-Length.
	profH := obs.GzipHandler(prof.Handler(captor, "/debug/profiles"))
	mux.Handle("/debug/profiles", profH)
	mux.Handle("/debug/profiles/", profH)
	mux.Handle("/debug/events", obs.GzipHandler(wide.Handler(events)))
	mux.Handle("/debug/diag/", obs.GzipHandler(wide.DiagHandler(
		newDiag(events, journal, alog, slos, ready, captor), "/debug/diag/")))
	obs.RegisterPprof(mux)
}

// quarterMux assembles just the per-quarter application routes —
// the unit store mode mounts once per quarter, under its own outer
// instrumentation, without duplicating the operational endpoints.
func (s *server) quarterMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/signal/", s.handleSignal)
	mux.HandleFunc("/glyph/", s.handleGlyph)
	mux.HandleFunc("/barchart/", s.handleBarChart)
	mux.HandleFunc("/report/", s.handleReport)
	mux.HandleFunc("/api/signals", s.handleAPISignals)
	mux.HandleFunc("/network.dot", s.handleNetworkDOT)
	mux.HandleFunc("/network.json", s.handleNetworkJSON)
	return mux
}

func (s *server) healthDetail() map[string]any {
	return map[string]any{
		"quarter":        s.quarter,
		"signals":        len(s.analysis.Signals),
		"reports":        s.analysis.Stats.Reports,
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
	}
}

func main() {
	var (
		data      = flag.String("data", "data", "directory with FAERS quarter files")
		quarter   = flag.String("quarter", "2014Q1", "quarter label")
		storeDir  = flag.String("store", "", "serve pre-mined quarter snapshots from this directory instead of mining")
		addr      = flag.String("addr", ":8080", "listen address")
		minsup    = flag.Int("minsup", 8, "absolute minimum support")
		topK      = flag.Int("top", 60, "signals to keep")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")

		traceCap  = flag.Int("trace-journal", obs.DefaultJournalCapacity, "completed request traces kept in the in-memory journal (0 disables span tracing)")
		traceSlow = flag.Duration("trace-slow", obs.DefaultSlowThreshold, "requests at or above this duration are flagged slow in the trace journal")

		wideCap    = flag.Int("wide-events", wide.DefaultCapacity, "wide events kept in the in-memory ring behind /debug/events and /debug/diag (0 disables wide-event telemetry)")
		wideSample = flag.Int("wide-sample", 1, "keep every Nth wide event (1 keeps all)")

		runtimeSample = flag.Duration("runtime-sample", obs.DefaultSampleInterval, "runtime health sampling interval (0 disables the sampler)")
		wdGoroutines  = flag.Int64("watchdog-max-goroutines", 10000, "watchdog: warn and count when goroutines exceed this (0 disables)")
		wdGCPause     = flag.Duration("watchdog-max-gc-pause", 250*time.Millisecond, "watchdog: warn and count when a GC pause exceeds this (0 disables)")

		auditTopK      = flag.Int("audit-topk", 25, "audit: rank cutoff for drift comparison (negative = all signals)")
		auditChurnWarn = flag.Float64("audit-churn-warn", 0.5, "audit: warn when the top-K churn rate between quarters reaches this")
		auditDropWarn  = flag.Float64("audit-drop-warn", 0.6, "audit: warn when a quarter's cleaning drop rate reaches this")

		historyScrape    = flag.Duration("history-scrape", 10*time.Second, "metrics history scrape interval (0 disables history and the SLO engine)")
		historyRetention = flag.Duration("history-retention", 6*time.Hour, "how far back metrics history windows can reach")
		sloAvailability  = flag.Float64("slo-availability", 0.995, "SLO: target fraction of requests answered without a 5xx (0 disables)")
		sloP99           = flag.Duration("slo-p99", 500*time.Millisecond, "SLO: p99 request latency target (0 disables)")
		sloStaleCeiling  = flag.Float64("slo-stale-ceiling", 0.05, "SLO: max fraction of requests served from the stale cache (0 disables)")
		sloShedCeiling   = flag.Float64("slo-shed-ceiling", 0.10, "SLO: max fraction of requests shed by the bulkhead (0 disables)")
		sloWindowScale   = flag.Float64("slo-window-scale", 1, "SLO: multiply the burn-rate rule windows (sub-1 values shrink 5m/1h to test burn dynamics quickly)")
		sloCooldown      = flag.Duration("slo-cooldown", 0, "SLO: clean time before an active breach clears (0 = each rule's short window)")

		watchFile    = flag.String("watch-file", "", "persist watchlists to this snapshot file (store mode defaults to <store>/watchlists.mrwl; empty elsewhere keeps lists in memory)")
		watchUserCap = flag.Int("watch-user-cap", 100, "max watchlists per user")
		watchFeedCap = flag.Int("watch-feed-cap", watch.DefaultFeedCapacity, "alerts retained per user feed")
		watchBudget  = flag.Duration("watch-eval-budget", watch.DefaultEvalBudget, "watch evaluation latency budget; slower passes raise a warn audit event")

		profDir       = flag.String("prof-dir", "", "continuous profiling: record capture artifacts into this directory (empty disables)")
		profCPUWindow = flag.Duration("prof-cpu-window", prof.DefaultCPUWindow, "continuous profiling: CPU sampling window per scheduled capture")
		profInterval  = flag.Duration("prof-interval", prof.DefaultInterval, "continuous profiling: scheduled capture period (0 keeps only anomaly-triggered captures)")
		profRetain    = flag.Int("prof-retain", prof.DefaultMaxArtifacts, "continuous profiling: capture artifacts retained on disk")
		profRetainMB  = flag.Int("prof-retain-mb", 64, "continuous profiling: megabytes of capture artifacts retained on disk")
		profCooldown  = flag.Duration("prof-trigger-cooldown", prof.DefaultCooldown, "continuous profiling: minimum gap between anomaly-triggered captures of the same cause")
		mutexFraction = flag.Int("mutex-profile-fraction", 0, "sample 1/N of mutex contention events into /debug/pprof/mutex (0 disables)")
		blockRate     = flag.Duration("block-profile-rate", 0, "record goroutine blocking events at least this long into /debug/pprof/block (0 disables)")

		peers          = flag.String("peers", "", "comma-separated base URLs of replica peers to sync snapshots from (store mode only)")
		syncInterval   = flag.Duration("sync-interval", replica.DefaultInterval, "anti-entropy sync loop period, jittered ±25% (effective with -peers)")
		replicaListen  = flag.String("replica-listen", "", "serve the /sync/* replica endpoints on this extra listener too (store mode only; they are always mounted on -addr outside the bulkhead)")
		rescanInterval = flag.Duration("rescan-interval", 0, "re-scan the snapshot directory on this jittered period to pick up externally written files (0 disables; store mode only)")

		failpoints  = flag.String("failpoints", "", "arm fault-injection sites, e.g. 'store/decode=error*1;store/load=delay(50ms,0.2)' (also read from "+resilience.FailpointEnv+")")
		maxInflight = flag.Int("max-inflight", 64, "bulkhead: application requests executing concurrently (0 disables load shedding)")
		shedQueue   = flag.Int("shed-queue", 64, "bulkhead: requests allowed to queue for a slot before overflow sheds with 503")
		shedWait    = flag.Duration("shed-wait", 250*time.Millisecond, "bulkhead: how long a queued request waits for a slot before being shed")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maras-server:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)

	// Replication only makes sense over an on-disk snapshot store: a
	// mining server has nothing to advertise and nowhere to install
	// fetched quarters.
	if *storeDir == "" && (*peers != "" || *replicaListen != "" || *rescanInterval > 0) {
		fmt.Fprintln(os.Stderr, "maras-server: -peers, -replica-listen, and -rescan-interval require -store")
		os.Exit(2)
	}

	// Arm failpoints from the environment first, then the flag (the
	// flag adds to or overrides the env spec site by site).
	if spec, err := resilience.EnableFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "maras-server:", err)
		os.Exit(2)
	} else if spec != "" {
		logger.Warn("failpoints armed from env", "spec", spec)
	}
	if *failpoints != "" {
		if err := resilience.Enable(*failpoints); err != nil {
			fmt.Fprintln(os.Stderr, "maras-server:", err)
			os.Exit(2)
		}
		logger.Warn("failpoints armed", "spec", *failpoints)
	}

	// Runtime contention profiling: off unless asked for, because both
	// collectors cost on every contention event. Set before any real
	// work so the profiles cover the whole process lifetime.
	prof.EnableMutexProfiling(*mutexFraction)
	prof.EnableBlockProfiling(*blockRate)

	reg := obs.NewRegistry()
	reg.PublishExpvar("maras_metrics")
	mw := obs.NewHTTPMetrics(reg, logger)
	tracer := obs.NewTracer(logger)

	var journal *obs.Journal
	if *traceCap > 0 {
		journal = obs.NewJournal(*traceCap, *traceSlow)
		mw.EnableTracing(journal)
	}
	ready := &obs.Readiness{}

	// Wide-event telemetry: one flat record per request (and per store
	// load, watch evaluation, and mining run) into the columnar ring
	// behind /debug/events and /debug/diag. A nil ring no-ops at every
	// emission point, so the wiring below is unconditional.
	var events *wide.Ring
	if *wideCap > 0 {
		events = wide.NewRing(*wideCap, *wideSample, reg)
		mw.OnComplete(events.EmitRequest)
	}

	// The audit pillar: one event log for the process, fed by quality
	// and drift evaluations and by runtime watchdog excursions.
	alog := audit.NewLog(audit.LogOptions{Logger: logger, Metrics: reg})
	auditor := &audit.Auditor{
		Log: alog,
		Thresholds: audit.Thresholds{
			TopK:      *auditTopK,
			ChurnWarn: *auditChurnWarn,
			DropWarn:  *auditDropWarn,
		},
		Metrics: reg,
	}

	// The lifecycle context ends on SIGINT/SIGTERM. Created before any
	// background work starts so the audit sweep (and anything else
	// holding it) stops with the process instead of leaking through
	// shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var shed *resilience.Bulkhead
	if *maxInflight > 0 {
		var err error
		shed, err = resilience.NewBulkhead(reg, resilience.BulkheadConfig{
			MaxConcurrent: *maxInflight,
			MaxWaiting:    *shedQueue,
			MaxWait:       *shedWait,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "maras-server:", err)
			os.Exit(2)
		}
	}

	// The SLO stack: scrape the registry into ring-buffer history and
	// evaluate burn-rate rules on every sample. Shares the audit log
	// and readiness probe with the rest of the alerting spine.
	slos := newSLOStack(reg, alog, ready, logger, sloOptions{
		scrape:       *historyScrape,
		retention:    *historyRetention,
		availability: *sloAvailability,
		p99:          *sloP99,
		staleCeiling: *sloStaleCeiling,
		shedCeiling:  *sloShedCeiling,
		windowScale:  *sloWindowScale,
		cooldown:     *sloCooldown,
	})

	// Continuous profiling: scheduled capture cycles into the on-disk
	// artifact ring, plus anomaly-triggered snapshots from the audit
	// log (watchdog violations, SLO burns, slow watch passes) and from
	// the trace journal's slow-trace threshold. The trigger adapts
	// audit events to plain strings because obs/prof cannot import
	// internal/audit (audit → core → prof would cycle).
	var captor *prof.Captor
	if *profDir != "" {
		pstore, err := prof.OpenStore(*profDir, prof.StoreOptions{
			MaxArtifacts: *profRetain,
			MaxBytes:     int64(*profRetainMB) << 20,
			Metrics:      reg,
			Logger:       logger,
			// Back-link wide events to the artifact that profiled them:
			// the CPU window plus slack covers the capture's extent.
			OnAdd: func(a prof.Artifact) {
				events.LinkProfile(a.ID, a.TakenAt, *profCPUWindow+5*time.Second)
			},
		})
		if err != nil {
			logger.Error("open profile store", "err", err)
			os.Exit(1)
		}
		captor = prof.NewCaptor(prof.CaptorOptions{
			Store:     pstore,
			CPUWindow: *profCPUWindow,
			Interval:  *profInterval,
			Metrics:   reg,
			Logger:    logger,
		})
		captor.Start(ctx)
		defer captor.Stop()
		trigger := prof.NewTrigger(prof.TriggerOptions{
			Captor:   captor,
			Cooldown: *profCooldown,
			Metrics:  reg,
			Logger:   logger,
		})
		alog.OnRecord(func(e audit.Event) {
			trigger.Observe(e.Rule, string(e.Severity), e.Scope, e.Message)
		})
		journal.OnSlow(func(tr obs.TraceRecord) {
			trigger.SlowTrace(tr.Name, tr.Duration())
		})
		logger.Info("continuous profiling enabled", "dir", *profDir,
			"interval", *profInterval, "cpu_window", *profCPUWindow,
			"retain", *profRetain, "retain_mb", *profRetainMB)
	}

	var sampler *obs.RuntimeSampler
	if *runtimeSample > 0 {
		sampler = obs.NewRuntimeSampler(reg, obs.RuntimeSamplerOptions{
			Interval:      *runtimeSample,
			MaxGoroutines: *wdGoroutines,
			MaxGCPause:    *wdGCPause,
			Logger:        logger,
			OnViolation:   auditor.RecordWatchdog,
		})
		sampler.Start()
		defer sampler.Stop()
	}

	// The watchlist subsystem is live in both serving modes; store mode
	// persists lists next to the snapshots unless told otherwise. Drift
	// events reach the evaluator through the audit log subscription.
	wfile := *watchFile
	if wfile == "" && *storeDir != "" {
		wfile = filepath.Join(*storeDir, "watchlists.mrwl")
	}
	ws, err := newWatchStack(watchConfig{
		file:    wfile,
		userCap: *watchUserCap,
		feedCap: *watchFeedCap,
		budget:  *watchBudget,
	}, knowledge.Builtin(), reg, auditor, logger, events)
	if err != nil {
		logger.Error("open watchlists", "err", err)
		os.Exit(1)
	}
	alog.OnRecord(ws.ev.HandleAuditEvent)
	if ws.ix.Len() > 0 {
		logger.Info("watchlists loaded", "file", wfile, "lists", ws.ix.Len())
	}

	var handler http.Handler
	var replicaSrv *http.Server
	if *storeDir != "" {
		ss, err := newStoreServer(*storeDir, logger, tracer, obs.NewStoreMetrics(reg), auditor, ws, events)
		if err != nil {
			logger.Error("open store", "err", err)
			os.Exit(1)
		}
		// The replica node always exists in store mode so peers can pull
		// from this server even when it has no -peers of its own; the
		// sync loop only runs when there is someone to pull from.
		node := replica.NewNode(ss.reg, replica.Options{
			Name:     *addr,
			Peers:    splitPeers(*peers),
			Interval: *syncInterval,
			Metrics:  replica.NewMetrics(reg),
			Wide:     events,
			Auditor:  auditor,
			Logger:   logger,
			OnRound: func(st replica.SyncStats) {
				ready.SetDegraded("replica", st.Unreachable > 0)
			},
		})
		ss.replica = node
		if len(node.Peers()) > 0 {
			ss.reg.SetPeerFetch(node.FetchAnalysis)
			node.Start(ctx)
			logger.Info("replica sync started",
				"peers", node.Peers(), "interval", *syncInterval)
		}
		ss.reg.StartRescan(ctx, *rescanInterval)
		quarters := ss.reg.Quarters()
		logger.Info("serving from store", "dir", *storeDir,
			"quarters", len(quarters), "default", ss.reg.Latest())
		handler = ss.routes(reg, mw, journal, ready, shed, slos, ws, captor, events)
		ready.SetReady() // registry opened and scanned: store mode can serve
		// Populate the audit timeline in the background: quality per
		// quarter, drift per adjacent pair. Serving never waits on it,
		// and the sweep stops with the lifecycle context on SIGTERM.
		go ss.auditSweep(ctx)
		// An optional second listener carries only the replica sync
		// endpoints, so operators can keep peer traffic off the public
		// address (and firewall the two apart).
		if *replicaListen != "" {
			rmux := http.NewServeMux()
			node.Mount(rmux)
			replicaSrv = &http.Server{
				Addr:              *replicaListen,
				Handler:           rmux,
				ReadHeaderTimeout: 5 * time.Second,
				ReadTimeout:       30 * time.Second,
				WriteTimeout:      2 * time.Minute,
				IdleTimeout:       2 * time.Minute,
				ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
			}
			go func() {
				if err := replicaSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
					logger.Error("replica listener", "err", err)
				}
			}()
			logger.Info("replica sync listening", "addr", *replicaListen)
		}
	} else {
		q, err := faers.LoadQuarter(*data, *quarter)
		if err != nil {
			logger.Error("load quarter", "err", err)
			os.Exit(1)
		}
		opts := core.NewOptions()
		opts.MinSupport = *minsup
		opts.TopK = *topK
		opts.Tracer = tracer
		logger.Info("mining", "quarter", *quarter, "minsup", *minsup)
		// Trace the startup mine into the journal (trace "startup") so
		// /debug/traces explains where boot time went, stage by stage.
		mineCtx := context.Background()
		var mineTrace *obs.Trace
		var mineRoot *obs.Span
		if journal != nil {
			mineTrace = obs.NewTrace("startup")
			mineCtx, mineRoot = mineTrace.StartRoot(mineCtx, "startup mine "+*quarter)
		}
		a, err := core.RunQuarterContext(mineCtx, q, opts)
		if mineRoot != nil {
			mineRoot.End()
			journal.Add(mineTrace.Snapshot())
		}
		if err != nil {
			logger.Error("pipeline", "err", err)
			os.Exit(1)
		}
		// The startup mine is a unit of work like any other: one wide
		// event, linked to the "startup" trace when tracing is on.
		events.Emit(wide.Event{
			Kind: wide.KindMine, Quarter: *quarter, Status: 200,
			Duration: tracer.TotalDuration(), Trace: mineRoot.TraceID(),
		})
		for _, st := range tracer.Records() {
			logger.Info("pipeline stage", "stage", st.Name,
				"duration", st.Duration().Round(time.Millisecond),
				"alloc_mb", st.AllocBytes>>20)
		}
		logger.Info("ready", "signals", len(a.Signals), "reports", a.Stats.Reports,
			"mining_wall", tracer.TotalDuration().Round(time.Millisecond))
		// Audit the freshly mined quarter (no trailing context in
		// single-quarter mode) so ingest anomalies hit the event log
		// and the operator log line before traffic arrives.
		qr := audit.ComputeQuality(*quarter, a)
		audit.EvaluateQuality(qr, nil, auditor.ActiveThresholds())
		auditor.RecordQuality(qr)
		logger.Info("ingest quality", "quarter", *quarter, "verdict", qr.Verdict,
			"drop_rate", fmt.Sprintf("%.3f", qr.DropRate), "findings", len(qr.Findings))
		// Seed the watch subsystem with the mined quarter: populate the
		// known-drug vocabulary and fire any alerts the startup signals
		// qualify for.
		ws.onQuarterLoaded(context.Background(), *quarter, a)
		s := &server{analysis: a, quarter: *quarter, logger: logger, alog: alog, started: time.Now()}
		handler = s.routes(reg, mw, journal, ready, shed, slos, ws, captor, events)
		ready.SetReady() // initial mine complete: traffic can flow
	}
	// Start scraping only once the serving mode is up: the first
	// scrape then sees every eagerly-registered route series, giving
	// the burn-rate windows a clean zero baseline.
	slos.start(ctx)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Generous write timeout: /debug/pprof/profile streams for
		// 30s (configurable via ?seconds=) and must not be cut off.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
		ErrorLog:     slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		logger.Info("signal received, draining in-flight requests", "grace", shutdownGrace)
		// Stop the background samplers before draining: the audit
		// sweep already sees ctx canceled; the runtime sampler ticker
		// must not outlive the listener.
		if sampler != nil {
			sampler.Stop()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if replicaSrv != nil {
			if err := replicaSrv.Shutdown(shutdownCtx); err != nil {
				logger.Warn("replica listener shutdown", "err", err)
			}
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	}
}

// splitPeers parses the -peers flag: comma-separated base URLs,
// whitespace-tolerant, trailing slashes dropped, empties skipped.
func splitPeers(spec string) []string {
	var out []string
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSuffix(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// renderHTML executes a template into a buffer first so a mid-render
// failure can still produce a clean 500 instead of a half-written
// page (once bytes hit the wire the status is unfixable). The render
// runs under a "render:<name>" child span of the request trace.
func (s *server) renderHTML(w http.ResponseWriter, r *http.Request, name string, tmpl *template.Template, data any) {
	_, span := obs.StartSpan(r.Context(), "render:"+name)
	defer span.End()
	var buf bytes.Buffer
	if err := tmpl.Execute(&buf, data); err != nil {
		s.log().Error("template render", "template", name, "err", err)
		http.Error(w, "internal render error", http.StatusInternalServerError)
		return
	}
	span.SetInt("bytes", int64(buf.Len()))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := buf.WriteTo(w); err != nil {
		s.log().Warn("response write", "template", name, "err", err)
	}
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>MARAS — {{.Quarter}}</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
.grid{display:flex;flex-wrap:wrap;gap:12px}
.card{background:#fff;border:1px solid #ddd;border-radius:8px;padding:8px;width:180px;text-align:center}
.card a{text-decoration:none;color:#333;font-size:12px}
.known{color:#b33}
input{padding:6px;width:260px}
</style></head><body>
<h1>MARAS — Multi-Drug ADR Signals ({{.Quarter}})</h1>
<p>{{.Reports}} reports · {{.Drugs}} drugs · {{.Reactions}} reactions ·
{{.SignalCount}} ranked signals. Larger core + shorter sectors = more exclusive interaction.</p>
<form method="get"><input name="q" placeholder="search drug or reaction" value="{{.Query}}"></form>
<div class="grid">
{{range .Signals}}
  <div class="card">
    <a href="/signal/{{.Rank}}">
      <img src="/glyph/{{.Rank}}" width="160" height="160" alt="glyph">
      <div><b>#{{.Rank}}</b> {{.DrugList}}</div>
      <div>score {{printf "%.3f" .Score}}{{if .Known}} · <span class="known">known</span>{{end}}</div>
    </a>
  </div>
{{end}}
</div></body></html>`))

type indexData struct {
	Quarter     string
	Reports     int
	Drugs       int
	Reactions   int
	SignalCount int
	Query       string
	Signals     []indexSignal
}

type indexSignal struct {
	Rank     int
	Score    float64
	DrugList string
	Known    bool
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	query := strings.TrimSpace(r.URL.Query().Get("q"))
	signals := s.analysis.Signals
	if query != "" {
		// FilterSignals matches case-insensitively; one query suffices.
		signals = s.analysis.FilterSignals(query)
	}
	d := indexData{
		Quarter:     s.quarter,
		Reports:     s.analysis.Stats.Reports,
		Drugs:       s.analysis.Stats.Drugs,
		Reactions:   s.analysis.Stats.Reactions,
		SignalCount: len(s.analysis.Signals),
		Query:       query,
	}
	for _, sig := range signals {
		d.Signals = append(d.Signals, indexSignal{
			Rank:     sig.Rank,
			Score:    sig.Score,
			DrugList: strings.Join(sig.Drugs, " + "),
			Known:    sig.Known != nil,
		})
	}
	s.renderHTML(w, r, "index", indexTmpl, d)
}

var signalTmpl = template.Must(template.New("signal").Parse(`<!DOCTYPE html>
<html><head><title>MARAS signal #{{.Rank}}</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
.row{display:flex;gap:24px;align-items:flex-start}
table{border-collapse:collapse}
td,th{border:1px solid #ccc;padding:4px 8px;font-size:13px}
.known{background:#fee;padding:8px;border-radius:6px}
</style></head><body>
<p><a href="/">&larr; all signals</a></p>
<h1>#{{.Rank}} {{.DrugList}} &rArr; {{.ReactionList}}</h1>
<p>score {{printf "%.4f" .Score}} · support {{.Support}} · confidence {{printf "%.3f" .Confidence}} · lift {{printf "%.2f" .Lift}}{{if .SOCList}} · {{.SOCList}}{{end}}</p>
{{if .Known}}<div class="known"><b>Known interaction</b> ({{.KnownSeverity}}): {{.KnownMechanism}} — <i>{{.KnownSource}}</i></div>{{end}}
<div class="row">
  <div><h3>Contextual glyph (zoom)</h3><img src="/glyph/{{.Rank}}?zoom=1" width="420"></div>
  <div><h3>MCAC bar-chart</h3><img src="/barchart/{{.Rank}}" width="420"></div>
</div>
<h3>Context (sub-rules)</h3>
<table><tr><th>Drugs</th><th>Confidence</th><th>Lift</th><th>Support</th></tr>
{{range .Context}}<tr><td>{{.Drugs}}</td><td>{{printf "%.3f" .Confidence}}</td><td>{{printf "%.2f" .Lift}}</td><td>{{.Support}}</td></tr>{{end}}
</table>
<h3>Demographics of supporting reports</h3>
<p>Sex: {{.SexBreakdown}} (χ²={{printf "%.1f" .SexChi}}) · Age: {{.AgeBreakdown}} (χ²={{printf "%.1f" .AgeChi}})
{{if .Enriched}}<br>Enriched strata: {{.Enriched}}{{end}}</p>
<h3>Supporting reports ({{len .ReportIDs}})</h3>
<p>{{range .ReportIDs}}<a href="/report/{{.}}">{{.}}</a> {{end}}</p>
</body></html>`))

type signalData struct {
	Rank           int
	Score          float64
	DrugList       string
	ReactionList   string
	Support        int
	Confidence     float64
	Lift           float64
	Known          bool
	KnownSeverity  string
	KnownMechanism string
	KnownSource    string
	Context        []contextRow
	ReportIDs      []string
	ReportList     string
	SOCList        string
	SexBreakdown   string
	AgeBreakdown   string
	SexChi         float64
	AgeChi         float64
	Enriched       string
}

type contextRow struct {
	Drugs      string
	Confidence float64
	Lift       float64
	Support    int
}

// renderDist formats a distribution as "F:12 M:3".
func renderDist(d strata.Distribution) string {
	parts := make([]string, 0, len(d))
	for _, k := range d.Keys() {
		parts = append(parts, fmt.Sprintf("%s:%d", k, d[k]))
	}
	return strings.Join(parts, " ")
}

func (s *server) signalByRank(path, prefix string) (*core.Signal, bool) {
	rankStr := strings.TrimPrefix(path, prefix)
	rankStr = strings.TrimSuffix(rankStr, "/")
	n, err := strconv.Atoi(rankStr)
	if err != nil || n < 1 || n > len(s.analysis.Signals) {
		return nil, false
	}
	return &s.analysis.Signals[n-1], true
}

func (s *server) handleSignal(w http.ResponseWriter, r *http.Request) {
	sig, ok := s.signalByRank(r.URL.Path, "/signal/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	dict := s.analysis.Dict()
	d := signalData{
		Rank:         sig.Rank,
		Score:        sig.Score,
		DrugList:     strings.Join(sig.Drugs, " + "),
		ReactionList: strings.Join(sig.Reactions, ", "),
		Support:      sig.Support,
		Confidence:   sig.Confidence,
		Lift:         sig.Lift,
		ReportIDs:    sig.ReportIDs,
		ReportList:   strings.Join(sig.ReportIDs, ", "),
	}
	socs := make([]string, len(sig.SOCs))
	for i, soc := range sig.SOCs {
		socs[i] = string(soc)
	}
	d.SOCList = strings.Join(socs, "; ")
	demo := s.analysis.Demographics(sig)
	d.SexBreakdown = renderDist(demo.SexSignal)
	d.AgeBreakdown = renderDist(demo.AgeSignal)
	d.SexChi = demo.SexChiSquare
	d.AgeChi = demo.AgeChiSquare
	d.Enriched = strings.Join(demo.Enriched(0.15), ", ")
	if sig.Known != nil {
		d.Known = true
		d.KnownSeverity = sig.Known.Severity.String()
		d.KnownMechanism = sig.Known.Mechanism
		d.KnownSource = sig.Known.Source
	}
	for _, cr := range sig.Cluster.ContextRules() {
		d.Context = append(d.Context, contextRow{
			Drugs:      strings.Join(dict.SortedNames(cr.Antecedent), " + "),
			Confidence: cr.Confidence,
			Lift:       cr.Lift,
			Support:    cr.Support,
		})
	}
	s.renderHTML(w, r, "signal", signalTmpl, d)
}

func (s *server) handleGlyph(w http.ResponseWriter, r *http.Request) {
	sig, ok := s.signalByRank(r.URL.Path, "/glyph/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	_, span := obs.StartSpan(r.Context(), "render:glyph")
	defer span.End()
	span.SetInt("rank", int64(sig.Rank))
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Header().Set("Cache-Control", svgCacheControl)
	if r.URL.Query().Get("zoom") != "" {
		span.SetAttr("zoom", "true")
		fmt.Fprint(w, glyph.Zoom(sig.Cluster, s.analysis.Dict()))
		return
	}
	fmt.Fprint(w, glyph.Contextual(sig.Cluster, glyph.Options{Dict: s.analysis.Dict()}))
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><title>Report {{.PrimaryID}}</title>
<style>body{font-family:sans-serif;margin:2em;background:#fafafa}
td,th{border:1px solid #ccc;padding:4px 8px;font-size:13px}table{border-collapse:collapse}</style></head><body>
<p><a href="/">&larr; all signals</a></p>
<h1>Report {{.PrimaryID}}</h1>
<table>
<tr><th>Case</th><td>{{.CaseID}}</td></tr>
<tr><th>Type</th><td>{{.ReportCode}}</td></tr>
<tr><th>Age</th><td>{{.Age}} {{.AgeCode}}</td></tr>
<tr><th>Sex</th><td>{{.Sex}}</td></tr>
<tr><th>Country</th><td>{{.Country}}</td></tr>
<tr><th>Event date</th><td>{{.EventDate}}</td></tr>
<tr><th>Drugs</th><td>{{.DrugList}}</td></tr>
<tr><th>Reactions</th><td>{{.ReacList}}</td></tr>
<tr><th>Outcomes</th><td>{{.OutcomeList}}</td></tr>
</table></body></html>`))

// handleReport shows one raw report — the drill-down the paper's
// Section 4.1 requires ("analyze the original data reports submitted
// by patients that supports the corresponding drug-drug interactions").
func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/report/"), "/")
	rep, ok := s.analysis.Report(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	data := struct {
		PrimaryID, CaseID, ReportCode, Age, AgeCode, Sex, Country, EventDate string
		DrugList, ReacList, OutcomeList                                      string
	}{
		PrimaryID: rep.PrimaryID, CaseID: rep.CaseID, ReportCode: rep.ReportCode,
		Age: rep.Age, AgeCode: rep.AgeCode, Sex: rep.Sex, Country: rep.Country,
		EventDate:   rep.EventDate,
		DrugList:    strings.Join(rep.Drugs, ", "),
		ReacList:    strings.Join(rep.Reactions, ", "),
		OutcomeList: strings.Join(rep.Outcomes, ", "),
	}
	s.renderHTML(w, r, "report", reportTmpl, data)
}

// handleAPISignals serves the ranked signals as JSON for programmatic
// clients.
func (s *server) handleAPISignals(w http.ResponseWriter, r *http.Request) {
	type apiSignal struct {
		Rank         int      `json:"rank"`
		Score        float64  `json:"score"`
		Drugs        []string `json:"drugs"`
		Reactions    []string `json:"reactions"`
		Support      int      `json:"support"`
		Confidence   float64  `json:"confidence"`
		Lift         float64  `json:"lift"`
		Known        bool     `json:"known"`
		SeriousShare float64  `json:"serious_share"`
		ReportIDs    []string `json:"report_ids"`
	}
	_, span := obs.StartSpan(r.Context(), "render:api_signals")
	defer span.End()
	span.SetInt("signals", int64(len(s.analysis.Signals)))
	out := make([]apiSignal, len(s.analysis.Signals))
	for i, sig := range s.analysis.Signals {
		out[i] = apiSignal{
			Rank: sig.Rank, Score: sig.Score, Drugs: sig.Drugs, Reactions: sig.Reactions,
			Support: sig.Support, Confidence: sig.Confidence, Lift: sig.Lift,
			Known: sig.Known != nil, SeriousShare: sig.SeriousShare, ReportIDs: sig.ReportIDs,
		}
	}
	// Encode before writing: a marshal failure must yield a real 500,
	// not a truncated 200 body.
	body, err := json.Marshal(out)
	if err != nil {
		s.log().Error("api signals encode", "err", err)
		http.Error(w, "internal encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil {
		s.log().Warn("api signals write", "err", err)
	}
}

// handleNetworkDOT exports the drug-interaction graph as Graphviz DOT.
func (s *server) handleNetworkDOT(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	fmt.Fprint(w, network.Build(s.analysis.Signals).DOT())
}

// handleNetworkJSON exports the graph as d3-style nodes/links JSON.
func (s *server) handleNetworkJSON(w http.ResponseWriter, r *http.Request) {
	data, err := network.Build(s.analysis.Signals).JSON()
	if err != nil {
		s.log().Error("network json", "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		s.log().Warn("network json write", "err", err)
	}
}

func (s *server) handleBarChart(w http.ResponseWriter, r *http.Request) {
	sig, ok := s.signalByRank(r.URL.Path, "/barchart/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	_, span := obs.StartSpan(r.Context(), "render:barchart")
	defer span.End()
	span.SetInt("rank", int64(sig.Rank))
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Header().Set("Cache-Control", svgCacheControl)
	fmt.Fprint(w, glyph.BarChart(sig.Cluster, glyph.Options{Size: 420, Dict: s.analysis.Dict()}))
}
