// Command maras-server serves the MARAS interactive visual interface
// (Chapter 4): a panoramagram of contextual glyphs over the ranked
// signals, per-signal zoom views with the MCAC bar-chart alternative,
// drug/reaction search, and drill-down to the raw supporting reports.
//
// Usage:
//
//	maras-server -data data -quarter 2014Q1 [-addr :8080] [-minsup 8]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"strconv"
	"strings"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/glyph"
	"maras/internal/network"
	"maras/internal/strata"
)

type server struct {
	analysis *core.Analysis
	quarter  string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("maras-server: ")

	var (
		data    = flag.String("data", "data", "directory with FAERS quarter files")
		quarter = flag.String("quarter", "2014Q1", "quarter label")
		addr    = flag.String("addr", ":8080", "listen address")
		minsup  = flag.Int("minsup", 8, "absolute minimum support")
		topK    = flag.Int("top", 60, "signals to keep")
	)
	flag.Parse()

	q, err := faers.LoadQuarter(*data, *quarter)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.NewOptions()
	opts.MinSupport = *minsup
	opts.TopK = *topK
	log.Printf("mining %s ...", *quarter)
	a, err := core.RunQuarter(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ready: %d signals over %d reports", len(a.Signals), a.Stats.Reports)

	s := &server{analysis: a, quarter: *quarter}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/signal/", s.handleSignal)
	mux.HandleFunc("/glyph/", s.handleGlyph)
	mux.HandleFunc("/barchart/", s.handleBarChart)
	mux.HandleFunc("/report/", s.handleReport)
	mux.HandleFunc("/api/signals", s.handleAPISignals)
	mux.HandleFunc("/network.dot", s.handleNetworkDOT)
	mux.HandleFunc("/network.json", s.handleNetworkJSON)
	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>MARAS — {{.Quarter}}</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
.grid{display:flex;flex-wrap:wrap;gap:12px}
.card{background:#fff;border:1px solid #ddd;border-radius:8px;padding:8px;width:180px;text-align:center}
.card a{text-decoration:none;color:#333;font-size:12px}
.known{color:#b33}
input{padding:6px;width:260px}
</style></head><body>
<h1>MARAS — Multi-Drug ADR Signals ({{.Quarter}})</h1>
<p>{{.Reports}} reports · {{.Drugs}} drugs · {{.Reactions}} reactions ·
{{.SignalCount}} ranked signals. Larger core + shorter sectors = more exclusive interaction.</p>
<form method="get"><input name="q" placeholder="search drug or reaction" value="{{.Query}}"></form>
<div class="grid">
{{range .Signals}}
  <div class="card">
    <a href="/signal/{{.Rank}}">
      <img src="/glyph/{{.Rank}}" width="160" height="160" alt="glyph">
      <div><b>#{{.Rank}}</b> {{.DrugList}}</div>
      <div>score {{printf "%.3f" .Score}}{{if .Known}} · <span class="known">known</span>{{end}}</div>
    </a>
  </div>
{{end}}
</div></body></html>`))

type indexData struct {
	Quarter     string
	Reports     int
	Drugs       int
	Reactions   int
	SignalCount int
	Query       string
	Signals     []indexSignal
}

type indexSignal struct {
	Rank     int
	Score    float64
	DrugList string
	Known    bool
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	query := strings.TrimSpace(r.URL.Query().Get("q"))
	signals := s.analysis.Signals
	if query != "" {
		signals = s.analysis.FilterSignals(strings.ToUpper(query))
		if len(signals) == 0 {
			signals = s.analysis.FilterSignals(query)
		}
	}
	d := indexData{
		Quarter:     s.quarter,
		Reports:     s.analysis.Stats.Reports,
		Drugs:       s.analysis.Stats.Drugs,
		Reactions:   s.analysis.Stats.Reactions,
		SignalCount: len(s.analysis.Signals),
		Query:       query,
	}
	for _, sig := range signals {
		d.Signals = append(d.Signals, indexSignal{
			Rank:     sig.Rank,
			Score:    sig.Score,
			DrugList: strings.Join(sig.Drugs, " + "),
			Known:    sig.Known != nil,
		})
	}
	if err := indexTmpl.Execute(w, d); err != nil {
		log.Printf("index: %v", err)
	}
}

var signalTmpl = template.Must(template.New("signal").Parse(`<!DOCTYPE html>
<html><head><title>MARAS signal #{{.Rank}}</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
.row{display:flex;gap:24px;align-items:flex-start}
table{border-collapse:collapse}
td,th{border:1px solid #ccc;padding:4px 8px;font-size:13px}
.known{background:#fee;padding:8px;border-radius:6px}
</style></head><body>
<p><a href="/">&larr; all signals</a></p>
<h1>#{{.Rank}} {{.DrugList}} &rArr; {{.ReactionList}}</h1>
<p>score {{printf "%.4f" .Score}} · support {{.Support}} · confidence {{printf "%.3f" .Confidence}} · lift {{printf "%.2f" .Lift}}{{if .SOCList}} · {{.SOCList}}{{end}}</p>
{{if .Known}}<div class="known"><b>Known interaction</b> ({{.KnownSeverity}}): {{.KnownMechanism}} — <i>{{.KnownSource}}</i></div>{{end}}
<div class="row">
  <div><h3>Contextual glyph (zoom)</h3><img src="/glyph/{{.Rank}}?zoom=1" width="420"></div>
  <div><h3>MCAC bar-chart</h3><img src="/barchart/{{.Rank}}" width="420"></div>
</div>
<h3>Context (sub-rules)</h3>
<table><tr><th>Drugs</th><th>Confidence</th><th>Lift</th><th>Support</th></tr>
{{range .Context}}<tr><td>{{.Drugs}}</td><td>{{printf "%.3f" .Confidence}}</td><td>{{printf "%.2f" .Lift}}</td><td>{{.Support}}</td></tr>{{end}}
</table>
<h3>Demographics of supporting reports</h3>
<p>Sex: {{.SexBreakdown}} (χ²={{printf "%.1f" .SexChi}}) · Age: {{.AgeBreakdown}} (χ²={{printf "%.1f" .AgeChi}})
{{if .Enriched}}<br>Enriched strata: {{.Enriched}}{{end}}</p>
<h3>Supporting reports ({{len .ReportIDs}})</h3>
<p>{{range .ReportIDs}}<a href="/report/{{.}}">{{.}}</a> {{end}}</p>
</body></html>`))

type signalData struct {
	Rank           int
	Score          float64
	DrugList       string
	ReactionList   string
	Support        int
	Confidence     float64
	Lift           float64
	Known          bool
	KnownSeverity  string
	KnownMechanism string
	KnownSource    string
	Context        []contextRow
	ReportIDs      []string
	ReportList     string
	SOCList        string
	SexBreakdown   string
	AgeBreakdown   string
	SexChi         float64
	AgeChi         float64
	Enriched       string
}

type contextRow struct {
	Drugs      string
	Confidence float64
	Lift       float64
	Support    int
}

// renderDist formats a distribution as "F:12 M:3".
func renderDist(d strata.Distribution) string {
	parts := make([]string, 0, len(d))
	for _, k := range d.Keys() {
		parts = append(parts, fmt.Sprintf("%s:%d", k, d[k]))
	}
	return strings.Join(parts, " ")
}

func (s *server) signalByRank(path, prefix string) (*core.Signal, bool) {
	rankStr := strings.TrimPrefix(path, prefix)
	rankStr = strings.TrimSuffix(rankStr, "/")
	n, err := strconv.Atoi(rankStr)
	if err != nil || n < 1 || n > len(s.analysis.Signals) {
		return nil, false
	}
	return &s.analysis.Signals[n-1], true
}

func (s *server) handleSignal(w http.ResponseWriter, r *http.Request) {
	sig, ok := s.signalByRank(r.URL.Path, "/signal/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	dict := s.analysis.Dict()
	d := signalData{
		Rank:         sig.Rank,
		Score:        sig.Score,
		DrugList:     strings.Join(sig.Drugs, " + "),
		ReactionList: strings.Join(sig.Reactions, ", "),
		Support:      sig.Support,
		Confidence:   sig.Confidence,
		Lift:         sig.Lift,
		ReportIDs:    sig.ReportIDs,
		ReportList:   strings.Join(sig.ReportIDs, ", "),
	}
	socs := make([]string, len(sig.SOCs))
	for i, soc := range sig.SOCs {
		socs[i] = string(soc)
	}
	d.SOCList = strings.Join(socs, "; ")
	prof := s.analysis.Demographics(sig)
	d.SexBreakdown = renderDist(prof.SexSignal)
	d.AgeBreakdown = renderDist(prof.AgeSignal)
	d.SexChi = prof.SexChiSquare
	d.AgeChi = prof.AgeChiSquare
	d.Enriched = strings.Join(prof.Enriched(0.15), ", ")
	if sig.Known != nil {
		d.Known = true
		d.KnownSeverity = sig.Known.Severity.String()
		d.KnownMechanism = sig.Known.Mechanism
		d.KnownSource = sig.Known.Source
	}
	for _, cr := range sig.Cluster.ContextRules() {
		d.Context = append(d.Context, contextRow{
			Drugs:      strings.Join(dict.SortedNames(cr.Antecedent), " + "),
			Confidence: cr.Confidence,
			Lift:       cr.Lift,
			Support:    cr.Support,
		})
	}
	if err := signalTmpl.Execute(w, d); err != nil {
		log.Printf("signal: %v", err)
	}
}

func (s *server) handleGlyph(w http.ResponseWriter, r *http.Request) {
	sig, ok := s.signalByRank(r.URL.Path, "/glyph/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	if r.URL.Query().Get("zoom") != "" {
		fmt.Fprint(w, glyph.Zoom(sig.Cluster, s.analysis.Dict()))
		return
	}
	fmt.Fprint(w, glyph.Contextual(sig.Cluster, glyph.Options{Dict: s.analysis.Dict()}))
}

var reportTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><title>Report {{.PrimaryID}}</title>
<style>body{font-family:sans-serif;margin:2em;background:#fafafa}
td,th{border:1px solid #ccc;padding:4px 8px;font-size:13px}table{border-collapse:collapse}</style></head><body>
<p><a href="/">&larr; all signals</a></p>
<h1>Report {{.PrimaryID}}</h1>
<table>
<tr><th>Case</th><td>{{.CaseID}}</td></tr>
<tr><th>Type</th><td>{{.ReportCode}}</td></tr>
<tr><th>Age</th><td>{{.Age}} {{.AgeCode}}</td></tr>
<tr><th>Sex</th><td>{{.Sex}}</td></tr>
<tr><th>Country</th><td>{{.Country}}</td></tr>
<tr><th>Event date</th><td>{{.EventDate}}</td></tr>
<tr><th>Drugs</th><td>{{.DrugList}}</td></tr>
<tr><th>Reactions</th><td>{{.ReacList}}</td></tr>
<tr><th>Outcomes</th><td>{{.OutcomeList}}</td></tr>
</table></body></html>`))

// handleReport shows one raw report — the drill-down the paper's
// Section 4.1 requires ("analyze the original data reports submitted
// by patients that supports the corresponding drug-drug interactions").
func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/report/"), "/")
	rep, ok := s.analysis.Report(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	data := struct {
		PrimaryID, CaseID, ReportCode, Age, AgeCode, Sex, Country, EventDate string
		DrugList, ReacList, OutcomeList                                      string
	}{
		PrimaryID: rep.PrimaryID, CaseID: rep.CaseID, ReportCode: rep.ReportCode,
		Age: rep.Age, AgeCode: rep.AgeCode, Sex: rep.Sex, Country: rep.Country,
		EventDate:   rep.EventDate,
		DrugList:    strings.Join(rep.Drugs, ", "),
		ReacList:    strings.Join(rep.Reactions, ", "),
		OutcomeList: strings.Join(rep.Outcomes, ", "),
	}
	if err := reportTmpl.Execute(w, data); err != nil {
		log.Printf("report: %v", err)
	}
}

// handleAPISignals serves the ranked signals as JSON for programmatic
// clients.
func (s *server) handleAPISignals(w http.ResponseWriter, r *http.Request) {
	type apiSignal struct {
		Rank         int      `json:"rank"`
		Score        float64  `json:"score"`
		Drugs        []string `json:"drugs"`
		Reactions    []string `json:"reactions"`
		Support      int      `json:"support"`
		Confidence   float64  `json:"confidence"`
		Lift         float64  `json:"lift"`
		Known        bool     `json:"known"`
		SeriousShare float64  `json:"serious_share"`
		ReportIDs    []string `json:"report_ids"`
	}
	out := make([]apiSignal, len(s.analysis.Signals))
	for i, sig := range s.analysis.Signals {
		out[i] = apiSignal{
			Rank: sig.Rank, Score: sig.Score, Drugs: sig.Drugs, Reactions: sig.Reactions,
			Support: sig.Support, Confidence: sig.Confidence, Lift: sig.Lift,
			Known: sig.Known != nil, SeriousShare: sig.SeriousShare, ReportIDs: sig.ReportIDs,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("api: %v", err)
	}
}

// handleNetworkDOT exports the drug-interaction graph as Graphviz DOT.
func (s *server) handleNetworkDOT(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	fmt.Fprint(w, network.Build(s.analysis.Signals).DOT())
}

// handleNetworkJSON exports the graph as d3-style nodes/links JSON.
func (s *server) handleNetworkJSON(w http.ResponseWriter, r *http.Request) {
	data, err := network.Build(s.analysis.Signals).JSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *server) handleBarChart(w http.ResponseWriter, r *http.Request) {
	sig, ok := s.signalByRank(r.URL.Path, "/barchart/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, glyph.BarChart(sig.Cluster, glyph.Options{Size: 420, Dict: s.analysis.Dict()}))
}
