package main

// Operational-surface drift guard and the wide-event incident-view
// acceptance path. The drift guard pins the full set of operational
// endpoints in BOTH serving modes: a refactor that forgets to mount
// one (or mounts it in only one mode) fails here, not in production.

import (
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/obs/history"
	"maras/internal/obs/prof"
	"maras/internal/obs/wide"
	"maras/internal/slo"
)

// fullStack bundles every subsystem a serving mode can run, wired the
// way main does.
type fullStack struct {
	reg     *obs.Registry
	mw      *obs.HTTPMetrics
	journal *obs.Journal
	events  *wide.Ring
	alog    *audit.Log
	ready   *obs.Readiness
	slos    *sloStack
	captor  *prof.Captor
	ws      *watchStack
}

func newFullStack(t *testing.T) *fullStack {
	t.Helper()
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	journal := obs.NewJournal(32, time.Hour)
	mw.EnableTracing(journal)
	events := wide.NewRing(1024, 1, reg)
	mw.OnComplete(events.EmitRequest)
	alog := audit.NewLog(audit.LogOptions{Metrics: reg})
	ready := &obs.Readiness{}
	ready.SetReady()
	hist := history.New(reg, history.Options{Interval: time.Second, Retention: time.Minute})
	eng := slo.NewEngine(hist, slo.Config{
		Objectives: slo.DefaultObjectives(0.995, 500*time.Millisecond, 0.05, 0.10),
		Log:        alog, Ready: ready, Metrics: reg,
	})
	pstore, err := prof.OpenStore(t.TempDir(), prof.StoreOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	captor := prof.NewCaptor(prof.CaptorOptions{Store: pstore})
	auditor := &audit.Auditor{Log: alog, Metrics: reg}
	ws, err := newWatchStack(watchConfig{userCap: 4, feedCap: 8, budget: time.Second},
		knowledge.Builtin(), reg, auditor, nil, events)
	if err != nil {
		t.Fatal(err)
	}
	return &fullStack{reg: reg, mw: mw, journal: journal, events: events,
		alog: alog, ready: ready, slos: &sloStack{hist: hist, eng: eng},
		captor: captor, ws: ws}
}

// mineHandler builds the mine-mode mux with the full stack.
func (fs *fullStack) mineHandler(t *testing.T) http.Handler {
	t.Helper()
	s := testServer(t)
	s.alog = fs.alog
	return s.routes(fs.reg, fs.mw, fs.journal, fs.ready, nil, fs.slos, fs.ws, fs.captor, fs.events)
}

// storeModeHandler builds the store-mode mux with the full stack.
func (fs *fullStack) storeModeHandler(t *testing.T) http.Handler {
	t.Helper()
	auditor := &audit.Auditor{Log: fs.alog, Metrics: fs.reg}
	ss, err := newStoreServer(tempStoreDir(t, 1), nil, nil, obs.NewStoreMetrics(fs.reg), auditor, fs.ws, fs.events)
	if err != nil {
		t.Fatal(err)
	}
	return ss.routes(fs.reg, fs.mw, fs.journal, fs.ready, nil, fs.slos, fs.ws, fs.captor, fs.events)
}

// TestOperationalSurfaceBothModes is the drift guard: every
// operational endpoint must be mounted and answering its expected
// status in both serving modes.
func TestOperationalSurfaceBothModes(t *testing.T) {
	endpoints := []struct {
		url  string
		want int
	}{
		{"/metrics", http.StatusOK},
		{"/healthz", http.StatusOK},
		{"/readyz", http.StatusOK},
		{"/debug/traces", http.StatusOK},
		{"/debug/audit", http.StatusOK},
		{"/debug/history", http.StatusOK},
		{"/debug/vars", http.StatusOK},
		{"/debug/profiles", http.StatusOK},
		{"/debug/events", http.StatusOK},
		{"/debug/diag/", http.StatusBadRequest}, // mounted; an ID is required
		{"/debug/pprof/", http.StatusOK},
		{"/api/history/", http.StatusOK},
		{"/api/slo", http.StatusOK},
		{"/api/watch/stats", http.StatusOK},
	}
	modes := map[string]func(*testing.T) http.Handler{
		"mine":  func(t *testing.T) http.Handler { return newFullStack(t).mineHandler(t) },
		"store": func(t *testing.T) http.Handler { return newFullStack(t).storeModeHandler(t) },
	}
	for mode, build := range modes {
		t.Run(mode, func(t *testing.T) {
			h := build(t)
			for _, ep := range endpoints {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, ep.url, nil))
				if rec.Code != ep.want {
					t.Errorf("%s %s = %d, want %d", mode, ep.url, rec.Code, ep.want)
				}
			}
		})
	}
}

// TestDiagEndToEnd is the acceptance path: an induced slow request is
// retrievable end-to-end at /debug/diag/{request-id} — its wide event,
// its full trace, in-window audit events — and its trace ID appears as
// an exemplar in the OpenMetrics /metrics rendering.
func TestDiagEndToEnd(t *testing.T) {
	fs := newFullStack(t)
	h := fs.storeModeHandler(t)
	const reqID = "incident0badc0de"

	// Induce the request (slow threshold is irrelevant to retrieval;
	// the cold store load underneath makes it a real multi-span trace).
	req := httptest.NewRequest(http.MethodGet, "/api/signals", nil)
	req.Header.Set(obs.RequestIDHeader, reqID)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("induced request = %d", rec.Code)
	}
	// An audit event lands inside the correlation window.
	fs.alog.Record(audit.Event{Rule: "incident_marker", Severity: audit.SevWarn,
		Scope: "2014Q1", Message: "synthetic incident for diag test"})

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/diag/"+reqID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/diag/%s = %d: %s", reqID, rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	for _, want := range []string{
		"id=" + reqID,     // the wide event
		"trace " + reqID,  // the joined span tree
		"store_load",      // the trace's real spans
		"incident_marker", // the in-window audit event
	} {
		if !strings.Contains(body, want) {
			t.Errorf("diag view missing %q:\n%s", want, body)
		}
	}

	// The latency histogram's OpenMetrics rendering links the trace.
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), `trace_id="`+reqID+`"`) {
		t.Error("OpenMetrics exposition missing the request's exemplar")
	}
	if !strings.Contains(rec.Body.String(), "# EOF") {
		t.Error("OpenMetrics exposition missing # EOF terminator")
	}

	// And /debug/events can query it back out.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/events?where=id="+reqID, nil))
	if !strings.Contains(rec.Body.String(), "cache=lru_miss") {
		t.Errorf("/debug/events missing the request event:\n%s", rec.Body.String())
	}
}

// TestProfilesGzipNegotiation pins satellite behavior: the profile
// index compresses for gzip-accepting clients while artifact downloads
// (application/octet-stream) stay identity-encoded.
func TestProfilesGzipNegotiation(t *testing.T) {
	fs := newFullStack(t)
	if _, err := fs.captor.Store().Add("cpu", "test", "", "", []byte("pprofdata"), 0); err != nil {
		t.Fatal(err)
	}
	h := fs.mineHandler(t)

	get := func(url string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("Accept-Encoding", "gzip")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	rec := get("/debug/profiles")
	if rec.Header().Get("Content-Encoding") != "gzip" {
		t.Errorf("profile index not gzipped: %v", rec.Header())
	}
	zr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(zr)
	if !strings.Contains(string(idx), "000000-cpu") {
		t.Errorf("index missing artifact: %s", idx)
	}
	rec = get("/debug/profiles/000000-cpu")
	if rec.Code != http.StatusOK {
		t.Fatalf("artifact download = %d", rec.Code)
	}
	if rec.Header().Get("Content-Encoding") == "gzip" {
		t.Error("octet-stream artifact download must stay uncompressed")
	}
	if rec.Body.String() != "pprofdata" {
		t.Errorf("artifact bytes = %q", rec.Body.String())
	}
}

// TestWatchRoutesGzip pins satellite behavior: the watch JSON GETs
// negotiate gzip.
func TestWatchRoutesGzip(t *testing.T) {
	fs := newFullStack(t)
	h := fs.mineHandler(t)
	for _, url := range []string{"/api/watchlists?user=alice", "/api/watch/stats"} {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("Accept-Encoding", "gzip")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", url, rec.Code)
		}
		if rec.Header().Get("Content-Encoding") != "gzip" {
			t.Errorf("%s not gzipped: %v", url, rec.Header())
		}
	}
}
