package main

// Store mode: maras-server -store DIR serves a directory of per-
// quarter snapshots written by maras-mine -snapshot-out (or the
// registry itself). Mining happened once, offline; the server only
// ever decodes snapshots, so startup is milliseconds instead of a
// full FP-Growth run and one process serves every quarter:
//
//	/                       the latest quarter's full UI + API
//	/q/{label}/...          any quarter's UI + API (e.g. /q/2014Q2/api/signals)
//	/quarters               human quarters index: quality verdicts + drift vs prev
//	/api/quarters           what is on disk, and which quarter is default
//	/api/timeline/{drugkey} a combination's cross-quarter trajectory
//	/api/quality/{label}    a quarter's ingest-quality report (see internal/audit)
//	/api/drift/{from}/{to}  signal churn between two stored quarters
//	/debug/audit            the audit event timeline (?format=json)
//
// Warm quarters are held in the registry's LRU; /metrics exposes the
// store series (load latency, open-quarter gauge, hit/miss/eviction
// counters) next to the HTTP series.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/store"
	"maras/internal/trend"
)

type storeServer struct {
	reg     *store.Registry
	logger  *slog.Logger
	auditor *audit.Auditor
	started time.Time

	mu       sync.Mutex
	handlers map[string]http.Handler // per-quarter muxes, dropped on LRU evict
}

// newStoreServer opens the snapshot registry in dir and binds it to
// the serving layer. tracer, metrics, and auditor may be nil (a nil
// auditor disables the event log; reports still compute at default
// thresholds).
func newStoreServer(dir string, logger *slog.Logger, tracer *obs.Tracer, m *obs.StoreMetrics, auditor *audit.Auditor) (*storeServer, error) {
	ss := &storeServer{
		logger:   logger,
		auditor:  auditor,
		started:  time.Now(),
		handlers: map[string]http.Handler{},
	}
	reg, err := store.OpenRegistry(dir, store.RegistryOptions{
		Metrics: m,
		Tracer:  tracer,
		Auditor: auditor,
		OnEvict: ss.dropHandler,
	})
	if err != nil {
		return nil, err
	}
	ss.reg = reg
	return ss, nil
}

func (ss *storeServer) log() *slog.Logger {
	if ss.logger != nil {
		return ss.logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// routes assembles the store-mode mux: quarter-scoped and default-
// quarter application routes under observability middleware, plus the
// operational endpoints. journal may be nil (tracing disabled,
// /debug/traces 404s); ready gates /readyz.
func (ss *storeServer) routes(reg *obs.Registry, mw *obs.HTTPMetrics, journal *obs.Journal, ready *obs.Readiness) http.Handler {
	mux := http.NewServeMux()
	mw.HandleFunc(mux, "/api/quarters", ss.handleQuarters)
	mw.HandleFunc(mux, "/api/timeline/", ss.handleTimeline)
	mw.HandleFunc(mux, "/api/quality/", ss.handleQuality)
	mw.HandleFunc(mux, "/api/drift/", ss.handleDrift)
	mw.HandleFunc(mux, "/quarters", ss.handleQuartersPage)
	mw.HandleFunc(mux, "/q/", ss.handleQuarterScoped)
	mw.HandleFunc(mux, "/", ss.handleDefaultQuarter)
	mux.Handle("/metrics", obs.MetricsHandler(reg))
	mux.Handle("/healthz", obs.HealthzHandler(ss.healthDetail))
	mux.Handle("/readyz", obs.ReadyzHandler(ready, ss.healthDetail))
	mux.Handle("/debug/traces", obs.TracesHandler(journal))
	mux.Handle("/debug/audit", audit.Handler(ss.auditLog()))
	mux.Handle("/debug/vars", obs.ExpvarHandler())
	obs.RegisterPprof(mux)
	return mux
}

// auditLog returns the auditor's event log, nil when auditing is
// disabled (audit.Handler answers 404 for a nil log, so /debug/audit
// mounts unconditionally).
func (ss *storeServer) auditLog() *audit.Log {
	if ss.auditor == nil {
		return nil
	}
	return ss.auditor.Log
}

func (ss *storeServer) healthDetail() map[string]any {
	return map[string]any{
		"mode":           "store",
		"store_dir":      ss.reg.Dir(),
		"quarters":       len(ss.reg.Quarters()),
		"open_quarters":  ss.reg.OpenCount(),
		"default":        ss.reg.Latest(),
		"uptime_seconds": int64(time.Since(ss.started).Seconds()),
	}
}

// dropHandler is the registry's eviction callback: when a quarter's
// analysis leaves the LRU, the route handler holding it must go too,
// or the memory bound is fiction.
func (ss *storeServer) dropHandler(label string) {
	ss.mu.Lock()
	delete(ss.handlers, label)
	ss.mu.Unlock()
	ss.log().Debug("quarter evicted", "quarter", label)
}

// quarterHandler returns the per-quarter application mux, loading the
// snapshot through the registry LRU on first touch. The lookup runs
// under a "quarter_mux" child span so a trace distinguishes the
// handler cache from a registry load: handler_cache=hit means the
// registry was never consulted this request.
func (ss *storeServer) quarterHandler(ctx context.Context, label string) (http.Handler, error) {
	ctx, span := obs.StartSpan(ctx, "quarter_mux")
	defer span.End()
	span.SetAttr("quarter", label)
	ss.mu.Lock()
	h := ss.handlers[label]
	ss.mu.Unlock()
	if h != nil {
		span.SetAttr("handler_cache", "hit")
		return h, nil
	}
	span.SetAttr("handler_cache", "miss")
	a, err := ss.reg.LoadContext(ctx, label)
	if err != nil {
		return nil, err
	}
	qs := &server{analysis: a, quarter: label, logger: ss.logger, started: ss.started}
	h = qs.quarterMux()
	ss.mu.Lock()
	ss.handlers[label] = h
	ss.mu.Unlock()
	return h, nil
}

// handleDefaultQuarter serves the whole single-quarter application
// (index, signal pages, glyphs, /api/signals, network exports) for
// the latest quarter in the store.
func (ss *storeServer) handleDefaultQuarter(w http.ResponseWriter, r *http.Request) {
	label := ss.reg.Latest()
	if label == "" {
		http.Error(w, "store is empty: no quarter snapshots on disk", http.StatusServiceUnavailable)
		return
	}
	h, err := ss.quarterHandler(r.Context(), label)
	if err != nil {
		ss.log().Error("load default quarter", "quarter", label, "err", err)
		http.Error(w, "quarter snapshot unavailable", http.StatusInternalServerError)
		return
	}
	h.ServeHTTP(w, r)
}

// handleQuarterScoped serves /q/{label}/<rest> by dispatching <rest>
// into the named quarter's application mux.
func (ss *storeServer) handleQuarterScoped(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/q/")
	label, sub, _ := strings.Cut(rest, "/")
	if label == "" {
		http.NotFound(w, r)
		return
	}
	if !ss.reg.Has(label) {
		http.Error(w, fmt.Sprintf("quarter %q not in store", label), http.StatusNotFound)
		return
	}
	h, err := ss.quarterHandler(r.Context(), label)
	if err != nil {
		ss.log().Error("load quarter", "quarter", label, "err", err)
		http.Error(w, "quarter snapshot unavailable", http.StatusInternalServerError)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + sub
	h.ServeHTTP(w, r2)
}

// handleQuarters lists what the store can serve.
func (ss *storeServer) handleQuarters(w http.ResponseWriter, r *http.Request) {
	// Rescan first: a miner may have dropped a new quarter in.
	if err := ss.reg.RefreshContext(r.Context()); err != nil {
		ss.log().Warn("store rescan", "err", err)
	}
	body, err := json.Marshal(struct {
		Default  string   `json:"default"`
		Quarters []string `json:"quarters"`
	}{Default: ss.reg.Latest(), Quarters: ss.reg.Quarters()})
	if err != nil {
		http.Error(w, "internal encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// timelinePoint mirrors trend.Point for the JSON API.
type timelinePoint struct {
	Quarter    string  `json:"quarter"`
	Rank       int     `json:"rank"` // 0 = not signaled that quarter
	Score      float64 `json:"score"`
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
}

// handleTimeline serves /api/timeline/{drugkey} where drugkey is the
// canonical combination key ("ASPIRIN+WARFARIN", any case or order) —
// the surveillance question answered across every stored quarter.
func (ss *storeServer) handleTimeline(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/api/timeline/"), "/")
	if raw == "" {
		http.Error(w, "usage: /api/timeline/DRUG+DRUG", http.StatusBadRequest)
		return
	}
	key := knowledge.DrugKey(strings.Split(raw, "+"))
	labels, traj, err := ss.reg.TimelineContext(r.Context(), key)
	if err != nil {
		ss.log().Error("timeline", "key", key, "err", err)
		http.Error(w, "timeline unavailable", http.StatusInternalServerError)
		return
	}
	if traj == nil {
		http.Error(w, fmt.Sprintf("combination %q never signaled in %d stored quarters", key, len(labels)),
			http.StatusNotFound)
		return
	}
	points := make([]timelinePoint, len(traj.Points))
	for i, p := range traj.Points {
		points[i] = timelinePoint{Quarter: p.Quarter, Rank: p.Rank, Score: p.Score,
			Support: p.Support, Confidence: p.Confidence}
	}
	body, err := json.Marshal(struct {
		Key       string          `json:"key"`
		Drugs     []string        `json:"drugs"`
		Reactions []string        `json:"reactions"`
		Class     trend.Class     `json:"class"`
		EmergedAt string          `json:"emerged_at,omitempty"`
		Points    []timelinePoint `json:"points"`
	}{
		Key: traj.Key, Drugs: traj.Drugs, Reactions: traj.Reactions,
		Class: traj.Classify(), EmergedAt: traj.EmergedAt(), Points: points,
	})
	if err != nil {
		http.Error(w, "internal encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
