package main

// Store mode: maras-server -store DIR serves a directory of per-
// quarter snapshots written by maras-mine -snapshot-out (or the
// registry itself). Mining happened once, offline; the server only
// ever decodes snapshots, so startup is milliseconds instead of a
// full FP-Growth run and one process serves every quarter:
//
//	/                       the latest quarter's full UI + API
//	/q/{label}/...          any quarter's UI + API (e.g. /q/2014Q2/api/signals)
//	/quarters               human quarters index: quality verdicts + drift vs prev
//	/api/quarters           what is on disk, and which quarter is default
//	/api/timeline/{drugkey} a combination's cross-quarter trajectory
//	/api/quality/{label}    a quarter's ingest-quality report (see internal/audit)
//	/api/drift/{from}/{to}  signal churn between two stored quarters
//	/debug/audit            the audit event timeline (?format=json)
//
// Warm quarters are held in the registry's LRU; /metrics exposes the
// store series (load latency, open-quarter gauge, hit/miss/eviction
// counters) next to the HTTP series.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/obs/prof"
	"maras/internal/obs/wide"
	"maras/internal/replica"
	"maras/internal/resilience"
	"maras/internal/store"
	"maras/internal/trend"
)

// staleRetryAfter is the Retry-After hint on quarter routes that can
// serve nothing at all (no fresh load, no stale copy): long enough for
// a breaker cooldown to elapse before the client returns.
const staleRetryAfter = "5"

type storeServer struct {
	reg     *store.Registry
	logger  *slog.Logger
	auditor *audit.Auditor
	started time.Time
	ready   *obs.Readiness // degraded flag target; set by routes, may be nil
	slos    *sloStack      // SLO rollup for the quarters page; set by routes, may be nil
	// replica, when non-nil, is this node's replication layer: routes
	// mounts its /sync endpoints (outside the bulkhead) and quarter
	// routing consults its peer inventories before 404ing a label the
	// local disk has never seen. Assigned after newStoreServer, before
	// routes.
	replica *replica.Node

	mu       sync.Mutex
	handlers map[string]http.Handler // per-quarter muxes, dropped on LRU evict
	// fallbackHandlers caches the mux built over a quarter's fallback
	// analysis (last-good stale copy or a peer-fetched one), keyed by
	// quarter and invalidated when the copy itself changes.
	// Deliberately NOT dropped on LRU evict: the whole point is
	// surviving the live path going away.
	fallbackHandlers map[string]fallbackHandler
}

type fallbackHandler struct {
	a *core.Analysis
	h http.Handler
}

// newStoreServer opens the snapshot registry in dir and binds it to
// the serving layer. tracer, metrics, and auditor may be nil (a nil
// auditor disables the event log; reports still compute at default
// thresholds). The registry runs with the resilience layer on:
// per-quarter load breakers, transient-failure retry, corrupt-snapshot
// quarantine, and the last-good stale cache behind graceful
// degradation.
func newStoreServer(dir string, logger *slog.Logger, tracer *obs.Tracer, m *obs.StoreMetrics, auditor *audit.Auditor, ws *watchStack, events *wide.Ring) (*storeServer, error) {
	ss := &storeServer{
		logger:           logger,
		auditor:          auditor,
		started:          time.Now(),
		handlers:         map[string]http.Handler{},
		fallbackHandlers: map[string]fallbackHandler{},
	}
	reg, err := store.OpenRegistry(dir, store.RegistryOptions{
		Metrics: m,
		Tracer:  tracer,
		Auditor: auditor,
		OnEvict: ss.dropHandler,
		// Every cold decode flows into the watchlist evaluator (a nil
		// ws makes this a no-op), so quarter loads and refreshes fire
		// alerts without any polling.
		OnLoad:     ws.onQuarterLoaded,
		Wide:       events,
		Resilience: &store.ResilienceOptions{Quarantine: true},
	})
	if err != nil {
		return nil, err
	}
	ss.reg = reg
	return ss, nil
}

func (ss *storeServer) log() *slog.Logger {
	if ss.logger != nil {
		return ss.logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// routes assembles the store-mode mux: quarter-scoped and default-
// quarter application routes under observability middleware, plus the
// operational endpoints. journal may be nil (tracing disabled,
// /debug/traces 404s); ready gates /readyz and carries the degraded
// flag; shed may be nil (no load shedding); slos may be nil
// (history/SLO endpoints 404). The bulkhead wraps only the
// application routes — the operational endpoints stay reachable at
// any load, which is when an operator needs them most.
func (ss *storeServer) routes(reg *obs.Registry, mw *obs.HTTPMetrics, journal *obs.Journal, ready *obs.Readiness, shed *resilience.Bulkhead, slos *sloStack, ws *watchStack, captor *prof.Captor, events *wide.Ring) http.Handler {
	ss.ready = ready
	ss.slos = slos
	app := func(h http.HandlerFunc) http.Handler { return shed.Middleware(h) }
	mux := http.NewServeMux()
	// The JSON APIs negotiate gzip: quarter inventories, timelines,
	// quality reports, and drift reports are repetitive text that
	// compresses an order of magnitude for polling clients.
	mw.Handle(mux, "/api/quarters", obs.GzipHandler(app(ss.handleQuarters)))
	mw.Handle(mux, "/api/timeline/", obs.GzipHandler(app(ss.handleTimeline)))
	mw.Handle(mux, "/api/quality/", obs.GzipHandler(app(ss.handleQuality)))
	mw.Handle(mux, "/api/drift/", obs.GzipHandler(app(ss.handleDrift)))
	mw.Handle(mux, "/quarters", app(ss.handleQuartersPage))
	mw.Handle(mux, "/q/", app(ss.handleQuarterScoped))
	mw.Handle(mux, "/", app(ss.handleDefaultQuarter))
	ws.register(mux, mw, app)
	if ss.replica != nil {
		// The peer-sync endpoints mount OUTSIDE the bulkhead, next to
		// the operational surface: a node saturated with client traffic
		// must keep feeding its replicas, or one hot node degrades the
		// whole set. Inventories are repetitive JSON, so they gzip;
		// snapshot bodies are CRC-carrying binaries and stay identity.
		mw.Handle(mux, "/sync/inventory", obs.GzipHandler(ss.replica.InventoryHandler()))
		mw.Handle(mux, "/sync/snapshot/", ss.replica.SnapshotHandler())
	}
	mountOperational(mux, reg, journal, ready, slos, ss.healthDetail, ss.auditLog(), captor, events)
	return mux
}

// auditLog returns the auditor's event log, nil when auditing is
// disabled (audit.Handler answers 404 for a nil log, so /debug/audit
// mounts unconditionally).
func (ss *storeServer) auditLog() *audit.Log {
	if ss.auditor == nil {
		return nil
	}
	return ss.auditor.Log
}

func (ss *storeServer) healthDetail() map[string]any {
	detail := map[string]any{
		"mode":           "store",
		"store_dir":      ss.reg.Dir(),
		"quarters":       len(ss.reg.Quarters()),
		"open_quarters":  ss.reg.OpenCount(),
		"default":        ss.reg.Latest(),
		"uptime_seconds": int64(time.Since(ss.started).Seconds()),
	}
	if ss.replica != nil {
		detail["replica"] = ss.replica.CurrentStatus()
	}
	if ss.reg.Degraded() {
		detail["degraded"] = true
		open := []string{}
		for label, st := range ss.reg.BreakerStates() {
			if st != resilience.StateClosed {
				open = append(open, label+":"+st.String())
			}
		}
		if len(open) > 0 {
			detail["breakers"] = open
		}
	}
	return detail
}

// noteDegradation mirrors the registry's degradation state onto the
// readiness probe after every quarter load, so /readyz flips to
// "degraded" the moment stale serving starts and back once the live
// path recovers.
func (ss *storeServer) noteDegradation() {
	ss.ready.SetDegraded("store", ss.reg.Degraded())
}

// peerHas reports whether a replica peer's last-known inventory
// advertises label.
func (ss *storeServer) peerHas(label string) bool {
	return ss.replica != nil && ss.replica.PeerHas(label)
}

// dropHandler is the registry's eviction callback: when a quarter's
// analysis leaves the LRU, the route handler holding it must go too,
// or the memory bound is fiction.
func (ss *storeServer) dropHandler(label string) {
	ss.mu.Lock()
	delete(ss.handlers, label)
	ss.mu.Unlock()
	ss.log().Debug("quarter evicted", "quarter", label)
}

// quarterHandler returns the per-quarter application mux, loading the
// snapshot through the registry LRU on first touch. The lookup runs
// under a "quarter_mux" child span so a trace distinguishes the
// handler cache from a registry load: handler_cache=hit means the
// registry was never consulted this request. A non-local origin means
// the live load failed and the handler serves a fallback copy (the
// last-good stale snapshot, or one proxied from a replica peer).
func (ss *storeServer) quarterHandler(ctx context.Context, label string) (http.Handler, store.Origin, error) {
	ctx, span := obs.StartSpan(ctx, "quarter_mux")
	defer span.End()
	span.SetAttr("quarter", label)
	ss.mu.Lock()
	h := ss.handlers[label]
	ss.mu.Unlock()
	if h != nil {
		span.SetAttr("handler_cache", "hit")
		return h, store.OriginLocal, nil
	}
	span.SetAttr("handler_cache", "miss")
	a, origin, err := ss.reg.LoadResilient(ctx, label)
	defer ss.noteDegradation()
	if err != nil {
		return nil, "", err
	}
	if origin != store.OriginLocal {
		span.SetAttr("origin", string(origin))
		return ss.fallbackQuarterHandler(label, a), origin, nil
	}
	qs := &server{analysis: a, quarter: label, logger: ss.logger, started: ss.started}
	h = qs.quarterMux()
	ss.mu.Lock()
	ss.handlers[label] = h
	ss.mu.Unlock()
	return h, store.OriginLocal, nil
}

// fallbackQuarterHandler returns (building if needed) the mux over a
// quarter's fallback analysis — stale or peer-fetched. Cached
// separately from the live handlers so LRU eviction cannot take it,
// and rebuilt only when the fallback copy itself changes.
func (ss *storeServer) fallbackQuarterHandler(label string, a *core.Analysis) http.Handler {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if fh, ok := ss.fallbackHandlers[label]; ok && fh.a == a {
		return fh.h
	}
	qs := &server{analysis: a, quarter: label, logger: ss.logger, started: ss.started}
	h := qs.quarterMux()
	ss.fallbackHandlers[label] = fallbackHandler{a: a, h: h}
	return h
}

// serveQuarter dispatches a request into label's application mux with
// graceful degradation: a fresh handler when the live path works, the
// last-good stale copy or a replica peer's verified copy when it does
// not, and 503 with Retry-After — never a 500 — when no tier can
// answer. Every quarter response carries X-Maras-Origin
// (local|stale|peer); stale responses keep the X-Maras-Stale: 1
// header for back compatibility.
func (ss *storeServer) serveQuarter(w http.ResponseWriter, r *http.Request, label string) {
	h, origin, err := ss.quarterHandler(r.Context(), label)
	if err != nil {
		ss.log().Error("load quarter", "quarter", label, "err", err)
		w.Header().Set("Retry-After", staleRetryAfter)
		http.Error(w, fmt.Sprintf("quarter %s temporarily unavailable, retry later", label),
			http.StatusServiceUnavailable)
		return
	}
	w.Header().Set(store.OriginHeader, string(origin))
	switch origin {
	case store.OriginStale:
		ss.log().Warn("serving stale quarter", "quarter", label)
		w.Header().Set("X-Maras-Stale", "1")
	case store.OriginPeer:
		ss.log().Warn("serving quarter from replica peer", "quarter", label)
	}
	h.ServeHTTP(w, r)
}

// handleDefaultQuarter serves the whole single-quarter application
// (index, signal pages, glyphs, /api/signals, network exports) for
// the latest quarter in the store.
func (ss *storeServer) handleDefaultQuarter(w http.ResponseWriter, r *http.Request) {
	label := ss.reg.Latest()
	if label == "" {
		http.Error(w, "store is empty: no quarter snapshots on disk", http.StatusServiceUnavailable)
		return
	}
	ss.serveQuarter(w, r, label)
}

// handleQuarterScoped serves /q/{label}/<rest> by dispatching <rest>
// into the named quarter's application mux.
func (ss *storeServer) handleQuarterScoped(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/q/")
	label, sub, _ := strings.Cut(rest, "/")
	if label == "" {
		http.NotFound(w, r)
		return
	}
	// A quarter missing from disk (e.g. quarantined) but held as a
	// last-good stale copy — or advertised by a replica peer — is
	// still servable; only a label nobody has seen is a true 404.
	if !ss.reg.Has(label) && !ss.reg.HasStale(label) && !ss.peerHas(label) {
		http.Error(w, fmt.Sprintf("quarter %q not in store", label), http.StatusNotFound)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + sub
	ss.serveQuarter(w, r2, label)
}

// handleQuarters lists what the store can serve.
func (ss *storeServer) handleQuarters(w http.ResponseWriter, r *http.Request) {
	// Rescan first: a miner may have dropped a new quarter in.
	if err := ss.reg.RefreshContext(r.Context()); err != nil {
		ss.log().Warn("store rescan", "err", err)
	}
	body, err := json.Marshal(struct {
		Default  string   `json:"default"`
		Quarters []string `json:"quarters"`
	}{Default: ss.reg.Latest(), Quarters: ss.reg.Quarters()})
	if err != nil {
		http.Error(w, "internal encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// timelinePoint mirrors trend.Point for the JSON API.
type timelinePoint struct {
	Quarter    string  `json:"quarter"`
	Rank       int     `json:"rank"` // 0 = not signaled that quarter
	Score      float64 `json:"score"`
	Support    int     `json:"support"`
	Confidence float64 `json:"confidence"`
}

// handleTimeline serves /api/timeline/{drugkey} where drugkey is the
// canonical combination key ("ASPIRIN+WARFARIN", any case or order) —
// the surveillance question answered across every stored quarter.
func (ss *storeServer) handleTimeline(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/api/timeline/"), "/")
	if raw == "" {
		http.Error(w, "usage: /api/timeline/DRUG+DRUG", http.StatusBadRequest)
		return
	}
	key := knowledge.DrugKey(strings.Split(raw, "+"))
	labels, traj, err := ss.reg.TimelineContext(r.Context(), key)
	if err != nil {
		ss.log().Error("timeline", "key", key, "err", err)
		http.Error(w, "timeline unavailable", http.StatusInternalServerError)
		return
	}
	if traj == nil {
		http.Error(w, fmt.Sprintf("combination %q never signaled in %d stored quarters", key, len(labels)),
			http.StatusNotFound)
		return
	}
	points := make([]timelinePoint, len(traj.Points))
	for i, p := range traj.Points {
		points[i] = timelinePoint{Quarter: p.Quarter, Rank: p.Rank, Score: p.Score,
			Support: p.Support, Confidence: p.Confidence}
	}
	body, err := json.Marshal(struct {
		Key       string          `json:"key"`
		Drugs     []string        `json:"drugs"`
		Reactions []string        `json:"reactions"`
		Class     trend.Class     `json:"class"`
		EmergedAt string          `json:"emerged_at,omitempty"`
		Points    []timelinePoint `json:"points"`
	}{
		Key: traj.Key, Drugs: traj.Drugs, Reactions: traj.Reactions,
		Class: traj.Classify(), EmergedAt: traj.EmergedAt(), Points: points,
	})
	if err != nil {
		http.Error(w, "internal encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
