package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/obs"
)

func testServer(t *testing.T) *server {
	t.Helper()
	var reports []faers.Report
	id := 0
	add := func(drugs, reacs []string) {
		id++
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", 1000+id), CaseID: fmt.Sprintf("c%d", id),
			ReportCode: "EXP", Drugs: drugs, Reactions: reacs,
		})
	}
	for i := 0; i < 10; i++ {
		add([]string{"ASPIRIN", "WARFARIN"}, []string{"Haemorrhage"})
	}
	for i := 0; i < 20; i++ {
		add([]string{"ASPIRIN"}, []string{"Nausea"})
		add([]string{"WARFARIN"}, []string{"Dizziness"})
	}
	opts := core.NewOptions()
	opts.MinSupport = 3
	a, err := core.Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals for server fixture")
	}
	return &server{analysis: a, quarter: "2014Q1"}
}

func get(t *testing.T, h http.HandlerFunc, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	return rec
}

func TestIndexPage(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleIndex, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"MARAS", "2014Q1", "/signal/1", "/glyph/1"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestIndexSearch(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleIndex, "/?q=aspirin")
	body := rec.Body.String()
	if !strings.Contains(body, "ASPIRIN") {
		t.Error("search for aspirin found nothing")
	}
	rec = get(t, s.handleIndex, "/?q=nosuchdrug")
	if strings.Contains(rec.Body.String(), "/signal/1") {
		t.Error("search for unknown drug should return no cards")
	}
}

func TestIndexNotFoundPath(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleIndex, "/bogus")
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
}

func TestSignalPage(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleSignal, "/signal/1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"ASPIRIN", "WARFARIN", "Haemorrhage", "Known interaction", "Supporting reports"} {
		if !strings.Contains(body, want) {
			t.Errorf("signal page missing %q", want)
		}
	}
}

func TestSignalOutOfRange(t *testing.T) {
	s := testServer(t)
	for _, url := range []string{"/signal/0", "/signal/9999", "/signal/abc"} {
		if rec := get(t, s.handleSignal, url); rec.Code != http.StatusNotFound {
			t.Errorf("%s: status = %d, want 404", url, rec.Code)
		}
	}
}

func TestGlyphSVG(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleGlyph, "/glyph/1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type = %q", ct)
	}
	if !strings.HasPrefix(rec.Body.String(), "<svg") {
		t.Error("not svg")
	}
	zoom := get(t, s.handleGlyph, "/glyph/1?zoom=1")
	if len(zoom.Body.String()) <= len(rec.Body.String()) {
		t.Error("zoom view should be richer than the card glyph")
	}
}

func TestReportPage(t *testing.T) {
	s := testServer(t)
	id := s.analysis.Signals[0].ReportIDs[0]
	rec := get(t, s.handleReport, "/report/"+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{id, "ASPIRIN", "Haemorrhage"} {
		if !strings.Contains(body, want) {
			t.Errorf("report page missing %q", want)
		}
	}
	if rec := get(t, s.handleReport, "/report/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("missing report: status %d, want 404", rec.Code)
	}
}

func TestAPISignals(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleAPISignals, "/api/signals")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var out []struct {
		Rank    int      `json:"rank"`
		Drugs   []string `json:"drugs"`
		Support int      `json:"support"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad json: %v", err)
	}
	if len(out) == 0 || out[0].Rank != 1 || len(out[0].Drugs) < 2 {
		t.Errorf("api payload wrong: %+v", out)
	}
}

func TestNetworkEndpoints(t *testing.T) {
	s := testServer(t)
	dot := get(t, s.handleNetworkDOT, "/network.dot")
	if dot.Code != http.StatusOK || !strings.HasPrefix(dot.Body.String(), "graph maras") {
		t.Errorf("network.dot: %d %q", dot.Code, dot.Body.String()[:30])
	}
	if !strings.Contains(dot.Body.String(), "ASPIRIN") {
		t.Error("network.dot missing drugs")
	}
	js := get(t, s.handleNetworkJSON, "/network.json")
	if js.Code != http.StatusOK {
		t.Fatalf("network.json status %d", js.Code)
	}
	var out struct {
		Nodes []struct {
			Drug string `json:"drug"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(js.Body.Bytes(), &out); err != nil {
		t.Fatalf("network.json invalid: %v", err)
	}
	if len(out.Nodes) == 0 {
		t.Error("network.json empty")
	}
}

func TestSignalDemographicsShown(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleSignal, "/signal/1")
	if !strings.Contains(rec.Body.String(), "Demographics of supporting reports") {
		t.Error("demographics section missing")
	}
}

func TestBarChartSVG(t *testing.T) {
	s := testServer(t)
	rec := get(t, s.handleBarChart, "/barchart/1")
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "<svg") {
		t.Fatalf("barchart: status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "<rect") {
		t.Error("no bars rendered")
	}
}

// testHandler builds the full instrumented mux the way main does
// (tracing off, readiness already signaled).
func testHandler(t *testing.T) (http.Handler, *server) {
	t.Helper()
	s := testServer(t)
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	ready := &obs.Readiness{}
	ready.SetReady()
	return s.routes(reg, mw, nil, ready, nil, nil, nil, nil, nil), s
}

// testHandlerTraced is testHandler with span tracing into a journal.
func testHandlerTraced(t *testing.T) (http.Handler, *obs.Journal) {
	t.Helper()
	s := testServer(t)
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	journal := obs.NewJournal(16, time.Hour)
	mw.EnableTracing(journal)
	ready := &obs.Readiness{}
	ready.SetReady()
	return s.routes(reg, mw, journal, ready, nil, nil, nil, nil, nil), journal
}

func getMux(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

func TestMetricsEndpointBothFormats(t *testing.T) {
	h, _ := testHandler(t)
	// Generate some traffic so per-route series exist and move.
	for i := 0; i < 2; i++ {
		getMux(t, h, "/")
		getMux(t, h, "/signal/1")
	}
	getMux(t, h, "/signal/9999") // a 404

	prom := getMux(t, h, "/metrics")
	if prom.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", prom.Code)
	}
	body := prom.Body.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{route="/",code="2xx"} 2`,
		`http_requests_total{route="/signal/",code="2xx"} 2`,
		`http_requests_total{route="/signal/",code="4xx"} 1`,
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_count{route="/signal/"} 3`,
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	jsonRec := getMux(t, h, "/metrics?format=json")
	var dump map[string]json.RawMessage
	if err := json.Unmarshal(jsonRec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/metrics?format=json invalid: %v", err)
	}
	if _, ok := dump["memstats"]; !ok {
		t.Error("expvar dump missing memstats")
	}
}

func TestHealthzEndpoint(t *testing.T) {
	h, s := testHandler(t)
	rec := getMux(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var body struct {
		Status  string `json:"status"`
		Quarter string `json:"quarter"`
		Signals int    `json:"signals"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Quarter != s.quarter || body.Signals != len(s.analysis.Signals) {
		t.Errorf("healthz = %+v", body)
	}
}

func TestDebugEndpointsWired(t *testing.T) {
	h, _ := testHandler(t)
	if rec := getMux(t, h, "/debug/vars"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "memstats") {
		t.Errorf("/debug/vars: status %d", rec.Code)
	}
	if rec := getMux(t, h, "/debug/pprof/"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/: status %d", rec.Code)
	}
}

func TestSVGResponsesCacheable(t *testing.T) {
	h, _ := testHandler(t)
	for _, url := range []string{"/glyph/1", "/barchart/1"} {
		rec := getMux(t, h, url)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d", url, rec.Code)
		}
		if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "immutable") {
			t.Errorf("%s Cache-Control = %q, want immutable", url, cc)
		}
	}
	// HTML pages must not carry the immutable header.
	if cc := getMux(t, h, "/").Header().Get("Cache-Control"); strings.Contains(cc, "immutable") {
		t.Errorf("index page marked immutable: %q", cc)
	}
}

func TestIndexContentTypeSet(t *testing.T) {
	h, _ := testHandler(t)
	rec := getMux(t, h, "/")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("index content type = %q", ct)
	}
}

func TestHealthDetailUptimeNonNegative(t *testing.T) {
	s := testServer(t)
	s.started = time.Now().Add(-2 * time.Second)
	d := s.healthDetail()
	if up, ok := d["uptime_seconds"].(int64); !ok || up < 2 {
		t.Errorf("uptime_seconds = %v", d["uptime_seconds"])
	}
}

// TestReadyzEndpoint: liveness and readiness must diverge — /healthz
// answers ok from boot, /readyz gates on the readiness latch.
func TestReadyzEndpoint(t *testing.T) {
	s := testServer(t)
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	ready := &obs.Readiness{}
	h := s.routes(reg, mw, nil, ready, nil, nil, nil, nil, nil)

	if rec := getMux(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz before ready = %d, want 200 (liveness is unconditional)", rec.Code)
	}
	rec := getMux(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before ready = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "unavailable") {
		t.Errorf("pre-ready body = %q", rec.Body.String())
	}

	ready.SetReady()
	rec = getMux(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz after ready = %d, want 200", rec.Code)
	}
	var body struct {
		Status  string `json:"status"`
		Quarter string `json:"quarter"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ready" || body.Quarter != s.quarter {
		t.Errorf("readyz detail = %+v", body)
	}
}

// TestRequestIDThroughMux: the full mux honors an inbound request ID
// and mints one otherwise.
func TestRequestIDThroughMux(t *testing.T) {
	h, _ := testHandler(t)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(obs.RequestIDHeader, "mux-level-7")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.RequestIDHeader); got != "mux-level-7" {
		t.Errorf("inbound ID not echoed: %q", got)
	}
	rec = getMux(t, h, "/")
	if got := rec.Header().Get(obs.RequestIDHeader); !obs.ValidRequestID(got) || len(got) != 16 {
		t.Errorf("generated ID malformed: %q", got)
	}
}

// TestTracedRequestLandsInJournal: a UI request through the traced mux
// produces a journal trace with the HTTP root span and the handler's
// render child span, inspectable at /debug/traces.
func TestTracedRequestLandsInJournal(t *testing.T) {
	h, journal := testHandlerTraced(t)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(obs.RequestIDHeader, "ui-trace-1")
	h.ServeHTTP(httptest.NewRecorder(), req)

	recent := journal.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("journal traces = %d, want 1", len(recent))
	}
	tr := recent[0]
	if tr.ID != "ui-trace-1" || tr.Name != "GET /" {
		t.Errorf("trace identity = %q %q", tr.ID, tr.Name)
	}
	var rootID = -2
	for _, sp := range tr.Spans {
		if sp.Parent == -1 {
			rootID = sp.ID
		}
	}
	foundRender := false
	for _, sp := range tr.Spans {
		if sp.Name == "render:index" && sp.Parent == rootID {
			foundRender = true
		}
	}
	if !foundRender {
		t.Errorf("render:index child missing: %+v", tr.Spans)
	}

	// And the journal endpoint shows it.
	rec := getMux(t, h, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"ui-trace-1", "GET /", "render:index"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/traces missing %q:\n%s", want, body)
		}
	}
}

// TestTracesEndpointDisabled404s: with -trace-journal 0 the route is
// mounted but answers 404.
func TestTracesEndpoint404WhenDisabled(t *testing.T) {
	h, _ := testHandler(t) // journal nil
	if rec := getMux(t, h, "/debug/traces"); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/traces with tracing off = %d, want 404", rec.Code)
	}
}
