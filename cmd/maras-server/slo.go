package main

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/obs/history"
	"maras/internal/slo"
)

// sloOptions carries the -history-*/-slo-* flag values into
// newSLOStack.
type sloOptions struct {
	scrape    time.Duration // history scrape interval; 0 disables the stack
	retention time.Duration

	availability float64       // availability target; 0 disables the objective
	p99          time.Duration // latency threshold; 0 disables
	staleCeiling float64       // stale-serve ratio ceiling; 0 disables
	shedCeiling  float64       // shed ratio ceiling; 0 disables
	windowScale  float64       // multiplies the burn-rule windows
	cooldown     time.Duration // breach clear delay; 0 = per-rule short window
}

// sloStack bundles the metrics history and the SLO engine so route
// assembly and the quarters page take one handle. A nil *sloStack is
// the disabled state: the history/SLO endpoints answer 404 and the
// quarters page omits the SLO line.
type sloStack struct {
	hist *history.History
	eng  *slo.Engine
}

func (st *sloStack) history() *history.History {
	if st == nil {
		return nil
	}
	return st.hist
}

func (st *sloStack) engine() *slo.Engine {
	if st == nil {
		return nil
	}
	return st.eng
}

// start launches the scrape loop (each scrape ends with an engine
// tick). No-op on a nil stack.
func (st *sloStack) start(ctx context.Context) {
	if st == nil {
		return
	}
	st.hist.Start(ctx)
}

// newSLOStack builds the history scraper and the burn-rate engine
// over it, wired into the shared alerting spine: breaches land in
// alog, page-severity breaches flip ready's degraded flag, and
// everything exports as maras_slo_*/maras_history_* series on reg.
// Returns nil when opts.scrape is zero (stack disabled).
func newSLOStack(reg *obs.Registry, alog *audit.Log, ready *obs.Readiness, logger *slog.Logger, opts sloOptions) *sloStack {
	if opts.scrape <= 0 {
		return nil
	}
	hist := history.New(reg, history.Options{
		Interval:  opts.scrape,
		Retention: opts.retention,
	})
	objectives := slo.DefaultObjectives(opts.availability, opts.p99,
		opts.staleCeiling, opts.shedCeiling)
	eng := slo.NewEngine(hist, slo.Config{
		Objectives: objectives,
		Rules:      slo.DefaultRules(opts.windowScale),
		Cooldown:   opts.cooldown,
		Log:        alog,
		Ready:      ready,
		Metrics:    reg,
		Logger:     logger,
	})
	hist.OnScrape(eng.Tick)
	return &sloStack{hist: hist, eng: eng}
}

// sloSummary is the one-line SLO rollup the quarters page renders.
type sloSummary struct {
	Name   string
	Status string // "ok", "warn", or "fail" (CSS classes on the page)
	Detail string
}

// summarize flattens the engine report into per-objective rollups.
// Empty on a nil/unticked stack.
func (st *sloStack) summarize() []sloSummary {
	eng := st.engine()
	if eng == nil {
		return nil
	}
	rep := eng.Report()
	out := make([]sloSummary, 0, len(rep.Objectives))
	for _, o := range rep.Objectives {
		s := sloSummary{Name: o.Name, Status: "ok"}
		worst := ""
		for _, ru := range o.Rules {
			if !ru.Active {
				continue
			}
			switch ru.Severity {
			case string(audit.SevFail):
				s.Status = "fail"
				worst = ru.Name
			case string(audit.SevWarn):
				if s.Status != "fail" {
					s.Status = "warn"
					worst = ru.Name
				}
			}
		}
		switch {
		case worst != "":
			s.Detail = fmt.Sprintf("%s burn active · budget %.0f%%", worst, 100*o.BudgetRemaining)
		default:
			s.Detail = fmt.Sprintf("budget %.0f%%", 100*o.BudgetRemaining)
		}
		out = append(out, s)
	}
	return out
}
