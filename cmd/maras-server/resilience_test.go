package main

// Server-level fault-tolerance tests: the bulkhead shedding under
// saturation, graceful degradation to stale snapshots with the
// /readyz flip, quarantine of a corrupt snapshot observed through the
// HTTP surface, and an env-armed chaos smoke for CI.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/replica"
	"maras/internal/resilience"
	"maras/internal/store"
)

// storeHandlerShed is storeHandler with a bulkhead over the
// application routes, for saturation tests.
func storeHandlerShed(t *testing.T, dir string, cfg resilience.BulkheadConfig) (http.Handler, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	ss, err := newStoreServer(dir, nil, nil, obs.NewStoreMetrics(reg), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	shed, err := resilience.NewBulkhead(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ready := &obs.Readiness{}
	ready.SetReady()
	return ss.routes(reg, mw, nil, ready, shed, nil, nil, nil, nil), reg
}

// flipByte corrupts a snapshot in place so decode fails its checksum.
func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestServerShedsWhenSaturated holds the only bulkhead slot with a
// request whose snapshot load is slowed by a failpoint, then verifies
// the next request is shed: 503, Retry-After, and the shed counter
// moving — while /healthz (outside the bulkhead) still answers.
func TestServerShedsWhenSaturated(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	h, reg := storeHandlerShed(t, tempStoreDir(t, 1), resilience.BulkheadConfig{
		MaxConcurrent: 1,
		MaxWaiting:    0,
		RetryAfter:    2 * time.Second,
	})
	if err := resilience.Enable(resilience.FPLoad + "=delay(750ms)"); err != nil {
		t.Fatal(err)
	}

	slow := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/signals", nil))
		slow <- rec
	}()
	// Wait until the slow request holds the slot before overloading.
	inflight := reg.Gauge("maras_bulkhead_inflight",
		"Requests currently executing inside the bulkhead.")
	for deadline := time.Now().Add(5 * time.Second); inflight.Value() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("slow request never entered the bulkhead")
		}
		time.Sleep(time.Millisecond)
	}

	rec := getMux(t, h, "/api/signals")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "overloaded") {
		t.Fatalf("shed body = %q", rec.Body.String())
	}
	shedTotal := reg.Counter("maras_shed_total", "Requests shed by the bulkhead, by reason.",
		obs.Label{Key: "reason", Value: "queue_full"})
	if shedTotal.Value() == 0 {
		t.Fatal("maras_shed_total{reason=queue_full} did not move")
	}

	// Operational endpoints bypass the bulkhead entirely.
	if rec := getMux(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz under saturation = %d", rec.Code)
	}

	if rec := <-slow; rec.Code != http.StatusOK {
		t.Fatalf("slow (admitted) request status = %d", rec.Code)
	}
}

// TestServerServesStaleWhenLoadFails drives the degradation loop
// through the HTTP surface: a warmed quarter whose disk path starts
// failing is served from the last-good copy with X-Maras-Origin:
// stale, the readiness probe reports "degraded" (still 200 — the load
// balancer keeps routing), and a fresh load clears both.
func TestServerServesStaleWhenLoadFails(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	dir := tempStoreDir(t, 1)
	h, ss, _, _ := storeHandler(t, dir)

	// Warm: fresh serve populates the last-good cache and carries the
	// local serving origin.
	rec := getMux(t, h, "/api/signals")
	if rec.Code != http.StatusOK || rec.Header().Get(store.OriginHeader) != string(store.OriginLocal) {
		t.Fatalf("warm request: status=%d origin=%q", rec.Code, rec.Header().Get(store.OriginHeader))
	}

	// Invalidate the resident copy so the next request must hit disk,
	// then make every disk read fail.
	a, err := ss.reg.Load("2014Q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.reg.Save("2014Q1", a); err != nil {
		t.Fatal(err)
	}
	ss.dropHandler("2014Q1")
	if err := resilience.Enable(resilience.FPLoad + "=error"); err != nil {
		t.Fatal(err)
	}

	rec = getMux(t, h, "/api/signals")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded request status = %d, want 200 from stale copy", rec.Code)
	}
	if got := rec.Header().Get(store.OriginHeader); got != string(store.OriginStale) {
		t.Fatalf("degraded response origin = %q, want %q", got, store.OriginStale)
	}
	if rec.Header().Get("X-Maras-Stale") != "1" {
		t.Fatal("stale response missing back-compat X-Maras-Stale: 1")
	}
	rec = getMux(t, h, "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"degraded"`) {
		t.Fatalf("readyz while degraded: status=%d body=%s", rec.Code, rec.Body.String())
	}
	if rec := getMux(t, h, "/healthz"); !strings.Contains(rec.Body.String(), `"degraded":true`) {
		t.Fatalf("healthz missing degraded flag: %s", rec.Body.String())
	}

	// Fault clears: serving turns fresh again and the probe recovers.
	resilience.DisableAll()
	rec = getMux(t, h, "/api/signals")
	if rec.Code != http.StatusOK || rec.Header().Get(store.OriginHeader) != string(store.OriginLocal) {
		t.Fatalf("recovered request: status=%d origin=%q", rec.Code, rec.Header().Get(store.OriginHeader))
	}
	rec = getMux(t, h, "/readyz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ready"`) {
		t.Fatalf("readyz after recovery: status=%d body=%s", rec.Code, rec.Body.String())
	}
}

// TestServerQuarantinesCorruptQuarter serves a store holding one
// corrupt snapshot: the quarter route answers 503 + Retry-After (never
// 500), the file is quarantined aside with an audit event, and the
// healthy sibling keeps serving.
func TestServerQuarantinesCorruptQuarter(t *testing.T) {
	dir := tempStoreDir(t, 2)
	path := filepath.Join(dir, "2014Q1"+store.Ext)
	flipByte(t, path)
	h, ss, _, _ := storeHandler(t, dir)

	rec := getMux(t, h, "/q/2014Q1/api/signals")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("corrupt quarter status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if _, err := os.Stat(path + store.QuarantinedExt); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	found := false
	for _, e := range ss.auditor.Log.Recent(0) {
		if e.Rule == "store_quarantine" && e.Scope == "2014Q1" && e.Severity == audit.SevFail {
			found = true
		}
	}
	if !found {
		t.Fatal("no store_quarantine audit event")
	}

	// The healthy sibling is untouched; the quarantined quarter (no
	// stale copy was ever cached) now 404s instead of erroring.
	if rec := getMux(t, h, "/q/2014Q2/api/signals"); rec.Code != http.StatusOK {
		t.Fatalf("healthy quarter status = %d", rec.Code)
	}
	if rec := getMux(t, h, "/q/2014Q1/api/signals"); rec.Code != http.StatusNotFound {
		t.Fatalf("quarantined quarter status = %d, want 404", rec.Code)
	}
}

// TestServerFailsOverToPeer exercises the deepest rung of the
// degradation ladder through the HTTP surface: the local snapshot is
// corrupt (quarantined on first touch) and no stale copy exists, so
// the quarter is answered by proxying from a replica peer — 200 with
// X-Maras-Origin: peer — and the cached peer copy keeps that label on
// re-serves.
func TestServerFailsOverToPeer(t *testing.T) {
	dirA := tempStoreDir(t, 1)
	dirB := tempStoreDir(t, 1)
	flipByte(t, filepath.Join(dirA, "2014Q1"+store.Ext))

	// Peer B: a healthy replica serving the sync endpoints.
	regB, err := store.OpenRegistry(dirB, store.RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nodeB := replica.NewNode(regB, replica.Options{Name: "b"})
	peerMux := http.NewServeMux()
	nodeB.Mount(peerMux)
	srvB := httptest.NewServer(peerMux)
	defer srvB.Close()

	h, ss, _, _ := storeHandler(t, dirA)
	nodeA := replica.NewNode(ss.reg, replica.Options{Name: "a", Peers: []string{srvB.URL}})
	ss.replica = nodeA
	ss.reg.SetPeerFetch(nodeA.FetchAnalysis)

	// First touch: local decode fails (quarantining the file), no stale
	// copy exists, and the peer tier answers.
	rec := getMux(t, h, "/q/2014Q1/api/signals")
	if rec.Code != http.StatusOK {
		t.Fatalf("peer-failover status = %d, want 200; body=%s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(store.OriginHeader); got != string(store.OriginPeer) {
		t.Fatalf("failover origin = %q, want %q", got, store.OriginPeer)
	}
	if _, err := os.Stat(filepath.Join(dirA, "2014Q1"+store.Ext+store.QuarantinedExt)); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}

	// Re-serve: the cached copy came from a peer and stays labeled so.
	rec = getMux(t, h, "/q/2014Q1/api/signals")
	if rec.Code != http.StatusOK || rec.Header().Get(store.OriginHeader) != string(store.OriginPeer) {
		t.Fatalf("cached failover: status=%d origin=%q", rec.Code, rec.Header().Get(store.OriginHeader))
	}
}

// TestServerChaosFromEnv is the CI chaos smoke: when MARAS_FAILPOINTS
// is set (e.g. "store/decode=error*1;store/load=delay(20ms,0.2)") it
// arms the spec exactly as the binaries do and hammers the quarter
// routes, asserting the acceptance invariant — never a 500; every
// answer is fresh, stale-marked, 503 + Retry-After, or a clean 404
// after quarantine. Skipped when the variable is unset.
func TestServerChaosFromEnv(t *testing.T) {
	if os.Getenv(resilience.FailpointEnv) == "" {
		t.Skip("set " + resilience.FailpointEnv + " to run the chaos smoke")
	}
	t.Cleanup(resilience.DisableAll)
	resilience.Seed(1)
	if _, err := resilience.EnableFromEnv(); err != nil {
		t.Fatal(err)
	}
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 2))
	paths := []string{"/api/signals", "/q/2014Q1/api/signals", "/q/2014Q2/api/signals", "/api/quarters"}
	for i := 0; i < 40; i++ {
		p := paths[i%len(paths)]
		rec := getMux(t, h, p)
		switch {
		case rec.Code < 500:
		case rec.Code == http.StatusServiceUnavailable:
			if rec.Header().Get("Retry-After") == "" {
				t.Fatalf("%s: 503 without Retry-After", p)
			}
		default:
			t.Fatalf("%s request %d: status %d — the fault leaked as a server error", p, i, rec.Code)
		}
	}
}
