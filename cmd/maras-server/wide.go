package main

import (
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/obs/prof"
	"maras/internal/obs/wide"
)

// newDiag assembles the /debug/diag cross-signal join from whatever
// subsystems this process runs: the wide-event ring, the trace
// journal, the audit timeline, the SLO engine plus readiness causes,
// and the CRC-verified profile artifact index. Nil subsystems simply
// leave their section out of the report.
func newDiag(events *wide.Ring, journal *obs.Journal, alog *audit.Log, slos *sloStack, ready *obs.Readiness, captor *prof.Captor) wide.Diag {
	d := wide.Diag{Ring: events, FindTrace: journal.Find}
	if alog != nil {
		d.Audit = func(from, to time.Time) []wide.DiagAuditEvent {
			var out []wide.DiagAuditEvent
			for _, e := range alog.Recent(0) {
				if e.Time.Before(from) || e.Time.After(to) {
					continue
				}
				out = append(out, wide.DiagAuditEvent{
					Time: e.Time, Rule: e.Rule, Severity: string(e.Severity),
					Scope: e.Scope, Message: e.Message,
				})
			}
			return out
		}
	}
	d.SLO = func() wide.SLOState {
		s := wide.SLOState{}
		if eng := slos.engine(); eng != nil {
			s.Breached = eng.Report().Breached()
		}
		if ready != nil {
			s.Degraded = ready.DegradedCauses()
		}
		return s
	}
	if captor != nil {
		pstore := captor.Store()
		d.Profiles = func(from, to time.Time) []wide.ProfileRef {
			var out []wide.ProfileRef
			for _, a := range pstore.List() {
				if a.TakenAt.Before(from) || a.TakenAt.After(to) {
					continue
				}
				_, _, err := pstore.Read(a.ID) // re-verifies the CRC
				out = append(out, wide.ProfileRef{
					ID: a.ID, Kind: a.Kind, Cause: a.Cause, TakenAt: a.TakenAt,
					Link: "/debug/profiles/" + a.ID, Verified: err == nil,
				})
			}
			return out
		}
	}
	return d
}
