package main

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/obs/prof"
)

// TestProfilesEndpointDisabled404s: without -prof-dir the route is
// mounted but answers 404 with the enabling hint.
func TestProfilesEndpoint404WhenDisabled(t *testing.T) {
	h, _ := testHandler(t) // captor nil
	rec := getMux(t, h, "/debug/profiles")
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "-prof-dir") {
		t.Errorf("/debug/profiles disabled = %d %q", rec.Code, rec.Body.String())
	}
}

// TestProfilesEndpointThroughMux: with a captor wired, the index and
// artifact download serve through the full server mux.
func TestProfilesEndpointThroughMux(t *testing.T) {
	s := testServer(t)
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	ready := &obs.Readiness{}
	ready.SetReady()
	pstore, err := prof.OpenStore(t.TempDir(), prof.StoreOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	captor := prof.NewCaptor(prof.CaptorOptions{
		Store:         pstore,
		CPUWindow:     time.Millisecond,
		TriggerWindow: time.Millisecond,
	})
	h := s.routes(reg, mw, nil, ready, nil, nil, nil, captor, nil)

	arts, err := captor.CaptureCycle(context.Background(), prof.CauseScheduled, "")
	if err != nil {
		t.Fatal(err)
	}
	rec := getMux(t, h, "/debug/profiles")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), arts[0].ID) {
		t.Fatalf("/debug/profiles index = %d\n%s", rec.Code, rec.Body.String())
	}
	rec = getMux(t, h, "/debug/profiles/"+arts[0].ID)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("artifact download = %d, %d bytes", rec.Code, rec.Body.Len())
	}

	// The store gauges are registered on the shared registry.
	metrics := getMux(t, h, "/metrics").Body.String()
	if !strings.Contains(metrics, "maras_prof_store_artifacts") {
		t.Error("/metrics missing maras_prof_store_artifacts")
	}
}

// TestBuildInfoExposed: the build-info gauge lands on /metrics and its
// fields echo on /healthz.
func TestBuildInfoExposed(t *testing.T) {
	h, _ := testHandler(t)
	metrics := getMux(t, h, "/metrics").Body.String()
	if !strings.Contains(metrics, "maras_build_info{") ||
		!strings.Contains(metrics, "go_version=") {
		t.Errorf("/metrics missing maras_build_info gauge:\n%s", metrics)
	}
	var health struct {
		GoVersion string `json:"go_version"`
		Revision  string `json:"revision"`
	}
	if err := json.Unmarshal(getMux(t, h, "/healthz").Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.GoVersion == "" || health.Revision == "" {
		t.Errorf("healthz build info = %+v", health)
	}
}

// TestAuditEndpointGzip: /debug/audit honors Accept-Encoding: gzip.
func TestAuditEndpointGzip(t *testing.T) {
	s := testServer(t)
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	ready := &obs.Readiness{}
	ready.SetReady()
	s.alog = audit.NewLog(audit.LogOptions{Metrics: reg})
	s.alog.Record(audit.Event{Rule: "quality_gate", Severity: audit.SevWarn,
		Scope: "2014Q1", Message: "support floor grazed"})
	h := s.routes(reg, mw, nil, ready, nil, nil, nil, nil, nil)

	req := httptest.NewRequest(http.MethodGet, "/debug/audit", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/audit = %d", rec.Code)
	}
	if rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", rec.Header().Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(zr); err != nil {
		t.Fatalf("gzip body unreadable: %v", err)
	}
}
