package main

// Server-level SLO tests: the readiness probe flipping to degraded on
// a fast-burn availability breach and recovering after the cooldown,
// the /api/slo and /api/history surfaces, and gzip negotiation on the
// operational endpoints.

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/obs/history"
	"maras/internal/resilience"
	"maras/internal/slo"
)

// sloClock is a mutex-free test clock: tests drive it from one
// goroutine and scrapes happen synchronously via hist.Scrape().
type sloClock struct{ t time.Time }

func (c *sloClock) Now() time.Time          { return c.t }
func (c *sloClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// sloStoreHandler builds the store-mode mux with a clock-stubbed SLO
// stack: 1s scrape interval, a single fast 5s/20s burn rule at 14.4x
// on a 99.5% availability objective, 2s clear cooldown.
func sloStoreHandler(t *testing.T, dir string) (http.Handler, *sloStack, *sloClock, *obs.Readiness, *audit.Log) {
	t.Helper()
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	alog := audit.NewLog(audit.LogOptions{Metrics: reg})
	ss, err := newStoreServer(dir, nil, nil, obs.NewStoreMetrics(reg), &audit.Auditor{Log: alog, Metrics: reg}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := &obs.Readiness{}
	ready.SetReady()
	clock := &sloClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
	hist := history.New(reg, history.Options{
		Interval: time.Second, Retention: 5 * time.Minute, Now: clock.Now,
	})
	eng := slo.NewEngine(hist, slo.Config{
		Objectives: slo.DefaultObjectives(0.995, 0, 0, 0),
		Rules: []slo.BurnRule{{Name: "fast", Short: 5 * time.Second,
			Long: 20 * time.Second, Threshold: 14.4, Severity: audit.SevFail}},
		MinEvents: 1,
		Cooldown:  2 * time.Second,
		Log:       alog,
		Ready:     ready,
		Metrics:   reg,
	})
	hist.OnScrape(eng.Tick)
	slos := &sloStack{hist: hist, eng: eng}
	h := ss.routes(reg, mw, nil, ready, nil, slos, nil, nil, nil)
	hist.Scrape() // baseline after routes register the HTTP series
	return h, slos, clock, ready, alog
}

// step advances the stubbed clock one interval, fires n requests at
// url through the mux, and scrapes (which ticks the engine).
func sloStep(t *testing.T, h http.Handler, slos *sloStack, clock *sloClock, url string, n int) {
	t.Helper()
	clock.Advance(time.Second)
	for i := 0; i < n; i++ {
		getMux(t, h, url)
	}
	slos.history().Scrape()
}

// TestReadyzFlipsOnSLOFastBurn drives the full breach lifecycle
// through the HTTP surface: clean traffic, then a failpoint turning
// every default-quarter request into a 503 on a cold store (no stale
// copy to degrade to), which burns the availability budget far past
// the fast rule's 14.4x threshold. /readyz must report degraded with
// the slo:availability cause, the breach must land in the audit log,
// and sustained clean traffic after the fault clears must drop the
// flag again.
func TestReadyzFlipsOnSLOFastBurn(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	h, slos, clock, ready, alog := sloStoreHandler(t, tempStoreDir(t, 1))
	// The store's own breaker/stale machinery can contribute a "store"
	// cause on real-time reset schedules the stubbed clock can't drive,
	// so every assertion here targets the SLO cause specifically.
	sloCause := func() bool {
		for _, c := range ready.DegradedCauses() {
			if c == "slo:availability" {
				return true
			}
		}
		return false
	}

	// Clean phase: /api/quarters never touches snapshot loads.
	for i := 0; i < 3; i++ {
		sloStep(t, h, slos, clock, "/api/quarters", 10)
	}
	if ready.Degraded() {
		t.Fatal("degraded during clean phase")
	}

	// Fault phase: every snapshot load fails and the quarter was never
	// warmed, so /api/signals answers 503.
	if err := resilience.Enable(resilience.FPLoad + "=error"); err != nil {
		t.Fatal(err)
	}
	if rec := getMux(t, h, "/api/signals"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("faulted request status = %d, want 503", rec.Code)
	}
	for i := 0; i < 6 && !sloCause(); i++ {
		sloStep(t, h, slos, clock, "/api/signals", 10)
	}
	if !sloCause() {
		t.Fatal("fast-burn breach did not raise the slo:availability cause")
	}
	if !ready.Degraded() {
		t.Fatal("SLO cause raised but aggregate degraded flag false")
	}
	rec := getMux(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz while degraded = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"degraded"`) ||
		!strings.Contains(rec.Body.String(), "slo:availability") {
		t.Fatalf("readyz body missing SLO cause: %s", rec.Body.String())
	}
	found := false
	for _, e := range alog.Recent(0) {
		if e.Rule == "slo_burn" && e.Scope == "availability" && e.Severity == audit.SevFail {
			found = true
		}
	}
	if !found {
		t.Error("slo_burn breach event missing from audit log")
	}

	// Recovery: fault off, clean traffic drains the 5s short window,
	// and after the 2s cooldown the engine clears its cause. Traffic
	// goes back to /api/quarters — the store breaker may still be open
	// on its own real-time schedule, and that must not keep the SLO
	// cause alive.
	resilience.DisableAll()
	for i := 0; i < 30 && sloCause(); i++ {
		sloStep(t, h, slos, clock, "/api/quarters", 10)
	}
	if sloCause() {
		t.Fatal("slo:availability cause survived sustained clean traffic")
	}
	rec = getMux(t, h, "/readyz")
	if strings.Contains(rec.Body.String(), "slo:availability") {
		t.Fatalf("readyz still lists the SLO cause after recovery: %s", rec.Body.String())
	}
	recovered := false
	for _, e := range alog.Recent(0) {
		if e.Rule == "slo_recovered" && e.Scope == "availability" {
			recovered = true
		}
	}
	if !recovered {
		t.Error("slo_recovered event missing from audit log")
	}
}

// TestSLOAndHistoryEndpoints exercises the read surfaces: /api/slo
// returns the engine report, /api/history serves the scraped HTTP
// series with window aggregates, and /debug/history renders.
func TestSLOAndHistoryEndpoints(t *testing.T) {
	h, slos, clock, _, _ := sloStoreHandler(t, tempStoreDir(t, 1))
	for i := 0; i < 3; i++ {
		sloStep(t, h, slos, clock, "/api/quarters", 5)
	}

	rec := getMux(t, h, "/api/slo")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/slo status = %d", rec.Code)
	}
	var rep struct {
		Objectives []struct {
			Name         string  `json:"name"`
			PeriodEvents float64 `json:"period_events"`
		} `json:"objectives"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Name != "availability" {
		t.Fatalf("/api/slo objectives = %+v", rep.Objectives)
	}
	if rep.Objectives[0].PeriodEvents != 15 {
		t.Errorf("period events = %v, want 15", rep.Objectives[0].PeriodEvents)
	}

	rec = getMux(t, h, "/api/history/http_requests_total?window=1m")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/history status = %d: %s", rec.Code, rec.Body.String())
	}
	if body := rec.Body.String(); !strings.Contains(body, `"http_requests_total"`) ||
		!strings.Contains(body, `"sum"`) {
		t.Errorf("/api/history body missing counter aggregates: %s", body)
	}

	rec = getMux(t, h, "/debug/history")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "http_requests_total") {
		t.Errorf("/debug/history status=%d body=%q", rec.Code, rec.Body.String())
	}

	// The quarters page carries the SLO rollup line.
	rec = getMux(t, h, "/quarters")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/api/slo") {
		t.Errorf("/quarters missing SLO rollup: status=%d", rec.Code)
	}
}

// TestSLOEndpointsDisabledWithoutStack pins the nil-stack behavior:
// the history and SLO routes answer 404 instead of panicking when the
// server runs with -history-scrape 0.
func TestSLOEndpointsDisabledWithoutStack(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 1))
	for _, url := range []string{"/api/slo", "/api/history/http_requests_total", "/debug/history"} {
		if rec := getMux(t, h, url); rec.Code != http.StatusNotFound {
			t.Errorf("%s with nil stack = %d, want 404", url, rec.Code)
		}
	}
	// The quarters page must render without the SLO line.
	if rec := getMux(t, h, "/quarters"); rec.Code != http.StatusOK {
		t.Errorf("/quarters with nil stack = %d", rec.Code)
	}
}

// TestMetricsGzipNegotiated checks the operational endpoints honor
// Accept-Encoding: the same /metrics payload arrives gzip-compressed
// when asked for and identity otherwise.
func TestMetricsGzipNegotiated(t *testing.T) {
	h, slos, clock, _, _ := sloStoreHandler(t, tempStoreDir(t, 1))
	sloStep(t, h, slos, clock, "/api/quarters", 3)

	plain := getMux(t, h, "/metrics")
	if plain.Code != http.StatusOK || plain.Header().Get("Content-Encoding") != "" {
		t.Fatalf("identity /metrics: status=%d enc=%q", plain.Code, plain.Header().Get("Content-Encoding"))
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip /metrics: status=%d enc=%q", rec.Code, rec.Header().Get("Content-Encoding"))
	}
	zr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	// The exposition is re-rendered per request (runtime-sampled
	// gauges), so compare series presence rather than exact bytes.
	for _, want := range []string{"maras_slo_error_budget_remaining", "http_requests_total", "maras_history_scrapes_total"} {
		if !strings.Contains(string(unzipped), want) {
			t.Errorf("gzipped /metrics missing %q", want)
		}
		if !strings.Contains(plain.Body.String(), want) {
			t.Errorf("identity /metrics missing %q", want)
		}
	}
}
