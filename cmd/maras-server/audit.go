package main

// Audit surface of store mode: the quality and drift reports the
// Registry assembles (see internal/store/audit.go) served as JSON, the
// human quarters index with its drift column, and the startup audit
// sweep that walks every stored quarter so threshold breaches land on
// the event log before the first operator looks at /debug/audit.

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"maras/internal/audit"
)

// handleQuality serves /api/quality/{label}: the quarter's ingest-
// quality report — persisted metrics plus findings and verdict
// evaluated against the trailing quarters at current thresholds.
func (ss *storeServer) handleQuality(w http.ResponseWriter, r *http.Request) {
	label := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/api/quality/"), "/")
	if label == "" || strings.Contains(label, "/") {
		http.Error(w, "usage: /api/quality/{quarter}", http.StatusBadRequest)
		return
	}
	if !ss.reg.Has(label) {
		http.Error(w, fmt.Sprintf("quarter %q not in store", label), http.StatusNotFound)
		return
	}
	q, err := ss.reg.QualityContext(r.Context(), label)
	if err != nil {
		ss.log().Error("quality", "quarter", label, "err", err)
		http.Error(w, "quality report unavailable", http.StatusInternalServerError)
		return
	}
	writeJSON(w, ss, "quality", q)
}

// handleDrift serves /api/drift/{from}/{to}: the signal-set diff
// between two stored quarters over the configured top-K.
func (ss *storeServer) handleDrift(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/api/drift/"), "/")
	from, to, ok := strings.Cut(rest, "/")
	if !ok || from == "" || to == "" || strings.Contains(to, "/") {
		http.Error(w, "usage: /api/drift/{from}/{to}", http.StatusBadRequest)
		return
	}
	for _, label := range []string{from, to} {
		if !ss.reg.Has(label) {
			http.Error(w, fmt.Sprintf("quarter %q not in store", label), http.StatusNotFound)
			return
		}
	}
	if from == to {
		http.Error(w, "drift needs two distinct quarters", http.StatusBadRequest)
		return
	}
	d, err := ss.reg.DriftContext(r.Context(), from, to)
	if err != nil {
		ss.log().Error("drift", "from", from, "to", to, "err", err)
		http.Error(w, "drift report unavailable", http.StatusInternalServerError)
		return
	}
	writeJSON(w, ss, "drift", d)
}

// writeJSON encodes v fully before writing so a marshal failure yields
// a clean 500 instead of a truncated 200.
func writeJSON(w http.ResponseWriter, ss *storeServer, what string, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		ss.log().Error(what+" encode", "err", err)
		http.Error(w, "internal encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil {
		ss.log().Warn(what+" write", "err", err)
	}
}

var quartersTmpl = template.Must(template.New("quarters").Parse(`<!DOCTYPE html>
<html><head><title>MARAS store — quarters</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
table{border-collapse:collapse}
td,th{border:1px solid #ccc;padding:4px 10px;font-size:13px;text-align:right}
td:first-child,th:first-child{text-align:left}
.ok{color:#2a7}
.warn{color:#c80;font-weight:bold}
.fail{color:#b33;font-weight:bold}
.dim{color:#999}
</style></head><body>
<h1>MARAS store — {{len .Rows}} quarters</h1>
<p>Default quarter: <a href="/">{{.Default}}</a> · alert timeline at <a href="/debug/audit">/debug/audit</a></p>
{{if .SLOs}}<p>SLOs (<a href="/api/slo">/api/slo</a>):
{{range .SLOs}} <span class="{{.Status}}">{{.Name}}</span> ({{.Detail}}) ·{{end}}
 history at <a href="/debug/history">/debug/history</a></p>{{end}}
<table>
<tr><th>Quarter</th><th>Reports</th><th>Drop&nbsp;rate</th><th>Signals</th><th>Quality</th>
<th>Churn vs prev</th><th>Rank shift</th><th>New</th><th>Dropped</th><th>Drift</th></tr>
{{range .Rows}}<tr>
<td><a href="/q/{{.Label}}/">{{.Label}}</a></td>
{{if .Quality}}<td>{{.Quality.Reports}}</td><td>{{printf "%.1f%%" .DropPct}}</td><td>{{.Quality.Signals}}</td><td class="{{.Quality.Verdict}}">{{.Quality.Verdict}}</td>
{{else}}<td class="dim" colspan="4">unavailable</td>{{end}}
{{if .Drift}}<td>{{printf "%.0f%%" .ChurnPct}}</td><td>{{printf "%.0f%%" .ShiftPct}}</td><td>{{.Drift.New}}</td><td>{{.Drift.Dropped}}</td><td class="{{.Drift.Verdict}}">{{.Drift.Verdict}}</td>
{{else}}<td class="dim" colspan="5">&mdash;</td>{{end}}
</tr>{{end}}
</table></body></html>`))

type quarterRow struct {
	Label   string
	Quality *audit.QualityReport
	Drift   *audit.DriftReport // vs the previous quarter; nil for the first
}

func (r quarterRow) DropPct() float64  { return 100 * r.Quality.DropRate }
func (r quarterRow) ChurnPct() float64 { return 100 * r.Drift.ChurnRate }
func (r quarterRow) ShiftPct() float64 { return 100 * r.Drift.RankShift }

// handleQuartersPage serves the human quarters index at /quarters:
// one row per stored quarter with its quality verdict and its drift
// against the preceding quarter. Report assembly is best-effort — a
// quarter that fails to audit renders as "unavailable" rather than
// failing the page.
func (ss *storeServer) handleQuartersPage(w http.ResponseWriter, r *http.Request) {
	if err := ss.reg.RefreshContext(r.Context()); err != nil {
		ss.log().Warn("store rescan", "err", err)
	}
	labels := ss.reg.Quarters()
	rows := make([]quarterRow, 0, len(labels))
	for i, label := range labels {
		row := quarterRow{Label: label}
		if q, err := ss.reg.QualityContext(r.Context(), label); err == nil {
			row.Quality = q
		} else {
			ss.log().Warn("quarters page quality", "quarter", label, "err", err)
		}
		if i > 0 {
			if d, err := ss.reg.DriftContext(r.Context(), labels[i-1], label); err == nil {
				row.Drift = d
			} else {
				ss.log().Warn("quarters page drift", "from", labels[i-1], "to", label, "err", err)
			}
		}
		rows = append(rows, row)
	}
	data := struct {
		Default string
		Rows    []quarterRow
		SLOs    []sloSummary
	}{Default: ss.reg.Latest(), Rows: rows, SLOs: ss.slos.summarize()}
	var sb strings.Builder
	if err := quartersTmpl.Execute(&sb, data); err != nil {
		ss.log().Error("quarters page render", "err", err)
		http.Error(w, "internal render error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := w.Write([]byte(sb.String())); err != nil {
		ss.log().Warn("quarters page write", "err", err)
	}
}

// auditSweep evaluates every stored quarter's quality and every
// adjacent pair's drift once, so startup populates the event log and
// gauges without waiting for the first API hit. Errors are logged and
// skipped — the sweep is an advisory pass, not a gate. It returns the
// number of quarters audited (tests call it synchronously; main runs
// it in a goroutine after the server is ready).
func (ss *storeServer) auditSweep(ctx context.Context) int {
	labels := ss.reg.Quarters()
	audited := 0
	for i, label := range labels {
		if ctx.Err() != nil {
			return audited
		}
		if _, err := ss.reg.QualityContext(ctx, label); err != nil {
			ss.log().Warn("audit sweep quality", "quarter", label, "err", err)
			continue
		}
		audited++
		if i > 0 {
			if _, err := ss.reg.DriftContext(ctx, labels[i-1], label); err != nil {
				ss.log().Warn("audit sweep drift", "from", labels[i-1], "to", label, "err", err)
			}
		}
	}
	if ss.auditor != nil && ss.auditor.Log != nil {
		st := ss.auditor.Log.Stats()
		ss.log().Info("audit sweep complete", "quarters", audited,
			"events", st.Total, "warn", st.Warn, "fail", st.Fail)
	}
	return audited
}
