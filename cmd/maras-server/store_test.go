package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/obs"
	"maras/internal/store"
)

// tempStoreDir mines n tiny quarters (2014Q1..) and persists them as
// snapshots, returning the store directory. Pair support ramps with
// the quarter index so timelines are non-trivial.
func tempStoreDir(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	for qi := 0; qi < n; qi++ {
		var reports []faers.Report
		id := 0
		add := func(drugs, reacs []string) {
			id++
			reports = append(reports, faers.Report{
				PrimaryID: fmt.Sprintf("%d", 1000+id), CaseID: fmt.Sprintf("c%d", id),
				ReportCode: "EXP", Drugs: drugs, Reactions: reacs,
			})
		}
		for i := 0; i < 8+4*qi; i++ {
			add([]string{"ASPIRIN", "WARFARIN"}, []string{"Haemorrhage"})
		}
		for i := 0; i < 20; i++ {
			add([]string{"ASPIRIN"}, []string{"Nausea"})
			add([]string{"WARFARIN"}, []string{"Dizziness"})
		}
		opts := core.NewOptions()
		opts.MinSupport = 3
		a, err := core.Run(reports, opts)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("2014Q%d", qi+1)
		if err := store.WriteFile(filepath.Join(dir, label+store.Ext), label, a); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// storeHandler builds the store-mode mux the way main does with
// -store, returning the handler plus the tracer and metric registry
// for assertions. Tracing is off; readiness is already signaled.
func storeHandler(t *testing.T, dir string) (http.Handler, *storeServer, *obs.Tracer, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	tracer := obs.NewTracer(nil)
	auditor := &audit.Auditor{Log: audit.NewLog(audit.LogOptions{Metrics: reg}), Metrics: reg}
	ss, err := newStoreServer(dir, nil, tracer, obs.NewStoreMetrics(reg), auditor, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := &obs.Readiness{}
	ready.SetReady()
	return ss.routes(reg, mw, nil, ready, nil, nil, nil, nil, nil), ss, tracer, reg
}

// storeHandlerTraced is storeHandler with span tracing into a journal.
func storeHandlerTraced(t *testing.T, dir string) (http.Handler, *obs.Journal) {
	t.Helper()
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	journal := obs.NewJournal(16, time.Hour)
	mw.EnableTracing(journal)
	ss, err := newStoreServer(dir, nil, nil, obs.NewStoreMetrics(reg), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := &obs.Readiness{}
	ready.SetReady()
	return ss.routes(reg, mw, journal, ready, nil, nil, nil, nil, nil), journal
}

func TestStoreModeQuartersEndpoint(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 3))
	rec := getMux(t, h, "/api/quarters")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Default  string   `json:"default"`
		Quarters []string `json:"quarters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Default != "2014Q3" || len(out.Quarters) != 3 {
		t.Errorf("quarters payload = %+v", out)
	}
}

// TestStoreModeWarmSignalsZeroMining is the acceptance check: serving
// /api/signals from the store must never invoke the miner — the only
// pipeline stage a serving process records is snapshot_load.
func TestStoreModeWarmSignalsZeroMining(t *testing.T) {
	h, _, tracer, _ := storeHandler(t, tempStoreDir(t, 2))
	for i := 0; i < 3; i++ {
		rec := getMux(t, h, "/api/signals")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, rec.Code)
		}
		var out []struct {
			Rank  int      `json:"rank"`
			Drugs []string `json:"drugs"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 || out[0].Rank != 1 {
			t.Fatalf("request %d: payload %+v", i, out)
		}
	}
	recs := tracer.Records()
	loads := 0
	for _, r := range recs {
		if r.Name == core.StageMine {
			t.Fatal("store mode ran the miner")
		}
		if r.Name == store.StageSnapshotLoad {
			loads++
		}
	}
	// One cold load for the default quarter; the two warm requests add
	// no stages at all.
	if loads != 1 {
		t.Errorf("snapshot_load stages = %d, want 1 (warm requests must not re-read)", loads)
	}
}

func TestStoreModeDefaultQuarterUI(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 2))
	rec := getMux(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	// The default quarter is the latest on disk.
	for _, want := range []string{"MARAS", "2014Q2", "/signal/1"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// Drill-down routes work against the snapshot (no txdb in memory).
	if rec := getMux(t, h, "/signal/1"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "ASPIRIN") {
		t.Errorf("/signal/1: status %d", rec.Code)
	}
	if rec := getMux(t, h, "/glyph/1"); rec.Code != http.StatusOK ||
		!strings.HasPrefix(rec.Body.String(), "<svg") {
		t.Errorf("/glyph/1: status %d", rec.Code)
	}
}

func TestStoreModeQuarterScopedRoutes(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 3))
	rec := getMux(t, h, "/q/2014Q1/api/signals")
	if rec.Code != http.StatusOK {
		t.Fatalf("/q/2014Q1/api/signals status = %d", rec.Code)
	}
	var q1 []struct {
		Support int `json:"support"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &q1); err != nil {
		t.Fatal(err)
	}
	rec3 := getMux(t, h, "/q/2014Q3/api/signals")
	var q3 []struct {
		Support int `json:"support"`
	}
	if err := json.Unmarshal(rec3.Body.Bytes(), &q3); err != nil {
		t.Fatal(err)
	}
	// The fixture ramps pair support, so the quarters must differ.
	if len(q1) == 0 || len(q3) == 0 || q1[0].Support >= q3[0].Support {
		t.Errorf("quarter scoping broken: q1 %+v vs q3 %+v", q1, q3)
	}
	if rec := getMux(t, h, "/q/2014Q1/signal/1"); rec.Code != http.StatusOK {
		t.Errorf("/q/2014Q1/signal/1 status = %d", rec.Code)
	}
	if rec := getMux(t, h, "/q/2019Q9/api/signals"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown quarter status = %d, want 404", rec.Code)
	}
}

func TestStoreModeTimeline(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 3))
	// Lower-case, reversed order: the key is canonicalized server-side.
	rec := getMux(t, h, "/api/timeline/warfarin+aspirin")
	if rec.Code != http.StatusOK {
		t.Fatalf("timeline status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Key    string `json:"key"`
		Class  string `json:"class"`
		Points []struct {
			Quarter string `json:"quarter"`
			Rank    int    `json:"rank"`
			Support int    `json:"support"`
		} `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Key != "ASPIRIN+WARFARIN" || len(out.Points) != 3 {
		t.Fatalf("timeline payload = %+v", out)
	}
	if out.Class != "persistent" {
		t.Errorf("class = %q, want persistent", out.Class)
	}
	for i := 1; i < len(out.Points); i++ {
		if out.Points[i].Support <= out.Points[i-1].Support {
			t.Errorf("support not ramping: %+v", out.Points)
		}
	}
	if rec := getMux(t, h, "/api/timeline/NOPE+NADA"); rec.Code != http.StatusNotFound {
		t.Errorf("absent key status = %d, want 404", rec.Code)
	}
	if rec := getMux(t, h, "/api/timeline/"); rec.Code != http.StatusBadRequest {
		t.Errorf("empty key status = %d, want 400", rec.Code)
	}
}

func TestStoreModeMetricsExposeStoreSeries(t *testing.T) {
	h, ss, _, _ := storeHandler(t, tempStoreDir(t, 2))
	getMux(t, h, "/api/signals") // cold load
	getMux(t, h, "/api/signals") // served from the cached handler
	// A direct warm registry load (what a second process route, e.g. the
	// timeline, performs) must register as a cache hit.
	if _, err := ss.reg.Load(ss.reg.Latest()); err != nil {
		t.Fatal(err)
	}
	rec := getMux(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"maras_store_snapshot_load_seconds",
		"maras_store_open_quarters 1",
		"maras_store_cache_misses_total 1",
		"maras_store_cache_hits_total 1",
		"maras_store_snapshot_bytes_read_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestStoreModeHealthz(t *testing.T) {
	h, ss, _, _ := storeHandler(t, tempStoreDir(t, 3))
	rec := getMux(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var body struct {
		Status   string `json:"status"`
		Mode     string `json:"mode"`
		Quarters int    `json:"quarters"`
		Default  string `json:"default"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.Mode != "store" || body.Quarters != 3 ||
		body.Default != ss.reg.Latest() {
		t.Errorf("healthz = %+v", body)
	}
}

func TestStoreModeEmptyStore(t *testing.T) {
	h, _, _, _ := storeHandler(t, t.TempDir())
	if rec := getMux(t, h, "/"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("empty store index status = %d, want 503", rec.Code)
	}
	rec := getMux(t, h, "/api/quarters")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"quarters":[]`+"") {
		// json.Marshal of a nil slice yields null; accept either form.
		if !strings.Contains(rec.Body.String(), `"quarters":null`) {
			t.Errorf("empty store quarters = %d %s", rec.Code, rec.Body.String())
		}
	}
}

// TestStoreModeTraceAcceptance is the PR's acceptance scenario: a
// store-backed request to /q/{label}/... yields a journal trace whose
// root HTTP span has registry child spans, with a cache hit vs a cold
// decode distinguishable by span attributes.
func TestStoreModeTraceAcceptance(t *testing.T) {
	h, journal := storeHandlerTraced(t, tempStoreDir(t, 2))

	// Cold: /q/2014Q1 loads + decodes the snapshot.
	if rec := getMux(t, h, "/q/2014Q1/api/signals"); rec.Code != http.StatusOK {
		t.Fatalf("/q/2014Q1/api/signals = %d", rec.Code)
	}
	// Warm in the registry but not the handler cache: the timeline
	// walks every quarter through LoadContext — 2014Q1 is an LRU hit,
	// 2014Q2 a miss with a decode.
	if rec := getMux(t, h, "/api/timeline/warfarin+aspirin"); rec.Code != http.StatusOK {
		t.Fatalf("/api/timeline = %d: %s", rec.Code, rec.Body.String())
	}

	recent := journal.Recent(0) // newest first: timeline, then /q/
	if len(recent) != 2 {
		t.Fatalf("journal traces = %d, want 2", len(recent))
	}

	cold := recent[1]
	if cold.Name != "GET /q/" {
		t.Fatalf("cold trace root = %q", cold.Name)
	}
	spansBy := func(tr obs.TraceRecord, name string) []obs.SpanRecord {
		var out []obs.SpanRecord
		for _, s := range tr.Spans {
			if s.Name == name {
				out = append(out, s)
			}
		}
		return out
	}
	parentOf := func(tr obs.TraceRecord, id int) (obs.SpanRecord, bool) {
		for _, s := range tr.Spans {
			if s.ID == id {
				return s, true
			}
		}
		return obs.SpanRecord{}, false
	}

	loads := spansBy(cold, store.SpanLoad)
	if len(loads) != 1 || loads[0].Attrs["cache"] != "lru_miss" || loads[0].Attrs["quarter"] != "2014Q1" {
		t.Fatalf("cold store_load spans = %+v", loads)
	}
	decodes := spansBy(cold, store.SpanDecode)
	if len(decodes) != 1 || decodes[0].Parent != loads[0].ID {
		t.Fatalf("cold snapshot_decode spans = %+v", decodes)
	}
	// The load hangs off the request's span tree, rooted at the HTTP span.
	qm, ok := parentOf(cold, loads[0].Parent)
	if !ok || qm.Name != "quarter_mux" || qm.Attrs["handler_cache"] != "miss" {
		t.Fatalf("store_load parent = %+v", qm)
	}
	if root, ok := parentOf(cold, qm.Parent); !ok || root.Parent != -1 {
		t.Fatalf("quarter_mux not under the HTTP root: %+v", root)
	}

	warm := recent[0]
	if warm.Name != "GET /api/timeline/" {
		t.Fatalf("timeline trace root = %q", warm.Name)
	}
	byQuarter := map[string]obs.SpanRecord{}
	for _, s := range spansBy(warm, store.SpanLoad) {
		byQuarter[s.Attrs["quarter"]] = s
	}
	if byQuarter["2014Q1"].Attrs["cache"] != "lru_hit" {
		t.Errorf("warm quarter load = %+v, want lru_hit", byQuarter["2014Q1"].Attrs)
	}
	if byQuarter["2014Q2"].Attrs["cache"] != "lru_miss" {
		t.Errorf("cold quarter load = %+v, want lru_miss", byQuarter["2014Q2"].Attrs)
	}
	if len(spansBy(warm, store.SpanDecode)) != 1 {
		t.Errorf("timeline decodes = %d, want 1 (only 2014Q2)", len(spansBy(warm, store.SpanDecode)))
	}

	// The handler-cache hit path: repeat the /q/ request; the registry
	// is bypassed entirely.
	getMux(t, h, "/q/2014Q1/api/signals")
	rerun := journal.Recent(1)[0]
	if n := len(spansBy(rerun, store.SpanLoad)); n != 0 {
		t.Errorf("handler-cached request touched the registry %d times", n)
	}
	if qm := spansBy(rerun, "quarter_mux"); len(qm) != 1 || qm[0].Attrs["handler_cache"] != "hit" {
		t.Errorf("handler cache span = %+v", qm)
	}

	// All of it visible at /debug/traces.
	body := getMux(t, h, "/debug/traces").Body.String()
	for _, want := range []string{"GET /q/", "store_load", "cache=lru_miss", "cache=lru_hit", "snapshot_decode"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/traces missing %q", want)
		}
	}
}

// TestStoreModeReadyz: store mode mounts /readyz too.
func TestStoreModeReadyz(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 1))
	rec := getMux(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (storeHandler marks ready)", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"mode":"store"`) {
		t.Errorf("readyz detail missing store mode: %s", rec.Body.String())
	}
}
