package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/store"
)

func TestStoreModeQualityEndpoint(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 3))
	rec := getMux(t, h, "/api/quality/2014Q2")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var q audit.QualityReport
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Label != "2014Q2" || q.Reports == 0 || q.Signals == 0 {
		t.Errorf("quality payload = %+v", q)
	}
	if q.Verdict == "" {
		t.Error("quality served without a verdict")
	}

	if rec := getMux(t, h, "/api/quality/2099Q1"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown quarter: status = %d", rec.Code)
	}
	if rec := getMux(t, h, "/api/quality/"); rec.Code != http.StatusBadRequest {
		t.Errorf("empty label: status = %d", rec.Code)
	}
}

func TestStoreModeDriftEndpoint(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 3))
	rec := getMux(t, h, "/api/drift/2014Q1/2014Q3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var d audit.DriftReport
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.From != "2014Q1" || d.To != "2014Q3" {
		t.Errorf("pair = %s->%s", d.From, d.To)
	}
	if d.FromSignals == 0 || d.ToSignals == 0 || len(d.Deltas) == 0 {
		t.Errorf("empty drift payload: %+v", d)
	}
	if d.Verdict == "" {
		t.Error("drift served without a verdict")
	}

	for url, want := range map[string]int{
		"/api/drift/2014Q1":        http.StatusBadRequest, // missing /to
		"/api/drift/2014Q1/2014Q1": http.StatusBadRequest, // identical
		"/api/drift/2014Q1/2099Q9": http.StatusNotFound,
		"/api/drift/2099Q9/2014Q1": http.StatusNotFound,
	} {
		if rec := getMux(t, h, url); rec.Code != want {
			t.Errorf("%s: status = %d, want %d", url, rec.Code, want)
		}
	}
}

func TestStoreModeQuartersPage(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDir(t, 3))
	rec := getMux(t, h, "/quarters")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"2014Q1", "2014Q2", "2014Q3", "Churn vs prev", "/debug/audit"} {
		if !strings.Contains(body, want) {
			t.Errorf("quarters page missing %q", want)
		}
	}
	// The first row has no previous quarter: exactly one em-dash drift
	// cell; the other two rows carry drift verdicts.
	if got := strings.Count(body, "&mdash;"); got != 1 {
		t.Errorf("dash-only drift cells = %d, want 1\n%s", got, body)
	}
}

// tempStoreDirWithSpike builds a clean 2-quarter store plus a third
// quarter where most reports are empty transactions (drugs but no
// reactions), so cleaning drops them and the drop rate jumps past the
// warn threshold.
func tempStoreDirWithSpike(t *testing.T) string {
	t.Helper()
	dir := tempStoreDir(t, 2)
	var reports []faers.Report
	id := 0
	add := func(drugs, reacs []string) {
		id++
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", 9000+id), CaseID: fmt.Sprintf("s%d", id),
			ReportCode: "EXP", Drugs: drugs, Reactions: reacs,
		})
	}
	for i := 0; i < 12; i++ {
		add([]string{"ASPIRIN", "WARFARIN"}, []string{"Haemorrhage"})
	}
	for i := 0; i < 10; i++ {
		add([]string{"ASPIRIN"}, []string{"Nausea"})
	}
	// The spike: ~70% of the quarter arrives without reactions.
	for i := 0; i < 55; i++ {
		add([]string{"IBUPROFEN"}, nil)
	}
	opts := core.NewOptions()
	opts.MinSupport = 3
	a, err := core.Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFile(filepath.Join(dir, "2014Q3"+store.Ext), "2014Q3", a); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDropRateSpikeReachesDebugAuditAndMetrics is the acceptance
// check: a quarter whose ingest threw most reports away must produce a
// warn event visible on /debug/audit and counted on
// maras_audit_events_total in /metrics.
func TestDropRateSpikeReachesDebugAuditAndMetrics(t *testing.T) {
	h, _, _, _ := storeHandler(t, tempStoreDirWithSpike(t))

	if rec := getMux(t, h, "/api/quality/2014Q3"); rec.Code != http.StatusOK {
		t.Fatalf("quality status = %d", rec.Code)
	} else {
		var q audit.QualityReport
		if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
			t.Fatal(err)
		}
		if q.DropRate < 0.6 {
			t.Fatalf("fixture drop rate = %.2f, want >= 0.6", q.DropRate)
		}
		if q.Verdict != audit.SevWarn && q.Verdict != audit.SevFail {
			t.Fatalf("verdict = %s, findings %+v", q.Verdict, q.Findings)
		}
	}

	rec := getMux(t, h, "/debug/audit")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/audit status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, audit.RuleDropRate) || !strings.Contains(body, "2014Q3") {
		t.Errorf("/debug/audit missing the drop-rate event:\n%s", body)
	}
	if !strings.Contains(body, "warn") {
		t.Errorf("/debug/audit shows no warn event:\n%s", body)
	}

	mrec := getMux(t, h, "/metrics")
	if mrec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", mrec.Code)
	}
	if !strings.Contains(mrec.Body.String(), "maras_audit_events_total") {
		t.Error("/metrics missing maras_audit_events_total")
	}
}

func TestStoreModeDebugAuditJSONAndSweep(t *testing.T) {
	h, ss, _, _ := storeHandler(t, tempStoreDirWithSpike(t))

	// The sweep is what main runs in the background after readiness:
	// it must populate the event log without any API traffic.
	if n := ss.auditSweep(context.Background()); n != 3 {
		t.Fatalf("sweep audited %d quarters, want 3", n)
	}
	if ss.auditor.Log.Stats().Total == 0 {
		t.Fatal("sweep recorded no events over the spiked store")
	}

	rec := getMux(t, h, "/debug/audit?format=json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Stats  audit.LogStats `json:"stats"`
		Events []audit.Event  `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Total == 0 || len(out.Events) == 0 {
		t.Errorf("empty audit dump: %+v", out.Stats)
	}
}

// TestMiningModeDebugAudit: the single-quarter server mounts
// /debug/audit too; without a configured log it answers 404 rather
// than panicking.
func TestMiningModeDebugAudit(t *testing.T) {
	h, _ := testHandler(t)
	if rec := getMux(t, h, "/debug/audit"); rec.Code != http.StatusNotFound {
		t.Errorf("nil audit log: status = %d, want 404", rec.Code)
	}
}
