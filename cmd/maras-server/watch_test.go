package main

// Server-level watchlist tests: CRUD validation through the HTTP
// surface, alert feed cursor semantics, the zero-duplicate-alerts
// guarantee on quarter re-loads, persistence across a restart, and
// the maras_watch_* series reaching /metrics and /api/history.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/obs/history"
	"maras/internal/slo"
	"maras/internal/watch"
)

// watchStoreHandler builds the store-mode mux with a live watch stack
// (user cap 3, feed cap 16) wired the way main does: OnLoad evaluates
// loaded quarters, audit drift events reach the evaluator, watchlists
// persist to file.
func watchStoreHandler(t *testing.T, dir, file string) (http.Handler, *storeServer, *watchStack, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	alog := audit.NewLog(audit.LogOptions{Metrics: reg})
	auditor := &audit.Auditor{Log: alog, Metrics: reg}
	ws, err := newWatchStack(watchConfig{
		file: file, userCap: 3, feedCap: 16, budget: time.Second,
	}, knowledge.Builtin(), reg, auditor, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	alog.OnRecord(ws.ev.HandleAuditEvent)
	ss, err := newStoreServer(dir, nil, nil, obs.NewStoreMetrics(reg), auditor, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := &obs.Readiness{}
	ready.SetReady()
	return ss.routes(reg, mw, nil, ready, nil, nil, ws, nil, nil), ss, ws, reg
}

func postJSON(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

func doMux(t *testing.T, h http.Handler, method, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, url, nil))
	return rec
}

func TestWatchlistCRUD(t *testing.T) {
	h, _, _, _ := watchStoreHandler(t, tempStoreDir(t, 1), "")

	rec := postJSON(t, h, "/api/watchlists",
		`{"user":"alice","name":"bleeding","drugs":["aspirin","warfarin"],"severity_floor":"moderate"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body)
	}
	var created watch.Watchlist
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.Drugs[0] != "ASPIRIN" || created.SeverityFloor != "moderate" {
		t.Fatalf("created = %+v", created)
	}

	rec = getMux(t, h, "/api/watchlists?user=alice")
	var listing struct {
		Watchlists []watch.Watchlist `json:"watchlists"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Watchlists) != 1 || listing.Watchlists[0].ID != created.ID {
		t.Fatalf("listing = %+v", listing)
	}

	if rec := getMux(t, h, "/api/watchlists/"+created.ID); rec.Code != http.StatusOK {
		t.Fatalf("get by id = %d", rec.Code)
	}
	if rec := doMux(t, h, http.MethodDelete, "/api/watchlists/"+created.ID); rec.Code != http.StatusNoContent {
		t.Fatalf("delete = %d", rec.Code)
	}
	if rec := getMux(t, h, "/api/watchlists/"+created.ID); rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete = %d", rec.Code)
	}
	if rec := doMux(t, h, http.MethodDelete, "/api/watchlists/"+created.ID); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete = %d", rec.Code)
	}
}

func TestWatchlistValidationFailures(t *testing.T) {
	h, _, _, _ := watchStoreHandler(t, tempStoreDir(t, 1), "")

	// Malformed and unknown-field JSON.
	if rec := postJSON(t, h, "/api/watchlists", `{"user":`); rec.Code != http.StatusBadRequest {
		t.Errorf("truncated JSON = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/watchlists", `{"user":"u","drugs":["A"],"nope":1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field = %d", rec.Code)
	}
	// Validation: no terms, bad severity, negative threshold.
	if rec := postJSON(t, h, "/api/watchlists", `{"user":"u"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("no terms = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/watchlists", `{"user":"u","drugs":["A"],"severity_floor":"fatal"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad severity floor = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/watchlists", `{"user":"u","drugs":["A"],"min_score":-1}`); rec.Code != http.StatusBadRequest {
		t.Errorf("negative threshold = %d", rec.Code)
	}

	// Unknown drug: before any quarter loads the vocabulary is empty
	// and anything passes; after a load, a drug the store has never
	// seen is rejected.
	if rec := getMux(t, h, "/api/signals"); rec.Code != http.StatusOK {
		t.Fatalf("quarter load = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/watchlists", `{"user":"u","drugs":["ZZZNOTADRUG"]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown drug = %d: %s", rec.Code, rec.Body)
	}
	if rec := postJSON(t, h, "/api/watchlists", `{"user":"u","drugs":["aspirin"]}`); rec.Code != http.StatusCreated {
		t.Errorf("known drug after load = %d: %s", rec.Code, rec.Body)
	}

	// Per-user cap (3 in this harness) answers 409.
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, h, "/api/watchlists", `{"user":"u","drugs":["warfarin"]}`); rec.Code != http.StatusCreated {
			t.Fatalf("fill cap = %d", rec.Code)
		}
	}
	if rec := postJSON(t, h, "/api/watchlists", `{"user":"u","drugs":["warfarin"]}`); rec.Code != http.StatusConflict {
		t.Errorf("over cap = %d", rec.Code)
	}
}

type alertsResponse struct {
	User      string        `json:"user"`
	Since     uint64        `json:"since"`
	NextSince uint64        `json:"next_since"`
	Alerts    []watch.Alert `json:"alerts"`
}

func getAlerts(t *testing.T, h http.Handler, url string) alertsResponse {
	t.Helper()
	rec := getMux(t, h, url)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s = %d: %s", url, rec.Code, rec.Body)
	}
	var out alertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// The acceptance test for alert dedup: a quarter load fires alerts
// once; re-decoding the same bytes (Save invalidates the resident
// entry, the next load re-fires OnLoad) fires nothing new.
func TestWatchAlertsFireOnceAndCursor(t *testing.T) {
	h, ss, _, _ := watchStoreHandler(t, tempStoreDir(t, 1), "")

	if rec := postJSON(t, h, "/api/watchlists",
		`{"user":"alice","drugs":["aspirin"]}`); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d", rec.Code)
	}
	// First quarter load evaluates and alerts on ASPIRIN+WARFARIN.
	if rec := getMux(t, h, "/api/signals"); rec.Code != http.StatusOK {
		t.Fatalf("load = %d", rec.Code)
	}
	got := getAlerts(t, h, "/api/alerts/alice")
	if len(got.Alerts) == 0 {
		t.Fatal("no alerts after first quarter load")
	}
	first := len(got.Alerts)
	a := got.Alerts[0]
	if a.Kind != "signal" || a.Quarter != "2014Q1" || !strings.Contains(a.SignalKey, "ASPIRIN") {
		t.Fatalf("alert = %+v", a)
	}
	if got.NextSince != got.Alerts[first-1].Seq {
		t.Fatalf("next_since = %d, last seq %d", got.NextSince, got.Alerts[first-1].Seq)
	}

	// Cursor: polling from next_since returns nothing and echoes the
	// cursor back.
	again := getAlerts(t, h, "/api/alerts/alice?since="+strings.TrimSpace(jsonUint(got.NextSince)))
	if len(again.Alerts) != 0 || again.NextSince != got.NextSince {
		t.Fatalf("cursor poll = %+v", again)
	}

	// Re-load the same quarter: Save drops the resident entry, the
	// next load re-decodes and re-evaluates — fingerprints unchanged,
	// zero duplicate alerts.
	a2, err := ss.reg.Load("2014Q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.reg.Save("2014Q1", a2); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.reg.Load("2014Q1"); err != nil {
		t.Fatal(err)
	}
	after := getAlerts(t, h, "/api/alerts/alice")
	if len(after.Alerts) != first {
		t.Fatalf("re-load duplicated alerts: %d -> %d", first, len(after.Alerts))
	}

	// Bad cursor values are 400s.
	if rec := getMux(t, h, "/api/alerts/alice?since=banana"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad since = %d", rec.Code)
	}
	if rec := getMux(t, h, "/api/alerts/alice?n=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad n = %d", rec.Code)
	}
}

func jsonUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// Watchlists survive a restart via the snapshot file, and the ID
// counter resumes past persisted lists.
func TestWatchlistPersistenceAcrossRestart(t *testing.T) {
	dir := tempStoreDir(t, 1)
	file := filepath.Join(t.TempDir(), "watchlists.mrwl")

	h, _, _, _ := watchStoreHandler(t, dir, file)
	rec := postJSON(t, h, "/api/watchlists", `{"user":"alice","drugs":["aspirin"]}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d", rec.Code)
	}
	var created watch.Watchlist
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}

	h2, _, ws2, _ := watchStoreHandler(t, dir, file)
	if rec := getMux(t, h2, "/api/watchlists/"+created.ID); rec.Code != http.StatusOK {
		t.Fatalf("restarted get = %d", rec.Code)
	}
	if ws2.ix.Len() != 1 {
		t.Fatalf("restarted index has %d lists", ws2.ix.Len())
	}
	rec = postJSON(t, h2, "/api/watchlists", `{"user":"bob","drugs":["warfarin"]}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("post-restart create = %d", rec.Code)
	}
	var next watch.Watchlist
	if err := json.Unmarshal(rec.Body.Bytes(), &next); err != nil {
		t.Fatal(err)
	}
	if next.ID == created.ID {
		t.Fatalf("ID counter did not resume: %s reused", next.ID)
	}
}

// The maras_watch_* series reach /metrics and, once scraped, the
// /api/history surface.
func TestWatchMetricsAndHistory(t *testing.T) {
	reg := obs.NewRegistry()
	mw := obs.NewHTTPMetrics(reg, nil)
	alog := audit.NewLog(audit.LogOptions{Metrics: reg})
	auditor := &audit.Auditor{Log: alog, Metrics: reg}
	ws, err := newWatchStack(watchConfig{userCap: 3, feedCap: 16, budget: time.Second},
		knowledge.Builtin(), reg, auditor, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	alog.OnRecord(ws.ev.HandleAuditEvent)
	ss, err := newStoreServer(tempStoreDir(t, 1), nil, nil, obs.NewStoreMetrics(reg), auditor, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := &obs.Readiness{}
	ready.SetReady()
	hist := history.New(reg, history.Options{Interval: time.Second, Retention: time.Hour})
	eng := slo.NewEngine(hist, slo.Config{
		Objectives: slo.DefaultObjectives(0.995, 0, 0, 0),
		MinEvents:  1, Log: alog, Ready: ready, Metrics: reg,
	})
	hist.OnScrape(eng.Tick)
	slos := &sloStack{hist: hist, eng: eng}
	h := ss.routes(reg, mw, nil, ready, nil, slos, ws, nil, nil)

	if rec := postJSON(t, h, "/api/watchlists", `{"user":"alice","drugs":["aspirin"]}`); rec.Code != http.StatusCreated {
		t.Fatalf("create = %d", rec.Code)
	}
	if rec := getMux(t, h, "/api/signals"); rec.Code != http.StatusOK {
		t.Fatalf("load = %d", rec.Code)
	}
	hist.Scrape()

	metrics := getMux(t, h, "/metrics")
	for _, want := range []string{
		"maras_watch_lists 1",
		"maras_watch_evaluations_total 1",
		"maras_watch_alerts_total",
		"maras_watch_eval_seconds_bucket",
	} {
		if !strings.Contains(metrics.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec := getMux(t, h, "/api/history/maras_watch_alerts_total")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/history/maras_watch_alerts_total = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "maras_watch_alerts_total") {
		t.Fatalf("history body = %s", rec.Body)
	}

	// The watch stats endpoint rolls the same numbers up as JSON.
	var stats struct {
		Index watch.IndexStats `json:"index"`
		Eval  watch.EvalStats  `json:"eval"`
	}
	rec = getMux(t, h, "/api/watch/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Index.Lists != 1 || stats.Eval.Evaluations != 1 || stats.Eval.LastResult.Alerts == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// The alert feed negotiates gzip like the other operational JSON
// surfaces.
func TestWatchAlertsGzip(t *testing.T) {
	h, _, _, _ := watchStoreHandler(t, tempStoreDir(t, 1), "")
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/api/alerts/alice", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("code=%d encoding=%q", rec.Code, rec.Header().Get("Content-Encoding"))
	}
}
