package main

// Watchlist subscription & alerting endpoints (internal/watch):
//
//	POST   /api/watchlists          create a watchlist (201; 400 on
//	                                validation failure, 409 over the
//	                                per-user cap)
//	GET    /api/watchlists?user=U   list a user's watchlists
//	GET    /api/watchlists/{id}     fetch one watchlist
//	DELETE /api/watchlists/{id}     remove it (204; 404 unknown)
//	GET    /api/alerts/{user}       the user's alert feed; ?since=SEQ
//	                                resumes after a cursor, ?n= caps
//	                                the batch; next_since in the
//	                                response is the next cursor value
//	GET    /api/watch/stats         index/feed/evaluator counters
//
// Evaluation is event-driven: store mode evaluates every quarter as
// the registry cold-decodes it (store.RegistryOptions.OnLoad), mine
// mode evaluates the startup quarter once, and audit drift events
// reach the evaluator through audit.Log.OnRecord. Watchlists persist
// to a snapshot file (watch.SaveFile) on every mutation.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/obs/wide"
	"maras/internal/types"
	"maras/internal/watch"
)

// maxWatchlistBody bounds a POST /api/watchlists body; a valid list
// (two bounded term sets plus thresholds) is well under this.
const maxWatchlistBody = 64 << 10

// watchConfig carries the -watch-* flags into newWatchStack.
type watchConfig struct {
	file    string // "" = in-memory only
	userCap int
	feedCap int
	budget  time.Duration
}

// watchStack bundles the watch subsystem as wired into the server:
// index, feeds, evaluator, metrics, persistence, and the known-drug
// vocabulary used to validate new lists. A nil *watchStack disables
// the subsystem (routes unregistered, hooks no-ops) — tests that do
// not care about watchlists pass nil.
type watchStack struct {
	ix     *watch.Index
	feeds  *watch.Feeds
	ev     *watch.Evaluator
	met    *watch.Metrics
	logger *slog.Logger

	file    string
	userCap int

	// mu serializes mutations (create/delete + persist + ID counter).
	mu     sync.Mutex
	nextID int

	// drugMu guards drugs, the union of drug names seen in loaded
	// quarters. While empty (no quarter loaded yet) drug validation is
	// skipped; once populated, creating a list watching a drug the
	// store has never seen is a 400.
	drugMu sync.RWMutex
	drugs  map[string]bool
}

// newWatchStack loads any persisted watchlists and wires the
// evaluator. auditor may be nil (no slow-eval events); reg may be nil
// (no metrics); events may be nil (no wide events per evaluation).
func newWatchStack(cfg watchConfig, kb *knowledge.Base, reg *obs.Registry, auditor *audit.Auditor, logger *slog.Logger, events *wide.Ring) (*watchStack, error) {
	ws := &watchStack{
		ix:      watch.NewIndex(),
		feeds:   watch.NewFeeds(cfg.feedCap),
		met:     watch.NewMetrics(reg),
		logger:  logger,
		file:    cfg.file,
		userCap: cfg.userCap,
		drugs:   map[string]bool{},
	}
	if cfg.file != "" {
		lists, err := watch.LoadFile(cfg.file)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing persisted yet.
		case err != nil:
			return nil, fmt.Errorf("load watchlists: %w", err)
		default:
			for _, w := range lists {
				if err := ws.ix.Add(w); err != nil {
					return nil, fmt.Errorf("load watchlists: %w", err)
				}
				if n, ok := watchIDSeq(w.ID); ok && n > ws.nextID {
					ws.nextID = n
				}
			}
		}
	}
	ws.ev = watch.NewEvaluator(watch.Options{
		Index:     ws.ix,
		Feeds:     ws.feeds,
		Knowledge: kb,
		Metrics:   ws.met,
		Auditor:   auditor,
		Budget:    cfg.budget,
		Wide:      events,
	})
	ws.met.SyncIndex(ws.ix.Stats())
	return ws, nil
}

// watchIDSeq parses the numeric suffix of a generated "wl-N" ID so
// the counter resumes past persisted lists.
func watchIDSeq(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "wl-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func (ws *watchStack) log() *slog.Logger {
	if ws != nil && ws.logger != nil {
		return ws.logger
	}
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// register mounts the watch routes behind the shared middleware/
// bulkhead wrapper. All the JSON surfaces negotiate gzip — alert
// feeds, watchlist listings, and the stats dump are repetitive JSON
// that compresses an order of magnitude for polling clients. (POST
// and DELETE responses are tiny; wrapping the whole route is still
// correct because GzipHandler only engages per-request on
// Accept-Encoding.)
func (ws *watchStack) register(mux *http.ServeMux, mw *obs.HTTPMetrics, app func(http.HandlerFunc) http.Handler) {
	if ws == nil {
		return
	}
	mw.Handle(mux, "/api/watchlists", obs.GzipHandler(app(ws.handleWatchlists)))
	mw.Handle(mux, "/api/watchlists/", obs.GzipHandler(app(ws.handleWatchlistByID)))
	mw.Handle(mux, "/api/alerts/", obs.GzipHandler(app(ws.handleAlerts)))
	mw.Handle(mux, "/api/watch/stats", obs.GzipHandler(app(ws.handleWatchStats)))
}

// onQuarterLoaded is the store registry's OnLoad hook: every cold
// decode refreshes the drug vocabulary and runs a watch evaluation.
// Nil-receiver safe so newStoreServer can wire it unconditionally.
func (ws *watchStack) onQuarterLoaded(ctx context.Context, label string, a *core.Analysis) {
	if ws == nil {
		return
	}
	ws.noteDrugs(a)
	res := ws.ev.EvaluateAnalysis(ctx, label, a)
	ws.log().Info("watch evaluation", "quarter", label, "signals", res.Signals,
		"changed", res.Changed, "alerts", res.Alerts,
		"duration_ms", fmt.Sprintf("%.2f", res.DurationMS))
}

// noteDrugs unions the analysis' drug vocabulary into the known-drug
// set used to validate new watchlists.
func (ws *watchStack) noteDrugs(a *core.Analysis) {
	dict := a.Dict()
	if dict == nil {
		return
	}
	ws.drugMu.Lock()
	for i := 0; i < dict.Len(); i++ {
		it := types.Item(i)
		if dict.IsDrug(it) {
			ws.drugs[strings.ToUpper(dict.Name(it))] = true
		}
	}
	ws.drugMu.Unlock()
}

// unknownDrug returns the first watched drug absent from the known
// vocabulary ("" when all pass, or when no quarter has populated the
// vocabulary yet).
func (ws *watchStack) unknownDrug(drugs []string) string {
	ws.drugMu.RLock()
	defer ws.drugMu.RUnlock()
	if len(ws.drugs) == 0 {
		return ""
	}
	for _, d := range drugs {
		if !ws.drugs[d] {
			return d
		}
	}
	return ""
}

// persistLocked snapshots the index to the watch file. Best-effort:
// the in-memory state is already live, so a write failure is logged
// and surfaced to operators rather than failing the request.
// Caller holds ws.mu.
func (ws *watchStack) persistLocked() {
	if ws.file == "" {
		return
	}
	if err := watch.SaveFile(ws.file, ws.ix.All()); err != nil {
		ws.log().Error("persist watchlists", "file", ws.file, "err", err)
	}
}

func (ws *watchStack) writeJSON(w http.ResponseWriter, status int, what string, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		ws.log().Error("watch encode", "what", what, "err", err)
		http.Error(w, "internal encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (ws *watchStack) handleWatchlists(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		ws.createWatchlist(w, r)
	case http.MethodGet:
		ws.listWatchlists(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (ws *watchStack) createWatchlist(w http.ResponseWriter, r *http.Request) {
	var wl watch.Watchlist
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxWatchlistBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wl); err != nil {
		http.Error(w, "bad watchlist JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Server-assigned fields win over anything the client sent.
	wl.ID = ""
	wl.CreatedAt = time.Now().UTC()
	if err := wl.Normalize(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if d := ws.unknownDrug(wl.Drugs); d != "" {
		http.Error(w, fmt.Sprintf("unknown drug %q: not present in any loaded quarter", d),
			http.StatusBadRequest)
		return
	}
	obs.ActiveSpan(r.Context()).SetAttr("user", wl.User)

	ws.mu.Lock()
	if ws.ix.UserCount(wl.User) >= ws.userCap {
		ws.mu.Unlock()
		http.Error(w, fmt.Sprintf("user %q is at the watchlist cap (%d)", wl.User, ws.userCap),
			http.StatusConflict)
		return
	}
	ws.nextID++
	wl.ID = "wl-" + strconv.Itoa(ws.nextID)
	if err := ws.ix.Add(&wl); err != nil {
		ws.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ws.persistLocked()
	ws.mu.Unlock()

	ws.met.SyncIndex(ws.ix.Stats())
	ws.log().Info("watchlist created", "id", wl.ID, "user", wl.User,
		"drugs", len(wl.Drugs), "reactions", len(wl.Reactions))
	ws.writeJSON(w, http.StatusCreated, "watchlist", &wl)
}

func (ws *watchStack) listWatchlists(w http.ResponseWriter, r *http.Request) {
	user := strings.TrimSpace(r.URL.Query().Get("user"))
	if user == "" {
		http.Error(w, "usage: /api/watchlists?user=USER", http.StatusBadRequest)
		return
	}
	obs.ActiveSpan(r.Context()).SetAttr("user", user)
	lists := ws.ix.ByUser(user)
	ws.writeJSON(w, http.StatusOK, "watchlists", struct {
		User       string             `json:"user"`
		Watchlists []*watch.Watchlist `json:"watchlists"`
	}{User: user, Watchlists: lists})
}

func (ws *watchStack) handleWatchlistByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/api/watchlists/"), "/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	switch r.Method {
	case http.MethodGet:
		wl, ok := ws.ix.Get(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		ws.writeJSON(w, http.StatusOK, "watchlist", wl)
	case http.MethodDelete:
		ws.mu.Lock()
		removed := ws.ix.Remove(id)
		if removed {
			ws.persistLocked()
		}
		ws.mu.Unlock()
		if !removed {
			http.NotFound(w, r)
			return
		}
		ws.met.SyncIndex(ws.ix.Stats())
		ws.log().Info("watchlist deleted", "id", id)
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleAlerts serves /api/alerts/{user}?since=SEQ&n=N: the user's
// retained alerts after the cursor, oldest first. next_since echoes
// the highest sequence returned (or the request cursor when nothing
// new), so clients poll with ?since=<next_since>.
func (ws *watchStack) handleAlerts(w http.ResponseWriter, r *http.Request) {
	user := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/api/alerts/"), "/")
	if user == "" || strings.Contains(user, "/") {
		http.Error(w, "usage: /api/alerts/USER?since=SEQ", http.StatusBadRequest)
		return
	}
	obs.ActiveSpan(r.Context()).SetAttr("user", user)
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "since must be a non-negative integer", http.StatusBadRequest)
			return
		}
		since = v
	}
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	alerts := ws.feeds.Since(user, since, n)
	next := since
	if len(alerts) > 0 {
		next = alerts[len(alerts)-1].Seq
	}
	if alerts == nil {
		alerts = []watch.Alert{}
	}
	ws.writeJSON(w, http.StatusOK, "alerts", struct {
		User      string        `json:"user"`
		Since     uint64        `json:"since"`
		NextSince uint64        `json:"next_since"`
		Alerts    []watch.Alert `json:"alerts"`
	}{User: user, Since: since, NextSince: next, Alerts: alerts})
}

func (ws *watchStack) handleWatchStats(w http.ResponseWriter, r *http.Request) {
	ws.writeJSON(w, http.StatusOK, "watch stats", struct {
		Index watch.IndexStats `json:"index"`
		Feeds watch.FeedStats  `json:"feeds"`
		Eval  watch.EvalStats  `json:"eval"`
	}{Index: ws.ix.Stats(), Feeds: ws.feeds.Stats(), Eval: ws.ev.Stats()})
}
