// Package maras is the public API of the MARAS multi-drug adverse
// reaction analytics system, a from-scratch Go implementation of the
// methodology in "MARAS: Multi-Drug Adverse Reactions Analytics
// System" (Kakar, 2016; demonstrated at ICDE as the MeDIAR/MARAS
// line of work).
//
// MARAS detects adverse drug reactions caused by drug combinations
// (drug-drug interactions) from spontaneous adverse-event reports:
//
//   - reports are cleaned (misspelling snapping, duplicate removal)
//     and abstracted to drug/reaction transactions;
//   - closed drug→ADR association rules are mined with FP-Growth,
//     eliminating spurious partial rules (Lemma 3.4.2 of the paper);
//   - each multi-drug rule is grouped with its contextual sub-rules
//     into a Multi-level Contextual Association Cluster (MCAC);
//   - clusters are ranked by the exclusiveness measure — high when
//     the reactions follow the full combination but not any subset —
//     and validated against a curated interaction knowledge base.
//
// # Quick start
//
//	reports := []maras.Report{
//	    {ID: "1", Drugs: []string{"aspirin", "warfarin"}, Reactions: []string{"haemorrhage"}},
//	    // ... many more ...
//	}
//	analysis, err := maras.Analyze(reports, maras.DefaultOptions())
//	if err != nil { ... }
//	for _, sig := range analysis.Signals {
//	    fmt.Println(sig.Rank, sig.Drugs, "=>", sig.Reactions, sig.Score)
//	}
//
// Deeper integrations (FAERS file ingestion, SVG glyph rendering, the
// experiment harness) live in the cmd/ binaries; their building
// blocks are internal packages by design — the supported surface is
// this package plus the command-line tools.
package maras

import (
	"errors"
	"fmt"
	"time"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/rank"
)

// Report is one adverse-event report: the drugs a patient took and
// the reactions observed. Names are free-form; the pipeline
// normalizes case, strips dosage noise, and snaps rare misspellings
// to frequent vocabulary entries.
type Report struct {
	// ID identifies the report (FAERS primaryid or any unique string).
	ID string
	// Case optionally identifies the underlying case; reports sharing
	// a Case are treated as duplicates and collapsed.
	Case string
	// Expedited marks manufacturer expedited (serious) reports. When
	// Options.ExpeditedOnly is set, only expedited reports are mined,
	// matching the paper's FAERS selection.
	Expedited bool
	Drugs     []string
	Reactions []string
}

// RankingMethod selects how signals are ordered.
type RankingMethod string

const (
	// RankExclusiveness ranks by the paper's exclusiveness measure
	// over confidence (the MARAS default).
	RankExclusiveness RankingMethod = "exclusiveness"
	// RankExclusivenessLift ranks by exclusiveness over lift,
	// favoring rarer reactions.
	RankExclusivenessLift RankingMethod = "exclusiveness-lift"
	// RankConfidence ranks by raw rule confidence (baseline).
	RankConfidence RankingMethod = "confidence"
	// RankLift ranks by raw rule lift (baseline).
	RankLift RankingMethod = "lift"
	// RankImprovement ranks by Bayardo's improvement (baseline).
	RankImprovement RankingMethod = "improvement"
)

// Options tunes an analysis. Zero values fall back to defaults; start
// from DefaultOptions.
type Options struct {
	// MinSupport is the minimum number of reports a drug-reaction
	// combination needs (default 4). Lower catches rarer interactions
	// at the cost of more coincidental rules.
	MinSupport int
	// MinDrugs/MaxDrugs bound the combination size (defaults 2/5).
	MinDrugs int
	MaxDrugs int
	// Method is the ranking strategy (default RankExclusiveness).
	Method RankingMethod
	// Theta is the exclusiveness variation penalty θ ∈ [0,1]
	// (default 0.5).
	Theta float64
	// TopK bounds the returned signals (default 100; 0 = all).
	TopK int
	// ExpeditedOnly mines only expedited reports (default false for
	// the public API — callers often pre-filter).
	ExpeditedOnly bool
	// SpellCorrect enables misspelling snapping (default true).
	SpellCorrect bool
	// DropDuplicates enables duplicate-report removal (default true).
	DropDuplicates bool
	// CollectTrace records a per-stage execution trace of the run
	// (wall time, allocation volume, and domain counters per pipeline
	// stage) into Analysis.Trace. Off by default; the disabled path
	// costs nothing.
	CollectTrace bool
}

// DefaultOptions returns the paper-shaped defaults.
func DefaultOptions() Options {
	return Options{
		MinSupport:     4,
		MinDrugs:       2,
		MaxDrugs:       5,
		Method:         RankExclusiveness,
		Theta:          0.5,
		TopK:           100,
		SpellCorrect:   true,
		DropDuplicates: true,
	}
}

// Signal is one ranked drug-drug-interaction candidate.
type Signal struct {
	// Rank is the 1-based position under the chosen method.
	Rank int
	// Score is the method's score (exclusiveness by default).
	Score float64
	// Drugs is the interacting combination (cleaned names, sorted).
	Drugs []string
	// Reactions are the adverse reactions associated with it.
	Reactions []string
	// Support is the number of reports containing all drugs and all
	// reactions; Confidence and Lift are the target rule's measures.
	Support    int
	Confidence float64
	Lift       float64
	// Context lists the contextual sub-rules: how strongly each
	// proper subset of the drugs associates with the same reactions.
	Context []ContextRule
	// Known describes the matching curated interaction; empty Source
	// means the combination is not in the knowledge base (a candidate
	// novel interaction).
	Known *KnownInteraction
	// SeriousShare is the fraction of supporting reports marked with
	// a severe outcome (always 0 unless reports carry outcome data
	// via the FAERS pipeline).
	SeriousShare float64
	// OrganClasses are the MedDRA-style system organ classes of the
	// signal's reactions (deduplicated).
	OrganClasses []string
	// ReportIDs are the IDs of the supporting reports.
	ReportIDs []string
}

// ContextRule is one contextual sub-rule of a signal.
type ContextRule struct {
	Drugs      []string
	Confidence float64
	Lift       float64
	Support    int
}

// KnownInteraction describes a curated (already documented)
// interaction matching a signal.
type KnownInteraction struct {
	Severity  string
	Mechanism string
	Source    string
}

// StageTrace is one pipeline stage of an analysis run, recorded when
// Options.CollectTrace is set: the stage name (see StageNames for
// the order), its wall time and allocation volume, and its domain
// counters (reports_in, frequent_itemsets, rules_kept, ...).
type StageTrace struct {
	Stage      string
	Duration   time.Duration
	AllocBytes uint64
	Counters   map[string]int64
}

// StageNames returns the pipeline stage names in execution order, as
// they appear in Analysis.Trace.
func StageNames() []string { return core.StageOrder() }

// Analysis is a completed run.
type Analysis struct {
	// Signals are the ranked interaction candidates, best first.
	Signals []Signal
	// Reports / Drugs / Reactions summarize the cleaned dataset
	// (Table 5.1-style statistics).
	Reports   int
	Drugs     int
	Reactions int
	// DuplicatesRemoved and SpellingsFixed report cleaning activity.
	DuplicatesRemoved int
	SpellingsFixed    int
	// Trace holds the per-stage execution trace when
	// Options.CollectTrace was set, nil otherwise.
	Trace []StageTrace
}

// Analyze runs the MARAS pipeline over reports.
func Analyze(reports []Report, opts Options) (*Analysis, error) {
	if len(reports) == 0 {
		return nil, errors.New("maras: no reports")
	}
	copts, err := toCoreOptions(opts)
	if err != nil {
		return nil, err
	}
	var tracer *obs.Tracer
	if opts.CollectTrace {
		tracer = obs.NewTracer(nil)
		copts.Tracer = tracer
	}
	raw := make([]faers.Report, len(reports))
	for i, r := range reports {
		code := "DIR"
		if r.Expedited {
			code = "EXP"
		}
		id := r.ID
		if id == "" {
			id = fmt.Sprintf("report-%d", i+1)
		}
		raw[i] = faers.Report{
			PrimaryID:  id,
			CaseID:     r.Case,
			ReportCode: code,
			Drugs:      r.Drugs,
			Reactions:  r.Reactions,
		}
	}
	a, err := core.Run(raw, copts)
	if err != nil {
		return nil, err
	}
	out := fromCore(a)
	if tracer != nil {
		for _, r := range tracer.Records() {
			out.Trace = append(out.Trace, StageTrace{
				Stage:      r.Name,
				Duration:   r.Duration(),
				AllocBytes: r.AllocBytes,
				Counters:   r.Counters,
			})
		}
	}
	return out, nil
}

func toCoreOptions(o Options) (core.Options, error) {
	c := core.NewOptions()
	if o.MinSupport > 0 {
		c.MinSupport = o.MinSupport
	}
	if o.MinDrugs > 0 {
		c.MinDrugs = o.MinDrugs
	}
	if o.MaxDrugs > 0 {
		c.MaxDrugs = o.MaxDrugs
	}
	if o.Theta != 0 {
		c.Theta = o.Theta
	}
	c.TopK = o.TopK
	c.ExpeditedOnly = o.ExpeditedOnly
	c.Cleaning.SpellCorrect = o.SpellCorrect
	c.Cleaning.DropDuplicateReports = o.DropDuplicates
	switch o.Method {
	case "", RankExclusiveness:
		c.Method = rank.ByExclusivenessConf
	case RankExclusivenessLift:
		c.Method = rank.ByExclusivenessLift
	case RankConfidence:
		c.Method = rank.ByConfidence
	case RankLift:
		c.Method = rank.ByLift
	case RankImprovement:
		c.Method = rank.ByImprovement
	default:
		return core.Options{}, fmt.Errorf("maras: unknown ranking method %q", o.Method)
	}
	return c, nil
}

func fromCore(a *core.Analysis) *Analysis {
	out := &Analysis{
		Reports:           a.Stats.Reports,
		Drugs:             a.Stats.Drugs,
		Reactions:         a.Stats.Reactions,
		DuplicatesRemoved: a.Cleaning.DuplicateReports,
		SpellingsFixed:    a.Cleaning.DrugSpellingsFixed + a.Cleaning.ReacSpellingsFixed,
	}
	dict := a.Dict()
	out.Signals = make([]Signal, len(a.Signals))
	for i, s := range a.Signals {
		sig := Signal{
			Rank:         s.Rank,
			Score:        s.Score,
			Drugs:        s.Drugs,
			Reactions:    s.Reactions,
			Support:      s.Support,
			Confidence:   s.Confidence,
			Lift:         s.Lift,
			SeriousShare: s.SeriousShare,
			ReportIDs:    s.ReportIDs,
		}
		for _, soc := range s.SOCs {
			sig.OrganClasses = append(sig.OrganClasses, string(soc))
		}
		for _, r := range s.Cluster.ContextRules() {
			sig.Context = append(sig.Context, ContextRule{
				Drugs:      dict.SortedNames(r.Antecedent),
				Confidence: r.Confidence,
				Lift:       r.Lift,
				Support:    r.Support,
			})
		}
		if s.Known != nil {
			sig.Known = &KnownInteraction{
				Severity:  s.Known.Severity.String(),
				Mechanism: s.Known.Mechanism,
				Source:    s.Known.Source,
			}
		}
		out.Signals[i] = sig
	}
	return out
}

// Known reports whether the signal matches a curated interaction.
func (s *Signal) IsKnown() bool { return s.Known != nil }

// KnownInteractions returns the embedded curated knowledge base as
// (drug combination, reactions, severity, source) rows — useful for
// seeding test corpora and for UI legends.
func KnownInteractions() []struct {
	Drugs     []string
	Reactions []string
	Severity  string
	Source    string
} {
	all := knowledge.Builtin().All()
	out := make([]struct {
		Drugs     []string
		Reactions []string
		Severity  string
		Source    string
	}, len(all))
	for i, e := range all {
		out[i].Drugs = e.Drugs
		out[i].Reactions = e.Reactions
		out[i].Severity = e.Severity.String()
		out[i].Source = e.Source
	}
	return out
}
