package maras_test

import (
	"fmt"

	"maras"
)

// ExampleAnalyze demonstrates the minimal end-to-end flow: feed
// reports in, read ranked interaction signals out.
func ExampleAnalyze() {
	var reports []maras.Report
	add := func(drugs []string, reactions ...string) {
		reports = append(reports, maras.Report{
			ID:    fmt.Sprintf("r%03d", len(reports)+1),
			Drugs: drugs, Reactions: reactions,
		})
	}
	for i := 0; i < 10; i++ {
		add([]string{"aspirin", "warfarin"}, "haemorrhage")
	}
	for i := 0; i < 25; i++ {
		add([]string{"aspirin"}, "nausea")
		add([]string{"warfarin"}, "dizziness")
	}

	analysis, err := maras.Analyze(reports, maras.DefaultOptions())
	if err != nil {
		panic(err)
	}
	top := analysis.Signals[0]
	fmt.Printf("%v => %v\n", top.Drugs, top.Reactions)
	fmt.Printf("support %d, confidence %.2f, known: %v\n", top.Support, top.Confidence, top.IsKnown())
	// Output:
	// [ASPIRIN WARFARIN] => [Haemorrhage]
	// support 10, confidence 1.00, known: true
}

// ExampleAnalyze_context shows how a signal's contextual sub-rules
// expose whether the combination — not a single drug — drives the
// reactions.
func ExampleAnalyze_context() {
	var reports []maras.Report
	add := func(id string, drugs []string, reactions ...string) {
		reports = append(reports, maras.Report{ID: id, Drugs: drugs, Reactions: reactions})
	}
	for i := 0; i < 8; i++ {
		add(fmt.Sprintf("i%d", i), []string{"drugx", "drugy"}, "bad reaction")
	}
	for i := 0; i < 20; i++ {
		add(fmt.Sprintf("x%d", i), []string{"drugx"}, "mild reaction")
		add(fmt.Sprintf("y%d", i), []string{"drugy"}, "mild reaction")
	}

	opts := maras.DefaultOptions()
	opts.MinSupport = 4
	analysis, err := maras.Analyze(reports, opts)
	if err != nil {
		panic(err)
	}
	top := analysis.Signals[0]
	for _, ctx := range top.Context {
		fmt.Printf("%v alone: confidence %.2f\n", ctx.Drugs, ctx.Confidence)
	}
	fmt.Printf("combination: confidence %.2f\n", top.Confidence)
	// Output:
	// [DRUGX] alone: confidence 0.29
	// [DRUGY] alone: confidence 0.29
	// combination: confidence 1.00
}
