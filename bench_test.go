// Benchmarks regenerating every table and figure of the paper's
// evaluation (one per artifact), plus the performance benches for the
// engine components. Workloads are synthetic quarters with planted
// ground truth; sizes are scaled to keep a full -bench=. run in
// minutes on a laptop. The maras-bench command runs the same
// experiments with full reporting (and -paper-scale for the published
// sizes).
package maras_test

import (
	"fmt"
	"testing"

	"maras/internal/apriori"
	"maras/internal/assoc"
	"maras/internal/cleaning"
	"maras/internal/core"
	"maras/internal/ebgm"
	"maras/internal/eval"
	"maras/internal/faers"
	"maras/internal/fpgrowth"
	"maras/internal/glyph"
	"maras/internal/lcm"
	"maras/internal/mcac"
	"maras/internal/rank"
	"maras/internal/studysim"
	"maras/internal/synth"
	"maras/internal/trend"
	"maras/internal/txdb"
)

const (
	benchReports = 6000
	benchMinSup  = 6
)

// benchQuarter caches one synthetic quarter across benchmarks.
var benchQuarterCache *faers.Quarter
var benchTruthCache *synth.GroundTruth

func benchQuarter(b *testing.B) (*faers.Quarter, *synth.GroundTruth) {
	b.Helper()
	if benchQuarterCache == nil {
		cfg := synth.DefaultConfig("2014Q1", 1)
		cfg.Reports = benchReports
		q, gt, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchQuarterCache, benchTruthCache = q, gt
	}
	return benchQuarterCache, benchTruthCache
}

func benchDB(b *testing.B) *txdb.DB {
	b.Helper()
	q, _ := benchQuarter(b)
	db, _, err := core.EncodeReports(q.Reports(), core.NewOptions())
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkTable51_QuarterStats regenerates Table 5.1: per-quarter
// dataset statistics after cleaning.
func BenchmarkTable51_QuarterStats(b *testing.B) {
	q, _ := benchQuarter(b)
	reports := q.Reports()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cleaned, _ := cleaning.Clean(reports, cleaning.Defaults())
		exp := faers.FilterExpedited(cleaned)
		if len(exp) == 0 {
			b.Fatal("no expedited reports")
		}
	}
}

// BenchmarkFig51_RuleReduction regenerates Fig 5.1: the Total /
// Filtered / MCACs counts for one quarter.
func BenchmarkFig51_RuleReduction(b *testing.B) {
	q, _ := benchQuarter(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.NewOptions()
		opts.MinSupport = benchMinSup
		opts.CountRules = true
		a, err := core.RunQuarter(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		c := a.Counts
		if !(c.TotalRules >= c.FilteredRules && c.FilteredRules >= c.MCACs && c.MCACs > 0) {
			b.Fatalf("reduction shape violated: %+v", c)
		}
	}
}

// BenchmarkTable52_TopK regenerates Table 5.2: the top-5 lists under
// the four ranking methods.
func BenchmarkTable52_TopK(b *testing.B) {
	q, _ := benchQuarter(b)
	methods := []rank.Method{
		rank.ByConfidence, rank.ByLift, rank.ByExclusivenessConf, rank.ByExclusivenessLift,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range methods {
			opts := core.NewOptions()
			opts.MinSupport = benchMinSup
			opts.Method = m
			opts.TopK = 5
			a, err := core.RunQuarter(q, opts)
			if err != nil {
				b.Fatal(err)
			}
			if len(a.Signals) == 0 {
				b.Fatal("no signals")
			}
		}
	}
}

// BenchmarkCaseStudies regenerates the Section 5.4 case-study
// evaluation: rank every planted interaction under exclusiveness.
func BenchmarkCaseStudies(b *testing.B) {
	q, gt := benchQuarter(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.NewOptions()
		opts.MinSupport = benchMinSup
		opts.TopK = 0
		a, err := core.RunQuarter(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		keys := make([]string, len(a.Signals))
		for j := range a.Signals {
			keys[j] = a.Signals[j].Key()
		}
		res := eval.Score(keys, gt.Keys())
		if res.FirstHitRank == 0 {
			b.Fatal("no planted interaction recovered")
		}
	}
}

// BenchmarkFig52_UserStudy regenerates Fig 5.2: the simulated user
// study over the full question battery.
func BenchmarkFig52_UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := studysim.Run(studysim.DefaultConfig(int64(i)))
		if len(res) != 6 {
			b.Fatal("battery incomplete")
		}
	}
}

// BenchmarkFigs4_GlyphRendering regenerates the Chapter 4 visuals:
// glyph, zoom, panorama and bar-chart SVGs for the top signals.
func BenchmarkFigs4_GlyphRendering(b *testing.B) {
	q, _ := benchQuarter(b)
	opts := core.NewOptions()
	opts.MinSupport = benchMinSup
	opts.TopK = 20
	a, err := core.RunQuarter(q, opts)
	if err != nil {
		b.Fatal(err)
	}
	if len(a.Signals) == 0 {
		b.Fatal("no signals")
	}
	entries := make([]glyph.PanoramaEntry, len(a.Signals))
	for i, s := range a.Signals {
		entries[i] = glyph.PanoramaEntry{Cluster: s.Cluster, Score: s.Score}
	}
	dict := a.Dict()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top := a.Signals[0]
		if len(glyph.Contextual(top.Cluster, glyph.Options{Dict: dict})) == 0 ||
			len(glyph.Zoom(top.Cluster, dict)) == 0 ||
			len(glyph.BarChart(top.Cluster, glyph.Options{Dict: dict})) == 0 ||
			len(glyph.Panorama(entries, 5, glyph.Options{Dict: dict})) == 0 {
			b.Fatal("empty rendering")
		}
	}
}

// --- engine performance benches (P1) ---

// BenchmarkMineFPGrowth measures the FP-Growth closed-itemset path.
func BenchmarkMineFPGrowth(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: benchMinSup, MaxLen: 10})
		if len(sets) == 0 {
			b.Fatal("nothing mined")
		}
	}
}

// BenchmarkMineLCM measures the LCM closed-itemset engine on the
// same workload (unbounded length — LCM enumerates only closed sets,
// so it needs no safety cap).
func BenchmarkMineLCM(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := lcm.MineClosed(db, lcm.Options{MinSupport: benchMinSup})
		if len(sets) == 0 {
			b.Fatal("nothing mined")
		}
	}
}

// BenchmarkMineFPGrowthUnbounded is the FP-Growth closed path without
// the length cap, the apples-to-apples comparison for BenchmarkMineLCM.
func BenchmarkMineFPGrowthUnbounded(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: benchMinSup})
		if len(sets) == 0 {
			b.Fatal("nothing mined")
		}
	}
}

// BenchmarkMineApriori measures the Apriori baseline on the same
// workload (frequent itemsets only; Apriori has no closed variant).
func BenchmarkMineApriori(b *testing.B) {
	db := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := apriori.Mine(db, apriori.Options{MinSupport: benchMinSup, MaxLen: 10})
		if len(sets) == 0 {
			b.Fatal("nothing mined")
		}
	}
}

// BenchmarkSupportQueries measures exact posting-list support lookups,
// the primitive behind contextual-rule evaluation.
func BenchmarkSupportQueries(b *testing.B) {
	db := benchDB(b)
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: benchMinSup, MaxLen: 10})
	if len(closed) == 0 {
		b.Fatal("nothing mined")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := closed[i%len(closed)]
		if db.Support(fs.Items) != fs.Support {
			b.Fatal("support mismatch")
		}
	}
}

// BenchmarkMCACConstruction measures cluster building over the full
// target rule set.
func BenchmarkMCACConstruction(b *testing.B) {
	db := benchDB(b)
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: benchMinSup, MaxLen: 10})
	targets := assoc.FromItemsets(db, closed, assoc.GenOptions{MinDrugs: 2, MaxDrugs: 5})
	if len(targets) == 0 {
		b.Fatal("no targets")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := mcac.BuildAll(db, targets)
		if len(clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkExclusivenessScoring measures ranking over built clusters.
func BenchmarkExclusivenessScoring(b *testing.B) {
	db := benchDB(b)
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: benchMinSup, MaxLen: 10})
	targets := assoc.FromItemsets(db, closed, assoc.GenOptions{MinDrugs: 2, MaxDrugs: 5})
	clusters := mcac.BuildAll(db, targets)
	if len(clusters) == 0 {
		b.Fatal("no clusters")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked := rank.Rank(clusters, rank.ByExclusivenessConf, rank.Options{Theta: 0.5})
		if len(ranked) == 0 {
			b.Fatal("no ranking")
		}
	}
}

// BenchmarkPipelineEndToEnd measures the full Run over one quarter.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	q, _ := benchQuarter(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := core.NewOptions()
		opts.MinSupport = benchMinSup
		a, err := core.RunQuarter(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Signals) == 0 {
			b.Fatal("no signals")
		}
	}
}

// BenchmarkTrendQuarters measures the surveillance extension: mining
// and trajectory assembly over four small quarters.
func BenchmarkTrendQuarters(b *testing.B) {
	var quarters []*faers.Quarter
	for i, label := range []string{"2014Q1", "2014Q2", "2014Q3", "2014Q4"} {
		cfg := synth.DefaultConfig(label, int64(i+1))
		cfg.Reports = 2500
		q, _, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		quarters = append(quarters, q)
	}
	opts := core.NewOptions()
	opts.MinSupport = benchMinSup
	opts.TopK = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := trend.Run(quarters, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Trajectories) == 0 {
			b.Fatal("no trajectories")
		}
	}
}

// BenchmarkEBGMFit measures the MGPS prior fit plus scoring over the
// candidate rule set.
func BenchmarkEBGMFit(b *testing.B) {
	db := benchDB(b)
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: benchMinSup, MaxLen: 10})
	targets := assoc.FromItemsets(db, closed, assoc.GenOptions{MinDrugs: 2, MaxDrugs: 5})
	n := float64(db.Len())
	obs := make([]ebgm.Observation, len(targets))
	for i := range targets {
		e := float64(targets[i].AntSupport) * float64(targets[i].ConSupport) / n
		if e <= 0 {
			e = 1e-9
		}
		obs[i] = ebgm.Observation{N: targets[i].Support, E: e}
	}
	if len(obs) == 0 {
		b.Fatal("no observations")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prior, _, err := ebgm.Fit(obs, ebgm.DefaultPrior())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ebgm.Evaluate(obs, prior); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures the synthetic FAERS generator itself.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := synth.DefaultConfig("2014Q1", int64(i))
		cfg.Reports = benchReports
		if _, _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCleaning measures the cleaning stage alone at varying
// misspelling pressure.
func BenchmarkCleaning(b *testing.B) {
	for _, rate := range []float64{0.0, 0.01, 0.05} {
		b.Run(fmt.Sprintf("misspell=%.2f", rate), func(b *testing.B) {
			cfg := synth.DefaultConfig("2014Q1", 5)
			cfg.Reports = benchReports
			cfg.MisspellRate = rate
			q, _, err := synth.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			reports := q.Reports()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _ := cleaning.Clean(reports, cleaning.Defaults())
				if len(out) == 0 {
					b.Fatal("everything cleaned away")
				}
			}
		})
	}
}
