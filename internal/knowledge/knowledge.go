// Package knowledge embeds a curated knowledge base of known
// drug-drug interactions, standing in for the online validation
// sources the paper consulted (Drugs.com, DrugBank, the WHO
// newsletter — Section 5.4). The pipeline uses it two ways: the
// synthetic generator plants these interactions as ground truth, and
// the evaluator validates top-ranked signals against it, flagging
// which discoveries are "already known" versus novel — the
// interestingness preference knob the paper describes.
package knowledge

import (
	"sort"
	"strings"
)

// Severity grades an interaction's clinical impact.
type Severity uint8

const (
	// Minor interactions alter drug effectiveness.
	Minor Severity = iota
	// Moderate interactions usually require monitoring.
	Moderate
	// Severe interactions are potentially fatal.
	Severe
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Minor:
		return "minor"
	case Moderate:
		return "moderate"
	case Severe:
		return "severe"
	default:
		return "unknown"
	}
}

// Interaction is one curated drug-drug interaction.
type Interaction struct {
	// Drugs are the interacting drug names, normalized upper-case.
	Drugs []string
	// Reactions are the adverse reactions the combination triggers.
	Reactions []string
	Severity  Severity
	// Mechanism is a one-line note of why the interaction occurs.
	Mechanism string
	// Source names the literature source the entry mirrors.
	Source string
}

// DrugKey returns the canonical identity of the drug combination:
// sorted, upper-cased names joined by "+". Empty names and duplicates
// (after normalization) are dropped, so "aspirin, ASPIRIN , WARFARIN"
// and "WARFARIN+ASPIRIN" name the same combination.
func DrugKey(drugs []string) string {
	ds := make([]string, 0, len(drugs))
	for _, d := range drugs {
		if n := strings.ToUpper(strings.TrimSpace(d)); n != "" {
			ds = append(ds, n)
		}
	}
	sort.Strings(ds)
	out := ds[:0]
	for i, d := range ds {
		if i == 0 || d != ds[i-1] {
			out = append(out, d)
		}
	}
	return strings.Join(out, "+")
}

// NormReaction canonicalizes a reaction term for matching: leading
// and trailing space trimmed, internal whitespace collapsed to single
// spaces, upper-cased. Reaction vocabulary arrives in mixed case
// ("Haemorrhage" from the pipeline, free-form from API clients), so
// every term comparison against the base goes through this one
// normalization instead of each caller reimplementing it.
func NormReaction(term string) string {
	return strings.ToUpper(strings.Join(strings.Fields(term), " "))
}

// Key returns the interaction's drug-combination key.
func (i *Interaction) Key() string { return DrugKey(i.Drugs) }

// Base is a queryable knowledge base.
type Base struct {
	byKey map[string]*Interaction
	// reacs holds each entry's reaction terms normalized via
	// NormReaction, keyed like byKey, so expectedness checks are a map
	// lookup instead of a scan with ad-hoc case folding.
	reacs map[string]map[string]bool
	all   []Interaction
}

// New builds a base from entries; later duplicates of a drug
// combination override earlier ones.
func New(entries []Interaction) *Base {
	b := &Base{
		byKey: make(map[string]*Interaction, len(entries)),
		reacs: make(map[string]map[string]bool, len(entries)),
	}
	b.all = make([]Interaction, len(entries))
	copy(b.all, entries)
	for i := range b.all {
		key := b.all[i].Key()
		b.byKey[key] = &b.all[i]
		set := make(map[string]bool, len(b.all[i].Reactions))
		for _, r := range b.all[i].Reactions {
			set[NormReaction(r)] = true
		}
		b.reacs[key] = set
	}
	return b
}

// Builtin returns the embedded curated base: the paper's validated
// case studies plus a set of well-documented interactions from the
// pharmacovigilance literature, enough to exercise planting and
// validation at realistic diversity.
func Builtin() *Base { return New(builtinEntries) }

// Lookup returns the interaction for the exact drug combination, or
// nil when the combination is not in the base.
func (b *Base) Lookup(drugs []string) *Interaction {
	return b.byKey[DrugKey(drugs)]
}

// Known reports whether the drug combination is a curated interaction.
func (b *Base) Known(drugs []string) bool { return b.Lookup(drugs) != nil }

// KnownReaction reports whether the curated entry for the drug
// combination lists term among its documented reactions. Matching is
// case- and whitespace-insensitive (NormReaction on both sides). A
// combination absent from the base reports false for every term —
// callers deciding "expectedness" should check Known separately to
// distinguish an unknown combination from a known one with a novel
// reaction.
func (b *Base) KnownReaction(drugs []string, term string) bool {
	set := b.reacs[DrugKey(drugs)]
	if set == nil {
		return false
	}
	return set[NormReaction(term)]
}

// All returns every entry, sorted by key for determinism.
func (b *Base) All() []Interaction {
	out := make([]Interaction, len(b.all))
	copy(out, b.all)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Len returns the number of entries.
func (b *Base) Len() int { return len(b.all) }

// builtinEntries: the three case studies of Section 5.4 first, then
// the Table 3.1 cluster, the introduction's motivating examples, and
// additional literature-documented interactions.
var builtinEntries = []Interaction{
	{
		Drugs:     []string{"IBUPROFEN", "METAMIZOLE"},
		Reactions: []string{"Acute renal failure"},
		Severity:  Severe,
		Mechanism: "dual NSAID nephrotoxicity; combined prostaglandin inhibition compromises renal perfusion",
		Source:    "WHO Pharmaceuticals Newsletter 2014 / VigiBase (Case I)",
	},
	{
		Drugs:     []string{"METHOTREXATE", "PROGRAF"},
		Reactions: []string{"Drug ineffective"},
		Severity:  Moderate,
		Mechanism: "additive nephrotoxicity; reduced clearance blunts therapeutic effect",
		Source:    "Drugs.com / DrugBank (Case II)",
	},
	{
		Drugs:     []string{"PREVACID", "NEXIUM"},
		Reactions: []string{"Osteoporosis"},
		Severity:  Moderate,
		Mechanism: "therapeutic duplication of proton pump inhibitors; chronic acid suppression impairs calcium absorption",
		Source:    "Drugs.com therapeutic duplication (Case III)",
	},
	{
		Drugs:     []string{"XOLAIR", "SINGULAIR", "PREDNISONE"},
		Reactions: []string{"Asthma"},
		Severity:  Moderate,
		Mechanism: "triple asthma-therapy cluster; combination marks refractory disease and paradoxical bronchospasm",
		Source:    "MCAC worked example (Table 3.1)",
	},
	{
		Drugs:     []string{"ASPIRIN", "WARFARIN"},
		Reactions: []string{"Haemorrhage"},
		Severity:  Severe,
		Mechanism: "antiplatelet effect plus anticoagulation; additive bleeding risk",
		Source:    "Chan 1995, Annals of Pharmacotherapy (introduction example)",
	},
	{
		Drugs:     []string{"ZOMETA", "PRILOSEC"},
		Reactions: []string{"Osteonecrosis of jaw", "Osteoarthritis"},
		Severity:  Severe,
		Mechanism: "bisphosphonate bone turnover suppression amplified by PPI-impaired calcium absorption",
		Source:    "introduction example (Section 1.1)",
	},
	{
		Drugs:     []string{"PAROXETINE", "PRAVASTATIN"},
		Reactions: []string{"Blood glucose increased"},
		Severity:  Moderate,
		Mechanism: "unexpected hyperglycemic interaction detected from adverse-event reports",
		Source:    "Tatonetti et al. 2011, Clin Pharmacol Ther",
	},
	{
		Drugs:     []string{"SIMVASTATIN", "AMIODARONE"},
		Reactions: []string{"Rhabdomyolysis"},
		Severity:  Severe,
		Mechanism: "CYP3A4 inhibition raises statin exposure; muscle toxicity",
		Source:    "FDA label warning",
	},
	{
		Drugs:     []string{"LISINOPRIL", "SPIRONOLACTONE"},
		Reactions: []string{"Hyperkalaemia"},
		Severity:  Severe,
		Mechanism: "ACE inhibition plus potassium-sparing diuresis; additive potassium retention",
		Source:    "widely documented class interaction",
	},
	{
		Drugs:     []string{"CLARITHROMYCIN", "COLCHICINE"},
		Reactions: []string{"Toxicity to various agents"},
		Severity:  Severe,
		Mechanism: "CYP3A4/P-gp inhibition causes colchicine accumulation",
		Source:    "published fatal case series",
	},
	{
		Drugs:     []string{"FLUOXETINE", "TRAMADOL"},
		Reactions: []string{"Serotonin syndrome"},
		Severity:  Severe,
		Mechanism: "dual serotonergic activity",
		Source:    "FDA label warning",
	},
	{
		Drugs:     []string{"DIGOXIN", "VERAPAMIL"},
		Reactions: []string{"Cardiac arrest", "Bradycardia"},
		Severity:  Severe,
		Mechanism: "P-gp inhibition raises digoxin levels; additive AV-node depression",
		Source:    "classic cardiology interaction",
	},
	{
		Drugs:     []string{"METFORMIN", "IOPAMIDOL"},
		Reactions: []string{"Lactic acidosis"},
		Severity:  Severe,
		Mechanism: "contrast-induced nephropathy impairs metformin clearance",
		Source:    "radiology contrast guidance",
	},
	{
		Drugs:     []string{"SILDENAFIL", "ISOSORBIDE MONONITRATE"},
		Reactions: []string{"Hypotension"},
		Severity:  Severe,
		Mechanism: "PDE5 inhibition potentiates nitrate vasodilation",
		Source:    "FDA contraindication",
	},
	{
		Drugs:     []string{"ALLOPURINOL", "AZATHIOPRINE"},
		Reactions: []string{"Bone marrow failure", "Pancytopenia"},
		Severity:  Severe,
		Mechanism: "xanthine oxidase inhibition blocks azathioprine catabolism",
		Source:    "classic oncology interaction",
	},
	{
		Drugs:     []string{"LITHIUM", "HYDROCHLOROTHIAZIDE"},
		Reactions: []string{"Lithium toxicity", "Tremor"},
		Severity:  Severe,
		Mechanism: "thiazide-induced sodium depletion increases lithium reabsorption",
		Source:    "psychiatry prescribing guidance",
	},
}
