package knowledge

import "testing"

func TestDrugKeyCanonical(t *testing.T) {
	a := DrugKey([]string{"warfarin", "ASPIRIN"})
	b := DrugKey([]string{"Aspirin", " WARFARIN "})
	if a != b {
		t.Errorf("keys differ: %q vs %q", a, b)
	}
	if a != "ASPIRIN+WARFARIN" {
		t.Errorf("key = %q", a)
	}
}

func TestDrugKeyEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []string
		want string
	}{
		{"empty list", nil, ""},
		{"all empty strings", []string{"", "   "}, ""},
		{"empties dropped", []string{"", "ASPIRIN", " "}, "ASPIRIN"},
		{"duplicates collapse", []string{"ASPIRIN", "aspirin", " Aspirin "}, "ASPIRIN"},
		{"mixed case and order", []string{"warfarin", "ASPIRIN", "Warfarin"}, "ASPIRIN+WARFARIN"},
		{"single drug", []string{" lithium "}, "LITHIUM"},
	}
	for _, tc := range cases {
		if got := DrugKey(tc.in); got != tc.want {
			t.Errorf("%s: DrugKey(%q) = %q, want %q", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestNormReaction(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Haemorrhage", "HAEMORRHAGE"},
		{"  acute   renal\tfailure ", "ACUTE RENAL FAILURE"},
		{"", ""},
		{"   ", ""},
	}
	for _, tc := range cases {
		if got := NormReaction(tc.in); got != tc.want {
			t.Errorf("NormReaction(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestKnownReaction(t *testing.T) {
	b := Builtin()
	if !b.KnownReaction([]string{"WARFARIN", "ASPIRIN"}, "haemorrhage") {
		t.Error("haemorrhage should be a known reaction of aspirin+warfarin, any case or order")
	}
	if b.KnownReaction([]string{"ASPIRIN", "WARFARIN"}, "Nausea") {
		t.Error("nausea is not curated for aspirin+warfarin")
	}
	if b.KnownReaction([]string{"ASPIRIN", "NEXIUM"}, "Haemorrhage") {
		t.Error("unknown combination must report false for every term")
	}
	if !b.KnownReaction([]string{"zometa", "prilosec"}, " osteonecrosis  of jaw ") {
		t.Error("whitespace-mangled term should still match the curated entry")
	}
}

func TestBuiltinContainsCaseStudies(t *testing.T) {
	b := Builtin()
	cases := [][]string{
		{"IBUPROFEN", "METAMIZOLE"},
		{"METHOTREXATE", "PROGRAF"},
		{"PREVACID", "NEXIUM"},
		{"XOLAIR", "SINGULAIR", "PREDNISONE"},
		{"ASPIRIN", "WARFARIN"},
	}
	for _, drugs := range cases {
		inter := b.Lookup(drugs)
		if inter == nil {
			t.Errorf("case-study interaction %v missing from builtin base", drugs)
			continue
		}
		if len(inter.Reactions) == 0 || inter.Mechanism == "" || inter.Source == "" {
			t.Errorf("interaction %v incompletely curated: %+v", drugs, inter)
		}
	}
}

func TestLookupOrderInsensitive(t *testing.T) {
	b := Builtin()
	x := b.Lookup([]string{"METAMIZOLE", "IBUPROFEN"})
	y := b.Lookup([]string{"IBUPROFEN", "METAMIZOLE"})
	if x == nil || x != y {
		t.Error("lookup should be order-insensitive and hit the same entry")
	}
}

func TestKnownAndMissing(t *testing.T) {
	b := Builtin()
	if !b.Known([]string{"ASPIRIN", "WARFARIN"}) {
		t.Error("aspirin+warfarin should be known")
	}
	if b.Known([]string{"ASPIRIN", "NEXIUM"}) {
		t.Error("aspirin+nexium should be unknown")
	}
	if b.Known([]string{"ASPIRIN"}) {
		t.Error("single drug is not an interaction")
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	b := Builtin()
	all := b.All()
	if len(all) != b.Len() || len(all) < 10 {
		t.Fatalf("All() returned %d entries (Len=%d)", len(all), b.Len())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key() > all[i].Key() {
			t.Fatal("All() not sorted")
		}
	}
	for _, e := range all {
		if len(e.Drugs) < 2 {
			t.Errorf("entry %v has fewer than 2 drugs", e.Drugs)
		}
	}
}

func TestNewOverrides(t *testing.T) {
	b := New([]Interaction{
		{Drugs: []string{"A", "B"}, Reactions: []string{"r1"}, Severity: Minor},
		{Drugs: []string{"B", "A"}, Reactions: []string{"r2"}, Severity: Severe},
	})
	got := b.Lookup([]string{"A", "B"})
	if got == nil || got.Severity != Severe || got.Reactions[0] != "r2" {
		t.Errorf("later entry should override: %+v", got)
	}
}

func TestSeverityString(t *testing.T) {
	if Minor.String() != "minor" || Moderate.String() != "moderate" || Severe.String() != "severe" {
		t.Error("severity names wrong")
	}
	if Severity(9).String() != "unknown" {
		t.Error("unknown severity")
	}
}
