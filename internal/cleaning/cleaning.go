// Package cleaning prepares raw FAERS reports for mining ("The first
// step in the mining process is data preparation and cleaning ...
// some preliminary cleaning on drug names and ADRs to remove
// duplication and correct misspellings", Section 5.2):
//
//   - string normalization (case, whitespace, punctuation noise,
//     dosage suffixes),
//   - vocabulary-based misspelling correction: rare names are snapped
//     to a frequent name within small edit distance,
//   - within-report deduplication of drugs and reactions,
//   - cross-report duplicate elimination (same case reported through
//     multiple channels or versions).
package cleaning

import (
	"sort"
	"strings"

	"maras/internal/faers"
)

// Options tunes the cleaning passes.
type Options struct {
	// SpellCorrect enables vocabulary snapping of rare names.
	SpellCorrect bool
	// MinCanonCount is the occurrence count a name needs to be
	// considered a canonical spelling (default 5).
	MinCanonCount int
	// MaxEditDistance is the maximum Damerau-Levenshtein distance a
	// rare name may be from a canonical one to snap (default 1 —
	// report-entry typos are overwhelmingly single edits — and never
	// more than ~len/4, so short names must match closely).
	MaxEditDistance int
	// MinCountRatio requires the canonical name to be at least this
	// many times more frequent than the rare spelling before
	// snapping (default 10). Without it, legitimate rare drugs get
	// merged into popular near-neighbors.
	MinCountRatio int
	// DropDuplicateReports removes reports whose (case ID) or whose
	// full normalized content duplicates an earlier report.
	DropDuplicateReports bool
}

// Defaults returns the options used by the paper-shaped pipeline.
func Defaults() Options {
	return Options{
		SpellCorrect:         true,
		MinCanonCount:        5,
		MaxEditDistance:      1,
		MinCountRatio:        10,
		DropDuplicateReports: true,
	}
}

func (o Options) normalized() Options {
	if o.MinCanonCount <= 0 {
		o.MinCanonCount = 5
	}
	if o.MaxEditDistance <= 0 {
		o.MaxEditDistance = 1
	}
	if o.MinCountRatio <= 0 {
		o.MinCountRatio = 10
	}
	return o
}

// Stats reports what cleaning did, for pipeline logs and tests.
type Stats struct {
	ReportsIn            int
	ReportsOut           int
	DuplicateReports     int
	EmptyReports         int // dropped: no drugs or no reactions after cleaning
	DrugSpellingsFixed   int
	ReacSpellingsFixed   int
	WithinReportDupDrugs int
	WithinReportDupReacs int
}

// NormalizeDrug canonicalizes a verbatim drug name: trim, uppercase,
// collapse whitespace, strip trailing dosage/form annotations
// ("ASPIRIN 81MG TAB" → "ASPIRIN", "ASPIRIN."→"ASPIRIN").
func NormalizeDrug(name string) string {
	s := normalizeCommon(strings.ToUpper(name))
	words := strings.Fields(s)
	// Drop trailing tokens that are dosage numbers or form words.
	for len(words) > 1 && isDoseToken(words[len(words)-1]) {
		words = words[:len(words)-1]
	}
	return strings.Join(words, " ")
}

// NormalizeReaction canonicalizes a reaction term to MedDRA-like
// sentence case with collapsed whitespace ("acute RENAL failure" →
// "Acute renal failure").
func NormalizeReaction(term string) string {
	s := normalizeCommon(term)
	if s == "" {
		return ""
	}
	s = strings.ToLower(s)
	return strings.ToUpper(s[:1]) + s[1:]
}

func normalizeCommon(s string) string {
	s = strings.TrimSpace(s)
	s = strings.Trim(s, ".,;:")
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		switch {
		case r == ' ' || r == '\t' || r == '_':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			b.WriteRune(r)
		}
	}
	return b.String()
}

var doseSuffixes = map[string]bool{
	"TAB": true, "TABS": true, "TABLET": true, "TABLETS": true,
	"CAP": true, "CAPS": true, "CAPSULE": true, "CAPSULES": true,
	"INJ": true, "INJECTION": true, "SOLUTION": true, "ORAL": true,
	"MG": true, "MCG": true, "ML": true, "G": true, "IU": true,
}

// isDoseToken reports whether tok is dosage/form noise: a bare form
// word ("TAB"), or a token with digits whose letter runs are all unit
// or form words ("81MG", "0.5ML", "4MG/5ML", "100").
func isDoseToken(tok string) bool {
	if doseSuffixes[tok] {
		return true
	}
	hasDigit := false
	run := 0 // start of current letter run
	for i := 0; i <= len(tok); i++ {
		var c byte
		if i < len(tok) {
			c = tok[i]
		}
		isLetter := c >= 'A' && c <= 'Z'
		if isLetter {
			continue
		}
		if i > run && !doseSuffixes[tok[run:i]] {
			return false // letter run that is not a unit word
		}
		run = i + 1
		if c >= '0' && c <= '9' {
			hasDigit = true
		} else if i < len(tok) && c != '.' && c != '/' && c != '-' && c != '%' {
			return false
		}
	}
	return hasDigit
}

// EditDistance returns the Damerau-Levenshtein distance (with
// adjacent transposition) between a and b, the notion of "misspelling
// closeness" the corrector uses.
func EditDistance(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev2 := make([]int, lb+1)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if v := prev2[j-2] + 1; v < m { // transposition
					m = v
				}
			}
			cur[j] = m
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[lb]
}

// Corrector snaps rare spellings to canonical vocabulary entries.
type Corrector struct {
	opts Options
	// canon maps the first two letters to canonical names with that
	// prefix, a cheap candidate filter (misspellings in report data
	// overwhelmingly preserve the initial letters).
	canon  map[string][]canonEntry
	counts map[string]int
}

type canonEntry struct {
	name  string
	count int
}

// NewCorrector builds a corrector from observed name counts.
func NewCorrector(counts map[string]int, opts Options) *Corrector {
	opts = opts.normalized()
	c := &Corrector{opts: opts, canon: make(map[string][]canonEntry), counts: counts}
	for name, n := range counts {
		if n >= opts.MinCanonCount {
			key := prefixKey(name)
			c.canon[key] = append(c.canon[key], canonEntry{name, n})
		}
	}
	for _, entries := range c.canon {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].count != entries[j].count {
				return entries[i].count > entries[j].count
			}
			return entries[i].name < entries[j].name
		})
	}
	return c
}

func prefixKey(name string) string {
	if len(name) < 2 {
		return name
	}
	return name[:2]
}

// Correct returns the canonical spelling for name, or name itself if
// it is already canonical or no close canonical candidate exists.
// Ties go to the most frequent candidate.
func (c *Corrector) Correct(name string) (string, bool) {
	if c.counts[name] >= c.opts.MinCanonCount {
		return name, false
	}
	maxDist := c.opts.MaxEditDistance
	if d := len(name) / 4; d < maxDist {
		maxDist = d
	}
	if maxDist == 0 {
		return name, false
	}
	minCanon := c.counts[name] * c.opts.MinCountRatio
	if minCanon < c.opts.MinCanonCount {
		minCanon = c.opts.MinCanonCount
	}
	best, bestDist, bestCount := "", maxDist+1, 0
	for _, e := range c.canon[prefixKey(name)] {
		if abs(len(e.name)-len(name)) > maxDist || e.count < minCanon {
			continue
		}
		d := EditDistance(name, e.name)
		if d < bestDist || (d == bestDist && e.count > bestCount) {
			best, bestDist, bestCount = e.name, d, e.count
		}
	}
	if best != "" && bestDist <= maxDist {
		return best, true
	}
	return name, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Clean runs the full cleaning pipeline over reports and returns the
// cleaned reports plus statistics. Reports left without at least one
// drug and one reaction are dropped: they cannot contribute to any
// drug→ADR association.
func Clean(reports []faers.Report, opts Options) ([]faers.Report, Stats) {
	opts = opts.normalized()
	var st Stats
	st.ReportsIn = len(reports)

	// Pass 1: normalize strings, count name frequencies.
	norm := make([]faers.Report, len(reports))
	drugCounts := make(map[string]int)
	reacCounts := make(map[string]int)
	for i, r := range reports {
		n := r
		n.Drugs = make([]string, 0, len(r.Drugs))
		n.Reactions = make([]string, 0, len(r.Reactions))
		for _, d := range r.Drugs {
			if nd := NormalizeDrug(d); nd != "" {
				n.Drugs = append(n.Drugs, nd)
				drugCounts[nd]++
			}
		}
		for _, a := range r.Reactions {
			if na := NormalizeReaction(a); na != "" {
				n.Reactions = append(n.Reactions, na)
				reacCounts[na]++
			}
		}
		norm[i] = n
	}

	// Pass 2: spelling correction against the observed vocabulary.
	if opts.SpellCorrect {
		dc := NewCorrector(drugCounts, opts)
		rc := NewCorrector(reacCounts, opts)
		for i := range norm {
			for j, d := range norm[i].Drugs {
				if fixed, changed := dc.Correct(d); changed {
					norm[i].Drugs[j] = fixed
					st.DrugSpellingsFixed++
				}
			}
			for j, a := range norm[i].Reactions {
				if fixed, changed := rc.Correct(a); changed {
					norm[i].Reactions[j] = fixed
					st.ReacSpellingsFixed++
				}
			}
		}
	}

	// Pass 3: within-report dedup + cross-report duplicate drop.
	// Cross-report duplicates are keyed by case ID only: the same
	// case reported through multiple channels or versions shares a
	// caseid, while distinct patients legitimately produce identical
	// drug/reaction content.
	seenCase := make(map[string]bool)
	out := make([]faers.Report, 0, len(norm))
	for _, r := range norm {
		before := len(r.Drugs)
		r.Drugs = dedupSorted(r.Drugs)
		st.WithinReportDupDrugs += before - len(r.Drugs)
		before = len(r.Reactions)
		r.Reactions = dedupSorted(r.Reactions)
		st.WithinReportDupReacs += before - len(r.Reactions)

		if len(r.Drugs) == 0 || len(r.Reactions) == 0 {
			st.EmptyReports++
			continue
		}
		if opts.DropDuplicateReports && r.CaseID != "" {
			if seenCase[r.CaseID] {
				st.DuplicateReports++
				continue
			}
			seenCase[r.CaseID] = true
		}
		out = append(out, r)
	}
	st.ReportsOut = len(out)
	return out, st
}

// dedupSorted sorts and deduplicates a string slice in place.
func dedupSorted(s []string) []string {
	if len(s) < 2 {
		return s
	}
	sort.Strings(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
