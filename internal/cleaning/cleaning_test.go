package cleaning

import (
	"reflect"
	"testing"
	"testing/quick"

	"maras/internal/faers"
)

func TestNormalizeDrug(t *testing.T) {
	cases := map[string]string{
		"aspirin":               "ASPIRIN",
		"  Aspirin  ":           "ASPIRIN",
		"ASPIRIN 81MG TAB":      "ASPIRIN",
		"ASPIRIN 81 MG TABLETS": "ASPIRIN",
		"warfarin sodium":       "WARFARIN SODIUM",
		"Tylenol.":              "TYLENOL",
		"XOLAIR  150MG":         "XOLAIR",
		"b12 100":               "B12",
		"":                      "",
		"   ":                   "",
		"ZOMETA 4MG/5ML INJ":    "ZOMETA",
	}
	for in, want := range cases {
		if got := NormalizeDrug(in); got != want {
			t.Errorf("NormalizeDrug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeReaction(t *testing.T) {
	cases := map[string]string{
		"acute RENAL failure":  "Acute renal failure",
		"  nausea ":            "Nausea",
		"OSTEONECROSIS OF JAW": "Osteonecrosis of jaw",
		"rash.":                "Rash",
		"":                     "",
	}
	for in, want := range cases {
		if got := NormalizeReaction(in); got != want {
			t.Errorf("NormalizeReaction(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"ASPIRIN", "ASPIRIN", 0},
		{"ASPIRIN", "ASPRIN", 1},  // deletion
		{"ASPIRIN", "ASPIRNI", 1}, // transposition (Damerau)
		{"WARFARIN", "WARFRIN", 1},
		{"abc", "cba", 2},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceTriangleIneq(t *testing.T) {
	f := func(a, b, c string) bool {
		trim := func(s string) string {
			if len(s) > 15 {
				return s[:15]
			}
			return s
		}
		a, b, c = trim(a), trim(b), trim(c)
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCorrectorSnapsRareToCanonical(t *testing.T) {
	counts := map[string]int{
		"ASPIRIN":  100,
		"ASPRIN":   1, // misspelling
		"WARFARIN": 50,
	}
	c := NewCorrector(counts, Defaults())
	if got, changed := c.Correct("ASPRIN"); !changed || got != "ASPIRIN" {
		t.Errorf("Correct(ASPRIN) = %q,%v, want ASPIRIN,true", got, changed)
	}
	// Canonical names stay put.
	if got, changed := c.Correct("ASPIRIN"); changed || got != "ASPIRIN" {
		t.Errorf("Correct(ASPIRIN) = %q,%v", got, changed)
	}
	// A rare name with no close canonical neighbor stays put.
	if got, changed := c.Correct("XYZZYDRUG"); changed || got != "XYZZYDRUG" {
		t.Errorf("Correct(XYZZYDRUG) = %q,%v", got, changed)
	}
}

func TestCorrectorShortNamesConservative(t *testing.T) {
	counts := map[string]int{"ABC": 100, "ABD": 1}
	c := NewCorrector(counts, Defaults())
	// len/4 = 0 for 3-char names: never snap, too risky.
	if got, changed := c.Correct("ABD"); changed {
		t.Errorf("short name snapped: %q", got)
	}
}

func TestCorrectorPrefersFrequent(t *testing.T) {
	counts := map[string]int{
		"METAMIZOLE": 80,
		"METAMIZOLC": 40, // also canonical, same distance from the typo
		"METAMIZOLX": 1,
	}
	opts := Defaults()
	opts.MinCanonCount = 10
	c := NewCorrector(counts, opts)
	got, changed := c.Correct("METAMIZOLX")
	if !changed || got != "METAMIZOLE" {
		t.Errorf("Correct = %q,%v, want most-frequent METAMIZOLE", got, changed)
	}
}

func report(id, caseID string, drugs, reacs []string) faers.Report {
	return faers.Report{PrimaryID: id, CaseID: caseID, Drugs: drugs, Reactions: reacs}
}

func TestCleanNormalizesAndDedups(t *testing.T) {
	in := []faers.Report{
		report("1", "c1", []string{"aspirin 81mg tab", "ASPIRIN", "warfarin"}, []string{"NAUSEA", "nausea", "rash"}),
	}
	out, st := Clean(in, Defaults())
	if len(out) != 1 {
		t.Fatalf("reports out = %d", len(out))
	}
	if !reflect.DeepEqual(out[0].Drugs, []string{"ASPIRIN", "WARFARIN"}) {
		t.Errorf("drugs = %v", out[0].Drugs)
	}
	if !reflect.DeepEqual(out[0].Reactions, []string{"Nausea", "Rash"}) {
		t.Errorf("reactions = %v", out[0].Reactions)
	}
	if st.WithinReportDupDrugs != 1 || st.WithinReportDupReacs != 1 {
		t.Errorf("dup stats = %+v", st)
	}
}

func TestCleanDropsEmptyReports(t *testing.T) {
	in := []faers.Report{
		report("1", "c1", []string{"ASPIRIN"}, nil),
		report("2", "c2", nil, []string{"Rash"}),
		report("3", "c3", []string{"ASPIRIN"}, []string{"Rash"}),
	}
	out, st := Clean(in, Defaults())
	if len(out) != 1 || out[0].PrimaryID != "3" {
		t.Fatalf("out = %+v", out)
	}
	if st.EmptyReports != 2 {
		t.Errorf("EmptyReports = %d", st.EmptyReports)
	}
}

func TestCleanDropsDuplicateCases(t *testing.T) {
	in := []faers.Report{
		report("1", "caseA", []string{"X"}, []string{"R"}),
		report("2", "caseA", []string{"X", "Y"}, []string{"R"}), // same case, later version
		report("3", "caseB", []string{"X"}, []string{"R"}),      // same content, distinct case: kept
	}
	out, st := Clean(in, Defaults())
	if len(out) != 2 {
		t.Fatalf("out = %d reports, want 2", len(out))
	}
	if st.DuplicateReports != 1 {
		t.Errorf("DuplicateReports = %d, want 1", st.DuplicateReports)
	}
}

func TestCleanSpellCorrection(t *testing.T) {
	var in []faers.Report
	for i := 0; i < 10; i++ {
		in = append(in, report(string(rune('a'+i)), "", []string{"IBUPROFEN"}, []string{"Acute renal failure"}))
	}
	in = append(in, report("typo", "", []string{"IBUPROFEN", "IBUPROFEM"}, []string{"Acute renal failure"}))
	opts := Defaults()
	opts.DropDuplicateReports = false
	out, st := Clean(in, opts)
	if st.DrugSpellingsFixed != 1 {
		t.Fatalf("DrugSpellingsFixed = %d, want 1", st.DrugSpellingsFixed)
	}
	last := out[len(out)-1]
	if !reflect.DeepEqual(last.Drugs, []string{"IBUPROFEN"}) {
		t.Errorf("typo report drugs = %v (should snap+dedup to IBUPROFEN)", last.Drugs)
	}
}

func TestCleanStatsConsistency(t *testing.T) {
	in := []faers.Report{
		report("1", "c1", []string{"A"}, []string{"r"}),
		report("2", "c1", []string{"A"}, []string{"r"}),
		report("3", "", nil, nil),
	}
	out, st := Clean(in, Defaults())
	if st.ReportsIn != 3 || st.ReportsOut != len(out) {
		t.Errorf("stats in/out inconsistent: %+v vs %d", st, len(out))
	}
	if st.ReportsOut+st.DuplicateReports+st.EmptyReports != st.ReportsIn {
		t.Errorf("stats don't add up: %+v", st)
	}
}

func TestCleanNoSpellCorrectOption(t *testing.T) {
	var in []faers.Report
	for i := 0; i < 10; i++ {
		in = append(in, report(string(rune('a'+i)), "", []string{"IBUPROFEN"}, []string{"Rash"}))
	}
	in = append(in, report("typo", "", []string{"IBUPROFEM"}, []string{"Rash"}))
	opts := Defaults()
	opts.SpellCorrect = false
	opts.DropDuplicateReports = false
	out, st := Clean(in, opts)
	if st.DrugSpellingsFixed != 0 {
		t.Errorf("spell correction ran when disabled")
	}
	if !reflect.DeepEqual(out[len(out)-1].Drugs, []string{"IBUPROFEM"}) {
		t.Errorf("typo was altered: %v", out[len(out)-1].Drugs)
	}
}
