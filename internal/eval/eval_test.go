package eval

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScorePerfectRanking(t *testing.T) {
	truth := []string{"A+B", "C+D"}
	ranked := []RankedKey{"A+B", "C+D", "E+F"}
	r := Score(ranked, truth)
	if !approx(r.PrecisionAt[1], 1) {
		t.Errorf("P@1 = %v", r.PrecisionAt[1])
	}
	if !approx(r.RecallAt[3], 1) {
		t.Errorf("R@3 = %v", r.RecallAt[3])
	}
	// MRR = (1/1 + 1/2)/2 = 0.75
	if !approx(r.MRR, 0.75) {
		t.Errorf("MRR = %v", r.MRR)
	}
	if r.FirstHitRank != 1 {
		t.Errorf("FirstHitRank = %d", r.FirstHitRank)
	}
}

func TestScoreMisses(t *testing.T) {
	truth := []string{"A+B"}
	ranked := []RankedKey{"X+Y", "P+Q"}
	r := Score(ranked, truth)
	if r.MRR != 0 || r.FirstHitRank != 0 {
		t.Errorf("miss: MRR=%v first=%d", r.MRR, r.FirstHitRank)
	}
	if r.RecallAt[10] != 0 {
		t.Errorf("R@10 = %v", r.RecallAt[10])
	}
}

func TestScoreMidRank(t *testing.T) {
	truth := []string{"A+B"}
	ranked := []RankedKey{"X+Y", "P+Q", "A+B", "Z+W"}
	r := Score(ranked, truth)
	if r.FirstHitRank != 3 {
		t.Errorf("FirstHitRank = %d, want 3", r.FirstHitRank)
	}
	if !approx(r.MRR, 1.0/3.0) {
		t.Errorf("MRR = %v", r.MRR)
	}
	if !approx(r.PrecisionAt[3], 1.0/3.0) {
		t.Errorf("P@3 = %v", r.PrecisionAt[3])
	}
	if r.PrecisionAt[1] != 0 {
		t.Errorf("P@1 = %v", r.PrecisionAt[1])
	}
}

func TestScoreDuplicatesCountOnce(t *testing.T) {
	truth := []string{"A+B"}
	ranked := []RankedKey{"A+B", "A+B", "A+B"}
	r := Score(ranked, truth)
	// Dedup leaves one prediction; P@1 = 1, recall@1 = 1.
	if !approx(r.PrecisionAt[1], 1) || !approx(r.RecallAt[1], 1) {
		t.Errorf("dup handling: %+v", r)
	}
}

func TestScoreShortList(t *testing.T) {
	truth := []string{"A+B", "C+D", "E+F", "G+H"}
	ranked := []RankedKey{"A+B"}
	r := Score(ranked, truth)
	// Fewer predictions than k: precision over the available list.
	if !approx(r.PrecisionAt[5], 1) {
		t.Errorf("P@5 with 1 prediction = %v, want 1", r.PrecisionAt[5])
	}
	if !approx(r.RecallAt[5], 0.25) {
		t.Errorf("R@5 = %v, want 0.25", r.RecallAt[5])
	}
}

func TestScoreEmptyInputs(t *testing.T) {
	r := Score(nil, nil)
	if r.Truth != 0 || r.MRR != 0 {
		t.Errorf("empty = %+v", r)
	}
	r = Score(nil, []string{"A+B"})
	if r.RecallAt[5] != 0 {
		t.Error("no predictions should give 0 recall")
	}
}

func TestRankOf(t *testing.T) {
	ranked := []RankedKey{"X", "Y", "Y", "Z"}
	if got := RankOf(ranked, "Z"); got != 3 { // dedup: X,Y,Z
		t.Errorf("RankOf(Z) = %d, want 3", got)
	}
	if got := RankOf(ranked, "Q"); got != 0 {
		t.Errorf("RankOf(missing) = %d", got)
	}
}

func TestKeysOf(t *testing.T) {
	keys := KeysOf([][]string{{"warfarin", "Aspirin"}, {"b", "a"}})
	if keys[0] != "ASPIRIN+WARFARIN" || keys[1] != "A+B" {
		t.Errorf("KeysOf = %v", keys)
	}
}
