// Package eval scores ranked drug-drug-interaction signals against
// the synthetic generator's planted ground truth: precision@k,
// recall@k, mean reciprocal rank, and per-interaction rank lookups.
// This quantifies what the paper could only argue through case
// studies — whether the exclusiveness ranking actually surfaces the
// true interactions ahead of the baselines (experiments E4, A1–A4).
package eval

import (
	"sort"

	"maras/internal/knowledge"
)

// RankedKey is one ranked prediction: the canonical drug-combination
// key (knowledge.DrugKey) in rank order, best first.
type RankedKey = string

// Result summarizes ranking quality against a truth set.
type Result struct {
	Truth        int // number of ground-truth interactions
	Predictions  int // number of ranked predictions scored
	PrecisionAt  map[int]float64
	RecallAt     map[int]float64
	MRR          float64 // mean reciprocal rank over truth entries
	FirstHitRank int     // 1-based rank of the first true positive; 0 = none
}

// Ks are the cutoffs Result reports by default.
var Ks = []int{1, 3, 5, 10, 20, 50}

// Score evaluates ranked (best first) against truthKeys.
// Duplicate ranked keys count once, at their best rank.
func Score(ranked []RankedKey, truthKeys []string) Result {
	truth := make(map[string]bool, len(truthKeys))
	for _, k := range truthKeys {
		truth[k] = true
	}
	res := Result{
		Truth:       len(truth),
		Predictions: len(ranked),
		PrecisionAt: make(map[int]float64, len(Ks)),
		RecallAt:    make(map[int]float64, len(Ks)),
	}
	bestRank := make(map[string]int) // truth key -> best 1-based rank
	seen := make(map[string]bool, len(ranked))
	dedup := make([]string, 0, len(ranked))
	for _, k := range ranked {
		if seen[k] {
			continue
		}
		seen[k] = true
		dedup = append(dedup, k)
		if truth[k] {
			if _, ok := bestRank[k]; !ok {
				bestRank[k] = len(dedup)
			}
		}
	}
	for _, k := range Ks {
		hits := 0
		limit := k
		if limit > len(dedup) {
			limit = len(dedup)
		}
		for i := 0; i < limit; i++ {
			if truth[dedup[i]] {
				hits++
			}
		}
		if k > 0 {
			res.PrecisionAt[k] = float64(hits) / float64(min(k, max(1, len(dedup))))
		}
		if res.Truth > 0 {
			res.RecallAt[k] = float64(hits) / float64(res.Truth)
		}
	}
	// MRR over truth entries (missing entries contribute 0).
	if res.Truth > 0 {
		sum := 0.0
		first := 0
		ranks := make([]int, 0, len(bestRank))
		for _, r := range bestRank {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		if len(ranks) > 0 {
			first = ranks[0]
		}
		for _, r := range ranks {
			sum += 1 / float64(r)
		}
		res.MRR = sum / float64(res.Truth)
		res.FirstHitRank = first
	}
	return res
}

// RankOf returns the 1-based rank of key within ranked (after
// dedup), or 0 if absent.
func RankOf(ranked []RankedKey, key string) int {
	seen := make(map[string]bool, len(ranked))
	pos := 0
	for _, k := range ranked {
		if seen[k] {
			continue
		}
		seen[k] = true
		pos++
		if k == key {
			return pos
		}
	}
	return 0
}

// KeysOf converts drug-name slices into canonical combination keys.
func KeysOf(drugSets [][]string) []string {
	out := make([]string, len(drugSets))
	for i, ds := range drugSets {
		out[i] = knowledge.DrugKey(ds)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
