// Package lcm implements closed frequent itemset mining with the LCM
// (Linear-time Closed itemset Miner, Uno et al.) algorithm over the
// transaction database's vertical layout: prefix-preserving closure
// extension enumerates each closed itemset exactly once, with no
// candidate storage and no subsumption index.
//
// It is the second closed-itemset engine next to package fpgrowth's
// mine-then-filter approach; the test suites enforce exact agreement
// between the two, and the benchmark harness compares their cost
// profiles (LCM wins on dense data where the frequent-itemset space
// dwarfs the closed space).
package lcm

import (
	"sort"

	"maras/internal/fpgrowth"
	"maras/internal/txdb"
	"maras/internal/types"
)

// Options mirrors fpgrowth.Options.
type Options struct {
	// MinSupport is the absolute minimum support (≥ 1).
	MinSupport int
	// MaxLen bounds itemset length; 0 = unbounded. Closedness is
	// relative to the bounded universe, matching fpgrowth.MineClosed
	// semantics.
	MaxLen int
}

// MineClosed enumerates all closed frequent itemsets of db. The
// result order matches fpgrowth.MineClosed (support desc, then
// length, then lexicographic) for interchangeability.
func MineClosed(db *txdb.DB, opts Options) []fpgrowth.FrequentSet {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	m := &miner{db: db, opts: opts}
	var out []fpgrowth.FrequentSet

	if opts.MaxLen != 0 {
		// Bounded-length closedness deviates from true closure; fall
		// back to the reference engine for exact semantic agreement.
		return fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: opts.MinSupport, MaxLen: opts.MaxLen})
	}

	// Root: process the full database; the closure of the empty set
	// (items present in every transaction) is emitted by process when
	// non-empty.
	m.counts = make([]int, db.Dict().Len())
	m.process(m.allTids(), nil, types.NoItem, true, &out)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) < len(b.Items)
		}
		for k := range a.Items {
			if a.Items[k] != b.Items[k] {
				return a.Items[k] < b.Items[k]
			}
		}
		return false
	})
	return out
}

type miner struct {
	db   *txdb.DB
	opts Options
	// counts is the occurrence-deliver scratch array, indexed by
	// item ID; process resets the entries it touched before
	// recursing, so a single array serves the whole traversal.
	counts []int
}

func (m *miner) allTids() []txdb.TID {
	tids := make([]txdb.TID, m.db.Len())
	for i := range tids {
		tids[i] = txdb.TID(i)
	}
	return tids
}

// process handles one node of the LCM traversal: tids is the
// conditional tidset (the transactions containing the node's
// generator), prevClosed the parent's closed set, coreIt the item
// whose addition produced this node (types.NoItem at the root), and
// isRoot marks the database root. It performs occurrence deliver —
// one scan of the conditional transactions — to derive both the
// node's closure and its extension candidates, enforces the
// prefix-preservation condition, emits the closed set, and recurses.
func (m *miner) process(tids []txdb.TID, prevClosed types.Itemset, coreIt types.Item, isRoot bool, out *[]fpgrowth.FrequentSet) {
	if len(tids) == 0 {
		return
	}
	// Occurrence deliver.
	var touched []types.Item
	for _, tid := range tids {
		for _, it := range m.db.Tx(tid).Items {
			if m.counts[it] == 0 {
				touched = append(touched, it)
			}
			m.counts[it]++
		}
	}
	n := len(tids)
	var closure types.Itemset
	var candidates []types.Item
	for _, it := range touched {
		c := m.counts[it]
		m.counts[it] = 0 // reset before recursion reuses the array
		switch {
		case c == n:
			closure = append(closure, it)
		case c >= m.opts.MinSupport && it > coreIt:
			candidates = append(candidates, it)
		}
	}
	closure = closure.Normalize()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	if !isRoot {
		// ppc check: items of the closure below the core item must
		// already belong to the parent's closed set, otherwise this
		// closed set is generated from a smaller core elsewhere.
		if !prefixPreserved(prevClosed, closure, coreIt) {
			return
		}
		*out = append(*out, fpgrowth.FrequentSet{Items: closure, Support: n})
	} else if len(closure) > 0 {
		// Non-empty root closure: items present in every transaction.
		*out = append(*out, fpgrowth.FrequentSet{Items: closure, Support: n})
	}

	for _, j := range candidates {
		if closure.Contains(j) {
			continue
		}
		newTids := intersectTids(tids, m.db.Postings(j))
		if len(newTids) < m.opts.MinSupport {
			continue
		}
		m.process(newTids, closure, j, false, out)
	}
}

// containsAllTids reports whether the sorted posting list holds every
// tid of sub (also sorted).
func containsAllTids(postings []txdb.TID, sub []txdb.TID) bool {
	if len(sub) > len(postings) {
		return false
	}
	i := 0
	for _, want := range sub {
		// Galloping scan.
		lo, hi := i, len(postings)
		for lo < hi {
			mid := (lo + hi) / 2
			if postings[mid] < want {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(postings) || postings[lo] != want {
			return false
		}
		i = lo + 1
	}
	return true
}

// prefixPreserved reports whether closure's items below j all belong
// to c (the prefix-preservation condition of LCM).
func prefixPreserved(c, closure types.Itemset, j types.Item) bool {
	for _, it := range closure {
		if it >= j {
			break
		}
		if !c.Contains(it) {
			return false
		}
	}
	return true
}

// intersectTids intersects two sorted TID lists.
func intersectTids(a, b []txdb.TID) []txdb.TID {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]txdb.TID, 0, len(a))
	i := 0
	for _, v := range a {
		for i < len(b) && b[i] < v {
			i++
		}
		if i < len(b) && b[i] == v {
			out = append(out, v)
			i++
		}
	}
	return out
}
