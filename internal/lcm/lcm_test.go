package lcm

import (
	"fmt"
	"math/rand"
	"testing"

	"maras/internal/fpgrowth"
	"maras/internal/txdb"
	"maras/internal/types"
)

func buildDB(t testing.TB, txs [][]int) *txdb.DB {
	t.Helper()
	dict := types.NewDictionary()
	maxID := 0
	for _, tx := range txs {
		for _, id := range tx {
			if id > maxID {
				maxID = id
			}
		}
	}
	for i := 0; i <= maxID; i++ {
		dict.Intern(fmt.Sprintf("i%d", i), types.DomainDrug)
	}
	db := txdb.New(dict)
	for r, tx := range txs {
		items := make(types.Itemset, 0, len(tx))
		for _, id := range tx {
			items = append(items, types.Item(id))
		}
		db.Add(fmt.Sprintf("r%d", r), items.Normalize())
	}
	db.Freeze()
	return db
}

func asMap(sets []fpgrowth.FrequentSet) map[string]int {
	m := make(map[string]int, len(sets))
	for _, fs := range sets {
		m[fs.Items.Key()] = fs.Support
	}
	return m
}

func TestMineClosedKnownExample(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 5},
		{2, 4},
		{2, 3},
		{1, 2, 4},
		{1, 3},
		{2, 3},
		{1, 3},
		{1, 2, 3, 5},
		{1, 2, 3},
	})
	got := asMap(MineClosed(db, Options{MinSupport: 2}))
	want := asMap(fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: 2}))
	if len(got) != len(want) {
		t.Fatalf("lcm %d closed sets, fpgrowth %d\nlcm=%v\nfp=%v", len(got), len(want), got, want)
	}
	for k, sup := range want {
		if got[k] != sup {
			t.Errorf("set %s: lcm=%d fpgrowth=%d", k, got[k], sup)
		}
	}
}

// The two engines must agree exactly on random databases.
func TestMineClosedMatchesFPGrowthRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		nItems := 4 + rng.Intn(9)
		nTx := 8 + rng.Intn(60)
		txs := make([][]int, nTx)
		for i := range txs {
			for id := 0; id < nItems; id++ {
				if rng.Float64() < 0.35 {
					txs[i] = append(txs[i], id)
				}
			}
			if len(txs[i]) == 0 {
				txs[i] = []int{rng.Intn(nItems)}
			}
		}
		db := buildDB(t, txs)
		minsup := 1 + rng.Intn(4)

		got := asMap(MineClosed(db, Options{MinSupport: minsup}))
		want := asMap(fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: minsup}))
		if len(got) != len(want) {
			t.Fatalf("trial %d (minsup=%d): lcm %d sets, fpgrowth %d", trial, minsup, len(got), len(want))
		}
		for k, sup := range want {
			if got[k] != sup {
				t.Fatalf("trial %d: set %s lcm=%d fpgrowth=%d", trial, k, got[k], sup)
			}
		}
	}
}

// Dense data: every transaction shares a common prefix — the closure
// of the empty set is non-empty and must be emitted once.
func TestMineClosedCommonItems(t *testing.T) {
	db := buildDB(t, [][]int{
		{0, 1, 2},
		{0, 1, 3},
		{0, 1, 4},
	})
	sets := MineClosed(db, Options{MinSupport: 1})
	got := asMap(sets)
	if got["0,1"] != 3 {
		t.Errorf("common pair {0,1} support = %d, want 3 (got %v)", got["0,1"], got)
	}
	// No duplicates.
	if len(got) != len(sets) {
		t.Error("duplicate closed sets emitted")
	}
}

func TestMineClosedEmptyAndDegenerate(t *testing.T) {
	dict := types.NewDictionary()
	db := txdb.New(dict)
	db.Freeze()
	if got := MineClosed(db, Options{MinSupport: 1}); len(got) != 0 {
		t.Errorf("empty DB mined %d", len(got))
	}
	one := buildDB(t, [][]int{{7}})
	sets := MineClosed(one, Options{MinSupport: 1})
	if len(sets) != 1 || sets[0].Items.Key() != "7" {
		t.Errorf("single-item DB = %v", sets)
	}
}

func TestMineClosedMaxLenFallsBack(t *testing.T) {
	db := buildDB(t, [][]int{{1, 2, 3}, {1, 2, 3}, {1, 2}})
	got := asMap(MineClosed(db, Options{MinSupport: 1, MaxLen: 2}))
	want := asMap(fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: 1, MaxLen: 2}))
	if len(got) != len(want) {
		t.Fatalf("MaxLen fallback disagrees: %v vs %v", got, want)
	}
}

func TestMineClosedOrderingDeterministic(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
	})
	a := MineClosed(db, Options{MinSupport: 1})
	b := MineClosed(db, Options{MinSupport: 1})
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
			t.Fatal("nondeterministic ordering")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Support > a[i-1].Support {
			t.Fatal("not sorted by support desc")
		}
	}
}

func TestContainsAllTids(t *testing.T) {
	post := []txdb.TID{1, 3, 5, 7, 9}
	cases := []struct {
		sub  []txdb.TID
		want bool
	}{
		{nil, true},
		{[]txdb.TID{1}, true},
		{[]txdb.TID{9}, true},
		{[]txdb.TID{3, 7}, true},
		{[]txdb.TID{1, 3, 5, 7, 9}, true},
		{[]txdb.TID{2}, false},
		{[]txdb.TID{1, 2}, false},
		{[]txdb.TID{1, 3, 5, 7, 9, 11}, false},
	}
	for _, c := range cases {
		if got := containsAllTids(post, c.sub); got != c.want {
			t.Errorf("containsAllTids(%v) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestIntersectTids(t *testing.T) {
	a := []txdb.TID{1, 2, 4, 8}
	b := []txdb.TID{2, 3, 4, 9}
	got := intersectTids(a, b)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("intersect = %v", got)
	}
	if len(intersectTids(a, nil)) != 0 {
		t.Error("intersect with empty should be empty")
	}
}
