package watch

import (
	"sync"
	"time"
)

// DefaultFeedCapacity is the per-user alert ring size when Feeds is
// built with a non-positive capacity.
const DefaultFeedCapacity = 128

// Alert is one qualified notification delivered to a user's feed.
type Alert struct {
	// Seq is a feed-global, monotonically increasing cursor; clients
	// poll with ?since=<last seen Seq>.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`

	User     string `json:"user"`
	ListID   string `json:"list_id"`
	ListName string `json:"list_name,omitempty"`

	// Kind is "signal" (a changed ranked signal qualified) or "drift"
	// (an audit drift event, e.g. a watched signal vanished).
	Kind      string  `json:"kind"`
	Quarter   string  `json:"quarter"`
	SignalKey string  `json:"signal_key"`
	Rank      int     `json:"rank,omitempty"`
	Score     float64 `json:"score,omitempty"`
	Support   int     `json:"support,omitempty"`
	Severity  string  `json:"severity,omitempty"`
	Message   string  `json:"message"`
}

// feedRing is one user's fixed-capacity alert ring: start indexes the
// oldest alert, full rings overwrite oldest-first.
type feedRing struct {
	buf   []Alert
	start int
	n     int
}

func (r *feedRing) push(a Alert) (overwrote bool) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = a
		r.n++
		return false
	}
	r.buf[r.start] = a
	r.start = (r.start + 1) % len(r.buf)
	return true
}

// Feeds holds the per-user alert rings. One mutex covers all users:
// alerts arrive in batches from a single evaluation pass, so
// contention is between evaluation and HTTP reads, both short.
type Feeds struct {
	mu       sync.Mutex
	capacity int
	seq      uint64
	users    map[string]*feedRing
	pushed   uint64
	dropped  uint64
}

// NewFeeds builds the feed store with the given per-user ring
// capacity (non-positive means DefaultFeedCapacity).
func NewFeeds(capacity int) *Feeds {
	if capacity <= 0 {
		capacity = DefaultFeedCapacity
	}
	return &Feeds{capacity: capacity, users: map[string]*feedRing{}}
}

// PushAll appends a batch of alerts under one lock, stamping Seq and
// Time, and returns how many existing alerts were overwritten by full
// rings.
func (f *Feeds) PushAll(now time.Time, alerts []Alert) (dropped int) {
	if len(alerts) == 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range alerts {
		f.seq++
		alerts[i].Seq = f.seq
		alerts[i].Time = now
		r := f.users[alerts[i].User]
		if r == nil {
			r = &feedRing{buf: make([]Alert, f.capacity)}
			f.users[alerts[i].User] = r
		}
		if r.push(alerts[i]) {
			dropped++
		}
	}
	f.pushed += uint64(len(alerts))
	f.dropped += uint64(dropped)
	return dropped
}

// Since returns the user's alerts with Seq > since, oldest first, at
// most n (n <= 0 means all retained).
func (f *Feeds) Since(user string, since uint64, n int) []Alert {
	f.mu.Lock()
	defer f.mu.Unlock()
	r := f.users[user]
	if r == nil {
		return nil
	}
	out := make([]Alert, 0, r.n)
	for i := 0; i < r.n; i++ {
		a := r.buf[(r.start+i)%len(r.buf)]
		if a.Seq > since {
			out = append(out, a)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// FeedStats is the operational view of the feed store.
type FeedStats struct {
	Users    int    `json:"users"`
	Pushed   uint64 `json:"alerts_pushed"`
	Dropped  uint64 `json:"alerts_dropped"`
	Capacity int    `json:"ring_capacity"`
}

// Stats snapshots the feed store.
func (f *Feeds) Stats() FeedStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FeedStats{
		Users:    len(f.users),
		Pushed:   f.pushed,
		Dropped:  f.dropped,
		Capacity: f.capacity,
	}
}
