// Package watch turns mined quarters into targeted notifications: the
// per-user watchlist subscription and alerting subsystem (ROADMAP
// item 4, "millions of users registering interest in drug
// combinations").
//
// A Watchlist names the drugs and/or reaction terms a user cares
// about plus qualification gates (minimum score and support, a
// severity floor, rare-only and unexpected-only flags modeled on the
// rare-and-unexpected AE filter pipeline). Lists live in an inverted
// Index from normalized drug/reaction terms to subscriber slots, so
// evaluating a quarter costs O(changed signals × matching lists) —
// never O(all watchlists). The Evaluator fingerprints every signal
// per quarter; on a quarter load or refresh only signals whose
// fingerprint moved are routed through the index, qualified per list,
// and materialized as Alerts into per-user ring-buffered Feeds with
// dedup (the same signal state fires once per quarter). Audit drift
// events (signal_lost carrying a Subject key, churn/rank-shift
// marking a quarter dirty) feed the same path via the audit log's
// OnRecord hook. Watchlist populations persist with the store's
// atomic write-then-rename + CRC trailer pattern (persist.go).
package watch

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"maras/internal/knowledge"
)

// Limits enforced by Watchlist.Normalize, sized so a hostile client
// cannot bloat the index or the persistence file with one list.
const (
	// MaxTerms bounds drugs and reactions per list, each.
	MaxTerms = 16
	// MaxNameLen bounds the display name.
	MaxNameLen = 120
	// MaxUserLen bounds the user identifier.
	MaxUserLen = 64
)

// Severity floor levels, ordered: a signal qualifies when its graded
// severity is at or above the list's floor.
const (
	sevNone     = 0 // no floor
	sevMinor    = 1
	sevModerate = 2
	sevSevere   = 3
)

// Watchlist is one user subscription. Drugs and Reactions are
// normalized in place by Normalize (upper-cased, whitespace-
// collapsed, deduplicated, sorted); a list must watch at least one
// term. Matching is per dimension: a signal matches when it involves
// at least one watched drug AND (if reactions are listed) mentions at
// least one watched reaction; a drug-less list matches on reactions
// alone. A Watchlist handed to Index.Add must not be mutated
// afterwards — the index and the alert path share the pointer.
type Watchlist struct {
	ID   string `json:"id"`
	User string `json:"user"`
	Name string `json:"name,omitempty"`

	Drugs     []string `json:"drugs,omitempty"`
	Reactions []string `json:"reactions,omitempty"`

	// MinScore / MinSupport gate signals below these thresholds.
	MinScore   float64 `json:"min_score,omitempty"`
	MinSupport int     `json:"min_support,omitempty"`
	// SeverityFloor is "", "minor", "moderate", or "severe": the
	// minimum graded severity (curated severity for known
	// interactions, serious-outcome share otherwise) a signal needs.
	SeverityFloor string `json:"severity_floor,omitempty"`
	// RareOnly keeps only signals whose support sits below the
	// quarter's mean signal support (the rarity gate of the
	// rare-and-unexpected filter pipeline).
	RareOnly bool `json:"rare_only,omitempty"`
	// UnexpectedOnly keeps only signals that are not fully explained
	// by the knowledge base: either the combination is uncurated, or
	// it fires a reaction the curated entry does not list.
	UnexpectedOnly bool `json:"unexpected_only,omitempty"`

	CreatedAt time.Time `json:"created_at,omitempty"`

	// sevFloor is SeverityFloor parsed by Normalize; not serialized.
	sevFloor int
}

// Normalize validates the list and canonicalizes its terms in place:
// drugs upper-cased and trimmed, reactions through
// knowledge.NormReaction, both deduplicated and sorted. It is called
// by Index.Add, so every indexed list is normalized exactly once.
func (w *Watchlist) Normalize() error {
	w.User = strings.TrimSpace(w.User)
	if w.User == "" {
		return fmt.Errorf("watch: user required")
	}
	if len(w.User) > MaxUserLen {
		return fmt.Errorf("watch: user longer than %d bytes", MaxUserLen)
	}
	if strings.ContainsAny(w.User, "/ \t\n") {
		return fmt.Errorf("watch: user must not contain slashes or whitespace")
	}
	w.Name = strings.TrimSpace(w.Name)
	if len(w.Name) > MaxNameLen {
		return fmt.Errorf("watch: name longer than %d bytes", MaxNameLen)
	}
	if len(w.Drugs) > MaxTerms {
		return fmt.Errorf("watch: more than %d drugs", MaxTerms)
	}
	if len(w.Reactions) > MaxTerms {
		return fmt.Errorf("watch: more than %d reactions", MaxTerms)
	}
	w.Drugs = normTerms(w.Drugs, func(s string) string {
		return strings.ToUpper(strings.TrimSpace(s))
	})
	w.Reactions = normTerms(w.Reactions, knowledge.NormReaction)
	if len(w.Drugs) == 0 && len(w.Reactions) == 0 {
		return fmt.Errorf("watch: list must watch at least one drug or reaction")
	}
	if w.MinScore < 0 || w.MinSupport < 0 {
		return fmt.Errorf("watch: negative threshold")
	}
	floor, err := parseSeverityFloor(w.SeverityFloor)
	if err != nil {
		return err
	}
	w.sevFloor = floor
	w.SeverityFloor = severityFloorName(floor)
	return nil
}

// normTerms normalizes, drops empties, deduplicates, and sorts.
func normTerms(terms []string, norm func(string) string) []string {
	out := terms[:0]
	for _, t := range terms {
		if n := norm(t); n != "" {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	dedup := out[:0]
	for i, t := range out {
		if i == 0 || t != out[i-1] {
			dedup = append(dedup, t)
		}
	}
	return dedup
}

func parseSeverityFloor(s string) (int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return sevNone, nil
	case "minor":
		return sevMinor, nil
	case "moderate":
		return sevModerate, nil
	case "severe":
		return sevSevere, nil
	}
	return 0, fmt.Errorf("watch: severity_floor %q (want minor, moderate, or severe)", s)
}

func severityFloorName(floor int) string {
	switch floor {
	case sevMinor:
		return "minor"
	case sevModerate:
		return "moderate"
	case sevSevere:
		return "severe"
	default:
		return ""
	}
}
