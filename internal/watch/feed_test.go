package watch

import (
	"fmt"
	"testing"
	"time"
)

func TestFeedsPushAndSince(t *testing.T) {
	f := NewFeeds(4)
	now := time.Unix(1700000000, 0)
	dropped := f.PushAll(now, []Alert{
		{User: "a", ListID: "l1", SignalKey: "S1"},
		{User: "a", ListID: "l1", SignalKey: "S2"},
		{User: "b", ListID: "l2", SignalKey: "S1"},
	})
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	all := f.Since("a", 0, 0)
	if len(all) != 2 || all[0].SignalKey != "S1" || all[1].SignalKey != "S2" {
		t.Fatalf("a's feed = %+v", all)
	}
	if all[0].Seq == 0 || all[1].Seq <= all[0].Seq || !all[0].Time.Equal(now) {
		t.Fatalf("seq/time not stamped: %+v", all)
	}
	// Cursor: only alerts after the given Seq.
	rest := f.Since("a", all[0].Seq, 0)
	if len(rest) != 1 || rest[0].SignalKey != "S2" {
		t.Fatalf("since cursor = %+v", rest)
	}
	if got := f.Since("nobody", 0, 0); got != nil {
		t.Fatalf("unknown user feed = %+v", got)
	}
	// Limit keeps the newest n.
	if got := f.Since("a", 0, 1); len(got) != 1 || got[0].SignalKey != "S2" {
		t.Fatalf("limited = %+v", got)
	}
}

func TestFeedsRingOverwrite(t *testing.T) {
	f := NewFeeds(3)
	now := time.Unix(1700000000, 0)
	var batch []Alert
	for i := 0; i < 5; i++ {
		batch = append(batch, Alert{User: "u", SignalKey: fmt.Sprintf("S%d", i)})
	}
	if dropped := f.PushAll(now, batch); dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
	got := f.Since("u", 0, 0)
	if len(got) != 3 {
		t.Fatalf("retained = %+v", got)
	}
	for i, a := range got {
		if want := fmt.Sprintf("S%d", i+2); a.SignalKey != want {
			t.Fatalf("slot %d = %s, want %s (oldest overwritten first)", i, a.SignalKey, want)
		}
	}
	st := f.Stats()
	if st.Users != 1 || st.Pushed != 5 || st.Dropped != 2 || st.Capacity != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFeedsDefaultCapacity(t *testing.T) {
	f := NewFeeds(0)
	if f.Stats().Capacity != DefaultFeedCapacity {
		t.Fatalf("capacity = %d", f.Stats().Capacity)
	}
}
