package watch

import "maras/internal/obs"

// Metrics bundles the maras_watch_* instruments. A nil *Metrics is
// checked at every call site, so metering is optional (benchmarks run
// without a registry).
type Metrics struct {
	Lists    *obs.Gauge
	Users    *obs.Gauge
	Keys     *obs.Gauge
	Postings *obs.Gauge

	Evaluations    *obs.Counter
	ChangedSignals *obs.Counter
	Candidates     *obs.Counter
	Alerts         *obs.Counter
	Suppressed     *obs.Counter
	DriftEvents    *obs.Counter
	FeedDropped    *obs.Counter

	EvalSeconds *obs.Histogram
}

// NewMetrics registers the watch instrument family on reg (nil reg
// returns nil, which every method-less call site tolerates).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Lists: reg.Gauge("maras_watch_lists",
			"Live watchlists in the inverted index."),
		Users: reg.Gauge("maras_watch_users",
			"Distinct users holding at least one watchlist."),
		Keys: reg.Gauge("maras_watch_index_keys",
			"Distinct drug and reaction terms in the inverted index."),
		Postings: reg.Gauge("maras_watch_index_postings",
			"Posting entries in the inverted index (including tombstoned)."),
		Evaluations: reg.Counter("maras_watch_evaluations_total",
			"Watch evaluation passes over loaded quarters."),
		ChangedSignals: reg.Counter("maras_watch_changed_signals_total",
			"Signals whose fingerprint changed and were routed through the index."),
		Candidates: reg.Counter("maras_watch_candidates_total",
			"Candidate (signal, watchlist) pairs visited during routing."),
		Alerts: reg.Counter("maras_watch_alerts_total",
			"Alerts that qualified and were pushed to user feeds."),
		Suppressed: reg.Counter("maras_watch_suppressed_total",
			"Qualified alerts suppressed as duplicates of already-fired state."),
		DriftEvents: reg.Counter("maras_watch_drift_events_total",
			"Audit drift events consumed by the watch evaluator."),
		FeedDropped: reg.Counter("maras_watch_feed_dropped_total",
			"Alerts overwritten in full per-user feed rings."),
		EvalSeconds: reg.Histogram("maras_watch_eval_seconds",
			"Latency of watch evaluation passes.", obs.DefaultLatencyBuckets),
	}
}

// SyncIndex refreshes the index-shape gauges from a stats snapshot.
func (m *Metrics) SyncIndex(st IndexStats) {
	if m == nil {
		return
	}
	m.Lists.Set(int64(st.Lists))
	m.Users.Set(int64(st.Users))
	m.Keys.Set(int64(st.Keys))
	m.Postings.Set(int64(st.Postings))
}
