package watch

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/knowledge"
	"maras/internal/obs"
	"maras/internal/obs/prof"
	"maras/internal/obs/wide"
)

// SpanEvaluate is the trace span emitted around every evaluation pass.
const SpanEvaluate = "watch_evaluate"

// DefaultEvalBudget is the per-pass latency budget when Options leaves
// it zero; passes exceeding it raise a SevWarn audit event.
const DefaultEvalBudget = 50 * time.Millisecond

// Options wires an Evaluator. Index is required; everything else is
// optional (nil Feeds drops alerts, nil Metrics skips metering, nil
// Auditor disables slow-pass events, nil Knowledge makes every signal
// "unexpected").
type Options struct {
	Index     *Index
	Feeds     *Feeds
	Knowledge *knowledge.Base
	Metrics   *Metrics
	Auditor   *audit.Auditor
	// Budget is the per-pass latency budget (DefaultEvalBudget when
	// zero); exceeding it records a watch_eval_slow audit event.
	Budget time.Duration
	// Wide, when non-nil, receives one wide event per evaluation pass
	// (kind watch_eval, quarter, duration) linked to the triggering
	// trace when one is active.
	Wide *wide.Ring
	// Now stubs the clock in tests.
	Now func() time.Time
}

// Result summarizes one evaluation pass.
type Result struct {
	Quarter    string    `json:"quarter"`
	Signals    int       `json:"signals"`
	Changed    int       `json:"changed"`
	Candidates int       `json:"candidates"`
	Alerts     int       `json:"alerts"`
	Suppressed int       `json:"suppressed"`
	DurationMS float64   `json:"duration_ms"`
	At         time.Time `json:"at"`
}

// EvalStats is the operational view of the evaluator.
type EvalStats struct {
	Evaluations     uint64 `json:"evaluations"`
	TrackedQuarters int    `json:"tracked_quarters"`
	LastResult      Result `json:"last_result"`
}

// Evaluator routes changed signals through the index and materializes
// qualified alerts. Evaluation passes are serialized by ev.mu; the
// index is only read-locked during routing, so CRUD stays responsive
// under evaluation.
type Evaluator struct {
	opts   Options
	budget time.Duration
	now    func() time.Time

	mu sync.Mutex
	// fps holds, per quarter label, each signal identity's last-seen
	// fingerprint. A signal is "changed" when its fingerprint differs
	// (or the quarter is new or marked dirty).
	fps map[string]map[uint64]uint64
	// fired dedups alerts per quarter label: the fnv hash of
	// (list ID, signal key, fingerprint). Dirty re-evaluations re-route
	// unchanged signals; this is what keeps them from re-firing.
	fired map[string]map[uint64]struct{}
	// dirty marks quarters whose next pass must re-route every signal
	// (set when drift churn or rank-shift events implicate them).
	dirty map[string]bool

	m     marks
	evals uint64
	last  Result
}

// NewEvaluator wires an evaluator; Options.Index must be non-nil.
func NewEvaluator(opts Options) *Evaluator {
	if opts.Index == nil {
		panic("watch: Options.Index required")
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultEvalBudget
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Evaluator{
		opts:   opts,
		budget: budget,
		now:    now,
		fps:    map[string]map[uint64]uint64{},
		fired:  map[string]map[uint64]struct{}{},
		dirty:  map[string]bool{},
	}
}

// sigView is the per-changed-signal state precomputed once before
// routing, so the inner (signal × candidate) loop does map lookups
// and integer compares only — at 1M lists the message sprintf alone
// would otherwise dominate the pass.
type sigView struct {
	sig        *Signal
	fp         uint64
	sev        int
	sevName    string
	rare       bool
	unexpected bool
	message    string
	drugSet    map[string]bool
	reacSet    map[string]bool
}

// EvaluateQuarter fingerprints the quarter's signals, routes the
// changed ones through the index, qualifies each candidate watchlist,
// and pushes qualified alerts to the feeds. Safe for concurrent use;
// passes are serialized.
func (ev *Evaluator) EvaluateQuarter(ctx context.Context, label string, sigs []Signal) Result {
	_, sp := obs.StartSpan(ctx, SpanEvaluate)
	sp.SetAttr("quarter", label)
	start := ev.now()

	// op=watch_eval labels the routing pass for continuous-profiling
	// captures — at 1M lists this is a hot path worth attributing.
	var (
		res  Result
		slow bool
	)
	ev.mu.Lock()
	prof.Do(ctx, func(context.Context) {
		res, slow = ev.evaluateLocked(label, sigs, start)
	}, prof.LabelOp, "watch_eval", "quarter", label)
	ev.mu.Unlock()

	if m := ev.opts.Metrics; m != nil {
		m.Evaluations.Inc()
		m.ChangedSignals.Add(int64(res.Changed))
		m.Candidates.Add(int64(res.Candidates))
		m.Alerts.Add(int64(res.Alerts))
		m.Suppressed.Add(int64(res.Suppressed))
		m.EvalSeconds.Observe(res.DurationMS / 1000)
		m.SyncIndex(ev.opts.Index.Stats())
	}
	sp.SetInt("signals", int64(res.Signals))
	sp.SetInt("changed", int64(res.Changed))
	sp.SetInt("candidates", int64(res.Candidates))
	sp.SetInt("alerts", int64(res.Alerts))
	sp.End()
	ev.opts.Wide.Emit(wide.Event{
		Kind: wide.KindWatchEval, Quarter: label, Status: 200,
		Duration: time.Duration(res.DurationMS * float64(time.Millisecond)),
		Trace:    sp.TraceID(),
	})

	// Audit the budget breach after releasing ev.mu: Record invokes
	// subscribers synchronously, and HandleAuditEvent may be one.
	key := "watch/slow_eval/" + label
	if slow {
		ev.opts.Auditor.RecordEventOnce(key, audit.Event{
			Rule:     "watch_eval_slow",
			Severity: audit.SevWarn,
			Scope:    label,
			Message: fmt.Sprintf("watch evaluation of %s took %.1fms (budget %s)",
				label, res.DurationMS, ev.budget),
		})
	} else {
		ev.opts.Auditor.ForgetEvent(key)
	}
	return res
}

func (ev *Evaluator) evaluateLocked(label string, sigs []Signal, start time.Time) (Result, bool) {
	res := Result{Quarter: label, Signals: len(sigs), At: start}

	// Rarity gate baseline: the quarter's mean signal support.
	var meanSupport float64
	if len(sigs) > 0 {
		total := 0
		for i := range sigs {
			total += sigs[i].Support
		}
		meanSupport = float64(total) / float64(len(sigs))
	}

	// Changed detection against the quarter's fingerprint map. A dirty
	// quarter re-routes everything; the fired dedup below keeps
	// unchanged state from re-firing.
	prev := ev.fps[label]
	if prev == nil {
		prev = make(map[uint64]uint64, len(sigs))
		ev.fps[label] = prev
	}
	forceAll := ev.dirty[label]
	delete(ev.dirty, label)

	changed := make([]sigView, 0, 16)
	kb := ev.opts.Knowledge
	for i := range sigs {
		s := &sigs[i]
		id := s.identity()
		fp := s.fingerprint()
		if !forceAll {
			if old, seen := prev[id]; seen && old == fp {
				continue
			}
		}
		prev[id] = fp
		v := sigView{
			sig:     s,
			fp:      fp,
			sev:     s.severity(),
			rare:    float64(s.Support) < meanSupport,
			drugSet: make(map[string]bool, len(s.Drugs)),
			reacSet: make(map[string]bool, len(s.Reactions)),
		}
		v.sevName = severityFloorName(v.sev)
		for _, d := range s.Drugs {
			v.drugSet[d] = true
		}
		for _, r := range s.Reactions {
			v.reacSet[r] = true
		}
		if s.Known == nil {
			v.unexpected = true
		} else if kb != nil {
			for _, r := range s.Reactions {
				if !kb.KnownReaction(s.Drugs, r) {
					v.unexpected = true
					break
				}
			}
		}
		v.message = fmt.Sprintf("%s: signal %s rank %d score %.3f support %d",
			label, s.Key, s.Rank, s.Score, s.Support)
		changed = append(changed, v)
	}
	res.Changed = len(changed)
	if len(changed) == 0 {
		res.DurationMS = float64(ev.now().Sub(start)) / float64(time.Millisecond)
		ev.finishLocked(&res)
		return res, res.DurationMS > float64(ev.budget)/float64(time.Millisecond)
	}

	fired := ev.fired[label]
	if fired == nil {
		fired = map[uint64]struct{}{}
		ev.fired[label] = fired
	}

	var alerts []Alert
	ix := ev.opts.Index
	ix.mu.RLock()
	for i := range changed {
		v := &changed[i]
		ix.forEachCandidate(v.sig.Drugs, v.sig.Reactions, &ev.m, func(w *Watchlist, viaReaction bool) {
			res.Candidates++
			// Cross-dimension check: the arrival dimension is matched by
			// construction; only the other dimension (when the list has
			// one) needs verifying.
			if viaReaction {
				if len(w.Drugs) > 0 && !anyIn(w.Drugs, v.drugSet) {
					return
				}
			} else if len(w.Reactions) > 0 && !anyIn(w.Reactions, v.reacSet) {
				return
			}
			if v.sig.Support < w.MinSupport || v.sig.Score < w.MinScore {
				return
			}
			if v.sev < w.sevFloor {
				return
			}
			if w.RareOnly && !v.rare {
				return
			}
			if w.UnexpectedOnly && !v.unexpected {
				return
			}
			h := fnvU64(fnvStr(fnvStr(uint64(fnvOffset), w.ID), v.sig.Key), v.fp)
			if _, dup := fired[h]; dup {
				res.Suppressed++
				return
			}
			fired[h] = struct{}{}
			alerts = append(alerts, Alert{
				User:      w.User,
				ListID:    w.ID,
				ListName:  w.Name,
				Kind:      "signal",
				Quarter:   label,
				SignalKey: v.sig.Key,
				Rank:      v.sig.Rank,
				Score:     v.sig.Score,
				Support:   v.sig.Support,
				Severity:  v.sevName,
				Message:   v.message,
			})
		})
	}
	ix.mu.RUnlock()

	res.Alerts = len(alerts)
	if f := ev.opts.Feeds; f != nil && len(alerts) > 0 {
		if dropped := f.PushAll(start, alerts); dropped > 0 {
			if m := ev.opts.Metrics; m != nil {
				m.FeedDropped.Add(int64(dropped))
			}
		}
	}
	res.DurationMS = float64(ev.now().Sub(start)) / float64(time.Millisecond)
	ev.finishLocked(&res)
	return res, res.DurationMS > float64(ev.budget)/float64(time.Millisecond)
}

func (ev *Evaluator) finishLocked(res *Result) {
	ev.evals++
	ev.last = *res
}

// anyIn reports whether any term is in the set. Lists hold at most
// MaxTerms terms, so a linear scan over the list side is cheapest.
func anyIn(terms []string, set map[string]bool) bool {
	for _, t := range terms {
		if set[t] {
			return true
		}
	}
	return false
}

// HandleAuditEvent consumes audit-log events (wire it with
// audit.Log.OnRecord). signal_lost events with a Subject fire "drift"
// alerts to lists watching any of the lost combination's drugs;
// signal_churn and rank_shift events mark the destination quarter
// dirty so its next evaluation re-routes every signal. Rule gating
// happens before any locking — Record may deliver events the
// evaluator itself produced (watch_eval_slow), and those must not
// re-enter ev.mu.
func (ev *Evaluator) HandleAuditEvent(e audit.Event) {
	switch e.Rule {
	case audit.RuleSignalLost:
		if e.Subject == "" {
			return
		}
		if m := ev.opts.Metrics; m != nil {
			m.DriftEvents.Inc()
		}
		ev.lostSignalAlerts(e)
	case audit.RuleChurn, audit.RuleRankShift:
		if m := ev.opts.Metrics; m != nil {
			m.DriftEvents.Inc()
		}
		// Scope is "from->to"; the destination quarter's signal set is
		// the one whose standing shifted.
		if _, to, ok := strings.Cut(e.Scope, "->"); ok && to != "" {
			ev.mu.Lock()
			ev.dirty[to] = true
			ev.mu.Unlock()
		}
	}
}

// lostSignalAlerts routes a signal_lost drift event: the Subject is
// the lost signal's drug-combination key, so routing goes through drug
// postings only (a reaction-only list has no stake in which drugs
// vanished). Qualification gates are skipped — losing a watched signal
// is always notable — but dedup still applies.
func (ev *Evaluator) lostSignalAlerts(e audit.Event) {
	drugs := strings.Split(e.Subject, "+")
	drugSet := make(map[string]bool, len(drugs))
	for _, d := range drugs {
		drugSet[d] = true
	}
	msg := e.Message
	if msg == "" {
		msg = "signal " + e.Subject + " no longer ranks (" + e.Scope + ")"
	}

	ev.mu.Lock()
	defer ev.mu.Unlock()
	fired := ev.fired[e.Scope]
	if fired == nil {
		fired = map[uint64]struct{}{}
		ev.fired[e.Scope] = fired
	}
	var alerts []Alert
	ix := ev.opts.Index
	ix.mu.RLock()
	ix.forEachCandidate(drugs, nil, &ev.m, func(w *Watchlist, _ bool) {
		h := fnvStr(fnvStr(fnvStr(uint64(fnvOffset), w.ID), e.Subject), e.Scope)
		if _, dup := fired[h]; dup {
			return
		}
		fired[h] = struct{}{}
		alerts = append(alerts, Alert{
			User:      w.User,
			ListID:    w.ID,
			ListName:  w.Name,
			Kind:      "drift",
			Quarter:   e.Scope,
			SignalKey: e.Subject,
			Message:   msg,
		})
	})
	ix.mu.RUnlock()
	if f := ev.opts.Feeds; f != nil && len(alerts) > 0 {
		f.PushAll(ev.now(), alerts)
	}
	if m := ev.opts.Metrics; m != nil && len(alerts) > 0 {
		m.Alerts.Add(int64(len(alerts)))
	}
}

// ResetQuarter forgets a quarter's fingerprints, fired-alert dedup,
// and dirty mark — benchmarks use it to force full re-evaluation.
func (ev *Evaluator) ResetQuarter(label string) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	delete(ev.fps, label)
	delete(ev.fired, label)
	delete(ev.dirty, label)
}

// Stats snapshots the evaluator.
func (ev *Evaluator) Stats() EvalStats {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return EvalStats{
		Evaluations:     ev.evals,
		TrackedQuarters: len(ev.fps),
		LastResult:      ev.last,
	}
}
