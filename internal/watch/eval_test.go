package watch

import (
	"context"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/knowledge"
)

func testEvaluator(t *testing.T, lists ...*Watchlist) (*Evaluator, *Feeds) {
	t.Helper()
	ix := NewIndex()
	for _, w := range lists {
		mustAdd(t, ix, w)
	}
	feeds := NewFeeds(32)
	ev := NewEvaluator(Options{
		Index:     ix,
		Feeds:     feeds,
		Knowledge: knowledge.Builtin(),
	})
	return ev, feeds
}

// sigAW is a curated severe signal (ASPIRIN+WARFARIN -> Haemorrhage).
func sigAW() Signal {
	return Signal{
		Key:          "ASPIRIN+WARFARIN",
		Drugs:        []string{"ASPIRIN", "WARFARIN"},
		Reactions:    []string{"HAEMORRHAGE"},
		Rank:         1,
		Score:        0.91,
		Support:      40,
		SeriousShare: 0.7,
		Known:        knowledge.Builtin().Lookup([]string{"ASPIRIN", "WARFARIN"}),
	}
}

// sigNovel is an uncurated low-support signal.
func sigNovel() Signal {
	return Signal{
		Key:          "DRUGX+DRUGY",
		Drugs:        []string{"DRUGX", "DRUGY"},
		Reactions:    []string{"DIZZINESS"},
		Rank:         9,
		Score:        0.30,
		Support:      4,
		SeriousShare: 0.1,
	}
}

func TestEvaluateQualification(t *testing.T) {
	ev, feeds := testEvaluator(t,
		&Watchlist{ID: "drug-match", User: "u1", Drugs: []string{"aspirin"}},
		&Watchlist{ID: "reac-match", User: "u2", Reactions: []string{"Haemorrhage"}},
		&Watchlist{ID: "cross-miss", User: "u3", Drugs: []string{"ASPIRIN"}, Reactions: []string{"RASH"}},
		&Watchlist{ID: "score-gate", User: "u4", Drugs: []string{"ASPIRIN"}, MinScore: 0.95},
		&Watchlist{ID: "support-gate", User: "u5", Drugs: []string{"ASPIRIN"}, MinSupport: 100},
		&Watchlist{ID: "severe-ok", User: "u6", Drugs: []string{"ASPIRIN"}, SeverityFloor: "severe"},
		&Watchlist{ID: "unexpected-gate", User: "u7", Drugs: []string{"ASPIRIN"}, UnexpectedOnly: true},
		&Watchlist{ID: "other-drug", User: "u8", Drugs: []string{"LISINOPRIL"}},
	)
	res := ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{sigAW()})
	if res.Signals != 1 || res.Changed != 1 {
		t.Fatalf("result = %+v", res)
	}
	want := map[string]bool{"drug-match": true, "reac-match": true, "severe-ok": true}
	got := map[string]bool{}
	for user := range map[string]bool{"u1": true, "u2": true, "u3": true, "u4": true, "u5": true, "u6": true, "u7": true, "u8": true} {
		for _, a := range feeds.Since(user, 0, 0) {
			got[a.ListID] = true
			if a.Kind != "signal" || a.Quarter != "2014Q1" || a.SignalKey != "ASPIRIN+WARFARIN" {
				t.Errorf("alert %+v", a)
			}
			if a.Severity != "severe" {
				t.Errorf("severity = %q", a.Severity)
			}
		}
	}
	for id := range want {
		if !got[id] {
			t.Errorf("list %s did not fire", id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("list %s fired but should have been gated", id)
		}
	}
	if res.Alerts != len(want) {
		t.Errorf("alerts = %d, want %d", res.Alerts, len(want))
	}
}

func TestEvaluateRareAndUnexpected(t *testing.T) {
	ev, feeds := testEvaluator(t,
		&Watchlist{ID: "rare", User: "r", Drugs: []string{"DRUGX", "ASPIRIN"}, RareOnly: true},
		&Watchlist{ID: "unexp", User: "x", Drugs: []string{"DRUGX", "ASPIRIN"}, UnexpectedOnly: true},
	)
	// Mean support = (40+4)/2 = 22: the novel signal is rare, the
	// curated one is not; the novel one is unexpected (Known == nil).
	ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{sigAW(), sigNovel()})
	for _, tc := range []struct{ user, wantKey string }{
		{"r", "DRUGX+DRUGY"},
		{"x", "DRUGX+DRUGY"},
	} {
		alerts := feeds.Since(tc.user, 0, 0)
		if len(alerts) != 1 || alerts[0].SignalKey != tc.wantKey {
			t.Fatalf("user %s alerts = %+v", tc.user, alerts)
		}
	}
}

// The dedup acceptance criterion: re-evaluating identical signal
// state routes nothing and fires nothing.
func TestEvaluateUnchangedFiresNothing(t *testing.T) {
	ev, feeds := testEvaluator(t,
		&Watchlist{ID: "a", User: "u", Drugs: []string{"ASPIRIN"}},
	)
	first := ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{sigAW(), sigNovel()})
	if first.Alerts != 1 {
		t.Fatalf("first pass alerts = %d", first.Alerts)
	}
	second := ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{sigAW(), sigNovel()})
	if second.Changed != 0 || second.Candidates != 0 || second.Alerts != 0 {
		t.Fatalf("unchanged re-evaluation = %+v", second)
	}
	if n := len(feeds.Since("u", 0, 0)); n != 1 {
		t.Fatalf("feed grew to %d alerts", n)
	}
}

func TestEvaluateChangedSignalRefires(t *testing.T) {
	ev, feeds := testEvaluator(t,
		&Watchlist{ID: "a", User: "u", Drugs: []string{"ASPIRIN"}},
	)
	s := sigAW()
	ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{s})
	s.Score = 0.95 // refresh moved the score
	res := ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{s})
	if res.Changed != 1 || res.Alerts != 1 {
		t.Fatalf("changed re-evaluation = %+v", res)
	}
	alerts := feeds.Since("u", 0, 0)
	if len(alerts) != 2 || alerts[1].Score != 0.95 {
		t.Fatalf("alerts = %+v", alerts)
	}
	// The same quarter in a different label is independent state.
	res = ev.EvaluateQuarter(context.Background(), "2014Q2", []Signal{s})
	if res.Alerts != 1 {
		t.Fatalf("other quarter = %+v", res)
	}
}

func TestHandleAuditEventSignalLost(t *testing.T) {
	ev, feeds := testEvaluator(t,
		&Watchlist{ID: "drug", User: "u1", Drugs: []string{"ASPIRIN"}, MinScore: 99, MinSupport: 99},
		&Watchlist{ID: "reac-only", User: "u2", Reactions: []string{"HAEMORRHAGE"}},
	)
	e := audit.Event{
		Rule:    audit.RuleSignalLost,
		Scope:   "2014Q1->2014Q2",
		Subject: "ASPIRIN+WARFARIN",
		Message: "signal vanished",
	}
	ev.HandleAuditEvent(e)
	ev.HandleAuditEvent(e) // same loss reported twice dedups

	alerts := feeds.Since("u1", 0, 0)
	if len(alerts) != 1 {
		t.Fatalf("u1 alerts = %+v", alerts)
	}
	a := alerts[0]
	// Thresholds do not gate drift alerts (the list's MinScore 99
	// would reject any signal).
	if a.Kind != "drift" || a.SignalKey != "ASPIRIN+WARFARIN" || a.Quarter != "2014Q1->2014Q2" {
		t.Fatalf("alert = %+v", a)
	}
	if !strings.Contains(a.Message, "vanished") {
		t.Fatalf("message = %q", a.Message)
	}
	// Reaction-only lists have no stake in lost drug combinations.
	if got := feeds.Since("u2", 0, 0); len(got) != 0 {
		t.Fatalf("reaction-only list alerted: %+v", got)
	}
}

func TestHandleAuditEventChurnMarksDirty(t *testing.T) {
	ev, feeds := testEvaluator(t,
		&Watchlist{ID: "a", User: "u", Drugs: []string{"ASPIRIN"}},
	)
	sigs := []Signal{sigAW()}
	ev.EvaluateQuarter(context.Background(), "2014Q2", sigs)
	if res := ev.EvaluateQuarter(context.Background(), "2014Q2", sigs); res.Changed != 0 {
		t.Fatalf("precondition: unchanged pass routed %d", res.Changed)
	}

	ev.HandleAuditEvent(audit.Event{Rule: audit.RuleChurn, Scope: "2014Q1->2014Q2"})
	res := ev.EvaluateQuarter(context.Background(), "2014Q2", sigs)
	// Dirty forces re-routing, but fired-state dedup still suppresses
	// the unchanged alert.
	if res.Changed != 1 || res.Alerts != 0 || res.Suppressed != 1 {
		t.Fatalf("dirty re-evaluation = %+v", res)
	}
	if n := len(feeds.Since("u", 0, 0)); n != 1 {
		t.Fatalf("feed has %d alerts", n)
	}
	// Dirty is one-shot.
	if res := ev.EvaluateQuarter(context.Background(), "2014Q2", sigs); res.Changed != 0 {
		t.Fatalf("dirty mark not cleared: %+v", res)
	}
}

// A slow pass records a watch_eval_slow warn event; wiring the log's
// OnRecord back into the evaluator must not deadlock on it.
func TestSlowEvalAuditEvent(t *testing.T) {
	ix := NewIndex()
	mustAdd(t, ix, &Watchlist{ID: "a", User: "u", Drugs: []string{"ASPIRIN"}})
	log := audit.NewLog(audit.LogOptions{})
	auditor := &audit.Auditor{Log: log}

	// A fake clock makes every pass take 10ms against a 1ms budget.
	base := time.Unix(1700000000, 0)
	calls := 0
	ev := NewEvaluator(Options{
		Index:   ix,
		Feeds:   NewFeeds(8),
		Auditor: auditor,
		Budget:  time.Millisecond,
		Now: func() time.Time {
			calls++
			return base.Add(time.Duration(calls) * 10 * time.Millisecond)
		},
	})
	log.OnRecord(ev.HandleAuditEvent) // re-entrant wiring

	ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{sigAW()})
	events := log.Recent(10)
	found := false
	for _, e := range events {
		if e.Rule == "watch_eval_slow" && e.Severity == audit.SevWarn && e.Scope == "2014Q1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no watch_eval_slow event in %+v", events)
	}
}

func TestEvaluatorStats(t *testing.T) {
	ev, _ := testEvaluator(t, &Watchlist{ID: "a", User: "u", Drugs: []string{"ASPIRIN"}})
	ev.EvaluateQuarter(context.Background(), "2014Q1", []Signal{sigAW()})
	st := ev.Stats()
	if st.Evaluations != 1 || st.TrackedQuarters != 1 || st.LastResult.Quarter != "2014Q1" {
		t.Fatalf("stats = %+v", st)
	}
	ev.ResetQuarter("2014Q1")
	if st := ev.Stats(); st.TrackedQuarters != 0 {
		t.Fatalf("ResetQuarter left state: %+v", st)
	}
}
