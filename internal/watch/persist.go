package watch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"
)

// Watchlist persistence: a compact binary snapshot with the store's
// durability pattern — serialize fully in memory, CRC-32 trailer,
// write to a temp file in the destination directory, fsync, rename
// over the target, fsync the directory.
//
// Layout (little-endian):
//
//	magic "MRWL" | version u16 | flags u16 (reserved, 0)
//	count uvarint
//	per list:
//	  ID str | User str | Name str
//	  Drugs strs | Reactions strs
//	  MinScore f64 | MinSupport i64
//	  severity floor u8 (0 none .. 3 severe)
//	  flags u8 (bit0 RareOnly, bit1 UnexpectedOnly)
//	  CreatedAt i64 UnixMilli (0 = zero time)
//	crc32(IEEE) u32 over everything before it
//
// where str = uvarint length + bytes, strs = uvarint count + strs.
var (
	wlMagic = [4]byte{'M', 'R', 'W', 'L'}

	// ErrBadMagic means the file is not a watchlist snapshot.
	ErrBadMagic = errors.New("watch: bad magic")
	// ErrVersion means the snapshot was written by a newer format.
	ErrVersion = errors.New("watch: unsupported snapshot version")
	// ErrCorrupt means the snapshot fails its CRC or is truncated.
	ErrCorrupt = errors.New("watch: corrupt snapshot")
)

const wlVersion = 1

// SaveFile atomically writes the lists to path.
func SaveFile(path string, lists []*Watchlist) error {
	var buf bytes.Buffer
	buf.Write(wlMagic[:])
	putU16(&buf, wlVersion)
	putU16(&buf, 0)
	putUvarint(&buf, uint64(len(lists)))
	for _, w := range lists {
		putStr(&buf, w.ID)
		putStr(&buf, w.User)
		putStr(&buf, w.Name)
		putStrs(&buf, w.Drugs)
		putStrs(&buf, w.Reactions)
		putF64(&buf, w.MinScore)
		putI64(&buf, int64(w.MinSupport))
		floor, err := parseSeverityFloor(w.SeverityFloor)
		if err != nil {
			return err
		}
		buf.WriteByte(byte(floor))
		var flags byte
		if w.RareOnly {
			flags |= 1
		}
		if w.UnexpectedOnly {
			flags |= 2
		}
		buf.WriteByte(flags)
		var created int64
		if !w.CreatedAt.IsZero() {
			created = w.CreatedAt.UnixMilli()
		}
		putI64(&buf, created)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(e error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("watch: %w", e)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("watch: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("watch: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("watch: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadFile reads a snapshot written by SaveFile. A missing file is
// reported via fs.ErrNotExist (callers typically treat it as an empty
// population). Loaded lists are not yet normalized — pass them through
// Index.Add.
func LoadFile(path string) ([]*Watchlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(wlMagic)+4+4 {
		return nil, ErrCorrupt
	}
	if !bytes.Equal(data[:4], wlMagic[:]) {
		return nil, ErrBadMagic
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, ErrCorrupt
	}
	r := &wlReader{data: body, off: 4}
	version := r.u16()
	r.u16() // flags, reserved
	if r.err == nil && version != wlVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, version)
	}
	count := r.uvarint()
	if r.err != nil {
		return nil, ErrCorrupt
	}
	if count > uint64(len(body)) { // each list costs >= 1 byte
		return nil, ErrCorrupt
	}
	lists := make([]*Watchlist, 0, count)
	for i := uint64(0); i < count; i++ {
		w := &Watchlist{}
		w.ID = r.str()
		w.User = r.str()
		w.Name = r.str()
		w.Drugs = r.strs()
		w.Reactions = r.strs()
		w.MinScore = r.f64()
		w.MinSupport = int(r.i64())
		w.SeverityFloor = severityFloorName(int(r.u8()))
		flags := r.u8()
		w.RareOnly = flags&1 != 0
		w.UnexpectedOnly = flags&2 != 0
		if ms := r.i64(); ms != 0 {
			w.CreatedAt = time.UnixMilli(ms).UTC()
		}
		if r.err != nil {
			return nil, ErrCorrupt
		}
		lists = append(lists, w)
	}
	if r.off != len(r.data) {
		return nil, ErrCorrupt
	}
	return lists, nil
}

func putU16(b *bytes.Buffer, v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	b.Write(t[:])
}

func putI64(b *bytes.Buffer, v int64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], uint64(v))
	b.Write(t[:])
}

func putF64(b *bytes.Buffer, v float64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], math.Float64bits(v))
	b.Write(t[:])
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var t [binary.MaxVarintLen64]byte
	b.Write(t[:binary.PutUvarint(t[:], v)])
}

func putStr(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func putStrs(b *bytes.Buffer, ss []string) {
	putUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		putStr(b, s)
	}
}

// wlReader decodes with sticky errors so each field read stays a
// one-liner; any short read poisons the rest.
type wlReader struct {
	data []byte
	off  int
	err  error
}

func (r *wlReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *wlReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wlReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *wlReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *wlReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *wlReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.off += n
	return v
}

func (r *wlReader) str() string {
	n := r.uvarint()
	if r.err != nil || n > uint64(len(r.data)-r.off) {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return ""
	}
	return string(r.take(int(n)))
}

func (r *wlReader) strs() []string {
	n := r.uvarint()
	if r.err != nil || n == 0 || n > uint64(len(r.data)-r.off) {
		if r.err == nil && n != 0 {
			r.err = ErrCorrupt
		}
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.str())
	}
	return out
}
