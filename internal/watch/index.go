package watch

import (
	"fmt"
	"sync"
)

// compactMinDead is the floor of tombstoned posting entries below
// which compaction is not worth a full rebuild.
const compactMinDead = 1024

// Index is the inverted index at the heart of the subsystem: each
// normalized drug and reaction term maps to the posting list of
// watchlist slots subscribed to it, so routing a changed signal costs
// the length of its terms' posting lists — independent of the total
// population.
//
// Slots are dense indices into entries; removal tombstones the slot
// (entries[slot] = nil) and leaves postings in place, so the hot path
// needs only a nil check and removal never rewrites posting lists.
// Slots are NOT reused between compactions — a posting entry
// therefore always refers to the list it was created for, which lets
// evaluation trust the arrival dimension (a candidate reached via a
// drug posting is known to watch that drug). When tombstoned postings
// exceed a quarter of the total, compaction rebuilds the index
// densely under the write lock.
type Index struct {
	mu      sync.RWMutex
	entries []*Watchlist // slot -> list; nil = tombstone
	byID    map[string]uint32
	byUser  map[string][]uint32 // insertion order per user

	drugs map[string][]uint32
	reacs map[string][]uint32

	live        int // non-tombstoned entries
	postings    int // posting entries currently in the maps
	dead        int // of those, tombstoned
	compactions uint64
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byID:   map[string]uint32{},
		byUser: map[string][]uint32{},
		drugs:  map[string][]uint32{},
		reacs:  map[string][]uint32{},
	}
}

// Add normalizes w (rejecting invalid lists) and indexes it. The ID
// must be unique; the index takes ownership of the pointer.
func (ix *Index) Add(w *Watchlist) error {
	if err := w.Normalize(); err != nil {
		return err
	}
	if w.ID == "" {
		return fmt.Errorf("watch: list ID required")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byID[w.ID]; dup {
		return fmt.Errorf("watch: duplicate list ID %q", w.ID)
	}
	slot := uint32(len(ix.entries))
	ix.entries = append(ix.entries, w)
	ix.byID[w.ID] = slot
	ix.byUser[w.User] = append(ix.byUser[w.User], slot)
	for _, d := range w.Drugs {
		ix.drugs[d] = append(ix.drugs[d], slot)
	}
	for _, r := range w.Reactions {
		ix.reacs[r] = append(ix.reacs[r], slot)
	}
	ix.live++
	ix.postings += len(w.Drugs) + len(w.Reactions)
	return nil
}

// Remove tombstones the list with the given ID, reporting whether it
// existed. Posting entries linger until compaction.
func (ix *Index) Remove(id string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	slot, ok := ix.byID[id]
	if !ok {
		return false
	}
	w := ix.entries[slot]
	ix.entries[slot] = nil
	delete(ix.byID, id)
	slots := ix.byUser[w.User]
	for i, s := range slots {
		if s == slot {
			ix.byUser[w.User] = append(slots[:i], slots[i+1:]...)
			break
		}
	}
	if len(ix.byUser[w.User]) == 0 {
		delete(ix.byUser, w.User)
	}
	ix.live--
	ix.dead += len(w.Drugs) + len(w.Reactions)
	ix.maybeCompactLocked()
	return true
}

// maybeCompactLocked rebuilds the index densely once tombstoned
// postings pass a quarter of the total (and a fixed floor, so tiny
// indexes never bother). Caller holds the write lock.
func (ix *Index) maybeCompactLocked() {
	if ix.dead < compactMinDead || ix.dead*4 <= ix.postings {
		return
	}
	entries := make([]*Watchlist, 0, ix.live)
	byID := make(map[string]uint32, ix.live)
	byUser := make(map[string][]uint32, len(ix.byUser))
	drugs := make(map[string][]uint32)
	reacs := make(map[string][]uint32)
	postings := 0
	// Old slot order preserves per-user insertion order.
	for _, w := range ix.entries {
		if w == nil {
			continue
		}
		slot := uint32(len(entries))
		entries = append(entries, w)
		byID[w.ID] = slot
		byUser[w.User] = append(byUser[w.User], slot)
		for _, d := range w.Drugs {
			drugs[d] = append(drugs[d], slot)
		}
		for _, r := range w.Reactions {
			reacs[r] = append(reacs[r], slot)
		}
		postings += len(w.Drugs) + len(w.Reactions)
	}
	ix.entries, ix.byID, ix.byUser = entries, byID, byUser
	ix.drugs, ix.reacs = drugs, reacs
	ix.postings, ix.dead = postings, 0
	ix.compactions++
}

// Get returns the list with the given ID.
func (ix *Index) Get(id string) (*Watchlist, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	slot, ok := ix.byID[id]
	if !ok {
		return nil, false
	}
	return ix.entries[slot], true
}

// ByUser returns the user's lists in creation order.
func (ix *Index) ByUser(user string) []*Watchlist {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	slots := ix.byUser[user]
	out := make([]*Watchlist, 0, len(slots))
	for _, s := range slots {
		if w := ix.entries[s]; w != nil {
			out = append(out, w)
		}
	}
	return out
}

// UserCount returns how many lists the user holds (the per-user cap
// check).
func (ix *Index) UserCount(user string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byUser[user])
}

// Len returns the number of live lists.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// All returns every live list in slot order (persistence snapshots).
func (ix *Index) All() []*Watchlist {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]*Watchlist, 0, ix.live)
	for _, w := range ix.entries {
		if w != nil {
			out = append(out, w)
		}
	}
	return out
}

// IndexStats is the operational view of the index.
type IndexStats struct {
	Lists         int    `json:"lists"`
	Users         int    `json:"users"`
	Keys          int    `json:"index_keys"`
	Postings      int    `json:"index_postings"`
	DeadPostings  int    `json:"dead_postings"`
	Compactions   uint64 `json:"compactions"`
	CapacitySlots int    `json:"capacity_slots"`
}

// Stats snapshots the index shape.
func (ix *Index) Stats() IndexStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return IndexStats{
		Lists:         ix.live,
		Users:         len(ix.byUser),
		Keys:          len(ix.drugs) + len(ix.reacs),
		Postings:      ix.postings,
		DeadPostings:  ix.dead,
		Compactions:   ix.compactions,
		CapacitySlots: len(ix.entries),
	}
}

// marks is an epoch-stamped visited set over index slots: next()
// opens a new epoch in O(1), visit() marks and reports first sight.
// One marks value is owned by one evaluator (evaluation passes are
// serialized), sized lazily to the index.
type marks struct {
	epoch []uint32
	cur   uint32
}

func (m *marks) next(n int) {
	if n > len(m.epoch) {
		grown := make([]uint32, n+n/2+16)
		copy(grown, m.epoch)
		m.epoch = grown
	}
	m.cur++
	if m.cur == 0 { // wrapped: stale stamps would look current
		for i := range m.epoch {
			m.epoch[i] = 0
		}
		m.cur = 1
	}
}

func (m *marks) visit(slot uint32) bool {
	if m.epoch[slot] == m.cur {
		return false
	}
	m.epoch[slot] = m.cur
	return true
}

// forEachCandidate delivers every live list subscribed to any of the
// given normalized terms exactly once (per marks epoch), tagged with
// the dimension it arrived through: viaReaction=false means a drug
// posting, so the drug-match condition is already established (slots
// are not reused, so postings never misattribute). Caller holds at
// least the read lock and owns m.
func (ix *Index) forEachCandidate(drugs, reacs []string, m *marks, fn func(w *Watchlist, viaReaction bool)) {
	m.next(len(ix.entries))
	for _, d := range drugs {
		for _, slot := range ix.drugs[d] {
			w := ix.entries[slot]
			if w == nil || !m.visit(slot) {
				continue
			}
			fn(w, false)
		}
	}
	for _, r := range reacs {
		for _, slot := range ix.reacs[r] {
			w := ix.entries[slot]
			if w == nil || !m.visit(slot) {
				continue
			}
			fn(w, true)
		}
	}
}
