package watch

import (
	"strings"
	"testing"
)

func TestNormalizeCanonicalizes(t *testing.T) {
	w := &Watchlist{
		ID:        "wl-1",
		User:      " alice ",
		Name:      "  bleeding watch ",
		Drugs:     []string{"warfarin", " Aspirin", "ASPIRIN", ""},
		Reactions: []string{"  haemorrhage ", "Haemorrhage"},
	}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if w.User != "alice" || w.Name != "bleeding watch" {
		t.Fatalf("user/name not trimmed: %q %q", w.User, w.Name)
	}
	if got := strings.Join(w.Drugs, ","); got != "ASPIRIN,WARFARIN" {
		t.Fatalf("drugs = %q", got)
	}
	if got := strings.Join(w.Reactions, ","); got != "HAEMORRHAGE" {
		t.Fatalf("reactions = %q", got)
	}
	if w.sevFloor != sevNone || w.SeverityFloor != "" {
		t.Fatalf("severity floor = %d %q", w.sevFloor, w.SeverityFloor)
	}
}

func TestNormalizeSeverityFloor(t *testing.T) {
	w := &Watchlist{User: "u", Drugs: []string{"A"}, SeverityFloor: " Moderate "}
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if w.sevFloor != sevModerate || w.SeverityFloor != "moderate" {
		t.Fatalf("floor = %d %q", w.sevFloor, w.SeverityFloor)
	}
}

func TestNormalizeRejects(t *testing.T) {
	many := make([]string, MaxTerms+1)
	for i := range many {
		many[i] = "D" + strings.Repeat("X", i+1)
	}
	cases := []struct {
		name string
		w    Watchlist
	}{
		{"no user", Watchlist{Drugs: []string{"A"}}},
		{"user too long", Watchlist{User: strings.Repeat("u", MaxUserLen+1), Drugs: []string{"A"}}},
		{"user with slash", Watchlist{User: "a/b", Drugs: []string{"A"}}},
		{"user with space", Watchlist{User: "a b", Drugs: []string{"A"}}},
		{"name too long", Watchlist{User: "u", Name: strings.Repeat("n", MaxNameLen+1), Drugs: []string{"A"}}},
		{"no terms", Watchlist{User: "u"}},
		{"only empty terms", Watchlist{User: "u", Drugs: []string{"", "  "}}},
		{"too many drugs", Watchlist{User: "u", Drugs: many}},
		{"too many reactions", Watchlist{User: "u", Drugs: []string{"A"}, Reactions: many}},
		{"negative score", Watchlist{User: "u", Drugs: []string{"A"}, MinScore: -1}},
		{"negative support", Watchlist{User: "u", Drugs: []string{"A"}, MinSupport: -1}},
		{"bad severity", Watchlist{User: "u", Drugs: []string{"A"}, SeverityFloor: "fatal"}},
	}
	for _, tc := range cases {
		w := tc.w
		if err := w.Normalize(); err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, tc.w)
		}
	}
}
