package watch

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "watchlists.mrwl")
	in := []*Watchlist{
		{
			ID: "wl-1", User: "alice", Name: "bleeding",
			Drugs: []string{"ASPIRIN", "WARFARIN"}, Reactions: []string{"HAEMORRHAGE"},
			MinScore: 0.5, MinSupport: 10, SeverityFloor: "severe",
			RareOnly: true, CreatedAt: time.UnixMilli(1700000000123).UTC(),
		},
		{
			ID: "wl-2", User: "bob",
			Reactions:      []string{"RASH"},
			UnexpectedOnly: true,
		},
	}
	if err := SaveFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in  %+v %+v\n out %+v %+v", in[0], in[1], out[0], out[1])
	}
	// Loaded lists survive re-normalization into an index.
	ix := NewIndex()
	for _, w := range out {
		if err := ix.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 2 {
		t.Fatalf("index len = %d", ix.Len())
	}
}

func TestPersistEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.mrwl")
	if err := SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}
	out, err := LoadFile(path)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip = %v, %v", out, err)
	}
}

func TestPersistMissingFile(t *testing.T) {
	_, err := LoadFile(filepath.Join(t.TempDir(), "absent.mrwl"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestPersistCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "watchlists.mrwl")
	lists := []*Watchlist{{ID: "wl-1", User: "u", Drugs: []string{"A"}}}
	if err := SaveFile(path, lists); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Flipped payload byte: CRC catches it.
	bad := append([]byte{}, data...)
	bad[len(bad)/2] ^= 0xff
	if _, err := LoadFile(write("flip.mrwl", bad)); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) {
		t.Fatalf("flipped byte err = %v", err)
	}

	// Truncation: CRC (or length floor) catches it.
	if _, err := LoadFile(write("trunc.mrwl", data[:len(data)-6])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated err = %v", err)
	}
	if _, err := LoadFile(write("tiny.mrwl", data[:4])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tiny err = %v", err)
	}

	// Wrong magic.
	bad = append([]byte{}, data...)
	copy(bad, "NOPE")
	if _, err := LoadFile(write("magic.mrwl", bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic err = %v", err)
	}
}

func TestPersistVersionGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "watchlists.mrwl")
	if err := SaveFile(path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 99 // bump version, then re-seal the CRC
	crc := crc32.ChecksumIEEE(data[:len(data)-4])
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc)
	p := filepath.Join(dir, "future.mrwl")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(p); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version err = %v", err)
	}
}
