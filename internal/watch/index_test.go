package watch

import (
	"fmt"
	"testing"
)

func mustAdd(t *testing.T, ix *Index, w *Watchlist) {
	t.Helper()
	if err := ix.Add(w); err != nil {
		t.Fatal(err)
	}
}

func candidates(ix *Index, drugs, reacs []string) map[string]bool {
	m := &marks{}
	out := map[string]bool{}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.forEachCandidate(drugs, reacs, m, func(w *Watchlist, _ bool) {
		out[w.ID] = true
	})
	return out
}

func TestIndexAddRemoveLookup(t *testing.T) {
	ix := NewIndex()
	mustAdd(t, ix, &Watchlist{ID: "a", User: "u1", Drugs: []string{"ASPIRIN"}})
	mustAdd(t, ix, &Watchlist{ID: "b", User: "u1", Reactions: []string{"Haemorrhage"}})
	mustAdd(t, ix, &Watchlist{ID: "c", User: "u2", Drugs: []string{"WARFARIN", "ASPIRIN"}})

	if ix.Len() != 3 || ix.UserCount("u1") != 2 || ix.UserCount("u2") != 1 {
		t.Fatalf("len=%d u1=%d u2=%d", ix.Len(), ix.UserCount("u1"), ix.UserCount("u2"))
	}
	if err := ix.Add(&Watchlist{ID: "a", User: "x", Drugs: []string{"D"}}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if w, ok := ix.Get("b"); !ok || w.User != "u1" {
		t.Fatalf("Get(b) = %v %v", w, ok)
	}
	if got := candidates(ix, []string{"ASPIRIN"}, nil); !got["a"] || !got["c"] || got["b"] {
		t.Fatalf("drug candidates = %v", got)
	}
	if got := candidates(ix, nil, []string{"HAEMORRHAGE"}); !got["b"] || len(got) != 1 {
		t.Fatalf("reaction candidates = %v", got)
	}
	// A signal carrying both dimensions still yields each list once.
	if got := candidates(ix, []string{"ASPIRIN", "WARFARIN"}, []string{"HAEMORRHAGE"}); len(got) != 3 {
		t.Fatalf("combined candidates = %v", got)
	}

	if !ix.Remove("a") || ix.Remove("a") {
		t.Fatal("Remove semantics")
	}
	if _, ok := ix.Get("a"); ok {
		t.Fatal("removed list still resolvable")
	}
	if got := candidates(ix, []string{"ASPIRIN"}, nil); got["a"] || !got["c"] {
		t.Fatalf("tombstoned list still routed: %v", got)
	}
	if lists := ix.ByUser("u1"); len(lists) != 1 || lists[0].ID != "b" {
		t.Fatalf("ByUser(u1) = %v", lists)
	}
	st := ix.Stats()
	if st.Lists != 2 || st.DeadPostings != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIndexCompaction(t *testing.T) {
	ix := NewIndex()
	n := compactMinDead * 2 // one drug posting per list
	for i := 0; i < n; i++ {
		mustAdd(t, ix, &Watchlist{
			ID:    fmt.Sprintf("wl-%d", i),
			User:  fmt.Sprintf("u%d", i%7),
			Drugs: []string{fmt.Sprintf("DRUG%d", i%31)},
		})
	}
	// Removal n/2 crosses dead >= floor with dead*4 > postings, so the
	// last removal compacts and the stats come out clean.
	for i := 0; i < n/2; i++ {
		if !ix.Remove(fmt.Sprintf("wl-%d", i)) {
			t.Fatalf("remove wl-%d", i)
		}
	}
	st := ix.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d removals: %+v", n/2, st)
	}
	if st.DeadPostings != 0 || st.CapacitySlots != st.Lists {
		t.Fatalf("compaction left garbage: %+v", st)
	}
	// Survivors still resolve and route through rebuilt postings.
	survivor := fmt.Sprintf("wl-%d", n-1)
	if _, ok := ix.Get(survivor); !ok {
		t.Fatalf("%s lost in compaction", survivor)
	}
	got := candidates(ix, []string{fmt.Sprintf("DRUG%d", (n-1)%31)}, nil)
	if !got[survivor] {
		t.Fatalf("%s not routed after compaction", survivor)
	}
	for id := range got {
		if w, ok := ix.Get(id); !ok || w == nil {
			t.Fatalf("candidate %s is dead", id)
		}
	}
}

func TestMarksEpochWrap(t *testing.T) {
	m := &marks{}
	m.next(4)
	if !m.visit(1) || m.visit(1) {
		t.Fatal("visit dedup broken")
	}
	m.cur = ^uint32(0) // force wrap on the next epoch
	m.epoch[2] = m.cur
	m.next(4)
	if m.cur != 1 {
		t.Fatalf("cur after wrap = %d", m.cur)
	}
	if !m.visit(2) {
		t.Fatal("stale stamp treated as current after wrap")
	}
}
