package watch

import (
	"context"
	"math"
	"strings"

	"maras/internal/core"
	"maras/internal/knowledge"
)

// Signal is the distilled view of one ranked signal the evaluator
// consumes: identity, the normalized terms routing goes through, and
// the quantities the qualification gates compare. Keeping it separate
// from core.Signal lets benchmarks and tests synthesize populations
// of signals without running the mining pipeline.
type Signal struct {
	Key          string   // canonical drug-combination key
	Drugs        []string // upper-cased drug names
	Reactions    []string // knowledge.NormReaction'd terms
	Rank         int
	Score        float64
	Support      int
	SeriousShare float64
	Known        *knowledge.Interaction // nil = not curated
}

// FromAnalysis distills a mined quarter's ranked signals.
func FromAnalysis(a *core.Analysis) []Signal {
	out := make([]Signal, len(a.Signals))
	for i := range a.Signals {
		sig := &a.Signals[i]
		drugs := make([]string, len(sig.Drugs))
		for j, d := range sig.Drugs {
			drugs[j] = strings.ToUpper(strings.TrimSpace(d))
		}
		reacs := make([]string, len(sig.Reactions))
		for j, r := range sig.Reactions {
			reacs[j] = knowledge.NormReaction(r)
		}
		out[i] = Signal{
			Key:          sig.Key(),
			Drugs:        drugs,
			Reactions:    reacs,
			Rank:         sig.Rank,
			Score:        sig.Score,
			Support:      sig.Support,
			SeriousShare: sig.SeriousShare,
			Known:        sig.Known,
		}
	}
	return out
}

// EvaluateAnalysis distills and evaluates a mined quarter in one
// call — the store OnLoad hook and mine-mode startup use this.
func (ev *Evaluator) EvaluateAnalysis(ctx context.Context, label string, a *core.Analysis) Result {
	return ev.EvaluateQuarter(ctx, label, FromAnalysis(a))
}

// FNV-1a, inlined so fingerprinting and alert dedup hash without
// per-call allocations.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// identity hashes the dimensions that name a signal: the drug
// combination plus its reaction set. Rankings can carry several
// signals for the same drug combination (distinct reaction sets), so
// the drug key alone is not a stable identity for change tracking.
func (s *Signal) identity() uint64 {
	h := fnvStr(uint64(fnvOffset), s.Key)
	for _, r := range s.Reactions {
		h = fnvStr(h, r)
		h = fnvU64(h, '\n')
	}
	return h
}

// fingerprint summarizes the alert-relevant state of a signal in a
// quarter. Two loads of byte-identical signal state produce equal
// fingerprints, so re-loading an unchanged quarter routes zero
// signals through the index.
func (s *Signal) fingerprint() uint64 {
	h := fnvStr(uint64(fnvOffset), s.Key)
	h = fnvU64(h, uint64(s.Rank))
	h = fnvU64(h, math.Float64bits(s.Score))
	h = fnvU64(h, uint64(s.Support))
	h = fnvU64(h, math.Float64bits(s.SeriousShare))
	for _, r := range s.Reactions {
		h = fnvStr(h, r)
		h = fnvU64(h, '\n')
	}
	return h
}

// severity grades a signal for the severity-floor gate: the curated
// severity when the combination is known, otherwise derived from the
// share of supporting reports with serious outcomes.
func (s *Signal) severity() int {
	if s.Known != nil {
		switch s.Known.Severity {
		case knowledge.Severe:
			return sevSevere
		case knowledge.Moderate:
			return sevModerate
		default:
			return sevMinor
		}
	}
	switch {
	case s.SeriousShare >= 0.5:
		return sevSevere
	case s.SeriousShare >= 0.2:
		return sevModerate
	default:
		return sevMinor
	}
}
