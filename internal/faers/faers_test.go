package faers

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const demoSample = `primaryid$caseid$event_dt$rept_cod$age$age_cod$sex$occr_country
1001$C1$20140105$EXP$54$YR$F$US
1002$C2$20140210$PER$77$YR$M$MX
1003$C3$$EXP$$$UNK$
`

const drugSample = `primaryid$drug_seq$role_cod$drugname
1001$1$PS$ASPIRIN
1001$2$SS$WARFARIN
1002$1$PS$IBUPROFEN
1003$2$C$NEXIUM
1003$1$PS$PREVACID
`

const reacSample = `primaryid$pt
1001$Haemorrhage
1001$Nausea
1002$Acute renal failure
1003$Osteoporosis
`

const outcSample = `primaryid$outc_cod
1001$HO
1002$DE
`

func TestReadDemo(t *testing.T) {
	ds, err := ReadDemo(strings.NewReader(demoSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("parsed %d rows, want 3", len(ds))
	}
	want := Demo{PrimaryID: "1001", CaseID: "C1", EventDate: "20140105",
		ReportCode: "EXP", Age: "54", AgeCode: "YR", Sex: "F", Country: "US"}
	if ds[0] != want {
		t.Errorf("row 0 = %+v, want %+v", ds[0], want)
	}
	if ds[2].Age != "" || ds[2].Country != "" {
		t.Errorf("empty fields not preserved: %+v", ds[2])
	}
}

func TestReadDrugOrdering(t *testing.T) {
	ds, err := ReadDrug(strings.NewReader(drugSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("parsed %d rows", len(ds))
	}
	if ds[0].Name != "ASPIRIN" || ds[0].Seq != 1 || ds[0].RoleCode != "PS" {
		t.Errorf("row 0 = %+v", ds[0])
	}
}

func TestReadDrugBadSeq(t *testing.T) {
	_, err := ReadDrug(strings.NewReader("primaryid$drug_seq$role_cod$drugname\n1$x$PS$A\n"))
	if err == nil {
		t.Error("expected error for non-numeric drug_seq")
	}
}

func TestReadMissingColumn(t *testing.T) {
	_, err := ReadReac(strings.NewReader("primaryid$term\n1$foo\n"))
	if err == nil || !strings.Contains(err.Error(), "pt") {
		t.Errorf("expected missing-column error, got %v", err)
	}
}

func TestReadEmptyTable(t *testing.T) {
	_, err := ReadDemo(strings.NewReader(""))
	if err == nil {
		t.Error("expected error on empty input")
	}
	// Header-only is fine: zero rows.
	ds, err := ReadDemo(strings.NewReader("primaryid$caseid$event_dt$rept_cod$age$age_cod$sex$occr_country\n"))
	if err != nil || len(ds) != 0 {
		t.Errorf("header-only: %v rows, err %v", len(ds), err)
	}
}

func TestReadExtraColumnsTolerated(t *testing.T) {
	in := "primaryid$pt$extra_col\n1$Rash$junk\n"
	rs, err := ReadReac(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Term != "Rash" {
		t.Errorf("rows = %+v", rs)
	}
}

func TestReadCRLF(t *testing.T) {
	in := "primaryid$pt\r\n1$Rash\r\n"
	rs, err := ReadReac(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Term != "Rash" {
		t.Errorf("CRLF term = %q", rs[0].Term)
	}
}

func loadSampleQuarter(t *testing.T) *Quarter {
	t.Helper()
	demos, err := ReadDemo(strings.NewReader(demoSample))
	if err != nil {
		t.Fatal(err)
	}
	drugs, err := ReadDrug(strings.NewReader(drugSample))
	if err != nil {
		t.Fatal(err)
	}
	reacs, err := ReadReac(strings.NewReader(reacSample))
	if err != nil {
		t.Fatal(err)
	}
	outcs, err := ReadOutc(strings.NewReader(outcSample))
	if err != nil {
		t.Fatal(err)
	}
	return &Quarter{Label: "2014Q1", Demos: demos, Drugs: drugs, Reacs: reacs, Outcs: outcs}
}

func TestQuarterReports(t *testing.T) {
	q := loadSampleQuarter(t)
	reports := q.Reports()
	if len(reports) != 3 {
		t.Fatalf("assembled %d reports, want 3", len(reports))
	}
	r := reports[0]
	if r.PrimaryID != "1001" {
		t.Fatalf("order wrong: %s first", r.PrimaryID)
	}
	if !reflect.DeepEqual(r.Drugs, []string{"ASPIRIN", "WARFARIN"}) {
		t.Errorf("drugs = %v", r.Drugs)
	}
	if !reflect.DeepEqual(r.Reactions, []string{"Haemorrhage", "Nausea"}) {
		t.Errorf("reactions = %v", r.Reactions)
	}
	if !r.Serious() {
		t.Error("report 1001 has outcome HO, should be serious")
	}
	// Drug sequence must be respected even when file order differs.
	r3 := reports[2]
	if !reflect.DeepEqual(r3.Drugs, []string{"PREVACID", "NEXIUM"}) {
		t.Errorf("report 1003 drugs = %v, want seq order", r3.Drugs)
	}
	if r3.Serious() {
		t.Error("report 1003 has no outcomes")
	}
}

func TestFilterExpedited(t *testing.T) {
	q := loadSampleQuarter(t)
	exp := FilterExpedited(q.Reports())
	if len(exp) != 2 {
		t.Fatalf("EXP reports = %d, want 2", len(exp))
	}
	for _, r := range exp {
		if r.ReportCode != "EXP" {
			t.Errorf("non-EXP report %s kept", r.PrimaryID)
		}
	}
}

func TestFilesForLabels(t *testing.T) {
	fs, err := FilesFor("/data", "2014Q3")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(fs.Demo) != "DEMO14Q3.txt" || filepath.Base(fs.Outc) != "OUTC14Q3.txt" {
		t.Errorf("files = %+v", fs)
	}
	for _, bad := range []string{"", "2014", "2014Q5", "14Q1", "abcdQ1"} {
		if _, err := FilesFor("/data", bad); err == nil {
			t.Errorf("label %q should be rejected", bad)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	q := loadSampleQuarter(t)
	if err := SaveQuarter(dir, q); err != nil {
		t.Fatal(err)
	}
	got, err := LoadQuarter(dir, "2014Q1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Demos, q.Demos) {
		t.Errorf("demos differ:\n got %+v\nwant %+v", got.Demos, q.Demos)
	}
	if !reflect.DeepEqual(got.Drugs, q.Drugs) {
		t.Errorf("drugs differ")
	}
	if !reflect.DeepEqual(got.Reacs, q.Reacs) {
		t.Errorf("reacs differ")
	}
	if !reflect.DeepEqual(got.Outcs, q.Outcs) {
		t.Errorf("outcs differ")
	}
}

func TestLoadQuarterMissingOutcTolerated(t *testing.T) {
	dir := t.TempDir()
	q := loadSampleQuarter(t)
	if err := SaveQuarter(dir, q); err != nil {
		t.Fatal(err)
	}
	fs, _ := FilesFor(dir, "2014Q1")
	if err := os.Remove(fs.Outc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadQuarter(dir, "2014Q1")
	if err != nil {
		t.Fatalf("missing OUTC should be tolerated: %v", err)
	}
	if len(got.Outcs) != 0 {
		t.Errorf("outcs = %v", got.Outcs)
	}
}

func TestLoadQuarterMissingDemoFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadQuarter(dir, "2014Q1"); err == nil {
		t.Error("missing DEMO should fail")
	}
}
