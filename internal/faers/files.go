package faers

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// FileSet names the four ASCII files of a quarter, following the FDA
// naming convention DEMOyyQq.txt etc. for label "20yyQq".
type FileSet struct {
	Demo, Drug, Reac, Outc string
}

// FilesFor returns the conventional file names for a quarter label
// like "2014Q1" inside dir.
func FilesFor(dir, label string) (FileSet, error) {
	short, err := shortLabel(label)
	if err != nil {
		return FileSet{}, err
	}
	return FileSet{
		Demo: filepath.Join(dir, "DEMO"+short+".txt"),
		Drug: filepath.Join(dir, "DRUG"+short+".txt"),
		Reac: filepath.Join(dir, "REAC"+short+".txt"),
		Outc: filepath.Join(dir, "OUTC"+short+".txt"),
	}, nil
}

// shortLabel converts "2014Q1" to "14Q1".
func shortLabel(label string) (string, error) {
	l := strings.ToUpper(strings.TrimSpace(label))
	if len(l) != 6 || l[4] != 'Q' || !allDigits(l[:4]) || l[5] < '1' || l[5] > '4' {
		return "", fmt.Errorf("faers: bad quarter label %q (want e.g. 2014Q1)", label)
	}
	return l[2:], nil
}

func allDigits(s string) bool {
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// LoadQuarter reads a quarter's four tables from dir. A missing OUTC
// file is tolerated (outcomes are optional for mining).
func LoadQuarter(dir, label string) (*Quarter, error) {
	fs, err := FilesFor(dir, label)
	if err != nil {
		return nil, err
	}
	q := &Quarter{Label: strings.ToUpper(strings.TrimSpace(label))}

	if q.Demos, err = readFile(fs.Demo, ReadDemo); err != nil {
		return nil, err
	}
	if q.Drugs, err = readFile(fs.Drug, ReadDrug); err != nil {
		return nil, err
	}
	if q.Reacs, err = readFile(fs.Reac, ReadReac); err != nil {
		return nil, err
	}
	q.Outcs, err = readFile(fs.Outc, ReadOutc)
	if err != nil {
		if os.IsNotExist(underlying(err)) {
			q.Outcs = nil
		} else {
			return nil, err
		}
	}
	return q, nil
}

// SaveQuarter writes the quarter's tables into dir using the
// conventional names, creating dir if needed.
func SaveQuarter(dir string, q *Quarter) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("faers: %w", err)
	}
	fs, err := FilesFor(dir, q.Label)
	if err != nil {
		return err
	}
	if err := writeFile(fs.Demo, q.Demos, WriteDemo); err != nil {
		return err
	}
	if err := writeFile(fs.Drug, q.Drugs, WriteDrug); err != nil {
		return err
	}
	if err := writeFile(fs.Reac, q.Reacs, WriteReac); err != nil {
		return err
	}
	return writeFile(fs.Outc, q.Outcs, WriteOutc)
}

func readFile[T any](path string, read func(r io.Reader) ([]T, error)) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faers: %w", err)
	}
	defer f.Close()
	rows, err := read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func writeFile[T any](path string, rows []T, write func(w io.Writer, rows []T) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("faers: %w", err)
	}
	if err := write(f, rows); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// underlying unwraps to the deepest error for os.IsNotExist checks.
func underlying(err error) error {
	type unwrapper interface{ Unwrap() error }
	for {
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		inner := u.Unwrap()
		if inner == nil {
			return err
		}
		err = inner
	}
}
