// Package faers reads and writes the FDA Adverse Event Reporting
// System quarterly ASCII extracts the paper mines (Section 5.1): the
// DEMO, DRUG, REAC and OUTC files of a quarter, with '$'-delimited
// columns and a header row naming them. Files produced by the
// synthetic generator (package synth) use the identical layout, so
// real FAERS extracts drop into the pipeline unchanged.
//
// Only the columns the pipeline consumes are modeled; unknown columns
// are preserved by position on read and ignored, exactly how ad-hoc
// FAERS tooling treats the format.
package faers

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Demo is one demographics row (one per report version).
type Demo struct {
	PrimaryID  string // unique report identifier
	CaseID     string // case identifier (stable across versions)
	EventDate  string // yyyymmdd, may be empty
	ReportCode string // EXP (expedited), PER (periodic), DIR (direct)
	Age        string // numeric string, unit in AgeCode
	AgeCode    string // YR, MON, DY ...
	Sex        string // M / F / UNK
	Country    string // occr_country
}

// Drug is one drug row; a report has one row per reported medication.
type Drug struct {
	PrimaryID string
	Seq       int    // drug_seq, 1-based within the report
	RoleCode  string // PS (primary suspect), SS, C (concomitant), I
	Name      string // verbatim drugname as reported
}

// Reac is one reaction row (MedDRA preferred term, verbatim).
type Reac struct {
	PrimaryID string
	Term      string // pt
}

// Outc is one outcome row (DE death, HO hospitalization, ...).
type Outc struct {
	PrimaryID string
	Code      string
}

// Quarter bundles one quarter's raw tables.
type Quarter struct {
	Label string // e.g. "2014Q1"
	Demos []Demo
	Drugs []Drug
	Reacs []Reac
	Outcs []Outc
}

// Report is one adverse-event report assembled from the raw tables:
// the unit the miner abstracts to a transaction.
type Report struct {
	PrimaryID  string
	CaseID     string
	ReportCode string
	Sex        string
	Age        string
	AgeCode    string
	Country    string
	EventDate  string
	Drugs      []string // verbatim drug names, report order
	DrugRoles  []string // role codes aligned with Drugs (PS/SS/C/I); may be empty
	Reactions  []string // verbatim reaction terms, report order
	Outcomes   []string // outcome codes
}

// SuspectDrugs returns the drugs reported with a suspect role (PS
// primary suspect, SS secondary suspect, I interacting). When the
// report carries no role data every drug is returned: role-less
// reports cannot be narrowed.
func (r *Report) SuspectDrugs() []string {
	if len(r.DrugRoles) != len(r.Drugs) {
		return r.Drugs
	}
	var out []string
	for i, role := range r.DrugRoles {
		switch role {
		case "PS", "SS", "I":
			out = append(out, r.Drugs[i])
		}
	}
	if len(out) == 0 {
		return r.Drugs // all-concomitant reports keep their drugs
	}
	return out
}

// Serious reports whether the report carries any severe outcome code.
func (r *Report) Serious() bool { return len(r.Outcomes) > 0 }

// Reports joins the quarter's tables by PrimaryID into assembled
// reports, ordered by PrimaryID for determinism. Drug rows are ordered
// by their sequence number. Reports lacking a DEMO row are still
// emitted (FAERS extracts do contain orphans) with only the fields
// present.
func (q *Quarter) Reports() []Report {
	byID := make(map[string]*Report)
	get := func(id string) *Report {
		r := byID[id]
		if r == nil {
			r = &Report{PrimaryID: id}
			byID[id] = r
		}
		return r
	}
	for _, d := range q.Demos {
		r := get(d.PrimaryID)
		r.CaseID = d.CaseID
		r.ReportCode = d.ReportCode
		r.Sex = d.Sex
		r.Age = d.Age
		r.AgeCode = d.AgeCode
		r.Country = d.Country
		r.EventDate = d.EventDate
	}
	drugRows := make([]Drug, len(q.Drugs))
	copy(drugRows, q.Drugs)
	sort.SliceStable(drugRows, func(i, j int) bool {
		if drugRows[i].PrimaryID != drugRows[j].PrimaryID {
			return drugRows[i].PrimaryID < drugRows[j].PrimaryID
		}
		return drugRows[i].Seq < drugRows[j].Seq
	})
	for _, d := range drugRows {
		r := get(d.PrimaryID)
		r.Drugs = append(r.Drugs, d.Name)
		r.DrugRoles = append(r.DrugRoles, d.RoleCode)
	}
	for _, rc := range q.Reacs {
		get(rc.PrimaryID).Reactions = append(get(rc.PrimaryID).Reactions, rc.Term)
	}
	for _, oc := range q.Outcs {
		get(oc.PrimaryID).Outcomes = append(get(oc.PrimaryID).Outcomes, oc.Code)
	}

	out := make([]Report, 0, len(byID))
	for _, r := range byID {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PrimaryID < out[j].PrimaryID })
	return out
}

// FilterExpedited keeps only EXP reports — the paper selects "the
// mandatory reports submitted by manufacturers marked as expedited
// (EXP) as these reports contain at least one severe adverse event".
func FilterExpedited(reports []Report) []Report {
	out := make([]Report, 0, len(reports))
	for _, r := range reports {
		if r.ReportCode == "EXP" {
			out = append(out, r)
		}
	}
	return out
}

// column headers, matching the public FAERS ASCII layout field names
// (lower-cased as FDA ships them).
var (
	demoHeader = []string{"primaryid", "caseid", "event_dt", "rept_cod", "age", "age_cod", "sex", "occr_country"}
	drugHeader = []string{"primaryid", "drug_seq", "role_cod", "drugname"}
	reacHeader = []string{"primaryid", "pt"}
	outcHeader = []string{"primaryid", "outc_cod"}
)

// ReadDemo parses a DEMO table from r.
func ReadDemo(r io.Reader) ([]Demo, error) {
	var out []Demo
	err := readTable(r, "DEMO", demoHeader, func(get func(string) string) {
		out = append(out, Demo{
			PrimaryID:  get("primaryid"),
			CaseID:     get("caseid"),
			EventDate:  get("event_dt"),
			ReportCode: get("rept_cod"),
			Age:        get("age"),
			AgeCode:    get("age_cod"),
			Sex:        get("sex"),
			Country:    get("occr_country"),
		})
	})
	return out, err
}

// ReadDrug parses a DRUG table from r.
func ReadDrug(r io.Reader) ([]Drug, error) {
	var out []Drug
	var badSeq error
	err := readTable(r, "DRUG", drugHeader, func(get func(string) string) {
		seq := 0
		if s := get("drug_seq"); s != "" {
			if _, err := fmt.Sscanf(s, "%d", &seq); err != nil && badSeq == nil {
				badSeq = fmt.Errorf("faers: DRUG row for %s: bad drug_seq %q", get("primaryid"), s)
			}
		}
		out = append(out, Drug{
			PrimaryID: get("primaryid"),
			Seq:       seq,
			RoleCode:  get("role_cod"),
			Name:      get("drugname"),
		})
	})
	if err == nil {
		err = badSeq
	}
	return out, err
}

// ReadReac parses a REAC table from r.
func ReadReac(r io.Reader) ([]Reac, error) {
	var out []Reac
	err := readTable(r, "REAC", reacHeader, func(get func(string) string) {
		out = append(out, Reac{PrimaryID: get("primaryid"), Term: get("pt")})
	})
	return out, err
}

// ReadOutc parses an OUTC table from r.
func ReadOutc(r io.Reader) ([]Outc, error) {
	var out []Outc
	err := readTable(r, "OUTC", outcHeader, func(get func(string) string) {
		out = append(out, Outc{PrimaryID: get("primaryid"), Code: get("outc_cod")})
	})
	return out, err
}

// readTable reads a '$'-delimited table with a header row. Column
// positions come from the header, so extra columns in real extracts
// are tolerated; each required column must appear.
func readTable(r io.Reader, kind string, required []string, row func(get func(string) string)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("faers: reading %s header: %w", kind, err)
		}
		return fmt.Errorf("faers: empty %s table", kind)
	}
	cols := strings.Split(strings.TrimRight(sc.Text(), "\r"), "$")
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		idx[strings.ToLower(strings.TrimSpace(c))] = i
	}
	for _, req := range required {
		if _, ok := idx[req]; !ok {
			return fmt.Errorf("faers: %s table missing column %q", kind, req)
		}
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		fields := strings.Split(line, "$")
		get := func(name string) string {
			i := idx[name]
			if i >= len(fields) {
				return ""
			}
			return strings.TrimSpace(fields[i])
		}
		row(get)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("faers: %s line %d: %w", kind, lineNo, err)
	}
	return nil
}

// WriteDemo writes ds as a DEMO table.
func WriteDemo(w io.Writer, ds []Demo) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(demoHeader, "$"))
	for _, d := range ds {
		fmt.Fprintf(bw, "%s$%s$%s$%s$%s$%s$%s$%s\n",
			d.PrimaryID, d.CaseID, d.EventDate, d.ReportCode, d.Age, d.AgeCode, d.Sex, d.Country)
	}
	return bw.Flush()
}

// WriteDrug writes ds as a DRUG table.
func WriteDrug(w io.Writer, ds []Drug) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(drugHeader, "$"))
	for _, d := range ds {
		fmt.Fprintf(bw, "%s$%d$%s$%s\n", d.PrimaryID, d.Seq, d.RoleCode, d.Name)
	}
	return bw.Flush()
}

// WriteReac writes rs as a REAC table.
func WriteReac(w io.Writer, rs []Reac) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(reacHeader, "$"))
	for _, r := range rs {
		fmt.Fprintf(bw, "%s$%s\n", r.PrimaryID, r.Term)
	}
	return bw.Flush()
}

// WriteOutc writes os as an OUTC table.
func WriteOutc(w io.Writer, os []Outc) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(outcHeader, "$"))
	for _, o := range os {
		fmt.Fprintf(bw, "%s$%s\n", o.PrimaryID, o.Code)
	}
	return bw.Flush()
}
