package replica

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"maras/internal/store"
)

// Scanner builds a node's inventory from its registry directory,
// caching each file's manifest keyed by (size, modtime): a
// steady-state sync round costs one ReadDir and zero snapshot reads.
type Scanner struct {
	dir string

	mu    sync.Mutex
	cache map[string]cachedLeaf
}

type cachedLeaf struct {
	size int64
	mod  time.Time
	leaf Leaf
}

// NewScanner scans the snapshot directory dir.
func NewScanner(dir string) *Scanner {
	return &Scanner{dir: dir, cache: map[string]cachedLeaf{}}
}

// Scan reads the directory and returns one leaf per snapshot file. A
// file whose manifest cannot be read (damaged, caught mid-rename) is
// simply not advertised — the local registry's quarantine machinery
// owns damage; the inventory only vouches for what it can fingerprint.
func (s *Scanner) Scan() ([]Leaf, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var leaves []Leaf
	seen := make(map[string]bool, len(entries))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, store.Ext) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		seen[name] = true
		if c, ok := s.cache[name]; ok && c.size == fi.Size() && c.mod.Equal(fi.ModTime()) {
			leaves = append(leaves, c.leaf)
			continue
		}
		m, err := store.ReadManifest(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		leaf := Leaf{
			Label:   strings.TrimSuffix(name, store.Ext),
			CRC:     m.CRC,
			Size:    m.Size,
			SavedAt: m.SavedAt.Unix(),
		}
		s.cache[name] = cachedLeaf{size: fi.Size(), mod: fi.ModTime(), leaf: leaf}
		leaves = append(leaves, leaf)
	}
	for name := range s.cache {
		if !seen[name] {
			delete(s.cache, name)
		}
	}
	return leaves, nil
}
