package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/obs"
	"maras/internal/obs/wide"
	"maras/internal/resilience"
	"maras/internal/store"
)

// Span names the replica layer records on active traces.
const (
	SpanSync  = "replica_sync"
	SpanFetch = "replica_fetch"
)

// Defaults for Options fields left zero.
const (
	DefaultInterval      = 30 * time.Second
	DefaultTimeout       = 10 * time.Second
	DefaultMaxFetchBytes = 1 << 30
	maxInventoryBytes    = 1 << 26
)

// Options configures a replica node.
type Options struct {
	// Name identifies this node in its advertised inventory (defaults
	// to the registry directory's base name).
	Name string
	// Peers are the base URLs of the other replicas
	// ("http://replica-b:8080"). Empty means this node only serves the
	// sync endpoints; it never pulls.
	Peers []string
	// Interval is the anti-entropy period. Each round re-arms at
	// interval ±25% and the first round waits a uniformly random
	// fraction of it, so a fleet restarted together spreads out.
	// Zero means DefaultInterval.
	Interval time.Duration
	// Timeout bounds each peer HTTP request (default DefaultTimeout).
	Timeout time.Duration
	// MaxFetchBytes caps one fetched snapshot body (default
	// DefaultMaxFetchBytes); larger responses are rejected unread.
	MaxFetchBytes int64
	// Breaker tunes the per-peer circuit breakers; the zero value
	// takes the resilience defaults.
	Breaker resilience.BreakerConfig
	// Transport overrides the HTTP transport — the chaos bench and
	// tests inject partitions, lag, and byte-flips here. Nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Metrics, when non-nil, receives the maras_replica_* series.
	Metrics *Metrics
	// Wide, when non-nil, receives one replica_sync wide event per
	// peer attempted per round (route = peer URL).
	Wide *wide.Ring
	// Auditor, when non-nil, records peer breaker transitions and
	// rejected corrupt fetches.
	Auditor *audit.Auditor
	// Logger; nil discards.
	Logger *slog.Logger
	// OnRound, when set, runs after every sync round (Start's loop and
	// explicit SyncOnce calls) with the round's stats — the hook the
	// server uses to mirror peer health onto the readiness probe.
	OnRound func(SyncStats)
}

// Node is one replica: a registry, a scanner over its directory, and
// the sync client state for its configured peers.
type Node struct {
	reg      *store.Registry
	scan     *Scanner
	opts     Options
	client   *http.Client
	breakers *resilience.BreakerSet

	mu      sync.Mutex
	peerInv map[string]*Tree // last verified inventory per peer
}

// NewNode binds a replica node to reg. Nothing syncs until Start (or
// an explicit SyncOnce); the handlers from Mount serve regardless.
func NewNode(reg *store.Registry, opts Options) *Node {
	if opts.Name == "" {
		opts.Name = filepath.Base(reg.Dir())
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.MaxFetchBytes <= 0 {
		opts.MaxFetchBytes = DefaultMaxFetchBytes
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	for i, p := range opts.Peers {
		opts.Peers[i] = strings.TrimSuffix(p, "/")
	}
	n := &Node{
		reg:     reg,
		scan:    NewScanner(reg.Dir()),
		opts:    opts,
		client:  &http.Client{Transport: opts.Transport, Timeout: opts.Timeout},
		peerInv: map[string]*Tree{},
	}
	n.breakers = resilience.NewBreakerSet(opts.Breaker, func(key string, from, to resilience.BreakerState) {
		n.updatePeersUp()
		sev := audit.SevWarn
		if to == resilience.StateClosed {
			sev = audit.SevInfo
		}
		n.opts.Auditor.RecordEvent(audit.Event{
			Rule:     "replica_peer",
			Severity: sev,
			Scope:    key,
			Message:  fmt.Sprintf("peer breaker %s -> %s", from, to),
		})
	})
	n.updatePeersUp()
	return n
}

// Name returns the node's advertised name.
func (n *Node) Name() string { return n.opts.Name }

// Peers returns the configured peer base URLs.
func (n *Node) Peers() []string { return n.opts.Peers }

// updatePeersUp refreshes the peers-up gauge: a peer with no breaker
// yet (never contacted) counts as up.
func (n *Node) updatePeersUp() {
	m := n.opts.Metrics
	if m == nil || m.PeersUp == nil {
		return
	}
	states := n.breakers.States()
	up := 0
	for _, p := range n.opts.Peers {
		if st, ok := states[p]; !ok || st == resilience.StateClosed {
			up++
		}
	}
	m.PeersUp.Set(int64(up))
}

// Start runs the jittered anti-entropy loop until ctx ends. No-op
// without peers.
func (n *Node) Start(ctx context.Context) {
	if len(n.opts.Peers) == 0 {
		return
	}
	go func() {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		t := time.NewTimer(time.Duration(rng.Int63n(int64(n.opts.Interval))))
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				n.SyncOnce(ctx)
				spread := float64(n.opts.Interval) * 0.25
				t.Reset(time.Duration(float64(n.opts.Interval) - spread + 2*spread*rng.Float64()))
			}
		}
	}()
}

// SyncStats summarizes one anti-entropy round.
type SyncStats struct {
	Peers       int // peers attempted
	Unreachable int // peers skipped (open breaker) or failed outright
	Fetched     int // snapshots installed this round
	Rejected    int // fetches rejected as corrupt (never installed)
	Needed      int // labels still wanted after the round
}

// SyncOnce runs one anti-entropy round against every configured peer:
// fetch the peer's inventory, diff merkle trees, then fetch, verify,
// and atomically install each winning leaf. Failures are per-peer —
// counted, logged, and fed to that peer's breaker — never fatal.
func (n *Node) SyncOnce(ctx context.Context) SyncStats {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, SpanSync)
	defer span.End()
	stats := SyncStats{Peers: len(n.opts.Peers)}
	// Rescan first: snapshots dropped in by a miner (or installed last
	// round) must be advertised in the local tree before diffing, or
	// this node keeps fetching what it already holds.
	_ = n.reg.Refresh()
	local, err := n.InventoryTree()
	if err != nil {
		span.SetAttr("error", err.Error())
		n.countError()
		n.finishRound(start, span, stats)
		return stats
	}
	for _, peer := range n.opts.Peers {
		ps := n.syncPeer(ctx, peer, local)
		stats.Unreachable += ps.Unreachable
		stats.Fetched += ps.Fetched
		stats.Rejected += ps.Rejected
		stats.Needed += ps.Needed
		if ps.Fetched > 0 {
			// The local inventory moved; rebuild before the next peer
			// so one round never fetches the same label twice.
			if lt, lerr := n.InventoryTree(); lerr == nil {
				local = lt
			}
		}
	}
	n.finishRound(start, span, stats)
	return stats
}

func (n *Node) finishRound(start time.Time, span *obs.Span, stats SyncStats) {
	if m := n.opts.Metrics; m != nil {
		if m.SyncRounds != nil {
			m.SyncRounds.Inc()
		}
		if m.Divergent != nil {
			m.Divergent.Set(int64(stats.Needed))
		}
		if m.SyncSeconds != nil {
			m.SyncSeconds.Observe(time.Since(start).Seconds())
		}
	}
	span.SetInt("fetched", int64(stats.Fetched))
	span.SetInt("needed", int64(stats.Needed))
	if n.opts.OnRound != nil {
		n.opts.OnRound(stats)
	}
}

func (n *Node) countError() {
	if m := n.opts.Metrics; m != nil && m.SyncErrors != nil {
		m.SyncErrors.Inc()
	}
}

// syncPeer runs the inventory-diff-fetch cycle against one peer and
// emits one replica_sync wide event for the attempt.
func (n *Node) syncPeer(ctx context.Context, peer string, local *Tree) SyncStats {
	var stats SyncStats
	start := time.Now()
	status := http.StatusOK
	var fetchedBytes int64
	defer func() {
		n.opts.Wide.Emit(wide.Event{
			Kind: wide.KindReplicaSync, Route: peer, Status: status,
			Duration: time.Since(start), Bytes: fetchedBytes,
			Trace: obs.ActiveSpan(ctx).TraceID(),
		})
	}()
	br := n.breakers.Get(peer)
	if !br.Allow() {
		status = http.StatusServiceUnavailable
		stats.Unreachable = 1
		return stats
	}
	fail := func(err error, what string) SyncStats {
		status = http.StatusBadGateway
		stats.Unreachable = 1
		br.Failure(false)
		n.countError()
		n.opts.Logger.Warn("replica "+what+" failed", "peer", peer, "err", err)
		return stats
	}
	inv, err := n.fetchInventory(ctx, peer)
	if err != nil {
		return fail(err, "inventory fetch")
	}
	remote := BuildTree(inv.Leaves)
	n.mu.Lock()
	n.peerInv[peer] = remote
	n.mu.Unlock()
	// The diff failpoint models inventory-layer faults (mangled
	// inventories, tree-walk bugs) without hand-forging JSON.
	if ferr := resilience.Inject(resilience.FPReplicaDiff); ferr != nil {
		return fail(ferr, "inventory diff")
	}
	need := Diff(local, remote)
	failed := false
	for _, leaf := range need {
		data, err := n.fetchSnapshot(ctx, peer, leaf.Label)
		if err != nil {
			if isCorrupt(err) {
				stats.Rejected++
				if m := n.opts.Metrics; m != nil && m.CorruptFetches != nil {
					m.CorruptFetches.Inc()
				}
				n.opts.Auditor.RecordEvent(audit.Event{
					Rule:     "replica_corrupt",
					Severity: audit.SevWarn,
					Scope:    leaf.Label,
					Message:  fmt.Sprintf("rejected corrupt snapshot from %s: %v", peer, err),
				})
			}
			failed = true
			stats.Needed++
			n.countError()
			n.opts.Logger.Warn("replica snapshot fetch failed", "peer", peer, "quarter", leaf.Label, "err", err)
			continue
		}
		if err := n.reg.InstallBytes(leaf.Label, data); err != nil {
			failed = true
			stats.Needed++
			n.countError()
			n.opts.Logger.Warn("replica snapshot install failed", "peer", peer, "quarter", leaf.Label, "err", err)
			continue
		}
		fetchedBytes += int64(len(data))
		stats.Fetched++
		if m := n.opts.Metrics; m != nil {
			if m.Fetches != nil {
				m.Fetches.Inc()
			}
			if m.FetchBytes != nil {
				m.FetchBytes.Add(int64(len(data)))
			}
		}
		n.opts.Logger.Info("replica snapshot installed",
			"peer", peer, "quarter", leaf.Label, "bytes", len(data))
	}
	if failed {
		status = http.StatusBadGateway
		br.Failure(false)
	} else {
		br.Success()
	}
	return stats
}

func isCorrupt(err error) bool {
	return errors.Is(err, store.ErrCorrupt) ||
		errors.Is(err, store.ErrBadMagic) ||
		errors.Is(err, store.ErrVersion)
}

// InventoryTree scans the local store and builds its merkle tree.
func (n *Node) InventoryTree() (*Tree, error) {
	leaves, err := n.scan.Scan()
	if err != nil {
		return nil, err
	}
	return BuildTree(leaves), nil
}

// Inventory is the advertised inventory payload of /sync/inventory.
type Inventory struct {
	Node   string `json:"node"`
	Root   string `json:"root"`
	Leaves []Leaf `json:"leaves"`
}

func (n *Node) fetchInventory(ctx context.Context, peer string) (*Inventory, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/sync/inventory", nil)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: inventory from %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("replica: inventory from %s: HTTP %d", peer, resp.StatusCode)
	}
	var inv Inventory
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxInventoryBytes)).Decode(&inv); err != nil {
		return nil, fmt.Errorf("replica: decoding inventory from %s: %w", peer, err)
	}
	return &inv, nil
}

// fetchSnapshot GETs one snapshot from peer and verifies its envelope
// (magic, version, CRC trailer) before returning the bytes: corrupt
// bytes come back as a store.ErrCorrupt-class error, never as data.
func (n *Node) fetchSnapshot(ctx context.Context, peer, label string) ([]byte, error) {
	_, span := obs.StartSpan(ctx, SpanFetch)
	defer span.End()
	span.SetAttr("quarter", label)
	if ferr := resilience.Inject(resilience.FPReplicaFetch); ferr != nil {
		span.SetAttr("error", ferr.Error())
		return nil, fmt.Errorf("replica: fetching %s from %s: %w", label, peer, ferr)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/sync/snapshot/"+url.PathEscape(label), nil)
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: fetching %s from %s: %w", label, peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("replica: fetching %s from %s: HTTP %d", label, peer, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, n.opts.MaxFetchBytes+1))
	if err != nil {
		return nil, fmt.Errorf("replica: reading %s from %s: %w", label, peer, err)
	}
	if int64(len(data)) > n.opts.MaxFetchBytes {
		return nil, fmt.Errorf("replica: snapshot %s from %s exceeds %d bytes", label, peer, n.opts.MaxFetchBytes)
	}
	span.SetInt("bytes", int64(len(data)))
	if err := store.CheckBytes(data); err != nil {
		span.SetAttr("error", err.Error())
		return nil, fmt.Errorf("replica: snapshot %s from %s: %w", label, peer, err)
	}
	return data, nil
}

// PeerHas reports whether any peer's last-known inventory advertises
// label — the gate store-mode routing consults before 404ing a label
// the local disk has never seen.
func (n *Node) PeerHas(label string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, t := range n.peerInv {
		for _, l := range t.Leaves() {
			if l.Label == label {
				return true
			}
		}
	}
	return false
}

// peersWith returns, in configured order, the peers whose last-known
// inventory advertises label.
func (n *Node) peersWith(label string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for _, p := range n.opts.Peers {
		t := n.peerInv[p]
		if t == nil {
			continue
		}
		for _, l := range t.Leaves() {
			if l.Label == label {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// FetchAnalysis is the read-failover tier LoadResilient reaches
// through store.Registry.SetPeerFetch: fetch label from a peer,
// verify the envelope, and decode entirely in memory — the read path
// writes nothing to disk (the sync loop persists later). Peers that
// advertise the label in their last-known inventory are tried first;
// with none known (cold start, or nobody advertising it) every peer
// is tried. Outcomes feed the same per-peer breakers the sync loop
// uses.
func (n *Node) FetchAnalysis(ctx context.Context, label string) (*core.Analysis, error) {
	candidates := n.peersWith(label)
	if len(candidates) == 0 {
		candidates = n.opts.Peers
	}
	var lastErr error = fmt.Errorf("replica: no peers configured")
	for _, peer := range candidates {
		br := n.breakers.Get(peer)
		if !br.Allow() {
			lastErr = fmt.Errorf("replica: peer %s: %w", peer, resilience.ErrBreakerOpen)
			continue
		}
		data, err := n.fetchSnapshot(ctx, peer, label)
		if err != nil {
			br.Failure(false)
			lastErr = err
			continue
		}
		snap, err := store.Decode(data)
		if err != nil {
			br.Failure(false)
			lastErr = fmt.Errorf("replica: decoding %s from %s: %w", label, peer, err)
			continue
		}
		br.Success()
		return snap.Analysis, nil
	}
	return nil, lastErr
}

// Status is the replica state surfaced on /healthz.
type Status struct {
	Name      string   `json:"name"`
	Peers     int      `json:"peers"`
	PeersDown []string `json:"peers_down,omitempty"`
	Root      string   `json:"root,omitempty"`
}

// CurrentStatus snapshots the node's peer health and local merkle
// root.
func (n *Node) CurrentStatus() Status {
	st := Status{Name: n.opts.Name, Peers: len(n.opts.Peers)}
	states := n.breakers.States()
	for _, p := range n.opts.Peers {
		if s, ok := states[p]; ok && s != resilience.StateClosed {
			st.PeersDown = append(st.PeersDown, p)
		}
	}
	if t, err := n.InventoryTree(); err == nil {
		st.Root = t.RootHex()
	}
	return st
}
