package replica

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// InventoryHandler serves GET /sync/inventory: the node's name, its
// merkle root, and the label-sorted leaf set. Exposed individually
// (alongside SnapshotHandler) so callers can wrap the endpoints with
// per-route metrics or gzip before mounting; Mount is the no-frills
// variant.
func (n *Node) InventoryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t, err := n.InventoryTree()
		if err != nil {
			http.Error(w, "inventory scan failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Inventory{Node: n.opts.Name, Root: t.RootHex(), Leaves: t.Leaves()})
	})
}

// SnapshotHandler serves GET /sync/snapshot/{label}: the raw snapshot
// bytes for one quarter. Fetchers verify the CRC trailer themselves,
// so the handler is a plain file serve behind a traversal guard.
func (n *Node) SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		label := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/sync/snapshot/"), "/")
		if label == "" || strings.ContainsAny(label, "/\\") || strings.Contains(label, "..") {
			http.Error(w, "bad label", http.StatusBadRequest)
			return
		}
		if !n.reg.Has(label) {
			http.Error(w, fmt.Sprintf("label %q not in store", label), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, n.reg.Path(label))
	})
}

// Mount registers both sync endpoints on mux. Callers mount them
// OUTSIDE the bulkhead: a saturated node must keep feeding its peers,
// or one hot replica degrades the whole set.
func (n *Node) Mount(mux *http.ServeMux) {
	mux.Handle("/sync/inventory", n.InventoryHandler())
	mux.Handle("/sync/snapshot/", n.SnapshotHandler())
}
