// Package replica implements multi-node replication for the snapshot
// store: each node advertises its quarter inventory as a merkle tree
// built over the codec's CRC-32 trailers, diffs that tree against
// configured peers on a jittered anti-entropy loop, and pulls missing
// or newer snapshots over HTTP into the local registry through the
// store's atomic write-then-rename path. Reads gain a failover tier:
// the registry's LoadResilient proxies from any peer holding a
// verified copy when the local and stale tiers fail (origin "peer").
//
// The protocol is pull-only and needs two endpoints per node, mounted
// OUTSIDE the bulkhead — a saturated node must keep feeding its peers
// or one hot replica degrades the whole set:
//
//	GET /sync/inventory        node name, merkle root, leaves (JSON)
//	GET /sync/snapshot/{label} raw snapshot bytes
//
// Every fetched snapshot is verified (magic, version, CRC trailer)
// before a single byte reaches disk; corrupt peer bytes are counted
// and rejected, never installed.
package replica

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Leaf is one quarter's advertisement: the label, the snapshot's
// CRC-32 trailer (its content fingerprint), the file size, and the
// save time (unix seconds — the tiebreaker when two nodes hold the
// same label with different bytes).
type Leaf struct {
	Label   string `json:"label"`
	CRC     uint32 `json:"crc"`
	Size    int64  `json:"size"`
	SavedAt int64  `json:"saved_at"`
}

// Tree is a merkle tree over a label-sorted leaf set. Interior nodes
// hash left-to-right pairs; an odd node is promoted unhashed. Leaf
// identity is content-only (label, CRC, size): two nodes holding
// byte-identical snapshots agree on the root even if their clocks
// disagreed about when the bytes were saved.
type Tree struct {
	leaves []Leaf
	root   [sha256.Size]byte
}

// emptyRoot is the root of an inventory with no snapshots — a fixed
// sentinel, so an empty node can never collide with any non-empty one.
var emptyRoot = sha256.Sum256([]byte("maras-replica-empty"))

// BuildTree folds leaves (copied, then sorted by label) into a tree.
func BuildTree(leaves []Leaf) *Tree {
	ls := append([]Leaf(nil), leaves...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Label < ls[j].Label })
	t := &Tree{leaves: ls}
	if len(ls) == 0 {
		t.root = emptyRoot
		return t
	}
	level := make([][sha256.Size]byte, len(ls))
	for i, l := range ls {
		level[i] = leafHash(l)
	}
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				break
			}
			h := sha256.New()
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var d [sha256.Size]byte
			h.Sum(d[:0])
			next = append(next, d)
		}
		level = next
	}
	t.root = level[0]
	return t
}

func leafHash(l Leaf) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(l.Label))
	h.Write([]byte{0}) // label/fingerprint separator
	var b [12]byte
	binary.LittleEndian.PutUint32(b[:4], l.CRC)
	binary.LittleEndian.PutUint64(b[4:], uint64(l.Size))
	h.Write(b[:])
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// RootHex returns the root hash as lowercase hex — the value nodes
// compare (and operators eyeball) to decide whether two inventories
// agree.
func (t *Tree) RootHex() string { return hex.EncodeToString(t.root[:]) }

// Leaves returns the label-sorted leaf set. Callers must not mutate.
func (t *Tree) Leaves() []Leaf { return t.leaves }

// Len returns how many snapshots the tree advertises.
func (t *Tree) Len() int { return len(t.leaves) }

// Diff returns the remote leaves local should fetch: labels local
// lacks entirely, plus labels both sides hold with differing CRCs
// where the remote copy wins. Equal roots short-circuit to nil, so
// the steady state costs one comparison. The walk is a two-pointer
// merge over the label-sorted leaf sets.
func Diff(local, remote *Tree) []Leaf {
	if local.root == remote.root {
		return nil
	}
	var need []Leaf
	i := 0
	for _, rl := range remote.leaves {
		for i < len(local.leaves) && local.leaves[i].Label < rl.Label {
			i++
		}
		if i >= len(local.leaves) || local.leaves[i].Label != rl.Label {
			need = append(need, rl)
			continue
		}
		if ll := local.leaves[i]; ll.CRC != rl.CRC && remoteWins(ll, rl) {
			need = append(need, rl)
		}
	}
	return need
}

// remoteWins decides which of two differing copies of one label is
// authoritative: the later save wins; on a tie the numerically larger
// CRC does. The rule is a total order over (SavedAt, CRC), so two
// nodes that wrote the same label independently converge on one copy
// instead of fetching from each other forever.
func remoteWins(local, remote Leaf) bool {
	if remote.SavedAt != local.SavedAt {
		return remote.SavedAt > local.SavedAt
	}
	return remote.CRC > local.CRC
}
