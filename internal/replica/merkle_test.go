package replica

import (
	"fmt"
	"math/rand"
	"testing"
)

func mkLeaf(label string, crc uint32, savedAt int64) Leaf {
	return Leaf{Label: label, CRC: crc, Size: 1000, SavedAt: savedAt}
}

func TestEmptyTreeRootIsSentinel(t *testing.T) {
	a := BuildTree(nil)
	b := BuildTree([]Leaf{})
	if a.RootHex() != b.RootHex() {
		t.Fatal("two empty trees disagree on the root")
	}
	if a.Len() != 0 {
		t.Fatalf("empty tree Len = %d", a.Len())
	}
	full := BuildTree([]Leaf{mkLeaf("2014Q1", 1, 1)})
	if a.RootHex() == full.RootHex() {
		t.Fatal("empty root collides with a one-leaf root")
	}
}

// TestDiffEmptyVersusFull covers the cold-start extremes: an empty
// node pulls everything from a full peer, and a full node pulls
// nothing from an empty peer (anti-entropy is pull-only — it never
// deletes).
func TestDiffEmptyVersusFull(t *testing.T) {
	full := BuildTree([]Leaf{
		mkLeaf("2014Q1", 11, 1), mkLeaf("2014Q2", 22, 2), mkLeaf("2014Q3", 33, 3),
	})
	empty := BuildTree(nil)

	need := Diff(empty, full)
	if len(need) != 3 {
		t.Fatalf("empty vs full: need %d leaves, want 3", len(need))
	}
	for i, label := range []string{"2014Q1", "2014Q2", "2014Q3"} {
		if need[i].Label != label {
			t.Fatalf("need[%d] = %q, want %q", i, need[i].Label, label)
		}
	}
	if need := Diff(full, empty); need != nil {
		t.Fatalf("full vs empty: need = %v, want nil", need)
	}
	if need := Diff(empty, BuildTree(nil)); need != nil {
		t.Fatalf("empty vs empty: need = %v, want nil", need)
	}
}

// TestDiffSingleDivergenceAmongMany plants one differing quarter in a
// thousand-leaf inventory and checks the diff isolates exactly it.
func TestDiffSingleDivergenceAmongMany(t *testing.T) {
	const n = 1000
	local := make([]Leaf, n)
	remote := make([]Leaf, n)
	for i := 0; i < n; i++ {
		l := mkLeaf(fmt.Sprintf("%04dQ%d", 1900+i/4, 1+i%4), uint32(i+1), int64(i+1))
		local[i] = l
		remote[i] = l
	}
	remote[617].CRC ^= 0xdeadbeef
	remote[617].SavedAt++ // the remote copy is newer: it must win

	lt, rt := BuildTree(local), BuildTree(remote)
	if lt.RootHex() == rt.RootHex() {
		t.Fatal("roots agree despite one divergent leaf")
	}
	need := Diff(lt, rt)
	if len(need) != 1 || need[0].Label != remote[617].Label {
		t.Fatalf("need = %v, want exactly %q", need, remote[617].Label)
	}
	// Identical inventories take the equal-roots fast path.
	if need := Diff(lt, BuildTree(local)); need != nil {
		t.Fatalf("identical trees: need = %v, want nil", need)
	}
}

// TestDiffSameLabelsDifferingCRCs pins the conflict rule for one label
// held with different bytes on both sides: the later save wins, a
// timestamp tie goes to the higher CRC, and the rule is antisymmetric
// so exactly one side fetches — the pair converges instead of trading
// copies forever.
func TestDiffSameLabelsDifferingCRCs(t *testing.T) {
	older := mkLeaf("2014Q1", 0xaaaa, 100)
	newer := mkLeaf("2014Q1", 0x1111, 200)

	if need := Diff(BuildTree([]Leaf{older}), BuildTree([]Leaf{newer})); len(need) != 1 {
		t.Fatalf("older local should fetch newer remote, need = %v", need)
	}
	if need := Diff(BuildTree([]Leaf{newer}), BuildTree([]Leaf{older})); need != nil {
		t.Fatalf("newer local must not fetch older remote, need = %v", need)
	}

	tieLo := mkLeaf("2014Q1", 0x1111, 100)
	tieHi := mkLeaf("2014Q1", 0xaaaa, 100)
	lo2hi := Diff(BuildTree([]Leaf{tieLo}), BuildTree([]Leaf{tieHi}))
	hi2lo := Diff(BuildTree([]Leaf{tieHi}), BuildTree([]Leaf{tieLo}))
	if len(lo2hi) != 1 || hi2lo != nil {
		t.Fatalf("CRC tiebreak not antisymmetric: lo->hi=%v hi->lo=%v", lo2hi, hi2lo)
	}
}

// TestTreeRootIgnoresLeafOrderAndClock shuffled input and skewed save
// times must not change the root: identity is (label, CRC, size) over
// the label-sorted set.
func TestTreeRootIgnoresLeafOrderAndClock(t *testing.T) {
	leaves := make([]Leaf, 50)
	for i := range leaves {
		leaves[i] = mkLeaf(fmt.Sprintf("20%02dQ%d", i/4, 1+i%4), uint32(1000+i), int64(i))
	}
	want := BuildTree(leaves).RootHex()

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Leaf(nil), leaves...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i := range shuffled {
			shuffled[i].SavedAt += int64(trial * 7) // clock skew: not hashed
		}
		if got := BuildTree(shuffled).RootHex(); got != want {
			t.Fatalf("trial %d: root %s != %s", trial, got, want)
		}
	}
}
