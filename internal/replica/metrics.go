package replica

import "maras/internal/obs"

// Metrics instruments the replication layer. All fields are nil-safe
// through the obs registry types; construct with NewMetrics so every
// series exists (at zero) from the first scrape.
type Metrics struct {
	// SyncRounds counts completed anti-entropy rounds (every peer
	// attempted once per round).
	SyncRounds *obs.Counter
	// SyncErrors counts per-peer sync attempts that failed: peer
	// unreachable, bad inventory, or a failed snapshot fetch.
	SyncErrors *obs.Counter
	// Fetches counts snapshots fetched from peers and installed.
	Fetches *obs.Counter
	// FetchBytes accumulates snapshot bytes fetched from peers.
	FetchBytes *obs.Counter
	// CorruptFetches counts peer snapshot fetches rejected by envelope
	// verification — bytes that never touched disk.
	CorruptFetches *obs.Counter
	// Divergent tracks how many labels the last sync round still
	// needed from peers (0 = converged with every reachable peer).
	Divergent *obs.Gauge
	// PeersUp tracks configured peers whose breaker is closed.
	PeersUp *obs.Gauge
	// SyncSeconds observes the wall time of one full sync round.
	SyncSeconds *obs.Histogram
}

// NewMetrics registers the maras_replica_* families on r and returns
// the bound instruments.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		SyncRounds: r.Counter("maras_replica_sync_rounds_total",
			"Anti-entropy sync rounds completed (all peers attempted)."),
		SyncErrors: r.Counter("maras_replica_sync_errors_total",
			"Per-peer sync attempts that failed (unreachable peer, bad inventory, failed fetch)."),
		Fetches: r.Counter("maras_replica_snapshot_fetches_total",
			"Snapshots fetched from peers and installed locally."),
		FetchBytes: r.Counter("maras_replica_fetch_bytes_total",
			"Snapshot bytes fetched from peers."),
		CorruptFetches: r.Counter("maras_replica_corrupt_fetches_total",
			"Peer snapshot fetches rejected by envelope verification (never installed)."),
		Divergent: r.Gauge("maras_replica_divergent_labels",
			"Labels the last sync round still needed from peers (0 = converged)."),
		PeersUp: r.Gauge("maras_replica_peers_up",
			"Configured peers whose circuit breaker is closed."),
		SyncSeconds: r.Histogram("maras_replica_sync_seconds",
			"Wall time of one full anti-entropy sync round.", obs.DefaultLatencyBuckets),
	}
}
