package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/obs"
	"maras/internal/store"
)

// testAnalysis mines a small deterministic quarter.
func testAnalysis(t *testing.T, extra int) *core.Analysis {
	t.Helper()
	var reports []faers.Report
	id := 0
	add := func(drugs, reacs []string) {
		id++
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", 1000+id), CaseID: fmt.Sprintf("c%d", id),
			ReportCode: "EXP", Drugs: drugs, Reactions: reacs,
		})
	}
	for i := 0; i < 8+extra; i++ {
		add([]string{"ASPIRIN", "WARFARIN"}, []string{"Haemorrhage"})
	}
	for i := 0; i < 20; i++ {
		add([]string{"ASPIRIN"}, []string{"Nausea"})
		add([]string{"WARFARIN"}, []string{"Dizziness"})
	}
	opts := core.NewOptions()
	opts.MinSupport = 3
	a, err := core.Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func writeSnap(t *testing.T, dir, label string, a *core.Analysis) {
	t.Helper()
	if err := store.WriteFile(filepath.Join(dir, label+store.Ext), label, a); err != nil {
		t.Fatal(err)
	}
}

// serveNode opens a registry over dir, binds a node named name to it,
// and serves its sync endpoints over httptest.
func serveNode(t *testing.T, dir, name string) (*Node, *httptest.Server) {
	t.Helper()
	reg, err := store.OpenRegistry(dir, store.RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(reg, Options{Name: name})
	mux := http.NewServeMux()
	n.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return n, srv
}

func TestTwoNodeSyncConverges(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := testAnalysis(t, 0)
	writeSnap(t, dirA, "2014Q1", a)
	writeSnap(t, dirA, "2014Q2", a)

	nodeA, srvA := serveNode(t, dirA, "a")
	regB, err := store.OpenRegistry(dirB, store.RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nodeB := NewNode(regB, Options{
		Name:    "b",
		Peers:   []string{srvA.URL},
		Metrics: NewMetrics(obs.NewRegistry()),
	})

	stats := nodeB.SyncOnce(context.Background())
	if stats.Fetched != 2 || stats.Unreachable != 0 || stats.Rejected != 0 {
		t.Fatalf("first round stats = %+v, want 2 fetched clean", stats)
	}
	ta, err := nodeA.InventoryTree()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := nodeB.InventoryTree()
	if err != nil {
		t.Fatal(err)
	}
	if ta.RootHex() != tb.RootHex() {
		t.Fatalf("roots diverge after sync: %s != %s", ta.RootHex(), tb.RootHex())
	}
	for _, label := range []string{"2014Q1", "2014Q2"} {
		if !regB.Has(label) {
			t.Fatalf("node b missing %s after sync", label)
		}
		if _, err := regB.Load(label); err != nil {
			t.Fatalf("installed snapshot %s unreadable: %v", label, err)
		}
	}
	// Steady state: equal roots cost one comparison and fetch nothing.
	if stats := nodeB.SyncOnce(context.Background()); stats.Fetched != 0 || stats.Needed != 0 {
		t.Fatalf("steady-state round stats = %+v, want no work", stats)
	}
	// PeerHas reflects the last-known peer inventory.
	if !nodeB.PeerHas("2014Q1") || nodeB.PeerHas("1999Q1") {
		t.Fatal("PeerHas does not reflect the peer inventory")
	}
}

// TestSyncRejectsCorruptPeerBytes serves a snapshot whose body is
// damaged after the manifest (so the peer still advertises it) and
// checks the fetcher's verify-before-disk gate: the bytes are counted
// as rejected and never installed.
func TestSyncRejectsCorruptPeerBytes(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeSnap(t, dirA, "2014Q1", testAnalysis(t, 0))
	path := filepath.Join(dirA, "2014Q1"+store.Ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-8] ^= 0x55 // body damage; the meta header stays readable
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, srvA := serveNode(t, dirA, "a")
	regB, err := store.OpenRegistry(dirB, store.RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(obs.NewRegistry())
	nodeB := NewNode(regB, Options{Name: "b", Peers: []string{srvA.URL}, Metrics: m})

	stats := nodeB.SyncOnce(context.Background())
	if stats.Rejected != 1 || stats.Fetched != 0 {
		t.Fatalf("corrupt-peer stats = %+v, want 1 rejected 0 fetched", stats)
	}
	if m.CorruptFetches.Value() != 1 {
		t.Fatalf("corrupt fetch counter = %d, want 1", m.CorruptFetches.Value())
	}
	if regB.Has("2014Q1") {
		t.Fatal("corrupt peer bytes were installed")
	}
	entries, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("unexpected file %q in node b's store", e.Name())
	}

	// The peer repairs its copy; the next round installs it.
	data[len(data)-8] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if stats := nodeB.SyncOnce(context.Background()); stats.Fetched != 1 {
		t.Fatalf("post-repair stats = %+v, want 1 fetched", stats)
	}
	if _, err := regB.Load("2014Q1"); err != nil {
		t.Fatalf("repaired snapshot unreadable: %v", err)
	}
}

// TestCrashMidFetchOrphanReclaimed models a node that died between
// CreateTemp and Rename during a snapshot install: the leftover temp
// file is swept at the next registry open, and the following sync
// round installs the quarter cleanly.
func TestCrashMidFetchOrphanReclaimed(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeSnap(t, dirA, "2014Q1", testAnalysis(t, 0))

	orphan := filepath.Join(dirB, "2014Q1"+store.Ext+".tmp98765")
	if err := os.WriteFile(orphan, []byte("partial fetch, crashed"), 0o600); err != nil {
		t.Fatal(err)
	}

	_, srvA := serveNode(t, dirA, "a")
	regB, err := store.OpenRegistry(dirB, store.RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp file survived registry open: %v", err)
	}
	nodeB := NewNode(regB, Options{Name: "b", Peers: []string{srvA.URL}})
	if stats := nodeB.SyncOnce(context.Background()); stats.Fetched != 1 {
		t.Fatalf("post-crash sync stats = %+v, want 1 fetched", stats)
	}
	entries, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 1 || names[0] != "2014Q1"+store.Ext {
		t.Fatalf("store contents after reclaim = %v", names)
	}
	if !strings.HasSuffix(names[0], store.Ext) {
		t.Fatalf("installed file %q lacks snapshot extension", names[0])
	}
}
