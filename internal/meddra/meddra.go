// Package meddra provides a MedDRA-flavoured grouping of reaction
// terms into System Organ Classes (SOCs). FAERS reaction strings are
// MedDRA preferred terms; the real MedDRA dictionary is licensed, so
// this package ships a curated mapping of the common preferred terms
// plus a keyword-based classifier for the long tail — enough to group
// and filter signals by organ system the way safety evaluators
// triage them.
package meddra

import "strings"

// SOC is a System Organ Class label.
type SOC string

// The SOC vocabulary (a subset of MedDRA's 27, covering the terms
// adverse-event mining encounters most).
const (
	SOCBlood          SOC = "Blood and lymphatic system disorders"
	SOCCardiac        SOC = "Cardiac disorders"
	SOCEar            SOC = "Ear and labyrinth disorders"
	SOCEye            SOC = "Eye disorders"
	SOCGastro         SOC = "Gastrointestinal disorders"
	SOCGeneral        SOC = "General disorders and administration site conditions"
	SOCHepatic        SOC = "Hepatobiliary disorders"
	SOCImmune         SOC = "Immune system disorders"
	SOCInfections     SOC = "Infections and infestations"
	SOCInjury         SOC = "Injury, poisoning and procedural complications"
	SOCMetabolism     SOC = "Metabolism and nutrition disorders"
	SOCMusculoskel    SOC = "Musculoskeletal and connective tissue disorders"
	SOCNervous        SOC = "Nervous system disorders"
	SOCPsychiatric    SOC = "Psychiatric disorders"
	SOCRenal          SOC = "Renal and urinary disorders"
	SOCRespiratory    SOC = "Respiratory, thoracic and mediastinal disorders"
	SOCSkin           SOC = "Skin and subcutaneous tissue disorders"
	SOCVascular       SOC = "Vascular disorders"
	SOCInvestigations SOC = "Investigations"
	SOCUnclassified   SOC = "Unclassified"
)

// curated maps normalized preferred terms (lower-case) to their SOC.
var curated = map[string]SOC{
	"anaemia":                    SOCBlood,
	"pancytopenia":               SOCBlood,
	"bone marrow failure":        SOCBlood,
	"haemorrhage":                SOCVascular,
	"hypertension":               SOCVascular,
	"hypotension":                SOCVascular,
	"bradycardia":                SOCCardiac,
	"tachycardia":                SOCCardiac,
	"palpitations":               SOCCardiac,
	"cardiac arrest":             SOCCardiac,
	"tinnitus":                   SOCEar,
	"vision blurred":             SOCEye,
	"nausea":                     SOCGastro,
	"vomiting":                   SOCGastro,
	"diarrhoea":                  SOCGastro,
	"constipation":               SOCGastro,
	"abdominal pain":             SOCGastro,
	"dry mouth":                  SOCGastro,
	"fatigue":                    SOCGeneral,
	"asthenia":                   SOCGeneral,
	"malaise":                    SOCGeneral,
	"pyrexia":                    SOCGeneral,
	"pain":                       SOCGeneral,
	"chest pain":                 SOCGeneral,
	"oedema peripheral":          SOCGeneral,
	"drug ineffective":           SOCGeneral,
	"drug interaction":           SOCGeneral,
	"serotonin syndrome":         SOCNervous,
	"dizziness":                  SOCNervous,
	"headache":                   SOCNervous,
	"somnolence":                 SOCNervous,
	"syncope":                    SOCNervous,
	"tremor":                     SOCNervous,
	"neuropathy peripheral":      SOCNervous,
	"anxiety":                    SOCPsychiatric,
	"depression":                 SOCPsychiatric,
	"insomnia":                   SOCPsychiatric,
	"confusional state":          SOCPsychiatric,
	"acute renal failure":        SOCRenal,
	"dyspnoea":                   SOCRespiratory,
	"cough":                      SOCRespiratory,
	"asthma":                     SOCRespiratory,
	"rash":                       SOCSkin,
	"pruritus":                   SOCSkin,
	"alopecia":                   SOCSkin,
	"hyperhidrosis":              SOCSkin,
	"osteoporosis":               SOCMusculoskel,
	"osteoarthritis":             SOCMusculoskel,
	"osteonecrosis of jaw":       SOCMusculoskel,
	"arthralgia":                 SOCMusculoskel,
	"myalgia":                    SOCMusculoskel,
	"back pain":                  SOCMusculoskel,
	"rhabdomyolysis":             SOCMusculoskel,
	"hyperkalaemia":              SOCMetabolism,
	"hypoglycaemia":              SOCMetabolism,
	"lactic acidosis":            SOCMetabolism,
	"weight decreased":           SOCInvestigations,
	"weight increased":           SOCInvestigations,
	"blood glucose increased":    SOCInvestigations,
	"fall":                       SOCInjury,
	"lithium toxicity":           SOCInjury,
	"toxicity to various agents": SOCInjury,
}

// keyword rules classify tail terms the curated table misses; first
// match wins, so order from specific to general.
var keywordRules = []struct {
	substr string
	soc    SOC
}{
	{"renal", SOCRenal},
	{"urinary", SOCRenal},
	{"cardiac", SOCCardiac},
	{"myocardial", SOCCardiac},
	{"hepat", SOCHepatic},
	{"liver", SOCHepatic},
	{"pneumon", SOCRespiratory},
	{"bronch", SOCRespiratory},
	{"respir", SOCRespiratory},
	{"dyspnoea", SOCRespiratory},
	{"derma", SOCSkin},
	{"rash", SOCSkin},
	{"prurit", SOCSkin},
	{"osteo", SOCMusculoskel},
	{"muscul", SOCMusculoskel},
	{"arthr", SOCMusculoskel},
	{"neuro", SOCNervous},
	{"seizure", SOCNervous},
	{"convuls", SOCNervous},
	{"psych", SOCPsychiatric},
	{"depress", SOCPsychiatric},
	{"anxi", SOCPsychiatric},
	{"anaem", SOCBlood},
	{"cytopenia", SOCBlood},
	{"leukopenia", SOCBlood},
	{"glyc", SOCMetabolism},
	{"kalaemia", SOCMetabolism},
	{"natraemia", SOCMetabolism},
	{"infect", SOCInfections},
	{"sepsis", SOCInfections},
	{"toxicity", SOCInjury},
	{"overdose", SOCInjury},
	{"gastro", SOCGastro},
	{"vomit", SOCGastro},
	{"diarrh", SOCGastro},
	{"haemorrhage", SOCVascular},
	{"bleed", SOCVascular},
	{"thrombo", SOCVascular},
	{"embol", SOCVascular},
	{"blood", SOCInvestigations},
	{"increased", SOCInvestigations},
	{"decreased", SOCInvestigations},
}

// Classify maps a reaction term (any case; qualifiers like "acute" or
// "type 3" are tolerated) to its System Organ Class. Unknown terms
// return SOCUnclassified.
func Classify(term string) SOC {
	t := strings.ToLower(strings.TrimSpace(term))
	if t == "" {
		return SOCUnclassified
	}
	if soc, ok := curated[t]; ok {
		return soc
	}
	// Strip trailing qualifiers the synthetic vocabulary (and real
	// verbatim reports) append, then retry the curated table.
	base := stripQualifiers(t)
	if soc, ok := curated[base]; ok {
		return soc
	}
	for _, r := range keywordRules {
		if strings.Contains(t, r.substr) {
			return r.soc
		}
	}
	return SOCUnclassified
}

var qualifierWords = map[string]bool{
	"aggravated": true, "postoperative": true, "chronic": true,
	"acute": true, "recurrent": true, "neonatal": true,
	"exertional": true, "nocturnal": true, "type": true,
}

// stripQualifiers removes trailing qualifier words and "type N"
// suffixes: "acute renal failure neonatal type 7" → "acute renal
// failure".
func stripQualifiers(t string) string {
	words := strings.Fields(t)
	for len(words) > 1 {
		last := words[len(words)-1]
		if qualifierWords[last] || isNumber(last) {
			words = words[:len(words)-1]
			continue
		}
		break
	}
	return strings.Join(words, " ")
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ClassifyAll maps each term to its SOC, deduplicated, in first-seen
// order.
func ClassifyAll(terms []string) []SOC {
	var out []SOC
	seen := map[SOC]bool{}
	for _, t := range terms {
		soc := Classify(t)
		if !seen[soc] {
			seen[soc] = true
			out = append(out, soc)
		}
	}
	return out
}

// GroupTerms buckets terms by SOC.
func GroupTerms(terms []string) map[SOC][]string {
	out := map[SOC][]string{}
	for _, t := range terms {
		soc := Classify(t)
		out[soc] = append(out[soc], t)
	}
	return out
}
