package meddra

import (
	"testing"
)

func TestClassifyCurated(t *testing.T) {
	cases := map[string]SOC{
		"Haemorrhage":             SOCVascular,
		"Acute renal failure":     SOCRenal,
		"Osteoporosis":            SOCMusculoskel,
		"Serotonin syndrome":      SOCNervous,
		"Drug ineffective":        SOCGeneral,
		"Blood glucose increased": SOCInvestigations,
		"Rhabdomyolysis":          SOCMusculoskel,
		"Hyperkalaemia":           SOCMetabolism,
		"Cardiac arrest":          SOCCardiac,
		"Asthma":                  SOCRespiratory,
	}
	for term, want := range cases {
		if got := Classify(term); got != want {
			t.Errorf("Classify(%q) = %q, want %q", term, got, want)
		}
	}
}

func TestClassifyCaseInsensitive(t *testing.T) {
	if Classify("HAEMORRHAGE") != Classify("haemorrhage") {
		t.Error("classification should be case-insensitive")
	}
}

func TestClassifyWithQualifiers(t *testing.T) {
	cases := map[string]SOC{
		"Acute renal failure neonatal type 7": SOCRenal,
		"Rash postoperative":                  SOCSkin,
		"Dyspnoea exertional type 8":          SOCRespiratory,
		"Osteonecrosis of jaw neonatal":       SOCMusculoskel,
		"Hypoglycaemia nocturnal type 3":      SOCMetabolism,
	}
	for term, want := range cases {
		if got := Classify(term); got != want {
			t.Errorf("Classify(%q) = %q, want %q", term, got, want)
		}
	}
}

func TestClassifyKeywordFallback(t *testing.T) {
	cases := map[string]SOC{
		"Renal impairment unspecified": SOCRenal,
		"Hepatotoxicity":               SOCHepatic,
		"Deep vein thrombosis":         SOCVascular,
		"Wound infection":              SOCInfections,
		"Platelet count decreased":     SOCInvestigations,
	}
	for term, want := range cases {
		if got := Classify(term); got != want {
			t.Errorf("Classify(%q) = %q, want %q", term, got, want)
		}
	}
}

func TestClassifyUnknown(t *testing.T) {
	if got := Classify("Zorblax phenomenon"); got != SOCUnclassified {
		t.Errorf("unknown term classified as %q", got)
	}
	if got := Classify(""); got != SOCUnclassified {
		t.Errorf("empty term classified as %q", got)
	}
}

func TestClassifyAllDedups(t *testing.T) {
	socs := ClassifyAll([]string{"Nausea", "Vomiting", "Haemorrhage"})
	if len(socs) != 2 {
		t.Fatalf("ClassifyAll = %v, want 2 distinct SOCs", socs)
	}
	if socs[0] != SOCGastro || socs[1] != SOCVascular {
		t.Errorf("order wrong: %v", socs)
	}
}

func TestGroupTerms(t *testing.T) {
	groups := GroupTerms([]string{"Nausea", "Diarrhoea", "Rash", "Zorblax phenomenon"})
	if len(groups[SOCGastro]) != 2 {
		t.Errorf("gastro group = %v", groups[SOCGastro])
	}
	if len(groups[SOCSkin]) != 1 {
		t.Errorf("skin group = %v", groups[SOCSkin])
	}
	if len(groups[SOCUnclassified]) != 1 {
		t.Errorf("unclassified group = %v", groups[SOCUnclassified])
	}
}

func TestStripQualifiers(t *testing.T) {
	cases := map[string]string{
		"acute renal failure neonatal type 7": "acute renal failure",
		"rash postoperative":                  "rash",
		"pain":                                "pain",
		"type":                                "type", // never strip to empty
	}
	for in, want := range cases {
		if got := stripQualifiers(in); got != want {
			t.Errorf("stripQualifiers(%q) = %q, want %q", in, got, want)
		}
	}
}

// Every term in the synthetic generator's base vocabulary should
// classify to a real SOC (not unclassified) — the curated table and
// keyword rules must cover the vocabulary we emit.
func TestSyntheticVocabularyCoverage(t *testing.T) {
	baseTerms := []string{
		"Nausea", "Dizziness", "Headache", "Fatigue", "Rash", "Pruritus",
		"Vomiting", "Diarrhoea", "Constipation", "Insomnia", "Anxiety",
		"Dyspnoea", "Oedema peripheral", "Pain", "Arthralgia", "Myalgia",
		"Pyrexia", "Anaemia", "Hypertension", "Hypotension", "Tachycardia",
		"Bradycardia", "Syncope", "Tremor", "Somnolence", "Dry mouth",
		"Abdominal pain", "Back pain", "Chest pain", "Cough", "Asthenia",
		"Malaise", "Weight decreased", "Weight increased", "Alopecia",
		"Hyperhidrosis", "Palpitations", "Vision blurred", "Tinnitus",
		"Depression", "Confusional state", "Fall", "Drug ineffective",
		"Drug interaction", "Osteoporosis", "Osteoarthritis",
		"Neuropathy peripheral", "Osteonecrosis of jaw", "Acute renal failure",
		"Haemorrhage", "Asthma", "Hyperkalaemia", "Rhabdomyolysis",
		"Serotonin syndrome", "Hypoglycaemia", "Blood glucose increased",
		"Lactic acidosis", "Pancytopenia", "Bone marrow failure",
		"Lithium toxicity", "Cardiac arrest", "Toxicity to various agents",
	}
	for _, term := range baseTerms {
		if Classify(term) == SOCUnclassified {
			t.Errorf("vocabulary term %q unclassified", term)
		}
	}
}
