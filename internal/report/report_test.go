package report

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("Demo", "Name", "Count")
	tb.AddRow("short", 1)
	tb.AddRow("a much longer name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, underline, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("title missing: %q", lines[0])
	}
	// Count column should be aligned: find column of "Count" in header
	// and confirm rows place values consistently.
	if !strings.Contains(out, "a much longer name  123456") {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableFloats(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(0.123456)
	tb.AddRow(2.0)
	tb.AddRow(1234567.0)
	out := tb.String()
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float formatting: %s", out)
	}
	if !strings.Contains(out, "2.0") {
		t.Errorf("integral float: %s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "A", "B")
	tb.AddRow("x", "y")
	md := tb.Markdown()
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "| --- | --- |") || !strings.Contains(md, "| x | y |") {
		t.Errorf("markdown:\n%s", md)
	}
	if !strings.HasPrefix(md, "### T") {
		t.Errorf("markdown title: %s", md)
	}
}

func TestLogBars(t *testing.T) {
	lb := NewLogBars("Fig", "Total", "Filtered", "MCACs")
	lb.AddGroup("Q1", 1_000_000, 10_000, 100)
	lb.AddGroup("Q2", 500_000, 5_000, 50)
	out := lb.String()
	if !strings.Contains(out, "Q1") || !strings.Contains(out, "Total") {
		t.Fatalf("labels missing:\n%s", out)
	}
	// Bars must be monotone within a group on log scale.
	lines := strings.Split(out, "\n")
	var lens []int
	for _, l := range lines {
		if strings.Contains(l, "#") && strings.Contains(l, "Total") ||
			strings.Contains(l, "#") && strings.Contains(l, "Filtered") ||
			strings.Contains(l, "#") && strings.Contains(l, "MCACs") {
			lens = append(lens, strings.Count(l, "#"))
		}
	}
	if len(lens) < 6 {
		t.Fatalf("expected 6 bars, got %d:\n%s", len(lens), out)
	}
	if !(lens[0] > lens[1] && lens[1] > lens[2]) {
		t.Errorf("Q1 bars not decreasing: %v\n%s", lens, out)
	}
}

func TestLogBarsZeroSafe(t *testing.T) {
	lb := NewLogBars("Z", "s")
	lb.AddGroup("g", 0)
	out := lb.String()
	if !strings.Contains(out, "0") {
		t.Errorf("zero value: %s", out)
	}
}
