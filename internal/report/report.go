// Package report renders the experiment harness's tables and figures
// as plain text: aligned tables with optional markdown mode, and
// log-scale ASCII bar figures for the rule-reduction plot (Fig 5.1).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are stringified with %v, floats with
// 4 significant digits.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e12 {
		return fmt.Sprintf("%.1f", x)
	}
	if math.Abs(x) >= 1000 || (math.Abs(x) < 0.001 && x != 0) {
		return fmt.Sprintf("%.3e", x)
	}
	return fmt.Sprintf("%.4f", x)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintln(w, strings.Repeat("=", len(t.Title)))
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table into a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.headers, " | "))
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// LogBars renders grouped values as a log10-scale ASCII bar figure —
// the shape of Fig 5.1 (series per group, log count axis).
type LogBars struct {
	Title  string
	groups []logGroup
	series []string
}

type logGroup struct {
	label  string
	values []float64
}

// NewLogBars creates a figure with the given series names.
func NewLogBars(title string, series ...string) *LogBars {
	return &LogBars{Title: title, series: series}
}

// AddGroup appends a labeled group with one value per series.
func (l *LogBars) AddGroup(label string, values ...float64) {
	l.groups = append(l.groups, logGroup{label: label, values: values})
}

// Render draws the figure: one bar row per (group, series), bar
// length proportional to log10(value).
func (l *LogBars) Render(w io.Writer) {
	const width = 50
	maxLog := 0.0
	for _, g := range l.groups {
		for _, v := range g.values {
			if lv := safeLog10(v); lv > maxLog {
				maxLog = lv
			}
		}
	}
	if maxLog == 0 {
		maxLog = 1
	}
	if l.Title != "" {
		fmt.Fprintf(w, "%s  (bar length ∝ log10)\n", l.Title)
	}
	nameW := 0
	for _, s := range l.series {
		if len(s) > nameW {
			nameW = len(s)
		}
	}
	for _, g := range l.groups {
		fmt.Fprintf(w, "%s\n", g.label)
		for i, v := range g.values {
			name := ""
			if i < len(l.series) {
				name = l.series[i]
			}
			bar := int(safeLog10(v) / maxLog * width)
			fmt.Fprintf(w, "  %s %s %.0f\n", pad(name, nameW), strings.Repeat("#", bar), v)
		}
	}
}

// String renders the figure into a string.
func (l *LogBars) String() string {
	var b strings.Builder
	l.Render(&b)
	return b.String()
}

func safeLog10(v float64) float64 {
	if v < 1 {
		return 0
	}
	return math.Log10(v)
}
