package trend

import (
	"fmt"
	"testing"

	"maras/internal/core"
	"maras/internal/faers"
)

// makeQuarter builds a quarter where pair X+Y -> Bad appears n times,
// plus fixed background.
func makeQuarter(label string, n int) *faers.Quarter {
	q := &faers.Quarter{Label: label}
	id := 0
	add := func(drugs []string, reacs []string) {
		id++
		pid := fmt.Sprintf("%s-%d", label, id)
		q.Demos = append(q.Demos, faers.Demo{
			PrimaryID: pid, CaseID: pid, ReportCode: "EXP",
		})
		for i, d := range drugs {
			q.Drugs = append(q.Drugs, faers.Drug{PrimaryID: pid, Seq: i + 1, RoleCode: "PS", Name: d})
		}
		for _, r := range reacs {
			q.Reacs = append(q.Reacs, faers.Reac{PrimaryID: pid, Term: r})
		}
	}
	for i := 0; i < n; i++ {
		add([]string{"DRUGX", "DRUGY"}, []string{"Bad"})
	}
	for i := 0; i < 20; i++ {
		add([]string{"DRUGX"}, []string{"Meh"})
		add([]string{"DRUGY"}, []string{"Meh"})
	}
	// A persistent second pair.
	for i := 0; i < 6; i++ {
		add([]string{"DRUGP", "DRUGQ"}, []string{"Worse"})
	}
	for i := 0; i < 10; i++ {
		add([]string{"DRUGP"}, []string{"Meh"})
		add([]string{"DRUGQ"}, []string{"Meh"})
	}
	return q
}

func trendOpts() core.Options {
	opts := core.NewOptions()
	opts.MinSupport = 4
	opts.TopK = 0
	return opts
}

func TestRunEmergingSignal(t *testing.T) {
	// X+Y below threshold in Q1/Q2, above in Q3/Q4 -> emerging.
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 0),
		makeQuarter("2014Q2", 2),
		makeQuarter("2014Q3", 8),
		makeQuarter("2014Q4", 10),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	xy := a.Find("DRUGX+DRUGY")
	if xy == nil {
		t.Fatal("X+Y trajectory missing")
	}
	if got := xy.Classify(); got != Emerging {
		t.Errorf("X+Y class = %q, want emerging (points %+v)", got, xy.Points)
	}
	if got := xy.EmergedAt(); got != "2014Q3" {
		t.Errorf("EmergedAt = %q, want 2014Q3", got)
	}
	if xy.Quarters() != 2 {
		t.Errorf("Quarters = %d, want 2", xy.Quarters())
	}
	if xy.PeakSupport() != 10 {
		t.Errorf("PeakSupport = %d, want 10", xy.PeakSupport())
	}
}

func TestRunPersistentSignal(t *testing.T) {
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 8),
		makeQuarter("2014Q2", 8),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	pq := a.Find("DRUGP+DRUGQ")
	if pq == nil {
		t.Fatal("P+Q missing")
	}
	if pq.Classify() != Persistent {
		t.Errorf("P+Q class = %q, want persistent", pq.Classify())
	}
}

func TestRunTransientSignal(t *testing.T) {
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 8),
		makeQuarter("2014Q2", 0),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	xy := a.Find("DRUGX+DRUGY")
	if xy == nil {
		t.Fatal("X+Y missing")
	}
	if xy.Classify() != Transient {
		t.Errorf("X+Y class = %q, want transient", xy.Classify())
	}
}

func TestByClassPartition(t *testing.T) {
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 8),
		makeQuarter("2014Q2", 0),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	byClass := a.ByClass()
	total := 0
	for _, list := range byClass {
		total += len(list)
	}
	if total != len(a.Trajectories) {
		t.Errorf("partition loses trajectories: %d vs %d", total, len(a.Trajectories))
	}
}

func TestTrajectoriesSorted(t *testing.T) {
	quarters := []*faers.Quarter{makeQuarter("2014Q1", 8)}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a.Trajectories); i++ {
		if a.Trajectories[i].PeakSupport() > a.Trajectories[i-1].PeakSupport() {
			t.Fatal("not sorted by peak support")
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if _, err := Run(nil, trendOpts()); err == nil {
		t.Error("no quarters accepted")
	}
}

func TestFindMissing(t *testing.T) {
	a := &Analysis{}
	if a.Find("NO+PE") != nil {
		t.Error("Find on empty analysis should be nil")
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	empty := Trajectory{}
	if empty.Classify() != Absent {
		t.Error("empty trajectory should be absent")
	}
	never := Trajectory{Points: []Point{{}, {}}}
	if never.Classify() != Absent {
		t.Error("never-signaled should be absent")
	}
	if never.EmergedAt() != "" {
		t.Error("EmergedAt of absent should be empty")
	}
}

// TestClassifyHardenedEdges pins down the degenerate shapes that used
// to fall through Classify: single-quarter trajectories and
// all-zero-support series must classify deterministically.
func TestClassifyHardenedEdges(t *testing.T) {
	tests := []struct {
		name   string
		points []Point
		want   Class
	}{
		{"no points", nil, Absent},
		{"single quarter signaled", []Point{{Quarter: "Q1", Rank: 1, Support: 10, Score: 0.5}}, Persistent},
		{"single quarter not signaled", []Point{{Quarter: "Q1"}}, Absent},
		{"single quarter rank without support", []Point{{Quarter: "Q1", Rank: 3}}, Absent},
		{"all zero support despite ranks", []Point{
			{Quarter: "Q1", Rank: 1}, {Quarter: "Q2", Rank: 2}, {Quarter: "Q3", Rank: 1},
		}, Absent},
		{"zero-support point breaks persistence", []Point{
			{Quarter: "Q1", Rank: 1, Support: 5},
			{Quarter: "Q2", Rank: 1}, // rank but no support: not signaled
			{Quarter: "Q3", Rank: 1, Support: 7},
		}, Transient},
		{"emerging unaffected", []Point{
			{Quarter: "Q1"},
			{Quarter: "Q2", Rank: 2, Support: 5},
			{Quarter: "Q3", Rank: 1, Support: 9},
		}, Emerging},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tr := Trajectory{Key: "X+Y", Points: tc.points}
			if got := tr.Classify(); got != tc.want {
				t.Errorf("Classify() = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestSignaledAccessors checks Quarters/EmergedAt agree with the
// Signaled contract on zero-support points.
func TestSignaledAccessors(t *testing.T) {
	tr := Trajectory{Points: []Point{
		{Quarter: "Q1", Rank: 1}, // rank, no support
		{Quarter: "Q2", Rank: 2, Support: 6},
	}}
	if got := tr.Quarters(); got != 1 {
		t.Errorf("Quarters = %d, want 1", got)
	}
	if got := tr.EmergedAt(); got != "Q2" {
		t.Errorf("EmergedAt = %q, want Q2", got)
	}
}

// TestAssembleKeepsStrongestReactions: when a combination surfaces
// under different reaction sets across quarters, the trajectory must
// carry the reactions of the strongest-scoring signal overall — even
// when the strongest quarter comes first.
func TestAssembleKeepsStrongestReactions(t *testing.T) {
	mk := func(rank int, score float64, support int, reacs ...string) core.Signal {
		return core.Signal{
			Rank: rank, Score: score, Support: support, Confidence: 0.5,
			Drugs: []string{"DRUGX", "DRUGY"}, Reactions: reacs,
		}
	}
	q1 := &core.Analysis{Signals: []core.Signal{mk(1, 0.9, 20, "STRONG REACTION")}}
	q2 := &core.Analysis{Signals: []core.Signal{mk(1, 0.4, 25, "WEAK REACTION")}}

	a := Assemble([]string{"Q1", "Q2"}, []*core.Analysis{q1, q2})
	tr := a.Find("DRUGX+DRUGY")
	if tr == nil {
		t.Fatal("trajectory missing")
	}
	if len(tr.Reactions) != 1 || tr.Reactions[0] != "STRONG REACTION" {
		t.Errorf("Reactions = %v, want the 0.9-score quarter's set", tr.Reactions)
	}
	// And the reverse order: strongest quarter last must win too.
	a = Assemble([]string{"Q1", "Q2"}, []*core.Analysis{q2, q1})
	tr = a.Find("DRUGX+DRUGY")
	if len(tr.Reactions) != 1 || tr.Reactions[0] != "STRONG REACTION" {
		t.Errorf("Reactions = %v, want the 0.9-score quarter's set (reversed order)", tr.Reactions)
	}
}
