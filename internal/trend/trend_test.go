package trend

import (
	"fmt"
	"testing"

	"maras/internal/core"
	"maras/internal/faers"
)

// makeQuarter builds a quarter where pair X+Y -> Bad appears n times,
// plus fixed background.
func makeQuarter(label string, n int) *faers.Quarter {
	q := &faers.Quarter{Label: label}
	id := 0
	add := func(drugs []string, reacs []string) {
		id++
		pid := fmt.Sprintf("%s-%d", label, id)
		q.Demos = append(q.Demos, faers.Demo{
			PrimaryID: pid, CaseID: pid, ReportCode: "EXP",
		})
		for i, d := range drugs {
			q.Drugs = append(q.Drugs, faers.Drug{PrimaryID: pid, Seq: i + 1, RoleCode: "PS", Name: d})
		}
		for _, r := range reacs {
			q.Reacs = append(q.Reacs, faers.Reac{PrimaryID: pid, Term: r})
		}
	}
	for i := 0; i < n; i++ {
		add([]string{"DRUGX", "DRUGY"}, []string{"Bad"})
	}
	for i := 0; i < 20; i++ {
		add([]string{"DRUGX"}, []string{"Meh"})
		add([]string{"DRUGY"}, []string{"Meh"})
	}
	// A persistent second pair.
	for i := 0; i < 6; i++ {
		add([]string{"DRUGP", "DRUGQ"}, []string{"Worse"})
	}
	for i := 0; i < 10; i++ {
		add([]string{"DRUGP"}, []string{"Meh"})
		add([]string{"DRUGQ"}, []string{"Meh"})
	}
	return q
}

func trendOpts() core.Options {
	opts := core.NewOptions()
	opts.MinSupport = 4
	opts.TopK = 0
	return opts
}

func TestRunEmergingSignal(t *testing.T) {
	// X+Y below threshold in Q1/Q2, above in Q3/Q4 -> emerging.
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 0),
		makeQuarter("2014Q2", 2),
		makeQuarter("2014Q3", 8),
		makeQuarter("2014Q4", 10),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	xy := a.Find("DRUGX+DRUGY")
	if xy == nil {
		t.Fatal("X+Y trajectory missing")
	}
	if got := xy.Classify(); got != Emerging {
		t.Errorf("X+Y class = %q, want emerging (points %+v)", got, xy.Points)
	}
	if got := xy.EmergedAt(); got != "2014Q3" {
		t.Errorf("EmergedAt = %q, want 2014Q3", got)
	}
	if xy.Quarters() != 2 {
		t.Errorf("Quarters = %d, want 2", xy.Quarters())
	}
	if xy.PeakSupport() != 10 {
		t.Errorf("PeakSupport = %d, want 10", xy.PeakSupport())
	}
}

func TestRunPersistentSignal(t *testing.T) {
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 8),
		makeQuarter("2014Q2", 8),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	pq := a.Find("DRUGP+DRUGQ")
	if pq == nil {
		t.Fatal("P+Q missing")
	}
	if pq.Classify() != Persistent {
		t.Errorf("P+Q class = %q, want persistent", pq.Classify())
	}
}

func TestRunTransientSignal(t *testing.T) {
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 8),
		makeQuarter("2014Q2", 0),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	xy := a.Find("DRUGX+DRUGY")
	if xy == nil {
		t.Fatal("X+Y missing")
	}
	if xy.Classify() != Transient {
		t.Errorf("X+Y class = %q, want transient", xy.Classify())
	}
}

func TestByClassPartition(t *testing.T) {
	quarters := []*faers.Quarter{
		makeQuarter("2014Q1", 8),
		makeQuarter("2014Q2", 0),
	}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	byClass := a.ByClass()
	total := 0
	for _, list := range byClass {
		total += len(list)
	}
	if total != len(a.Trajectories) {
		t.Errorf("partition loses trajectories: %d vs %d", total, len(a.Trajectories))
	}
}

func TestTrajectoriesSorted(t *testing.T) {
	quarters := []*faers.Quarter{makeQuarter("2014Q1", 8)}
	a, err := Run(quarters, trendOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(a.Trajectories); i++ {
		if a.Trajectories[i].PeakSupport() > a.Trajectories[i-1].PeakSupport() {
			t.Fatal("not sorted by peak support")
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if _, err := Run(nil, trendOpts()); err == nil {
		t.Error("no quarters accepted")
	}
}

func TestFindMissing(t *testing.T) {
	a := &Analysis{}
	if a.Find("NO+PE") != nil {
		t.Error("Find on empty analysis should be nil")
	}
}

func TestClassifyEdgeCases(t *testing.T) {
	empty := Trajectory{}
	if empty.Classify() != Absent {
		t.Error("empty trajectory should be absent")
	}
	never := Trajectory{Points: []Point{{}, {}}}
	if never.Classify() != Absent {
		t.Error("never-signaled should be absent")
	}
	if never.EmergedAt() != "" {
		t.Error("EmergedAt of absent should be empty")
	}
}
