// Package trend tracks drug-drug-interaction signals across quarters
// — the post-marketing surveillance view the paper motivates ("these
// drug-drug interactions should be detected early-on with minimum
// patient exposure"): for each combination, its support, confidence,
// exclusiveness score and rank per quarter, plus emergence detection
// (the first quarter a signal clears the reporting threshold) and
// trajectory classification.
package trend

import (
	"fmt"
	"sort"

	"maras/internal/core"
	"maras/internal/faers"
)

// Point is one quarter's measurement of a combination.
type Point struct {
	Quarter    string
	Rank       int // 0 = not signaled this quarter
	Score      float64
	Support    int
	Confidence float64
}

// Signaled reports whether the combination actually signaled this
// quarter: it must hold a rank AND have non-zero support. Mined
// signals always satisfy both (support >= the mining threshold), but
// hand-built or corrupted series can carry a rank with zero support;
// classification treats those as not signaled so an all-zero-support
// series deterministically classifies Absent.
func (p Point) Signaled() bool {
	return p.Rank > 0 && p.Support > 0
}

// Trajectory is a combination's history across quarters.
type Trajectory struct {
	Key       string   // canonical drug-combination key
	Drugs     []string // sorted names
	Reactions []string // reactions of the strongest quarter's signal
	Points    []Point  // one per analyzed quarter, in input order
}

// Quarters returns how many quarters the combination was signaled in.
func (t *Trajectory) Quarters() int {
	n := 0
	for _, p := range t.Points {
		if p.Signaled() {
			n++
		}
	}
	return n
}

// EmergedAt returns the first quarter label where the combination was
// signaled, or "" if never.
func (t *Trajectory) EmergedAt() string {
	for _, p := range t.Points {
		if p.Signaled() {
			return p.Quarter
		}
	}
	return ""
}

// PeakSupport returns the maximum per-quarter support.
func (t *Trajectory) PeakSupport() int {
	max := 0
	for _, p := range t.Points {
		if p.Support > max {
			max = p.Support
		}
	}
	return max
}

// Class summarizes the shape of a trajectory.
type Class string

const (
	// Persistent signals appear in every analyzed quarter.
	Persistent Class = "persistent"
	// Emerging signals first appear after the first quarter and are
	// still present in the last.
	Emerging Class = "emerging"
	// Transient signals appear and vanish.
	Transient Class = "transient"
	// Absent combinations never signal (kept only when explicitly
	// tracked).
	Absent Class = "absent"
)

// Classify labels the trajectory. Edge cases are pinned down
// explicitly: an empty or all-zero-support series is Absent, and a
// single-quarter trajectory that signals in its only quarter is
// Persistent (it is present in every analyzed quarter — there is no
// cross-quarter shape to distinguish).
func (t *Trajectory) Classify() Class {
	if len(t.Points) == 0 {
		return Absent
	}
	n := t.Quarters()
	if n == 0 {
		return Absent
	}
	if len(t.Points) == 1 {
		return Persistent // signaled in its single analyzed quarter
	}
	first := t.Points[0].Signaled()
	last := t.Points[len(t.Points)-1].Signaled()
	switch {
	case n == len(t.Points):
		return Persistent
	case !first && last:
		return Emerging
	default:
		return Transient
	}
}

// Analysis is the cross-quarter result.
type Analysis struct {
	Quarters     []string
	Trajectories []Trajectory // sorted by peak support desc, then key
}

// ByClass partitions trajectories by class.
func (a *Analysis) ByClass() map[Class][]Trajectory {
	out := make(map[Class][]Trajectory)
	for _, t := range a.Trajectories {
		c := t.Classify()
		out[c] = append(out[c], t)
	}
	return out
}

// Find returns the trajectory for a combination key, or nil.
func (a *Analysis) Find(key string) *Trajectory {
	for i := range a.Trajectories {
		if a.Trajectories[i].Key == key {
			return &a.Trajectories[i]
		}
	}
	return nil
}

// Run mines every quarter independently with opts and assembles the
// cross-quarter trajectories of every combination that signals in at
// least one quarter. opts.TopK bounds the per-quarter signal list
// (0 = all).
func Run(quarters []*faers.Quarter, opts core.Options) (*Analysis, error) {
	if len(quarters) == 0 {
		return nil, fmt.Errorf("trend: no quarters")
	}
	labels := make([]string, len(quarters))
	results := make([]*core.Analysis, len(quarters))
	for i, q := range quarters {
		labels[i] = q.Label
		res, err := core.RunQuarter(q, opts)
		if err != nil {
			return nil, fmt.Errorf("trend: quarter %s: %w", q.Label, err)
		}
		results[i] = res
	}
	return Assemble(labels, results), nil
}

// Assemble builds the cross-quarter trajectory analysis from
// already-computed per-quarter results — the path the snapshot store
// takes, where every quarter was mined once, persisted, and is now
// being replayed from disk. labels[i] names results[i]; a nil result
// is treated as a quarter with no signals (it still occupies a point
// in every trajectory, so gaps stay visible).
func Assemble(labels []string, results []*core.Analysis) *Analysis {
	a := &Analysis{Quarters: append([]string{}, labels...)}
	traj := map[string]*Trajectory{}
	// best tracks, per combination, the strongest score whose reaction
	// set the trajectory currently carries. It must be kept separately
	// from the points: by the time a point is updated its Score already
	// equals the candidate's, so "is this the new overall maximum"
	// cannot be answered from the points alone.
	best := map[string]float64{}
	for qi, res := range results {
		if res == nil {
			continue
		}
		for _, s := range res.Signals {
			key := s.Key()
			t := traj[key]
			if t == nil {
				t = &Trajectory{
					Key:    key,
					Drugs:  s.Drugs,
					Points: make([]Point, len(labels)),
				}
				for j := range t.Points {
					t.Points[j] = Point{Quarter: labels[j]}
				}
				traj[key] = t
			}
			p := &t.Points[qi]
			// A combination can surface under several reaction sets in
			// one quarter; keep the strongest-scoring one per quarter.
			if p.Rank == 0 || s.Score > p.Score {
				p.Rank = s.Rank
				p.Score = s.Score
				p.Support = s.Support
				p.Confidence = s.Confidence
			}
			// The trajectory's Reactions follow the strongest-scoring
			// signal across ALL quarters.
			if len(t.Reactions) == 0 || s.Score > best[key] {
				t.Reactions = s.Reactions
				best[key] = s.Score
			}
		}
	}
	for _, t := range traj {
		a.Trajectories = append(a.Trajectories, *t)
	}
	sort.Slice(a.Trajectories, func(i, j int) bool {
		pi, pj := a.Trajectories[i].PeakSupport(), a.Trajectories[j].PeakSupport()
		if pi != pj {
			return pi > pj
		}
		return a.Trajectories[i].Key < a.Trajectories[j].Key
	})
	return a
}
