package network

import (
	"encoding/json"
	"strings"
	"testing"

	"maras/internal/core"
	"maras/internal/knowledge"
)

func testSignals() []core.Signal {
	kb := knowledge.Builtin().Lookup([]string{"ASPIRIN", "WARFARIN"})
	return []core.Signal{
		{
			Rank: 1, Score: 0.8, Support: 12,
			Drugs:     []string{"ASPIRIN", "WARFARIN"},
			Reactions: []string{"Haemorrhage"},
			Known:     kb,
		},
		{
			Rank: 2, Score: 0.6, Support: 9,
			Drugs:     []string{"DRUGA", "DRUGB", "DRUGC"},
			Reactions: []string{"Rash"},
		},
		{
			Rank: 3, Score: 0.4, Support: 20,
			Drugs:     []string{"ASPIRIN", "DRUGA"},
			Reactions: []string{"Nausea"},
		},
	}
}

func TestBuildNodes(t *testing.T) {
	g := Build(testSignals())
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(g.Nodes))
	}
	byDrug := map[string]Node{}
	for _, n := range g.Nodes {
		byDrug[n.Drug] = n
	}
	if byDrug["ASPIRIN"].Signals != 2 || byDrug["ASPIRIN"].Support != 32 {
		t.Errorf("ASPIRIN node = %+v", byDrug["ASPIRIN"])
	}
	if byDrug["DRUGB"].Signals != 1 {
		t.Errorf("DRUGB node = %+v", byDrug["DRUGB"])
	}
	// Sorted by support desc.
	if g.Nodes[0].Drug != "ASPIRIN" {
		t.Errorf("first node = %s", g.Nodes[0].Drug)
	}
}

func TestBuildEdges(t *testing.T) {
	g := Build(testSignals())
	// A-W, A-DRUGA, plus the 3 clique edges of A/B/C = 5.
	if len(g.Edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(g.Edges))
	}
	var aw *Edge
	for i := range g.Edges {
		if g.Edges[i].A == "ASPIRIN" && g.Edges[i].B == "WARFARIN" {
			aw = &g.Edges[i]
		}
	}
	if aw == nil {
		t.Fatal("aspirin-warfarin edge missing")
	}
	if !aw.Known {
		t.Error("aspirin-warfarin should be flagged known")
	}
	if aw.Score != 0.8 || aw.Support != 12 {
		t.Errorf("edge = %+v", aw)
	}
	// Clique projection of the 3-drug signal must not be marked known.
	for _, e := range g.Edges {
		if e.A == "DRUGA" && e.B == "DRUGB" && e.Known {
			t.Error("projected clique edge flagged known")
		}
	}
}

func TestEdgeKeepsBestSignal(t *testing.T) {
	signals := []core.Signal{
		{Score: 0.3, Support: 5, Drugs: []string{"X", "Y"}, Reactions: []string{"r1"}},
		{Score: 0.9, Support: 8, Drugs: []string{"X", "Y"}, Reactions: []string{"r2"}},
	}
	g := Build(signals)
	if len(g.Edges) != 1 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	if g.Edges[0].Score != 0.9 || g.Edges[0].Reactions[0] != "r2" {
		t.Errorf("edge did not keep best signal: %+v", g.Edges[0])
	}
}

func TestDOTOutput(t *testing.T) {
	g := Build(testSignals())
	dot := g.DOT()
	if !strings.HasPrefix(dot, "graph maras {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("not a DOT graph")
	}
	for _, want := range []string{`"ASPIRIN"`, `"WARFARIN"`, "--", "Haemorrhage", `color="#bb3333"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Node and edge counts.
	if got := strings.Count(dot, " -- "); got != 5 {
		t.Errorf("DOT has %d edges, want 5", got)
	}
}

func TestJSONOutput(t *testing.T) {
	g := Build(testSignals())
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Nodes []Node `json:"nodes"`
		Links []struct {
			Source string  `json:"source"`
			Target string  `json:"target"`
			Score  float64 `json:"score"`
			Known  bool    `json:"known"`
		} `json:"links"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if len(out.Nodes) != 5 || len(out.Links) != 5 {
		t.Errorf("json shape: %d nodes, %d links", len(out.Nodes), len(out.Links))
	}
	if out.Links[0].Source == "" || out.Links[0].Target == "" {
		t.Error("links missing endpoints")
	}
}

func TestBuildEmpty(t *testing.T) {
	g := Build(nil)
	if len(g.Nodes) != 0 || len(g.Edges) != 0 {
		t.Error("empty build not empty")
	}
	if !strings.Contains(g.DOT(), "graph maras") {
		t.Error("empty DOT invalid")
	}
}
