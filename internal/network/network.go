// Package network exports the discovered drug-drug-interaction
// signals as a drug graph: nodes are drugs (sized by how many reports
// mention them in signals), edges connect drugs that appear together
// in a signal (weighted by the best signal score, flagged when the
// combination is a curated known interaction). Output formats are
// Graphviz DOT — for rendering with standard tooling — and a plain
// JSON node/link structure for web front-ends.
package network

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"maras/internal/core"
)

// Node is one drug in the interaction graph.
type Node struct {
	Drug string `json:"drug"`
	// Signals counts the signals mentioning this drug.
	Signals int `json:"signals"`
	// Support sums the supporting reports over those signals.
	Support int `json:"support"`
}

// Edge is an undirected drug-drug link carried by at least one signal.
type Edge struct {
	A, B string `json:"-"`
	// Score is the best signal score over signals containing both.
	Score float64 `json:"score"`
	// Support is the best support over those signals.
	Support int `json:"support"`
	// Known marks edges whose exact two-drug combination is curated.
	Known bool `json:"known"`
	// Reactions are the reactions of the best-scoring signal.
	Reactions []string `json:"reactions"`
}

// Graph is the assembled interaction network.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// Build assembles the graph from ranked signals. Signals with more
// than two drugs contribute a clique over their drugs (each pair gets
// the signal's score), the standard projection for hypergraph
// signals; Known is only set on edges whose own pair is curated.
func Build(signals []core.Signal) *Graph {
	nodes := map[string]*Node{}
	type key struct{ a, b string }
	edges := map[key]*Edge{}

	for i := range signals {
		s := &signals[i]
		for _, d := range s.Drugs {
			n := nodes[d]
			if n == nil {
				n = &Node{Drug: d}
				nodes[d] = n
			}
			n.Signals++
			n.Support += s.Support
		}
		for x := 0; x < len(s.Drugs); x++ {
			for y := x + 1; y < len(s.Drugs); y++ {
				a, b := s.Drugs[x], s.Drugs[y]
				if a > b {
					a, b = b, a
				}
				k := key{a, b}
				e := edges[k]
				if e == nil {
					e = &Edge{A: a, B: b}
					edges[k] = e
				}
				if s.Score > e.Score || e.Support == 0 {
					e.Score = s.Score
					e.Support = s.Support
					e.Reactions = s.Reactions
					// Known only if this very pair is the curated
					// combination (not a projection of a larger set).
					e.Known = len(s.Drugs) == 2 && s.Known != nil
				}
			}
		}
	}

	g := &Graph{}
	for _, n := range nodes {
		g.Nodes = append(g.Nodes, *n)
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		if g.Nodes[i].Support != g.Nodes[j].Support {
			return g.Nodes[i].Support > g.Nodes[j].Support
		}
		return g.Nodes[i].Drug < g.Nodes[j].Drug
	})
	for _, e := range edges {
		g.Edges = append(g.Edges, *e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].Score != g.Edges[j].Score {
			return g.Edges[i].Score > g.Edges[j].Score
		}
		if g.Edges[i].A != g.Edges[j].A {
			return g.Edges[i].A < g.Edges[j].A
		}
		return g.Edges[i].B < g.Edges[j].B
	})
	return g
}

// DOT renders the graph in Graphviz format. Node size follows signal
// count; known-interaction edges are red and bold; edge labels carry
// the top reaction.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("graph maras {\n")
	b.WriteString("  layout=neato;\n  overlap=false;\n  node [shape=ellipse, style=filled, fillcolor=\"#dbe9f6\", fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes {
		size := 0.6 + 0.15*float64(n.Signals)
		if size > 2.2 {
			size = 2.2
		}
		fmt.Fprintf(&b, "  %s [width=%.2f, tooltip=\"%d signals, %d reports\"];\n",
			dotID(n.Drug), size, n.Signals, n.Support)
	}
	for _, e := range g.Edges {
		attrs := []string{
			fmt.Sprintf("penwidth=%.1f", 1+3*clamp01(e.Score)),
			fmt.Sprintf("label=%q", firstOr(e.Reactions, "")),
			"fontsize=9",
		}
		if e.Known {
			attrs = append(attrs, `color="#bb3333"`, "style=bold")
		}
		fmt.Fprintf(&b, "  %s -- %s [%s];\n", dotID(e.A), dotID(e.B), strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonEdge mirrors Edge with source/target fields for d3-style use.
type jsonEdge struct {
	Source string `json:"source"`
	Target string `json:"target"`
	Edge
}

// JSON renders the graph as {"nodes": [...], "links": [...]}.
func (g *Graph) JSON() ([]byte, error) {
	links := make([]jsonEdge, len(g.Edges))
	for i, e := range g.Edges {
		links[i] = jsonEdge{Source: e.A, Target: e.B, Edge: e}
	}
	return json.MarshalIndent(struct {
		Nodes []Node     `json:"nodes"`
		Links []jsonEdge `json:"links"`
	}{g.Nodes, links}, "", "  ")
}

// dotID quotes a drug name as a safe DOT identifier.
func dotID(name string) string { return fmt.Sprintf("%q", name) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func firstOr(s []string, def string) string {
	if len(s) > 0 {
		return s[0]
	}
	return def
}
