package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Class is a caller-side error classification: whether a failed
// operation is worth retrying.
type Class int

const (
	// Transient marks failures that may clear on their own (I/O
	// hiccups, timeouts): retry with backoff.
	Transient Class = iota
	// Permanent marks failures retrying cannot fix (corruption,
	// version mismatch, not-found): fail immediately.
	Permanent
)

// RetryConfig bounds a retry loop three ways at once: attempt count,
// per-attempt backoff, and a total wall-clock budget covering both the
// attempts and the sleeps between them. The zero value retries.
type RetryConfig struct {
	// MaxAttempts is the total number of tries including the first
	// (<= 0 means DefaultRetry.MaxAttempts).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles
	// per retry up to MaxDelay (<= 0 means the defaults).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Budget caps total wall time across attempts and sleeps; once
	// spent, the last error returns even with attempts left (<= 0
	// means DefaultRetry.Budget).
	Budget time.Duration
	// Jitter is the fraction of each backoff randomized away, 0..1
	// (0 means DefaultRetry.Jitter; jitter spreads the retries of
	// concurrent callers so they do not re-converge on a struggling
	// disk in lockstep).
	Jitter float64
}

// DefaultRetry is the store's load-path policy: three attempts inside
// half a second, first backoff 10ms.
var DefaultRetry = RetryConfig{
	MaxAttempts: 3,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    100 * time.Millisecond,
	Budget:      500 * time.Millisecond,
	Jitter:      0.5,
}

// withDefaults fills zero fields from DefaultRetry.
func (c RetryConfig) withDefaults() RetryConfig {
	d := DefaultRetry
	if c.MaxAttempts > 0 {
		d.MaxAttempts = c.MaxAttempts
	}
	if c.BaseDelay > 0 {
		d.BaseDelay = c.BaseDelay
	}
	if c.MaxDelay > 0 {
		d.MaxDelay = c.MaxDelay
	}
	if c.Budget > 0 {
		d.Budget = c.Budget
	}
	if c.Jitter > 0 {
		d.Jitter = c.Jitter
	}
	return d
}

// retryRand jitters backoff; its own source (not the failpoint one) so
// arming failpoints does not change retry timing draws.
var retryRand = struct {
	mu  sync.Mutex
	rng *rand.Rand
}{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}

// Do runs op, retrying transient failures with jittered exponential
// backoff until success, a permanent classification, attempt
// exhaustion, budget exhaustion, or context cancellation — whichever
// comes first. classify may be nil (everything transient). The
// returned error wraps op's last error, so errors.Is/As reach through.
// attempts reports how many times op ran.
func (c RetryConfig) Do(ctx context.Context, op func(context.Context) error, classify func(error) Class) (attempts int, err error) {
	cfg := c.withDefaults()
	deadline := time.Now().Add(cfg.Budget)
	backoff := cfg.BaseDelay
	for {
		attempts++
		err = op(ctx)
		if err == nil {
			return attempts, nil
		}
		if classify != nil && classify(err) == Permanent {
			return attempts, err
		}
		if attempts >= cfg.MaxAttempts {
			return attempts, fmt.Errorf("after %d attempts: %w", attempts, err)
		}
		sleep := jitter(backoff, cfg.Jitter)
		if remaining := time.Until(deadline); sleep > remaining {
			return attempts, fmt.Errorf("retry budget %v exhausted after %d attempts: %w",
				cfg.Budget, attempts, err)
		}
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return attempts, fmt.Errorf("retry canceled after %d attempts (%w): %w", attempts, ctx.Err(), err)
		case <-t.C:
		}
		if backoff *= 2; backoff > cfg.MaxDelay {
			backoff = cfg.MaxDelay
		}
	}
}

// jitter randomizes d by up to frac of itself, centered so the mean
// stays d: d * (1 - frac/2 + frac*U[0,1)).
func jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	retryRand.mu.Lock()
	u := retryRand.rng.Float64()
	retryRand.mu.Unlock()
	return time.Duration(float64(d) * (1 - frac/2 + frac*u))
}
