package resilience

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// StateClosed passes calls through, counting consecutive failures.
	StateClosed BreakerState = iota
	// StateHalfOpen lets a single probe through after the cooldown;
	// its outcome decides between closing and re-opening.
	StateHalfOpen
	// StateOpen fails fast; no call reaches the protected resource
	// until the cooldown elapses.
	StateOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerConfig tunes a circuit breaker. The zero value takes the
// defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive transient failures
	// open the breaker (<= 0 means 3). A permanent failure — see
	// Breaker.Failure — opens it immediately regardless.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through (<= 0 means 5s).
	Cooldown time.Duration
	// SuccessThreshold is how many consecutive half-open probe
	// successes close the breaker again (<= 0 means 1).
	SuccessThreshold int
	// Now stubs the clock in tests; defaults to time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one circuit breaker: closed while the resource behaves,
// open (fail-fast) after it keeps failing, half-open to probe for
// recovery after the cooldown. Safe for concurrent use.
type Breaker struct {
	cfg      BreakerConfig
	onChange func(from, to BreakerState)

	mu        sync.Mutex
	state     BreakerState
	fails     int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	probing   bool
	openedAt  time.Time
}

// NewBreaker builds a breaker; onChange (may be nil) observes every
// state transition and is called outside the breaker lock.
func NewBreaker(cfg BreakerConfig, onChange func(from, to BreakerState)) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), onChange: onChange}
}

// Allow reports whether a call may proceed. In the open state it
// starts the half-open probe once the cooldown has elapsed; in
// half-open only one probe may be in flight at a time. Every allowed
// call must be matched by Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	switch b.state {
	case StateClosed:
		b.mu.Unlock()
		return true
	case StateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return false
		}
		from := b.state
		b.state = StateHalfOpen
		b.successes = 0
		b.probing = true
		b.mu.Unlock()
		b.notify(from, StateHalfOpen)
		return true
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.mu.Unlock()
		return true
	}
}

// Success records a successful call.
func (b *Breaker) Success() {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case StateClosed:
		b.fails = 0
	case StateHalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.SuccessThreshold {
			b.state = StateClosed
			b.fails = 0
		}
	}
	to := b.state
	b.mu.Unlock()
	if from != to {
		b.notify(from, to)
	}
}

// Failure records a failed call. A permanent failure (corruption — the
// resource cannot heal on its own) trips the breaker immediately; a
// transient one counts toward the consecutive-failure threshold. A
// half-open probe failure re-opens for another cooldown either way.
func (b *Breaker) Failure(permanent bool) {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case StateClosed:
		b.fails++
		if permanent || b.fails >= b.cfg.FailureThreshold {
			b.state = StateOpen
			b.openedAt = b.cfg.Now()
		}
	case StateHalfOpen:
		b.probing = false
		b.state = StateOpen
		b.openedAt = b.cfg.Now()
	case StateOpen:
		// A straggler from before the trip; keep the original clock.
	}
	to := b.state
	b.mu.Unlock()
	if from != to {
		b.notify(from, to)
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Reset forces the breaker closed (operator action after repairing the
// resource out of band).
func (b *Breaker) Reset() {
	b.mu.Lock()
	from := b.state
	b.state = StateClosed
	b.fails, b.successes = 0, 0
	b.probing = false
	b.mu.Unlock()
	if from != StateClosed {
		b.notify(from, StateClosed)
	}
}

func (b *Breaker) notify(from, to BreakerState) {
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// BreakerSet manages one breaker per key (per quarter label in the
// store). Safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig
	// OnChange (may be nil, set before first Get) observes every
	// transition of every member breaker, outside any breaker lock.
	onChange func(key string, from, to BreakerState)

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewBreakerSet builds an empty set; every breaker it mints uses cfg
// and reports transitions to onChange (may be nil).
func NewBreakerSet(cfg BreakerConfig, onChange func(key string, from, to BreakerState)) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), onChange: onChange, m: map[string]*Breaker{}}
}

// Get returns the breaker for key, creating it (closed) on first use.
func (s *BreakerSet) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		var on func(from, to BreakerState)
		if s.onChange != nil {
			k := key
			on = func(from, to BreakerState) { s.onChange(k, from, to) }
		}
		b = NewBreaker(s.cfg, on)
		s.m[key] = b
	}
	return b
}

// Remove drops key's breaker (the resource is gone, e.g. quarantined).
func (s *BreakerSet) Remove(key string) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// States snapshots every member breaker's state.
func (s *BreakerSet) States() map[string]BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerState, len(s.m))
	for k, b := range s.m {
		out[k] = b.State()
	}
	return out
}

// OpenCount returns how many member breakers are not closed — the
// "how degraded are we" number behind readiness reporting.
func (s *BreakerSet) OpenCount() int {
	n := 0
	for _, st := range s.States() {
		if st != StateClosed {
			n++
		}
	}
	return n
}
