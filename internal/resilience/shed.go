package resilience

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"maras/internal/obs"
)

// Bulkhead bounds how many requests execute concurrently and how many
// may queue waiting for a slot; everything beyond both bounds is shed
// immediately with 503 and a Retry-After hint. Saturation then costs
// exactly the configured amount of memory and latency instead of
// cascading: the goodput through the bulkhead stays flat while the
// overflow gets a fast, honest answer.
//
// Shed reasons (the "reason" label on maras_shed_total):
//
//	queue_full    the wait queue was already at capacity
//	wait_timeout  a slot did not free up within MaxWait
//	canceled      the client went away while queued
type Bulkhead struct {
	cfg  BulkheadConfig
	sem  chan struct{}
	wait atomic.Int64

	shedQueueFull *obs.Counter
	shedTimeout   *obs.Counter
	shedCanceled  *obs.Counter
	inflight      *obs.Gauge
	waiting       *obs.Gauge
	waitSeconds   *obs.Histogram
}

// BulkheadConfig tunes a Bulkhead. The zero value of optional fields
// takes the documented defaults.
type BulkheadConfig struct {
	// MaxConcurrent is the number of requests allowed to execute at
	// once; it must be > 0 (NewBulkhead rejects anything else —
	// "disabled" is a nil *Bulkhead, whose middleware is a passthrough).
	MaxConcurrent int
	// MaxWaiting bounds the queue of requests waiting for a slot;
	// 0 means no queue (overflow sheds immediately), < 0 is invalid.
	MaxWaiting int
	// MaxWait is how long a queued request waits for a slot before
	// being shed (<= 0 means 250ms).
	MaxWait time.Duration
	// RetryAfter is the Retry-After hint on shed responses, rounded
	// up to whole seconds (<= 0 means 1s).
	RetryAfter time.Duration
	// Exempt, when non-nil, bypasses the bulkhead for matching
	// requests (health probes, metrics scrapes — the endpoints an
	// operator needs most precisely when the process is saturated).
	Exempt func(*http.Request) bool
}

// NewBulkhead builds a bulkhead and, when reg is non-nil, registers
// its series: maras_shed_total{reason}, maras_bulkhead_inflight,
// maras_bulkhead_waiting, maras_bulkhead_wait_seconds.
func NewBulkhead(reg *obs.Registry, cfg BulkheadConfig) (*Bulkhead, error) {
	if cfg.MaxConcurrent <= 0 {
		return nil, fmt.Errorf("resilience: bulkhead MaxConcurrent must be > 0, got %d", cfg.MaxConcurrent)
	}
	if cfg.MaxWaiting < 0 {
		return nil, fmt.Errorf("resilience: bulkhead MaxWaiting must be >= 0, got %d", cfg.MaxWaiting)
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 250 * time.Millisecond
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	b := &Bulkhead{cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent)}
	if reg != nil {
		const shedHelp = "Requests shed by the bulkhead, by reason."
		b.shedQueueFull = reg.Counter("maras_shed_total", shedHelp, obs.Label{Key: "reason", Value: "queue_full"})
		b.shedTimeout = reg.Counter("maras_shed_total", shedHelp, obs.Label{Key: "reason", Value: "wait_timeout"})
		b.shedCanceled = reg.Counter("maras_shed_total", shedHelp, obs.Label{Key: "reason", Value: "canceled"})
		b.inflight = reg.Gauge("maras_bulkhead_inflight",
			"Requests currently executing inside the bulkhead.")
		b.waiting = reg.Gauge("maras_bulkhead_waiting",
			"Requests currently queued for a bulkhead slot.")
		b.waitSeconds = reg.Histogram("maras_bulkhead_wait_seconds",
			"Time admitted requests spent queued for a bulkhead slot.", nil)
	}
	return b, nil
}

// Middleware wraps next in the bulkhead. A nil *Bulkhead is a
// passthrough, so call sites can wire it unconditionally.
func (b *Bulkhead) Middleware(next http.Handler) http.Handler {
	if b == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b.cfg.Exempt != nil && b.cfg.Exempt(r) {
			next.ServeHTTP(w, r)
			return
		}
		span := obs.ActiveSpan(r.Context())
		select {
		case b.sem <- struct{}{}: // free slot, no queueing
		default:
			if !b.enqueue(w, r, span) {
				return
			}
		}
		if b.inflight != nil {
			b.inflight.Add(1)
		}
		defer func() {
			<-b.sem
			if b.inflight != nil {
				b.inflight.Add(-1)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// enqueue waits (bounded) for a slot, shedding on queue overflow, wait
// timeout, or client cancellation. It reports whether the request was
// admitted; when it returns false the response has been written.
func (b *Bulkhead) enqueue(w http.ResponseWriter, r *http.Request, span *obs.Span) bool {
	if n := b.wait.Add(1); n > int64(b.cfg.MaxWaiting) {
		b.wait.Add(-1)
		b.shed(w, span, "queue_full", b.shedQueueFull)
		return false
	}
	if b.waiting != nil {
		b.waiting.Add(1)
	}
	start := time.Now()
	t := time.NewTimer(b.cfg.MaxWait)
	defer t.Stop()
	admitted := false
	var reason string
	var c *obs.Counter
	select {
	case b.sem <- struct{}{}:
		admitted = true
	case <-t.C:
		reason, c = "wait_timeout", b.shedTimeout
	case <-r.Context().Done():
		reason, c = "canceled", b.shedCanceled
	}
	b.wait.Add(-1)
	if b.waiting != nil {
		b.waiting.Add(-1)
	}
	if !admitted {
		b.shed(w, span, reason, c)
		return false
	}
	queued := time.Since(start)
	if b.waitSeconds != nil {
		b.waitSeconds.Observe(queued.Seconds())
	}
	span.SetInt("bulkhead_wait_us", queued.Microseconds())
	return true
}

// shed answers 503 with a Retry-After hint and records the reason on
// the metric and the request span. A canceled client gets the status
// too — it is gone, but the status keeps access logs truthful.
func (b *Bulkhead) shed(w http.ResponseWriter, span *obs.Span, reason string, c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
	span.SetAttr("shed", reason)
	secs := int(b.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "overloaded: request shed ("+reason+"), retry later", http.StatusServiceUnavailable)
}

// Waiting returns how many requests are queued right now (tests).
func (b *Bulkhead) Waiting() int64 {
	if b == nil {
		return 0
	}
	return b.wait.Load()
}
