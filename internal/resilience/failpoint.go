package resilience

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Failpoints are named fault-injection sites. A site is a single call
//
//	if err := resilience.Inject("store/decode"); err != nil { ... }
//
// compiled into a production path. With nothing armed the call is one
// atomic load — cheap enough for hot paths. Arming happens through a
// spec string (flag -failpoints or env MARAS_FAILPOINTS):
//
//	site=action[;site=action...]
//
//	action := error | error(p) | error(p,msg)     inject an error
//	        | delay(d) | delay(d,p)               sleep d (e.g. 50ms)
//	        | panic | panic(p)                    panic at the site
//	        | off                                 disarm the site
//
// p is the trigger probability in (0,1]; omitted means 1 (fire on
// every evaluation — the deterministic trigger). Any action may carry
// a "*N" suffix limiting it to the first N triggers:
//
//	store/decode=error*1;store/load=delay(50ms,0.2)
//
// injects exactly one decode error and delays 20% of loads by 50ms.
// The probabilistic trigger draws from a seeded source (Seed) so a
// chaos run is reproducible.

// FailpointEnv is the environment variable EnableFromEnv reads.
const FailpointEnv = "MARAS_FAILPOINTS"

// Well-known failpoint site names. Sites live where Inject is called;
// these constants exist so specs, tests, and docs agree on spelling.
const (
	FPDecode       = "store/decode"  // snapshot decode path (corruption)
	FPLoad         = "store/load"    // registry disk-load path (slow/failing I/O)
	FPMine         = "core/mine"     // quarter mining path (pipeline stall)
	FPReplicaFetch = "replica/fetch" // replica snapshot fetch from a peer
	FPReplicaDiff  = "replica/diff"  // replica inventory diff against a peer
)

// fpAction is what an armed site does when its trigger fires.
type fpAction int

const (
	fpError fpAction = iota
	fpDelay
	fpPanic
)

// failpoint is one armed site.
type failpoint struct {
	action fpAction
	prob   float64       // trigger probability, (0,1]
	delay  time.Duration // fpDelay only
	msg    string        // fpError message, optional
	budget int64         // remaining triggers; negative = unlimited

	evals    int64 // evaluations (Inject calls) since armed
	triggers int64 // times the trigger fired
}

// fpState is the global failpoint table. armed is the fast-path gate:
// with no sites armed, Inject performs a single atomic load.
var fpState struct {
	armed atomic.Bool
	mu    sync.Mutex
	sites map[string]*failpoint
	rng   *rand.Rand
}

func init() {
	fpState.sites = map[string]*failpoint{}
	fpState.rng = rand.New(rand.NewSource(1))
}

// Seed reseeds the probabilistic trigger source so chaos runs are
// reproducible.
func Seed(seed int64) {
	fpState.mu.Lock()
	defer fpState.mu.Unlock()
	fpState.rng = rand.New(rand.NewSource(seed))
}

// Enable parses a failpoint spec and arms the named sites, adding to
// (or overriding) whatever is already armed. An empty spec is a no-op.
func Enable(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	parsed := map[string]*failpoint{}
	disarm := map[string]bool{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, action, ok := strings.Cut(part, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return fmt.Errorf("resilience: bad failpoint %q (want site=action)", part)
		}
		if strings.TrimSpace(action) == "off" {
			disarm[site] = true
			continue
		}
		fp, err := parseAction(strings.TrimSpace(action))
		if err != nil {
			return fmt.Errorf("resilience: failpoint %s: %w", site, err)
		}
		parsed[site] = fp
	}
	fpState.mu.Lock()
	defer fpState.mu.Unlock()
	for site := range disarm {
		delete(fpState.sites, site)
	}
	for site, fp := range parsed {
		fpState.sites[site] = fp
	}
	fpState.armed.Store(len(fpState.sites) > 0)
	return nil
}

// EnableFromEnv arms failpoints from MARAS_FAILPOINTS, returning the
// spec it applied ("" when unset). Binaries call this once at startup;
// tests arm explicitly with Enable so an exported environment cannot
// perturb unrelated packages.
func EnableFromEnv() (string, error) {
	spec := os.Getenv(FailpointEnv)
	if spec == "" {
		return "", nil
	}
	return spec, Enable(spec)
}

// DisableAll disarms every site (tests pair Enable with a deferred
// DisableAll so failpoints never leak across tests).
func DisableAll() {
	fpState.mu.Lock()
	defer fpState.mu.Unlock()
	fpState.sites = map[string]*failpoint{}
	fpState.armed.Store(false)
}

// parseAction parses one action term: kind[(args)][*N].
func parseAction(s string) (*failpoint, error) {
	fp := &failpoint{prob: 1, budget: -1}
	if i := strings.LastIndex(s, "*"); i >= 0 {
		n, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad trigger budget %q", s[i+1:])
		}
		fp.budget = n
		s = strings.TrimSpace(s[:i])
	}
	kind, args := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("unbalanced parens in %q", s)
		}
		kind, args = s[:i], s[i+1:len(s)-1]
	}
	var fields []string
	if args != "" {
		fields = strings.Split(args, ",")
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
	}
	parseProb := func(f string) error {
		p, err := strconv.ParseFloat(f, 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("bad probability %q (want (0,1])", f)
		}
		fp.prob = p
		return nil
	}
	switch kind {
	case "error":
		fp.action = fpError
		if len(fields) > 2 {
			return nil, fmt.Errorf("error takes at most (prob,msg), got %q", args)
		}
		if len(fields) >= 1 {
			if err := parseProb(fields[0]); err != nil {
				return nil, err
			}
		}
		if len(fields) == 2 {
			fp.msg = fields[1]
		}
	case "delay":
		fp.action = fpDelay
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("delay takes (duration[,prob]), got %q", args)
		}
		d, err := time.ParseDuration(fields[0])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay duration %q", fields[0])
		}
		fp.delay = d
		if len(fields) == 2 {
			if err := parseProb(fields[1]); err != nil {
				return nil, err
			}
		}
	case "panic":
		fp.action = fpPanic
		if len(fields) > 1 {
			return nil, fmt.Errorf("panic takes at most (prob), got %q", args)
		}
		if len(fields) == 1 {
			if err := parseProb(fields[0]); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown action %q (want error|delay|panic|off)", kind)
	}
	return fp, nil
}

// Inject evaluates the named failpoint site. Disarmed (the production
// default) it returns nil after a single atomic load. Armed, it fires
// per the site's action: an error return (the caller decides what the
// error means at that site), a sleep, or a panic.
func Inject(name string) error {
	if !fpState.armed.Load() {
		return nil
	}
	fpState.mu.Lock()
	fp := fpState.sites[name]
	if fp == nil {
		fpState.mu.Unlock()
		return nil
	}
	fp.evals++
	if fp.budget == 0 || (fp.prob < 1 && fpState.rng.Float64() >= fp.prob) {
		fpState.mu.Unlock()
		return nil
	}
	if fp.budget > 0 {
		fp.budget--
	}
	fp.triggers++
	action, delay, msg := fp.action, fp.delay, fp.msg
	fpState.mu.Unlock()

	switch action {
	case fpDelay:
		time.Sleep(delay)
		return nil
	case fpPanic:
		panic(fmt.Sprintf("resilience: failpoint %s: injected panic", name))
	default:
		if msg == "" {
			msg = "injected error"
		}
		return fmt.Errorf("%w: %s: %s", ErrInjected, name, msg)
	}
}

// FailpointStat reports one armed site's activity.
type FailpointStat struct {
	Site     string `json:"site"`
	Evals    int64  `json:"evals"`
	Triggers int64  `json:"triggers"`
}

// Stats returns per-site evaluation and trigger counts for every armed
// site, sorted by site name — the chaos bench records these so a fault
// mix is auditable in the artifact.
func Stats() []FailpointStat {
	fpState.mu.Lock()
	defer fpState.mu.Unlock()
	out := make([]FailpointStat, 0, len(fpState.sites))
	for name, fp := range fpState.sites {
		out = append(out, FailpointStat{Site: name, Evals: fp.evals, Triggers: fp.triggers})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}
