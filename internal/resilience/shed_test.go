package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"maras/internal/obs"
)

// slowHandler blocks until released, signalling entry on started.
type slowHandler struct {
	started chan struct{}
	release chan struct{}
}

func (h *slowHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.started <- struct{}{}
	<-h.release
	w.WriteHeader(http.StatusOK)
}

func TestBulkheadConfigValidation(t *testing.T) {
	if _, err := NewBulkhead(nil, BulkheadConfig{MaxConcurrent: 0}); err == nil {
		t.Fatal("accepted MaxConcurrent=0")
	}
	if _, err := NewBulkhead(nil, BulkheadConfig{MaxConcurrent: 1, MaxWaiting: -1}); err == nil {
		t.Fatal("accepted MaxWaiting=-1")
	}
}

func TestNilBulkheadIsPassthrough(t *testing.T) {
	var b *Bulkhead
	h := b.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("code = %d", rec.Code)
	}
	if b.Waiting() != 0 {
		t.Fatal("nil bulkhead reports waiters")
	}
}

func TestBulkheadShedsWhenSaturated(t *testing.T) {
	reg := obs.NewRegistry()
	b, err := NewBulkhead(reg, BulkheadConfig{
		MaxConcurrent: 1,
		MaxWaiting:    1,
		MaxWait:       50 * time.Millisecond,
		RetryAfter:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner := &slowHandler{started: make(chan struct{}, 8), release: make(chan struct{})}
	h := b.Middleware(inner)

	// Occupy the single slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	<-inner.started

	// Fill the single queue seat; it will eventually shed on wait_timeout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("queued request code = %d, want 503 wait_timeout", rec.Code)
		}
	}()
	for i := 0; i < 200 && b.Waiting() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if b.Waiting() != 1 {
		t.Fatalf("Waiting = %d, want 1", b.Waiting())
	}

	// Third request: queue full, shed immediately with Retry-After.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overflow code = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want 2", got)
	}
	if !strings.Contains(rec.Body.String(), "queue_full") {
		t.Fatalf("body %q does not name the shed reason", rec.Body.String())
	}

	// Let the queued waiter hit its MaxWait before the slot frees, so it
	// sheds on wait_timeout rather than being admitted.
	for i := 0; i < 500 && b.Waiting() != 0; i++ {
		time.Sleep(time.Millisecond)
	}
	close(inner.release)
	wg.Wait()

	if c := reg.Counter("maras_shed_total", "", obs.Label{Key: "reason", Value: "queue_full"}); c.Value() != 1 {
		t.Fatalf("queue_full sheds = %d, want 1", c.Value())
	}
	if c := reg.Counter("maras_shed_total", "", obs.Label{Key: "reason", Value: "wait_timeout"}); c.Value() != 1 {
		t.Fatalf("wait_timeout sheds = %d, want 1", c.Value())
	}
}

func TestBulkheadAdmitsAfterRelease(t *testing.T) {
	b, err := NewBulkhead(nil, BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 1, MaxWait: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	inner := &slowHandler{started: make(chan struct{}, 8), release: make(chan struct{})}
	h := b.Middleware(inner)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	<-inner.started

	wg.Add(1)
	queued := httptest.NewRecorder()
	go func() {
		defer wg.Done()
		h.ServeHTTP(queued, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	for i := 0; i < 200 && b.Waiting() == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	go func() { close(inner.release) }()
	<-inner.started // the queued request got the slot
	wg.Wait()
	if queued.Code != http.StatusOK {
		t.Fatalf("queued request code = %d after slot freed", queued.Code)
	}
}

func TestBulkheadShedsCanceledWaiter(t *testing.T) {
	b, err := NewBulkhead(nil, BulkheadConfig{MaxConcurrent: 1, MaxWaiting: 1, MaxWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	inner := &slowHandler{started: make(chan struct{}, 8), release: make(chan struct{})}
	h := b.Middleware(inner)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	<-inner.started

	ctx, cancel := context.WithCancel(context.Background())
	rec := httptest.NewRecorder()
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx))
	}()
	for i := 0; i < 200 && b.Waiting() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(inner.release)
	wg.Wait()
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "canceled") {
		t.Fatalf("canceled waiter: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestBulkheadExempt(t *testing.T) {
	b, err := NewBulkhead(nil, BulkheadConfig{
		MaxConcurrent: 1,
		Exempt:        func(r *http.Request) bool { return r.URL.Path == "/healthz" },
	})
	if err != nil {
		t.Fatal(err)
	}
	inner := &slowHandler{started: make(chan struct{}, 8), release: make(chan struct{})}
	mux := http.NewServeMux()
	mux.Handle("/slow", inner)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	h := b.Middleware(mux)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))
	}()
	<-inner.started

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("exempt probe got %d while bulkhead saturated", rec.Code)
	}
	close(inner.release)
	wg.Wait()
}
