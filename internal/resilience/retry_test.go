package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

func fastRetry() RetryConfig {
	return RetryConfig{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Budget: time.Second}
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	calls := 0
	attempts, err := fastRetry().Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errFlaky
		}
		return nil
	}, nil)
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	calls := 0
	attempts, err := fastRetry().Do(context.Background(), func(context.Context) error {
		calls++
		return errFlaky
	}, func(error) Class { return Permanent })
	if attempts != 1 || calls != 1 {
		t.Fatalf("permanent error retried: attempts=%d", attempts)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("lost original error: %v", err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	attempts, err := fastRetry().Do(context.Background(), func(context.Context) error {
		return errFlaky
	}, nil)
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("final error does not wrap the cause: %v", err)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 100, BaseDelay: 20 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Budget: 30 * time.Millisecond}
	start := time.Now()
	attempts, err := cfg.Do(context.Background(), func(context.Context) error { return errFlaky }, nil)
	if err == nil || errors.Is(err, nil) {
		t.Fatal("want error")
	}
	if attempts >= 100 {
		t.Fatalf("budget did not bound attempts: %d", attempts)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("budget 30ms ran for %v", elapsed)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("budget error does not wrap the cause: %v", err)
	}
}

func TestRetryContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := RetryConfig{MaxAttempts: 50, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Budget: 10 * time.Second}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := cfg.Do(ctx, func(context.Context) error { return errFlaky }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("want original error in chain, got %v", err)
	}
}

func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := jitter(d, 0.5)
		if j < 75*time.Millisecond || j > 125*time.Millisecond {
			t.Fatalf("jitter(100ms, 0.5) = %v outside [75ms,125ms]", j)
		}
	}
	if jitter(d, 0) != d {
		t.Fatal("zero jitter should return d unchanged")
	}
}
