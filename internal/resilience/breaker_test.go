package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock lets breaker tests advance the cooldown without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(onChange func(from, to BreakerState)) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg := BreakerConfig{FailureThreshold: 3, Cooldown: time.Second, Now: clk.now}
	return NewBreaker(cfg, onChange), clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := testBreaker(nil)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker refused a call")
		}
		b.Failure(false)
	}
	if b.State() != StateClosed {
		t.Fatal("opened below threshold")
	}
	b.Allow()
	b.Failure(false)
	if b.State() != StateOpen {
		t.Fatal("did not open at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
}

func TestBreakerPermanentTripsImmediately(t *testing.T) {
	b, _ := testBreaker(nil)
	b.Allow()
	b.Failure(true)
	if b.State() != StateOpen {
		t.Fatal("permanent failure did not trip immediately")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := testBreaker(nil)
	b.Failure(false)
	b.Failure(false)
	b.Success()
	b.Failure(false)
	b.Failure(false)
	if b.State() != StateClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	var transitions []string
	b, clk := testBreaker(func(from, to BreakerState) {
		transitions = append(transitions, from.String()+">"+to.String())
	})
	b.Failure(true)
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe allowed")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe allowed while first in flight")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatal("probe success did not close")
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(nil)
	b.Failure(true)
	clk.advance(2 * time.Second)
	b.Allow()
	b.Failure(false)
	if b.State() != StateOpen {
		t.Fatal("probe failure did not re-open")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call before a fresh cooldown")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("fresh cooldown elapsed but no probe allowed")
	}
}

func TestBreakerReset(t *testing.T) {
	b, _ := testBreaker(nil)
	b.Failure(true)
	b.Reset()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("Reset did not close the breaker")
	}
}

func TestBreakerSet(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var mu sync.Mutex
	changes := map[string]int{}
	s := NewBreakerSet(BreakerConfig{Now: clk.now}, func(key string, from, to BreakerState) {
		mu.Lock()
		changes[key]++
		mu.Unlock()
	})
	if s.Get("2014Q1") != s.Get("2014Q1") {
		t.Fatal("Get minted two breakers for one key")
	}
	s.Get("2014Q1").Failure(true)
	if s.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d, want 1", s.OpenCount())
	}
	if st := s.States(); st["2014Q1"] != StateOpen {
		t.Fatalf("States = %v", st)
	}
	mu.Lock()
	n := changes["2014Q1"]
	mu.Unlock()
	if n != 1 {
		t.Fatalf("onChange fired %d times, want 1", n)
	}
	s.Remove("2014Q1")
	if s.Get("2014Q1").State() != StateClosed {
		t.Fatal("Remove did not drop the breaker")
	}
}
