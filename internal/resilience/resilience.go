// Package resilience is the fault-tolerance layer of the serving
// tier: the third pillar next to observability (internal/obs) and
// auditing (internal/audit). It provides the mechanisms a process
// needs to keep answering through partial failure, and the fault-
// injection harness needed to prove that it does:
//
//   - Failpoints (failpoint.go): named injection sites compiled into
//     hot paths (snapshot decode, registry load, quarter mining) that
//     are free when disabled and, when armed via the -failpoints flag
//     or MARAS_FAILPOINTS, inject errors, delays, or panics with
//     deterministic or probabilistic triggers. This is how chaos tests
//     and maras-bench -exp chaos provoke the failures the rest of this
//     package is supposed to absorb.
//
//   - Retry (retry.go): bounded retry with jittered exponential
//     backoff and a total deadline budget, driven by the caller's
//     error classification (transient I/O retries; corruption does
//     not).
//
//   - Circuit breakers (breaker.go): per-key closed/open/half-open
//     breakers so a persistently failing resource (one quarter's
//     snapshot) fails fast instead of burning retry budget on every
//     request, with a cooldown probe to detect recovery.
//
//   - Bulkhead / load shedding (shed.go): bounded request concurrency
//     with a bounded wait queue; overflow is shed with 503 and
//     Retry-After instead of letting saturation take out every
//     request at once.
//
// The package is stdlib-only. Failpoint, retry, and breaker carry no
// dependencies at all; the bulkhead middleware optionally binds to an
// obs metrics registry and the request's active trace span.
package resilience

import "errors"

// ErrInjected is the sentinel wrapped by every failpoint-injected
// error, so tests and fault classifiers can tell provoked failures
// from organic ones with errors.Is.
var ErrInjected = errors.New("resilience: injected fault")

// ErrBreakerOpen is returned (wrapped) when a circuit breaker refuses
// a call because the protected resource is failing; callers should
// degrade (serve stale, shed) rather than retry immediately.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")
