package resilience

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInjectDisarmedIsNil(t *testing.T) {
	DisableAll()
	if err := Inject(FPDecode); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
}

func TestEnableErrorDeterministic(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable(FPDecode + "=error"); err != nil {
		t.Fatal(err)
	}
	err := Inject(FPDecode)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !strings.Contains(err.Error(), FPDecode) {
		t.Fatalf("error %q does not name the site", err)
	}
}

func TestEnableErrorMessage(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable(FPLoad + "=error(1,disk on fire)"); err != nil {
		t.Fatal(err)
	}
	err := Inject(FPLoad)
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("want custom message, got %v", err)
	}
}

func TestTriggerBudget(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable(FPDecode + "=error*2"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 5; i++ {
		if Inject(FPDecode) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("budget *2 fired %d times", fired)
	}
	st := Stats()
	if len(st) != 1 || st[0].Evals != 5 || st[0].Triggers != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProbabilisticTriggerSeeded(t *testing.T) {
	t.Cleanup(DisableAll)
	run := func() int {
		Seed(42)
		if err := Enable(FPLoad + "=error(0.3)"); err != nil {
			t.Fatal(err)
		}
		fired := 0
		for i := 0; i < 200; i++ {
			if Inject(FPLoad) != nil {
				fired++
			}
		}
		DisableAll()
		return fired
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different trigger counts: %d vs %d", a, b)
	}
	if a < 30 || a > 110 {
		t.Fatalf("p=0.3 over 200 evals fired %d times", a)
	}
}

func TestDelayAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable(FPLoad + "=delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject(FPLoad); err != nil {
		t.Fatalf("delay action returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay(30ms) slept only %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable(FPMine + "=panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	_ = Inject(FPMine)
}

func TestOffDisarmsSite(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable(FPDecode + "=error;" + FPLoad + "=error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable(FPDecode + "=off"); err != nil {
		t.Fatal(err)
	}
	if err := Inject(FPDecode); err != nil {
		t.Fatalf("disarmed site still fires: %v", err)
	}
	if err := Inject(FPLoad); err == nil {
		t.Fatal("other site was disarmed too")
	}
}

func TestEnableFromEnv(t *testing.T) {
	t.Cleanup(DisableAll)
	t.Setenv(FailpointEnv, FPDecode+"=error*1")
	spec, err := EnableFromEnv()
	if err != nil || spec == "" {
		t.Fatalf("EnableFromEnv = %q, %v", spec, err)
	}
	if Inject(FPDecode) == nil {
		t.Fatal("env-armed site did not fire")
	}
}

func TestEnableBadSpecs(t *testing.T) {
	t.Cleanup(DisableAll)
	for _, spec := range []string{
		"noequals",
		"=error",
		"x=explode",
		"x=error(2)",
		"x=error(0)",
		"x=delay",
		"x=delay(nope)",
		"x=error*0",
		"x=error(1,msg,extra)",
		"x=panic(0.5,9)",
		"x=delay(1ms",
	} {
		if err := Enable(spec); err == nil {
			t.Errorf("Enable(%q) accepted a bad spec", spec)
		}
	}
	if err := Enable("  "); err != nil {
		t.Errorf("blank spec should be a no-op, got %v", err)
	}
}
