// Package ebgm implements the Multi-item Gamma Poisson Shrinker
// (MGPS) of DuMouchel, the empirical-Bayes disproportionality method
// behind the FDA's own signal detection and the Fram/DuMouchel KDD'03
// system the paper cites as prior art ("Empirical bayesian data
// mining for discovering patterns in post-marketing drug safety").
// It completes the baseline suite of experiment A4 with the strongest
// classical competitor.
//
// Model: the observed report count N for a (drug set, reaction set)
// pair is Poisson with mean λ·E, where E is the expected count under
// independence and λ follows a two-component gamma mixture prior
//
//	λ ~ w·Gamma(α1, β1) + (1−w)·Gamma(α2, β2).
//
// The posterior of λ given (N, E) is again a gamma mixture, and the
// reported statistics are
//
//	EBGM  = exp(E[ln λ | N, E])  — the shrunken relative ratio,
//	EB05  = 5th posterior percentile (the conservative signal score).
//
// The five prior parameters are fit by maximizing the marginal
// likelihood of all (N, E) pairs with a projected gradient-free
// Nelder-Mead search, the standard practice for MGPS
// implementations.
package ebgm

import (
	"fmt"
	"math"
	"sort"
)

// Observation is one (observed, expected) count pair.
type Observation struct {
	N int     // observed co-occurrence reports
	E float64 // expected count under independence, > 0
}

// Prior is the two-component gamma mixture prior over λ.
type Prior struct {
	Alpha1, Beta1 float64 // first gamma component (shape, rate)
	Alpha2, Beta2 float64 // second gamma component
	W             float64 // weight of the first component, in (0,1)
}

// DefaultPrior is DuMouchel's published starting point (α1=.2, β1=.1,
// α2=2, β2=4, w=1/3), a sensible prior when fitting is skipped.
func DefaultPrior() Prior {
	return Prior{Alpha1: 0.2, Beta1: 0.1, Alpha2: 2, Beta2: 4, W: 1.0 / 3.0}
}

func (p Prior) valid() error {
	vals := []float64{p.Alpha1, p.Beta1, p.Alpha2, p.Beta2}
	for _, v := range vals {
		if !(v > 1e-8) || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("ebgm: non-positive prior parameter in %+v", p)
		}
	}
	if !(p.W > 0 && p.W < 1) {
		return fmt.Errorf("ebgm: mixture weight %v outside (0,1)", p.W)
	}
	return nil
}

// logNegBin returns log P(N=n | α, β, E): the gamma-Poisson marginal,
// a negative binomial with size α and probability β/(β+E).
func logNegBin(n int, alpha, beta, e float64) float64 {
	x := float64(n)
	return lgamma(alpha+x) - lgamma(alpha) - lgamma(x+1) +
		alpha*math.Log(beta/(beta+e)) + x*math.Log(e/(beta+e))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogMarginal returns the log marginal likelihood of obs under p.
func LogMarginal(obs []Observation, p Prior) float64 {
	ll := 0.0
	for _, o := range obs {
		l1 := logNegBin(o.N, p.Alpha1, p.Beta1, o.E)
		l2 := logNegBin(o.N, p.Alpha2, p.Beta2, o.E)
		ll += logSumExp(math.Log(p.W)+l1, math.Log(1-p.W)+l2)
	}
	return ll
}

func logSumExp(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Posterior holds the posterior gamma mixture for one observation.
type Posterior struct {
	Alpha1, Beta1 float64
	Alpha2, Beta2 float64
	Q             float64 // posterior weight of component 1
}

// PosteriorOf computes the posterior mixture of λ given one
// observation under prior p. Conjugacy: component i becomes
// Gamma(αi+N, βi+E) with weight ∝ prior weight × marginal.
func PosteriorOf(o Observation, p Prior) Posterior {
	l1 := math.Log(p.W) + logNegBin(o.N, p.Alpha1, p.Beta1, o.E)
	l2 := math.Log(1-p.W) + logNegBin(o.N, p.Alpha2, p.Beta2, o.E)
	z := logSumExp(l1, l2)
	return Posterior{
		Alpha1: p.Alpha1 + float64(o.N), Beta1: p.Beta1 + o.E,
		Alpha2: p.Alpha2 + float64(o.N), Beta2: p.Beta2 + o.E,
		Q: math.Exp(l1 - z),
	}
}

// EBGM returns exp(E[ln λ]): the geometric-mean shrinkage estimate of
// the relative reporting ratio.
func (po Posterior) EBGM() float64 {
	elog := po.Q*(digamma(po.Alpha1)-math.Log(po.Beta1)) +
		(1-po.Q)*(digamma(po.Alpha2)-math.Log(po.Beta2))
	return math.Exp(elog)
}

// Quantile returns the q-th posterior quantile of λ (bisection over
// the mixture CDF). EB05 is Quantile(0.05).
func (po Posterior) Quantile(q float64) float64 {
	if q <= 0 || q >= 1 {
		panic("ebgm: quantile must be in (0,1)")
	}
	cdf := func(x float64) float64 {
		return po.Q*gammaCDF(x, po.Alpha1, po.Beta1) +
			(1-po.Q)*gammaCDF(x, po.Alpha2, po.Beta2)
	}
	lo, hi := 0.0, 1.0
	for cdf(hi) < q {
		hi *= 2
		if hi > 1e12 {
			return hi
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-10*(1+hi); i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// EB05 is the conventional conservative signal score: the 5th
// posterior percentile of λ. EB05 ≥ 2 is the usual signal criterion.
func (po Posterior) EB05() float64 { return po.Quantile(0.05) }

// Score is the EBGM evaluation of one observation.
type Score struct {
	Observation Observation
	EBGM        float64
	EB05        float64
}

// Evaluate scores every observation under prior p.
func Evaluate(obs []Observation, p Prior) ([]Score, error) {
	if err := p.valid(); err != nil {
		return nil, err
	}
	out := make([]Score, len(obs))
	for i, o := range obs {
		po := PosteriorOf(o, p)
		out[i] = Score{Observation: o, EBGM: po.EBGM(), EB05: po.EB05()}
	}
	return out, nil
}

// Fit maximizes the marginal likelihood over the five prior
// parameters with Nelder-Mead in a log/logit-transformed space
// (keeping parameters in their domains). Returns the fitted prior and
// its log marginal likelihood. obs must be non-empty with E > 0.
func Fit(obs []Observation, start Prior) (Prior, float64, error) {
	if len(obs) == 0 {
		return Prior{}, 0, fmt.Errorf("ebgm: no observations to fit")
	}
	for _, o := range obs {
		if !(o.E > 0) {
			return Prior{}, 0, fmt.Errorf("ebgm: observation with non-positive expectation %v", o.E)
		}
	}
	if err := start.valid(); err != nil {
		return Prior{}, 0, err
	}
	// Parameter transform: θ = (ln α1, ln β1, ln α2, ln β2, logit w).
	encode := func(p Prior) [5]float64 {
		return [5]float64{
			math.Log(p.Alpha1), math.Log(p.Beta1),
			math.Log(p.Alpha2), math.Log(p.Beta2),
			math.Log(p.W / (1 - p.W)),
		}
	}
	decode := func(t [5]float64) Prior {
		return Prior{
			Alpha1: math.Exp(clampF(t[0])), Beta1: math.Exp(clampF(t[1])),
			Alpha2: math.Exp(clampF(t[2])), Beta2: math.Exp(clampF(t[3])),
			W: 1 / (1 + math.Exp(-clampF(t[4]))),
		}
	}
	obj := func(t [5]float64) float64 {
		return -LogMarginal(obs, decode(t)) // minimize negative LL
	}
	best := nelderMead(obj, encode(start), 400)
	p := decode(best)
	return p, LogMarginal(obs, p), nil
}

func clampF(x float64) float64 {
	if x > 30 {
		return 30
	}
	if x < -30 {
		return -30
	}
	return x
}

// nelderMead is a compact simplex minimizer over a fixed-dimension
// parameter vector.
func nelderMead(f func([5]float64) float64, start [5]float64, iters int) [5]float64 {
	const dim = 5
	type vertex struct {
		x [5]float64
		v float64
	}
	simplex := make([]vertex, dim+1)
	simplex[0] = vertex{start, f(start)}
	for i := 0; i < dim; i++ {
		x := start
		step := 0.5
		if x[i] == 0 {
			x[i] = step
		} else {
			x[i] += step
		}
		simplex[i+1] = vertex{x, f(x)}
	}
	for it := 0; it < iters; it++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		bestV, worst := simplex[0], simplex[dim]
		// Centroid of all but worst.
		var c [5]float64
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				c[j] += simplex[i].x[j] / float64(dim)
			}
		}
		combine := func(coef float64) vertex {
			var x [5]float64
			for j := 0; j < dim; j++ {
				x[j] = c[j] + coef*(worst.x[j]-c[j])
			}
			return vertex{x, f(x)}
		}
		refl := combine(-1)
		switch {
		case refl.v < bestV.v:
			if exp := combine(-2); exp.v < refl.v {
				simplex[dim] = exp
			} else {
				simplex[dim] = refl
			}
		case refl.v < simplex[dim-1].v:
			simplex[dim] = refl
		default:
			if con := combine(0.5); con.v < worst.v {
				simplex[dim] = con
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					var x [5]float64
					for j := 0; j < dim; j++ {
						x[j] = bestV.x[j] + 0.5*(simplex[i].x[j]-bestV.x[j])
					}
					simplex[i] = vertex{x, f(x)}
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x
}

// digamma computes ψ(x) via the asymptotic series after shifting the
// argument above 10 with the recurrence ψ(x) = ψ(x+1) − 1/x.
func digamma(x float64) float64 {
	result := 0.0
	for x < 10 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶) + 1/(240x⁸)
	return result + math.Log(x) - inv/2 -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
}

// gammaCDF returns P(X ≤ x) for X ~ Gamma(shape α, rate β): the
// regularized lower incomplete gamma P(α, βx).
func gammaCDF(x, alpha, beta float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGamma(alpha, beta*x)
}

// regIncGamma computes the regularized lower incomplete gamma
// P(a, x) with the series expansion for x < a+1 and the continued
// fraction for the complement otherwise (Numerical Recipes scheme).
func regIncGamma(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		// Series: P(a,x) = e^{−x} x^a / Γ(a) · Σ x^n / (a(a+1)...(a+n))
		ap := a
		sum := 1 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
	}
	// Continued fraction for Q(a,x) = 1 − P(a,x).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
	return 1 - q
}
