package slo

import (
	"fmt"
	"log/slog"
	"sort"
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/obs/history"
)

// Config configures NewEngine. Objectives is required; everything
// else is optional.
type Config struct {
	Objectives []Objective
	// Rules defaults to DefaultRules(1).
	Rules []BurnRule
	// Cooldown is how long a rule's short window must run below
	// threshold before an active breach clears (<= 0 = the rule's
	// own short window).
	Cooldown time.Duration
	// MinEvents is the minimum short-window event count before a
	// rule may fire, guarding against burn-rate noise at trivial
	// traffic (<= 0 = 10).
	MinEvents float64
	// Period is the error-budget accounting window (<= 0 = the
	// longest rule Long window).
	Period time.Duration

	// Log receives breach and recovery events; Ready carries the
	// degraded flag for SevFail breaches; Metrics exports the
	// maras_slo_* series; Logger mirrors transitions to slog. All
	// nil-safe.
	Log     *audit.Log
	Ready   *obs.Readiness
	Metrics *obs.Registry
	Logger  *slog.Logger
}

// ruleState tracks one (objective, rule) pair across ticks.
type ruleState struct {
	active    bool
	firedAt   time.Time
	clearOK   time.Time // since when the short window has been below threshold
	breachesC *obs.Counter
	activeG   *obs.Gauge
	shortG    *obs.FloatGauge
	longG     *obs.FloatGauge
}

// objState tracks one objective across ticks.
type objState struct {
	obj     Objective
	rules   []*ruleState
	budgetG *obs.FloatGauge
}

// Engine evaluates burn-rate rules against the metrics history. It
// holds no lock of its own: Tick runs on the history's scrape
// goroutine (wire with hist.OnScrape(eng.Tick)), and Report reads a
// snapshot the last Tick published. A nil *Engine is safe: Tick is a
// no-op and Report returns a zero report.
type Engine struct {
	hist *history.History
	cfg  Config
	objs []*objState

	evalsC *obs.Counter

	mu       chan struct{} // 1-token semaphore guarding state + report
	lastTick time.Time
	report   Report
}

// NewEngine builds an engine over the history. Metric series are
// registered eagerly so every objective and rule exists (at zero)
// from the first scrape.
func NewEngine(h *history.History, cfg Config) *Engine {
	if len(cfg.Rules) == 0 {
		cfg.Rules = DefaultRules(1)
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 10
	}
	if cfg.Period <= 0 {
		for _, r := range cfg.Rules {
			if r.Long > cfg.Period {
				cfg.Period = r.Long
			}
		}
	}
	e := &Engine{hist: h, cfg: cfg, mu: make(chan struct{}, 1)}
	e.mu <- struct{}{}
	reg := cfg.Metrics
	if reg != nil {
		e.evalsC = reg.Counter("maras_slo_evaluations_total",
			"SLO burn-rate evaluation ticks completed.")
	}
	for _, obj := range cfg.Objectives {
		os := &objState{obj: obj}
		if reg != nil {
			os.budgetG = reg.FloatGauge("maras_slo_error_budget_remaining",
				"Fraction of the period's error budget still unspent, by objective (1 = untouched, negative = overspent).",
				obs.Label{Key: "objective", Value: obj.Name})
			os.budgetG.Set(1)
		}
		for _, rule := range cfg.Rules {
			rs := &ruleState{}
			if reg != nil {
				lbl := []obs.Label{{Key: "objective", Value: obj.Name}, {Key: "rule", Value: rule.Name}}
				rs.breachesC = reg.Counter("maras_slo_breaches_total",
					"Burn-rate breaches fired, by objective and rule.", lbl...)
				rs.activeG = reg.Gauge("maras_slo_breach_active",
					"Whether the burn-rate rule is currently breached (1) or clear (0).", lbl...)
				rs.shortG = reg.FloatGauge("maras_slo_burn_rate",
					"Error-budget burn-rate multiple over the rule window, by objective, rule, and window.",
					obs.Label{Key: "objective", Value: obj.Name}, obs.Label{Key: "rule", Value: rule.Name},
					obs.Label{Key: "window", Value: "short"})
				rs.longG = reg.FloatGauge("maras_slo_burn_rate",
					"Error-budget burn-rate multiple over the rule window, by objective, rule, and window.",
					obs.Label{Key: "objective", Value: obj.Name}, obs.Label{Key: "rule", Value: rule.Name},
					obs.Label{Key: "window", Value: "long"})
			}
			os.rules = append(os.rules, rs)
		}
		e.objs = append(e.objs, os)
	}
	return e
}

// Period returns the error-budget accounting window.
func (e *Engine) Period() time.Duration {
	if e == nil {
		return 0
	}
	return e.cfg.Period
}

// cooldownFor returns the clear delay for a rule.
func (e *Engine) cooldownFor(rule BurnRule) time.Duration {
	if e.cfg.Cooldown > 0 {
		return e.cfg.Cooldown
	}
	return rule.Short
}

// Tick evaluates every (objective, rule) pair at now, updates
// metrics, emits breach/recovery audit events, maintains the
// degraded flag, and publishes a fresh Report. Wire it to the
// history scraper with hist.OnScrape(eng.Tick) so burn rates update
// exactly once per sample.
func (e *Engine) Tick(now time.Time) {
	if e == nil || e.hist == nil {
		return
	}
	<-e.mu
	defer func() { e.mu <- struct{}{} }()

	rep := Report{Time: now, Period: e.cfg.Period.String()}
	for _, os := range e.objs {
		obj := os.obj
		budget := obj.Budget()
		or := ObjectiveReport{
			Name:        obj.Name,
			Kind:        string(obj.Kind),
			Description: obj.Description,
			Budget:      budget,
		}
		e.fillPeriod(&or, obj)
		if os.budgetG != nil {
			os.budgetG.Set(or.BudgetRemaining)
		}

		anyFailActive := false
		for i, rule := range e.cfg.Rules {
			rs := os.rules[i]
			shortRate, shortTotal := obj.errRate(e.hist, rule.Short)
			longRate, _ := obj.errRate(e.hist, rule.Long)
			shortBurn := burn(shortRate, budget)
			longBurn := burn(longRate, budget)
			if rs.shortG != nil {
				rs.shortG.Set(shortBurn)
				rs.longG.Set(longBurn)
			}

			over := shortBurn >= rule.Threshold && longBurn >= rule.Threshold &&
				shortTotal >= e.cfg.MinEvents
			key := fmt.Sprintf("slo_burn:%s:%s", obj.Name, rule.Name)
			switch {
			case over && !rs.active:
				rs.active = true
				rs.firedAt = now
				rs.clearOK = time.Time{}
				if rs.breachesC != nil {
					rs.breachesC.Inc()
					rs.activeG.Set(1)
				}
				if e.cfg.Log.RecordOnce(key, audit.Event{
					Time:     now,
					Rule:     "slo_burn",
					Severity: rule.Severity,
					Scope:    obj.Name,
					Message: fmt.Sprintf("%s burn %.1fx/%.1fx over %s/%s (threshold %.1fx): %s",
						rule.Name, shortBurn, longBurn, rule.Short, rule.Long,
						rule.Threshold, obj.Description),
				}) && e.cfg.Logger != nil {
					e.cfg.Logger.Warn("slo burn-rate breach",
						"objective", obj.Name, "rule", rule.Name,
						"short_burn", shortBurn, "long_burn", longBurn)
				}
			case over && rs.active:
				rs.clearOK = time.Time{} // still burning; reset the clear clock
			case !over && rs.active:
				// The short window no longer burns; clear after the
				// cooldown so a flapping fault can't clear instantly.
				if shortBurn < rule.Threshold {
					if rs.clearOK.IsZero() {
						rs.clearOK = now
					}
					if now.Sub(rs.clearOK) >= e.cooldownFor(rule) {
						rs.active = false
						if rs.activeG != nil {
							rs.activeG.Set(0)
						}
						e.cfg.Log.Forget(key)
						e.cfg.Log.Record(audit.Event{
							Time:     now,
							Rule:     "slo_recovered",
							Severity: audit.SevInfo,
							Scope:    obj.Name,
							Message: fmt.Sprintf("%s burn recovered after %s (burn %.1fx < %.1fx)",
								rule.Name, now.Sub(rs.firedAt).Round(time.Millisecond),
								shortBurn, rule.Threshold),
						})
						if e.cfg.Logger != nil {
							e.cfg.Logger.Info("slo burn-rate recovered",
								"objective", obj.Name, "rule", rule.Name)
						}
					}
				} else {
					rs.clearOK = time.Time{}
				}
			}
			if rs.active && rule.Severity == audit.SevFail {
				anyFailActive = true
			}
			or.Rules = append(or.Rules, RuleReport{
				Name:      rule.Name,
				Short:     rule.Short.String(),
				Long:      rule.Long.String(),
				Threshold: rule.Threshold,
				ShortBurn: round4(shortBurn),
				LongBurn:  round4(longBurn),
				Active:    rs.active,
				Severity:  string(rule.Severity),
			})
		}
		// The degraded cause follows page-severity breaches only:
		// SevWarn burns are ticket-worthy, not routing-worthy.
		e.cfg.Ready.SetDegraded("slo:"+obj.Name, anyFailActive)
		rep.Objectives = append(rep.Objectives, or)
	}
	if e.evalsC != nil {
		e.evalsC.Inc()
	}
	e.lastTick = now
	e.report = rep
}

// fillPeriod computes the error-budget accounting fields over the
// engine period. Every value is finite (JSON-safe).
func (e *Engine) fillPeriod(or *ObjectiveReport, obj Objective) {
	budget := obj.Budget()
	rate, total := obj.errRate(e.hist, e.cfg.Period)
	or.PeriodEvents = total
	or.PeriodErrRate = round6(rate)
	or.BudgetRemaining = 1
	if budget > 0 && total > 0 {
		or.BudgetRemaining = round4(1 - rate/budget)
	}
	switch obj.Kind {
	case KindAvailability:
		or.Target = obj.Target
		or.PeriodValue = round6(1 - rate)
	case KindLatency:
		or.Target = obj.Threshold
		if d, ok := e.hist.HistogramWindow(obj.Hist, e.cfg.Period); ok {
			if q, ok := d.Quantile(obj.Quantile); ok {
				or.PeriodValue = round6(q)
			}
		}
	case KindRatio:
		or.Target = obj.Target
		or.PeriodValue = round6(rate)
	}
}

// burn converts an error rate into a budget-burn multiple; a zero
// budget never burns (disabled objective).
func burn(rate, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	return rate / budget
}

// RuleReport is one burn-rate rule's state in a Report.
type RuleReport struct {
	Name      string  `json:"name"`
	Short     string  `json:"short_window"`
	Long      string  `json:"long_window"`
	Threshold float64 `json:"threshold"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Active    bool    `json:"active"`
	Severity  string  `json:"severity"`
}

// ObjectiveReport is one objective's state in a Report.
type ObjectiveReport struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Description string `json:"description"`
	// Target is the availability target, latency threshold in
	// seconds, or ratio ceiling, per Kind.
	Target float64 `json:"target"`
	Budget float64 `json:"budget"`
	// PeriodValue is the period's measured availability, quantile
	// latency (seconds), or bad-event ratio, per Kind.
	PeriodValue     float64      `json:"period_value"`
	PeriodErrRate   float64      `json:"period_err_rate"`
	PeriodEvents    float64      `json:"period_events"`
	BudgetRemaining float64      `json:"budget_remaining"`
	Rules           []RuleReport `json:"rules"`
}

// Report is the engine's full published state, as served at /api/slo.
type Report struct {
	Time       time.Time         `json:"time"`
	Period     string            `json:"period"`
	Objectives []ObjectiveReport `json:"objectives"`
}

// Breached returns the names of objectives with any active rule.
func (r Report) Breached() []string {
	var out []string
	for _, o := range r.Objectives {
		for _, ru := range o.Rules {
			if ru.Active {
				out = append(out, o.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Report returns the state published by the last Tick. Before the
// first Tick (or on a nil engine) it is zero apart from objective
// names, so callers can render "no data yet".
func (e *Engine) Report() Report {
	if e == nil {
		return Report{}
	}
	<-e.mu
	defer func() { e.mu <- struct{}{} }()
	if e.lastTick.IsZero() {
		rep := Report{Period: e.cfg.Period.String()}
		for _, os := range e.objs {
			rep.Objectives = append(rep.Objectives, ObjectiveReport{
				Name:            os.obj.Name,
				Kind:            string(os.obj.Kind),
				Description:     os.obj.Description,
				Budget:          os.obj.Budget(),
				BudgetRemaining: 1,
			})
		}
		return rep
	}
	return e.report
}

func round4(v float64) float64 { return float64(int64(v*1e4+sign(v)*0.5)) / 1e4 }
func round6(v float64) float64 { return float64(int64(v*1e6+sign(v)*0.5)) / 1e6 }

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
