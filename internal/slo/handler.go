package slo

import (
	"encoding/json"
	"net/http"
)

// Handler serves the engine's published report at /api/slo as
// indented JSON. A nil engine answers 404 so the route can be
// mounted unconditionally.
func Handler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e == nil {
			http.Error(w, "slo engine disabled (-history-scrape 0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(e.Report())
	})
}
