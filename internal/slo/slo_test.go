package slo

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/obs/history"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testStack wires a registry, a clock-stubbed history, an audit log,
// a readiness probe, and an engine with 5s/20s fast + 10s/40s slow
// windows over a 99.5% availability objective.
type testStack struct {
	reg   *obs.Registry
	hist  *history.History
	eng   *Engine
	alog  *audit.Log
	ready *obs.Readiness
	clock *fakeClock
	ok    *obs.Counter
	bad   *obs.Counter
}

func newTestStack(t *testing.T) *testStack {
	t.Helper()
	reg := obs.NewRegistry()
	clock := newFakeClock()
	hist := history.New(reg, history.Options{
		Interval: time.Second, Retention: 5 * time.Minute, Now: clock.Now,
	})
	alog := audit.NewLog(audit.LogOptions{})
	ready := &obs.Readiness{}
	ready.SetReady()
	rules := []BurnRule{
		{Name: "fast", Short: 5 * time.Second, Long: 20 * time.Second,
			Threshold: 14.4, Severity: audit.SevFail},
		{Name: "slow", Short: 10 * time.Second, Long: 40 * time.Second,
			Threshold: 6, Severity: audit.SevWarn},
	}
	eng := NewEngine(hist, Config{
		Objectives: DefaultObjectives(0.995, 0, 0, 0),
		Rules:      rules,
		MinEvents:  1,
		Cooldown:   2 * time.Second,
		Log:        alog,
		Ready:      ready,
		Metrics:    reg,
	})
	hist.OnScrape(eng.Tick)
	st := &testStack{reg: reg, hist: hist, eng: eng, alog: alog,
		ready: ready, clock: clock}
	st.ok = reg.Counter("http_requests_total", "h",
		obs.Label{Key: "route", Value: "/"}, obs.Label{Key: "code", Value: "2xx"})
	st.bad = reg.Counter("http_requests_total", "h",
		obs.Label{Key: "route", Value: "/"}, obs.Label{Key: "code", Value: "5xx"})
	hist.Scrape() // baseline
	return st
}

// step advances the clock one scrape interval, adds traffic, and
// scrapes (which ticks the engine).
func (st *testStack) step(ok, bad int64) {
	st.clock.Advance(time.Second)
	if ok > 0 {
		st.ok.Add(ok)
	}
	if bad > 0 {
		st.bad.Add(bad)
	}
	st.hist.Scrape()
}

func hasEvent(alog *audit.Log, rule, scope string) bool {
	for _, e := range alog.Recent(0) {
		if e.Rule == rule && e.Scope == scope {
			return true
		}
	}
	return false
}

func TestObjectiveBudgets(t *testing.T) {
	if b := (Objective{Kind: KindAvailability, Target: 0.995}).Budget(); math.Abs(b-0.005) > 1e-9 {
		t.Errorf("availability budget = %v", b)
	}
	if b := (Objective{Kind: KindLatency, Quantile: 0.99}).Budget(); math.Abs(b-0.01) > 1e-9 {
		t.Errorf("latency budget = %v", b)
	}
	if b := (Objective{Kind: KindRatio, Target: 0.05}).Budget(); b != 0.05 {
		t.Errorf("ratio budget = %v", b)
	}
}

func TestDefaultObjectivesGating(t *testing.T) {
	objs := DefaultObjectives(0.995, 500*time.Millisecond, 0.05, 0.1)
	if len(objs) != 4 {
		t.Fatalf("all enabled: %d objectives, want 4", len(objs))
	}
	objs = DefaultObjectives(0.995, 0, 0, 0)
	if len(objs) != 1 || objs[0].Name != "availability" {
		t.Fatalf("gated: %+v", objs)
	}
	if objs = DefaultObjectives(0, 0, 0, 0); len(objs) != 0 {
		t.Fatalf("all disabled: %d objectives, want 0", len(objs))
	}
}

func TestDefaultRulesScale(t *testing.T) {
	rules := DefaultRules(1)
	if rules[0].Short != 5*time.Minute || rules[0].Long != time.Hour {
		t.Errorf("fast windows = %v/%v", rules[0].Short, rules[0].Long)
	}
	scaled := DefaultRules(1.0 / 60)
	if scaled[0].Short != 5*time.Second || scaled[0].Long != time.Minute {
		t.Errorf("scaled fast windows = %v/%v", scaled[0].Short, scaled[0].Long)
	}
	if def := DefaultRules(0); def[0].Short != 5*time.Minute {
		t.Errorf("zero scale should fall back to 1x, got %v", def[0].Short)
	}
}

func TestCleanTrafficNoBreach(t *testing.T) {
	st := newTestStack(t)
	for i := 0; i < 10; i++ {
		st.step(100, 0)
	}
	rep := st.eng.Report()
	if got := rep.Breached(); len(got) != 0 {
		t.Errorf("clean traffic breached %v", got)
	}
	av := rep.Objectives[0]
	if av.PeriodValue != 1 {
		t.Errorf("period availability = %v, want 1", av.PeriodValue)
	}
	if av.BudgetRemaining != 1 {
		t.Errorf("budget remaining = %v, want 1", av.BudgetRemaining)
	}
	if st.ready.Degraded() {
		t.Error("clean traffic flipped the degraded flag")
	}
}

func TestBreachLifecycle(t *testing.T) {
	st := newTestStack(t)
	// Healthy baseline.
	for i := 0; i < 3; i++ {
		st.step(100, 0)
	}
	// Sustained 50% error rate: burn 100x >> 14.4x in both fast
	// windows once enough samples accrue.
	for i := 0; i < 6; i++ {
		st.step(50, 50)
	}
	rep := st.eng.Report()
	fast := rep.Objectives[0].Rules[0]
	if !fast.Active {
		t.Fatalf("fast rule not active after sustained errors: %+v", fast)
	}
	if !st.ready.Degraded() {
		t.Error("SevFail breach did not flip the degraded flag")
	}
	if causes := st.ready.DegradedCauses(); len(causes) != 1 || causes[0] != "slo:availability" {
		t.Errorf("degraded causes = %v", causes)
	}
	if !hasEvent(st.alog, "slo_burn", "availability") {
		t.Error("breach did not land in the audit log")
	}

	// Recovery: clean traffic drains the short window; after the 2s
	// cooldown the breach clears, the flag drops, and the recovery
	// event lands.
	for i := 0; i < 30 && st.ready.Degraded(); i++ {
		st.step(100, 0)
	}
	rep = st.eng.Report()
	if rep.Objectives[0].Rules[0].Active {
		t.Fatal("fast rule still active after sustained clean traffic")
	}
	if st.ready.Degraded() {
		t.Error("degraded flag survived recovery")
	}
	if !hasEvent(st.alog, "slo_recovered", "availability") {
		t.Error("recovery did not land in the audit log")
	}
}

func TestShortBlipDoesNotBreach(t *testing.T) {
	st := newTestStack(t)
	// Long healthy history, then a single 1-second error spike: the
	// short window burns but the 20s long window stays diluted below
	// threshold, so the multi-window rule must not fire.
	for i := 0; i < 20; i++ {
		st.step(100, 0)
	}
	st.step(80, 20) // one bad second: long-window err ≈ 1% → burn ≈ 2x
	for i := 0; i < 3; i++ {
		st.step(100, 0)
	}
	if got := st.eng.Report().Breached(); len(got) != 0 {
		t.Errorf("single blip breached %v", got)
	}
	if hasEvent(st.alog, "slo_burn", "availability") {
		t.Error("blip landed a breach event")
	}
}

func TestMinEventsGuard(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	hist := history.New(reg, history.Options{Interval: time.Second, Retention: time.Minute, Now: clock.Now})
	eng := NewEngine(hist, Config{
		Objectives: DefaultObjectives(0.995, 0, 0, 0),
		Rules: []BurnRule{{Name: "fast", Short: 5 * time.Second,
			Long: 10 * time.Second, Threshold: 14.4, Severity: audit.SevFail}},
		MinEvents: 100,
	})
	hist.OnScrape(eng.Tick)
	bad := reg.Counter("http_requests_total", "h", obs.Label{Key: "code", Value: "5xx"})
	hist.Scrape()
	for i := 0; i < 5; i++ {
		clock.Advance(time.Second)
		bad.Add(2) // 100% errors but only 10 events total
		hist.Scrape()
	}
	if got := eng.Report().Breached(); len(got) != 0 {
		t.Errorf("sub-MinEvents traffic breached %v", got)
	}
}

func TestSloMetricsRendered(t *testing.T) {
	st := newTestStack(t)
	for i := 0; i < 3; i++ {
		st.step(100, 0)
	}
	var sb strings.Builder
	st.reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`maras_slo_burn_rate{objective="availability",rule="fast",window="short"}`,
		`maras_slo_burn_rate{objective="availability",rule="slow",window="long"}`,
		`maras_slo_error_budget_remaining{objective="availability"} 1`,
		`maras_slo_breach_active{objective="availability",rule="fast"} 0`,
		`maras_slo_breaches_total{objective="availability",rule="fast"} 0`,
		"maras_slo_evaluations_total",
		"maras_history_scrapes_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Drive a breach and confirm the breach series move.
	for i := 0; i < 8; i++ {
		st.step(0, 100)
	}
	sb.Reset()
	st.reg.WritePrometheus(&sb)
	out = sb.String()
	if !strings.Contains(out, `maras_slo_breach_active{objective="availability",rule="fast"} 1`) {
		t.Errorf("breach_active not set after breach:\n%s", out)
	}
	if !strings.Contains(out, `maras_slo_breaches_total{objective="availability",rule="fast"} 1`) {
		t.Errorf("breaches_total not bumped after breach")
	}
}

func TestLatencyObjective(t *testing.T) {
	reg := obs.NewRegistry()
	clock := newFakeClock()
	hist := history.New(reg, history.Options{Interval: time.Second, Retention: time.Minute, Now: clock.Now})
	eng := NewEngine(hist, Config{
		Objectives: []Objective{{
			Name: "latency-p99", Kind: KindLatency, Quantile: 0.99,
			Threshold: 0.5, Hist: history.Family("http_request_duration_seconds"),
		}},
		Rules: []BurnRule{{Name: "fast", Short: 3 * time.Second,
			Long: 6 * time.Second, Threshold: 10, Severity: audit.SevFail}},
		MinEvents: 1,
	})
	hist.OnScrape(eng.Tick)
	h := reg.Histogram("http_request_duration_seconds", "h",
		obs.DefaultLatencyBuckets, obs.Label{Key: "route", Value: "/"})
	hist.Scrape()
	// 20% of requests over the 0.5s target: err rate 0.2 / budget
	// 0.01 = burn 20x > 10x.
	for i := 0; i < 6; i++ {
		clock.Advance(time.Second)
		for j := 0; j < 8; j++ {
			h.Observe(0.01)
		}
		h.Observe(1.5)
		h.Observe(1.5)
		hist.Scrape()
	}
	rep := eng.Report()
	if got := rep.Breached(); len(got) != 1 || got[0] != "latency-p99" {
		t.Fatalf("breached = %v, want [latency-p99]", got)
	}
	if pv := rep.Objectives[0].PeriodValue; pv <= 0.5 {
		t.Errorf("period p99 = %v, want > 0.5s with 20%% slow requests", pv)
	}
}

func TestReportJSONSafe(t *testing.T) {
	st := newTestStack(t)
	// Before any traffic and right after baseline: no NaNs allowed.
	if _, err := json.Marshal(st.eng.Report()); err != nil {
		t.Fatalf("pre-traffic report not marshalable: %v", err)
	}
	st.step(0, 0) // a tick with zero events
	if _, err := json.Marshal(st.eng.Report()); err != nil {
		t.Fatalf("zero-event report not marshalable: %v", err)
	}
}

func TestHandlerServesReport(t *testing.T) {
	st := newTestStack(t)
	st.step(100, 0)
	rec := httptest.NewRecorder()
	Handler(st.eng).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Name != "availability" {
		t.Errorf("report objectives = %+v", rep.Objectives)
	}

	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/slo", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil engine status = %d, want 404", rec.Code)
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.Tick(time.Now())
	if rep := e.Report(); len(rep.Objectives) != 0 {
		t.Errorf("nil engine report = %+v", rep)
	}
}
