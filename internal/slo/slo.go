// Package slo evaluates service-level objectives against the
// in-process metrics history (internal/obs/history) using
// multi-window burn-rate rules, the alerting recipe from the Google
// SRE workbook: a breach fires only when BOTH a short and a long
// trailing window burn error budget faster than a threshold — the
// long window proves the problem is sustained, the short window
// proves it is still happening — and clears after the short window
// runs clean for a cooldown. Breaches land as events in the audit
// log (internal/audit), flip the /readyz degraded flag for
// page-severity rules, and export as maras_slo_* gauges, so the SLO
// engine, watchdog, and quality auditor share one alerting spine.
package slo

import (
	"fmt"
	"time"

	"maras/internal/audit"
	"maras/internal/obs/history"
)

// Kind selects how an objective turns history windows into an error
// rate.
type Kind string

const (
	// KindAvailability measures bad-events / total-events from two
	// counter selections (e.g. 5xx responses over all responses).
	KindAvailability Kind = "availability"
	// KindLatency measures the fraction of histogram observations
	// above Threshold; the budget is 1-Quantile (a p99 objective
	// tolerates 1% of requests over the threshold).
	KindLatency Kind = "latency"
	// KindRatio measures bad-events / total-events against an
	// explicit ceiling (e.g. stale serves, shed requests); the
	// ceiling itself is the budget.
	KindRatio Kind = "ratio"
)

// Objective is one declarative service-level objective.
type Objective struct {
	// Name keys metrics labels, audit scopes, and readiness causes.
	Name        string
	Kind        Kind
	Description string

	// Target is the availability target (e.g. 0.995) for
	// KindAvailability, or the bad-fraction ceiling (e.g. 0.05) for
	// KindRatio. Unused for KindLatency.
	Target float64
	// Quantile (e.g. 0.99) and Threshold (seconds) define a latency
	// objective: Quantile of requests must complete under Threshold.
	Quantile  float64
	Threshold float64

	// Selectors over the history. Total/Bad select counter series for
	// availability and ratio objectives; Hist selects histogram
	// series for latency objectives.
	Total history.Selector
	Bad   history.Selector
	Hist  history.Selector
}

// Budget returns the objective's error budget: the fraction of
// events allowed to be bad.
func (o Objective) Budget() float64 {
	switch o.Kind {
	case KindAvailability:
		return 1 - o.Target
	case KindLatency:
		return 1 - o.Quantile
	case KindRatio:
		return o.Target
	}
	return 0
}

// errRate computes the objective's bad-event fraction over a
// trailing window, plus the window's total event count (the
// MinEvents guard). Rates are always finite: an empty window reports
// a zero rate, never NaN.
func (o Objective) errRate(h *history.History, window time.Duration) (rate float64, total float64) {
	switch o.Kind {
	case KindAvailability, KindRatio:
		tot, _ := h.CounterSum(o.Total, window)
		bad, _ := h.CounterSum(o.Bad, window)
		if tot <= 0 {
			return 0, 0
		}
		if bad < 0 {
			bad = 0
		}
		if bad > tot {
			bad = tot
		}
		return bad / tot, tot
	case KindLatency:
		d, ok := h.HistogramWindow(o.Hist, window)
		if !ok || d.Count <= 0 {
			return 0, 0
		}
		frac, ok := d.FractionOver(o.Threshold)
		if !ok {
			return 0, float64(d.Count)
		}
		return frac, float64(d.Count)
	}
	return 0, 0
}

// DefaultObjectives builds the stock MARAS objectives over the
// serving stack's existing series. A target/ceiling of 0 (or a
// latency threshold of 0) disables that objective.
//
//   - availability: non-5xx fraction of http_requests_total
//   - latency-p99: p99 of http_request_duration_seconds under p99 seconds
//   - stale-serves: maras_store_stale_serves_total over requests,
//     capped at staleCeil
//   - shed-rate: maras_shed_total over requests, capped at shedCeil
func DefaultObjectives(availability float64, p99 time.Duration, staleCeil, shedCeil float64) []Objective {
	requests := history.Family("http_requests_total")
	var objs []Objective
	if availability > 0 {
		objs = append(objs, Objective{
			Name:        "availability",
			Kind:        KindAvailability,
			Description: fmt.Sprintf("%.4g%% of requests answer without a 5xx", availability*100),
			Target:      availability,
			Total:       requests,
			Bad:         history.FamilyLabel("http_requests_total", "code", "5xx"),
		})
	}
	if p99 > 0 {
		objs = append(objs, Objective{
			Name:        "latency-p99",
			Kind:        KindLatency,
			Description: fmt.Sprintf("99%% of requests complete under %s", p99),
			Quantile:    0.99,
			Threshold:   p99.Seconds(),
			Hist:        history.Family("http_request_duration_seconds"),
		})
	}
	if staleCeil > 0 {
		objs = append(objs, Objective{
			Name:        "stale-serves",
			Kind:        KindRatio,
			Description: fmt.Sprintf("at most %.4g%% of requests served from the stale cache", staleCeil*100),
			Target:      staleCeil,
			Total:       requests,
			Bad:         history.Family("maras_store_stale_serves_total"),
		})
	}
	if shedCeil > 0 {
		objs = append(objs, Objective{
			Name:        "shed-rate",
			Kind:        KindRatio,
			Description: fmt.Sprintf("at most %.4g%% of requests shed by the bulkhead", shedCeil*100),
			Target:      shedCeil,
			Total:       requests,
			Bad:         history.Family("maras_shed_total"),
		})
	}
	return objs
}

// BurnRule is one multi-window burn-rate alerting rule: fire when
// the error rate over BOTH windows exceeds Threshold × budget.
type BurnRule struct {
	// Name labels the rule in metrics and audit events.
	Name string
	// Short and Long are the paired trailing windows.
	Short, Long time.Duration
	// Threshold is the burn-rate multiple (err-rate / budget) both
	// windows must reach.
	Threshold float64
	// Severity of the audit event a breach emits; SevFail rules also
	// flip the /readyz degraded flag.
	Severity audit.Severity
}

// DefaultRules returns the standard fast/slow burn-rate pair, with
// every window multiplied by scale so short-lived processes (tests,
// benches) can exercise real burn dynamics in seconds:
//
//   - fast: 5m/1h at 14.4× budget → SevFail. 14.4× burns 2% of a
//     30-day budget in one hour — page-worthy.
//   - slow: 30m/6h at 6× budget → SevWarn. 6× burns 5% in six hours
//     — ticket-worthy.
func DefaultRules(scale float64) []BurnRule {
	if scale <= 0 {
		scale = 1
	}
	d := func(base time.Duration) time.Duration {
		return time.Duration(float64(base) * scale)
	}
	return []BurnRule{
		{Name: "fast", Short: d(5 * time.Minute), Long: d(time.Hour),
			Threshold: 14.4, Severity: audit.SevFail},
		{Name: "slow", Short: d(30 * time.Minute), Long: d(6 * time.Hour),
			Threshold: 6, Severity: audit.SevWarn},
	}
}
