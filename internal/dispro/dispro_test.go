package dispro

import (
	"fmt"
	"math"
	"testing"

	"maras/internal/txdb"
	"maras/internal/types"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestContingencyCounts(t *testing.T) {
	dict := types.NewDictionary()
	d1 := dict.Intern("d1", types.DomainDrug)
	d2 := dict.Intern("d2", types.DomainDrug)
	a1 := dict.Intern("a1", types.DomainReaction)
	db := txdb.New(dict)
	// 3 reports with d1,d2,a1; 2 with d1,d2 only; 4 with a1 only; 1 blank drug d1.
	for i := 0; i < 3; i++ {
		db.Add(fmt.Sprintf("x%d", i), types.NewItemset(d1, d2, a1))
	}
	for i := 0; i < 2; i++ {
		db.Add(fmt.Sprintf("y%d", i), types.NewItemset(d1, d2))
	}
	for i := 0; i < 4; i++ {
		db.Add(fmt.Sprintf("z%d", i), types.NewItemset(a1))
	}
	db.Add("w", types.NewItemset(d1))
	db.Freeze()

	tab := Contingency(db, types.NewItemset(d1, d2), types.NewItemset(a1))
	if tab.A != 3 || tab.B != 2 || tab.C != 4 || tab.D != 1 {
		t.Fatalf("table = %+v, want A=3 B=2 C=4 D=1", tab)
	}
	if tab.N() != 10 {
		t.Errorf("N = %d", tab.N())
	}
}

func TestPRRHandComputed(t *testing.T) {
	// a=30,b=70,c=10,d=890: PRR = (30/100)/(10/900) = 27.
	tab := Table{A: 30, B: 70, C: 10, D: 890}
	if !approx(tab.PRR(), 27) {
		t.Errorf("PRR = %v, want 27", tab.PRR())
	}
}

func TestRORHandComputed(t *testing.T) {
	tab := Table{A: 30, B: 70, C: 10, D: 890}
	want := (30.0 * 890.0) / (70.0 * 10.0)
	if !approx(tab.ROR(), want) {
		t.Errorf("ROR = %v, want %v", tab.ROR(), want)
	}
}

func TestRRRHandComputed(t *testing.T) {
	// RRR = a·N / ((a+b)(a+c)) = 30·1000/(100·40) = 7.5.
	tab := Table{A: 30, B: 70, C: 10, D: 890}
	if !approx(tab.RRR(), 7.5) {
		t.Errorf("RRR = %v, want 7.5", tab.RRR())
	}
}

func TestZeroCellCorrection(t *testing.T) {
	tab := Table{A: 5, B: 0, C: 2, D: 100}
	for name, v := range map[string]float64{"PRR": tab.PRR(), "ROR": tab.ROR(), "RRR": tab.RRR()} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("%s with zero cell = %v, want finite (Haldane correction)", name, v)
		}
	}
}

func TestChiSquare(t *testing.T) {
	// Independence: chi² near 0.
	indep := Table{A: 25, B: 25, C: 25, D: 25}
	if got := indep.ChiSquare(); got > 0.5 {
		t.Errorf("independent table chi² = %v, want ~0", got)
	}
	// Strong association: chi² large.
	strong := Table{A: 50, B: 5, C: 5, D: 50}
	if got := strong.ChiSquare(); got < 30 {
		t.Errorf("strong table chi² = %v, want > 30", got)
	}
	empty := Table{}
	if empty.ChiSquare() != 0 {
		t.Error("empty table chi² should be 0")
	}
}

func TestSignalCriteria(t *testing.T) {
	// Meets PRR>=2, chi²>=4, a>=3.
	sig := Table{A: 30, B: 70, C: 10, D: 890}
	if !sig.Signal() {
		t.Error("expected signal")
	}
	// Too few co-reports.
	few := Table{A: 2, B: 1, C: 1, D: 996}
	if few.Signal() {
		t.Error("a<3 should not signal")
	}
	// No disproportionality.
	flat := Table{A: 25, B: 25, C: 25, D: 25}
	if flat.Signal() {
		t.Error("flat table should not signal")
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	dict := types.NewDictionary()
	x := dict.Intern("X", types.DomainDrug)
	y := dict.Intern("Y", types.DomainDrug)
	bad := dict.Intern("Bad", types.DomainReaction)
	other := dict.Intern("Other", types.DomainReaction)
	db := txdb.New(dict)
	id := 0
	add := func(items ...types.Item) {
		id++
		db.Add(fmt.Sprintf("r%d", id), types.NewItemset(items...))
	}
	for i := 0; i < 20; i++ {
		add(x, y, bad)
	}
	for i := 0; i < 200; i++ {
		add(x, other)
	}
	for i := 0; i < 200; i++ {
		add(y, other)
	}
	for i := 0; i < 500; i++ {
		add(other)
	}
	db.Freeze()

	s := Evaluate(db, types.NewItemset(x, y), types.NewItemset(bad))
	if !s.Signal {
		t.Errorf("planted signal not detected: %+v", s)
	}
	if s.PRR < 2 || s.RRR < 2 {
		t.Errorf("PRR=%v RRR=%v, want both >= 2", s.PRR, s.RRR)
	}
	// A non-associated pair must not signal.
	ns := Evaluate(db, types.NewItemset(x), types.NewItemset(bad))
	// x alone co-occurs with bad only inside the x+y reports: 20 of
	// 220 x-reports vs 0 elsewhere — actually still disproportionate.
	// The meaningful check: combination scores higher than single.
	if ns.PRR >= s.PRR {
		t.Errorf("single-drug PRR %v >= combination PRR %v", ns.PRR, s.PRR)
	}
}

func TestTableNAndDegenerate(t *testing.T) {
	if (Table{}).N() != 0 {
		t.Error("empty N")
	}
	z := Table{}
	// All-zero table: measures must not panic; values are finite or Inf.
	_ = z.PRR()
	_ = z.ROR()
	_ = z.RRR()
	_ = z.ChiSquare()
}
