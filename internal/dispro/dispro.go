// Package dispro implements the disproportionality statistics that
// the paper cites as the pharmacovigilance state of the art it
// improves on (Section 1.2 / Related Work): measures built from the
// 2×2 contingency table of reports over a drug set D and reaction set
// R. They serve as the signal-detection baselines in experiment A4.
//
// The contingency table over N reports:
//
//	           reaction R    no reaction
//	drugs D         a             b
//	no drugs D      c             d
//
// with a+b+c+d = N. All counts are computed exactly from posting
// lists; "drugs D" means every drug in D appears in the report.
package dispro

import (
	"math"

	"maras/internal/txdb"
	"maras/internal/types"
)

// Table is the 2×2 contingency table of a drug set vs a reaction set.
type Table struct {
	A int // reports with all drugs and all reactions
	B int // reports with all drugs, not all reactions
	C int // reports without all drugs, with all reactions
	D int // reports with neither
}

// N returns the total report count.
func (t Table) N() int { return t.A + t.B + t.C + t.D }

// Contingency builds the table for (drugs, reactions) against db.
func Contingency(db *txdb.DB, drugs, reactions types.Itemset) Table {
	a := db.Support(drugs.Union(reactions))
	drugSup := db.Support(drugs)
	reacSup := db.Support(reactions)
	n := db.Len()
	return Table{
		A: a,
		B: drugSup - a,
		C: reacSup - a,
		D: n - drugSup - reacSup + a,
	}
}

// haldane applies the Haldane–Anscombe 0.5 correction when any cell
// is zero, the standard continuity fix for ratio measures.
func (t Table) haldane() (a, b, c, d float64) {
	a, b, c, d = float64(t.A), float64(t.B), float64(t.C), float64(t.D)
	if t.A == 0 || t.B == 0 || t.C == 0 || t.D == 0 {
		a += 0.5
		b += 0.5
		c += 0.5
		d += 0.5
	}
	return a, b, c, d
}

// PRR returns the Proportional Reporting Ratio:
// [a/(a+b)] / [c/(c+d)].
func (t Table) PRR() float64 {
	a, b, c, d := t.haldane()
	num := a / (a + b)
	den := c / (c + d)
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// ROR returns the Reporting Odds Ratio: (a·d)/(b·c).
func (t Table) ROR() float64 {
	a, b, c, d := t.haldane()
	if b*c == 0 {
		return math.Inf(1)
	}
	return (a * d) / (b * c)
}

// RRR returns the Relative Reporting Ratio: a·N / ((a+b)(a+c)) — the
// observed-to-expected count ratio under independence, the measure
// Harpaz et al. pair with multi-item rule mining.
func (t Table) RRR() float64 {
	a, b, c, _ := t.haldane()
	n := a + b + c + float64(t.D)
	exp := (a + b) * (a + c) / n
	if exp == 0 {
		return math.Inf(1)
	}
	return a / exp
}

// ChiSquare returns the Yates-corrected chi-square statistic of the
// table, the significance screen conventionally combined with PRR
// (signal: PRR ≥ 2, chi² ≥ 4, a ≥ 3).
func (t Table) ChiSquare() float64 {
	a, b, c, d := float64(t.A), float64(t.B), float64(t.C), float64(t.D)
	n := a + b + c + d
	if n == 0 {
		return 0
	}
	det := a*d - b*c
	adj := math.Abs(det) - n/2
	if adj < 0 {
		adj = 0
	}
	den := (a + b) * (c + d) * (a + c) * (b + d)
	if den == 0 {
		return 0
	}
	return n * adj * adj / den
}

// Signal reports whether the table meets the conventional
// Evans/MHRA signal criteria: PRR ≥ 2, chi² ≥ 4 and at least 3
// co-occurrence reports.
func (t Table) Signal() bool {
	return t.A >= 3 && t.PRR() >= 2 && t.ChiSquare() >= 4
}

// Score evaluates all measures at once for reporting.
type Score struct {
	Table     Table
	PRR       float64
	ROR       float64
	RRR       float64
	ChiSquare float64
	Signal    bool
}

// Evaluate computes every disproportionality measure for (drugs,
// reactions) against db.
func Evaluate(db *txdb.DB, drugs, reactions types.Itemset) Score {
	t := Contingency(db, drugs, reactions)
	return Score{
		Table:     t,
		PRR:       t.PRR(),
		ROR:       t.ROR(),
		RRR:       t.RRR(),
		ChiSquare: t.ChiSquare(),
		Signal:    t.Signal(),
	}
}
