package rank

import (
	"math/rand"
	"testing"

	"maras/internal/mcac"
)

// Invariant: with the confidence measure, the exclusiveness score is
// bounded above by the target confidence (context means are
// non-negative and decay weights are ≤ 1) and below by −1.
func TestExclusivenessBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(3)
		p := rng.Float64()
		levels := make([][]float64, n-1)
		for i := range levels {
			k := 1 + rng.Intn(3)
			vals := make([]float64, k)
			for j := range vals {
				vals[j] = rng.Float64()
			}
			levels[i] = vals
		}
		c := makeCluster(n, p, levels...)
		theta := rng.Float64()
		score := Exclusiveness(&c, Options{Theta: theta})
		if score > p+1e-9 {
			t.Fatalf("score %v exceeds target confidence %v", score, p)
		}
		if score < -1-1e-9 {
			t.Fatalf("score %v below -1", score)
		}
	}
}

// Invariant: raising any contextual confidence (θ=0) never raises the
// score — the measure is monotone decreasing in its context.
func TestExclusivenessMonotoneInContext(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		p := 0.5 + 0.5*rng.Float64()
		a := rng.Float64() * 0.5
		b := rng.Float64() * 0.5
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cLow := makeCluster(2, p, []float64{lo, lo})
		cHigh := makeCluster(2, p, []float64{hi, hi})
		sLow := Exclusiveness(&cLow, Options{Theta: 0})
		sHigh := Exclusiveness(&cHigh, Options{Theta: 0})
		if sHigh > sLow+1e-12 {
			t.Fatalf("raising context %v->%v raised score %v->%v", lo, hi, sLow, sHigh)
		}
	}
}

// Invariant: Improvement never exceeds the plain context-average
// exclusiveness with a uniform context (min ≤ mean).
func TestImprovementLEFlatWithUniformContext(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		p := rng.Float64()
		n := 2 + rng.Intn(3)
		vals := make([]float64, (1<<uint(n))-2)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		// Build a single flat level (cardinality structure irrelevant
		// to this invariant when compared against the flat formula).
		c := makeCluster(n, p, vals)
		imp := Improvement(&c)
		flat := ExclusivenessFlat(&c, Options{Theta: 0})
		if imp > flat+1e-12 {
			t.Fatalf("improvement %v > flat exclusiveness %v (min > mean?)", imp, flat)
		}
	}
}

// Invariant: Rank output is a permutation of its input clusters, for
// every method.
func TestRankIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 25
	clusters := make([]mcac.Cluster, n)
	for i := range clusters {
		ctx := []float64{rng.Float64(), rng.Float64()}
		clusters[i] = makeCluster(2, rng.Float64(), ctx)
		clusters[i].Target.Support = 100 + i // unique tag
	}
	for _, m := range []Method{
		ByConfidence, ByLift, ByExclusivenessConf, ByExclusivenessLift, ByImprovement,
	} {
		ranked := Rank(clusters, m, Options{Theta: 0.5})
		if len(ranked) != n {
			t.Fatalf("%v: ranked %d of %d", m, len(ranked), n)
		}
		seen := map[int]bool{}
		for _, r := range ranked {
			tag := r.Cluster.Target.Support
			if seen[tag] {
				t.Fatalf("%v: cluster %d appears twice", m, tag)
			}
			seen[tag] = true
		}
	}
}
