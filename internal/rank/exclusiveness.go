// Package rank scores and orders MCAC clusters by how exclusively the
// observed ADRs belong to the *full* drug combination rather than to
// any of its sub-combinations — the paper's interestingness notion for
// drug-drug-interaction signals (Section 3.6).
//
// Three scoring formulas from the paper are implemented:
//
//	Formula 3.3  — plain context-average:      p − mean(v)
//	Formula 3.4  — CV-penalized:               (p − mean(v))·(1 − θ·Cv(v))
//	Formula 3.5  — level-wise, decayed (full): (1/|V|) Σ_k (p − v̄_k)·f_d(k)·(1 − θ·Cv(v_k))
//
// plus two baselines: Bayardo's improvement (Formula 3.2) and ranking
// directly by a rule's raw confidence or lift.
package rank

import (
	"fmt"
	"math"
	"sort"

	"maras/internal/assoc"
	"maras/internal/mcac"
)

// Decay weights contextual levels by cardinality k for an n-drug
// target (Formula 3.5's f_d). Weights must be positive for k in
// [1, n−1].
type Decay func(k, n int) float64

// LinearDecay is the paper's choice: weight 1 − (k−1)/n, so
// single-drug context matters most and weight shrinks as the
// contextual antecedent approaches the full combination.
func LinearDecay(k, n int) float64 { return 1 - float64(k-1)/float64(n) }

// NoDecay weighs every level equally (ablation A2).
func NoDecay(k, n int) float64 { return 1 }

// ExpDecay halves the weight per extra contextual drug (ablation A2).
func ExpDecay(k, n int) float64 { return math.Pow(0.5, float64(k-1)) }

// Options configures the exclusiveness scorer.
type Options struct {
	// Measure selects confidence (paper default) or lift as the
	// strength measure p and v — "the confidence in this computation
	// could be replaced by other reasonable measures" (Section 3.6).
	// Lift values are used raw: the score then ranks by the lift
	// *contrast* between the combination and its sub-combinations,
	// which favours rules with rarer consequents exactly as the
	// paper observes of its lift variant.
	Measure assoc.Measure
	// Theta is θ ∈ [0,1], the coefficient-of-variation penalty
	// weight of Formula 3.4/3.5. Values are clamped to [0,1].
	Theta float64
	// Decay is f_d; nil means LinearDecay.
	Decay Decay
}

func (o Options) normalized() Options {
	if o.Theta < 0 {
		o.Theta = 0
	} else if o.Theta > 1 {
		o.Theta = 1
	}
	if o.Decay == nil {
		o.Decay = LinearDecay
	}
	return o
}

// value maps a rule to the scorer's strength measure: confidence in
// [0,1], or raw lift.
func (o Options) value(r *assoc.Rule) float64 {
	return o.Measure.Value(r)
}

// Exclusiveness computes Formula 3.5 for the cluster: the mean over
// contextual levels k of (p − v̄_k), weighted by the decay and
// penalized by each level's coefficient of variation. Clusters with
// no context (single-drug targets) score 0.
func Exclusiveness(c *mcac.Cluster, opts Options) float64 {
	opts = opts.normalized()
	if len(c.Levels) == 0 {
		return 0
	}
	p := opts.value(&c.Target)
	n := c.DrugCount()
	sum := 0.0
	levels := 0
	for _, l := range c.Levels {
		if len(l.Rules) == 0 {
			continue
		}
		vals := make([]float64, len(l.Rules))
		for i := range l.Rules {
			vals[i] = opts.value(&l.Rules[i])
		}
		mean, cv := meanCV(vals)
		sum += (p - mean) * opts.Decay(l.Cardinality, n) * (1 - opts.Theta*cv)
		levels++
	}
	if levels == 0 {
		return 0
	}
	return sum / float64(levels)
}

// ExclusivenessFlat computes Formula 3.3 (θ=0) or Formula 3.4 (θ>0):
// the context is treated as one flat vector of values, ignoring level
// structure and decay. Kept for the formula-variant ablation.
func ExclusivenessFlat(c *mcac.Cluster, opts Options) float64 {
	opts = opts.normalized()
	if c.ContextSize() == 0 {
		return 0
	}
	p := opts.value(&c.Target)
	var vals []float64
	for _, l := range c.Levels {
		for i := range l.Rules {
			vals = append(vals, opts.value(&l.Rules[i]))
		}
	}
	mean, cv := meanCV(vals)
	return (p - mean) * (1 - opts.Theta*cv)
}

// Improvement computes Bayardo's improvement (Formula 3.2): the
// minimum over all proper sub-rules of conf(A⇒B) − conf(As⇒B).
// Negative improvement means some sub-rule predicts the ADRs at least
// as well, i.e. the combination signal is dominated.
func Improvement(c *mcac.Cluster) float64 {
	if c.ContextSize() == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, l := range c.Levels {
		for i := range l.Rules {
			if d := c.Target.Confidence - l.Rules[i].Confidence; d < min {
				min = d
			}
		}
	}
	return min
}

// meanCV returns the mean and the coefficient of variation
// (population σ / mean) of vals. A zero mean yields Cv 0: with all
// contextual strengths at zero there is no spread to penalize.
func meanCV(vals []float64) (mean, cv float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(vals)))
	cv = sigma / mean
	if cv < 0 {
		cv = -cv
	}
	return mean, cv
}

// Method labels a cluster-ranking strategy for the Table 5.2 style
// comparison.
type Method uint8

const (
	// ByConfidence ranks by the target rule's raw confidence.
	ByConfidence Method = iota
	// ByLift ranks by the target rule's raw lift.
	ByLift
	// ByExclusivenessConf ranks by Formula 3.5 over confidence.
	ByExclusivenessConf
	// ByExclusivenessLift ranks by Formula 3.5 over lift.
	ByExclusivenessLift
	// ByImprovement ranks by Bayardo improvement (baseline A4).
	ByImprovement
)

// String names the method as the paper's Table 5.2 column headers do.
func (m Method) String() string {
	switch m {
	case ByConfidence:
		return "Confidence"
	case ByLift:
		return "Lift"
	case ByExclusivenessConf:
		return "Exclusiveness with Confidence"
	case ByExclusivenessLift:
		return "Exclusiveness with Lift"
	case ByImprovement:
		return "Improvement"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// Ranked pairs a cluster with its score under some method.
type Ranked struct {
	Cluster *mcac.Cluster
	Score   float64
}

// Rank scores every cluster under method m (θ and decay from opts
// apply to the exclusiveness methods) and returns them sorted by
// descending score with deterministic tie-breaks (higher support,
// then rule key).
func Rank(clusters []mcac.Cluster, m Method, opts Options) []Ranked {
	out := make([]Ranked, len(clusters))
	for i := range clusters {
		c := &clusters[i]
		var s float64
		switch m {
		case ByConfidence:
			s = c.Target.Confidence
		case ByLift:
			s = c.Target.Lift
		case ByExclusivenessConf:
			o := opts
			o.Measure = assoc.MeasureConfidence
			s = Exclusiveness(c, o)
		case ByExclusivenessLift:
			o := opts
			o.Measure = assoc.MeasureLift
			s = Exclusiveness(c, o)
		case ByImprovement:
			s = Improvement(c)
		}
		out[i] = Ranked{Cluster: c, Score: s}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Cluster.Target.Support != out[j].Cluster.Target.Support {
			return out[i].Cluster.Target.Support > out[j].Cluster.Target.Support
		}
		return out[i].Cluster.Target.Key() < out[j].Cluster.Target.Key()
	})
	return out
}
