package rank

import (
	"fmt"
	"math"
	"testing"

	"maras/internal/assoc"
	"maras/internal/mcac"
	"maras/internal/txdb"
	"maras/internal/types"
)

// makeCluster fabricates a cluster with the given target confidence
// and level confidence vectors (levels listed highest-cardinality
// first, as mcac.Build produces). Lift values are set equal to
// confidence so lift-based tests are predictable.
func makeCluster(n int, targetConf float64, levels ...[]float64) mcac.Cluster {
	ant := make(types.Itemset, n)
	for i := range ant {
		ant[i] = types.Item(i)
	}
	c := mcac.Cluster{
		Target: assoc.Rule{
			Antecedent: ant,
			Consequent: types.Itemset{types.Item(100)},
			Confidence: targetConf,
			Lift:       targetConf,
			Support:    10,
		},
	}
	card := n - 1
	for _, vals := range levels {
		l := mcac.Level{Cardinality: card}
		for j, v := range vals {
			sub := make(types.Itemset, card)
			for i := range sub {
				sub[i] = types.Item(i + j) // distinct-ish antecedents
			}
			l.Rules = append(l.Rules, assoc.Rule{
				Antecedent: sub,
				Consequent: c.Target.Consequent,
				Confidence: v,
				Lift:       v,
			})
		}
		c.Levels = append(c.Levels, l)
		card--
	}
	return c
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLinearDecay(t *testing.T) {
	// Paper: weight for level k of an n-drug rule is 1 − (k−1)/n.
	if !approx(LinearDecay(1, 3), 1.0) {
		t.Errorf("LinearDecay(1,3) = %v", LinearDecay(1, 3))
	}
	if !approx(LinearDecay(2, 3), 1.0-1.0/3.0) {
		t.Errorf("LinearDecay(2,3) = %v", LinearDecay(2, 3))
	}
	if LinearDecay(1, 4) <= LinearDecay(3, 4) {
		t.Error("decay should decrease with k")
	}
}

func TestOtherDecays(t *testing.T) {
	if !approx(NoDecay(3, 5), 1) {
		t.Error("NoDecay != 1")
	}
	if !approx(ExpDecay(1, 5), 1) || !approx(ExpDecay(3, 5), 0.25) {
		t.Error("ExpDecay wrong")
	}
}

func TestExclusivenessSimpleHandComputed(t *testing.T) {
	// n=2, one level (k=1) with confidences {0.2, 0.4}; target p=0.9.
	// Formula 3.5: (1/1) · (0.9 − 0.3) · f_d(1) · (1 − θ·Cv).
	// θ=0 ⇒ 0.6 · 1 · 1 = 0.6.
	c := makeCluster(2, 0.9, []float64{0.2, 0.4})
	got := Exclusiveness(&c, Options{Theta: 0})
	if !approx(got, 0.6) {
		t.Errorf("Exclusiveness = %v, want 0.6", got)
	}
}

func TestExclusivenessThetaPenalty(t *testing.T) {
	// Same cluster; mean=0.3, σ=0.1, Cv=1/3.
	// θ=1 ⇒ 0.6 · (1 − 1/3) = 0.4.
	c := makeCluster(2, 0.9, []float64{0.2, 0.4})
	got := Exclusiveness(&c, Options{Theta: 1})
	if !approx(got, 0.4) {
		t.Errorf("Exclusiveness(θ=1) = %v, want 0.4", got)
	}
	// Uniform context (no variation) is not penalized at any θ.
	u := makeCluster(2, 0.9, []float64{0.3, 0.3})
	if !approx(Exclusiveness(&u, Options{Theta: 1}), Exclusiveness(&u, Options{Theta: 0})) {
		t.Error("θ penalized a zero-variance context")
	}
}

func TestExclusivenessTwoLevelHandComputed(t *testing.T) {
	// n=3, levels: k=2 {0.5}, k=1 {0.1, 0.3}; p=0.8; θ=0, linear decay.
	// k=2 term: (0.8−0.5)·(1−1/3) = 0.3·(2/3) = 0.2
	// k=1 term: (0.8−0.2)·1       = 0.6
	// score = (0.2+0.6)/2 = 0.4
	c := makeCluster(3, 0.8, []float64{0.5}, []float64{0.1, 0.3})
	got := Exclusiveness(&c, Options{Theta: 0})
	if !approx(got, 0.4) {
		t.Errorf("Exclusiveness = %v, want 0.4", got)
	}
}

func TestExclusivenessNoContext(t *testing.T) {
	c := makeCluster(2, 0.9)
	if got := Exclusiveness(&c, Options{}); got != 0 {
		t.Errorf("no-context score = %v, want 0", got)
	}
}

func TestExclusivenessDominatedIsNegative(t *testing.T) {
	// A sub-rule explains the ADR better than the combination: the
	// cluster must score below an exclusive one, and below zero.
	dominated := makeCluster(2, 0.5, []float64{0.9, 0.8})
	exclusive := makeCluster(2, 0.9, []float64{0.05, 0.1})
	sd := Exclusiveness(&dominated, Options{})
	se := Exclusiveness(&exclusive, Options{})
	if sd >= 0 {
		t.Errorf("dominated cluster score = %v, want negative", sd)
	}
	if se <= sd {
		t.Errorf("exclusive (%v) should outrank dominated (%v)", se, sd)
	}
}

func TestExclusivenessFlatMatchesPaperFormula(t *testing.T) {
	// Formula 3.3: p − mean over the whole context, flat.
	c := makeCluster(3, 0.8, []float64{0.5}, []float64{0.1, 0.3})
	got := ExclusivenessFlat(&c, Options{Theta: 0})
	want := 0.8 - (0.5+0.1+0.3)/3
	if !approx(got, want) {
		t.Errorf("flat = %v, want %v", got, want)
	}
	// θ>0 penalizes the high-variance context (Formula 3.4).
	withTheta := ExclusivenessFlat(&c, Options{Theta: 1})
	if withTheta >= got {
		t.Errorf("θ penalty missing: %v >= %v", withTheta, got)
	}
}

func TestImprovement(t *testing.T) {
	// improvement = min over subrules of p − conf(sub).
	c := makeCluster(3, 0.8, []float64{0.5}, []float64{0.1, 0.3})
	if got := Improvement(&c); !approx(got, 0.8-0.5) {
		t.Errorf("Improvement = %v, want 0.3", got)
	}
	neg := makeCluster(2, 0.4, []float64{0.7})
	if got := Improvement(&neg); got >= 0 {
		t.Errorf("dominated improvement = %v, want negative", got)
	}
	empty := makeCluster(2, 0.9)
	if got := Improvement(&empty); got != 0 {
		t.Errorf("no-context improvement = %v", got)
	}
}

func TestThetaClamping(t *testing.T) {
	c := makeCluster(2, 0.9, []float64{0.2, 0.4})
	if !approx(Exclusiveness(&c, Options{Theta: -5}), Exclusiveness(&c, Options{Theta: 0})) {
		t.Error("negative θ not clamped")
	}
	if !approx(Exclusiveness(&c, Options{Theta: 7}), Exclusiveness(&c, Options{Theta: 1})) {
		t.Error("θ>1 not clamped")
	}
}

func TestLiftMeasureContrast(t *testing.T) {
	// With lift selected, the score is the raw lift contrast: a rule
	// whose combination lift towers over its sub-rule lifts scores
	// higher than one whose sub-rules share the lift.
	exclusive := makeCluster(2, 0.9, []float64{0.0, 0.0})
	exclusive.Target.Lift = 50
	dominated := makeCluster(2, 0.9, []float64{0.0, 0.0})
	dominated.Target.Lift = 50
	for i := range dominated.Levels[0].Rules {
		dominated.Levels[0].Rules[i].Lift = 48
	}
	se := Exclusiveness(&exclusive, Options{Measure: assoc.MeasureLift})
	sd := Exclusiveness(&dominated, Options{Measure: assoc.MeasureLift})
	if se <= sd {
		t.Errorf("lift contrast: exclusive %v <= dominated %v", se, sd)
	}
	if se <= 0 {
		t.Errorf("exclusive lift score = %v, want positive", se)
	}
}

func TestMeanCV(t *testing.T) {
	mean, cv := meanCV([]float64{2, 4})
	if !approx(mean, 3) || !approx(cv, 1.0/3.0) {
		t.Errorf("meanCV = %v, %v", mean, cv)
	}
	mean, cv = meanCV(nil)
	if mean != 0 || cv != 0 {
		t.Error("empty meanCV should be 0,0")
	}
	mean, cv = meanCV([]float64{0, 0})
	if mean != 0 || cv != 0 {
		t.Error("zero-mean meanCV should be 0,0")
	}
}

func TestRankOrdersByScore(t *testing.T) {
	clusters := []mcac.Cluster{
		makeCluster(2, 0.3, []float64{0.6, 0.7}), // dominated
		makeCluster(2, 0.95, []float64{0.05, 0.1}),
		makeCluster(2, 0.6, []float64{0.3, 0.2}),
	}
	ranked := Rank(clusters, ByExclusivenessConf, Options{})
	if len(ranked) != 3 {
		t.Fatalf("ranked %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("not sorted desc at %d", i)
		}
	}
	if !approx(ranked[0].Cluster.Target.Confidence, 0.95) {
		t.Errorf("top cluster should be the exclusive one, got conf %v", ranked[0].Cluster.Target.Confidence)
	}
}

func TestRankMethods(t *testing.T) {
	clusters := []mcac.Cluster{
		makeCluster(2, 0.5, []float64{0.1, 0.1}),
		makeCluster(2, 0.9, []float64{0.85, 0.85}),
	}
	byConf := Rank(clusters, ByConfidence, Options{})
	if !approx(byConf[0].Cluster.Target.Confidence, 0.9) {
		t.Error("ByConfidence should put 0.9 first")
	}
	byExcl := Rank(clusters, ByExclusivenessConf, Options{})
	if !approx(byExcl[0].Cluster.Target.Confidence, 0.5) {
		t.Error("ByExclusiveness should put exclusive 0.5 first")
	}
	byImp := Rank(clusters, ByImprovement, Options{})
	if !approx(byImp[0].Cluster.Target.Confidence, 0.5) {
		t.Error("ByImprovement should put exclusive 0.5 first")
	}
	byLift := Rank(clusters, ByLift, Options{})
	if !approx(byLift[0].Cluster.Target.Lift, 0.9) {
		t.Error("ByLift should put higher lift first")
	}
}

func TestMethodNames(t *testing.T) {
	names := map[Method]string{
		ByConfidence:        "Confidence",
		ByLift:              "Lift",
		ByExclusivenessConf: "Exclusiveness with Confidence",
		ByExclusivenessLift: "Exclusiveness with Lift",
		ByImprovement:       "Improvement",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

// End-to-end property on a real DB: a planted interaction whose drugs
// rarely cause the ADR alone must outrank a combination dominated by
// one drug.
func TestExclusivenessEndToEnd(t *testing.T) {
	dict := types.NewDictionary()
	d := func(s string) types.Item { return dict.Intern(s, types.DomainDrug) }
	a := func(s string) types.Item { return dict.Intern(s, types.DomainReaction) }
	x, y := d("X"), d("Y")
	u, v := d("U"), d("V")
	bad := a("Bad")
	meh := a("Meh")

	db := txdb.New(dict)
	id := 0
	add := func(items ...types.Item) {
		id++
		db.Add(fmt.Sprintf("r%d", id), types.NewItemset(items...))
	}
	// True interaction: X+Y -> Bad; X or Y alone -> almost never Bad.
	for i := 0; i < 10; i++ {
		add(x, y, bad)
	}
	for i := 0; i < 20; i++ {
		add(x, meh)
		add(y, meh)
	}
	// Dominated pair: U alone already causes Bad.
	for i := 0; i < 10; i++ {
		add(u, v, bad)
		add(u, bad)
	}
	db.Freeze()

	tXY := assoc.Evaluate(db, types.NewItemset(x, y), types.NewItemset(bad))
	tUV := assoc.Evaluate(db, types.NewItemset(u, v), types.NewItemset(bad))
	cXY := mcac.Build(db, tXY)
	cUV := mcac.Build(db, tUV)

	sXY := Exclusiveness(&cXY, Options{})
	sUV := Exclusiveness(&cUV, Options{})
	if sXY <= sUV {
		t.Errorf("true interaction (%v) should outrank dominated pair (%v)", sXY, sUV)
	}
}
