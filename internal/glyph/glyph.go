package glyph

import (
	"fmt"
	"math"
	"strings"

	"maras/internal/assoc"
	"maras/internal/mcac"
	"maras/internal/types"
)

// Options tunes glyph rendering.
type Options struct {
	// Size is the square canvas edge in pixels (default 160).
	Size float64
	// Labels adds per-sector text labels (the zoom view).
	Labels bool
	// Dict translates item IDs for tooltips and labels; nil renders
	// raw IDs.
	Dict *types.Dictionary
}

func (o Options) normalized() Options {
	if o.Size <= 0 {
		o.Size = 160
	}
	return o
}

// Contextual renders the cluster as a Contextual Glyph (Fig 4.1):
// inner circle = target confidence, annular sectors = contextual
// rules, clockwise from 12 o'clock, cardinality bands dark→light,
// within-band ordering by descending confidence (mcac.Cluster already
// stores that order).
func Contextual(c *mcac.Cluster, opts Options) string {
	opts = opts.normalized()
	size := opts.Size
	s := newSVG(size, size)
	cx, cy := size/2, size/2
	maxR := size*0.5 - 2
	if opts.Labels {
		maxR = size*0.5 - size*0.14 // leave a ring for labels
	}
	minInner := maxR * 0.12

	// Inner circle: radius ∝ target confidence.
	innerR := minInner + (maxR*0.45-minInner)*clamp01(c.Target.Confidence)
	ringW := maxR - innerR

	n := c.ContextSize()
	rules := c.ContextRules()
	if n > 0 {
		arc := 2 * math.Pi / float64(n)
		maxCard := c.DrugCount() - 1
		for i, r := range rules {
			a0 := float64(i) * arc
			a1 := a0 + arc
			// Sector extends outward; the gap between its arc and the
			// inner circle encodes the rule's confidence: a confident
			// contextual rule reaches far from the center.
			outer := innerR + ringW*clamp01(r.Confidence)
			if outer < innerR+1.5 {
				outer = innerR + 1.5 // hairline so the sector stays visible
			}
			title := sectorTitle(&r, opts.Dict)
			s.path(sectorPath(cx, cy, innerR, outer, a0+0.01, a1-0.01),
				levelColor(len(r.Antecedent), maxCard), "white", 0.5, title)
			if opts.Labels {
				mid := (a0 + a1) / 2
				lx := cx + (maxR+size*0.07)*math.Sin(mid)
				ly := cy - (maxR+size*0.07)*math.Cos(mid)
				s.text(lx, ly, size*0.035, "middle", shortLabel(&r, opts.Dict))
			}
		}
	}
	s.circle(cx, cy, innerR, targetColor)
	if opts.Labels {
		s.text(cx, cy+size*0.012, size*0.04, "middle", fmt.Sprintf("%.2f", c.Target.Confidence))
	}
	return s.done()
}

// BarChart renders the cluster as the Fig 5.3 bar chart: the target
// rule's confidence first, then every contextual rule's confidence,
// grouped by cardinality band.
func BarChart(c *mcac.Cluster, opts Options) string {
	opts = opts.normalized()
	rules := c.ContextRules()
	n := 1 + len(rules)
	w := opts.Size
	h := opts.Size * 0.75
	s := newSVG(w, h)

	margin := w * 0.06
	plotW := w - 2*margin
	plotH := h - 2*margin
	barW := plotW / float64(n) * 0.8
	gap := plotW / float64(n) * 0.2

	// Axis.
	s.line(margin, h-margin, w-margin, h-margin, "#444", 1)
	s.line(margin, margin, margin, h-margin, "#444", 1)

	draw := func(i int, conf float64, fill, title string) {
		x := margin + float64(i)*(barW+gap) + gap/2
		bh := plotH * clamp01(conf)
		s.rect(x, h-margin-bh, barW, bh, fill, title)
	}
	draw(0, c.Target.Confidence, targetColor,
		fmt.Sprintf("target conf=%.3f", c.Target.Confidence))
	maxCard := c.DrugCount() - 1
	for i, r := range rules {
		draw(i+1, r.Confidence, levelColor(len(r.Antecedent), maxCard),
			sectorTitle(&r, opts.Dict))
	}
	return s.done()
}

// PanoramaEntry is one cell of the panoramagram.
type PanoramaEntry struct {
	Cluster *mcac.Cluster
	Score   float64
	Caption string
}

// Panorama lays out glyphs on a grid ordered as given (the caller
// passes rank order), each captioned — Fig 4.2's overview of the
// discovered associations across ranking scores.
func Panorama(entries []PanoramaEntry, perRow int, opts Options) string {
	opts = opts.normalized()
	if perRow <= 0 {
		perRow = 5
	}
	cell := opts.Size
	capH := cell * 0.18
	rows := (len(entries) + perRow - 1) / perRow
	w := float64(perRow) * cell
	h := float64(rows) * (cell + capH)
	s := newSVG(w, h)
	for i, e := range entries {
		col := i % perRow
		row := i / perRow
		x := float64(col) * cell
		y := float64(row) * (cell + capH)
		s.group(fmt.Sprintf("translate(%.1f,%.1f)", x, y))
		inner := Contextual(e.Cluster, opts)
		s.b.WriteString(stripSVGEnvelope(inner))
		s.groupEnd()
		caption := e.Caption
		if caption == "" {
			caption = fmt.Sprintf("score %.3f", e.Score)
		}
		s.text(x+cell/2, y+cell+capH*0.6, cell*0.07, "middle", caption)
	}
	return s.done()
}

// Zoom renders the labeled zoom-in view (Fig 4.3) of a single cluster.
func Zoom(c *mcac.Cluster, dict *types.Dictionary) string {
	return Contextual(c, Options{Size: 420, Labels: true, Dict: dict})
}

// stripSVGEnvelope removes the outer <svg ...> and </svg> tags so a
// rendered glyph can be embedded in a group.
func stripSVGEnvelope(doc string) string {
	start := strings.Index(doc, ">")
	end := strings.LastIndex(doc, "</svg>")
	if start < 0 || end < 0 || end <= start {
		return doc
	}
	return doc[start+1 : end]
}

func sectorTitle(r *assoc.Rule, dict *types.Dictionary) string {
	return fmt.Sprintf("%s => %s (conf=%.3f)", nameList(r.Antecedent, dict), nameList(r.Consequent, dict), r.Confidence)
}

func shortLabel(r *assoc.Rule, dict *types.Dictionary) string {
	return nameList(r.Antecedent, dict)
}

func nameList(set types.Itemset, dict *types.Dictionary) string {
	if dict == nil {
		return set.String()
	}
	return strings.Join(dict.SortedNames(set), "+")
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
