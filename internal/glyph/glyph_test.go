package glyph

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"maras/internal/assoc"
	"maras/internal/mcac"
	"maras/internal/txdb"
	"maras/internal/types"
)

func testCluster(t testing.TB) (*mcac.Cluster, *types.Dictionary) {
	t.Helper()
	dict := types.NewDictionary()
	x := dict.Intern("XOLAIR", types.DomainDrug)
	y := dict.Intern("SINGULAIR", types.DomainDrug)
	z := dict.Intern("PREDNISONE", types.DomainDrug)
	a := dict.Intern("Asthma", types.DomainReaction)
	o := dict.Intern("Cough", types.DomainReaction)
	db := txdb.New(dict)
	for i := 0; i < 6; i++ {
		db.Add(fmt.Sprintf("t%d", i), types.NewItemset(x, y, z, a))
	}
	for i := 0; i < 10; i++ {
		db.Add(fmt.Sprintf("x%d", i), types.NewItemset(x, o))
		db.Add(fmt.Sprintf("y%d", i), types.NewItemset(y, o))
		db.Add(fmt.Sprintf("z%d", i), types.NewItemset(z, o))
	}
	db.Freeze()
	target := assoc.Evaluate(db, types.NewItemset(x, y, z), types.NewItemset(a))
	c := mcac.Build(db, target)
	return &c, dict
}

func TestContextualWellFormed(t *testing.T) {
	c, dict := testCluster(t)
	doc := Contextual(c, Options{Dict: dict})
	if !strings.HasPrefix(doc, "<svg") || !strings.HasSuffix(strings.TrimSpace(doc), "</svg>") {
		t.Fatal("not an svg document")
	}
	// One sector path per contextual rule.
	if got := strings.Count(doc, "<path"); got != c.ContextSize() {
		t.Errorf("%d paths, want %d", got, c.ContextSize())
	}
	// Exactly one inner circle.
	if got := strings.Count(doc, "<circle"); got != 1 {
		t.Errorf("%d circles, want 1", got)
	}
	// Tooltips carry drug names.
	if !strings.Contains(doc, "XOLAIR") {
		t.Error("tooltips missing drug names")
	}
	// Balanced tags.
	if strings.Count(doc, "<g ") != strings.Count(doc, "</g>") {
		t.Error("unbalanced groups")
	}
}

func TestContextualInnerRadiusEncodesConfidence(t *testing.T) {
	c, _ := testCluster(t)
	low := *c
	low.Target.Confidence = 0.1
	high := *c
	high.Target.Confidence = 0.95
	rLow := innerRadiusOf(t, Contextual(&low, Options{}))
	rHigh := innerRadiusOf(t, Contextual(&high, Options{}))
	if rHigh <= rLow {
		t.Errorf("inner radius should grow with confidence: %.2f vs %.2f", rLow, rHigh)
	}
}

func innerRadiusOf(t *testing.T, doc string) float64 {
	t.Helper()
	i := strings.Index(doc, "<circle")
	if i < 0 {
		t.Fatal("no circle")
	}
	var cx, cy, r float64
	if _, err := fmt.Sscanf(doc[i:], `<circle cx="%f" cy="%f" r="%f"`, &cx, &cy, &r); err != nil {
		t.Fatalf("parse circle: %v", err)
	}
	return r
}

func TestContextualLabels(t *testing.T) {
	c, dict := testCluster(t)
	doc := Contextual(c, Options{Labels: true, Dict: dict, Size: 400})
	if strings.Count(doc, "<text") < c.ContextSize() {
		t.Errorf("labeled glyph has %d texts, want >= %d", strings.Count(doc, "<text"), c.ContextSize())
	}
}

func TestZoom(t *testing.T) {
	c, dict := testCluster(t)
	doc := Zoom(c, dict)
	if !strings.Contains(doc, `width="420"`) {
		t.Error("zoom should render at 420px")
	}
	if !strings.Contains(doc, "SINGULAIR") {
		t.Error("zoom labels missing")
	}
}

func TestBarChart(t *testing.T) {
	c, dict := testCluster(t)
	doc := BarChart(c, Options{Dict: dict})
	// One bar per rule incl. target.
	if got := strings.Count(doc, "<rect"); got != 1+c.ContextSize() {
		t.Errorf("%d bars, want %d", got, 1+c.ContextSize())
	}
	if !strings.Contains(doc, "target conf=") {
		t.Error("target bar tooltip missing")
	}
}

func TestPanorama(t *testing.T) {
	c, dict := testCluster(t)
	entries := []PanoramaEntry{
		{Cluster: c, Score: 0.9},
		{Cluster: c, Score: 0.5, Caption: "second"},
		{Cluster: c, Score: 0.1},
	}
	doc := Panorama(entries, 2, Options{Dict: dict})
	if strings.Count(doc, "<svg") != 1 {
		t.Error("nested svg envelopes leaked into panorama")
	}
	if strings.Count(doc, "<g ") != 3 {
		t.Errorf("%d groups, want 3", strings.Count(doc, "<g "))
	}
	if !strings.Contains(doc, "second") || !strings.Contains(doc, "score 0.900") {
		t.Error("captions missing")
	}
}

func TestSectorPathGeometry(t *testing.T) {
	// A quarter sector from 12 to 3 o'clock between radii 10 and 20,
	// centered at origin: starts at (0,-20), arcs to (20,0).
	d := sectorPath(0, 0, 10, 20, 0, math.Pi/2)
	var x0, y0 float64
	if _, err := fmt.Sscanf(d, "M %f %f", &x0, &y0); err != nil {
		t.Fatalf("parse path: %v", err)
	}
	if math.Abs(x0-0) > 0.01 || math.Abs(y0+20) > 0.01 {
		t.Errorf("path start = (%.2f,%.2f), want (0,-20)", x0, y0)
	}
	if !strings.Contains(d, "Z") {
		t.Error("path not closed")
	}
	// Large-arc flag set for reflex sectors.
	dBig := sectorPath(0, 0, 10, 20, 0, 1.5*math.Pi)
	if !strings.Contains(dBig, " 1 1 ") {
		t.Error("large-arc flag missing on reflex sector")
	}
}

func TestLevelColorDarkens(t *testing.T) {
	c1 := levelColor(1, 3)
	c3 := levelColor(3, 3)
	if c1 == c3 {
		t.Error("cardinality bands must differ")
	}
	var l1, l3 int
	fmt.Sscanf(c1, "hsl(210, 55%%, %d%%)", &l1)
	fmt.Sscanf(c3, "hsl(210, 55%%, %d%%)", &l3)
	if l3 >= l1 {
		t.Errorf("more drugs should be darker: L%d vs L%d", l1, l3)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 wrong")
	}
}
