// Package glyph renders the paper's visual artifacts as
// dependency-free SVG: the Contextual Glyph (Fig 4.1), the zoomed
// glyph view (Fig 4.3), the panoramagram grid of glyphs (Fig 4.2) and
// the MCAC bar-chart alternative (Fig 5.3) that the user study
// compares against.
//
// Geometry follows Section 4: the inner circle's diameter encodes the
// target rule's confidence; each surrounding circular sector encodes
// one contextual rule, the distance from the sector's arc to the
// inner circle encoding that rule's confidence; sectors start at 12
// o'clock, ordered by antecedent cardinality (darker = more drugs),
// then by descending confidence within a cardinality band.
package glyph

import (
	"fmt"
	"math"
	"strings"
)

// svg accumulates SVG markup.
type svg struct {
	b strings.Builder
}

func newSVG(w, h float64) *svg {
	s := &svg{}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		w, h, w, h)
	s.b.WriteByte('\n')
	return s
}

func (s *svg) circle(cx, cy, r float64, fill string) {
	fmt.Fprintf(&s.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`, cx, cy, r, fill)
	s.b.WriteByte('\n')
}

func (s *svg) path(d, fill, stroke string, width float64, title string) {
	fmt.Fprintf(&s.b, `<path d="%s" fill="%s" stroke="%s" stroke-width="%.2f">`, d, fill, stroke, width)
	if title != "" {
		fmt.Fprintf(&s.b, `<title>%s</title>`, escape(title))
	}
	s.b.WriteString("</path>\n")
}

func (s *svg) rect(x, y, w, h float64, fill, title string) {
	fmt.Fprintf(&s.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s">`, x, y, w, h, fill)
	if title != "" {
		fmt.Fprintf(&s.b, `<title>%s</title>`, escape(title))
	}
	s.b.WriteString("</rect>\n")
}

func (s *svg) text(x, y float64, size float64, anchor, content string) {
	fmt.Fprintf(&s.b, `<text x="%.2f" y="%.2f" font-size="%.1f" font-family="sans-serif" text-anchor="%s">%s</text>`,
		x, y, size, anchor, escape(content))
	s.b.WriteByte('\n')
}

func (s *svg) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`,
		x1, y1, x2, y2, stroke, width)
	s.b.WriteByte('\n')
}

func (s *svg) group(transform string) { fmt.Fprintf(&s.b, `<g transform="%s">`+"\n", transform) }
func (s *svg) groupEnd()              { s.b.WriteString("</g>\n") }

func (s *svg) done() string {
	s.b.WriteString("</svg>\n")
	return s.b.String()
}

func escape(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(t)
}

// sectorPath returns the SVG path of an annular sector centered at
// (cx,cy) spanning [a0,a1) radians (0 = 12 o'clock, clockwise) between
// radii r0 < r1.
func sectorPath(cx, cy, r0, r1, a0, a1 float64) string {
	// Convert "clockwise from 12 o'clock" to standard math angles.
	toXY := func(r, a float64) (float64, float64) {
		return cx + r*math.Sin(a), cy - r*math.Cos(a)
	}
	x0o, y0o := toXY(r1, a0)
	x1o, y1o := toXY(r1, a1)
	x1i, y1i := toXY(r0, a1)
	x0i, y0i := toXY(r0, a0)
	large := 0
	if a1-a0 > math.Pi {
		large = 1
	}
	return fmt.Sprintf("M %.2f %.2f A %.2f %.2f 0 %d 1 %.2f %.2f L %.2f %.2f A %.2f %.2f 0 %d 0 %.2f %.2f Z",
		x0o, y0o, r1, r1, large, x1o, y1o,
		x1i, y1i, r0, r0, large, x0i, y0i)
}

// levelColor returns the fill for a contextual band: the more drugs in
// the contextual antecedent, the darker (Section 4: "the darker the
// larger").
func levelColor(cardinality, maxCardinality int) string {
	if maxCardinality < 1 {
		maxCardinality = 1
	}
	// Lightness from 78% (1 drug) down to 38% (max drugs).
	frac := float64(cardinality-1) / float64(maxCardinality)
	l := 78 - 40*frac
	return fmt.Sprintf("hsl(210, 55%%, %.0f%%)", l)
}

const targetColor = "hsl(14, 75%, 55%)" // inner circle (target rule)
