package glyph

import (
	"math/rand"
	"strings"
	"testing"

	"maras/internal/assoc"
	"maras/internal/mcac"
	"maras/internal/types"
)

// randomCluster fabricates a cluster with random confidences,
// including out-of-range values the renderer must clamp.
func randomCluster(rng *rand.Rand) mcac.Cluster {
	n := 2 + rng.Intn(3)
	ant := make(types.Itemset, n)
	for i := range ant {
		ant[i] = types.Item(i)
	}
	c := mcac.Cluster{Target: assoc.Rule{
		Antecedent: ant,
		Consequent: types.Itemset{types.Item(100)},
		Confidence: rng.Float64()*1.4 - 0.2, // may exceed [0,1]
		Lift:       rng.Float64() * 10,
		Support:    rng.Intn(50),
	}}
	for k := n - 1; k >= 1; k-- {
		level := mcac.Level{Cardinality: k}
		count := 1 + rng.Intn(4)
		for j := 0; j < count; j++ {
			sub := make(types.Itemset, k)
			for i := range sub {
				sub[i] = types.Item(i + j)
			}
			level.Rules = append(level.Rules, assoc.Rule{
				Antecedent: sub,
				Consequent: c.Target.Consequent,
				Confidence: rng.Float64()*1.4 - 0.2,
				Lift:       rng.Float64() * 10,
			})
		}
		c.Levels = append(c.Levels, level)
	}
	return c
}

// All renderers must emit structurally sound SVG for arbitrary
// cluster shapes: balanced tags, no NaN coordinates, and exactly one
// svg envelope.
func TestRenderersFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		c := randomCluster(rng)
		for name, doc := range map[string]string{
			"contextual": Contextual(&c, Options{}),
			"zoom":       Contextual(&c, Options{Size: 300, Labels: true}),
			"barchart":   BarChart(&c, Options{}),
		} {
			if strings.Count(doc, "<svg") != 1 || strings.Count(doc, "</svg>") != 1 {
				t.Fatalf("trial %d %s: unbalanced svg envelope", trial, name)
			}
			for _, bad := range []string{"NaN", "Inf", "--", `=""`} {
				if strings.Contains(doc, bad) {
					t.Fatalf("trial %d %s: contains %q", trial, name, bad)
				}
			}
		}
	}
}

func TestPanoramaFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		entries := make([]PanoramaEntry, n)
		for i := range entries {
			c := randomCluster(rng)
			entries[i] = PanoramaEntry{Cluster: &c, Score: rng.Float64()}
		}
		doc := Panorama(entries, 1+rng.Intn(5), Options{})
		if strings.Count(doc, "<svg") != 1 {
			t.Fatalf("trial %d: nested svg envelopes", trial)
		}
		if strings.Count(doc, "<g ") != n {
			t.Fatalf("trial %d: %d groups for %d entries", trial, strings.Count(doc, "<g "), n)
		}
	}
}
