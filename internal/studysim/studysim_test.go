package studysim

import (
	"math/rand"
	"testing"
)

func TestRunShape(t *testing.T) {
	res := Run(DefaultConfig(1))
	if len(res) != 6 { // 3 drug counts × 2 visuals
		t.Fatalf("got %d conditions, want 6", len(res))
	}
	seen := map[Condition]bool{}
	for _, r := range res {
		if seen[r.Condition] {
			t.Errorf("duplicate condition %+v", r.Condition)
		}
		seen[r.Condition] = true
		if r.Trials != 50 {
			t.Errorf("condition %+v has %d trials, want 50", r.Condition, r.Trials)
		}
		if r.Correct < 0 || r.Correct > r.Trials {
			t.Errorf("correct out of range: %+v", r)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(DefaultConfig(7))
	b := Run(DefaultConfig(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// The study's headline result: glyphs beat bar-charts at every
// interaction size (Fig 5.2).
func TestGlyphBeatsBarchart(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Participants = 400 // large N to squeeze out sampling noise
	res := Run(cfg)
	acc := map[Condition]float64{}
	for _, r := range res {
		acc[r.Condition] = r.Accuracy()
	}
	for _, drugs := range []int{2, 3, 4} {
		g := acc[Condition{Drugs: drugs, Visual: ContextualGlyph}]
		b := acc[Condition{Drugs: drugs, Visual: BarChart}]
		if g <= b {
			t.Errorf("%d drugs: glyph %.2f <= barchart %.2f", drugs, g, b)
		}
		if g < 0.5 {
			t.Errorf("%d drugs: glyph accuracy %.2f unrealistically low", drugs, g)
		}
	}
	// The gap should widen with more drugs (more bars to compare),
	// matching the paper's 4-drug result being the most lopsided.
	gap2 := acc[Condition{Drugs: 2, Visual: ContextualGlyph}] - acc[Condition{Drugs: 2, Visual: BarChart}]
	gap4 := acc[Condition{Drugs: 4, Visual: ContextualGlyph}] - acc[Condition{Drugs: 4, Visual: BarChart}]
	if gap4 <= gap2-0.05 {
		t.Errorf("gap should not shrink with more drugs: 2-drug gap %.2f, 4-drug gap %.2f", gap2, gap4)
	}
}

func TestMakeQuestionHasOneWinner(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig(5)
	for trial := 0; trial < 50; trial++ {
		st := makeQuestion(rng, cfg, 3, 4)
		if len(st) != 4 {
			t.Fatalf("choices = %d", len(st))
		}
		ci := correctIndex(st)
		// The winner should be clearly separated.
		for i, s := range st {
			if i == ci {
				continue
			}
			if s.Exclusiveness >= st[ci].Exclusiveness {
				t.Fatalf("trial %d: stimulus %d (%.3f) >= winner (%.3f)",
					trial, i, s.Exclusiveness, st[ci].Exclusiveness)
			}
		}
		if st[ci].Exclusiveness < 0.3 {
			t.Fatalf("winner exclusiveness %.3f too weak", st[ci].Exclusiveness)
		}
	}
}

func TestFabricateClusterShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, drugs := range []int{2, 3, 4} {
		c := fabricate(rng, drugs, 0.8, 0.1, 0.3)
		if c.DrugCount() != drugs {
			t.Errorf("DrugCount = %d", c.DrugCount())
		}
		if got, want := c.ContextSize(), (1<<uint(drugs))-2; got != want {
			t.Errorf("%d drugs: context %d, want %d", drugs, got, want)
		}
	}
}

func TestPerceiveBarsNoiseGrowsWithBars(t *testing.T) {
	cfg := DefaultConfig(0)
	rng := rand.New(rand.NewSource(2))
	// Variance of perceived score should be larger for 4-drug (15
	// bars) than 2-drug (3 bars) clusters.
	varOf := func(drugs int) float64 {
		c := fabricate(rng, drugs, 0.8, 0.1, 0.2)
		n := 300
		var sum, ss float64
		for i := 0; i < n; i++ {
			v := perceiveBars(rng, cfg, &c)
			sum += v
			ss += v * v
		}
		mean := sum / float64(n)
		return ss/float64(n) - mean*mean
	}
	if v2, v4 := varOf(2), varOf(4); v4 <= v2 {
		t.Errorf("bar-read variance should grow with bars: %g vs %g", v2, v4)
	}
}

func TestVisualString(t *testing.T) {
	if ContextualGlyph.String() == BarChart.String() {
		t.Error("visual names collide")
	}
}

func TestResultAccuracy(t *testing.T) {
	r := Result{Correct: 30, Trials: 50}
	if r.Accuracy() != 0.6 {
		t.Errorf("accuracy = %v", r.Accuracy())
	}
	if (Result{}).Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
}
