// Package studysim simulates the paper's user study (Section 5.4.1,
// Appendix A) with a noisy-observer perceptual model, replacing the
// 50 WPI students the original work recruited (offline substitution;
// see DESIGN.md). Each simulated participant answers the Appendix-A
// question battery — "pick the top-ranked (most interesting)
// interaction" among displayed MCACs of 2, 3 and 4 drugs — reading
// either Contextual Glyphs or bar-charts.
//
// The model encodes the study's actual hypothesis: a glyph integrates
// the target-vs-context contrast into a single visual quantity (inner
// circle size against sector reach), so the observer makes one noisy
// judgement per cluster; a bar-chart requires one noisy read per bar
// followed by mental aggregation, so judgement noise grows with the
// number of bars (2^n − 1 bars for an n-drug cluster) and attention
// decays across serial comparisons. Both observers judge the same
// underlying quantity — the cluster's exclusiveness — through their
// visual's noise channel.
package studysim

import (
	"math"
	"math/rand"

	"maras/internal/assoc"
	"maras/internal/mcac"
	"maras/internal/rank"
	"maras/internal/types"
)

// Visual selects the stimulus encoding.
type Visual uint8

const (
	// ContextualGlyph is the paper's proposed encoding.
	ContextualGlyph Visual = iota
	// BarChart is the baseline encoding.
	BarChart
)

// String names the visual.
func (v Visual) String() string {
	if v == ContextualGlyph {
		return "Contextual Glyph"
	}
	return "Barchart"
}

// Config parameterizes the simulated study.
type Config struct {
	Seed         int64
	Participants int // simulated users (paper: 50)
	// Choices is the number of clusters shown per question
	// (Appendix A shows panels of alternatives).
	Choices int

	// GlyphNoise is the σ of the single integrated read from a glyph.
	GlyphNoise float64
	// BarNoise is the σ of each individual bar read.
	BarNoise float64
	// BarAttentionDecay inflates bar noise per additional bar,
	// modeling serial-comparison fatigue.
	BarAttentionDecay float64
	// GapByDrugs sets, per interaction size, how far the correct
	// stimulus's exclusiveness sits above the distractors'. The
	// paper's Appendix-A batteries were not equally hard — the
	// 3-drug question was the toughest (57% correct with glyphs)
	// and the 4-drug one the easiest (86%) — so the battery
	// difficulty is a per-condition calibration input, not an
	// emergent quantity.
	GapByDrugs map[int]float64
}

// DefaultConfig mirrors the paper's study shape, with battery
// difficulty calibrated so glyph accuracy lands near the published
// 71/57/86% while bar-charts trail at every size.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:              seed,
		Participants:      50,
		Choices:           4,
		GlyphNoise:        0.085,
		BarNoise:          0.065,
		BarAttentionDecay: 0.22,
		GapByDrugs:        map[int]float64{2: 0.105, 3: 0.067, 4: 0.165},
	}
}

// Condition is one experimental cell: interaction size × visual.
type Condition struct {
	Drugs  int
	Visual Visual
}

// Result is the accuracy of one condition.
type Result struct {
	Condition Condition
	Correct   int
	Trials    int
}

// Accuracy returns the fraction of correct answers.
func (r Result) Accuracy() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Trials)
}

// Run executes the full battery: for each drug count in {2,3,4} and
// each visual, every participant answers one question (pick the
// top-exclusiveness cluster among Choices alternatives). Results come
// back keyed by condition, reproducible under Config.Seed.
func Run(cfg Config) []Result {
	if cfg.Participants <= 0 {
		cfg.Participants = 50
	}
	if cfg.Choices < 2 {
		cfg.Choices = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Result
	for _, drugs := range []int{2, 3, 4} {
		for _, vis := range []Visual{ContextualGlyph, BarChart} {
			res := Result{Condition: Condition{Drugs: drugs, Visual: vis}}
			for p := 0; p < cfg.Participants; p++ {
				stimuli := makeQuestion(rng, cfg, drugs, cfg.Choices)
				if answer(rng, cfg, stimuli, vis) == correctIndex(stimuli) {
					res.Correct++
				}
				res.Trials++
			}
			out = append(out, res)
		}
	}
	return out
}

// Stimulus is one displayed cluster.
type Stimulus struct {
	Cluster mcac.Cluster
	// Exclusiveness is the true score the participant is asked to
	// find the maximum of.
	Exclusiveness float64
}

// makeQuestion fabricates Choices clusters of the given drug count:
// one winner whose exclusiveness sits GapByDrugs above the
// distractors, mirroring the Appendix-A batteries where one group is
// top-ranked and the rest mediocre or dominated. Target scores are
// constructed exactly: with a uniform context at confidence c, the
// exclusiveness is (p − c)·F where F is the mean level decay, so
// (p, c) can be solved for any desired score.
func makeQuestion(rng *rand.Rand, cfg Config, drugs, choices int) []Stimulus {
	gap := 0.15
	if g, ok := cfg.GapByDrugs[drugs]; ok {
		gap = g
	}
	winner := rng.Intn(choices)
	winnerScore := 0.45 + 0.1*rng.Float64()
	out := make([]Stimulus, choices)
	for i := range out {
		score := winnerScore - gap - 0.05*rng.Float64()
		if i == winner {
			score = winnerScore
		}
		c := fabricateWithScore(rng, drugs, score)
		out[i] = Stimulus{
			Cluster:       c,
			Exclusiveness: rank.Exclusiveness(&c, rank.Options{}),
		}
	}
	return out
}

// meanDecay returns F(n) = mean over k=1..n-1 of LinearDecay(k, n).
func meanDecay(n int) float64 {
	sum := 0.0
	for k := 1; k < n; k++ {
		sum += rank.LinearDecay(k, n)
	}
	return sum / float64(n-1)
}

// fabricateWithScore builds an n-drug cluster whose exclusiveness
// (θ=0, linear decay) equals score, using a uniform context.
func fabricateWithScore(rng *rand.Rand, drugs int, score float64) mcac.Cluster {
	f := meanDecay(drugs)
	// Pick a context level c, then p = score/F + c, keeping p ≤ 1.
	c := 0.05 + 0.2*rng.Float64()
	p := score/f + c
	if p > 1 {
		c -= p - 1
		if c < 0 {
			c = 0
		}
		p = score/f + c
		if p > 1 {
			p = 1
		}
	}
	return fabricate(rng, drugs, p, c, c)
}

// fabricate builds a cluster with target confidence p and contextual
// confidences drawn uniformly from [lo, hi].
func fabricate(rng *rand.Rand, drugs int, p, lo, hi float64) mcac.Cluster {
	ant := make(types.Itemset, drugs)
	for i := range ant {
		ant[i] = types.Item(i)
	}
	c := mcac.Cluster{Target: assoc.Rule{
		Antecedent: ant,
		Consequent: types.Itemset{types.Item(100)},
		Confidence: clamp01(p),
		Lift:       p,
		Support:    20,
	}}
	for k := drugs - 1; k >= 1; k-- {
		level := mcac.Level{Cardinality: k}
		count := binom(drugs, k)
		for j := 0; j < count; j++ {
			conf := clamp01(lo + (hi-lo)*rng.Float64())
			sub := make(types.Itemset, k)
			for i := range sub {
				sub[i] = types.Item(i + j)
			}
			level.Rules = append(level.Rules, assoc.Rule{
				Antecedent: sub,
				Consequent: c.Target.Consequent,
				Confidence: conf,
				Lift:       conf,
			})
		}
		c.Levels = append(c.Levels, level)
	}
	return c
}

func correctIndex(stimuli []Stimulus) int {
	best, bestV := 0, math.Inf(-1)
	for i, s := range stimuli {
		if s.Exclusiveness > bestV {
			best, bestV = i, s.Exclusiveness
		}
	}
	return best
}

// answer simulates one participant choosing the most interesting
// cluster through the given visual's noise channel.
func answer(rng *rand.Rand, cfg Config, stimuli []Stimulus, vis Visual) int {
	best, bestV := 0, math.Inf(-1)
	for i, s := range stimuli {
		var perceived float64
		switch vis {
		case ContextualGlyph:
			// One integrated read: the glyph shows the contrast as a
			// single shape (big core, short sectors = interesting).
			perceived = s.Exclusiveness + rng.NormFloat64()*cfg.GlyphNoise
		case BarChart:
			perceived = perceiveBars(rng, cfg, &s.Cluster)
		}
		if perceived > bestV {
			best, bestV = i, perceived
		}
	}
	return best
}

// perceiveBars re-estimates the exclusiveness from per-bar noisy
// reads, with noise inflated by the serial position of each read.
func perceiveBars(rng *rand.Rand, cfg Config, c *mcac.Cluster) float64 {
	bars := 1 + c.ContextSize()
	inflate := 1 + cfg.BarAttentionDecay*float64(bars-1)
	sigma := cfg.BarNoise * inflate

	noisy := *c
	noisy.Target.Confidence = clamp01(c.Target.Confidence + rng.NormFloat64()*sigma)
	noisy.Levels = make([]mcac.Level, len(c.Levels))
	for i, l := range c.Levels {
		nl := mcac.Level{Cardinality: l.Cardinality, Rules: make([]assoc.Rule, len(l.Rules))}
		for j, r := range l.Rules {
			nr := r
			nr.Confidence = clamp01(r.Confidence + rng.NormFloat64()*sigma)
			nl.Rules[j] = nr
		}
		noisy.Levels[i] = nl
	}
	return rank.Exclusiveness(&noisy, rank.Options{})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func binom(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
