// Package apriori implements the classic Apriori frequent-itemset
// miner. It is the "traditional association rule mining algorithm"
// baseline the paper measures against (the Total Rules series of
// Fig 5.1, and the performance baseline for FP-Growth): level-wise
// candidate generation with the downward-closure prune, counted by
// database scan.
package apriori

import (
	"sort"

	"maras/internal/fpgrowth"
	"maras/internal/txdb"
	"maras/internal/types"
)

// Options mirrors fpgrowth.Options so harness code can run either
// miner interchangeably.
type Options struct {
	MinSupport int
	MaxLen     int
}

// Mine enumerates all frequent itemsets of db under opts using the
// level-wise Apriori algorithm. Results match fpgrowth.Mine exactly
// (the test suite enforces it); only the cost model differs.
func Mine(db *txdb.DB, opts Options) []fpgrowth.FrequentSet {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	var out []fpgrowth.FrequentSet

	// L1: frequent single items.
	freq := make(map[types.Item]int)
	for _, tx := range db.Transactions() {
		for _, it := range tx.Items {
			freq[it]++
		}
	}
	var level []types.Itemset
	for it, c := range freq {
		if c >= opts.MinSupport {
			level = append(level, types.Itemset{it})
			out = append(out, fpgrowth.FrequentSet{Items: types.Itemset{it}, Support: c})
		}
	}
	sortSets(level)

	k := 1
	for len(level) > 0 {
		k++
		if opts.MaxLen > 0 && k > opts.MaxLen {
			break
		}
		candidates := generate(level)
		if len(candidates) == 0 {
			break
		}
		counts := countCandidates(db, candidates, k)
		prevKeys := keySet(level)
		level = level[:0]
		for i, c := range candidates {
			if counts[i] < opts.MinSupport {
				continue
			}
			// Downward-closure check happens in generate via prevKeys;
			// generate already pruned, so survivors are frequent.
			_ = prevKeys
			level = append(level, c)
			out = append(out, fpgrowth.FrequentSet{Items: c, Support: counts[i]})
		}
		sortSets(level)
	}
	return out
}

// generate joins each pair of (k-1)-itemsets sharing a (k-2)-prefix,
// then prunes candidates having an infrequent (k-1)-subset.
func generate(level []types.Itemset) []types.Itemset {
	prev := keySet(level)
	var out []types.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			n := len(a)
			if !samePrefix(a, b, n-1) {
				break // level is sorted; once prefixes diverge, stop
			}
			var cand types.Itemset
			if a[n-1] < b[n-1] {
				cand = append(a.Clone(), b[n-1])
			} else {
				cand = append(b.Clone(), a[n-1])
			}
			if allSubsetsFrequent(cand, prev) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b types.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand types.Itemset, prev map[string]bool) bool {
	ok := true
	cand.SubsetsOfSize(len(cand)-1, func(sub types.Itemset) bool {
		if !prev[sub.Key()] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// countCandidates scans the database once, counting each candidate's
// support. Candidates are indexed by their first item to avoid testing
// every candidate against every transaction.
func countCandidates(db *txdb.DB, candidates []types.Itemset, k int) []int {
	counts := make([]int, len(candidates))
	byFirst := make(map[types.Item][]int)
	for i, c := range candidates {
		byFirst[c[0]] = append(byFirst[c[0]], i)
	}
	for _, tx := range db.Transactions() {
		if len(tx.Items) < k {
			continue
		}
		for _, it := range tx.Items {
			for _, ci := range byFirst[it] {
				if tx.Items.ContainsAll(candidates[ci]) {
					counts[ci]++
				}
			}
		}
	}
	return counts
}

func keySet(level []types.Itemset) map[string]bool {
	m := make(map[string]bool, len(level))
	for _, s := range level {
		m[s.Key()] = true
	}
	return m
}

func sortSets(sets []types.Itemset) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
