package apriori

import (
	"fmt"
	"math/rand"
	"testing"

	"maras/internal/fpgrowth"
	"maras/internal/txdb"
	"maras/internal/types"
)

func buildDB(t testing.TB, txs [][]int) *txdb.DB {
	t.Helper()
	dict := types.NewDictionary()
	maxID := 0
	for _, tx := range txs {
		for _, id := range tx {
			if id > maxID {
				maxID = id
			}
		}
	}
	for i := 0; i <= maxID; i++ {
		dict.Intern(fmt.Sprintf("i%d", i), types.DomainDrug)
	}
	db := txdb.New(dict)
	for r, tx := range txs {
		items := make(types.Itemset, 0, len(tx))
		for _, id := range tx {
			items = append(items, types.Item(id))
		}
		db.Add(fmt.Sprintf("r%d", r), items.Normalize())
	}
	db.Freeze()
	return db
}

func asMap(sets []fpgrowth.FrequentSet) map[string]int {
	m := make(map[string]int, len(sets))
	for _, fs := range sets {
		m[fs.Items.Key()] = fs.Support
	}
	return m
}

func TestAprioriKnownExample(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 5},
		{2, 4},
		{2, 3},
		{1, 2, 4},
		{1, 3},
		{2, 3},
		{1, 3},
		{1, 2, 3, 5},
		{1, 2, 3},
	})
	got := asMap(Mine(db, Options{MinSupport: 2}))
	checks := map[string]int{
		"1":     6,
		"2":     7,
		"1,2":   4,
		"1,2,3": 2,
		"1,2,5": 2,
		"2,3":   4,
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("support[%s] = %d, want %d", k, got[k], want)
		}
	}
	if _, ok := got["4,5"]; ok {
		t.Error("infrequent {4,5} should not be mined")
	}
}

// Apriori and FP-Growth must agree exactly on random databases.
func TestAprioriMatchesFPGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		nItems := 4 + rng.Intn(9)
		nTx := 10 + rng.Intn(50)
		txs := make([][]int, nTx)
		for i := range txs {
			for id := 0; id < nItems; id++ {
				if rng.Float64() < 0.3 {
					txs[i] = append(txs[i], id)
				}
			}
			if len(txs[i]) == 0 {
				txs[i] = []int{rng.Intn(nItems)}
			}
		}
		db := buildDB(t, txs)
		minsup := 1 + rng.Intn(4)

		ap := asMap(Mine(db, Options{MinSupport: minsup}))
		fp := asMap(fpgrowth.Mine(db, fpgrowth.Options{MinSupport: minsup}))
		if len(ap) != len(fp) {
			t.Fatalf("trial %d (minsup=%d): apriori %d sets, fpgrowth %d", trial, minsup, len(ap), len(fp))
		}
		for k, sup := range fp {
			if ap[k] != sup {
				t.Fatalf("trial %d: %s apriori=%d fpgrowth=%d", trial, k, ap[k], sup)
			}
		}
	}
}

func TestAprioriMaxLen(t *testing.T) {
	db := buildDB(t, [][]int{{1, 2, 3}, {1, 2, 3}})
	for _, fs := range Mine(db, Options{MinSupport: 1, MaxLen: 2}) {
		if len(fs.Items) > 2 {
			t.Errorf("MaxLen=2 emitted %v", fs.Items)
		}
	}
}

func TestAprioriEmpty(t *testing.T) {
	dict := types.NewDictionary()
	db := txdb.New(dict)
	db.Freeze()
	if got := Mine(db, Options{MinSupport: 1}); len(got) != 0 {
		t.Errorf("empty DB mined %d", len(got))
	}
}

func TestAprioriMinSupDefault(t *testing.T) {
	db := buildDB(t, [][]int{{1}})
	got := Mine(db, Options{MinSupport: 0})
	if len(got) != 1 {
		t.Errorf("MinSupport 0 should clamp to 1; mined %d", len(got))
	}
}
