package assoc

import (
	"math"
	"strings"
	"testing"

	"maras/internal/fpgrowth"
	"maras/internal/txdb"
	"maras/internal/types"
)

// fixture builds a small FAERS-like DB:
//
//	r1: {A,W} -> {bleed, nausea}   (explicit for A,W=>bleed,nausea)
//	r2: {A,W} -> {bleed, nausea}
//	r3: {A}   -> {nausea}
//	r4: {W}   -> {bleed}
//	r5: {A,W,Z} -> {bleed, nausea, rash}
//	r6: {Z}   -> {rash}
func fixture(t testing.TB) (*txdb.DB, map[string]types.Item) {
	t.Helper()
	dict := types.NewDictionary()
	m := map[string]types.Item{}
	for _, d := range []string{"ASPIRIN", "WARFARIN", "ZOMETA"} {
		m[d] = dict.Intern(d, types.DomainDrug)
	}
	for _, a := range []string{"Haemorrhage", "Nausea", "Rash"} {
		m[a] = dict.Intern(a, types.DomainReaction)
	}
	A, W, Z := m["ASPIRIN"], m["WARFARIN"], m["ZOMETA"]
	bl, na, ra := m["Haemorrhage"], m["Nausea"], m["Rash"]

	db := txdb.New(dict)
	db.Add("r1", types.NewItemset(A, W, bl, na))
	db.Add("r2", types.NewItemset(A, W, bl, na))
	db.Add("r3", types.NewItemset(A, na))
	db.Add("r4", types.NewItemset(W, bl))
	db.Add("r5", types.NewItemset(A, W, Z, bl, na, ra))
	db.Add("r6", types.NewItemset(Z, ra))
	db.Freeze()
	return db, m
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvaluateMeasures(t *testing.T) {
	db, m := fixture(t)
	A, W := m["ASPIRIN"], m["WARFARIN"]
	bl := m["Haemorrhage"]

	r := Evaluate(db, types.NewItemset(A, W), types.NewItemset(bl))
	if r.Support != 3 {
		t.Errorf("Support = %d, want 3", r.Support)
	}
	if r.AntSupport != 3 {
		t.Errorf("AntSupport = %d, want 3", r.AntSupport)
	}
	if r.ConSupport != 4 {
		t.Errorf("ConSupport = %d, want 4", r.ConSupport)
	}
	if !almostEq(r.Confidence, 1.0) {
		t.Errorf("Confidence = %v, want 1.0", r.Confidence)
	}
	// lift = 3*6/(3*4) = 1.5
	if !almostEq(r.Lift, 1.5) {
		t.Errorf("Lift = %v, want 1.5", r.Lift)
	}
}

func TestEvaluateZeroAntecedentSupport(t *testing.T) {
	db, m := fixture(t)
	ghostDrug := db.Dict().Intern("GHOST", types.DomainDrug)
	r := Evaluate(db, types.NewItemset(ghostDrug), types.NewItemset(m["Rash"]))
	if r.Support != 0 || r.Confidence != 0 || r.Lift != 0 {
		t.Errorf("ghost rule = %+v, want zeros", r)
	}
}

func TestRuleKeyAndComplete(t *testing.T) {
	db, m := fixture(t)
	r := Evaluate(db, types.NewItemset(m["ASPIRIN"], m["WARFARIN"]), types.NewItemset(m["Haemorrhage"]))
	want := types.NewItemset(m["ASPIRIN"], m["WARFARIN"], m["Haemorrhage"])
	if !r.Complete().Equal(want) {
		t.Errorf("Complete = %v, want %v", r.Complete(), want)
	}
	if r.Key() == "" || !strings.Contains(r.Key(), "=>") {
		t.Errorf("Key = %q", r.Key())
	}
}

func TestRuleRender(t *testing.T) {
	db, m := fixture(t)
	r := Evaluate(db, types.NewItemset(m["ASPIRIN"], m["WARFARIN"]), types.NewItemset(m["Haemorrhage"]))
	s := r.Render(db.Dict())
	for _, want := range []string{"ASPIRIN", "WARFARIN", "Haemorrhage", "sup=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Render missing %q: %s", want, s)
		}
	}
}

func TestMeasureValue(t *testing.T) {
	r := &Rule{Confidence: 0.7, Lift: 3.2}
	if !almostEq(MeasureConfidence.Value(r), 0.7) {
		t.Error("confidence measure wrong")
	}
	if !almostEq(MeasureLift.Value(r), 3.2) {
		t.Error("lift measure wrong")
	}
	if MeasureConfidence.String() != "confidence" || MeasureLift.String() != "lift" {
		t.Error("measure names wrong")
	}
}

func TestClassifyExplicit(t *testing.T) {
	db, m := fixture(t)
	A, W := m["ASPIRIN"], m["WARFARIN"]
	bl, na := m["Haemorrhage"], m["Nausea"]
	// r1 is exactly {A,W,bleed,nausea}: explicit.
	if got := Classify(db, types.NewItemset(A, W, bl, na)); got != Explicit {
		t.Errorf("Classify = %v, want explicit", got)
	}
}

func TestClassifyImplicit(t *testing.T) {
	dict := types.NewDictionary()
	d1 := dict.Intern("d1", types.DomainDrug)
	d2 := dict.Intern("d2", types.DomainDrug)
	d3 := dict.Intern("d3", types.DomainDrug)
	a1 := dict.Intern("a1", types.DomainReaction)
	a2 := dict.Intern("a2", types.DomainReaction)
	db := txdb.New(dict)
	// {d1,a1} never appears alone but is the exact intersection of r1, r2.
	db.Add("r1", types.NewItemset(d1, d2, a1))
	db.Add("r2", types.NewItemset(d1, d3, a1, a2))
	db.Freeze()
	if got := Classify(db, types.NewItemset(d1, a1)); got != Implicit {
		t.Errorf("Classify = %v, want implicit", got)
	}
}

func TestClassifyUnsupported(t *testing.T) {
	dict := types.NewDictionary()
	d1 := dict.Intern("d1", types.DomainDrug)
	d2 := dict.Intern("d2", types.DomainDrug)
	a1 := dict.Intern("a1", types.DomainReaction)
	a2 := dict.Intern("a2", types.DomainReaction)
	db := txdb.New(dict)
	// Single report {d1,d2,a1,a2}; the partial {d1,a2} is neither the
	// full report nor an intersection of two reports -> type 3.
	db.Add("r1", types.NewItemset(d1, d2, a1, a2))
	db.Freeze()
	if got := Classify(db, types.NewItemset(d1, a2)); got != Unsupported {
		t.Errorf("Classify = %v, want unsupported", got)
	}
	if Unsupported.String() != "unsupported" || Explicit.String() != "explicit" || Implicit.String() != "implicit" {
		t.Error("SupportType names wrong")
	}
}

// Lemma 3.4.2: every closed complete itemset with both domains yields
// a supported (explicit or implicit) association.
func TestClosedItemsetsAreSupported(t *testing.T) {
	db, _ := fixture(t)
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: 1})
	for _, fs := range closed {
		drugs, reacs := db.Dict().SplitDomains(fs.Items)
		if len(drugs) == 0 || len(reacs) == 0 {
			continue
		}
		if got := Classify(db, fs.Items); got == Unsupported {
			t.Errorf("closed itemset %v classified unsupported, violating Lemma 3.4.2", fs.Items)
		}
	}
}

func TestFromItemsetsFiltersDomains(t *testing.T) {
	db, m := fixture(t)
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: 1})
	rules := FromItemsets(db, closed, GenOptions{MinDrugs: 2})
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
	for _, r := range rules {
		if len(r.Antecedent) < 2 {
			t.Errorf("rule %s has %d drugs, want >= 2", r.Key(), len(r.Antecedent))
		}
		for _, it := range r.Antecedent {
			if !db.Dict().IsDrug(it) {
				t.Errorf("non-drug in antecedent of %s", r.Key())
			}
		}
		for _, it := range r.Consequent {
			if !db.Dict().IsReaction(it) {
				t.Errorf("non-reaction in consequent of %s", r.Key())
			}
		}
	}
	// The A,W => bleed,nausea rule must be present with support 3.
	wantKey := types.NewItemset(m["ASPIRIN"], m["WARFARIN"]).Key() + "=>" +
		types.NewItemset(m["Haemorrhage"], m["Nausea"]).Key()
	found := false
	for _, r := range rules {
		if r.Key() == wantKey {
			found = true
			if r.Support != 3 {
				t.Errorf("A,W=>bleed,nausea support = %d, want 3", r.Support)
			}
		}
	}
	if !found {
		t.Errorf("expected rule %s missing", wantKey)
	}
}

func TestFromItemsetsMinConfidence(t *testing.T) {
	// Dedicated DB where confidences differ: d1 appears 3 times but
	// co-occurs with a1 only twice -> conf(d1 => a1) = 2/3.
	dict := types.NewDictionary()
	d1 := dict.Intern("d1", types.DomainDrug)
	d2 := dict.Intern("d2", types.DomainDrug)
	a1 := dict.Intern("a1", types.DomainReaction)
	a2 := dict.Intern("a2", types.DomainReaction)
	db := txdb.New(dict)
	db.Add("r1", types.NewItemset(d1, a1))
	db.Add("r2", types.NewItemset(d1, a1))
	db.Add("r3", types.NewItemset(d1, a2))
	db.Add("r4", types.NewItemset(d2, a2))
	db.Freeze()
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: 1})
	all := FromItemsets(db, closed, GenOptions{MinDrugs: 1})
	high := FromItemsets(db, closed, GenOptions{MinDrugs: 1, MinConfidence: 0.9})
	if len(high) >= len(all) {
		t.Errorf("MinConfidence did not filter: %d vs %d", len(high), len(all))
	}
	for _, r := range high {
		if r.Confidence < 0.9 {
			t.Errorf("rule %s confidence %v below threshold", r.Key(), r.Confidence)
		}
	}
}

func TestFromItemsetsMaxDrugs(t *testing.T) {
	db, _ := fixture(t)
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: 1})
	rules := FromItemsets(db, closed, GenOptions{MinDrugs: 1, MaxDrugs: 2})
	for _, r := range rules {
		if len(r.Antecedent) > 2 {
			t.Errorf("rule %s exceeds MaxDrugs", r.Key())
		}
	}
}

func TestAllPartitionsBlowup(t *testing.T) {
	db, _ := fixture(t)
	all := fpgrowth.Mine(db, fpgrowth.Options{MinSupport: 1})
	closed := fpgrowth.MineClosed(db, fpgrowth.Options{MinSupport: 1})

	total := AllPartitions(db, all, 0)
	filtered := FromItemsets(db, closed, GenOptions{MinDrugs: 2})
	if len(total) <= len(filtered) {
		t.Errorf("partition rules (%d) should outnumber closed multi-drug rules (%d)",
			len(total), len(filtered))
	}
	if got := CountAllPartitionRules(db, all); got != len(total) {
		t.Errorf("CountAllPartitionRules = %d, want %d", got, len(total))
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, r := range total {
		if seen[r.Key()] {
			t.Errorf("duplicate rule %s", r.Key())
		}
		seen[r.Key()] = true
	}
}

// For the single-report toy of Section 3.3, traditional generation
// yields (2^2-1)(2^2-1) = 9 rules.
func TestAllPartitionsSectionThreeThreeExample(t *testing.T) {
	dict := types.NewDictionary()
	d1 := dict.Intern("d1", types.DomainDrug)
	d2 := dict.Intern("d2", types.DomainDrug)
	a1 := dict.Intern("a1", types.DomainReaction)
	a2 := dict.Intern("a2", types.DomainReaction)
	db := txdb.New(dict)
	db.Add("r1", types.NewItemset(d1, d2, a1, a2))
	db.Freeze()

	all := fpgrowth.Mine(db, fpgrowth.Options{MinSupport: 1})
	rules := AllPartitions(db, all, 0)
	if len(rules) != 9 {
		t.Errorf("single report generated %d rules, want 9", len(rules))
	}
	// The unconstrained classical rule space over the same report:
	// Σ over the 15 frequent itemsets of (2^k − 2)
	// = 6·2 (pairs) + 4·6 (triples) + 1·14 (the quad) = 50.
	if got := CountTraditionalRules(all); got != 50 {
		t.Errorf("CountTraditionalRules = %d, want 50", got)
	}
	// And the drug→ADR filter at complete-itemset granularity counts
	// the 9 both-domain itemsets.
	if got := CountDrugADRRules(db.Dict(), all); got != 9 {
		t.Errorf("CountDrugADRRules = %d, want 9", got)
	}
}
