package assoc

import (
	"sort"

	"maras/internal/fpgrowth"
	"maras/internal/txdb"
	"maras/internal/types"
)

// GenOptions controls rule generation from mined itemsets.
type GenOptions struct {
	// MinDrugs is the minimum antecedent size; the multi-drug study
	// requires ≥ 2 (Section 3.4: "the drug-ADR association will be
	// evaluated as long as it has more than one drug"). 0 means 1.
	MinDrugs int
	// MaxDrugs caps antecedent size; 0 = unbounded.
	MaxDrugs int
	// MinConfidence drops rules below the threshold; 0 keeps all.
	MinConfidence float64
}

// FromItemsets turns mined itemsets into drug→ADR rules: for each
// itemset containing at least MinDrugs drugs and at least one
// reaction, it emits the single rule drugs(Z) ⇒ reactions(Z). This is
// the paper's closed-complete-itemset rule form — when Z is closed,
// Lemma 3.4.2 guarantees the rule is a supported (non-spurious)
// association. Itemsets without both domains are skipped.
//
// Measures are evaluated exactly against db. Results are sorted by
// descending support, then key, for determinism.
func FromItemsets(db *txdb.DB, sets []fpgrowth.FrequentSet, opts GenOptions) []Rule {
	if opts.MinDrugs < 1 {
		opts.MinDrugs = 1
	}
	dict := db.Dict()
	rules := make([]Rule, 0, len(sets))
	for _, fs := range sets {
		drugs, reacs := dict.SplitDomains(fs.Items)
		if len(drugs) < opts.MinDrugs || len(reacs) == 0 {
			continue
		}
		if opts.MaxDrugs > 0 && len(drugs) > opts.MaxDrugs {
			continue
		}
		r := Evaluate(db, drugs, reacs)
		if r.Confidence < opts.MinConfidence {
			continue
		}
		rules = append(rules, r)
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].Key() < rules[j].Key()
	})
	return rules
}

// AllPartitions materializes the *filtered* drug→ADR rule space at
// subset granularity: each itemset Z yields one rule per (non-empty
// drug subset, non-empty reaction subset) of Z — (2^d − 1)(2^a − 1)
// per itemset before deduplication, the "9 drug-ADR associations"
// blowup of the paper's Section 3.3 single-report example. It exists
// to demonstrate the partial-rule problem, not for production use.
//
// Deduplicated across itemsets; measures evaluated exactly.
func AllPartitions(db *txdb.DB, sets []fpgrowth.FrequentSet, maxAnt int) []Rule {
	dict := db.Dict()
	seen := make(map[string]bool)
	var rules []Rule
	for _, fs := range sets {
		drugs, reacs := dict.SplitDomains(fs.Items)
		if len(drugs) == 0 || len(reacs) == 0 {
			continue
		}
		emit := func(a, b types.Itemset) {
			if maxAnt > 0 && len(a) > maxAnt {
				return
			}
			key := a.Key() + "=>" + b.Key()
			if seen[key] {
				return
			}
			seen[key] = true
			rules = append(rules, Evaluate(db, a.Clone(), b.Clone()))
		}
		// Every non-empty subset pair; drug sets and reaction sets are
		// small per itemset, so the double power-set walk is bounded.
		subsetsIncludingFull(drugs, func(a types.Itemset) {
			subsetsIncludingFull(reacs, func(b types.Itemset) {
				emit(a, b)
			})
		})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].Key() < rules[j].Key()
	})
	return rules
}

// subsetsIncludingFull visits every non-empty subset of s, including
// s itself.
func subsetsIncludingFull(s types.Itemset, fn func(types.Itemset)) {
	s.ProperSubsets(func(sub types.Itemset) bool {
		fn(sub)
		return true
	})
	fn(s)
}

// CountDrugADRRules returns how many drug→ADR rules FromItemsets
// would emit with MinDrugs=1 and no confidence filter, without
// evaluating measures. Each itemset with at least one drug and one
// reaction yields exactly one rule, and distinct itemsets yield
// distinct (antecedent, consequent) pairs, so this is a pure count.
func CountDrugADRRules(dict *types.Dictionary, sets []fpgrowth.FrequentSet) int {
	n := 0
	for _, fs := range sets {
		hasDrug, hasReac := false, false
		for _, it := range fs.Items {
			if dict.IsDrug(it) {
				hasDrug = true
			} else {
				hasReac = true
			}
		}
		if hasDrug && hasReac {
			n++
		}
	}
	return n
}

// CountAllPartitionRules returns how many distinct drug→ADR rules
// AllPartitions would generate, without materializing or evaluating
// them.
func CountAllPartitionRules(db *txdb.DB, sets []fpgrowth.FrequentSet) int {
	dict := db.Dict()
	seen := make(map[string]bool)
	for _, fs := range sets {
		drugs, reacs := dict.SplitDomains(fs.Items)
		if len(drugs) == 0 || len(reacs) == 0 {
			continue
		}
		subsetsIncludingFull(drugs, func(a types.Itemset) {
			ak := a.Key()
			subsetsIncludingFull(reacs, func(b types.Itemset) {
				seen[ak+"=>"+b.Key()] = true
			})
		})
	}
	return len(seen)
}

// CountTraditionalRules returns the size of the unconstrained rule
// space of classical association rule mining over the frequent
// itemsets: every frequent itemset U yields a rule A ⇒ U\A for each
// non-empty proper subset A ⊂ U, i.e. 2^|U| − 2 rules, with no
// drug/reaction domain restriction. This is Fig 5.1's "Total rules"
// series — the pool an analyst would face without MARAS's filtering.
// Rules from different itemsets are distinct by construction (the
// complete itemset A ∪ B identifies its generator), so no
// deduplication is needed.
func CountTraditionalRules(sets []fpgrowth.FrequentSet) int {
	total := 0
	for _, fs := range sets {
		k := uint(len(fs.Items))
		if k < 2 {
			continue
		}
		total += (1 << k) - 2
	}
	return total
}
