// Package assoc models drug→ADR association rules and their
// interestingness measures (support, confidence, lift — Formulas
// 2.1–2.3), generates the rule base from mined itemsets under the
// paper's structural constraints (drug-only antecedent, reaction-only
// consequent, Section 3.1), and classifies rule support as explicit,
// implicit, or unsupported/partial (Definitions 3.3.1–3.3.2).
package assoc

import (
	"fmt"
	"strings"

	"maras/internal/txdb"
	"maras/internal/types"
)

// Rule is an association rule A ⇒ B with its measures evaluated
// against a specific transaction database. Antecedent holds only drug
// items and Consequent only reaction items.
type Rule struct {
	Antecedent types.Itemset // drugs A
	Consequent types.Itemset // reactions B

	Support    int     // |A ∪ B| — absolute co-occurrence count (Formula 2.1)
	AntSupport int     // |A|
	ConSupport int     // |B|
	Confidence float64 // |A ∪ B| / |A| (Formula 2.2)
	Lift       float64 // |A ∪ B|·N / (|A|·|B|) (Formula 2.3)
}

// Complete returns the rule's complete itemset A ∪ B.
func (r *Rule) Complete() types.Itemset { return r.Antecedent.Union(r.Consequent) }

// Key returns a canonical identity for the rule (antecedent ⇒
// consequent), stable across runs.
func (r *Rule) Key() string { return r.Antecedent.Key() + "=>" + r.Consequent.Key() }

// Render formats the rule with names from dict, e.g.
// "[ASPIRIN WARFARIN] => [Haemorrhage] (sup=12 conf=0.86 lift=34.1)".
func (r *Rule) Render(dict *types.Dictionary) string {
	return fmt.Sprintf("[%s] => [%s] (sup=%d conf=%.3f lift=%.2f)",
		strings.Join(dict.SortedNames(r.Antecedent), " + "),
		strings.Join(dict.SortedNames(r.Consequent), ", "),
		r.Support, r.Confidence, r.Lift)
}

// Measure identifies which base measure a ranking method reads.
type Measure uint8

const (
	// MeasureConfidence ranks/scores by rule confidence.
	MeasureConfidence Measure = iota
	// MeasureLift ranks/scores by rule lift.
	MeasureLift
)

// String names the measure for reports.
func (m Measure) String() string {
	switch m {
	case MeasureConfidence:
		return "confidence"
	case MeasureLift:
		return "lift"
	default:
		return fmt.Sprintf("measure(%d)", uint8(m))
	}
}

// Value extracts the measure's value from r.
func (m Measure) Value(r *Rule) float64 {
	if m == MeasureLift {
		return r.Lift
	}
	return r.Confidence
}

// Evaluate computes every measure of the rule A ⇒ B against db. It is
// exact: supports come from posting-list intersections.
func Evaluate(db *txdb.DB, antecedent, consequent types.Itemset) Rule {
	r := Rule{Antecedent: antecedent, Consequent: consequent}
	r.Support = db.Support(antecedent.Union(consequent))
	r.AntSupport = db.Support(antecedent)
	r.ConSupport = db.Support(consequent)
	if r.AntSupport > 0 {
		r.Confidence = float64(r.Support) / float64(r.AntSupport)
	}
	if r.AntSupport > 0 && r.ConSupport > 0 && db.Len() > 0 {
		r.Lift = float64(r.Support) * float64(db.Len()) /
			(float64(r.AntSupport) * float64(r.ConSupport))
	}
	return r
}

// SupportType classifies how a drug-ADR association is supported by
// the reports (Section 3.3).
type SupportType uint8

const (
	// Unsupported marks partial associations backed by no report
	// pattern — type 3 in the paper, misleading and discarded.
	Unsupported SupportType = iota
	// Explicit marks associations whose complete itemset equals some
	// report's full drug+reaction set (Definition 3.3.1).
	Explicit
	// Implicit marks associations whose complete itemset is the exact
	// intersection of at least two reports (Definition 3.3.2).
	Implicit
)

// String names the support type.
func (s SupportType) String() string {
	switch s {
	case Explicit:
		return "explicit"
	case Implicit:
		return "implicit"
	default:
		return "unsupported"
	}
}

// Classify determines the support type of the association with the
// given complete itemset against db, directly per Definitions 3.3.1
// and 3.3.2. Explicit wins when both hold.
func Classify(db *txdb.DB, complete types.Itemset) SupportType {
	tids := db.TIDs(complete, nil)
	for _, tid := range tids {
		if db.Tx(tid).Items.Equal(complete) {
			return Explicit
		}
	}
	// Implicit: complete == (t1.D ∪ t1.A) ∩ (t2.D ∪ t2.A) for some pair.
	// Only transactions containing the set can participate.
	for i := 0; i < len(tids); i++ {
		for j := i + 1; j < len(tids); j++ {
			inter := db.Tx(tids[i]).Items.Intersect(db.Tx(tids[j]).Items)
			if inter.Equal(complete) {
				return Implicit
			}
		}
	}
	return Unsupported
}
