package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"maras/internal/faers"
	"maras/internal/knowledge"
)

// Config parameterizes a synthetic quarter. The zero value is not
// usable; start from DefaultConfig or PaperScaleConfig.
type Config struct {
	Seed    int64
	Label   string // quarter label, e.g. "2014Q1"
	Reports int    // reports to generate

	DrugVocab     int     // distinct drug names
	ReactionVocab int     // distinct reaction terms
	DrugZipf      float64 // popularity skew of drugs (s exponent)
	ReactionZipf  float64 // popularity skew of reactions

	Classes        int     // therapeutic classes for correlated co-prescription
	ClassCohesion  float64 // probability an extra drug comes from the same class
	MeanDrugs      float64 // mean drugs per report (geometric-ish)
	MaxDrugs       int     // hard cap per report
	MeanReactions  float64 // mean background reactions per report
	ProfileADRProb float64 // probability a taken drug expresses one of its profile ADRs

	// Planted interactions.
	Interactions []Interaction
	// ExposureRate is the fraction of reports drawn as interaction
	// exposures (spread across the planted interactions).
	ExposureRate float64
	// TriggerProb is the probability an exposure expresses the
	// interaction's reactions.
	TriggerProb float64
	// SoloTriggerProb is the probability a single planted drug
	// expresses the interaction reaction on its own (kept low so the
	// signal is exclusive to the combination).
	SoloTriggerProb float64

	// Noise for the cleaning stage.
	MisspellRate  float64 // per drug mention
	DuplicateRate float64 // per report: emit a duplicate case copy
	ExpeditedRate float64 // share of reports marked EXP
}

// Interaction is a planted ground-truth drug-drug interaction.
type Interaction struct {
	Drugs     []string
	Reactions []string
	Severity  knowledge.Severity
}

// GroundTruth records what was planted, for the evaluator.
type GroundTruth struct {
	Interactions []Interaction
}

// Keys returns the canonical drug-combination keys of the planted
// interactions.
func (g *GroundTruth) Keys() []string {
	out := make([]string, len(g.Interactions))
	for i := range g.Interactions {
		out[i] = knowledge.DrugKey(g.Interactions[i].Drugs)
	}
	sort.Strings(out)
	return out
}

// DefaultConfig is the laptop-scale configuration (about 1/8 of the
// paper's quarter sizes) used by tests and the default bench harness.
func DefaultConfig(label string, seed int64) Config {
	return Config{
		Seed:    seed,
		Label:   label,
		Reports: 15_000,

		DrugVocab:     4_500,
		ReactionVocab: 1_100,
		DrugZipf:      1.05,
		ReactionZipf:  1.0,

		Classes:        60,
		ClassCohesion:  0.45,
		MeanDrugs:      3.2,
		MaxDrugs:       12,
		MeanReactions:  2.4,
		ProfileADRProb: 0.35,

		Interactions:    BuiltinInteractions(),
		ExposureRate:    0.03,
		TriggerProb:     0.9,
		SoloTriggerProb: 0.01,

		MisspellRate:  0.01,
		DuplicateRate: 0.008,
		ExpeditedRate: 0.82,
	}
}

// PaperScaleConfig approximates the paper's Table 5.1 scale
// (~126k reports, ~35k drug strings, ~9k reaction terms per quarter).
// Generating and mining it fits in memory but takes noticeably longer;
// the bench harness selects it behind a flag.
func PaperScaleConfig(label string, seed int64) Config {
	c := DefaultConfig(label, seed)
	c.Reports = 126_000
	c.DrugVocab = 36_000
	c.ReactionVocab = 9_200
	c.Classes = 250
	return c
}

// BuiltinInteractions converts the curated knowledge base into
// planted interactions.
func BuiltinInteractions() []Interaction {
	kb := knowledge.Builtin().All()
	out := make([]Interaction, len(kb))
	for i, e := range kb {
		out[i] = Interaction{Drugs: e.Drugs, Reactions: e.Reactions, Severity: e.Severity}
	}
	return out
}

// Generate produces a synthetic quarter and its ground truth. The
// same Config (including Seed) always yields byte-identical output.
func Generate(cfg Config) (*faers.Quarter, *GroundTruth, error) {
	if cfg.Reports <= 0 || cfg.DrugVocab <= 0 || cfg.ReactionVocab <= 0 {
		return nil, nil, fmt.Errorf("synth: non-positive size in config %+v", cfg)
	}
	if cfg.MaxDrugs <= 0 {
		cfg.MaxDrugs = 12
	}
	if cfg.Label == "" {
		cfg.Label = "2014Q1"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := newWorld(rng, cfg)

	q := &faers.Quarter{Label: cfg.Label}
	pid := 0
	caseNo := 0
	for i := 0; i < cfg.Reports; i++ {
		drugs, reacs, suspects, severe := w.sampleReport(rng)
		pid++
		caseNo++
		emitReport(q, rng, cfg, pid, caseNo, drugs, reacs, suspects, severe, w)
		// Occasionally re-report the same case (a consumer report
		// followed by the manufacturer's expedited copy) — the
		// duplicates the cleaning stage must collapse.
		if rng.Float64() < cfg.DuplicateRate {
			pid++
			emitReport(q, rng, cfg, pid, caseNo, drugs, reacs, suspects, severe, w)
		}
	}
	gt := &GroundTruth{Interactions: append([]Interaction(nil), cfg.Interactions...)}
	return q, gt, nil
}

// world holds the sampled static structure of a synthetic population.
type world struct {
	cfg        Config
	drugs      []string
	reacs      []string
	drugCum    []float64 // cumulative Zipf weights for drug sampling
	reacCum    []float64
	classOf    []int   // drug index -> class
	classDrugs [][]int // class -> drug indices
	// profile[d] lists reaction indices drug d plausibly causes.
	profile [][]int
	// interactions with resolved indices.
	inters []resolvedInteraction
}

type resolvedInteraction struct {
	drugIdx []int
	reacIdx []int
	severe  bool
}

func newWorld(rng *rand.Rand, cfg Config) *world {
	w := &world{cfg: cfg}

	// Vocabulary: planted-interaction names claim their spots first.
	taken := map[string]bool{}
	var plantedDrugs, plantedReacs []string
	for _, in := range cfg.Interactions {
		for _, d := range in.Drugs {
			if !taken[d] {
				taken[d] = true
				plantedDrugs = append(plantedDrugs, d)
			}
		}
	}
	takenReac := map[string]bool{}
	for _, in := range cfg.Interactions {
		for _, r := range in.Reactions {
			if !takenReac[r] {
				takenReac[r] = true
				plantedReacs = append(plantedReacs, r)
			}
		}
	}
	nGen := cfg.DrugVocab - len(plantedDrugs)
	if nGen < 0 {
		nGen = 0
	}
	w.drugs = append(plantedDrugs, makeDrugNames(rng, nGen, taken)...)
	nGenR := cfg.ReactionVocab - len(plantedReacs)
	if nGenR < 0 {
		nGenR = 0
	}
	w.reacs = append(plantedReacs, makeReactionTerms(rng, nGenR, takenReac)...)

	// Shuffle popularity ranks so planted drugs sit at realistic
	// mid-popularity positions rather than all at the head.
	drugRank := rng.Perm(len(w.drugs))
	reacRank := rng.Perm(len(w.reacs))
	dw := zipfWeights(len(w.drugs), cfg.DrugZipf)
	rw := zipfWeights(len(w.reacs), cfg.ReactionZipf)
	// Planted drugs get boosted popularity: their solo support must be
	// substantial for the exclusiveness contrast to be measurable.
	w.drugCum = make([]float64, len(w.drugs))
	acc := 0.0
	for i := range w.drugs {
		weight := dw[drugRank[i]]
		if i < len(plantedDrugs) {
			const plantedFloor = 200 // rank whose popularity planted drugs at least match
			if floor := dw[plantedFloor%len(dw)]; weight < floor {
				weight = floor
			}
		}
		acc += weight
		w.drugCum[i] = acc
	}
	w.reacCum = make([]float64, len(w.reacs))
	acc = 0.0
	for i := range w.reacs {
		weight := rw[reacRank[i]]
		if i < len(plantedReacs) {
			// Interaction ADRs (haemorrhage, osteoporosis, ...) are
			// common background terms in real FAERS; give them at
			// least mid-head popularity so rarity alone (raw lift /
			// PRR) cannot trivially identify the planted signals.
			const reacFloor = 40
			if floor := rw[reacFloor%len(rw)]; weight < floor {
				weight = floor
			}
		}
		acc += weight
		w.reacCum[i] = acc
	}

	// Therapeutic classes.
	n := cfg.Classes
	if n <= 0 {
		n = 1
	}
	w.classOf = make([]int, len(w.drugs))
	w.classDrugs = make([][]int, n)
	for i := range w.drugs {
		c := rng.Intn(n)
		w.classOf[i] = c
		w.classDrugs[c] = append(w.classDrugs[c], i)
	}

	// Per-drug ADR profiles: 1-4 characteristic reactions each.
	w.profile = make([][]int, len(w.drugs))
	for i := range w.drugs {
		k := 1 + rng.Intn(4)
		for j := 0; j < k; j++ {
			w.profile[i] = append(w.profile[i], w.sampleReaction(rng))
		}
	}

	// Resolve planted interactions to indices.
	drugIdx := map[string]int{}
	for i, d := range w.drugs {
		drugIdx[d] = i
	}
	reacIdx := map[string]int{}
	for i, r := range w.reacs {
		reacIdx[r] = i
	}
	for _, in := range cfg.Interactions {
		ri := resolvedInteraction{severe: in.Severity == knowledge.Severe}
		ok := true
		for _, d := range in.Drugs {
			idx, found := drugIdx[d]
			if !found {
				ok = false
				break
			}
			ri.drugIdx = append(ri.drugIdx, idx)
		}
		for _, r := range in.Reactions {
			idx, found := reacIdx[r]
			if !found {
				ok = false
				break
			}
			ri.reacIdx = append(ri.reacIdx, idx)
		}
		if ok {
			w.inters = append(w.inters, ri)
		}
	}
	return w
}

// sampleDrug draws a drug index from the Zipf popularity.
func (w *world) sampleDrug(rng *rand.Rand) int {
	return sampleCum(rng, w.drugCum)
}

// sampleReaction draws a reaction index from the Zipf popularity.
func (w *world) sampleReaction(rng *rand.Rand) int {
	return sampleCum(rng, w.reacCum)
}

func sampleCum(rng *rand.Rand, cum []float64) int {
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sampleReport draws one report's drug set, reaction set and suspect
// drugs (as vocabulary indices) plus a severity flag.
func (w *world) sampleReport(rng *rand.Rand) (drugs, reacs, suspects map[int]bool, severe bool) {
	cfg := w.cfg
	drugs = make(map[int]bool)
	reacs = make(map[int]bool)
	suspects = make(map[int]bool)

	// Exposure to a planted interaction? Interaction drugs become the
	// report's suspects — reporters name the drugs they blame.
	if len(w.inters) > 0 && rng.Float64() < cfg.ExposureRate {
		in := w.inters[rng.Intn(len(w.inters))]
		for _, d := range in.drugIdx {
			drugs[d] = true
			suspects[d] = true
		}
		if rng.Float64() < cfg.TriggerProb {
			for _, r := range in.reacIdx {
				reacs[r] = true
			}
			severe = severe || in.severe
		}
	}

	// Background polypharmacy with class cohesion.
	nDrugs := 1 + geometric(rng, cfg.MeanDrugs)
	if nDrugs > cfg.MaxDrugs {
		nDrugs = cfg.MaxDrugs
	}
	first := w.sampleDrug(rng)
	drugs[first] = true
	if len(suspects) == 0 {
		// No interaction exposure: the first-reported drug carries
		// the primary-suspect role, as in real spontaneous reports.
		suspects[first] = true
	}
	class := w.classOf[first]
	for len(drugs) < nDrugs {
		var d int
		if rng.Float64() < cfg.ClassCohesion && len(w.classDrugs[class]) > 1 {
			d = w.classDrugs[class][rng.Intn(len(w.classDrugs[class]))]
		} else {
			d = w.sampleDrug(rng)
		}
		drugs[d] = true
	}

	// Drug-profile reactions. Iterate in sorted order: ranging over
	// the map directly would consume rng draws in nondeterministic
	// order and break reproducibility.
	for _, d := range sortedKeys(drugs) {
		for _, r := range w.profile[d] {
			if rng.Float64() < cfg.ProfileADRProb {
				reacs[r] = true
			}
		}
		// Rare solo expression of interaction reactions keeps the
		// contextual rules non-degenerate.
		for _, in := range w.inters {
			if containsInt(in.drugIdx, d) && rng.Float64() < cfg.SoloTriggerProb {
				reacs[in.reacIdx[rng.Intn(len(in.reacIdx))]] = true
			}
		}
	}

	// Background noise reactions.
	nReacs := geometric(rng, cfg.MeanReactions)
	for i := 0; i < nReacs; i++ {
		reacs[w.sampleReaction(rng)] = true
	}
	if len(reacs) == 0 {
		reacs[w.sampleReaction(rng)] = true
	}
	if !severe {
		severe = rng.Float64() < 0.25
	}
	return drugs, reacs, suspects, severe
}

// geometric samples a geometric-ish count with the given mean.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for rng.Float64() > p {
		n++
		if n > 64 {
			break
		}
	}
	return n
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

var sexes = []string{"F", "M", "F", "M", "UNK"}
var countries = []string{"US", "US", "US", "CA", "GB", "DE", "FR", "JP", "MX", "BR"}
var outcomes = []string{"HO", "DE", "LT", "DS", "OT"}

// emitReport appends one report's rows to the quarter.
func emitReport(q *faers.Quarter, rng *rand.Rand, cfg Config, pid, caseNo int,
	drugs, reacs, suspects map[int]bool, severe bool, w *world) {

	primary := fmt.Sprintf("%d", 100_000_000+pid)
	caseID := fmt.Sprintf("C%08d", caseNo)
	rept := "PER"
	if rng.Float64() < cfg.ExpeditedRate {
		rept = "EXP"
	}
	age := ""
	if rng.Float64() < 0.85 {
		age = fmt.Sprintf("%d", 18+rng.Intn(75))
	}
	q.Demos = append(q.Demos, faers.Demo{
		PrimaryID:  primary,
		CaseID:     caseID,
		EventDate:  fmt.Sprintf("2014%02d%02d", 1+rng.Intn(3), 1+rng.Intn(28)),
		ReportCode: rept,
		Age:        age,
		AgeCode:    "YR",
		Sex:        sexes[rng.Intn(len(sexes))],
		Country:    countries[rng.Intn(len(countries))],
	})

	idxs := sortedKeys(drugs)
	primarySet := false
	for seq, d := range idxs {
		name := w.drugs[d]
		if rng.Float64() < cfg.MisspellRate {
			name = misspell(rng, name)
		}
		// Suspect drugs (the ones the reporter blames) carry PS/SS
		// roles; everything else is concomitant medication.
		role := "C"
		if suspects[d] {
			if !primarySet {
				role = "PS"
				primarySet = true
			} else {
				role = "SS"
			}
		}
		q.Drugs = append(q.Drugs, faers.Drug{
			PrimaryID: primary, Seq: seq + 1, RoleCode: role, Name: name,
		})
	}
	for _, r := range sortedKeys(reacs) {
		q.Reacs = append(q.Reacs, faers.Reac{PrimaryID: primary, Term: w.reacs[r]})
	}
	if severe {
		q.Outcs = append(q.Outcs, faers.Outc{PrimaryID: primary, Code: outcomes[rng.Intn(len(outcomes))]})
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// misspell injects one realistic typo: drop, double, swap, or
// substitute a single character.
func misspell(rng *rand.Rand, name string) string {
	if len(name) < 5 {
		return name
	}
	b := []byte(name)
	i := 1 + rng.Intn(len(b)-2)
	switch rng.Intn(4) {
	case 0: // drop
		return string(append(b[:i:i], b[i+1:]...))
	case 1: // double
		return string(b[:i]) + string(b[i]) + string(b[i:])
	case 2: // swap
		b[i], b[i-1] = b[i-1], b[i]
		return string(b)
	default: // substitute
		b[i] = "AEIOURSTLN"[rng.Intn(10)]
		return string(b)
	}
}
