package synth

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"maras/internal/cleaning"
	"maras/internal/faers"
	"maras/internal/knowledge"
)

// tinyConfig keeps tests fast.
func tinyConfig(seed int64) Config {
	cfg := DefaultConfig("2014Q1", seed)
	cfg.Reports = 800
	cfg.DrugVocab = 300
	cfg.ReactionVocab = 120
	cfg.Classes = 12
	cfg.ExposureRate = 0.05
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(tinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(tinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different quarters")
	}
	c, _, err := Generate(tinyConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Drugs, c.Drugs) {
		t.Fatal("different seeds produced identical drug tables")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := tinyConfig(1)
	q, gt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Demos) < cfg.Reports {
		t.Errorf("demos = %d, want >= %d", len(q.Demos), cfg.Reports)
	}
	if len(gt.Interactions) == 0 {
		t.Error("no ground truth planted")
	}
	reports := q.Reports()
	if len(reports) != len(q.Demos) {
		t.Errorf("reports %d != demos %d", len(reports), len(q.Demos))
	}
	// Every report must have at least one drug and one reaction.
	for _, r := range reports[:50] {
		if len(r.Drugs) == 0 || len(r.Reactions) == 0 {
			t.Fatalf("report %s empty: %+v", r.PrimaryID, r)
		}
	}
}

func TestGenerateVocabularyBounds(t *testing.T) {
	cfg := tinyConfig(3)
	q, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drugs := map[string]bool{}
	for _, d := range q.Drugs {
		drugs[cleaning.NormalizeDrug(d.Name)] = true
	}
	// Misspellings add a few extra names, but the bulk respects the
	// configured vocabulary.
	if len(drugs) > cfg.DrugVocab+cfg.DrugVocab/2 {
		t.Errorf("drug vocabulary exploded: %d distinct for config %d", len(drugs), cfg.DrugVocab)
	}
	reacs := map[string]bool{}
	for _, r := range q.Reacs {
		reacs[r.Term] = true
	}
	if len(reacs) > cfg.ReactionVocab {
		t.Errorf("reaction vocabulary %d exceeds config %d", len(reacs), cfg.ReactionVocab)
	}
}

func TestPlantedSignalPresent(t *testing.T) {
	cfg := tinyConfig(11)
	cfg.Reports = 3000
	cfg.ExposureRate = 0.08
	q, gt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := q.Reports()

	// Pick the aspirin+warfarin interaction from the ground truth.
	var inter *Interaction
	for i := range gt.Interactions {
		if knowledge.DrugKey(gt.Interactions[i].Drugs) == "ASPIRIN+WARFARIN" {
			inter = &gt.Interactions[i]
			break
		}
	}
	if inter == nil {
		t.Skip("aspirin+warfarin not in planted set")
	}
	both, bothWithReac, soloA, soloAWithReac := 0, 0, 0, 0
	for _, r := range reports {
		has := map[string]bool{}
		for _, d := range r.Drugs {
			has[cleaning.NormalizeDrug(d)] = true
		}
		reac := false
		for _, rc := range r.Reactions {
			if rc == inter.Reactions[0] {
				reac = true
			}
		}
		if has["ASPIRIN"] && has["WARFARIN"] {
			both++
			if reac {
				bothWithReac++
			}
		} else if has["ASPIRIN"] {
			soloA++
			if reac {
				soloAWithReac++
			}
		}
	}
	if both < 5 {
		t.Fatalf("only %d co-exposure reports; exposure machinery broken", both)
	}
	confBoth := float64(bothWithReac) / float64(both)
	confSolo := 0.0
	if soloA > 0 {
		confSolo = float64(soloAWithReac) / float64(soloA)
	}
	if confBoth < 0.5 {
		t.Errorf("combination confidence %.2f too low; trigger machinery broken", confBoth)
	}
	if confSolo > confBoth/2 {
		t.Errorf("solo confidence %.2f not well below combination %.2f", confSolo, confBoth)
	}
}

func TestSuspectRoles(t *testing.T) {
	cfg := tinyConfig(13)
	cfg.Reports = 2500
	cfg.ExposureRate = 0.1
	cfg.MisspellRate = 0
	q, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := q.Reports()
	// Every report must have exactly one PS drug.
	withInteractionSuspects := 0
	for _, r := range reports {
		ps := 0
		for _, role := range r.DrugRoles {
			if role == "PS" {
				ps++
			}
		}
		if ps != 1 {
			t.Fatalf("report %s has %d PS drugs", r.PrimaryID, ps)
		}
		// Interaction exposures mark all interaction drugs suspect:
		// check via the aspirin+warfarin pair.
		has := map[string]bool{}
		for i, d := range r.Drugs {
			has[d+"/"+r.DrugRoles[i]] = true
		}
		if (has["ASPIRIN/PS"] || has["ASPIRIN/SS"]) && (has["WARFARIN/PS"] || has["WARFARIN/SS"]) {
			withInteractionSuspects++
		}
	}
	if withInteractionSuspects == 0 {
		t.Error("no report marks both interaction drugs as suspects")
	}
	// SuspectDrugs narrows to the suspect subset.
	for _, r := range reports[:200] {
		sus := r.SuspectDrugs()
		if len(sus) == 0 || len(sus) > len(r.Drugs) {
			t.Fatalf("SuspectDrugs = %v of %v", sus, r.Drugs)
		}
	}
}

func TestMisspellingsInjected(t *testing.T) {
	cfg := tinyConfig(5)
	cfg.MisspellRate = 0.2
	q, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count names that are within edit distance 1-2 of a much more
	// frequent name — the corrector's job downstream.
	counts := map[string]int{}
	for _, d := range q.Drugs {
		counts[d.Name]++
	}
	rare := 0
	for _, n := range counts {
		if n == 1 {
			rare++
		}
	}
	if rare == 0 {
		t.Error("no rare spellings injected at 20% misspell rate")
	}
}

func TestDuplicatesInjected(t *testing.T) {
	cfg := tinyConfig(6)
	cfg.DuplicateRate = 0.3
	q, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byCase := map[string]int{}
	for _, d := range q.Demos {
		byCase[d.CaseID]++
	}
	dups := 0
	for _, n := range byCase {
		if n > 1 {
			dups++
		}
	}
	if dups < cfg.Reports/10 {
		t.Errorf("only %d duplicated cases at 30%% duplicate rate", dups)
	}
}

func TestExpeditedShare(t *testing.T) {
	cfg := tinyConfig(9)
	q, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exp := 0
	for _, d := range q.Demos {
		if d.ReportCode == "EXP" {
			exp++
		}
	}
	share := float64(exp) / float64(len(q.Demos))
	if share < cfg.ExpeditedRate-0.1 || share > cfg.ExpeditedRate+0.1 {
		t.Errorf("EXP share = %.2f, want ~%.2f", share, cfg.ExpeditedRate)
	}
}

func TestGenerateRoundTripsThroughFAERSFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(10)
	cfg.Reports = 200
	q, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := faers.SaveQuarter(dir, q); err != nil {
		t.Fatal(err)
	}
	got, err := faers.LoadQuarter(dir, cfg.Label)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Demos) != len(q.Demos) || len(got.Drugs) != len(q.Drugs) ||
		len(got.Reacs) != len(q.Reacs) || len(got.Outcs) != len(q.Outcs) {
		t.Error("file round trip lost rows")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, _, err := Generate(Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
}

func TestGroundTruthKeys(t *testing.T) {
	gt := GroundTruth{Interactions: []Interaction{
		{Drugs: []string{"B", "A"}},
		{Drugs: []string{"C", "D"}},
	}}
	keys := gt.Keys()
	if !reflect.DeepEqual(keys, []string{"A+B", "C+D"}) {
		t.Errorf("Keys = %v", keys)
	}
}

func TestMisspellProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		name := "METHOTREXATE"
		out := misspell(rng, name)
		if d := cleaning.EditDistance(name, out); d > 2 {
			t.Fatalf("misspell distance %d for %q -> %q", d, name, out)
		}
	}
	if misspell(rng, "AB") != "AB" {
		t.Error("short names must not be misspelled")
	}
}

func TestVocabGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	names := makeDrugNames(rng, 500, map[string]bool{"ASPIRIN": true})
	seen := map[string]bool{}
	for _, n := range names {
		if n == "ASPIRIN" {
			t.Fatal("taken name regenerated")
		}
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
		if strings.TrimSpace(n) == "" {
			t.Fatal("empty name")
		}
	}
	terms := makeReactionTerms(rng, 300, nil)
	seenT := map[string]bool{}
	for _, tm := range terms {
		if seenT[tm] {
			t.Fatalf("duplicate term %q", tm)
		}
		seenT[tm] = true
	}
}

func TestZipfWeightsDecreasing(t *testing.T) {
	w := zipfWeights(100, 1.1)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatal("zipf weights must strictly decrease")
		}
	}
}
