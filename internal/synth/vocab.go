// Package synth generates synthetic FAERS quarters with planted
// drug-drug-interaction signals and ground truth. It replaces the
// real FAERS 2014 extracts the paper mined (offline substitution; see
// DESIGN.md): the generated data uses the same file layout, the same
// heavy-tailed drug/reaction popularity, correlated co-prescription
// through therapeutic classes, per-drug ADR profiles, and injected
// misspellings/duplicate reports for the cleaning stage to earn its
// keep. Planted interactions come from the curated knowledge base
// plus optional synthetic ones, giving the quantitative ground truth
// the paper's case-study validation lacked.
package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// drugSyllables compose pronounceable pseudo drug names.
var drugPrefixes = []string{
	"AB", "ACE", "ALDO", "AMO", "BEN", "CAR", "CELO", "CIPRO", "DEX",
	"DOXA", "ENO", "FENO", "GLI", "HYDRO", "IBU", "KETO", "LAMO", "LEVO",
	"METO", "NAPRO", "OLAN", "PARO", "QUETI", "RANI", "SERTRA", "TELMI",
	"URSO", "VALA", "WARFA", "XANO", "ZOLPI", "FLUVO", "PANTO", "ROSU",
}

var drugMiddles = []string{
	"", "BI", "CO", "DI", "FE", "LI", "MA", "NI", "PRA", "RO", "SA", "TRI", "VE", "XO",
}

var drugSuffixes = []string{
	"ZOLE", "PRIL", "SARTAN", "STATIN", "MYCIN", "CILLIN", "OLOL", "PINE",
	"ZEPAM", "TIDINE", "FLOXACIN", "DRONATE", "MAB", "NIB", "GLIPTIN",
	"PROFEN", "CAINE", "DOPA", "TEROL", "VIR",
}

// reactionHeads and tails compose plausible MedDRA-like preferred terms.
var reactionHeads = []string{
	"Nausea", "Dizziness", "Headache", "Fatigue", "Rash", "Pruritus",
	"Vomiting", "Diarrhoea", "Constipation", "Insomnia", "Anxiety",
	"Dyspnoea", "Oedema peripheral", "Pain", "Arthralgia", "Myalgia",
	"Pyrexia", "Anaemia", "Hypertension", "Hypotension", "Tachycardia",
	"Bradycardia", "Syncope", "Tremor", "Somnolence", "Dry mouth",
	"Abdominal pain", "Back pain", "Chest pain", "Cough", "Asthenia",
	"Malaise", "Weight decreased", "Weight increased", "Alopecia",
	"Hyperhidrosis", "Palpitations", "Vision blurred", "Tinnitus",
	"Depression", "Confusional state", "Fall", "Drug ineffective",
	"Drug interaction", "Osteoporosis", "Osteoarthritis", "Neuropathy peripheral",
	"Osteonecrosis of jaw", "Acute renal failure", "Haemorrhage", "Asthma",
	"Hyperkalaemia", "Rhabdomyolysis", "Serotonin syndrome", "Hypoglycaemia",
	"Blood glucose increased", "Lactic acidosis", "Pancytopenia",
	"Bone marrow failure", "Lithium toxicity", "Cardiac arrest",
	"Toxicity to various agents",
}

var reactionQualifiers = []string{
	"aggravated", "postoperative", "chronic", "acute", "recurrent",
	"neonatal", "exertional", "nocturnal",
}

// makeDrugNames returns n distinct pseudo drug names, deterministic
// under rng, excluding any name in taken.
func makeDrugNames(rng *rand.Rand, n int, taken map[string]bool) []string {
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		name := drugPrefixes[rng.Intn(len(drugPrefixes))] +
			drugMiddles[rng.Intn(len(drugMiddles))] +
			drugSuffixes[rng.Intn(len(drugSuffixes))]
		if seen[name] || taken[name] {
			// Disambiguate with a numeric salt, mimicking the messy
			// verbatim names in real FAERS ("DRUG /00032601/").
			name = fmt.Sprintf("%s %d", name, rng.Intn(90)+10)
			if seen[name] || taken[name] {
				continue
			}
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}

// makeReactionTerms returns n distinct reaction terms, deterministic
// under rng, excluding any term in taken.
func makeReactionTerms(rng *rand.Rand, n int, taken map[string]bool) []string {
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for _, h := range reactionHeads {
		if len(out) >= n {
			break
		}
		if !taken[h] && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for len(out) < n {
		term := reactionHeads[rng.Intn(len(reactionHeads))] + " " +
			reactionQualifiers[rng.Intn(len(reactionQualifiers))]
		if seen[term] || taken[term] {
			term = fmt.Sprintf("%s type %d", term, rng.Intn(9)+1)
			if seen[term] || taken[term] {
				continue
			}
		}
		seen[term] = true
		out = append(out, term)
	}
	return out
}

// zipfWeights returns weights w_i ∝ 1/(i+1)^s for i in [0,n).
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// ZipfSampler draws rank indices in [0,n) from the same truncated
// zipf popularity the generator gives drugs and reactions, exported
// so consumers synthesizing correlated populations (e.g. watchlist
// benchmarks skewed toward popular drugs) share the generator's
// distribution instead of reimplementing it.
type ZipfSampler struct {
	cum []float64
}

// NewZipfSampler builds a sampler over n ranks with exponent s
// (s > 0; larger s concentrates more mass on the head ranks).
func NewZipfSampler(n int, s float64) *ZipfSampler {
	w := zipfWeights(n, s)
	cum := make([]float64, n)
	total := 0.0
	for i, wi := range w {
		total += wi
		cum[i] = total
	}
	return &ZipfSampler{cum: cum}
}

// Sample draws one rank index using rng.
func (z *ZipfSampler) Sample(rng *rand.Rand) int {
	return sampleCum(rng, z.cum)
}
