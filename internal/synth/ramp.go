package synth

import (
	"fmt"
	"strconv"
	"strings"
)

// rampBase is the exposure-rate ramp the surveillance experiments
// use: a newly co-marketed drug pair gaining use quarter over quarter,
// from below the reporting threshold to well above it.
var rampBase = []float64{0.004, 0.012, 0.03, 0.045}

// rampCap bounds the extrapolated exposure rate: real co-prescription
// saturates, and the generator's per-report interaction draw must stay
// a small fraction of the population.
const rampCap = 0.25

// RampRates returns n exposure rates that ramp interaction exposure
// up across consecutive quarters. The first four quarters use the
// canonical surveillance ramp; longer horizons extend it linearly by
// the final increment, capped at rampCap.
func RampRates(n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	last := len(rampBase) - 1
	step := rampBase[last] - rampBase[last-1]
	for i := range out {
		if i < len(rampBase) {
			out[i] = rampBase[i]
			continue
		}
		r := rampBase[last] + float64(i-last)*step
		if r > rampCap {
			r = rampCap
		}
		out[i] = r
	}
	return out
}

// QuarterSequence returns n consecutive quarter labels starting at
// start (e.g. "2014Q1"), rolling Q4 into the next year's Q1.
func QuarterSequence(start string, n int) ([]string, error) {
	year, q, err := parseQuarterLabel(start)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%04dQ%d", year, q))
		q++
		if q > 4 {
			q = 1
			year++
		}
	}
	return out, nil
}

func parseQuarterLabel(label string) (year, quarter int, err error) {
	y, qs, ok := strings.Cut(label, "Q")
	if !ok {
		return 0, 0, fmt.Errorf("synth: quarter label %q is not YYYYQn", label)
	}
	year, err = strconv.Atoi(y)
	if err != nil {
		return 0, 0, fmt.Errorf("synth: quarter label %q is not YYYYQn", label)
	}
	quarter, err = strconv.Atoi(qs)
	if err != nil || quarter < 1 || quarter > 4 {
		return 0, 0, fmt.Errorf("synth: quarter label %q is not YYYYQn", label)
	}
	return year, quarter, nil
}
