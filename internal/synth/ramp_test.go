package synth

import (
	"reflect"
	"testing"
)

func TestRampRatesBaseAndExtension(t *testing.T) {
	if got := RampRates(0); got != nil {
		t.Errorf("RampRates(0) = %v, want nil", got)
	}
	if got := RampRates(4); !reflect.DeepEqual(got, []float64{0.004, 0.012, 0.03, 0.045}) {
		t.Errorf("RampRates(4) = %v", got)
	}
	// A shorter horizon is a prefix of the base ramp.
	if got := RampRates(2); !reflect.DeepEqual(got, []float64{0.004, 0.012}) {
		t.Errorf("RampRates(2) = %v", got)
	}
	long := RampRates(30)
	if len(long) != 30 {
		t.Fatalf("len = %d", len(long))
	}
	for i := 1; i < len(long); i++ {
		if long[i] < long[i-1] {
			t.Fatalf("ramp decreases at %d: %v", i, long)
		}
	}
	// Extrapolation continues past the base but saturates at the cap.
	if long[4] <= long[3] {
		t.Errorf("no growth past the base ramp: %v", long[:6])
	}
	if last := long[len(long)-1]; last != rampCap {
		t.Errorf("long ramp tops out at %v, want cap %v", last, rampCap)
	}
}

func TestQuarterSequence(t *testing.T) {
	got, err := QuarterSequence("2014Q3", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"2014Q3", "2014Q4", "2015Q1", "2015Q2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sequence = %v, want %v", got, want)
	}
	for _, bad := range []string{"2014", "2014Q5", "2014Q0", "Q1", "20x4Q1"} {
		if _, err := QuarterSequence(bad, 2); err == nil {
			t.Errorf("QuarterSequence(%q) accepted", bad)
		}
	}
}
