package mcac

import (
	"fmt"
	"math/rand"
	"testing"

	"maras/internal/assoc"
	"maras/internal/txdb"
	"maras/internal/types"
)

// randomDB builds a random report database with nDrugs drugs and
// nReacs reactions.
func randomDB(t testing.TB, rng *rand.Rand, nDrugs, nReacs, nTx int) *txdb.DB {
	t.Helper()
	dict := types.NewDictionary()
	drugs := make([]types.Item, nDrugs)
	for i := range drugs {
		drugs[i] = dict.Intern(fmt.Sprintf("D%d", i), types.DomainDrug)
	}
	reacs := make([]types.Item, nReacs)
	for i := range reacs {
		reacs[i] = dict.Intern(fmt.Sprintf("r%d", i), types.DomainReaction)
	}
	db := txdb.New(dict)
	for i := 0; i < nTx; i++ {
		var items types.Itemset
		for _, d := range drugs {
			if rng.Float64() < 0.35 {
				items = append(items, d)
			}
		}
		for _, r := range reacs {
			if rng.Float64() < 0.3 {
				items = append(items, r)
			}
		}
		if len(items) == 0 {
			items = append(items, drugs[rng.Intn(nDrugs)])
		}
		db.Add(fmt.Sprintf("t%d", i), items.Normalize())
	}
	db.Freeze()
	return db
}

// Invariant: for every contextual rule X ⇒ B of a target A ⇒ B with
// X ⊂ A, support is anti-monotone — sup(X ∪ B) ≥ sup(A ∪ B) and
// sup(X) ≥ sup(A).
func TestContextSupportAntiMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(t, rng, 5, 4, 60)
		dict := db.Dict()
		// Build targets from all 2-3 drug combos with any reaction pair.
		var drugs, reacs types.Itemset
		for it := types.Item(0); int(it) < dict.Len(); it++ {
			if dict.IsDrug(it) {
				drugs = append(drugs, it)
			} else {
				reacs = append(reacs, it)
			}
		}
		for k := 2; k <= 3; k++ {
			drugs.SubsetsOfSize(k, func(ant types.Itemset) bool {
				target := assoc.Evaluate(db, ant.Clone(), types.Itemset{reacs[0]})
				if target.Support == 0 {
					return true
				}
				c := Build(db, target)
				for _, cr := range c.ContextRules() {
					if cr.Support < target.Support {
						t.Fatalf("anti-monotonicity violated: sup(%v∪B)=%d < sup(%v∪B)=%d",
							cr.Antecedent, cr.Support, target.Antecedent, target.Support)
					}
					if cr.AntSupport < target.AntSupport {
						t.Fatalf("antecedent support anti-monotonicity violated")
					}
				}
				return true
			})
		}
	}
}

// Invariant: every contextual confidence is well-defined in [0,1] and
// lift is non-negative, over random databases.
func TestContextMeasureBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		db := randomDB(t, rng, 6, 3, 50)
		dict := db.Dict()
		var drugs, reacs types.Itemset
		for it := types.Item(0); int(it) < dict.Len(); it++ {
			if dict.IsDrug(it) {
				drugs = append(drugs, it)
			} else {
				reacs = append(reacs, it)
			}
		}
		drugs.SubsetsOfSize(3, func(ant types.Itemset) bool {
			target := assoc.Evaluate(db, ant.Clone(), types.NewItemset(reacs[0], reacs[1]))
			c := Build(db, target)
			for _, cr := range append(c.ContextRules(), c.Target) {
				if cr.Confidence < 0 || cr.Confidence > 1 {
					t.Fatalf("confidence %v out of range for %s", cr.Confidence, cr.Key())
				}
				if cr.Lift < 0 {
					t.Fatalf("negative lift for %s", cr.Key())
				}
			}
			return true
		})
	}
}
