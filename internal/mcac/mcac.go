// Package mcac builds Multi-level Contextual Association Clusters
// (Section 3.5): each multi-drug target rule A ⇒ B grouped with all of
// its contextual rules X ⇒ B for every proper non-empty X ⊂ A, layered
// by antecedent cardinality |X|. The cluster is the unit that the
// exclusiveness measure (package rank) scores and the contextual glyph
// (package glyph) draws.
package mcac

import (
	"sort"

	"maras/internal/assoc"
	"maras/internal/txdb"
	"maras/internal/types"
)

// Level groups the contextual rules whose antecedents share a
// cardinality.
type Level struct {
	// Cardinality is the number of drugs in each rule's antecedent.
	Cardinality int
	// Rules are the contextual rules at this level, sorted by
	// descending confidence (the glyph's within-band ordering).
	Rules []assoc.Rule
}

// Cluster is one target rule with its full context.
type Cluster struct {
	Target assoc.Rule
	// Levels holds the contextual levels ordered by descending
	// cardinality: Levels[0] has |A|−1 drugs per rule, the last level
	// has single-drug rules. (Table 3.1 lays them out this way.)
	Levels []Level
}

// DrugCount returns the number of drugs in the target antecedent.
func (c *Cluster) DrugCount() int { return len(c.Target.Antecedent) }

// ContextSize returns the total number of contextual rules, which for
// an n-drug target is always 2^n − 2.
func (c *Cluster) ContextSize() int {
	n := 0
	for _, l := range c.Levels {
		n += len(l.Rules)
	}
	return n
}

// LevelFor returns the level holding rules with k-drug antecedents,
// or nil if out of range.
func (c *Cluster) LevelFor(k int) *Level {
	for i := range c.Levels {
		if c.Levels[i].Cardinality == k {
			return &c.Levels[i]
		}
	}
	return nil
}

// ContextRules flattens all contextual rules, highest cardinality
// first, each level ordered by descending confidence — the exact
// clockwise layout order of the contextual glyph (Section 4).
func (c *Cluster) ContextRules() []assoc.Rule {
	out := make([]assoc.Rule, 0, c.ContextSize())
	for _, l := range c.Levels {
		out = append(out, l.Rules...)
	}
	return out
}

// Build constructs the cluster for the target rule against db. Every
// proper non-empty subset X of the antecedent contributes exactly one
// contextual rule X ⇒ B with measures evaluated exactly (Definition
// 3.5.2: the context covers the whole power set minus the full
// antecedent and the empty set).
func Build(db *txdb.DB, target assoc.Rule) Cluster {
	n := len(target.Antecedent)
	c := Cluster{Target: target}
	if n < 2 {
		return c
	}
	byCard := make(map[int][]assoc.Rule, n-1)
	target.Antecedent.ProperSubsets(func(sub types.Itemset) bool {
		r := assoc.Evaluate(db, sub.Clone(), target.Consequent)
		byCard[len(sub)] = append(byCard[len(sub)], r)
		return true
	})
	for k := n - 1; k >= 1; k-- {
		rules := byCard[k]
		sort.Slice(rules, func(i, j int) bool {
			if rules[i].Confidence != rules[j].Confidence {
				return rules[i].Confidence > rules[j].Confidence
			}
			return rules[i].Key() < rules[j].Key()
		})
		c.Levels = append(c.Levels, Level{Cardinality: k, Rules: rules})
	}
	return c
}

// BuildAll constructs a cluster per target rule. Single-drug rules are
// skipped (they have no context and signal no interaction).
func BuildAll(db *txdb.DB, targets []assoc.Rule) []Cluster {
	out := make([]Cluster, 0, len(targets))
	for _, r := range targets {
		if len(r.Antecedent) < 2 {
			continue
		}
		out = append(out, Build(db, r))
	}
	return out
}

// ConfidencesByLevel returns, per level (highest cardinality first),
// the contextual confidence values — the v_k vectors of Formula 3.5.
func (c *Cluster) ConfidencesByLevel() [][]float64 {
	return c.valuesByLevel(assoc.MeasureConfidence)
}

// ValuesByLevel returns the contextual values of measure m per level,
// highest cardinality first.
func (c *Cluster) ValuesByLevel(m assoc.Measure) [][]float64 {
	return c.valuesByLevel(m)
}

func (c *Cluster) valuesByLevel(m assoc.Measure) [][]float64 {
	out := make([][]float64, len(c.Levels))
	for i, l := range c.Levels {
		vals := make([]float64, len(l.Rules))
		for j := range l.Rules {
			vals[j] = m.Value(&l.Rules[j])
		}
		out[i] = vals
	}
	return out
}
