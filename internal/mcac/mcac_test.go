package mcac

import (
	"fmt"
	"math/rand"
	"testing"

	"maras/internal/assoc"
	"maras/internal/txdb"
	"maras/internal/types"
)

// xolairFixture models Table 3.1's cluster: a three-drug target
// [XOLAIR][SINGULAIR][PREDNISONE] => [Asthma] with all 6 contextual
// rules present in the data.
func xolairFixture(t testing.TB) (*txdb.DB, assoc.Rule) {
	t.Helper()
	dict := types.NewDictionary()
	x := dict.Intern("XOLAIR", types.DomainDrug)
	s := dict.Intern("SINGULAIR", types.DomainDrug)
	p := dict.Intern("PREDNISONE", types.DomainDrug)
	asthma := dict.Intern("Asthma", types.DomainReaction)
	other := dict.Intern("Cough", types.DomainReaction)

	db := txdb.New(dict)
	// Triple co-occurs with asthma strongly.
	for i := 0; i < 8; i++ {
		db.Add(fmt.Sprintf("t%d", i), types.NewItemset(x, s, p, asthma))
	}
	// Individual drugs mostly without asthma.
	for i := 0; i < 10; i++ {
		db.Add(fmt.Sprintf("x%d", i), types.NewItemset(x, other))
		db.Add(fmt.Sprintf("s%d", i), types.NewItemset(s, other))
		db.Add(fmt.Sprintf("p%d", i), types.NewItemset(p, other))
	}
	// A few pair reports with asthma to populate level 2.
	db.Add("xs", types.NewItemset(x, s, asthma))
	db.Add("xp", types.NewItemset(x, p, other))
	db.Freeze()

	target := assoc.Evaluate(db, types.NewItemset(x, s, p), types.NewItemset(asthma))
	return db, target
}

func TestBuildClusterShape(t *testing.T) {
	db, target := xolairFixture(t)
	c := Build(db, target)

	if c.DrugCount() != 3 {
		t.Fatalf("DrugCount = %d, want 3", c.DrugCount())
	}
	if got := c.ContextSize(); got != 6 { // 2^3 - 2
		t.Fatalf("ContextSize = %d, want 6", got)
	}
	if len(c.Levels) != 2 {
		t.Fatalf("Levels = %d, want 2", len(c.Levels))
	}
	if c.Levels[0].Cardinality != 2 || c.Levels[1].Cardinality != 1 {
		t.Errorf("level order = %d,%d, want 2,1 (descending)", c.Levels[0].Cardinality, c.Levels[1].Cardinality)
	}
	if len(c.Levels[0].Rules) != 3 || len(c.Levels[1].Rules) != 3 {
		t.Errorf("level sizes = %d,%d, want 3,3", len(c.Levels[0].Rules), len(c.Levels[1].Rules))
	}
}

func TestContextRulesShareConsequent(t *testing.T) {
	db, target := xolairFixture(t)
	c := Build(db, target)
	for _, r := range c.ContextRules() {
		if !r.Consequent.Equal(target.Consequent) {
			t.Errorf("context rule %s has different consequent", r.Key())
		}
		if !target.Antecedent.ProperSupersetOf(r.Antecedent) {
			t.Errorf("context antecedent %v not a proper subset of target", r.Antecedent)
		}
	}
}

func TestContextCoversPowerSet(t *testing.T) {
	db, target := xolairFixture(t)
	c := Build(db, target)
	seen := map[string]bool{}
	for _, r := range c.ContextRules() {
		if seen[r.Antecedent.Key()] {
			t.Errorf("duplicate context antecedent %v", r.Antecedent)
		}
		seen[r.Antecedent.Key()] = true
	}
	// Definition 3.5.2: antecedents = P(A) minus {A, ∅}.
	want := 0
	target.Antecedent.ProperSubsets(func(sub types.Itemset) bool {
		want++
		if !seen[sub.Key()] {
			t.Errorf("missing context antecedent %v", sub)
		}
		return true
	})
	if len(seen) != want {
		t.Errorf("context size %d, want %d", len(seen), want)
	}
}

func TestLevelOrderingByConfidence(t *testing.T) {
	db, target := xolairFixture(t)
	c := Build(db, target)
	for _, l := range c.Levels {
		for i := 1; i < len(l.Rules); i++ {
			if l.Rules[i].Confidence > l.Rules[i-1].Confidence {
				t.Errorf("level %d not sorted by confidence desc", l.Cardinality)
			}
		}
	}
}

func TestLevelFor(t *testing.T) {
	db, target := xolairFixture(t)
	c := Build(db, target)
	if l := c.LevelFor(2); l == nil || l.Cardinality != 2 {
		t.Error("LevelFor(2) wrong")
	}
	if l := c.LevelFor(99); l != nil {
		t.Error("LevelFor(99) should be nil")
	}
}

func TestSingleDrugTargetHasNoContext(t *testing.T) {
	db, target := xolairFixture(t)
	single := assoc.Evaluate(db, target.Antecedent[:1], target.Consequent)
	c := Build(db, single)
	if c.ContextSize() != 0 || len(c.Levels) != 0 {
		t.Errorf("single-drug cluster has context: %+v", c)
	}
}

func TestBuildAllSkipsSingles(t *testing.T) {
	db, target := xolairFixture(t)
	single := assoc.Evaluate(db, target.Antecedent[:1], target.Consequent)
	out := BuildAll(db, []assoc.Rule{target, single})
	if len(out) != 1 {
		t.Fatalf("BuildAll kept %d clusters, want 1", len(out))
	}
	if !out[0].Target.Antecedent.Equal(target.Antecedent) {
		t.Error("wrong cluster kept")
	}
}

func TestConfidencesByLevel(t *testing.T) {
	db, target := xolairFixture(t)
	c := Build(db, target)
	vals := c.ConfidencesByLevel()
	if len(vals) != 2 {
		t.Fatalf("levels = %d", len(vals))
	}
	for i, l := range c.Levels {
		if len(vals[i]) != len(l.Rules) {
			t.Errorf("level %d: %d values, %d rules", i, len(vals[i]), len(l.Rules))
		}
		for j, r := range l.Rules {
			if vals[i][j] != r.Confidence {
				t.Errorf("value mismatch at level %d rule %d", i, j)
			}
		}
	}
	liftVals := c.ValuesByLevel(assoc.MeasureLift)
	for i, l := range c.Levels {
		for j, r := range l.Rules {
			if liftVals[i][j] != r.Lift {
				t.Errorf("lift mismatch at level %d rule %d", i, j)
			}
		}
	}
}

// Property: for random antecedent sizes n in 2..5, context size is
// 2^n − 2 and every level k has C(n,k) rules.
func TestContextSizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		dict := types.NewDictionary()
		drugs := make([]types.Item, n)
		for i := range drugs {
			drugs[i] = dict.Intern(fmt.Sprintf("D%d", i), types.DomainDrug)
		}
		adr := dict.Intern("ADR", types.DomainReaction)
		db := txdb.New(dict)
		full := types.NewItemset(append(append([]types.Item{}, drugs...), adr)...)
		db.Add("r0", full)
		db.Freeze()

		target := assoc.Evaluate(db, types.NewItemset(drugs...), types.NewItemset(adr))
		c := Build(db, target)
		if got, want := c.ContextSize(), (1<<uint(n))-2; got != want {
			t.Fatalf("n=%d: context size %d, want %d", n, got, want)
		}
		binom := func(n, k int) int {
			r := 1
			for i := 0; i < k; i++ {
				r = r * (n - i) / (i + 1)
			}
			return r
		}
		for _, l := range c.Levels {
			if got, want := len(l.Rules), binom(n, l.Cardinality); got != want {
				t.Fatalf("n=%d level %d: %d rules, want %d", n, l.Cardinality, got, want)
			}
		}
	}
}
