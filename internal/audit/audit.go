// Package audit watches the *outputs* of the MARAS pipeline the way
// package obs watches its runtime. Surveillance lives or dies on the
// quality of each ingested FAERS quarter and the stability of the
// signal rankings across quarters, so the package provides three
// pillars:
//
//   - Ingest quality: a QualityReport per quarter (drop/dedup/empty
//     rates from the cleaning stats, drug/ADR cardinality, dictionary
//     size, support and score distributions as fixed-bucket
//     histograms) with rule-based verdicts — ok/warn/fail — evaluated
//     against configurable Thresholds and the trailing quarters.
//   - Cross-quarter drift: a DriftReport diffing two quarters' ranked
//     top-K signal sets — new/dropped/persisting signals, per-signal
//     support and exclusiveness-score deltas, churn rate, and a
//     Spearman-style rank-displacement gauge.
//   - An alerting event Log: a fixed-size ring of structured events
//     (quality findings, drift breaches, runtime watchdog excursions)
//     with per-rule Prometheus counters, slog mirroring, and the
//     /debug/audit operator timeline.
//
// The package is stdlib-only and computes from completed
// core.Analysis / trend.Analysis values; it never touches the miners.
package audit

// Severity grades a finding or event. The order is
// ok < info < warn < fail.
type Severity string

const (
	SevOK   Severity = "ok"
	SevInfo Severity = "info"
	SevWarn Severity = "warn"
	SevFail Severity = "fail"
)

// sevRank orders severities for max-verdict folding.
func sevRank(s Severity) int {
	switch s {
	case SevFail:
		return 3
	case SevWarn:
		return 2
	case SevInfo:
		return 1
	default:
		return 0
	}
}

// MaxSeverity returns the more severe of a and b.
func MaxSeverity(a, b Severity) Severity {
	if sevRank(b) > sevRank(a) {
		return b
	}
	return a
}

// Audit rule names — the "rule" label on maras_audit_events_total and
// the Rule field of findings and events.
const (
	// RuleDropRate fires when a quarter's cleaning drop rate is high
	// in absolute terms (warn at Thresholds.DropWarn, fail at
	// DropFail): the ingest threw most of the quarter away.
	RuleDropRate = "drop_rate"
	// RuleDropSpike fires when the drop rate jumps against the
	// trailing-quarter mean — the classic malformed-extract signature.
	RuleDropSpike = "drop_spike"
	// RuleEmptyRate fires when too many reports arrive without drugs
	// or reactions (empty transactions after cleaning).
	RuleEmptyRate = "empty_rate"
	// RuleNoSignals fires when a quarter with usable reports yields
	// zero ranked signals.
	RuleNoSignals = "no_signals"
	// RuleCardinality fires when drug or reaction cardinality
	// collapses against the trailing mean (a truncated DRUG/REAC file
	// parses fine but carries a fraction of the vocabulary).
	RuleCardinality = "cardinality_collapse"
	// RuleDictShrink fires when the dictionary is much smaller than
	// the previous quarter's.
	RuleDictShrink = "dict_shrink"
	// RuleVolume fires when report volume swings far outside the
	// trailing mean in either direction.
	RuleVolume = "report_volume"
	// RuleChurn fires when the fraction of top-K signals that changed
	// between adjacent quarters exceeds Thresholds.ChurnWarn.
	RuleChurn = "signal_churn"
	// RuleRankShift fires when the normalized rank displacement of
	// persisting top-K signals exceeds Thresholds.RankShiftWarn.
	RuleRankShift = "rank_shift"
	// RuleSignalLost fires when a leading (top-10) signal of the
	// earlier quarter is absent from the later one — the "known
	// interaction silently vanished" alarm.
	RuleSignalLost = "signal_lost"
)

// Finding is one rule evaluation that did not come back clean.
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	// Value and Limit expose the measured quantity and the threshold
	// it was held against, so dashboards need not parse Message.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
	// Subject optionally identifies the specific entity the finding is
	// about (for signal_lost, the lost signal's drug-combination key);
	// it is copied onto the emitted Event so subscribers can route
	// per-entity without parsing Message.
	Subject string `json:"subject,omitempty"`
}

// Thresholds configures every audit rule. The zero value of any field
// means "use the default"; obtain a fully-populated set with
// DefaultThresholds, or adjust individual fields and normalize via
// withDefaults at evaluation time.
type Thresholds struct {
	// TopK bounds the per-quarter ranked set compared by drift
	// detection (0 is replaced by the default; use a negative value
	// for "all signals").
	TopK int
	// Trailing is how many preceding quarters feed the relative
	// quality rules.
	Trailing int

	// DropWarn / DropFail grade the absolute cleaning drop rate.
	DropWarn float64
	DropFail float64
	// DropSpike is the warn margin over the trailing mean drop rate.
	DropSpike float64
	// EmptyWarn grades the empty-transaction rate.
	EmptyWarn float64
	// CollapseRatio: cardinality below this fraction of the trailing
	// mean warns.
	CollapseRatio float64
	// VolumeSwing: report volume below mean*VolumeSwing or above
	// mean/VolumeSwing warns.
	VolumeSwing float64

	// ChurnWarn grades the drift churn rate, RankShiftWarn the
	// normalized rank displacement.
	ChurnWarn     float64
	RankShiftWarn float64
}

// DefaultThresholds returns the shipped alert thresholds (see README
// "Operating MARAS" for the rule reference).
func DefaultThresholds() Thresholds {
	return Thresholds{
		TopK:          25,
		Trailing:      3,
		DropWarn:      0.60,
		DropFail:      0.90,
		DropSpike:     0.15,
		EmptyWarn:     0.25,
		CollapseRatio: 0.5,
		VolumeSwing:   0.5,
		ChurnWarn:     0.5,
		RankShiftWarn: 0.35,
	}
}

// withDefaults fills zero fields from DefaultThresholds so partially
// configured thresholds behave.
func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.TopK == 0 {
		t.TopK = d.TopK
	}
	if t.TopK < 0 {
		t.TopK = 0 // explicit "all signals"
	}
	if t.Trailing == 0 {
		t.Trailing = d.Trailing
	}
	if t.DropWarn == 0 {
		t.DropWarn = d.DropWarn
	}
	if t.DropFail == 0 {
		t.DropFail = d.DropFail
	}
	if t.DropSpike == 0 {
		t.DropSpike = d.DropSpike
	}
	if t.EmptyWarn == 0 {
		t.EmptyWarn = d.EmptyWarn
	}
	if t.CollapseRatio == 0 {
		t.CollapseRatio = d.CollapseRatio
	}
	if t.VolumeSwing == 0 {
		t.VolumeSwing = d.VolumeSwing
	}
	if t.ChurnWarn == 0 {
		t.ChurnWarn = d.ChurnWarn
	}
	if t.RankShiftWarn == 0 {
		t.RankShiftWarn = d.RankShiftWarn
	}
	return t
}
