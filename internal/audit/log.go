package audit

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"maras/internal/obs"
)

// DefaultLogCapacity is how many events the ring buffer holds when
// LogOptions.Capacity is unset.
const DefaultLogCapacity = 256

// Event is one entry on the operator timeline: a quality finding, a
// drift breach, or a runtime watchdog excursion.
type Event struct {
	Time     time.Time `json:"time"`
	Rule     string    `json:"rule"`
	Severity Severity  `json:"severity"`
	// Scope names what the event is about: a quarter label, a
	// "from->to" quarter pair, or "runtime" for watchdog events.
	Scope   string `json:"scope,omitempty"`
	Message string `json:"message"`
	// Subject optionally carries the machine-readable identity the
	// event is about — for signal_lost drift events the canonical
	// drug-combination key — so subscribers can route the event
	// without parsing Message.
	Subject string `json:"subject,omitempty"`
}

// LogOptions configures NewLog. Every field is optional.
type LogOptions struct {
	// Capacity bounds the ring (<= 0 = DefaultLogCapacity).
	Capacity int
	// Logger mirrors every recorded event to slog (warn/fail at
	// Warn/Error level, the rest at Info).
	Logger *slog.Logger
	// Metrics counts events on maras_audit_events_total{rule,severity}.
	Metrics *obs.Registry
	// Now stubs the clock in tests; defaults to time.Now.
	Now func() time.Time
}

// Log is a fixed-size, lock-protected ring buffer of audit events —
// the single operator timeline behind /debug/audit. A nil *Log is safe
// and records nothing (auditing disabled).
type Log struct {
	mu       sync.Mutex
	capacity int
	now      func() time.Time
	logger   *slog.Logger
	metrics  *obs.Registry
	ring     []Event // oldest..newest, up to capacity
	next     int     // ring write cursor once full
	full     bool
	total    uint64
	evicted  uint64       // events overwritten by the full ring
	evictedC *obs.Counter // mirror of evicted; nil without Metrics
	bySev    map[Severity]uint64
	seen     map[string]bool // RecordOnce dedup keys
	subs     []func(Event)   // OnRecord subscribers, append-only
}

// NewLog builds an event log.
func NewLog(opts LogOptions) *Log {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultLogCapacity
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	l := &Log{
		capacity: opts.Capacity,
		now:      opts.Now,
		logger:   opts.Logger,
		metrics:  opts.Metrics,
		ring:     make([]Event, 0, opts.Capacity),
		bySev:    make(map[Severity]uint64),
		seen:     make(map[string]bool),
	}
	if opts.Metrics != nil {
		// Registered eagerly so the series exists (at zero) from the
		// first scrape; silent event loss must be visible, not latent.
		l.evictedC = opts.Metrics.Counter("maras_audit_events_evicted_total",
			"Audit events overwritten by the fixed-size event-log ring.")
	}
	return l
}

// Record appends an event, stamping Time when unset, bumping the
// per-rule counter, and mirroring to slog. Nil logs drop the event.
func (l *Log) Record(e Event) {
	if l == nil {
		return
	}
	if e.Severity == "" {
		e.Severity = SevInfo
	}
	if e.Time.IsZero() {
		e.Time = l.now()
	}
	l.mu.Lock()
	if len(l.ring) < l.capacity {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % l.capacity
		l.full = true
		l.evicted++
		if l.evictedC != nil {
			l.evictedC.Inc()
		}
	}
	l.total++
	l.bySev[e.Severity]++
	subs := l.subs
	l.mu.Unlock()

	// Subscribers run outside the lock (mirroring the watchdog's
	// OnViolation contract): they may query the log or record further
	// events, but a subscriber that re-enters Record sees its own event
	// delivered recursively, so event-producing subscribers must guard
	// against feeding on their own output. The subs slice is append-
	// only, so the snapshot taken under the lock stays valid here.
	for _, fn := range subs {
		fn(e)
	}

	if l.metrics != nil {
		l.metrics.Counter("maras_audit_events_total",
			"Audit events recorded, by rule and severity.",
			obs.L("rule", e.Rule, "severity", string(e.Severity))...).Inc()
	}
	if l.logger != nil {
		lvl := slog.LevelInfo
		switch e.Severity {
		case SevWarn:
			lvl = slog.LevelWarn
		case SevFail:
			lvl = slog.LevelError
		}
		l.logger.Log(context.Background(), lvl, "audit event",
			"rule", e.Rule, "severity", string(e.Severity),
			"scope", e.Scope, "msg", e.Message)
	}
}

// OnRecord registers fn to be called with every event the log
// records, after the event has been appended to the ring. Callbacks
// are invoked synchronously on the recording goroutine but outside
// the log's lock, so a subscriber may safely call Recent, Stats, or
// even Record without deadlocking. Events recorded concurrently may
// reach subscribers in either order; within one goroutine delivery
// follows Record order. A nil log ignores the registration.
func (l *Log) OnRecord(fn func(Event)) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	l.subs = append(l.subs, fn)
	l.mu.Unlock()
}

// RecordOnce records the event only the first time key is seen,
// reporting whether it recorded. Evaluations re-run on every request,
// so callers key on (scope, rule, severity) to emit one event per
// distinct condition rather than one per evaluation.
func (l *Log) RecordOnce(key string, e Event) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	if l.seen[key] {
		l.mu.Unlock()
		return false
	}
	l.seen[key] = true
	l.mu.Unlock()
	l.Record(e)
	return true
}

// Forget clears a RecordOnce key so the next occurrence records again
// (used when a condition resolves, e.g. a watchdog recovery).
func (l *Log) Forget(key string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	delete(l.seen, key)
	l.mu.Unlock()
}

// Recent returns up to n events, newest first. n <= 0 returns
// everything held.
func (l *Log) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if l.full {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	for a, b := 0, len(out)-1; a < b; a, b = a+1, b-1 {
		out[a], out[b] = out[b], out[a]
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// LogStats summarizes event-log activity.
type LogStats struct {
	Total    uint64 `json:"total"`
	Warn     uint64 `json:"warn"`
	Fail     uint64 `json:"fail"`
	Evicted  uint64 `json:"evicted"`
	Capacity int    `json:"capacity"`
}

// Stats returns totals since startup.
func (l *Log) Stats() LogStats {
	if l == nil {
		return LogStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		Total:    l.total,
		Warn:     l.bySev[SevWarn],
		Fail:     l.bySev[SevFail],
		Evicted:  l.evicted,
		Capacity: l.capacity,
	}
}

// Handler serves the event log at /debug/audit: a plain-text timeline
// by default, the structured dump with ?format=json. ?n=K bounds how
// many events are shown (default 50). A nil log answers 404 so the
// route can be mounted unconditionally.
func Handler(l *Log) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l == nil {
			http.Error(w, "audit log disabled", http.StatusNotFound)
			return
		}
		n := 50
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		stats := l.Stats()
		events := l.Recent(n)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Stats  LogStats `json:"stats"`
				Events []Event  `json:"events"`
			}{stats, events})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "audit log: %d events (%d warn, %d fail), ring capacity %d\n\n",
			stats.Total, stats.Warn, stats.Fail, stats.Capacity)
		for _, e := range events {
			fmt.Fprintf(w, "%s  %-4s  %-20s  %-16s  %s\n",
				e.Time.Format(time.RFC3339), e.Severity, e.Rule, e.Scope, e.Message)
		}
	})
}
