package audit

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maras/internal/obs"
)

// fakeClock hands out strictly increasing timestamps.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time {
	c.t = c.t.Add(time.Second)
	return c.t
}

func newTestLog(reg *obs.Registry) (*Log, *bytes.Buffer) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	clock := &fakeClock{t: time.Unix(1700000000, 0)}
	return NewLog(LogOptions{Capacity: 4, Logger: logger, Metrics: reg, Now: clock.Now}), &buf
}

func TestLogRecordAndRecent(t *testing.T) {
	reg := obs.NewRegistry()
	l, buf := newTestLog(reg)
	l.Record(Event{Rule: RuleDropRate, Severity: SevWarn, Scope: "2014Q1", Message: "dropped a lot"})
	l.Record(Event{Rule: RuleChurn, Severity: SevFail, Scope: "2014Q1->2014Q2", Message: "churned"})

	ev := l.Recent(0)
	if len(ev) != 2 {
		t.Fatalf("Recent = %d events, want 2", len(ev))
	}
	if ev[0].Rule != RuleChurn || ev[1].Rule != RuleDropRate {
		t.Fatalf("want newest first, got %s then %s", ev[0].Rule, ev[1].Rule)
	}
	if ev[0].Time.IsZero() || !ev[0].Time.After(ev[1].Time) {
		t.Fatalf("timestamps not stamped/ordered: %v vs %v", ev[0].Time, ev[1].Time)
	}
	st := l.Stats()
	if st.Total != 2 || st.Warn != 1 || st.Fail != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// slog mirroring at mapped levels.
	logged := buf.String()
	if !strings.Contains(logged, "level=WARN") || !strings.Contains(logged, "level=ERROR") {
		t.Errorf("slog mirror missing levels:\n%s", logged)
	}
	// Counter per (rule, severity). Registry accessors are
	// get-or-create, so reading back through them sees the same series.
	got := reg.Counter("maras_audit_events_total", "",
		obs.L("rule", RuleDropRate, "severity", "warn")...).Value()
	if got != 1 {
		t.Errorf("events counter = %d, want 1", got)
	}
}

func TestLogRingWraps(t *testing.T) {
	l, _ := newTestLog(nil)
	for i := 0; i < 10; i++ {
		l.Record(Event{Rule: "r", Severity: SevInfo, Message: string(rune('a' + i))})
	}
	ev := l.Recent(0)
	if len(ev) != 4 {
		t.Fatalf("ring held %d, want capacity 4", len(ev))
	}
	if ev[0].Message != "j" || ev[3].Message != "g" {
		t.Fatalf("ring contents wrong: newest %q oldest %q", ev[0].Message, ev[3].Message)
	}
	if l.Stats().Total != 10 {
		t.Fatalf("total = %d, want 10", l.Stats().Total)
	}
}

func TestLogRecordOnce(t *testing.T) {
	l, _ := newTestLog(nil)
	e := Event{Rule: RuleDropRate, Severity: SevWarn, Scope: "Q1", Message: "x"}
	if !l.RecordOnce("k", e) {
		t.Fatal("first RecordOnce must record")
	}
	if l.RecordOnce("k", e) {
		t.Fatal("second RecordOnce must dedup")
	}
	if got := l.Stats().Total; got != 1 {
		t.Fatalf("total = %d, want 1", got)
	}
	l.Forget("k")
	if !l.RecordOnce("k", e) {
		t.Fatal("RecordOnce after Forget must record")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Record(Event{Rule: "r"})
	if l.RecordOnce("k", Event{}) {
		t.Fatal("nil log recorded")
	}
	if l.Recent(5) != nil || l.Stats().Total != 0 {
		t.Fatal("nil log returned data")
	}
	l.Forget("k")
}

func TestHandlerTextAndJSON(t *testing.T) {
	l, _ := newTestLog(nil)
	l.Record(Event{Rule: RuleChurn, Severity: SevWarn, Scope: "Q1->Q2", Message: "half the top-K churned"})

	rr := httptest.NewRecorder()
	Handler(l).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/audit", nil))
	if rr.Code != 200 {
		t.Fatalf("text status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"audit log:", RuleChurn, "warn", "Q1->Q2"} {
		if !strings.Contains(body, want) {
			t.Errorf("text body missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	Handler(l).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/audit?format=json", nil))
	var got struct {
		Stats  LogStats `json:"stats"`
		Events []Event  `json:"events"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if got.Stats.Total != 1 || len(got.Events) != 1 || got.Events[0].Rule != RuleChurn {
		t.Fatalf("json = %+v", got)
	}

	rr = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/audit", nil))
	if rr.Code != 404 {
		t.Fatalf("nil log status = %d, want 404", rr.Code)
	}
}

func TestAuditorRecordQualityDedups(t *testing.T) {
	l, _ := newTestLog(nil)
	ad := &Auditor{Log: l}
	q := &QualityReport{Label: "2014Q3", ReportsIn: 100, Reports: 30, DropRate: 0.7, Signals: 2}
	EvaluateQuality(q, nil, ad.ActiveThresholds())
	ad.RecordQuality(q)
	ad.RecordQuality(q) // re-evaluation of the same quarter
	if got := l.Stats().Total; got != 1 {
		t.Fatalf("total = %d, want 1 deduped event", got)
	}
	ev := l.Recent(1)[0]
	if ev.Rule != RuleDropRate || ev.Scope != "2014Q3" || ev.Severity != SevWarn {
		t.Fatalf("event = %+v", ev)
	}
}

func TestAuditorRecordDriftGauges(t *testing.T) {
	reg := obs.NewRegistry()
	l, _ := newTestLog(reg)
	ad := &Auditor{Log: l, Metrics: reg}
	d := &DriftReport{From: "Q1", To: "Q2", TopK: 10, New: 3, Dropped: 3, Persisting: 2, ChurnRate: 0.75, RankShift: 0.5}
	EvaluateDrift(d, ad.ActiveThresholds())
	ad.RecordDrift(d)
	if got := reg.Gauge("maras_audit_churn_permille", "", obs.L("from", "Q1", "to", "Q2")...).Value(); got != 750 {
		t.Errorf("churn gauge = %d, want 750", got)
	}
	if got := reg.Gauge("maras_audit_rank_shift_permille", "", obs.L("from", "Q1", "to", "Q2")...).Value(); got != 500 {
		t.Errorf("rank shift gauge = %d, want 500", got)
	}
	if l.Stats().Warn < 2 {
		t.Errorf("expected churn + rank shift warn events, stats %+v", l.Stats())
	}
}

func TestNilAuditorIsSafe(t *testing.T) {
	var ad *Auditor
	ad.RecordQuality(&QualityReport{Label: "Q"})
	ad.RecordDrift(&DriftReport{From: "a", To: "b"})
	ad.RecordWatchdog(obs.WatchdogEvent{Check: "goroutines", Entering: true})
	if th := ad.ActiveThresholds(); th.TopK != DefaultThresholds().TopK {
		t.Fatalf("nil auditor thresholds = %+v", th)
	}
}

func TestAuditorRecordWatchdog(t *testing.T) {
	l, _ := newTestLog(nil)
	ad := &Auditor{Log: l}
	ad.RecordWatchdog(obs.WatchdogEvent{Check: obs.WatchdogGoroutines, Entering: true, Value: 1500, Limit: 1000})
	ad.RecordWatchdog(obs.WatchdogEvent{Check: obs.WatchdogGoroutines, Entering: false, Value: 900, Limit: 1000})
	ev := l.Recent(0)
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[1].Severity != SevWarn || !strings.Contains(ev[1].Message, "1500") {
		t.Fatalf("entering event = %+v", ev[1])
	}
	if ev[0].Severity != SevInfo || !strings.Contains(ev[0].Message, "recovered") {
		t.Fatalf("recovery event = %+v", ev[0])
	}
}
