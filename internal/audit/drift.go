package audit

import (
	"fmt"
	"sort"

	"maras/internal/trend"
)

// Delta status values.
const (
	StatusNew        = "new"        // in the later quarter's top-K only
	StatusDropped    = "dropped"    // in the earlier quarter's top-K only
	StatusPersisting = "persisting" // in both
)

// SignalDelta tracks one signal across the two compared quarters.
type SignalDelta struct {
	Key    string `json:"key"`
	Status string `json:"status"`

	FromRank    int     `json:"from_rank,omitempty"`
	ToRank      int     `json:"to_rank,omitempty"`
	FromSupport int     `json:"from_support,omitempty"`
	ToSupport   int     `json:"to_support,omitempty"`
	FromScore   float64 `json:"from_score,omitempty"`
	ToScore     float64 `json:"to_score,omitempty"`

	// Deltas are later-minus-earlier and only meaningful for
	// persisting signals.
	RankDelta    int     `json:"rank_delta,omitempty"`
	SupportDelta int     `json:"support_delta,omitempty"`
	ScoreDelta   float64 `json:"score_delta,omitempty"`
}

// DriftReport diffs the ranked top-K signal sets of two quarters.
type DriftReport struct {
	From string `json:"from"`
	To   string `json:"to"`
	// TopK is the rank cutoff applied to each side (0 = unbounded).
	TopK int `json:"top_k"`

	FromSignals int `json:"from_signals"` // size of the earlier top-K set
	ToSignals   int `json:"to_signals"`   // size of the later top-K set
	New         int `json:"new"`
	Dropped     int `json:"dropped"`
	Persisting  int `json:"persisting"`

	// ChurnRate = (New+Dropped) / |union|: 0 when the sets match,
	// approaching 1 as they become disjoint.
	ChurnRate float64 `json:"churn_rate"`
	// RankShift is a Spearman-footrule-style displacement over the
	// persisting signals, normalized to 0..1 by the worst case
	// (every persisting signal moving the full top-K span).
	RankShift float64 `json:"rank_shift"`

	Deltas []SignalDelta `json:"deltas"`

	Findings []Finding `json:"findings,omitempty"`
	Verdict  Severity  `json:"verdict,omitempty"`
}

// Drift diffs quarters from and to (any two labels analyzed in ta,
// conventionally adjacent) over each quarter's top-K ranked signals.
// topK <= 0 compares the full ranked sets.
func Drift(ta *trend.Analysis, from, to string, topK int) (*DriftReport, error) {
	fi, ti := -1, -1
	for i, q := range ta.Quarters {
		switch q {
		case from:
			fi = i
		case to:
			ti = i
		}
	}
	if fi < 0 {
		return nil, fmt.Errorf("drift: quarter %q not in analysis", from)
	}
	if ti < 0 {
		return nil, fmt.Errorf("drift: quarter %q not in analysis", to)
	}
	if from == to {
		return nil, fmt.Errorf("drift: identical quarters %q", from)
	}

	d := &DriftReport{From: from, To: to, TopK: topK}
	inTop := func(p trend.Point) bool {
		return p.Signaled() && (topK <= 0 || p.Rank <= topK)
	}
	// span is the rank range a displaced signal can move across, used
	// to normalize RankShift. With a cutoff it is simply topK; without
	// one, the largest rank seen in either compared set.
	span := topK
	var displacement int
	for _, t := range ta.Trajectories {
		pf, pt := t.Points[fi], t.Points[ti]
		inFrom, inTo := inTop(pf), inTop(pt)
		if !inFrom && !inTo {
			continue
		}
		sd := SignalDelta{Key: t.Key}
		if inFrom {
			d.FromSignals++
			sd.FromRank, sd.FromSupport, sd.FromScore = pf.Rank, pf.Support, pf.Score
			if topK <= 0 && pf.Rank > span {
				span = pf.Rank
			}
		}
		if inTo {
			d.ToSignals++
			sd.ToRank, sd.ToSupport, sd.ToScore = pt.Rank, pt.Support, pt.Score
			if topK <= 0 && pt.Rank > span {
				span = pt.Rank
			}
		}
		switch {
		case inFrom && inTo:
			d.Persisting++
			sd.Status = StatusPersisting
			sd.RankDelta = pt.Rank - pf.Rank
			sd.SupportDelta = pt.Support - pf.Support
			sd.ScoreDelta = pt.Score - pf.Score
			if sd.RankDelta < 0 {
				displacement -= sd.RankDelta
			} else {
				displacement += sd.RankDelta
			}
		case inFrom:
			d.Dropped++
			sd.Status = StatusDropped
		default:
			d.New++
			sd.Status = StatusNew
		}
		d.Deltas = append(d.Deltas, sd)
	}

	if union := d.New + d.Dropped + d.Persisting; union > 0 {
		d.ChurnRate = float64(d.New+d.Dropped) / float64(union)
	}
	if d.Persisting > 0 && span > 1 {
		d.RankShift = float64(displacement) / float64(d.Persisting*(span-1))
	}

	// Most alarming first: dropped, then new, then persisting by
	// displacement magnitude; key-ordered within ties for determinism.
	statusOrder := map[string]int{StatusDropped: 0, StatusNew: 1, StatusPersisting: 2}
	sort.Slice(d.Deltas, func(i, j int) bool {
		a, b := d.Deltas[i], d.Deltas[j]
		if statusOrder[a.Status] != statusOrder[b.Status] {
			return statusOrder[a.Status] < statusOrder[b.Status]
		}
		if a.Status == StatusPersisting {
			ai, bi := abs(a.RankDelta), abs(b.RankDelta)
			if ai != bi {
				return ai > bi
			}
		}
		return a.Key < b.Key
	})
	return d, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// EvaluateDrift applies the drift alert rules and fills d.Findings and
// d.Verdict. Thresholds zero fields fall back to defaults.
func EvaluateDrift(d *DriftReport, th Thresholds) {
	th = th.withDefaults()
	d.Findings = d.Findings[:0]

	if d.ChurnRate >= th.ChurnWarn {
		d.Findings = append(d.Findings, Finding{
			Rule:     RuleChurn,
			Severity: SevWarn,
			Message: fmt.Sprintf("%.0f%% of top-%d signals churned between %s and %s (%d new, %d dropped, %d persisting)",
				100*d.ChurnRate, d.TopK, d.From, d.To, d.New, d.Dropped, d.Persisting),
			Value: d.ChurnRate,
			Limit: th.ChurnWarn,
		})
	}
	if d.RankShift >= th.RankShiftWarn {
		d.Findings = append(d.Findings, Finding{
			Rule:     RuleRankShift,
			Severity: SevWarn,
			Message: fmt.Sprintf("persisting signals shifted %.0f%% of the top-%d span between %s and %s",
				100*d.RankShift, d.TopK, d.From, d.To),
			Value: d.RankShift,
			Limit: th.RankShiftWarn,
		})
	}
	// Leading signals (top-10 of the earlier quarter) that vanished
	// outright are called out individually.
	const leading = 10
	for _, sd := range d.Deltas {
		if sd.Status == StatusDropped && sd.FromRank <= leading {
			d.Findings = append(d.Findings, Finding{
				Rule:     RuleSignalLost,
				Severity: SevWarn,
				Message: fmt.Sprintf("signal %q (rank %d in %s, support %d) absent from %s top-%d",
					sd.Key, sd.FromRank, d.From, sd.FromSupport, d.To, d.TopK),
				Value:   float64(sd.FromRank),
				Limit:   leading,
				Subject: sd.Key,
			})
		}
	}

	d.Verdict = SevOK
	for _, f := range d.Findings {
		d.Verdict = MaxSeverity(d.Verdict, f.Severity)
	}
}
