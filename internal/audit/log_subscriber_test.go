package audit

import (
	"fmt"
	"sync"
	"testing"
)

// Sequential records must reach a subscriber in Record order, with
// Time and Severity already stamped.
func TestOnRecordOrderingAndStamping(t *testing.T) {
	l := NewLog(LogOptions{})
	var got []Event
	l.OnRecord(func(e Event) { got = append(got, e) })

	for i := 0; i < 5; i++ {
		l.Record(Event{Rule: fmt.Sprintf("r%d", i)})
	}
	if len(got) != 5 {
		t.Fatalf("subscriber saw %d events, want 5", len(got))
	}
	for i, e := range got {
		if e.Rule != fmt.Sprintf("r%d", i) {
			t.Errorf("event %d: rule %q out of order", i, e.Rule)
		}
		if e.Time.IsZero() || e.Severity != SevInfo {
			t.Errorf("event %d not stamped before delivery: %+v", i, e)
		}
	}
}

// A subscriber that queries the log (Stats, Recent) or records a
// follow-up event must not deadlock: callbacks run outside the lock.
func TestOnRecordSubscriberReentersLog(t *testing.T) {
	l := NewLog(LogOptions{})
	l.OnRecord(func(e Event) {
		_ = l.Stats()
		_ = l.Recent(10)
		// One level of re-entrant Record; guarded so the recursive
		// delivery of the follow-up does not recurse forever.
		if e.Rule == "primary" {
			l.Record(Event{Rule: "followup"})
		}
	})
	l.Record(Event{Rule: "primary"})
	if st := l.Stats(); st.Total != 2 {
		t.Fatalf("total = %d, want primary + followup", st.Total)
	}
}

// Concurrent Record with a live subscriber: no deadlock, no race
// (run under -race), and every event is delivered exactly once.
func TestOnRecordConcurrent(t *testing.T) {
	l := NewLog(LogOptions{Capacity: 8})
	var mu sync.Mutex
	delivered := 0
	l.OnRecord(func(Event) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})

	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Record(Event{Rule: fmt.Sprintf("g%d", g)})
			}
		}(g)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if delivered != goroutines*per {
		t.Fatalf("delivered %d events, want %d", delivered, goroutines*per)
	}
}

// OnRecord on a nil log (auditing disabled) and nil callbacks are
// both no-ops.
func TestOnRecordNilSafe(t *testing.T) {
	var l *Log
	l.OnRecord(func(Event) { t.Fatal("nil log must not deliver") })
	l.Record(Event{Rule: "x"})

	l2 := NewLog(LogOptions{})
	l2.OnRecord(nil)
	l2.Record(Event{Rule: "y"}) // must not panic calling a nil callback
}
