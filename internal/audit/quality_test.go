package audit

import (
	"math"
	"strings"
	"testing"

	"maras/internal/cleaning"
	"maras/internal/core"
	"maras/internal/txdb"
	"maras/internal/types"
)

// analysisFixture builds a servable Analysis by hand via Rehydrate:
// 100 reports in, 80 usable (12 duplicates, 8 empty), with three
// ranked signals spanning the support/score buckets.
func analysisFixture() *core.Analysis {
	dict := types.NewDictionary()
	dict.Intern("ASPIRIN", types.DomainDrug)
	dict.Intern("WARFARIN", types.DomainDrug)
	dict.Intern("HAEMORRHAGE", types.DomainReaction)
	signals := []core.Signal{
		{Rank: 1, Score: 0.95, Support: 40, Drugs: []string{"ASPIRIN", "WARFARIN"}, Reactions: []string{"HAEMORRHAGE"}},
		{Rank: 2, Score: 0.50, Support: 9, Drugs: []string{"ASPIRIN", "IBUPROFEN"}, Reactions: []string{"DYSPEPSIA"}},
		{Rank: 3, Score: 0.10, Support: 3, Drugs: []string{"WARFARIN", "AMIODARONE"}, Reactions: []string{"INR INCREASED"}},
	}
	return core.Rehydrate(
		txdb.Stats{Reports: 80, Drugs: 120, Reactions: 90, AvgDrugs: 2.5, AvgReacs: 1.5},
		cleaning.Stats{ReportsIn: 100, ReportsOut: 80, DuplicateReports: 12, EmptyReports: 8},
		core.Counts{}, signals, dict, nil)
}

func TestComputeQuality(t *testing.T) {
	q := ComputeQuality("2014Q1", analysisFixture())
	if q.Label != "2014Q1" {
		t.Fatalf("label = %q", q.Label)
	}
	if q.ReportsIn != 100 || q.Reports != 80 {
		t.Fatalf("reports = %d/%d", q.Reports, q.ReportsIn)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if got, want := q.DropRate, 0.20; !approx(got, want) {
		t.Errorf("DropRate = %v, want %v", got, want)
	}
	if got, want := q.DedupRate, 0.12; !approx(got, want) {
		t.Errorf("DedupRate = %v, want %v", got, want)
	}
	if got, want := q.EmptyRate, 0.08; !approx(got, want) {
		t.Errorf("EmptyRate = %v, want %v", got, want)
	}
	if q.DictItems != 3 {
		t.Errorf("DictItems = %d, want 3", q.DictItems)
	}
	if q.Signals != 3 {
		t.Errorf("Signals = %d, want 3", q.Signals)
	}
	if got := q.SupportHist.Total(); got != 3 {
		t.Errorf("SupportHist.Total = %d, want 3", got)
	}
	if got := q.ScoreHist.Total(); got != 3 {
		t.Errorf("ScoreHist.Total = %d, want 3", got)
	}
	// Support 3 lands in the <=4 bucket, 9 in <=16, 40 in <=64.
	if q.SupportHist.Counts[0] != 1 || q.SupportHist.Counts[2] != 1 || q.SupportHist.Counts[4] != 1 {
		t.Errorf("SupportHist.Counts = %v", q.SupportHist.Counts)
	}
	if q.Findings != nil || q.Verdict != "" {
		t.Errorf("ComputeQuality must not evaluate: findings=%v verdict=%q", q.Findings, q.Verdict)
	}
}

func TestComputeQualityNilAnalysis(t *testing.T) {
	q := ComputeQuality("x", nil)
	if q.Signals != 0 || q.SupportHist.Total() != 0 {
		t.Fatalf("nil analysis produced observations: %+v", q)
	}
}

func TestHistObserveBoundaries(t *testing.T) {
	h := NewHist(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 1} // <=1: {0.5,1}; <=2: {1.5,2}; <=4: {4}; >4: {5}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
}

func findingRules(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Rule
	}
	return out
}

func hasRule(fs []Finding, rule string) bool {
	for _, f := range fs {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func TestEvaluateQualityAbsoluteRules(t *testing.T) {
	tests := []struct {
		name     string
		mutate   func(*QualityReport)
		wantRule string
		wantSev  Severity
	}{
		{"clean", func(q *QualityReport) {}, "", SevOK},
		{"drop warn", func(q *QualityReport) { q.DropRate = 0.65 }, RuleDropRate, SevWarn},
		{"drop fail", func(q *QualityReport) { q.DropRate = 0.95 }, RuleDropRate, SevFail},
		{"empty warn", func(q *QualityReport) { q.EmptyRate = 0.30 }, RuleEmptyRate, SevWarn},
		{"no signals", func(q *QualityReport) { q.Signals = 0 }, RuleNoSignals, SevFail},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := &QualityReport{Label: "2014Q1", ReportsIn: 100, Reports: 90, Signals: 5}
			tc.mutate(q)
			EvaluateQuality(q, nil, Thresholds{})
			if tc.wantRule == "" {
				if len(q.Findings) != 0 || q.Verdict != SevOK {
					t.Fatalf("want clean, got %v verdict %s", findingRules(q.Findings), q.Verdict)
				}
				return
			}
			if !hasRule(q.Findings, tc.wantRule) {
				t.Fatalf("findings %v missing rule %s", findingRules(q.Findings), tc.wantRule)
			}
			if q.Verdict != tc.wantSev {
				t.Fatalf("verdict = %s, want %s", q.Verdict, tc.wantSev)
			}
		})
	}
}

func TestEvaluateQualityTrailingRules(t *testing.T) {
	trailing := []*QualityReport{
		{Label: "Q1", DropRate: 0.05, Drugs: 100, Reactions: 80, DictItems: 200, Reports: 1000, Signals: 5},
		{Label: "Q2", DropRate: 0.07, Drugs: 110, Reactions: 85, DictItems: 210, Reports: 1100, Signals: 5},
	}
	t.Run("drop spike", func(t *testing.T) {
		cur := &QualityReport{Label: "Q3", DropRate: 0.30, Drugs: 105, Reactions: 82, DictItems: 205, Reports: 1050, Signals: 5}
		EvaluateQuality(cur, trailing, Thresholds{})
		if !hasRule(cur.Findings, RuleDropSpike) {
			t.Fatalf("findings %v missing drop_spike", findingRules(cur.Findings))
		}
	})
	t.Run("cardinality collapse", func(t *testing.T) {
		cur := &QualityReport{Label: "Q3", DropRate: 0.06, Drugs: 20, Reactions: 82, DictItems: 205, Reports: 1050, Signals: 5}
		EvaluateQuality(cur, trailing, Thresholds{})
		if !hasRule(cur.Findings, RuleCardinality) {
			t.Fatalf("findings %v missing cardinality_collapse", findingRules(cur.Findings))
		}
	})
	t.Run("dict shrink", func(t *testing.T) {
		cur := &QualityReport{Label: "Q3", DropRate: 0.06, Drugs: 105, Reactions: 82, DictItems: 50, Reports: 1050, Signals: 5}
		EvaluateQuality(cur, trailing, Thresholds{})
		if !hasRule(cur.Findings, RuleDictShrink) {
			t.Fatalf("findings %v missing dict_shrink", findingRules(cur.Findings))
		}
	})
	t.Run("volume swing", func(t *testing.T) {
		cur := &QualityReport{Label: "Q3", DropRate: 0.06, Drugs: 105, Reactions: 82, DictItems: 205, Reports: 100, Signals: 5}
		EvaluateQuality(cur, trailing, Thresholds{})
		if !hasRule(cur.Findings, RuleVolume) {
			t.Fatalf("findings %v missing report_volume", findingRules(cur.Findings))
		}
	})
	t.Run("steady state is clean", func(t *testing.T) {
		cur := &QualityReport{Label: "Q3", DropRate: 0.06, Drugs: 105, Reactions: 82, DictItems: 205, Reports: 1050, Signals: 5}
		EvaluateQuality(cur, trailing, Thresholds{})
		if len(cur.Findings) != 0 || cur.Verdict != SevOK {
			t.Fatalf("want clean, got %v verdict %s", findingRules(cur.Findings), cur.Verdict)
		}
	})
}

func TestEvaluateQualityIsIdempotent(t *testing.T) {
	q := &QualityReport{Label: "Q1", ReportsIn: 100, Reports: 20, DropRate: 0.8, Signals: 3}
	EvaluateQuality(q, nil, Thresholds{})
	n := len(q.Findings)
	EvaluateQuality(q, nil, Thresholds{})
	if len(q.Findings) != n {
		t.Fatalf("findings accumulated across evaluations: %d then %d", n, len(q.Findings))
	}
}

func TestEvaluateQualityCustomThresholds(t *testing.T) {
	q := &QualityReport{Label: "Q1", ReportsIn: 100, Reports: 70, DropRate: 0.30, Signals: 3}
	EvaluateQuality(q, nil, Thresholds{DropWarn: 0.25})
	if !hasRule(q.Findings, RuleDropRate) {
		t.Fatalf("custom DropWarn ignored: %v", findingRules(q.Findings))
	}
	msg := q.Findings[0].Message
	if !strings.Contains(msg, "25%") {
		t.Errorf("message %q does not mention the custom limit", msg)
	}
}

func TestMaxSeverity(t *testing.T) {
	if got := MaxSeverity(SevOK, SevWarn); got != SevWarn {
		t.Errorf("MaxSeverity(ok, warn) = %s", got)
	}
	if got := MaxSeverity(SevFail, SevWarn); got != SevFail {
		t.Errorf("MaxSeverity(fail, warn) = %s", got)
	}
	if got := MaxSeverity(SevInfo, SevOK); got != SevInfo {
		t.Errorf("MaxSeverity(info, ok) = %s", got)
	}
}
