package audit

import (
	"fmt"
	"sort"

	"maras/internal/core"
)

// Hist is a fixed-bucket histogram small enough to persist inside a
// snapshot. Counts has len(Bounds)+1 entries: Counts[i] holds
// observations v <= Bounds[i], and the final entry is the overflow
// bucket (v > Bounds[len-1]).
type Hist struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// NewHist returns an empty histogram over the given ascending bounds.
func NewHist(bounds ...float64) Hist {
	return Hist{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// Observe adds one observation. An exact hit on a bound lands in that
// bound's bucket (v <= bound semantics, matching Prometheus `le`).
func (h *Hist) Observe(v float64) {
	h.Counts[sort.SearchFloat64s(h.Bounds, v)]++
}

// Total returns the number of observations across all buckets.
func (h Hist) Total() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Default distribution bounds: signal support on a power-of-two grid
// (FAERS supports span orders of magnitude), exclusiveness scores on a
// uniform 0..1 grid.
var (
	SupportBounds = []float64{4, 8, 16, 32, 64, 128, 256}
	ScoreBounds   = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
)

// QualityReport captures the ingest health of one mined quarter. The
// metric fields are deterministic functions of the core.Analysis and
// are persisted with the snapshot; Findings and Verdict are derived at
// evaluation time against configurable Thresholds (and trailing
// quarters) and are therefore recomputed at serve time, never stored.
type QualityReport struct {
	Label string `json:"label"`

	// Report flow through cleaning.
	ReportsIn int `json:"reports_in"` // reports entering cleaning
	Reports   int `json:"reports"`    // usable reports after cleaning
	// DropRate = 1 - Reports/ReportsIn; DedupRate and EmptyRate break
	// the dropped share down by cause.
	DropRate  float64 `json:"drop_rate"`
	DedupRate float64 `json:"dedup_rate"`
	EmptyRate float64 `json:"empty_rate"`

	// Vocabulary cardinality and dictionary size.
	Drugs     int `json:"drugs"`
	Reactions int `json:"reactions"`
	DictItems int `json:"dict_items"`

	// Transaction shape.
	AvgDrugs float64 `json:"avg_drugs"`
	AvgReacs float64 `json:"avg_reacs"`

	// Ranked output volume and distributions over the ranked signals.
	Signals     int  `json:"signals"`
	SupportHist Hist `json:"support_hist"`
	ScoreHist   Hist `json:"score_hist"`

	// Derived at evaluation time; see EvaluateQuality.
	Findings []Finding `json:"findings,omitempty"`
	Verdict  Severity  `json:"verdict,omitempty"`
}

// ComputeQuality derives the metric half of a QualityReport from a
// completed analysis. It never sets Findings or Verdict — pair with
// EvaluateQuality for those.
func ComputeQuality(label string, a *core.Analysis) *QualityReport {
	q := &QualityReport{
		Label:       label,
		SupportHist: NewHist(SupportBounds...),
		ScoreHist:   NewHist(ScoreBounds...),
	}
	if a == nil {
		return q
	}
	cs := a.Cleaning
	q.ReportsIn = cs.ReportsIn
	q.Reports = a.Stats.Reports
	if cs.ReportsIn > 0 {
		in := float64(cs.ReportsIn)
		q.DropRate = 1 - float64(cs.ReportsOut)/in
		q.DedupRate = float64(cs.DuplicateReports) / in
		q.EmptyRate = float64(cs.EmptyReports) / in
	}
	q.Drugs = a.Stats.Drugs
	q.Reactions = a.Stats.Reactions
	if d := a.Dict(); d != nil {
		q.DictItems = d.Len()
	}
	q.AvgDrugs = a.Stats.AvgDrugs
	q.AvgReacs = a.Stats.AvgReacs
	q.Signals = len(a.Signals)
	for _, s := range a.Signals {
		q.SupportHist.Observe(float64(s.Support))
		q.ScoreHist.Observe(s.Score)
	}
	return q
}

// EvaluateQuality applies the audit rules to cur, using trailing
// quarters (oldest first, may be empty) for the relative rules, and
// fills cur.Findings and cur.Verdict. Thresholds zero fields fall back
// to defaults.
func EvaluateQuality(cur *QualityReport, trailing []*QualityReport, th Thresholds) {
	th = th.withDefaults()
	cur.Findings = cur.Findings[:0]
	add := func(rule string, sev Severity, value, limit float64, format string, args ...any) {
		cur.Findings = append(cur.Findings, Finding{
			Rule:     rule,
			Severity: sev,
			Message:  fmt.Sprintf(format, args...),
			Value:    value,
			Limit:    limit,
		})
	}

	// Absolute rules.
	switch {
	case cur.DropRate >= th.DropFail:
		add(RuleDropRate, SevFail, cur.DropRate, th.DropFail,
			"cleaning dropped %.1f%% of %d reports (fail >= %.0f%%)",
			100*cur.DropRate, cur.ReportsIn, 100*th.DropFail)
	case cur.DropRate >= th.DropWarn:
		add(RuleDropRate, SevWarn, cur.DropRate, th.DropWarn,
			"cleaning dropped %.1f%% of %d reports (warn >= %.0f%%)",
			100*cur.DropRate, cur.ReportsIn, 100*th.DropWarn)
	}
	if cur.EmptyRate >= th.EmptyWarn {
		add(RuleEmptyRate, SevWarn, cur.EmptyRate, th.EmptyWarn,
			"%.1f%% of reports were empty transactions (warn >= %.0f%%)",
			100*cur.EmptyRate, 100*th.EmptyWarn)
	}
	if cur.Signals == 0 && cur.Reports > 0 {
		add(RuleNoSignals, SevFail, 0, 1,
			"%d usable reports produced zero ranked signals", cur.Reports)
	}

	// Relative rules against the trailing quarters.
	if len(trailing) > 0 {
		n := float64(len(trailing))
		var meanDrop, meanDrugs, meanReacs, meanReports float64
		for _, p := range trailing {
			meanDrop += p.DropRate
			meanDrugs += float64(p.Drugs)
			meanReacs += float64(p.Reactions)
			meanReports += float64(p.Reports)
		}
		meanDrop /= n
		meanDrugs /= n
		meanReacs /= n
		meanReports /= n

		if cur.DropRate > meanDrop+th.DropSpike {
			add(RuleDropSpike, SevWarn, cur.DropRate, meanDrop+th.DropSpike,
				"drop rate %.1f%% spiked over trailing mean %.1f%% (margin %.0f pts)",
				100*cur.DropRate, 100*meanDrop, 100*th.DropSpike)
		}
		if meanDrugs > 0 && float64(cur.Drugs) < th.CollapseRatio*meanDrugs {
			add(RuleCardinality, SevWarn, float64(cur.Drugs), th.CollapseRatio*meanDrugs,
				"drug cardinality %d collapsed below %.0f%% of trailing mean %.0f",
				cur.Drugs, 100*th.CollapseRatio, meanDrugs)
		}
		if meanReacs > 0 && float64(cur.Reactions) < th.CollapseRatio*meanReacs {
			add(RuleCardinality, SevWarn, float64(cur.Reactions), th.CollapseRatio*meanReacs,
				"reaction cardinality %d collapsed below %.0f%% of trailing mean %.0f",
				cur.Reactions, 100*th.CollapseRatio, meanReacs)
		}
		prev := trailing[len(trailing)-1]
		if prev.DictItems > 0 && float64(cur.DictItems) < th.CollapseRatio*float64(prev.DictItems) {
			add(RuleDictShrink, SevWarn, float64(cur.DictItems), th.CollapseRatio*float64(prev.DictItems),
				"dictionary shrank to %d items from %d last quarter", cur.DictItems, prev.DictItems)
		}
		if meanReports > 0 {
			lo, hi := th.VolumeSwing*meanReports, meanReports/th.VolumeSwing
			if v := float64(cur.Reports); v < lo || v > hi {
				add(RuleVolume, SevWarn, v, meanReports,
					"report volume %d outside [%.0f, %.0f] around trailing mean %.0f",
					cur.Reports, lo, hi, meanReports)
			}
		}
	}

	cur.Verdict = SevOK
	for _, f := range cur.Findings {
		cur.Verdict = MaxSeverity(cur.Verdict, f.Severity)
	}
}
