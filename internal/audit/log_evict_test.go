package audit

import (
	"strings"
	"testing"

	"maras/internal/obs"
)

func TestLogEvictionCounted(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLog(LogOptions{Capacity: 2, Metrics: reg})
	for i := 0; i < 5; i++ {
		l.Record(Event{Rule: "r", Message: "m"})
	}
	if got := l.Stats().Evicted; got != 3 {
		t.Errorf("Stats().Evicted = %d, want 3", got)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "maras_audit_events_evicted_total 3") {
		t.Errorf("exposition missing eviction counter:\n%s", sb.String())
	}
}

func TestLogEvictionSeriesEagerlyRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	NewLog(LogOptions{Metrics: reg})
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "maras_audit_events_evicted_total 0") {
		t.Errorf("eviction counter not registered at zero:\n%s", sb.String())
	}
}
