package audit

import (
	"testing"

	"maras/internal/trend"
)

// driftFixture builds a two-quarter trend analysis by hand:
//
//	key   Q1 rank  Q2 rank
//	A     1        2        persisting, moved down one
//	B     2        1        persisting, moved up one
//	C     3        -        dropped
//	D     -        3        new
func driftFixture() *trend.Analysis {
	pt := func(q string, rank, support int, score float64) trend.Point {
		return trend.Point{Quarter: q, Rank: rank, Support: support, Confidence: 0.5, Score: score}
	}
	return &trend.Analysis{
		Quarters: []string{"Q1", "Q2"},
		Trajectories: []trend.Trajectory{
			{Key: "A", Points: []trend.Point{pt("Q1", 1, 50, 0.9), pt("Q2", 2, 45, 0.8)}},
			{Key: "B", Points: []trend.Point{pt("Q1", 2, 40, 0.8), pt("Q2", 1, 60, 0.95)}},
			{Key: "C", Points: []trend.Point{pt("Q1", 3, 30, 0.7), pt("Q2", 0, 0, 0)}},
			{Key: "D", Points: []trend.Point{pt("Q1", 0, 0, 0), pt("Q2", 3, 35, 0.75)}},
		},
	}
}

func TestDrift(t *testing.T) {
	d, err := Drift(driftFixture(), "Q1", "Q2", 25)
	if err != nil {
		t.Fatal(err)
	}
	if d.From != "Q1" || d.To != "Q2" {
		t.Fatalf("pair = %s->%s", d.From, d.To)
	}
	if d.FromSignals != 3 || d.ToSignals != 3 {
		t.Fatalf("set sizes = %d/%d, want 3/3", d.FromSignals, d.ToSignals)
	}
	if d.New != 1 || d.Dropped != 1 || d.Persisting != 2 {
		t.Fatalf("new/dropped/persisting = %d/%d/%d", d.New, d.Dropped, d.Persisting)
	}
	if want := 2.0 / 4.0; d.ChurnRate != want {
		t.Errorf("ChurnRate = %v, want %v", d.ChurnRate, want)
	}
	// Both persisting signals moved one rank; span is topK=25, so
	// displacement 2 over worst case 2*(25-1).
	if want := 2.0 / 48.0; d.RankShift != want {
		t.Errorf("RankShift = %v, want %v", d.RankShift, want)
	}
	if len(d.Deltas) != 4 {
		t.Fatalf("deltas = %d, want 4", len(d.Deltas))
	}
	// Ordering: dropped, new, then persisting.
	if d.Deltas[0].Key != "C" || d.Deltas[0].Status != StatusDropped {
		t.Errorf("delta[0] = %+v, want dropped C", d.Deltas[0])
	}
	if d.Deltas[1].Key != "D" || d.Deltas[1].Status != StatusNew {
		t.Errorf("delta[1] = %+v, want new D", d.Deltas[1])
	}
	for _, sd := range d.Deltas {
		if sd.Key == "A" {
			if sd.RankDelta != 1 || sd.SupportDelta != -5 {
				t.Errorf("A delta = %+v", sd)
			}
		}
	}
}

func TestDriftTopKCutoff(t *testing.T) {
	// topK=2 excludes C (rank 3 in Q1) and D (rank 3 in Q2) entirely.
	d, err := Drift(driftFixture(), "Q1", "Q2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.New != 0 || d.Dropped != 0 || d.Persisting != 2 {
		t.Fatalf("new/dropped/persisting = %d/%d/%d, want 0/0/2", d.New, d.Dropped, d.Persisting)
	}
	if d.ChurnRate != 0 {
		t.Errorf("ChurnRate = %v, want 0", d.ChurnRate)
	}
}

func TestDriftUnknownQuarter(t *testing.T) {
	if _, err := Drift(driftFixture(), "Q1", "Q9", 10); err == nil {
		t.Fatal("want error for unknown quarter")
	}
	if _, err := Drift(driftFixture(), "Q9", "Q2", 10); err == nil {
		t.Fatal("want error for unknown quarter")
	}
	if _, err := Drift(driftFixture(), "Q1", "Q1", 10); err == nil {
		t.Fatal("want error for identical quarters")
	}
}

func TestDriftZeroSupportNotSignaled(t *testing.T) {
	// A ranked point with zero support (corrupt series) must not count
	// as present.
	ta := &trend.Analysis{
		Quarters: []string{"Q1", "Q2"},
		Trajectories: []trend.Trajectory{
			{Key: "X", Points: []trend.Point{
				{Quarter: "Q1", Rank: 1, Support: 0, Score: 0.9},
				{Quarter: "Q2", Rank: 1, Support: 10, Score: 0.9},
			}},
		},
	}
	d, err := Drift(ta, "Q1", "Q2", 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromSignals != 0 || d.New != 1 {
		t.Fatalf("zero-support point counted as signaled: %+v", d)
	}
}

func TestEvaluateDrift(t *testing.T) {
	t.Run("high churn warns", func(t *testing.T) {
		d := &DriftReport{From: "Q1", To: "Q2", TopK: 10, New: 3, Dropped: 3, Persisting: 2, ChurnRate: 0.75}
		EvaluateDrift(d, Thresholds{})
		if !hasRule(d.Findings, RuleChurn) || d.Verdict != SevWarn {
			t.Fatalf("findings %v verdict %s", findingRules(d.Findings), d.Verdict)
		}
	})
	t.Run("rank shift warns", func(t *testing.T) {
		d := &DriftReport{From: "Q1", To: "Q2", TopK: 10, Persisting: 5, RankShift: 0.5}
		EvaluateDrift(d, Thresholds{})
		if !hasRule(d.Findings, RuleRankShift) {
			t.Fatalf("findings %v", findingRules(d.Findings))
		}
	})
	t.Run("lost leading signal warns", func(t *testing.T) {
		d := &DriftReport{From: "Q1", To: "Q2", TopK: 25, Dropped: 1, Persisting: 20,
			Deltas: []SignalDelta{{Key: "ASPIRIN+WARFARIN", Status: StatusDropped, FromRank: 2, FromSupport: 80}}}
		EvaluateDrift(d, Thresholds{})
		if !hasRule(d.Findings, RuleSignalLost) {
			t.Fatalf("findings %v", findingRules(d.Findings))
		}
	})
	t.Run("low-rank drop does not warn", func(t *testing.T) {
		d := &DriftReport{From: "Q1", To: "Q2", TopK: 25, Dropped: 1, Persisting: 20,
			Deltas: []SignalDelta{{Key: "X+Y", Status: StatusDropped, FromRank: 20}}}
		EvaluateDrift(d, Thresholds{})
		if hasRule(d.Findings, RuleSignalLost) {
			t.Fatalf("rank-20 drop should not fire signal_lost: %v", findingRules(d.Findings))
		}
	})
	t.Run("stable is ok", func(t *testing.T) {
		d := &DriftReport{From: "Q1", To: "Q2", TopK: 10, Persisting: 10, ChurnRate: 0.1, RankShift: 0.05}
		EvaluateDrift(d, Thresholds{})
		if len(d.Findings) != 0 || d.Verdict != SevOK {
			t.Fatalf("want clean, got %v verdict %s", findingRules(d.Findings), d.Verdict)
		}
	})
}

// TestDriftFromAssembledTrend runs the real Assemble path end to end
// so the Point.Signaled contract between the packages stays honest.
func TestDriftFromAssembledTrend(t *testing.T) {
	ta := driftFixture()
	d, err := Drift(ta, "Q1", "Q2", 0) // unbounded: span = max rank seen
	if err != nil {
		t.Fatal(err)
	}
	// span = 3, displacement 2 over 2 persisting * (3-1).
	if want := 2.0 / 4.0; d.RankShift != want {
		t.Errorf("unbounded RankShift = %v, want %v", d.RankShift, want)
	}
	if d.TopK != 0 {
		t.Errorf("TopK = %d, want 0", d.TopK)
	}
}
