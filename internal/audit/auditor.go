package audit

import (
	"fmt"
	"strconv"

	"maras/internal/obs"
)

// Auditor bundles the alerting policy: thresholds for the evaluators
// plus where breaches go (event log, gauges). A nil *Auditor is safe
// everywhere and means "audit alerting disabled" — evaluations still
// run with default thresholds, they just are not recorded.
type Auditor struct {
	Log        *Log
	Thresholds Thresholds
	// Metrics carries the drift gauges; event counters ride on the
	// Log's own registry.
	Metrics *obs.Registry
}

// ActiveThresholds returns the auditor's thresholds with defaults
// filled in; a nil auditor yields DefaultThresholds.
func (ad *Auditor) ActiveThresholds() Thresholds {
	if ad == nil {
		return DefaultThresholds()
	}
	return ad.Thresholds.withDefaults()
}

// RecordEvent routes an arbitrary event into the audit timeline — the
// nil-safe entry point for subsystems (store resilience, server
// degradation) whose events are not produced by an evaluator. A nil
// auditor drops the event.
func (ad *Auditor) RecordEvent(e Event) {
	if ad == nil {
		return
	}
	ad.Log.Record(e)
}

// RecordEventOnce is RecordEvent deduplicated on key: one event per
// distinct ongoing condition, cleared with ForgetEvent when the
// condition resolves.
func (ad *Auditor) RecordEventOnce(key string, e Event) {
	if ad == nil {
		return
	}
	ad.Log.RecordOnce(key, e)
}

// ForgetEvent clears a RecordEventOnce key so the condition can alert
// again if it recurs.
func (ad *Auditor) ForgetEvent(key string) {
	if ad == nil {
		return
	}
	ad.Log.Forget(key)
}

// RecordQuality turns an evaluated quality report's findings into
// events, one per distinct (quarter, rule, severity) — re-evaluations
// of the same quarter do not repeat the event.
func (ad *Auditor) RecordQuality(q *QualityReport) {
	if ad == nil || q == nil {
		return
	}
	for _, f := range q.Findings {
		if f.Severity == SevOK {
			continue
		}
		key := "quality/" + q.Label + "/" + f.Rule + "/" + string(f.Severity)
		ad.Log.RecordOnce(key, Event{
			Rule:     f.Rule,
			Severity: f.Severity,
			Scope:    q.Label,
			Message:  f.Message,
		})
	}
}

// RecordDrift turns an evaluated drift report's findings into events
// (deduplicated per quarter pair and rule) and exports the churn and
// rank-shift gauges. Gauges are integer-valued in this registry, so
// the rates are exported in permille (0..1000).
func (ad *Auditor) RecordDrift(d *DriftReport) {
	if ad == nil || d == nil {
		return
	}
	scope := d.From + "->" + d.To
	for _, f := range d.Findings {
		if f.Severity == SevOK {
			continue
		}
		// Subject-bearing findings (one signal_lost per vanished
		// signal) dedup per subject, not per rule: each lost signal is
		// individually actionable and must reach subscribers.
		key := "drift/" + scope + "/" + f.Rule + "/" + string(f.Severity)
		if f.Subject != "" {
			key += "/" + f.Subject
		}
		ad.Log.RecordOnce(key, Event{
			Rule:     f.Rule,
			Severity: f.Severity,
			Scope:    scope,
			Message:  f.Message,
			Subject:  f.Subject,
		})
	}
	if ad.Metrics != nil {
		ad.Metrics.Gauge("maras_audit_churn_permille",
			"Top-K signal churn rate between audited quarters, in permille (0-1000).",
			obs.L("from", d.From, "to", d.To)...).Set(int64(d.ChurnRate*1000 + 0.5))
		ad.Metrics.Gauge("maras_audit_rank_shift_permille",
			"Normalized rank displacement of persisting top-K signals, in permille (0-1000).",
			obs.L("from", d.From, "to", d.To)...).Set(int64(d.RankShift*1000 + 0.5))
	}
}

// RecordWatchdog routes a runtime watchdog edge event (obs sampler)
// into the audit timeline: a warn event when a check enters violation,
// an info event when it recovers. The obs package cannot import audit
// (it sits below it), so callers wire this method into
// obs.RuntimeSamplerOptions.OnViolation.
func (ad *Auditor) RecordWatchdog(ev obs.WatchdogEvent) {
	if ad == nil {
		return
	}
	e := Event{
		Rule:  "watchdog_" + ev.Check,
		Scope: "runtime",
	}
	if ev.Entering {
		e.Severity = SevWarn
		e.Message = fmt.Sprintf("%s %s over limit %s", ev.Check,
			strconv.FormatFloat(ev.Value, 'g', -1, 64),
			strconv.FormatFloat(ev.Limit, 'g', -1, 64))
	} else {
		e.Severity = SevInfo
		e.Message = ev.Check + " recovered"
	}
	ad.Log.Record(e)
}
