// Package fpgrowth implements frequent-itemset mining with the
// FP-Growth algorithm and closed-itemset filtering, the mining engine
// the paper uses ("We use FP-Growth trees for closed item-set and rule
// generation", Section 5.2).
//
// The miner works in two layers:
//
//   - Mine enumerates all frequent itemsets by recursive conditional
//     FP-tree projection.
//   - MineClosed keeps only closed itemsets (Definition 3.4.1): sets
//     with no proper superset of equal support. Closedness is checked
//     against a support-keyed hash index of already-found closed sets,
//     the standard CLOSET/FPClose subsumption check.
package fpgrowth

import (
	"sort"

	"maras/internal/txdb"
	"maras/internal/types"
)

// node is an FP-tree node. Children are kept in a small map; FAERS
// transactions are short (tens of items), so fan-out stays modest.
type node struct {
	item     types.Item
	count    int
	parent   *node
	children map[types.Item]*node
	next     *node // header-table chain of nodes holding the same item
}

// tree is an FP-tree plus its header table.
type tree struct {
	root    *node
	heads   map[types.Item]*node // head of each item's node chain
	counts  map[types.Item]int   // total support of each item in this tree
	order   map[types.Item]int   // global frequency rank used to sort paths
	minsup  int
	nilNode *node
}

func newTree(order map[types.Item]int, minsup int) *tree {
	return &tree{
		root:   &node{children: make(map[types.Item]*node)},
		heads:  make(map[types.Item]*node),
		counts: make(map[types.Item]int),
		order:  order,
		minsup: minsup,
	}
}

// insert adds a path of items (already filtered to frequent items and
// sorted by descending global frequency) with the given count.
func (t *tree) insert(path []types.Item, count int) {
	cur := t.root
	for _, it := range path {
		child := cur.children[it]
		if child == nil {
			child = &node{item: it, parent: cur, children: make(map[types.Item]*node)}
			cur.children[it] = child
			child.next = t.heads[it]
			t.heads[it] = child
		}
		child.count += count
		t.counts[it] += count
		cur = child
	}
}

// items returns the tree's items sorted ascending by global frequency
// rank (i.e. least-frequent first), the order FP-Growth peels suffix
// items in.
func (t *tree) items() []types.Item {
	out := make([]types.Item, 0, len(t.counts))
	for it, c := range t.counts {
		if c >= t.minsup {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		// Higher rank value = less frequent; peel those first.
		ri, rj := t.order[out[i]], t.order[out[j]]
		if ri != rj {
			return ri > rj
		}
		return out[i] > out[j]
	})
	return out
}

// conditional builds the conditional FP-tree for item it: the tree of
// prefix paths of every node carrying it, with infrequent items
// dropped.
func (t *tree) conditional(it types.Item) *tree {
	// First pass: count item frequencies along the prefix paths.
	condCounts := make(map[types.Item]int)
	for n := t.heads[it]; n != nil; n = n.next {
		// The root is the unique node with a nil parent; stop there.
		for p := n.parent; p.parent != nil; p = p.parent {
			condCounts[p.item] += n.count
		}
	}
	cond := newTree(t.order, t.minsup)
	// Second pass: insert filtered prefix paths.
	var path []types.Item
	for n := t.heads[it]; n != nil; n = n.next {
		path = path[:0]
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			if condCounts[p.item] >= t.minsup {
				path = append(path, p.item)
			}
		}
		if len(path) == 0 {
			continue
		}
		// path was collected leaf→root; reverse to root→leaf, which
		// is descending-frequency order by FP-tree construction.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		cond.insert(path, n.count)
	}
	return cond
}

// singlePath returns the tree's unique path and true when the tree
// has no branching, enabling the FP-Growth single-path shortcut.
func (t *tree) singlePath() ([]types.Item, []int, bool) {
	var items []types.Item
	var counts []int
	cur := t.root
	for {
		if len(cur.children) == 0 {
			return items, counts, true
		}
		if len(cur.children) > 1 {
			return nil, nil, false
		}
		for _, child := range cur.children {
			cur = child
		}
		items = append(items, cur.item)
		counts = append(counts, cur.count)
	}
}

// buildInitial constructs the top-level FP-tree over db, returning the
// tree and the global frequency order of frequent items.
func buildInitial(db *txdb.DB, minsup int) (*tree, map[types.Item]int) {
	// Global item frequencies.
	freq := make(map[types.Item]int)
	for _, tx := range db.Transactions() {
		for _, it := range tx.Items {
			freq[it]++
		}
	}
	frequent := make([]types.Item, 0, len(freq))
	for it, c := range freq {
		if c >= minsup {
			frequent = append(frequent, it)
		}
	}
	// Deterministic order: by descending frequency, then ascending ID.
	sort.Slice(frequent, func(i, j int) bool {
		if freq[frequent[i]] != freq[frequent[j]] {
			return freq[frequent[i]] > freq[frequent[j]]
		}
		return frequent[i] < frequent[j]
	})
	order := make(map[types.Item]int, len(frequent))
	for rank, it := range frequent {
		order[it] = rank
	}

	t := newTree(order, minsup)
	var path []types.Item
	for _, tx := range db.Transactions() {
		path = path[:0]
		for _, it := range tx.Items {
			if _, ok := order[it]; ok {
				path = append(path, it)
			}
		}
		sort.Slice(path, func(i, j int) bool { return order[path[i]] < order[path[j]] })
		if len(path) > 0 {
			t.insert(path, 1)
		}
	}
	return t, order
}
