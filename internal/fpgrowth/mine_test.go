package fpgrowth

import (
	"fmt"
	"math/rand"
	"testing"

	"maras/internal/txdb"
	"maras/internal/types"
)

// buildDB constructs a DB from transactions given as item-ID slices.
func buildDB(t testing.TB, txs [][]int) *txdb.DB {
	t.Helper()
	dict := types.NewDictionary()
	maxID := 0
	for _, tx := range txs {
		for _, id := range tx {
			if id > maxID {
				maxID = id
			}
		}
	}
	for i := 0; i <= maxID; i++ {
		dict.Intern(fmt.Sprintf("i%d", i), types.DomainDrug)
	}
	db := txdb.New(dict)
	for r, tx := range txs {
		items := make(types.Itemset, 0, len(tx))
		for _, id := range tx {
			items = append(items, types.Item(id))
		}
		db.Add(fmt.Sprintf("r%d", r), items.Normalize())
	}
	db.Freeze()
	return db
}

// bruteFrequent enumerates frequent itemsets by exhaustive subset
// enumeration over the item universe (exponential; tests only).
func bruteFrequent(db *txdb.DB, minsup, maxLen int) map[string]int {
	universe := map[types.Item]bool{}
	for _, tx := range db.Transactions() {
		for _, it := range tx.Items {
			universe[it] = true
		}
	}
	items := make(types.Itemset, 0, len(universe))
	for it := range universe {
		items = append(items, it)
	}
	items = items.Normalize()

	out := map[string]int{}
	n := len(items)
	for mask := 1; mask < 1<<uint(n); mask++ {
		var s types.Itemset
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s = append(s, items[i])
			}
		}
		if maxLen > 0 && len(s) > maxLen {
			continue
		}
		sup := db.Support(s)
		if sup >= minsup {
			out[s.Key()] = sup
		}
	}
	return out
}

func bruteClosed(db *txdb.DB, minsup int) map[string]int {
	freq := bruteFrequent(db, minsup, 0)
	closed := map[string]int{}
	for k, sup := range freq {
		s := keyToSet(k)
		isClosed := true
		for k2, sup2 := range freq {
			if k2 == k || sup2 != sup {
				continue
			}
			if keyToSet(k2).ProperSupersetOf(s) {
				isClosed = false
				break
			}
		}
		if isClosed {
			closed[k] = sup
		}
	}
	return closed
}

func keyToSet(key string) types.Itemset {
	var s types.Itemset
	var cur int
	seen := false
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			if seen {
				s = append(s, types.Item(cur))
			}
			cur = 0
			seen = false
			continue
		}
		cur = cur*10 + int(key[i]-'0')
		seen = true
	}
	return s
}

func TestMineKnownExample(t *testing.T) {
	// Classic textbook database.
	db := buildDB(t, [][]int{
		{1, 2, 5},
		{2, 4},
		{2, 3},
		{1, 2, 4},
		{1, 3},
		{2, 3},
		{1, 3},
		{1, 2, 3, 5},
		{1, 2, 3},
	})
	got := map[string]int{}
	for _, fs := range Mine(db, Options{MinSupport: 2}) {
		got[fs.Items.Key()] = fs.Support
	}
	want := bruteFrequent(db, 2, 0)
	if len(got) != len(want) {
		t.Fatalf("mined %d itemsets, brute force %d\n got=%v\nwant=%v", len(got), len(want), got, want)
	}
	for k, sup := range want {
		if got[k] != sup {
			t.Errorf("itemset %s: support %d, want %d", k, got[k], sup)
		}
	}
}

func TestMineMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nItems := 3 + rng.Intn(8)
		nTx := 5 + rng.Intn(40)
		txs := make([][]int, nTx)
		for i := range txs {
			for id := 0; id < nItems; id++ {
				if rng.Float64() < 0.35 {
					txs[i] = append(txs[i], id)
				}
			}
			if len(txs[i]) == 0 {
				txs[i] = []int{rng.Intn(nItems)}
			}
		}
		db := buildDB(t, txs)
		minsup := 1 + rng.Intn(4)

		got := map[string]int{}
		for _, fs := range Mine(db, Options{MinSupport: minsup}) {
			if old, dup := got[fs.Items.Key()]; dup && old != fs.Support {
				t.Fatalf("trial %d: duplicate itemset %v with conflicting supports %d/%d",
					trial, fs.Items, old, fs.Support)
			}
			got[fs.Items.Key()] = fs.Support
		}
		want := bruteFrequent(db, minsup, 0)
		if len(got) != len(want) {
			t.Fatalf("trial %d (minsup=%d): mined %d itemsets, want %d", trial, minsup, len(got), len(want))
		}
		for k, sup := range want {
			if got[k] != sup {
				t.Fatalf("trial %d: itemset %s support %d, want %d", trial, k, got[k], sup)
			}
		}
	}
}

func TestMineClosedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		nItems := 3 + rng.Intn(7)
		nTx := 5 + rng.Intn(30)
		txs := make([][]int, nTx)
		for i := range txs {
			for id := 0; id < nItems; id++ {
				if rng.Float64() < 0.4 {
					txs[i] = append(txs[i], id)
				}
			}
			if len(txs[i]) == 0 {
				txs[i] = []int{rng.Intn(nItems)}
			}
		}
		db := buildDB(t, txs)
		minsup := 1 + rng.Intn(3)

		got := map[string]int{}
		for _, fs := range MineClosed(db, Options{MinSupport: minsup}) {
			got[fs.Items.Key()] = fs.Support
		}
		want := bruteClosed(db, minsup)
		if len(got) != len(want) {
			t.Fatalf("trial %d (minsup=%d): %d closed sets, want %d\n got=%v\nwant=%v",
				trial, minsup, len(got), len(want), got, want)
		}
		for k, sup := range want {
			if got[k] != sup {
				t.Fatalf("trial %d: closed set %s support %d, want %d", trial, k, got[k], sup)
			}
		}
	}
}

func TestMineMaxLen(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 3, 4},
		{1, 2, 3, 4},
		{1, 2, 3, 4},
	})
	for _, fs := range Mine(db, Options{MinSupport: 1, MaxLen: 2}) {
		if len(fs.Items) > 2 {
			t.Errorf("MaxLen=2 emitted %v", fs.Items)
		}
	}
	n2 := len(Mine(db, Options{MinSupport: 1, MaxLen: 2}))
	if n2 != 4+6 { // C(4,1)+C(4,2)
		t.Errorf("MaxLen=2 mined %d sets, want 10", n2)
	}
}

func TestMineFuncEarlyStop(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 3},
		{1, 2, 3},
	})
	n := 0
	MineFunc(db, Options{MinSupport: 1}, func(FrequentSet) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestMineEmptyDB(t *testing.T) {
	dict := types.NewDictionary()
	db := txdb.New(dict)
	db.Freeze()
	if got := Mine(db, Options{MinSupport: 1}); len(got) != 0 {
		t.Errorf("empty DB mined %d sets", len(got))
	}
}

func TestMineMinSupportFiltering(t *testing.T) {
	db := buildDB(t, [][]int{
		{1}, {1}, {1}, {2},
	})
	sets := Mine(db, Options{MinSupport: 2})
	if len(sets) != 1 || sets[0].Items.Key() != "1" || sets[0].Support != 3 {
		t.Errorf("got %v, want only {1}:3", sets)
	}
}

func TestClosure(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 3},
		{1, 2, 3},
		{1, 2, 4},
	})
	// Closure of {1} is {1,2}: items 1 and 2 co-occur in every tx with 1.
	got := Closure(db, types.NewItemset(1))
	if !got.Equal(types.NewItemset(1, 2)) {
		t.Errorf("Closure({1}) = %v, want {1,2}", got)
	}
	// Closure of {1,3} is {1,2,3}.
	got = Closure(db, types.NewItemset(1, 3))
	if !got.Equal(types.NewItemset(1, 2, 3)) {
		t.Errorf("Closure({1,3}) = %v, want {1,2,3}", got)
	}
	// Closure of an absent set returns the set.
	got = Closure(db, types.NewItemset(9))
	if !got.Equal(types.NewItemset(9)) {
		t.Errorf("Closure(absent) = %v", got)
	}
}

// Property: every closed itemset equals its own closure, and every
// frequent itemset's support equals its closure's support.
func TestClosureProperties(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
	for _, fs := range MineClosed(db, Options{MinSupport: 1}) {
		cl := Closure(db, fs.Items)
		if !cl.Equal(fs.Items) {
			t.Errorf("closed set %v has closure %v", fs.Items, cl)
		}
	}
	for _, fs := range Mine(db, Options{MinSupport: 1}) {
		cl := Closure(db, fs.Items)
		if db.Support(cl) != fs.Support {
			t.Errorf("set %v support %d but closure %v support %d",
				fs.Items, fs.Support, cl, db.Support(cl))
		}
	}
}

// Property: every mined support equals the exact posting-list
// support — the miner and the query engine must agree.
func TestMinedSupportsMatchQueryEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		nItems := 5 + rng.Intn(6)
		nTx := 20 + rng.Intn(50)
		txs := make([][]int, nTx)
		for i := range txs {
			for id := 0; id < nItems; id++ {
				if rng.Float64() < 0.35 {
					txs[i] = append(txs[i], id)
				}
			}
			if len(txs[i]) == 0 {
				txs[i] = []int{rng.Intn(nItems)}
			}
		}
		db := buildDB(t, txs)
		for _, fs := range Mine(db, Options{MinSupport: 2}) {
			if got := db.Support(fs.Items); got != fs.Support {
				t.Fatalf("trial %d: mined support %d for %v, query engine says %d",
					trial, fs.Support, fs.Items, got)
			}
		}
	}
}

func TestMineClosedDeterministicOrder(t *testing.T) {
	db := buildDB(t, [][]int{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
	})
	a := MineClosed(db, Options{MinSupport: 1})
	b := MineClosed(db, Options{MinSupport: 1})
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if !a[i].Items.Equal(b[i].Items) || a[i].Support != b[i].Support {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Support > a[i-1].Support {
			t.Fatalf("not sorted by support desc at %d", i)
		}
	}
}
