package fpgrowth

import (
	"sort"

	"maras/internal/txdb"
	"maras/internal/types"
)

// FrequentSet is a mined itemset with its absolute support.
type FrequentSet struct {
	Items   types.Itemset
	Support int
}

// Options tunes the miner.
type Options struct {
	// MinSupport is the absolute minimum support (count of reports).
	// Values below 1 are treated as 1.
	MinSupport int
	// MaxLen bounds the itemset length; 0 means unbounded. FAERS
	// signals of interest involve a handful of drugs plus reactions,
	// so pipelines usually set a bound (e.g. 10) as a safety valve.
	MaxLen int
}

func (o Options) normalized() Options {
	if o.MinSupport < 1 {
		o.MinSupport = 1
	}
	return o
}

// Mine enumerates every frequent itemset in db under opts, in no
// particular order.
func Mine(db *txdb.DB, opts Options) []FrequentSet {
	opts = opts.normalized()
	var out []FrequentSet
	MineFunc(db, opts, func(fs FrequentSet) bool {
		out = append(out, fs)
		return true
	})
	return out
}

// MineFunc streams every frequent itemset to fn; returning false stops
// the mining early. The itemset passed to fn is freshly allocated and
// may be retained.
func MineFunc(db *txdb.DB, opts Options, fn func(FrequentSet) bool) {
	opts = opts.normalized()
	t, _ := buildInitial(db, opts.MinSupport)
	var suffix types.Itemset
	mineTree(t, suffix, opts, fn)
}

// mineTree is the FP-Growth recursion: for each frequent item in t
// (least-frequent first), emit suffix+item and recurse into the
// conditional tree.
func mineTree(t *tree, suffix types.Itemset, opts Options, fn func(FrequentSet) bool) bool {
	if opts.MaxLen > 0 && len(suffix) >= opts.MaxLen {
		return true
	}
	// Single-path shortcut: every combination of path items extends
	// the suffix; support of a combination is the minimum count along
	// the chosen items, which (counts are non-increasing along the
	// path) is the count of the deepest chosen node.
	if items, counts, ok := t.singlePath(); ok {
		return mineSinglePath(items, counts, suffix, opts, fn)
	}
	for _, it := range t.items() {
		ext := suffix.Union(types.Itemset{it})
		if !fn(FrequentSet{Items: ext, Support: t.counts[it]}) {
			return false
		}
		if opts.MaxLen > 0 && len(ext) >= opts.MaxLen {
			continue
		}
		cond := t.conditional(it)
		if len(cond.counts) == 0 {
			continue
		}
		if !mineTree(cond, ext, opts, fn) {
			return false
		}
	}
	return true
}

// mineSinglePath emits every non-empty combination of the single-path
// items (filtered to frequent ones) unioned with suffix.
func mineSinglePath(items []types.Item, counts []int, suffix types.Itemset, opts Options, fn func(FrequentSet) bool) bool {
	// Keep only items meeting minsup; counts along a path are
	// non-increasing, so a prefix survives.
	n := 0
	for i, c := range counts {
		if c >= opts.MinSupport {
			n = i + 1
		} else {
			break
		}
	}
	if n > 20 {
		// Fall back is unnecessary in practice (paths this deep with
		// uniform counts do not occur in report data); guard anyway.
		n = 20
	}
	for mask := 1; mask < 1<<uint(n); mask++ {
		var combo types.Itemset
		sup := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				combo = append(combo, items[i])
				sup = counts[i] // deepest selected node's count
			}
		}
		ext := suffix.Union(combo.Normalize())
		if opts.MaxLen > 0 && len(ext) > opts.MaxLen {
			continue
		}
		if !fn(FrequentSet{Items: ext, Support: sup}) {
			return false
		}
	}
	return true
}

// MineClosed returns only the closed frequent itemsets of db: those
// with no proper superset of equal support (Definition 3.4.1). The
// result is deterministic: sorted by descending support, then by
// ascending length, then lexicographic items.
func MineClosed(db *txdb.DB, opts Options) []FrequentSet {
	all := Mine(db, opts)
	closed := FilterClosed(all)
	sort.Slice(closed, func(i, j int) bool {
		a, b := closed[i], closed[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) < len(b.Items)
		}
		for k := range a.Items {
			if a.Items[k] != b.Items[k] {
				return a.Items[k] < b.Items[k]
			}
		}
		return false
	})
	return closed
}

// FilterClosed removes every itemset that has a proper superset with
// equal support within sets. Sets must contain each itemset at most
// once (Mine guarantees this).
//
// The check uses the classic support-bucketed subsumption index:
// group candidates by support, and within a bucket test subset
// containment longest-first. Only supersets with *equal* support can
// subsume (a proper superset can never have higher support).
func FilterClosed(sets []FrequentSet) []FrequentSet {
	bySupport := make(map[int][]FrequentSet)
	for _, fs := range sets {
		bySupport[fs.Support] = append(bySupport[fs.Support], fs)
	}
	var out []FrequentSet
	for _, bucket := range bySupport {
		// Longest first: an itemset can only be subsumed by a longer one.
		sort.Slice(bucket, func(i, j int) bool { return len(bucket[i].Items) > len(bucket[j].Items) })
		kept := make([]FrequentSet, 0, len(bucket))
		for _, fs := range bucket {
			subsumed := false
			for _, k := range kept {
				if len(k.Items) <= len(fs.Items) {
					break // kept is sorted by length desc; no longer sets remain
				}
				if k.Items.ContainsAll(fs.Items) {
					subsumed = true
					break
				}
			}
			if !subsumed {
				kept = append(kept, fs)
			}
		}
		out = append(out, kept...)
	}
	return out
}

// Closure returns the closure of set within db: the maximal superset
// occurring in exactly the same transactions. Support 0 inputs return
// set unchanged. The closure is the intersection of all transactions
// containing set.
func Closure(db *txdb.DB, set types.Itemset) types.Itemset {
	tids := db.TIDs(set, nil)
	if len(tids) == 0 {
		return set.Clone()
	}
	closure := db.Tx(tids[0]).Items.Clone()
	for _, tid := range tids[1:] {
		closure = closure.Intersect(db.Tx(tid).Items)
		if closure.Equal(set) {
			break // cannot shrink below set
		}
	}
	return closure
}
