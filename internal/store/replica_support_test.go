package store

// Tests for the primitives the replica layer builds on: envelope
// verification without a full decode (CheckBytes), the cheap manifest
// read the inventory scanner uses (ReadManifest), verified atomic
// installs of peer bytes (InstallBytes), and the peer rung of
// LoadResilient's degradation ladder (SetPeerFetch).

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"maras/internal/core"
	"maras/internal/resilience"
)

func snapshotBytes(t *testing.T, label string) []byte {
	t.Helper()
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, label+Ext), label, quarterAnalysis(t, 8)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, label+Ext))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCheckBytes(t *testing.T) {
	good := snapshotBytes(t, "2014Q1")
	if err := CheckBytes(good); err != nil {
		t.Fatalf("good bytes rejected: %v", err)
	}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x55
	if err := CheckBytes(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v, want ErrCorrupt", err)
	}

	if err := CheckBytes([]byte("XXXX not a snapshot")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v, want ErrBadMagic", err)
	}
	if err := CheckBytes(good[:6]); !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v, want a corrupt-class error", err)
	}
}

func TestReadManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "2014Q1"+Ext)
	if err := WriteFile(path, "2014Q1", quarterAnalysis(t, 8)); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Label != "2014Q1" {
		t.Fatalf("manifest label = %q", m.Label)
	}
	if m.SavedAt.IsZero() {
		t.Fatal("manifest SavedAt is zero")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != fi.Size() {
		t.Fatalf("manifest size = %d, stat = %d", m.Size, fi.Size())
	}
	// The CRC in the manifest is the file's actual trailer.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckBytes(data); err != nil {
		t.Fatal(err)
	}
	trailer := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if m.CRC != trailer {
		t.Fatalf("manifest CRC = %#x, trailer = %#x", m.CRC, trailer)
	}

	if _, err := ReadManifest(filepath.Join(dir, "absent"+Ext)); err == nil {
		t.Fatal("manifest of a missing file succeeded")
	}
	if err := os.WriteFile(filepath.Join(dir, "short"+Ext), []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(filepath.Join(dir, "short"+Ext)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short file: err = %v, want ErrCorrupt", err)
	}
}

func TestInstallBytes(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir(), RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := snapshotBytes(t, "2014Q3")

	if err := reg.InstallBytes("2014Q3", good); err != nil {
		t.Fatal(err)
	}
	if !reg.Has("2014Q3") {
		t.Fatal("installed quarter not discoverable")
	}
	if got := reg.Quarters(); len(got) != 1 || got[0] != "2014Q3" {
		t.Fatalf("quarters = %v", got)
	}
	if a, err := reg.Load("2014Q3"); err != nil || len(a.Signals) == 0 {
		t.Fatalf("installed quarter unreadable: %v", err)
	}

	// Corrupt bytes never reach disk: the install fails up front and
	// leaves no file behind.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x55
	if err := reg.InstallBytes("2015Q1", bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt install: err = %v, want ErrCorrupt", err)
	}
	if reg.Has("2015Q1") {
		t.Fatal("corrupt install became discoverable")
	}
	if _, err := os.Stat(reg.Path("2015Q1")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt install left a file: %v", err)
	}
}

// TestLoadResilientPeerTier exercises the third rung of the ladder
// with a stubbed peer fetcher: local load fails with no stale copy, so
// the peer answers; the cached peer copy keeps the peer origin on
// re-serves; and a recovered local load flips back to local.
func TestLoadResilientPeerTier(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	dir := tempStore(t, 1)
	reg, log := resilientRegistry(t, dir)
	ctx := context.Background()

	peerCopy := quarterAnalysis(t, 8)
	calls := 0
	reg.SetPeerFetch(func(ctx context.Context, label string) (*core.Analysis, error) {
		calls++
		if label != "2014Q1" {
			return nil, fmt.Errorf("peer has no %s", label)
		}
		return peerCopy, nil
	})

	// Cold failure (nothing cached): the peer tier answers.
	if err := resilience.Enable(resilience.FPLoad + "=error"); err != nil {
		t.Fatal(err)
	}
	a, origin, err := reg.LoadResilient(ctx, "2014Q1")
	if err != nil || origin != OriginPeer || a != peerCopy {
		t.Fatalf("peer-tier load: origin=%v err=%v", origin, err)
	}
	if calls != 1 {
		t.Fatalf("peer fetch calls = %d, want 1", calls)
	}
	if !reg.Degraded() {
		t.Fatal("registry not degraded while serving from a peer")
	}
	if !hasEvent(log, "store_degraded", "2014Q1") {
		t.Fatal("no store_degraded audit event for the peer serve")
	}

	// The peer copy is cached as the fallback — and re-serves keep the
	// peer origin rather than masquerading as stale.
	if _, origin, err := reg.LoadResilient(ctx, "2014Q1"); err != nil || origin != OriginPeer {
		t.Fatalf("cached peer copy: origin=%v err=%v", origin, err)
	}
	if calls != 1 {
		t.Fatalf("cached serve re-fetched from peer (calls=%d)", calls)
	}

	// Recovery: past the breaker cooldown, a fresh local load answers
	// local again.
	resilience.DisableAll()
	time.Sleep(60 * time.Millisecond)
	if _, origin, err := reg.LoadResilient(ctx, "2014Q1"); err != nil || origin != OriginLocal {
		t.Fatalf("recovered load: origin=%v err=%v", origin, err)
	}

	// A label no peer holds still fails cleanly.
	if err := resilience.Enable(resilience.FPLoad + "=error"); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	delete(reg.open, "2014Q1")
	reg.removeLRULocked("2014Q1")
	reg.mu.Unlock()
	if _, _, err := reg.LoadResilient(ctx, "1999Q1"); err == nil {
		t.Fatal("unknown label served somehow")
	}
}
