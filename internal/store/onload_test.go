package store

import (
	"context"
	"sync"
	"testing"

	"maras/internal/core"
)

// OnLoad fires once per cold decode — not per LRU hit — and again
// after Save invalidates the resident copy.
func TestRegistryOnLoad(t *testing.T) {
	dir := tempStore(t, 2)
	var mu sync.Mutex
	var calls []string
	reg, err := OpenRegistry(dir, RegistryOptions{
		OnLoad: func(_ context.Context, label string, a *core.Analysis) {
			if a == nil || len(a.Signals) == 0 {
				t.Errorf("OnLoad(%s): empty analysis", label)
			}
			mu.Lock()
			calls = append(calls, label)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	a, err := reg.Load("2014Q1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("2014Q1"); err != nil { // warm hit: no second call
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]string{}, calls...)
	mu.Unlock()
	if len(got) != 1 || got[0] != "2014Q1" {
		t.Fatalf("after warm reload calls = %v, want one 2014Q1", got)
	}

	// Save invalidates the resident entry; the next load re-decodes
	// and must fire the hook again.
	if err := reg.Save("2014Q1", a); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("2014Q1"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(calls)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("after save+reload OnLoad fired %d times, want 2", n)
	}
}

// Concurrent loads of the same quarter share one decode and one
// OnLoad call (the entry's sync.Once).
func TestRegistryOnLoadSingleflight(t *testing.T) {
	dir := tempStore(t, 1)
	var mu sync.Mutex
	count := 0
	reg, err := OpenRegistry(dir, RegistryOptions{
		OnLoad: func(context.Context, string, *core.Analysis) {
			mu.Lock()
			count++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := reg.Load("2014Q1"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("OnLoad fired %d times under concurrent load, want 1", count)
	}
}
