package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/synth"
)

// synthAnalysis mines a small synthetic quarter — a full Analysis
// with clusters, knowledge hits, SOCs, demographics-capable reports.
func synthAnalysis(t testing.TB) *core.Analysis {
	t.Helper()
	cfg := synth.DefaultConfig("2014Q1", 7)
	cfg.Reports = 3_000
	cfg.ExposureRate = 0.05
	q, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.NewOptions()
	opts.MinSupport = 5
	opts.TopK = 40
	opts.CountRules = true
	a, err := core.RunQuarter(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("fixture mined no signals")
	}
	return a
}

func encode(t *testing.T, label string, a *core.Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, label, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripFullAnalysis(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)

	snap, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "2014Q1" {
		t.Errorf("label = %q", snap.Label)
	}
	rt := snap.Analysis

	// Ranked signals — scores, measures, cluster structure, report
	// links, knowledge hits — must round-trip value-identical.
	if !reflect.DeepEqual(a.Signals, rt.Signals) {
		for i := range a.Signals {
			if i < len(rt.Signals) && !reflect.DeepEqual(a.Signals[i], rt.Signals[i]) {
				t.Fatalf("signal %d differs:\n orig: %+v\n  got: %+v", i, a.Signals[i], rt.Signals[i])
			}
		}
		t.Fatalf("signals differ: %d vs %d", len(a.Signals), len(rt.Signals))
	}
	if a.Stats != rt.Stats {
		t.Errorf("stats: %+v vs %+v", a.Stats, rt.Stats)
	}
	if a.Cleaning != rt.Cleaning {
		t.Errorf("cleaning: %+v vs %+v", a.Cleaning, rt.Cleaning)
	}
	if a.Counts != rt.Counts {
		t.Errorf("counts: %+v vs %+v", a.Counts, rt.Counts)
	}
	if !reflect.DeepEqual(a.RawReports(), rt.RawReports()) {
		t.Error("raw reports differ after round trip")
	}

	// The dictionary must reproduce IDs exactly: cluster itemsets
	// reference it.
	if a.Dict().Len() != rt.Dict().Len() {
		t.Fatalf("dict len %d vs %d", a.Dict().Len(), rt.Dict().Len())
	}
	s0 := rt.Signals[0]
	names := rt.Dict().SortedNames(s0.Cluster.Target.Antecedent)
	if !reflect.DeepEqual(names, s0.Drugs) {
		t.Errorf("rehydrated dict decodes cluster to %v, signal says %v", names, s0.Drugs)
	}

	// Serving paths on the rehydrated analysis.
	if got := rt.FilterSignals(strings.ToLower(s0.Drugs[0])); len(got) == 0 {
		t.Error("FilterSignals found nothing on rehydrated analysis")
	}
	if _, ok := rt.Report(s0.ReportIDs[0]); !ok {
		t.Error("report drill-down lost after round trip")
	}
	prof := rt.Demographics(&s0)
	if len(prof.SexSignal) == 0 && len(prof.AgeSignal) == 0 {
		t.Error("demographics empty on rehydrated analysis")
	}
}

func TestRoundTripDeterministic(t *testing.T) {
	a := synthAnalysis(t)
	var b1, b2 bytes.Buffer
	if err := write(&b1, "2014Q1", a, time.Unix(42, 0)); err != nil {
		t.Fatal(err)
	}
	if err := write(&b2, "2014Q1", a, time.Unix(42, 0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same analysis encoded twice produced different bytes")
	}
}

func TestDecodeTruncated(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)
	for _, n := range []int{5, 11, 40, len(data) / 2, len(data) - 1} {
		if n >= len(data) {
			continue
		}
		_, err := Decode(data[:n])
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", n)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestDecodeBadCRC(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)
	data[len(data)/2] ^= 0xFF
	_, err := Decode(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: got %v, want ErrCorrupt", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("no")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("tiny input: got %v, want ErrBadMagic", err)
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)
	// Bump the version field and re-seal the CRC so only the version
	// check can fail.
	binary.LittleEndian.PutUint16(data[4:6], Version+1)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Errorf("got %v, want ErrVersion", err)
	}
}

// TestDecodeGarbageNeverPanics seals adversarial bodies with a valid
// header and CRC so the section parser itself is exercised.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	bodies := [][]byte{
		{},
		{1, 0, 0, 0, 255, 255, 255, 255},     // section claiming 4GB payload
		{3, 0, 0, 0, 2, 0, 0, 0, 0xFF, 0xFF}, // dict with absurd count varint
		{4, 0, 0, 0, 1, 0, 0, 0, 0xFF},       // signals, bad count
		bytes.Repeat([]byte{0xAB}, 64),       // noise
		{9, 9, 0, 0, 4, 0, 0, 0, 1, 2, 3, 4}, // unknown section id: must be skipped
		{2, 0, 0, 0, 1, 0, 0, 0, 0x80},       // stats section, dangling varint
	}
	for i, body := range bodies {
		var buf []byte
		buf = append(buf, magic[:]...)
		buf = binary.LittleEndian.AppendUint16(buf, Version)
		buf = binary.LittleEndian.AppendUint16(buf, 0)
		buf = append(buf, body...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("body %d: decode panicked: %v", i, r)
				}
			}()
			snap, err := Decode(buf)
			// Garbage must error; the lone legal outcome is the
			// unknown-section body, which decodes to an empty snapshot
			// and then fails the missing-dictionary check.
			if err == nil && snap != nil {
				t.Errorf("body %d: garbage decoded without error", i)
			}
		}()
	}
}

func TestWriteFileAtomic(t *testing.T) {
	a := synthAnalysis(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "2014Q1"+Ext)
	if err := WriteFile(path, "2014Q1", a); err != nil {
		t.Fatal(err)
	}
	snap, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Analysis.Signals) != len(a.Signals) {
		t.Errorf("signals: %d vs %d", len(snap.Analysis.Signals), len(a.Signals))
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory litter after atomic write: %v", names)
	}
	// Overwrite in place: readers never see a partial file, and the
	// new content wins.
	if err := WriteFile(path, "2014Q1", a); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err != nil {
		t.Fatal(err)
	}
}

// The mine-once/serve-many ratio: how much cheaper is decoding a
// snapshot than re-running the pipeline that produced it. EXPERIMENTS
// quotes these two.
func BenchmarkMineQuarter(b *testing.B) {
	cfg := synth.DefaultConfig("2014Q1", 7)
	cfg.Reports = 3_000
	cfg.ExposureRate = 0.05
	q, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.NewOptions()
	opts.MinSupport = 5
	opts.TopK = 40
	opts.CountRules = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunQuarter(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	a := synthAnalysis(b)
	var buf bytes.Buffer
	if err := Write(&buf, "2014Q1", a); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"+Ext)); err == nil {
		t.Error("opening a missing snapshot succeeded")
	}
}

// TestSnapshotSmallerThanNaiveJSON is a soft size sanity check: the
// binary codec should not be wildly larger than the data it holds.
func TestSnapshotEncodesReportsOnce(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)
	perReport := float64(len(data)) / float64(len(a.RawReports()))
	if perReport > 4096 {
		t.Errorf("snapshot is %.0f bytes/report — codec bloat?", perReport)
	}
}

// TestQualityRoundTrip: a v2 snapshot persists the quality metrics and
// decodes them identical to what ComputeQuality derives live.
func TestQualityRoundTrip(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)

	snap, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Quality == nil {
		t.Fatal("v2 snapshot decoded without quality")
	}
	want := audit.ComputeQuality("2014Q1", a)
	if !reflect.DeepEqual(snap.Quality, want) {
		t.Errorf("quality round-trip mismatch:\n got %+v\nwant %+v", snap.Quality, want)
	}
	if snap.Quality.Signals != len(a.Signals) {
		t.Errorf("quality signals = %d, want %d", snap.Quality.Signals, len(a.Signals))
	}
	if snap.Quality.SupportHist.Total() != int64(len(a.Signals)) {
		t.Errorf("support hist total = %d, want %d", snap.Quality.SupportHist.Total(), len(a.Signals))
	}
	if snap.Quality.Verdict != "" || snap.Quality.Findings != nil {
		t.Errorf("persisted quality must not carry verdict/findings: %+v", snap.Quality)
	}
}

// TestDecodeV1RecomputesQuality: genuine version-1 bytes (no quality
// section) still decode, with the quality report recomputed from the
// rehydrated analysis — byte-for-byte the same metrics a v2 file
// would have persisted.
func TestDecodeV1RecomputesQuality(t *testing.T) {
	a := synthAnalysis(t)
	var buf bytes.Buffer
	if err := writeVersion(&buf, "2014Q1", a, time.Unix(42, 0), 1); err != nil {
		t.Fatal(err)
	}
	// Paranoia: the file really is v1 on the wire.
	if v := binary.LittleEndian.Uint16(buf.Bytes()[4:6]); v != 1 {
		t.Fatalf("fixture wrote v%d", v)
	}

	snap, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if snap.Quality == nil {
		t.Fatal("v1 decode left Quality nil")
	}
	want := audit.ComputeQuality("2014Q1", snap.Analysis)
	if !reflect.DeepEqual(snap.Quality, want) {
		t.Errorf("recomputed quality mismatch:\n got %+v\nwant %+v", snap.Quality, want)
	}
	if len(snap.Analysis.Signals) == 0 || snap.Quality.Signals == 0 {
		t.Error("v1 decode lost signals")
	}
}

// TestDecodeUnknownQualityFormat: a quality payload with a future
// sub-format byte is skipped (recompute fallback), not an error.
func TestDecodeUnknownQualityFormat(t *testing.T) {
	a := synthAnalysis(t)
	data := encode(t, "2014Q1", a)

	// Find the quality section header and bump its first payload byte
	// (the sub-format) to an unknown value, then re-seal the CRC.
	body := data[:len(data)-4]
	off := 8
	patched := false
	for off < len(body) {
		id := binary.LittleEndian.Uint16(body[off:])
		n := int(binary.LittleEndian.Uint32(body[off+4:]))
		if id == secQuality {
			body[off+8] = 99
			patched = true
			break
		}
		off += 8 + n
	}
	if !patched {
		t.Fatal("quality section not found")
	}
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))

	snap, err := Decode(data)
	if err != nil {
		t.Fatalf("unknown quality sub-format must not fail decode: %v", err)
	}
	want := audit.ComputeQuality("2014Q1", snap.Analysis)
	if !reflect.DeepEqual(snap.Quality, want) {
		t.Error("fallback recompute mismatch")
	}
}
