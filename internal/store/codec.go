// Package store persists completed MARAS analyses as versioned binary
// snapshots and serves them back from disk — the mine-once/serve-many
// layer quarterly surveillance needs. A snapshot captures everything a
// serving process reads from an Analysis: dataset and cleaning stats,
// the ranked signals with their full MCAC cluster structure, the
// dictionary the clusters' item IDs are encoded against, and the raw
// reports the signals link back to. The Registry (registry.go) manages
// a directory of per-quarter snapshots with atomic writes, an LRU of
// open quarters, and cross-quarter timeline queries.
//
// # File format (version 2)
//
//	header   magic "MRSN" | version uint16 | flags uint16
//	body     sections, each: id uint16 | reserved uint16 |
//	         length uint32 | payload[length]
//	trailer  CRC-32 (IEEE) of every preceding byte, uint32
//
// All fixed-width integers are little-endian; variable-size values
// inside payloads use varint (counts, signed ints) and length-prefixed
// UTF-8 (strings). Unknown section IDs are skipped on read, so later
// versions can add sections without breaking old readers. Readers
// verify the CRC before parsing a single section, and every decode is
// bounds-checked: corrupt input yields a typed error, never a panic.
//
// Version 2 adds the quality section (the metric half of an
// audit.QualityReport, persisted so serving a quarter's ingest-quality
// report costs no recomputation). Version 1 files remain readable:
// they simply lack the section, and Decode recomputes the report from
// the rehydrated analysis on load.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"maras/internal/assoc"
	"maras/internal/audit"
	"maras/internal/cleaning"
	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/knowledge"
	"maras/internal/mcac"
	"maras/internal/meddra"
	"maras/internal/resilience"
	"maras/internal/txdb"
	"maras/internal/types"
)

// Version is the snapshot format version this package writes. Readers
// accept every version back to minVersion.
const (
	Version    = 2
	minVersion = 1
)

// magic identifies a MARAS snapshot file.
var magic = [4]byte{'M', 'R', 'S', 'N'}

// Ext is the conventional snapshot file extension the Registry scans
// for ("2014Q1" + Ext).
const Ext = ".maras"

// Typed decode errors. Callers distinguish "not a snapshot at all"
// (ErrBadMagic), "a snapshot from a format we don't speak"
// (ErrVersion), and "a snapshot damaged in storage or transit"
// (ErrCorrupt) — all via errors.Is.
var (
	ErrBadMagic = errors.New("store: not a MARAS snapshot (bad magic)")
	ErrVersion  = errors.New("store: unsupported snapshot version")
	ErrCorrupt  = errors.New("store: corrupt snapshot")
)

// Section IDs.
const (
	secMeta    uint16 = 1 // quarter label, save time
	secStats   uint16 = 2 // txdb + cleaning stats, rule-space counts
	secDict    uint16 = 3 // dictionary entries in ID order
	secSignals uint16 = 4 // ranked signals with full MCAC clusters
	secReports uint16 = 5 // raw reports (drill-down + demographics)
	secQuality uint16 = 6 // ingest quality metrics (v2+)
)

// qualityFormat sub-versions the quality payload independently of the
// file version, so the report can grow fields without a full format
// bump; unknown sub-versions are ignored (quality recomputed on load).
const qualityFormat = 1

// Snapshot is one persisted quarter: the label it was mined from,
// when it was saved, the rehydrated analysis, and the quarter's ingest
// quality metrics. Quality is always non-nil after a successful
// decode — persisted for v2+ files, recomputed from the analysis for
// v1 files — and carries metrics only (no findings/verdict: those
// depend on serve-time thresholds; see audit.EvaluateQuality).
type Snapshot struct {
	Label    string
	SavedAt  time.Time
	Analysis *core.Analysis
	Quality  *audit.QualityReport
}

// Write encodes label's completed analysis to w in the snapshot
// format.
func Write(w io.Writer, label string, a *core.Analysis) error {
	return write(w, label, a, time.Now())
}

func write(w io.Writer, label string, a *core.Analysis, savedAt time.Time) error {
	return writeVersion(w, label, a, savedAt, Version)
}

// writeVersion encodes at a specific format version. Only tests write
// anything below Version — it exists so backward-compatibility tests
// exercise genuine old-format bytes instead of hand-forged ones.
func writeVersion(w io.Writer, label string, a *core.Analysis, savedAt time.Time, version uint16) error {
	var e enc
	e.buf = append(e.buf, magic[:]...)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, version)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, 0) // flags

	e.section(secMeta, func(e *enc) {
		e.str(label)
		e.i64(savedAt.Unix())
	})
	e.section(secStats, func(e *enc) {
		e.i64(int64(a.Stats.Reports))
		e.i64(int64(a.Stats.Drugs))
		e.i64(int64(a.Stats.Reactions))
		e.f64(a.Stats.AvgDrugs)
		e.f64(a.Stats.AvgReacs)
		cs := a.Cleaning
		for _, v := range []int{cs.ReportsIn, cs.ReportsOut, cs.DuplicateReports, cs.EmptyReports,
			cs.DrugSpellingsFixed, cs.ReacSpellingsFixed, cs.WithinReportDupDrugs, cs.WithinReportDupReacs} {
			e.i64(int64(v))
		}
		e.i64(int64(a.Counts.TotalRules))
		e.i64(int64(a.Counts.FilteredRules))
		e.i64(int64(a.Counts.MCACs))
	})
	e.section(secDict, func(e *enc) {
		dict := a.Dict()
		n := dict.Len()
		e.uv(uint64(n))
		for i := 0; i < n; i++ {
			it := types.Item(i)
			e.u8(uint8(dict.Domain(it)))
			e.str(dict.Name(it))
		}
	})
	e.section(secSignals, func(e *enc) {
		e.uv(uint64(len(a.Signals)))
		for i := range a.Signals {
			e.signal(&a.Signals[i])
		}
	})
	e.section(secReports, func(e *enc) {
		reports := a.RawReports()
		e.uv(uint64(len(reports)))
		for i := range reports {
			e.report(&reports[i])
		}
	})
	if version >= 2 {
		e.section(secQuality, func(e *enc) {
			e.quality(audit.ComputeQuality(label, a))
		})
	}

	e.buf = binary.LittleEndian.AppendUint32(e.buf, crc32.ChecksumIEEE(e.buf))
	_, err := w.Write(e.buf)
	return err
}

// WriteFile writes the snapshot to path atomically: the bytes land in
// a temporary file in the same directory which is fsynced and renamed
// over path, so readers only ever see a complete snapshot.
func WriteFile(path, label string, a *core.Analysis) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return Write(w, label, a)
	})
}

// writeFileAtomic runs emit into a temp file in path's directory, then
// fsyncs and renames it over path — the write-then-rename protocol
// every snapshot producer (local save, replica install) shares. The
// temp name embeds Ext+".tmp", the pattern sweepOrphans reclaims, so a
// crash mid-write can never leave a file readers would discover.
func writeFileAtomic(path string, emit func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := emit(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// CreateTemp opens 0600; snapshots are ordinary shareable artifacts.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The rename itself lives in the directory; fsync it so a crash
	// right after WriteFile returns cannot roll the entry back (or
	// leave a directory pointing at a temp name).
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, serr)
	}
	return nil
}

// Read decodes a snapshot from r, verifying magic, version, and the
// CRC-32 trailer before parsing any section.
func Read(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	return Decode(data)
}

// Open reads the snapshot file at path. It hosts the store/decode
// failpoint: armed, the injected fault presents exactly like a CRC
// mismatch, so the quarantine and breaker paths above can be provoked
// without hand-corrupting files.
func Open(path string) (*Snapshot, error) {
	if ferr := resilience.Inject(resilience.FPDecode); ferr != nil {
		return nil, fmt.Errorf("%s: %w (%w)", path, ErrCorrupt, ferr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// CheckBytes verifies a snapshot's envelope — magic, version range,
// and the CRC-32 trailer over everything before it — without parsing
// a single section. It is the verification gate for bytes that arrive
// over the network (replica sync, peer-failover reads): a pass means
// the bytes are exactly what some encoder produced; Decode can still
// reject deeper structural damage, but nothing CheckBytes passes can
// have flipped in transit.
func CheckBytes(data []byte) error {
	if len(data) < len(magic) || [4]byte(data[:4]) != magic {
		return ErrBadMagic
	}
	if len(data) < 12 { // header + trailer
		return fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v < minVersion || v > Version {
		return fmt.Errorf("%w: file is v%d, reader speaks v%d..v%d", ErrVersion, v, minVersion, Version)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("%w: CRC mismatch (file %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return nil
}

// Manifest is a snapshot's sync-relevant identity, readable without
// decoding the file: the label and save time from the meta section,
// the CRC-32 trailer (the content fingerprint replica merkle trees
// are built over), and the file size. ReadManifest does NOT verify
// the CRC — that would read the whole file; fetched bytes are
// verified with CheckBytes before installation instead.
type Manifest struct {
	Label   string
	SavedAt time.Time
	CRC     uint32
	Size    int64
}

// ReadManifest reads path's manifest with two small reads — the
// header plus the meta section at the front, the CRC trailer at the
// back — so inventory scans over large stores stay cheap.
func ReadManifest(path string) (Manifest, error) {
	var m Manifest
	f, err := os.Open(path)
	if err != nil {
		return m, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return m, fmt.Errorf("store: %w", err)
	}
	m.Size = fi.Size()
	if m.Size < 12 {
		return m, fmt.Errorf("%s: %w: truncated header", path, ErrCorrupt)
	}
	// Header + section headers + the meta payload all sit at the front;
	// 4 KiB covers any realistic label, and a meta section that somehow
	// runs past it is treated as damage.
	head := make([]byte, min(m.Size-4, 4096))
	if _, err := io.ReadFull(f, head); err != nil {
		return m, fmt.Errorf("store: %s: %w", path, err)
	}
	if [4]byte(head[:4]) != magic {
		return m, fmt.Errorf("%s: %w", path, ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v < minVersion || v > Version {
		return m, fmt.Errorf("%s: %w: file is v%d, reader speaks v%d..v%d", path, ErrVersion, v, minVersion, Version)
	}
	d := &dec{b: head, off: 8}
	for d.err == nil && d.off < len(d.b) {
		id, payload := d.nextSection()
		if d.err != nil || id != secMeta {
			continue
		}
		sd := &dec{b: payload}
		m.Label = sd.str()
		m.SavedAt = time.Unix(sd.i64(), 0)
		if sd.err != nil {
			return m, fmt.Errorf("%s: %w: meta section: %v", path, ErrCorrupt, sd.err)
		}
		var tail [4]byte
		if _, err := f.ReadAt(tail[:], m.Size-4); err != nil {
			return m, fmt.Errorf("store: %s: %w", path, err)
		}
		m.CRC = binary.LittleEndian.Uint32(tail[:])
		return m, nil
	}
	return m, fmt.Errorf("%s: %w: meta section not found", path, ErrCorrupt)
}

// Decode parses a complete in-memory snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if err := CheckBytes(data); err != nil {
		return nil, err
	}
	body := data[:len(data)-4]

	s := &Snapshot{}
	var (
		dict       *types.Dictionary
		stats      txdb.Stats
		cstats     cleaning.Stats
		counts     core.Counts
		signals    []core.Signal
		rawReports []faers.Report
		quality    *audit.QualityReport
	)

	d := &dec{b: body, off: 8}
	for d.err == nil && d.off < len(d.b) {
		id, payload := d.nextSection()
		if d.err != nil {
			break
		}
		sd := &dec{b: payload}
		switch id {
		case secMeta:
			s.Label = sd.str()
			s.SavedAt = time.Unix(sd.i64(), 0)
		case secStats:
			stats.Reports = int(sd.i64())
			stats.Drugs = int(sd.i64())
			stats.Reactions = int(sd.i64())
			stats.AvgDrugs = sd.f64()
			stats.AvgReacs = sd.f64()
			for _, p := range []*int{&cstats.ReportsIn, &cstats.ReportsOut, &cstats.DuplicateReports,
				&cstats.EmptyReports, &cstats.DrugSpellingsFixed, &cstats.ReacSpellingsFixed,
				&cstats.WithinReportDupDrugs, &cstats.WithinReportDupReacs} {
				*p = int(sd.i64())
			}
			counts.TotalRules = int(sd.i64())
			counts.FilteredRules = int(sd.i64())
			counts.MCACs = int(sd.i64())
		case secDict:
			dict = sd.dict()
		case secSignals:
			signals = sd.signals()
		case secReports:
			rawReports = sd.reports()
		case secQuality:
			quality = sd.quality()
		default:
			// Unknown section: skip (forward compatibility).
		}
		if sd.err != nil {
			return nil, fmt.Errorf("%w: section %d: %v", ErrCorrupt, id, sd.err)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if dict == nil {
		return nil, fmt.Errorf("%w: missing dictionary section", ErrCorrupt)
	}
	s.Analysis = core.Rehydrate(stats, cstats, counts, signals, dict, rawReports)
	if quality == nil {
		// v1 file, or a quality payload from a future sub-format:
		// recompute from the analysis we just rehydrated.
		quality = audit.ComputeQuality(s.Label, s.Analysis)
	}
	quality.Label = s.Label
	s.Quality = quality
	return s, nil
}

// ---------------------------------------------------------------------------
// encoder

type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) uv(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) strs(ss []string) {
	e.uv(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *enc) items(set types.Itemset) {
	e.uv(uint64(len(set)))
	for _, it := range set {
		e.u32(uint32(it))
	}
}

// section appends a length-prefixed section: the payload is built
// first so its exact byte length can prefix it.
func (e *enc) section(id uint16, body func(*enc)) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, id)
	e.buf = binary.LittleEndian.AppendUint16(e.buf, 0) // reserved
	lenAt := len(e.buf)
	e.u32(0) // patched below
	start := len(e.buf)
	body(e)
	binary.LittleEndian.PutUint32(e.buf[lenAt:], uint32(len(e.buf)-start))
}

func (e *enc) rule(r *assoc.Rule) {
	e.items(r.Antecedent)
	e.items(r.Consequent)
	e.i64(int64(r.Support))
	e.i64(int64(r.AntSupport))
	e.i64(int64(r.ConSupport))
	e.f64(r.Confidence)
	e.f64(r.Lift)
}

func (e *enc) signal(s *core.Signal) {
	e.i64(int64(s.Rank))
	e.f64(s.Score)
	e.strs(s.Drugs)
	e.strs(s.Reactions)
	e.i64(int64(s.Support))
	e.f64(s.Confidence)
	e.f64(s.Lift)
	e.u8(uint8(s.SupportType))
	e.f64(s.SeriousShare)
	socs := make([]string, len(s.SOCs))
	for i, c := range s.SOCs {
		socs[i] = string(c)
	}
	e.strs(socs)
	e.strs(s.ReportIDs)
	if s.Known != nil {
		e.u8(1)
		e.strs(s.Known.Drugs)
		e.strs(s.Known.Reactions)
		e.u8(uint8(s.Known.Severity))
		e.str(s.Known.Mechanism)
		e.str(s.Known.Source)
	} else {
		e.u8(0)
	}
	// Cluster: target rule + contextual levels.
	e.rule(&s.Cluster.Target)
	e.uv(uint64(len(s.Cluster.Levels)))
	for li := range s.Cluster.Levels {
		l := &s.Cluster.Levels[li]
		e.i64(int64(l.Cardinality))
		e.uv(uint64(len(l.Rules)))
		for ri := range l.Rules {
			e.rule(&l.Rules[ri])
		}
	}
}

// hist encodes a fixed-bucket histogram: bounds then counts, each
// length-prefixed (counts carries its own length so the two halves can
// evolve independently).
func (e *enc) hist(h audit.Hist) {
	e.uv(uint64(len(h.Bounds)))
	for _, b := range h.Bounds {
		e.f64(b)
	}
	e.uv(uint64(len(h.Counts)))
	for _, c := range h.Counts {
		e.i64(c)
	}
}

// quality encodes the metric half of a quality report (findings and
// verdict are serve-time derivations and never persisted). The label
// is omitted: the meta section owns it.
func (e *enc) quality(q *audit.QualityReport) {
	e.u8(qualityFormat)
	e.i64(int64(q.ReportsIn))
	e.i64(int64(q.Reports))
	e.f64(q.DropRate)
	e.f64(q.DedupRate)
	e.f64(q.EmptyRate)
	e.i64(int64(q.Drugs))
	e.i64(int64(q.Reactions))
	e.i64(int64(q.DictItems))
	e.f64(q.AvgDrugs)
	e.f64(q.AvgReacs)
	e.i64(int64(q.Signals))
	e.hist(q.SupportHist)
	e.hist(q.ScoreHist)
}

func (e *enc) report(r *faers.Report) {
	e.str(r.PrimaryID)
	e.str(r.CaseID)
	e.str(r.ReportCode)
	e.str(r.Sex)
	e.str(r.Age)
	e.str(r.AgeCode)
	e.str(r.Country)
	e.str(r.EventDate)
	e.strs(r.Drugs)
	e.strs(r.DrugRoles)
	e.strs(r.Reactions)
	e.strs(r.Outcomes)
}

// ---------------------------------------------------------------------------
// decoder

// dec is a bounds-checked cursor over a byte slice. The first decode
// that runs past the end (or reads an impossible count) latches err;
// every later read no-ops, so call sites stay linear and the caller
// checks err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated at offset %d (need %d bytes, have %d)", d.off, n, len(d.b)-d.off)
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) f64() float64 {
	if !d.need(8) {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := d.uv()
	if !d.need(int(n)) {
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads an element count and sanity-bounds it against the bytes
// remaining (each element costs at least minBytes), so a corrupted
// count can never drive a giant allocation.
func (d *dec) count(minBytes int) int {
	n := d.uv()
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(minBytes) > int64(len(d.b)-d.off) {
		d.fail("impossible count %d at offset %d", n, d.off)
		return 0
	}
	return int(n)
}

func (d *dec) strs() []string {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *dec) itemset() types.Itemset {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	out := make(types.Itemset, n)
	for i := range out {
		out[i] = types.Item(d.u32())
	}
	return out
}

// nextSection reads one section header from the body cursor and
// returns its payload slice.
func (d *dec) nextSection() (uint16, []byte) {
	id := d.u16()
	d.u16() // reserved
	n := d.u32()
	if !d.need(int(n)) {
		return 0, nil
	}
	payload := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return id, payload
}

func (d *dec) dict() *types.Dictionary {
	n := d.count(2)
	dict := types.NewDictionary()
	for i := 0; i < n && d.err == nil; i++ {
		dom := types.Domain(d.u8())
		name := d.str()
		if dom != types.DomainDrug && dom != types.DomainReaction {
			d.fail("item %d: unknown domain %d", i, dom)
			return dict
		}
		dict.Intern(name, dom)
	}
	return dict
}

func (d *dec) rule() assoc.Rule {
	var r assoc.Rule
	r.Antecedent = d.itemset()
	r.Consequent = d.itemset()
	r.Support = int(d.i64())
	r.AntSupport = int(d.i64())
	r.ConSupport = int(d.i64())
	r.Confidence = d.f64()
	r.Lift = d.f64()
	return r
}

func (d *dec) signals() []core.Signal {
	n := d.count(8)
	out := make([]core.Signal, n)
	for i := range out {
		if d.err != nil {
			return out
		}
		s := &out[i]
		s.Rank = int(d.i64())
		s.Score = d.f64()
		s.Drugs = d.strs()
		s.Reactions = d.strs()
		s.Support = int(d.i64())
		s.Confidence = d.f64()
		s.Lift = d.f64()
		s.SupportType = assoc.SupportType(d.u8())
		s.SeriousShare = d.f64()
		for _, soc := range d.strs() {
			s.SOCs = append(s.SOCs, meddra.SOC(soc))
		}
		s.ReportIDs = d.strs()
		if d.u8() == 1 {
			s.Known = &knowledge.Interaction{
				Drugs:     d.strs(),
				Reactions: d.strs(),
				Severity:  knowledge.Severity(d.u8()),
				Mechanism: d.str(),
				Source:    d.str(),
			}
		}
		c := &mcac.Cluster{Target: d.rule()}
		nLevels := d.count(2)
		for li := 0; li < nLevels && d.err == nil; li++ {
			l := mcac.Level{Cardinality: int(d.i64())}
			nRules := d.count(8)
			for ri := 0; ri < nRules && d.err == nil; ri++ {
				l.Rules = append(l.Rules, d.rule())
			}
			c.Levels = append(c.Levels, l)
		}
		s.Cluster = c
	}
	return out
}

func (d *dec) hist() audit.Hist {
	var h audit.Hist
	if n := d.count(8); n > 0 {
		h.Bounds = make([]float64, n)
		for i := range h.Bounds {
			h.Bounds[i] = d.f64()
		}
	}
	if n := d.count(1); n > 0 {
		h.Counts = make([]int64, n)
		for i := range h.Counts {
			h.Counts[i] = d.i64()
		}
	}
	return h
}

// quality decodes the quality section. An unknown payload sub-format
// returns nil (caller recomputes from the analysis) rather than an
// error, so future writers can evolve the payload freely.
func (d *dec) quality() *audit.QualityReport {
	if d.u8() != qualityFormat {
		return nil
	}
	q := &audit.QualityReport{}
	q.ReportsIn = int(d.i64())
	q.Reports = int(d.i64())
	q.DropRate = d.f64()
	q.DedupRate = d.f64()
	q.EmptyRate = d.f64()
	q.Drugs = int(d.i64())
	q.Reactions = int(d.i64())
	q.DictItems = int(d.i64())
	q.AvgDrugs = d.f64()
	q.AvgReacs = d.f64()
	q.Signals = int(d.i64())
	q.SupportHist = d.hist()
	q.ScoreHist = d.hist()
	return q
}

func (d *dec) reports() []faers.Report {
	n := d.count(12)
	out := make([]faers.Report, n)
	for i := range out {
		if d.err != nil {
			return out
		}
		r := &out[i]
		r.PrimaryID = d.str()
		r.CaseID = d.str()
		r.ReportCode = d.str()
		r.Sex = d.str()
		r.Age = d.str()
		r.AgeCode = d.str()
		r.Country = d.str()
		r.EventDate = d.str()
		r.Drugs = d.strs()
		r.DrugRoles = d.strs()
		r.Reactions = d.strs()
		r.Outcomes = d.strs()
	}
	return out
}
