package store

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"maras/internal/core"
	"maras/internal/synth"
)

// FuzzDecode throws arbitrary bytes at the snapshot decoder. The
// contract under fuzz: Decode never panics, never allocates absurdly
// off a corrupt count, and every failure is one of the three typed
// errors (ErrBadMagic / ErrVersion / ErrCorrupt) so callers can always
// classify what they hit. Seeds cover the honest cases — a valid v2
// snapshot, a genuine v1 snapshot, truncations, a bit flip (caught by
// CRC), and degenerate prefixes.
func FuzzDecode(f *testing.F) {
	// A deliberately small quarter: mutation throughput matters more
	// than fixture richness here, and every byte of the format —
	// header, all six sections, CRC — is present regardless of size.
	cfg := synth.DefaultConfig("2014Q1", 7)
	cfg.Reports = 300
	q, _, err := synth.Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	opts := core.NewOptions()
	opts.MinSupport = 3
	opts.TopK = 10
	a, err := core.RunQuarter(q, opts)
	if err != nil {
		f.Fatal(err)
	}
	var v2, v1 bytes.Buffer
	if err := writeVersion(&v2, "2014Q1", a, time.Unix(42, 0), 2); err != nil {
		f.Fatal(err)
	}
	if err := writeVersion(&v1, "2014Q1", a, time.Unix(42, 0), 1); err != nil {
		f.Fatal(err)
	}

	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2]) // truncated mid-body
	f.Add(v2.Bytes()[:10])                // truncated inside the header
	flipped := bytes.Clone(v2.Bytes())
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("MRSN"))
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A successful decode must hand back a servable snapshot.
		if snap == nil || snap.Analysis == nil {
			t.Fatal("nil snapshot/analysis without error")
		}
		if snap.Quality == nil {
			t.Fatal("nil quality without error")
		}
	})
}
