package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"maras/internal/audit"
	"maras/internal/core"
	"maras/internal/obs"
	"maras/internal/resilience"
)

// QuarantinedExt is appended to a corrupt snapshot's filename when the
// registry quarantines it ("2014Q1.maras" -> "2014Q1.maras.quarantined").
// The suffix no longer ends in Ext, so Refresh stops discovering the
// file; an operator repairs it out of band and renames it back.
const QuarantinedExt = ".quarantined"

// DefaultStaleCap bounds the last-good stale cache when
// ResilienceOptions.StaleCap is zero.
const DefaultStaleCap = 8

// Origin labels which tier of the degradation ladder answered a
// LoadResilient call: a fresh local load, the in-memory last-good
// cache, or a replica peer. It is the value clients see in the
// OriginHeader on every quarter response.
type Origin string

const (
	OriginLocal Origin = "local"
	OriginStale Origin = "stale"
	OriginPeer  Origin = "peer"
)

// OriginHeader is the response header carrying the serving origin
// (local|stale|peer) on every quarter response.
const OriginHeader = "X-Maras-Origin"

// ResilienceOptions opts a Registry into fault-tolerant loading. The
// zero value (referenced via RegistryOptions.Resilience) enables retry,
// circuit breaking, and stale serving with defaults; quarantine stays
// opt-in because it renames files.
type ResilienceOptions struct {
	// Quarantine, when true, renames a snapshot that fails decode as
	// corrupt (ErrCorrupt/ErrBadMagic) to *.quarantined so it drops out
	// of discovery and stops tripping the breaker on every probe. Off
	// by default: repair-in-place workflows (and tests that exercise
	// them) expect the file to stay where it is.
	Quarantine bool
	// Retry bounds the transient-failure retry around each disk load;
	// the zero value takes resilience.DefaultRetry.
	Retry resilience.RetryConfig
	// Breaker tunes the per-quarter circuit breakers; the zero value
	// takes the resilience defaults.
	Breaker resilience.BreakerConfig
	// StaleCap bounds how many last-good analyses LoadResilient keeps
	// for stale serving (0 means DefaultStaleCap).
	StaleCap int
}

// fallbackCopy is one entry in the last-good cache. Copies cached by
// a fresh local load carry OriginStale (that is what a later serve of
// them is); copies fetched from a replica peer keep OriginPeer so the
// header never claims a peer's bytes were ours.
type fallbackCopy struct {
	a      *core.Analysis
	origin Origin
}

// resState is a registry's resilience machinery; nil means the
// registry behaves exactly as before the resilience layer existed.
type resState struct {
	opts     ResilienceOptions
	breakers *resilience.BreakerSet

	mu       sync.Mutex
	stale    map[string]fallbackCopy
	order    []string        // stale keys, least-recent first
	degraded map[string]bool // labels currently served from a fallback tier
}

// put inserts a copy into the bounded last-good cache. Caller holds
// s.mu.
func (s *resState) put(label string, a *core.Analysis, origin Origin) {
	if _, ok := s.stale[label]; !ok {
		s.order = append(s.order, label)
		for len(s.order) > s.opts.StaleCap {
			victim := s.order[0]
			s.order = s.order[1:]
			delete(s.stale, victim)
		}
	}
	s.stale[label] = fallbackCopy{a: a, origin: origin}
}

// initResilience wires the resilience machinery into r from opts.
func (r *Registry) initResilience(opts ResilienceOptions) {
	if opts.StaleCap <= 0 {
		opts.StaleCap = DefaultStaleCap
	}
	s := &resState{
		opts:     opts,
		stale:    map[string]fallbackCopy{},
		degraded: map[string]bool{},
	}
	s.breakers = resilience.NewBreakerSet(opts.Breaker, func(key string, from, to resilience.BreakerState) {
		if m := r.metrics; m != nil && m.BreakersOpen != nil {
			m.BreakersOpen.Set(int64(s.breakers.OpenCount()))
		}
		sev := audit.SevWarn
		if to == resilience.StateClosed {
			sev = audit.SevInfo
		}
		r.auditor.RecordEvent(audit.Event{
			Rule:     "store_breaker",
			Severity: sev,
			Scope:    key,
			Message:  fmt.Sprintf("load breaker %s -> %s", from, to),
		})
	})
	r.res = s
}

// classifyLoad decides whether a failed snapshot load is worth
// retrying. Damage and format mismatches cannot clear on their own;
// neither can a missing file or an open breaker. Everything else is
// treated as a transient I/O hiccup.
func classifyLoad(err error) resilience.Class {
	switch {
	case errors.Is(err, ErrCorrupt),
		errors.Is(err, ErrBadMagic),
		errors.Is(err, ErrVersion),
		errors.Is(err, os.ErrNotExist),
		errors.Is(err, resilience.ErrBreakerOpen),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return resilience.Permanent
	}
	return resilience.Transient
}

// openResilient performs the disk read behind a cold load. Without
// resilience options it is a plain Open (plus the load failpoint the
// chaos harness drives). With them, the read runs behind the quarter's
// circuit breaker with transient-failure retry; a corrupt decode trips
// the breaker immediately and — when opted in — quarantines the file.
func (r *Registry) openResilient(ctx context.Context, label, path string, span *obs.Span) (*Snapshot, error) {
	loadOnce := func(context.Context) (*Snapshot, error) {
		if err := resilience.Inject(resilience.FPLoad); err != nil {
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
		return Open(path)
	}
	if r.res == nil {
		return loadOnce(ctx)
	}
	br := r.res.breakers.Get(label)
	if !br.Allow() {
		span.SetAttr("breaker", "open")
		return nil, fmt.Errorf("store: quarter %q: %w", label, resilience.ErrBreakerOpen)
	}
	var snap *Snapshot
	attempts, err := r.res.opts.Retry.Do(ctx, func(ctx context.Context) error {
		s, e := loadOnce(ctx)
		if e == nil {
			snap = s
		}
		return e
	}, classifyLoad)
	if attempts > 1 {
		if m := r.metrics; m != nil && m.Retries != nil {
			m.Retries.Add(int64(attempts - 1))
		}
		span.SetInt("retries", int64(attempts-1))
	}
	if err != nil {
		permanent := classifyLoad(err) == resilience.Permanent
		br.Failure(permanent)
		if r.res.opts.Quarantine && (errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadMagic)) {
			r.quarantine(label, path, err)
		}
		return nil, err
	}
	br.Success()
	return snap, nil
}

// quarantine moves label's corrupt snapshot aside and removes the
// quarter from discovery: the file keeps its bytes for forensics, the
// serving path stops routing to it, and the breaker (now guarding
// nothing) is dropped. An operator repairs the file and renames it
// back (or re-mines with Save); either way the quarter returns.
func (r *Registry) quarantine(label, path string, cause error) {
	qpath := path + QuarantinedExt
	if err := os.Rename(path, qpath); err != nil {
		r.auditor.RecordEvent(audit.Event{
			Rule:     "store_quarantine",
			Severity: audit.SevFail,
			Scope:    label,
			Message:  "quarantine rename failed: " + err.Error(),
		})
		return
	}
	if m := r.metrics; m != nil && m.Quarantined != nil {
		m.Quarantined.Inc()
	}
	r.auditor.RecordEvent(audit.Event{
		Rule:     "store_quarantine",
		Severity: audit.SevFail,
		Scope:    label,
		Message:  fmt.Sprintf("corrupt snapshot quarantined to %s: %v", filepath.Base(qpath), cause),
	})
	r.mu.Lock()
	for i, q := range r.quarters {
		if q == label {
			r.quarters = append(r.quarters[:i], r.quarters[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	r.qmu.Lock()
	delete(r.quality, label)
	r.qmu.Unlock()
	r.invalidateTrend()
	r.res.breakers.Remove(label)
	// Remove drops the breaker without a state-change callback; refresh
	// the gauge so an open breaker does not linger on /metrics after
	// its quarter is gone.
	if m := r.metrics; m != nil && m.BreakersOpen != nil {
		m.BreakersOpen.Set(int64(r.res.breakers.OpenCount()))
	}
}

// SetPeerFetch installs the replica read-failover hook: a function
// that fetches label's analysis from any healthy peer (verified
// bytes, decoded in memory). LoadResilient consults it as the last
// rung of the degradation ladder, after the live load and the
// last-good cache have both failed. Wire it before serving starts.
func (r *Registry) SetPeerFetch(fetch func(ctx context.Context, label string) (*core.Analysis, error)) {
	r.mu.Lock()
	r.peerFetch = fetch
	r.mu.Unlock()
}

func (r *Registry) peerFetcher() func(ctx context.Context, label string) (*core.Analysis, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peerFetch
}

// LoadResilient is LoadContext with graceful degradation, answering
// from the first tier of the ladder that can: the live local load
// (OriginLocal), the in-memory last-good cache (OriginStale — or
// OriginPeer when the cached copy itself came from a replica), then a
// replica peer via the SetPeerFetch hook (OriginPeer). A fresh local
// success repopulates the cache and clears the quarter's degraded
// mark; on error the returned Origin is empty. Without resilience
// options it is LoadContext with OriginLocal on success.
func (r *Registry) LoadResilient(ctx context.Context, label string) (*core.Analysis, Origin, error) {
	a, err := r.LoadContext(ctx, label)
	if err == nil {
		r.noteFresh(label, a)
		return a, OriginLocal, nil
	}
	if r.res == nil {
		return nil, "", err
	}
	if fc := r.fallbackFor(label); fc.a != nil {
		if m := r.metrics; m != nil {
			switch {
			case fc.origin == OriginPeer && m.PeerServes != nil:
				m.PeerServes.Inc()
			case fc.origin != OriginPeer && m.StaleServes != nil:
				m.StaleServes.Inc()
			}
		}
		if span := obs.ActiveSpan(ctx); span != nil {
			span.SetAttr("origin", string(fc.origin))
			if fc.origin == OriginStale {
				span.SetAttr("stale", "true")
			}
		}
		r.markDegraded(label, fc.origin, err)
		return fc.a, fc.origin, nil
	}
	if fetch := r.peerFetcher(); fetch != nil {
		pa, perr := fetch(ctx, label)
		if perr == nil && pa != nil {
			if m := r.metrics; m != nil && m.PeerServes != nil {
				m.PeerServes.Inc()
			}
			if span := obs.ActiveSpan(ctx); span != nil {
				span.SetAttr("origin", string(OriginPeer))
			}
			if s := r.res; s != nil {
				s.mu.Lock()
				s.put(label, pa, OriginPeer)
				s.mu.Unlock()
			}
			r.markDegraded(label, OriginPeer, err)
			return pa, OriginPeer, nil
		}
	}
	return nil, "", err
}

// noteFresh records a successful live load: the analysis becomes the
// quarter's last-good stale copy, and a previously degraded quarter is
// marked recovered on the audit timeline.
func (r *Registry) noteFresh(label string, a *core.Analysis) {
	s := r.res
	if s == nil {
		return
	}
	s.mu.Lock()
	s.put(label, a, OriginStale)
	recovered := s.degraded[label]
	delete(s.degraded, label)
	s.mu.Unlock()
	if recovered {
		r.auditor.ForgetEvent("store_stale/" + label)
		r.auditor.RecordEvent(audit.Event{
			Rule:     "store_degraded",
			Severity: audit.SevInfo,
			Scope:    label,
			Message:  "quarter recovered: serving fresh snapshot again",
		})
	}
}

// fallbackFor returns label's cached last-good copy, refreshing its
// LRU position; the zero value means no copy.
func (r *Registry) fallbackFor(label string) fallbackCopy {
	s := r.res
	s.mu.Lock()
	defer s.mu.Unlock()
	fc := s.stale[label]
	if fc.a != nil {
		for i, l := range s.order {
			if l == label {
				s.order = append(append(append([]string{}, s.order[:i]...), s.order[i+1:]...), label)
				break
			}
		}
	}
	return fc
}

// markDegraded flags label as served from a fallback tier and records
// one audit event per degradation episode (cleared by the next fresh
// load).
func (r *Registry) markDegraded(label string, origin Origin, cause error) {
	s := r.res
	s.mu.Lock()
	first := !s.degraded[label]
	s.degraded[label] = true
	s.mu.Unlock()
	if first {
		msg := "serving last-good stale snapshot: " + cause.Error()
		if origin == OriginPeer {
			msg = "serving from replica peer: " + cause.Error()
		}
		r.auditor.RecordEventOnce("store_stale/"+label, audit.Event{
			Rule:     "store_degraded",
			Severity: audit.SevWarn,
			Scope:    label,
			Message:  msg,
		})
	}
}

// HasStale reports whether label has a cached last-good copy — i.e.
// whether LoadResilient could still answer for it even if the snapshot
// vanished from disk (quarantined, deleted).
func (r *Registry) HasStale(label string) bool {
	s := r.res
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stale[label].a != nil
}

// Degraded reports whether the registry is currently limping: any
// quarter served stale or any load breaker not closed. Always false
// without resilience options.
func (r *Registry) Degraded() bool {
	s := r.res
	if s == nil {
		return false
	}
	s.mu.Lock()
	n := len(s.degraded)
	s.mu.Unlock()
	return n > 0 || s.breakers.OpenCount() > 0
}

// BreakerStates snapshots the per-quarter load-breaker states; empty
// without resilience options.
func (r *Registry) BreakerStates() map[string]resilience.BreakerState {
	if r.res == nil {
		return map[string]resilience.BreakerState{}
	}
	return r.res.breakers.States()
}

// sweepOrphans removes write-temp files (label.maras.tmp*) left behind
// by a writer that crashed between CreateTemp and the rename. Called
// once at OpenRegistry, never during serving, so it cannot race a live
// writer's rename.
func (r *Registry) sweepOrphans() int {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if name := e.Name(); strings.Contains(name, Ext+".tmp") {
			if os.Remove(filepath.Join(r.dir, name)) == nil {
				removed++
			}
		}
	}
	if removed > 0 {
		r.auditor.RecordEvent(audit.Event{
			Rule:     "store_tmp_sweep",
			Severity: audit.SevInfo,
			Scope:    "store",
			Message:  fmt.Sprintf("removed %d orphaned snapshot temp file(s)", removed),
		})
	}
	return removed
}
