package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"maras/internal/core"
	"maras/internal/faers"
	"maras/internal/obs"
	"maras/internal/trend"
)

// quarterAnalysis builds a tiny deterministic quarter: the
// aspirin+warfarin signal with per-quarter support so trajectories
// are visible across quarters.
func quarterAnalysis(t *testing.T, pairReports int) *core.Analysis {
	t.Helper()
	var reports []faers.Report
	id := 0
	add := func(drugs, reacs []string) {
		id++
		reports = append(reports, faers.Report{
			PrimaryID: fmt.Sprintf("%d", 1000+id), CaseID: fmt.Sprintf("c%d", id),
			ReportCode: "EXP", Drugs: drugs, Reactions: reacs,
		})
	}
	for i := 0; i < pairReports; i++ {
		add([]string{"ASPIRIN", "WARFARIN"}, []string{"Haemorrhage"})
	}
	for i := 0; i < 20; i++ {
		add([]string{"ASPIRIN"}, []string{"Nausea"})
		add([]string{"WARFARIN"}, []string{"Dizziness"})
	}
	opts := core.NewOptions()
	opts.MinSupport = 3
	a, err := core.Run(reports, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Fatal("no signals in registry fixture")
	}
	return a
}

// tempStore saves n quarters (2014Q1..) into a temp dir and returns
// the dir.
func tempStore(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("2014Q%d", i+1)
		a := quarterAnalysis(t, 8+4*i)
		if err := WriteFile(filepath.Join(dir, label+Ext), label, a); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRegistryDiscoveryAndLoad(t *testing.T) {
	dir := tempStore(t, 3)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"2014Q1", "2014Q2", "2014Q3"}
	if got := reg.Quarters(); !equalStrings(got, want) {
		t.Fatalf("quarters = %v, want %v", got, want)
	}
	if reg.Latest() != "2014Q3" {
		t.Errorf("latest = %q", reg.Latest())
	}
	a, err := reg.Load("2014Q2")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Signals) == 0 {
		t.Error("loaded quarter has no signals")
	}
	// Warm load: same pointer, no re-read.
	b, err := reg.Load("2014Q2")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("warm load rebuilt the analysis")
	}
	if _, err := reg.Load("2019Q1"); err == nil {
		t.Error("loading an absent quarter succeeded")
	}
}

func TestRegistryLRUAndMetrics(t *testing.T) {
	dir := tempStore(t, 3)
	mreg := obs.NewRegistry()
	m := obs.NewStoreMetrics(mreg)
	var evicted []string
	var mu sync.Mutex
	reg, err := OpenRegistry(dir, RegistryOptions{
		MaxOpen: 2,
		Metrics: m,
		OnEvict: func(label string) {
			mu.Lock()
			evicted = append(evicted, label)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustLoad := func(label string) {
		t.Helper()
		if _, err := reg.Load(label); err != nil {
			t.Fatal(err)
		}
	}
	mustLoad("2014Q1")
	mustLoad("2014Q2")
	mustLoad("2014Q1") // touch Q1 so Q2 is the LRU victim
	mustLoad("2014Q3") // evicts Q2
	mu.Lock()
	gotEvicted := append([]string{}, evicted...)
	mu.Unlock()
	if !equalStrings(gotEvicted, []string{"2014Q2"}) {
		t.Errorf("evicted = %v, want [2014Q2]", gotEvicted)
	}
	if n := reg.OpenCount(); n != 2 {
		t.Errorf("open quarters = %d, want 2", n)
	}
	if v := m.OpenQuarters.Value(); v != 2 {
		t.Errorf("open gauge = %d, want 2", v)
	}
	if v := m.Hits.Value(); v != 1 {
		t.Errorf("hits = %d, want 1", v)
	}
	if v := m.Misses.Value(); v != 3 {
		t.Errorf("misses = %d, want 3", v)
	}
	if v := m.Evictions.Value(); v != 1 {
		t.Errorf("evictions = %d, want 1", v)
	}
	if m.LoadSeconds.Count() != 3 {
		t.Errorf("load histogram count = %d, want 3", m.LoadSeconds.Count())
	}
	if m.BytesRead.Value() <= 0 {
		t.Error("bytes-read counter did not move")
	}
	// The store series render on a scrape.
	var sb strings.Builder
	mreg.WritePrometheus(&sb)
	for _, want := range []string{
		"maras_store_snapshot_load_seconds",
		"maras_store_open_quarters",
		"maras_store_cache_hits_total",
		"maras_store_cache_misses_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestRegistrySaveThenServe(t *testing.T) {
	dir := t.TempDir()
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Quarters(); len(got) != 0 {
		t.Fatalf("fresh store not empty: %v", got)
	}
	a := quarterAnalysis(t, 10)
	if err := reg.Save("2015Q1", a); err != nil {
		t.Fatal(err)
	}
	if !reg.Has("2015Q1") {
		t.Fatal("saved quarter not registered")
	}
	got, err := reg.Load("2015Q1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Signals) != len(a.Signals) {
		t.Errorf("signals %d vs %d", len(got.Signals), len(a.Signals))
	}
	// A second registry over the same dir sees it too (discovery).
	reg2, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reg2.Has("2015Q1") {
		t.Error("second registry does not discover the saved quarter")
	}
}

func TestRegistryTimeline(t *testing.T) {
	dir := tempStore(t, 4)
	reg, err := OpenRegistry(dir, RegistryOptions{MaxOpen: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels, traj, err := reg.Timeline("ASPIRIN+WARFARIN")
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
	if traj == nil {
		t.Fatal("no trajectory for the planted combination")
	}
	if traj.Quarters() != 4 {
		t.Errorf("signaled in %d quarters, want 4", traj.Quarters())
	}
	if c := traj.Classify(); c != trend.Persistent {
		t.Errorf("class = %v, want persistent", c)
	}
	// Support ramps with the fixture (8, 12, 16, 20).
	for i := 1; i < len(traj.Points); i++ {
		if traj.Points[i].Support <= traj.Points[i-1].Support {
			t.Errorf("support not ramping: %+v", traj.Points)
			break
		}
	}
	if _, missing, err := reg.Timeline("NOPE+NADA"); err != nil || missing != nil {
		t.Errorf("absent key: traj=%v err=%v", missing, err)
	}
}

func TestRegistryTracerRecordsLoadNotMine(t *testing.T) {
	dir := tempStore(t, 1)
	tracer := obs.NewTracer(nil)
	reg, err := OpenRegistry(dir, RegistryOptions{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("2014Q1"); err != nil {
		t.Fatal(err)
	}
	recs := tracer.Records()
	if len(recs) != 1 || recs[0].Name != StageSnapshotLoad {
		t.Fatalf("trace = %+v, want one %s stage", recs, StageSnapshotLoad)
	}
	for _, r := range recs {
		if r.Name == core.StageMine {
			t.Fatal("serving a warm quarter ran the miner")
		}
	}
}

func TestRegistryCorruptFileTypedError(t *testing.T) {
	dir := tempStore(t, 1)
	// Damage the snapshot on disk.
	path := filepath.Join(dir, "2014Q1"+Ext)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("2014Q1"); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	// Repair the file: the failed entry must not be cached.
	data[len(data)/3] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("2014Q1"); err != nil {
		t.Errorf("repaired snapshot still failing: %v", err)
	}
}

func TestRegistryConcurrentLoads(t *testing.T) {
	dir := tempStore(t, 3)
	reg, err := OpenRegistry(dir, RegistryOptions{MaxOpen: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := reg.Quarters()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := reg.Load(labels[i%len(labels)]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spanNames extracts the names of a trace's spans, insertion order.
func spanNames(rec obs.TraceRecord) []string {
	out := make([]string, len(rec.Spans))
	for i, s := range rec.Spans {
		out[i] = s.Name
	}
	return out
}

// TestLoadContextSpans is the acceptance check for store-side span
// propagation: a cold load produces store_load{cache=lru_miss} with a
// snapshot_decode child; the warm load produces store_load{cache=lru_hit}
// and no decode.
func TestLoadContextSpans(t *testing.T) {
	dir := tempStore(t, 1)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	runLoad := func(id string) obs.TraceRecord {
		tr := obs.NewTrace(id)
		ctx, root := tr.StartRoot(context.Background(), "test "+id)
		if _, err := reg.LoadContext(ctx, "2014Q1"); err != nil {
			t.Fatal(err)
		}
		root.End()
		return tr.Snapshot()
	}

	cold := runLoad("cold")
	byName := map[string]obs.SpanRecord{}
	for _, s := range cold.Spans {
		byName[s.Name] = s
	}
	load, ok := byName[SpanLoad]
	if !ok {
		t.Fatalf("cold trace missing %s span: %v", SpanLoad, spanNames(cold))
	}
	if load.Attrs["cache"] != "lru_miss" || load.Attrs["quarter"] != "2014Q1" {
		t.Errorf("cold load attrs = %v", load.Attrs)
	}
	dec, ok := byName[SpanDecode]
	if !ok {
		t.Fatalf("cold trace missing %s span: %v", SpanDecode, spanNames(cold))
	}
	if dec.Parent != load.ID {
		t.Errorf("decode parent = %d, want load %d", dec.Parent, load.ID)
	}
	if dec.Attrs["bytes"] == "" || dec.Attrs["signals"] == "" {
		t.Errorf("decode attrs = %v", dec.Attrs)
	}

	warm := runLoad("warm")
	names := spanNames(warm)
	var warmLoad *obs.SpanRecord
	for i, s := range warm.Spans {
		if s.Name == SpanDecode {
			t.Errorf("warm load decoded again: %v", names)
		}
		if s.Name == SpanLoad {
			warmLoad = &warm.Spans[i]
		}
	}
	if warmLoad == nil {
		t.Fatalf("warm trace missing %s span: %v", SpanLoad, names)
	}
	if warmLoad.Attrs["cache"] != "lru_hit" {
		t.Errorf("warm load attrs = %v", warmLoad.Attrs)
	}
}

// TestTimelineContextSpans: cross-quarter assembly opens a
// trend_assemble span with one store_load child per quarter.
func TestTimelineContextSpans(t *testing.T) {
	dir := tempStore(t, 3)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("tl")
	ctx, root := tr.StartRoot(context.Background(), "GET /api/timeline/")
	if _, _, err := reg.TimelineContext(ctx, "ASPIRIN+WARFARIN"); err != nil {
		t.Fatal(err)
	}
	root.End()

	rec := tr.Snapshot()
	var assembleID = -2
	loads := 0
	for _, s := range rec.Spans {
		if s.Name == SpanAssemble {
			assembleID = s.ID
			if s.Attrs["quarters"] != "3" {
				t.Errorf("assemble quarters attr = %v", s.Attrs)
			}
		}
	}
	if assembleID == -2 {
		t.Fatalf("no %s span: %v", SpanAssemble, spanNames(rec))
	}
	for _, s := range rec.Spans {
		if s.Name == SpanLoad {
			loads++
			if s.Parent != assembleID {
				t.Errorf("load span parented to %d, want assemble %d", s.Parent, assembleID)
			}
		}
	}
	if loads != 3 {
		t.Errorf("store_load spans = %d, want 3", loads)
	}
}

// TestRefreshContextSpan: the rescan is visible as store_rescan.
func TestRefreshContextSpan(t *testing.T) {
	dir := tempStore(t, 2)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("rescan")
	ctx, root := tr.StartRoot(context.Background(), "GET /api/quarters")
	if err := reg.RefreshContext(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()
	rec := tr.Snapshot()
	found := false
	for _, s := range rec.Spans {
		if s.Name == SpanRescan {
			found = true
			if s.Attrs["quarters"] != "2" {
				t.Errorf("rescan attrs = %v", s.Attrs)
			}
		}
	}
	if !found {
		t.Fatalf("no %s span: %v", SpanRescan, spanNames(rec))
	}
}

// TestLoadContextWithoutSpanStillWorks: span-free contexts take the
// same path (the production default when tracing is off).
func TestLoadContextWithoutSpanStillWorks(t *testing.T) {
	dir := tempStore(t, 1)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.LoadContext(context.Background(), "2014Q1")
	if err != nil || len(a.Signals) == 0 {
		t.Fatalf("plain context load: %v", err)
	}
}
