package store

import (
	"context"
	"fmt"

	"maras/internal/audit"
	"maras/internal/obs"
)

// Audit serving: the Registry is where per-quarter snapshots and the
// cross-quarter view meet, so it assembles the two audit reports —
// ingest quality per quarter (persisted metrics + serve-time verdict
// against the trailing quarters) and signal drift between quarters
// (diffed from the cached trend assembly). Both paths record spans and
// route findings through the configured Auditor.

// Audit span names.
const (
	SpanQuality = "audit_quality"
	SpanDrift   = "audit_drift"
)

// Quality returns label's evaluated ingest-quality report: the
// persisted (or recomputed) metrics plus findings and a verdict from
// the audit thresholds, judged against up to Thresholds.Trailing
// preceding quarters. See QualityContext.
func (r *Registry) Quality(label string) (*audit.QualityReport, error) {
	return r.QualityContext(context.Background(), label)
}

// QualityContext is Quality with a request context: the evaluation
// records an "audit_quality" span, and any findings are recorded on
// the auditor's event log (deduplicated per quarter and rule).
//
// The returned report is a copy — the cached metric report is shared
// and immutable, while findings and verdict depend on thresholds that
// can differ per process.
func (r *Registry) QualityContext(ctx context.Context, label string) (*audit.QualityReport, error) {
	ctx, span := obs.StartSpan(ctx, SpanQuality)
	defer span.End()
	span.SetAttr("quarter", label)

	cur, err := r.qualityMetrics(ctx, label)
	if err != nil {
		span.SetAttr("error", err.Error())
		return nil, err
	}
	th := r.auditor.ActiveThresholds()
	trailing := r.trailingQuality(ctx, label, th.Trailing)
	span.SetInt("trailing", int64(len(trailing)))

	cp := *cur
	cp.Findings = nil
	audit.EvaluateQuality(&cp, trailing, th)
	span.SetAttr("verdict", string(cp.Verdict))
	r.auditor.RecordQuality(&cp)
	return &cp, nil
}

// qualityMetrics returns the cached metric-only quality report for
// label, loading the snapshot (which publishes it) on a cache miss.
func (r *Registry) qualityMetrics(ctx context.Context, label string) (*audit.QualityReport, error) {
	r.qmu.Lock()
	q := r.quality[label]
	r.qmu.Unlock()
	if q != nil {
		return q, nil
	}
	if _, err := r.LoadContext(ctx, label); err != nil {
		return nil, err
	}
	r.qmu.Lock()
	q = r.quality[label]
	r.qmu.Unlock()
	if q == nil {
		return nil, fmt.Errorf("store: quarter %q loaded without quality", label)
	}
	return q, nil
}

// trailingQuality collects the metric reports of up to n quarters
// preceding label (oldest first). Loads are best-effort: a quarter
// that fails to load is skipped rather than failing the evaluation —
// a corrupt old snapshot should not mask the current quarter's
// verdict.
func (r *Registry) trailingQuality(ctx context.Context, label string, n int) []*audit.QualityReport {
	labels := r.Quarters()
	idx := -1
	for i, l := range labels {
		if l == label {
			idx = i
			break
		}
	}
	if idx <= 0 || n <= 0 {
		return nil
	}
	lo := idx - n
	if lo < 0 {
		lo = 0
	}
	var out []*audit.QualityReport
	for _, l := range labels[lo:idx] {
		q, err := r.qualityMetrics(ctx, l)
		if err != nil {
			continue
		}
		out = append(out, q)
	}
	return out
}

// Drift diffs the ranked top-K signal sets of two stored quarters. See
// DriftContext.
func (r *Registry) Drift(from, to string) (*audit.DriftReport, error) {
	return r.DriftContext(context.Background(), from, to)
}

// DriftContext assembles (or reuses) the cross-quarter trend analysis
// and diffs quarters from and to over the auditor's top-K, recording
// an "audit_drift" span and routing threshold breaches to the event
// log. The quarters are conventionally adjacent but any stored pair
// works.
func (r *Registry) DriftContext(ctx context.Context, from, to string) (*audit.DriftReport, error) {
	ctx, span := obs.StartSpan(ctx, SpanDrift)
	defer span.End()
	span.SetAttr("from", from)
	span.SetAttr("to", to)

	for _, label := range []string{from, to} {
		if !r.Has(label) {
			err := fmt.Errorf("store: quarter %q not in %s", label, r.dir)
			span.SetAttr("error", err.Error())
			return nil, err
		}
	}
	ta, err := r.TrendAnalysisContext(ctx)
	if err != nil {
		span.SetAttr("error", err.Error())
		return nil, err
	}
	th := r.auditor.ActiveThresholds()
	d, err := audit.Drift(ta, from, to, th.TopK)
	if err != nil {
		span.SetAttr("error", err.Error())
		return nil, err
	}
	audit.EvaluateDrift(d, th)
	span.SetInt("new", int64(d.New))
	span.SetInt("dropped", int64(d.Dropped))
	span.SetAttr("verdict", string(d.Verdict))
	r.auditor.RecordDrift(d)
	return d, nil
}
