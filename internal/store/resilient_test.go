package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maras/internal/audit"
	"maras/internal/obs"
	"maras/internal/resilience"
)

// resilientRegistry opens a registry over dir with the resilience
// layer on (quarantine included) and fast retry/breaker settings, and
// returns it with its audit log for event assertions.
func resilientRegistry(t *testing.T, dir string) (*Registry, *audit.Log) {
	t.Helper()
	log := audit.NewLog(audit.LogOptions{})
	reg, err := OpenRegistry(dir, RegistryOptions{
		Metrics: obs.NewStoreMetrics(obs.NewRegistry()),
		Auditor: &audit.Auditor{Log: log},
		Resilience: &ResilienceOptions{
			Quarantine: true,
			Retry:      resilience.RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Budget: time.Second},
			Breaker:    resilience.BreakerConfig{FailureThreshold: 2, Cooldown: 50 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg, log
}

func hasEvent(log *audit.Log, rule, scope string) bool {
	for _, e := range log.Recent(0) {
		if e.Rule == rule && e.Scope == scope {
			return true
		}
	}
	return false
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineThenRecover(t *testing.T) {
	dir := tempStore(t, 2)
	path := filepath.Join(dir, "2014Q1"+Ext)
	corruptFile(t, path)
	reg, log := resilientRegistry(t, dir)

	if _, err := reg.Load("2014Q1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt load error = %v, want ErrCorrupt", err)
	}
	// The corrupt file is renamed aside and the quarter leaves discovery.
	if _, err := os.Stat(path + QuarantinedExt); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("original snapshot still present: %v", err)
	}
	if reg.Has("2014Q1") {
		t.Fatal("quarantined quarter still discoverable")
	}
	if !hasEvent(log, "store_quarantine", "2014Q1") {
		t.Fatal("no store_quarantine audit event")
	}
	// The healthy sibling is unaffected.
	if _, err := reg.Load("2014Q2"); err != nil {
		t.Fatalf("healthy quarter failed: %v", err)
	}

	// Recover: the operator repairs the quarantined bytes and renames
	// the file back; a rescan re-admits the quarter and loads succeed.
	qdata, err := os.ReadFile(path + QuarantinedExt)
	if err != nil {
		t.Fatal(err)
	}
	qdata[len(qdata)/3] ^= 0x55
	if err := os.WriteFile(path, qdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path + QuarantinedExt); err != nil {
		t.Fatal(err)
	}
	if err := reg.Refresh(); err != nil {
		t.Fatal(err)
	}
	if a, err := reg.Load("2014Q1"); err != nil || len(a.Signals) == 0 {
		t.Fatalf("recovered quarter: %v", err)
	}
}

func TestQuarantineOffByDefault(t *testing.T) {
	dir := tempStore(t, 1)
	path := filepath.Join(dir, "2014Q1"+Ext)
	corruptFile(t, path)
	log := audit.NewLog(audit.LogOptions{})
	reg, err := OpenRegistry(dir, RegistryOptions{
		Auditor: &audit.Auditor{Log: log},
		Resilience: &ResilienceOptions{
			Retry: resilience.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Budget: time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("2014Q1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file was moved without Quarantine opt-in: %v", err)
	}
}

func TestRetryRecoversTransientLoad(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	dir := tempStore(t, 1)
	reg, _ := resilientRegistry(t, dir)
	// One injected transient error: the first attempt fails, the retry
	// succeeds, and the caller never sees the fault.
	if err := resilience.Enable(resilience.FPLoad + "=error*1"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("2014Q1"); err != nil {
		t.Fatalf("retry did not absorb a single transient fault: %v", err)
	}
}

func TestBreakerOpensAndServesStale(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	dir := tempStore(t, 1)
	reg, log := resilientRegistry(t, dir)
	ctx := context.Background()

	// Warm the quarter (populates the stale cache) then evict it so the
	// next load must hit disk.
	if a, origin, err := reg.LoadResilient(ctx, "2014Q1"); err != nil || origin != OriginLocal || a == nil {
		t.Fatalf("warm load: origin=%v err=%v", origin, err)
	}
	reg.mu.Lock()
	delete(reg.open, "2014Q1")
	reg.removeLRULocked("2014Q1")
	reg.mu.Unlock()

	// Every disk attempt now fails; retries exhaust, the breaker trips,
	// and LoadResilient degrades to the last-good copy.
	if err := resilience.Enable(resilience.FPLoad + "=error"); err != nil {
		t.Fatal(err)
	}
	a, origin, err := reg.LoadResilient(ctx, "2014Q1")
	if err != nil || origin != OriginStale || a == nil {
		t.Fatalf("degraded load: origin=%v err=%v", origin, err)
	}
	if !reg.Degraded() {
		t.Fatal("registry does not report degraded while serving stale")
	}
	if !hasEvent(log, "store_degraded", "2014Q1") {
		t.Fatal("no store_degraded audit event")
	}
	// Keep failing until the breaker opens (threshold 2), then verify
	// fail-fast: an open breaker still serves stale.
	reg.LoadResilient(ctx, "2014Q1")
	if st := reg.BreakerStates()["2014Q1"]; st != resilience.StateOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	if _, origin, err := reg.LoadResilient(ctx, "2014Q1"); err != nil || origin != OriginStale {
		t.Fatalf("open-breaker load: origin=%v err=%v", origin, err)
	}

	// Fault clears; after the cooldown the half-open probe succeeds,
	// the breaker closes, and serving is fresh again with a recovery
	// event on the log.
	resilience.DisableAll()
	time.Sleep(60 * time.Millisecond)
	if _, origin, err := reg.LoadResilient(ctx, "2014Q1"); err != nil || origin != OriginLocal {
		t.Fatalf("recovered load: origin=%v err=%v", origin, err)
	}
	if st := reg.BreakerStates()["2014Q1"]; st != resilience.StateClosed {
		t.Fatalf("breaker state after recovery = %v", st)
	}
	if reg.Degraded() {
		t.Fatal("registry still degraded after recovery")
	}
	found := false
	for _, e := range log.Recent(0) {
		if e.Rule == "store_degraded" && e.Scope == "2014Q1" && strings.Contains(e.Message, "recovered") {
			found = true
		}
	}
	if !found {
		t.Fatal("no recovery audit event")
	}
}

func TestLoadResilientNoStaleCopyFails(t *testing.T) {
	t.Cleanup(resilience.DisableAll)
	dir := tempStore(t, 1)
	reg, _ := resilientRegistry(t, dir)
	if err := resilience.Enable(resilience.FPLoad + "=error"); err != nil {
		t.Fatal(err)
	}
	if _, origin, err := reg.LoadResilient(context.Background(), "2014Q1"); err == nil || origin != "" {
		t.Fatalf("cold failing quarter served somehow: origin=%v err=%v", origin, err)
	}
}

func TestSweepOrphanedTempFiles(t *testing.T) {
	dir := tempStore(t, 1)
	orphan := filepath.Join(dir, "2014Q1"+Ext+".tmp123456")
	if err := os.WriteFile(orphan, []byte("partial write"), 0o600); err != nil {
		t.Fatal(err)
	}
	log := audit.NewLog(audit.LogOptions{})
	reg, err := OpenRegistry(dir, RegistryOptions{Auditor: &audit.Auditor{Log: log}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan temp file survived startup: %v", err)
	}
	if got := reg.Quarters(); len(got) != 1 || got[0] != "2014Q1" {
		t.Fatalf("quarters = %v", got)
	}
	if !hasEvent(log, "store_tmp_sweep", "store") {
		t.Fatal("no store_tmp_sweep audit event")
	}
}

func TestStaleCacheBounded(t *testing.T) {
	dir := tempStore(t, 1)
	log := audit.NewLog(audit.LogOptions{})
	reg, err := OpenRegistry(dir, RegistryOptions{
		Auditor:    &audit.Auditor{Log: log},
		Resilience: &ResilienceOptions{StaleCap: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mint extra quarters beyond the stale cap.
	a := quarterAnalysis(t, 8)
	for i := 2; i <= 4; i++ {
		if err := reg.Save(fmt.Sprintf("2014Q%d", i), a); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, l := range []string{"2014Q1", "2014Q2", "2014Q3", "2014Q4"} {
		if _, _, err := reg.LoadResilient(ctx, l); err != nil {
			t.Fatal(err)
		}
	}
	reg.res.mu.Lock()
	n := len(reg.res.stale)
	reg.res.mu.Unlock()
	if n != 2 {
		t.Fatalf("stale cache holds %d entries, cap 2", n)
	}
}
