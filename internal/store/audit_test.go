package store

import (
	"context"
	"testing"

	"maras/internal/audit"
	"maras/internal/obs"
)

func TestRegistryQuality(t *testing.T) {
	dir := tempStore(t, 3)
	log := audit.NewLog(audit.LogOptions{})
	reg, err := OpenRegistry(dir, RegistryOptions{
		Auditor: &audit.Auditor{Log: log},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := reg.Quality("2014Q2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Label != "2014Q2" {
		t.Errorf("label = %q", q.Label)
	}
	if q.Reports == 0 || q.Signals == 0 {
		t.Errorf("empty metrics: %+v", q)
	}
	if q.Verdict == "" {
		t.Error("quality not evaluated (no verdict)")
	}
	// The fixture quarters are clean and similar — verdict ok.
	if q.Verdict != audit.SevOK {
		t.Errorf("verdict = %s, findings %+v", q.Verdict, q.Findings)
	}

	// The cached metric report must stay findings-free (the returned
	// report is a copy).
	reg.qmu.Lock()
	cached := reg.quality["2014Q2"]
	reg.qmu.Unlock()
	if cached == nil {
		t.Fatal("quality not cached after evaluation")
	}
	if cached.Findings != nil || cached.Verdict != "" {
		t.Errorf("cached metrics polluted by evaluation: %+v", cached)
	}

	if _, err := reg.Quality("2099Q1"); err == nil {
		t.Error("quality of absent quarter succeeded")
	}
}

func TestRegistryQualitySurvivesEviction(t *testing.T) {
	dir := tempStore(t, 3)
	reg, err := OpenRegistry(dir, RegistryOptions{MaxOpen: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Touch all three quarters; with MaxOpen 1 the analyses are
	// evicted, but the quality map must retain every label.
	for _, l := range reg.Quarters() {
		if _, err := reg.Quality(l); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.OpenCount(); got > 1 {
		t.Fatalf("open quarters = %d, want <= 1", got)
	}
	reg.qmu.Lock()
	n := len(reg.quality)
	reg.qmu.Unlock()
	if n != 3 {
		t.Fatalf("quality cache held %d labels, want 3 (must survive LRU eviction)", n)
	}
}

func TestRegistryDrift(t *testing.T) {
	dir := tempStore(t, 3)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := reg.Drift("2014Q1", "2014Q2")
	if err != nil {
		t.Fatal(err)
	}
	if d.From != "2014Q1" || d.To != "2014Q2" {
		t.Fatalf("pair = %s->%s", d.From, d.To)
	}
	if d.FromSignals == 0 || d.ToSignals == 0 {
		t.Fatalf("empty compared sets: %+v", d)
	}
	// The aspirin+warfarin signal persists across the fixture quarters.
	found := false
	for _, sd := range d.Deltas {
		if sd.Key == "ASPIRIN+WARFARIN" && sd.Status == audit.StatusPersisting {
			found = true
			if sd.SupportDelta <= 0 {
				t.Errorf("fixture support ramps up, delta = %d", sd.SupportDelta)
			}
		}
	}
	if !found {
		t.Errorf("ASPIRIN+WARFARIN not persisting in deltas: %+v", d.Deltas)
	}
	if d.Verdict == "" {
		t.Error("drift not evaluated")
	}

	if _, err := reg.Drift("2014Q1", "2099Q1"); err == nil {
		t.Error("drift with absent quarter succeeded")
	}
}

func TestRegistryTrendCacheReuseAndInvalidation(t *testing.T) {
	dir := tempStore(t, 2)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ta1, err := reg.TrendAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	ta2, err := reg.TrendAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if ta1 != ta2 {
		t.Error("unchanged store re-assembled the trend analysis")
	}

	// Saving a new quarter invalidates the cache and the next assembly
	// covers it.
	if err := reg.Save("2014Q3", quarterAnalysis(t, 20)); err != nil {
		t.Fatal(err)
	}
	ta3, err := reg.TrendAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if ta3 == ta1 {
		t.Error("Save did not invalidate the trend cache")
	}
	if len(ta3.Quarters) != 3 {
		t.Errorf("rebuilt analysis covers %v", ta3.Quarters)
	}
}

func TestRegistryQualityAuditEvents(t *testing.T) {
	dir := tempStore(t, 3)
	reg, err := OpenRegistry(dir, RegistryOptions{
		// The fixture ramps report volume across quarters (the pair
		// support grows), so an absurdly tight volume band makes the
		// newest quarter warn against its trailing mean.
		Auditor: &audit.Auditor{
			Log:        audit.NewLog(audit.LogOptions{}),
			Thresholds: audit.Thresholds{VolumeSwing: 0.999},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := reg.Quality("2014Q3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Verdict != audit.SevWarn {
		t.Fatalf("verdict = %s with VolumeSwing 0.999, findings %+v", q.Verdict, q.Findings)
	}
	// Re-evaluating must not duplicate the event.
	if _, err := reg.Quality("2014Q3"); err != nil {
		t.Fatal(err)
	}
	log := reg.auditor.Log
	if got := log.Stats().Total; got != 1 {
		t.Fatalf("events = %d, want 1 (deduplicated)", got)
	}
	ev := log.Recent(1)[0]
	if ev.Rule != audit.RuleVolume || ev.Scope != "2014Q3" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestRegistryAuditSpans(t *testing.T) {
	dir := tempStore(t, 2)
	reg, err := OpenRegistry(dir, RegistryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("audit")
	ctx, root := tr.StartRoot(context.Background(), "test")
	if _, err := reg.QualityContext(ctx, "2014Q2"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.DriftContext(ctx, "2014Q1", "2014Q2"); err != nil {
		t.Fatal(err)
	}
	root.End()
	rec := tr.Snapshot()
	names := spanNames(rec)
	for _, want := range []string{SpanQuality, SpanDrift, SpanAssemble} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("trace missing span %q: %v", want, names)
		}
	}
}
